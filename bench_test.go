// Package repro's benchmark suite: one benchmark per table and figure of
// the paper (delegating to internal/bench), plus ablation benchmarks for
// the design choices called out in DESIGN.md §5. Custom "v*/op" metrics
// report virtual (simulated-cluster) time; the built-in ns/op is host time.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/blob"
	"repro/internal/blobfs"
	"repro/internal/cluster"
	"repro/internal/fs/posixfs"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// benchCfg balances fidelity and wall time for `go test -bench=.`: volumes
// at 1:8192 of the paper's, I/O unit scaled along with them.
func benchCfg() workloads.Config {
	return workloads.Config{Factor: 8192, Chunk: 1024, Ranks: 8, Executors: 4}
}

// --- Per-table / per-figure benchmarks. ---

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTableI(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Matches() {
			b.Fatalf("Table I profiles diverge:\n%s", res.Render())
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFigure1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Bars) != 5 {
			b.Fatal("wrong bar count")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFigure2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, bar := range res.Bars {
			if share := bar.Percent[0] + bar.Percent[1]; share < 98 {
				b.Fatalf("%s file share %.2f%% < 98%%", bar.App, share)
			}
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTableII(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if !res.MatchesPaper() {
			b.Fatalf("census diverges:\n%s", res.Render())
		}
	}
}

func BenchmarkMappingCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunMapping(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllRunAndMostlyDirect() {
			b.Fatalf("mapping claim fails:\n%s", res.Render())
		}
	}
}

func BenchmarkFlatVsHierarchicalMetadata(b *testing.B) {
	var last *bench.FutureWorkResult
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFutureWork(bench.FutureWorkOptions{
			Files:   100,
			Depths:  []int{1, 2, 4, 8},
			Writers: []int{1}, BlocksPerWriter: 1, BlockSize: 1,
			ListFiles: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil && len(last.Metadata) > 0 {
		b.ReportMetric(last.Metadata[len(last.Metadata)-1].Speedup, "speedup@depth8")
	}
}

func BenchmarkFlatVsHierarchicalSharedWrite(b *testing.B) {
	var last *bench.FutureWorkResult
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFutureWork(bench.FutureWorkOptions{
			Files: 4, Depths: []int{1},
			Writers:         []int{1, 2, 4, 8},
			BlocksPerWriter: 256,
			BlockSize:       4 << 10,
			ListFiles:       16,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil && len(last.SharedWrite) > 0 {
		b.ReportMetric(last.SharedWrite[len(last.SharedWrite)-1].Speedup, "speedup@8writers")
	}
}

// --- Ablation 1 (DESIGN.md §5): path-resolution cost vs directory depth. ---

func BenchmarkAblationPathDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			fs := posixfs.NewStrict(cluster.New(cluster.Config{Nodes: 9, Seed: 1}))
			ctx := storage.NewContext()
			dir := ""
			for i := 0; i < depth; i++ {
				dir += fmt.Sprintf("/d%d", i)
				if err := fs.Mkdir(ctx, dir); err != nil {
					b.Fatal(err)
				}
			}
			h, err := fs.Create(ctx, dir+"/leaf")
			if err != nil {
				b.Fatal(err)
			}
			h.Close(ctx)
			start := ctx.Clock.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fs.Stat(ctx, dir+"/leaf"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportVirtual(b, ctx.Clock.Now()-start)
		})
	}
}

// --- Ablation 2: strict POSIX locking vs relaxed semantics. ---

func BenchmarkAblationConsistency(b *testing.B) {
	for _, mode := range []struct {
		name string
		lock bool
	}{{"strict-locks", true}, {"relaxed", false}} {
		b.Run(mode.name, func(b *testing.B) {
			fs := posixfs.New(cluster.New(cluster.Config{Nodes: 9, Seed: 1}),
				posixfs.Config{LockAcquisition: mode.lock})
			ctx := storage.NewContext()
			h, err := fs.Create(ctx, "/f")
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close(ctx)
			block := make([]byte, 4096)
			start := ctx.Clock.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.WriteAt(ctx, int64(i%256)*4096, block); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportVirtual(b, ctx.Clock.Now()-start)
		})
	}
}

// --- Ablation 3: replication factor vs write cost. ---

func BenchmarkAblationReplication(b *testing.B) {
	for _, rep := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("rep-%d", rep), func(b *testing.B) {
			store := blob.New(cluster.New(cluster.Config{Nodes: 9, Seed: 1}),
				blob.Config{ChunkSize: 1 << 20, Replication: rep})
			ctx := storage.NewContext()
			if err := store.CreateBlob(ctx, "k"); err != nil {
				b.Fatal(err)
			}
			block := make([]byte, 64<<10)
			start := ctx.Clock.Now()
			b.SetBytes(int64(len(block)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.WriteBlob(ctx, "k", int64(i%64)<<16, block); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportVirtual(b, ctx.Clock.Now()-start)
		})
	}
}

// --- Ablation 4: chunk size vs large-transfer cost. ---

func BenchmarkAblationChunkSize(b *testing.B) {
	const transfer = 4 << 20
	for _, cs := range []int{256 << 10, 1 << 20, 4 << 20} {
		b.Run(fmt.Sprintf("chunk-%dKiB", cs>>10), func(b *testing.B) {
			store := blob.New(cluster.New(cluster.Config{Nodes: 9, Seed: 1}),
				blob.Config{ChunkSize: cs, Replication: 1})
			ctx := storage.NewContext()
			if err := store.CreateBlob(ctx, "big"); err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, transfer)
			start := ctx.Clock.Now()
			b.SetBytes(transfer)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.WriteBlob(ctx, "big", 0, payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportVirtual(b, ctx.Clock.Now()-start)
		})
	}
}

// --- Ablation 5: collective (two-phase) vs independent MPI-IO writes.
// Each rank owns a rank-strided set of small blocks; independent mode
// issues them one by one, collective mode hands them to WriteAtAllv, which
// re-partitions the union so each rank performs ONE contiguous write. ---

func BenchmarkAblationCollective(b *testing.B) {
	const ranks = 8
	const blockSize = 4096
	const blocksPerRank = 16
	for _, mode := range []string{"independent", "collective"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				census := trace.NewCensus()
				fs := trace.Wrap(posixfs.NewStrict(cluster.New(cluster.Config{Nodes: 9, Seed: 1})), census)
				errs := mpi.Run(ranks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
					f, err := mpiio.Open(r, fs, "/out", true, mpiio.Options{BufferSize: 1})
					if err != nil {
						return err
					}
					defer f.Close()
					block := make([]byte, blockSize)
					if mode == "collective" {
						pieces := make([]mpiio.Piece, blocksPerRank)
						for j := 0; j < blocksPerRank; j++ {
							pieces[j] = mpiio.Piece{
								Off:  int64(j*ranks+r.ID) * blockSize,
								Data: block,
							}
						}
						if _, err := f.WriteAtAllv(pieces); err != nil {
							return err
						}
					} else {
						for j := 0; j < blocksPerRank; j++ {
							off := int64(j*ranks+r.ID) * blockSize
							if _, err := f.WriteAt(off, block); err != nil {
								return err
							}
						}
					}
					return f.Sync()
				})
				if err := mpi.FirstError(errs); err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(census.OpCount(storage.OpWrite)), "storage-writes")
				}
			}
		})
	}
}

// --- Ablation 6: native directories vs scan-emulated directories. ---

func BenchmarkAblationScanEmulation(b *testing.B) {
	const files = 128
	const decoys = 1024 // the rest of the namespace, which only the flat scan wades through
	newPosix := func() storage.FileSystem {
		return posixfs.NewStrict(cluster.New(cluster.Config{Nodes: 9, Seed: 1}))
	}
	newBlob := func() storage.FileSystem {
		return blobfs.New(blob.New(cluster.New(cluster.Config{Nodes: 9, Seed: 1}),
			blob.Config{ChunkSize: 1 << 20, Replication: 1}))
	}
	for _, impl := range []struct {
		name string
		mk   func() storage.FileSystem
	}{{"posix-native", newPosix}, {"blob-scan", newBlob}} {
		b.Run(impl.name, func(b *testing.B) {
			fs := impl.mk()
			ctx := storage.NewContext()
			if err := fs.Mkdir(ctx, "/dir"); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < files; i++ {
				h, err := fs.Create(ctx, fmt.Sprintf("/dir/f-%04d", i))
				if err != nil {
					b.Fatal(err)
				}
				h.Close(ctx)
			}
			if err := fs.Mkdir(ctx, "/rest"); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < decoys; i++ {
				h, err := fs.Create(ctx, fmt.Sprintf("/rest/d-%05d", i))
				if err != nil {
					b.Fatal(err)
				}
				h.Close(ctx)
			}
			start := ctx.Clock.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				entries, err := fs.ReadDir(ctx, "/dir")
				if err != nil {
					b.Fatal(err)
				}
				if len(entries) != files {
					b.Fatalf("listing returned %d entries", len(entries))
				}
			}
			b.StopTimer()
			reportVirtual(b, ctx.Clock.Now()-start)
		})
	}
}

// --- Data-plane hot path: per-chunk dispatch cost on striped reads and
// writes (placement lookup, chunk addressing, server locks, WAL append).
// Allocation counts are the regression guard: see BENCH_hotpath.json. ---

func BenchmarkHotPathRead(b *testing.B) {
	h, err := bench.NewHotPath()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(h.OpBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotPathWrite(b *testing.B) {
	h, err := bench.NewHotPath()
	if err != nil {
		b.Fatal(err)
	}
	// One warm compaction window parks the slab high-water on the free
	// lists, so B/op measures steady-state dispatch cost instead of the
	// fresh store's one-time medium fill.
	if err := h.Warm(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(h.OpBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%bench.CompactEvery == bench.CompactEvery-1 {
			// Periodic WAL checkpoint outside the timer: keeps the metric
			// on per-op dispatch cost, not in-memory log accumulation.
			b.StopTimer()
			h.Compact()
			b.StartTimer()
		}
		if err := h.Write(); err != nil {
			b.Fatal(err)
		}
	}
}

// Inline variants pin the dispatcher's overhead against sequential
// execution of the same code path (virtual times are identical by
// construction; host time is the contrast).

func BenchmarkHotPathReadInline(b *testing.B) {
	h, err := bench.NewHotPathInline()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(h.OpBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotPathWriteInline(b *testing.B) {
	h, err := bench.NewHotPathInline()
	if err != nil {
		b.Fatal(err)
	}
	if err := h.Warm(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(h.OpBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%bench.CompactEvery == bench.CompactEvery-1 {
			b.StopTimer()
			h.Compact()
			b.StartTimer()
		}
		if err := h.Write(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotPathReadParallel drives the dispatcher from many concurrent
// clients — the shape the worker pool exists for. Each client owns its
// context and buffer; the blob, its descriptor latch (read-shared), and
// the chunk stripes are shared.
func BenchmarkHotPathReadParallel(b *testing.B) {
	h, err := bench.NewHotPath()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(h.OpBytes())
	b.ReportAllocs()
	var readErr atomic.Value // Fatalf must not run on RunParallel workers
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := storage.NewContext()
		buf := make([]byte, h.OpBytes())
		for pb.Next() {
			n, err := h.Store.ReadBlob(ctx, "hot", 0, buf)
			if err != nil || n != len(buf) {
				readErr.Store(fmt.Errorf("parallel read: (%d, %v)", n, err))
				return
			}
		}
	})
	b.StopTimer()
	if err := readErr.Load(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHotPathWriteParallel drives concurrent writers against
// per-client blobs — every client's descriptor latch is private, so the
// contention measured here is the shared substrate: per-server WAL mutexes,
// chunk stripes, and the dispatcher (ROADMAP's write-scaling question).
// Batches of writes alternate with out-of-timer compaction like the serial
// write benchmark, keeping the in-memory logs bounded. ns/op counts
// individual write operations across all clients.
func BenchmarkHotPathWriteParallel(b *testing.B) {
	h, err := bench.NewHotPathParallel(0)
	if err != nil {
		b.Fatal(err)
	}
	if err := h.WarmParallel(); err != nil {
		b.Fatal(err)
	}
	h.DriveParallelWrites(b)
}

// BenchmarkHotPathWriteParallelLanes1 is the same contended-writer shape
// pinned to a single WAL lane per server — the pre-sharding layout. The
// contrast against BenchmarkHotPathWriteParallel is what the lane sharding
// and group commit buy under multi-client write load (benchsuite records
// the fuller lane sweep in BENCH_hotpath.json).
func BenchmarkHotPathWriteParallelLanes1(b *testing.B) {
	h, err := bench.NewHotPathParallelLanes(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := h.WarmParallel(); err != nil {
		b.Fatal(err)
	}
	h.DriveParallelWrites(b)
}

// BenchmarkRecover measures crash recovery of the fullest server of a
// cold 9-node store — merged lane decode, 2PC prepare buffering, and the
// chunk-table scatter — serial (the single-threaded oracle) against the
// parallel lane-decode pipeline, across the WAL lane sweep. ns/op is one
// full crash+recover cycle; MB/s is log bytes replayed. benchsuite's
// `recovery` experiment records the fuller sweep (including cold-store
// sizes) in BENCH_recovery.json, gated by bench.CheckRecoveryScaling.
func BenchmarkRecover(b *testing.B) {
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"serial", true}, {"parallel", false}} {
		for _, lanes := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/lanes=%d", mode.name, lanes), func(b *testing.B) {
				f, err := bench.NewRecoveryFixture(lanes, 32, mode.serial)
				if err != nil {
					b.Fatal(err)
				}
				f.Drive(b)
			})
		}
	}
}

// reportVirtual attaches the simulated-cluster time per operation.
func reportVirtual(b *testing.B, total time.Duration) {
	if b.N > 0 {
		b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "vns/op")
	}
}

// --- Ablation 7: synchronous vs asynchronous replica acknowledgement. ---

func BenchmarkAblationAsyncReplication(b *testing.B) {
	for _, mode := range []struct {
		name  string
		async bool
	}{{"sync-ack", false}, {"async-ack", true}} {
		b.Run(mode.name, func(b *testing.B) {
			store := blob.New(cluster.New(cluster.Config{Nodes: 9, Seed: 1}),
				blob.Config{ChunkSize: 1 << 20, Replication: 3, AsyncReplication: mode.async})
			ctx := storage.NewContext()
			if err := store.CreateBlob(ctx, "k"); err != nil {
				b.Fatal(err)
			}
			block := make([]byte, 64<<10)
			start := ctx.Clock.Now()
			b.SetBytes(int64(len(block)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.WriteBlob(ctx, "k", int64(i%64)<<16, block); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportVirtual(b, ctx.Clock.Now()-start)
		})
	}
}

// --- Ablation 8: transactional vs direct multi-blob updates. ---

func BenchmarkAblationTransactions(b *testing.B) {
	for _, mode := range []string{"direct", "transactional"} {
		b.Run(mode, func(b *testing.B) {
			store := blob.New(cluster.New(cluster.Config{Nodes: 9, Seed: 1}),
				blob.Config{ChunkSize: 1 << 20, Replication: 2})
			ctx := storage.NewContext()
			for _, k := range []string{"x", "y"} {
				if err := store.CreateBlob(ctx, k); err != nil {
					b.Fatal(err)
				}
			}
			payload := make([]byte, 4096)
			start := ctx.Clock.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "direct" {
					if _, err := store.WriteBlob(ctx, "x", 0, payload); err != nil {
						b.Fatal(err)
					}
					if _, err := store.WriteBlob(ctx, "y", 0, payload); err != nil {
						b.Fatal(err)
					}
				} else {
					txn := store.Begin(ctx)
					txn.Write("x", 0, payload)
					txn.Write("y", 0, payload)
					if err := txn.Commit(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			reportVirtual(b, ctx.Clock.Now()-start)
		})
	}
}

// --- Ablation 9 (extension): indexed vs plain flat-namespace scan. ---

func BenchmarkAblationIndexedScan(b *testing.B) {
	const files, decoys = 128, 2048
	for _, mode := range []struct {
		name    string
		indexed bool
	}{{"flat-scan", false}, {"indexed-scan", true}} {
		b.Run(mode.name, func(b *testing.B) {
			fs := blobfs.New(blob.New(cluster.New(cluster.Config{Nodes: 9, Seed: 1}),
				blob.Config{ChunkSize: 1 << 20, Replication: 1, IndexedScan: mode.indexed}))
			ctx := storage.NewContext()
			if err := fs.Mkdir(ctx, "/dir"); err != nil {
				b.Fatal(err)
			}
			if err := fs.Mkdir(ctx, "/rest"); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < files; i++ {
				h, err := fs.Create(ctx, fmt.Sprintf("/dir/f-%05d", i))
				if err != nil {
					b.Fatal(err)
				}
				h.Close(ctx)
			}
			for i := 0; i < decoys; i++ {
				h, err := fs.Create(ctx, fmt.Sprintf("/rest/d-%05d", i))
				if err != nil {
					b.Fatal(err)
				}
				h.Close(ctx)
			}
			start := ctx.Clock.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				entries, err := fs.ReadDir(ctx, "/dir")
				if err != nil || len(entries) != files {
					b.Fatalf("listing = (%d, %v)", len(entries), err)
				}
			}
			b.StopTimer()
			reportVirtual(b, ctx.Clock.Now()-start)
		})
	}
}

// BenchmarkFaultWrite profiles the failure-domain write paths behind the
// benchsuite `faults` experiment: the healthy replicated overwrite against
// the degraded path that excludes a down owner and logs repair debt.
func BenchmarkFaultWrite(b *testing.B) {
	for _, mode := range []struct {
		name     string
		degraded bool
	}{{"healthy", false}, {"degraded", true}} {
		f, err := bench.NewFaultsFixture()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode.name, f.DriveWrite(mode.degraded))
	}
}

// BenchmarkFaultResync measures the rejoin path: a node misses a full-blob
// overwrite and SetDown(..., false) drains the debt back onto it.
func BenchmarkFaultResync(b *testing.B) {
	f, err := bench.NewFaultsFixture()
	if err != nil {
		b.Fatal(err)
	}
	f.DriveResync(b)
}
