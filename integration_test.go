// Cross-module integration tests: full pipelines that exercise several
// subsystems together, the way cmd/benchsuite and the examples do.
package repro

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fs/posixfs"
	"repro/internal/fs/relaxedfs"
	"repro/internal/h5"
	"repro/internal/kvstore"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/sim"
	"repro/internal/sparksim"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/tsdb"
	"repro/internal/workloads"
)

// TestHPCPipelineOnBothStacks runs a real MPI-IO workload (BLAST) against
// the POSIX baseline and against the blob-backed converged stack, asserting
// identical call censuses — the application cannot tell the difference.
func TestHPCPipelineOnBothStacks(t *testing.T) {
	cfg := workloads.Config{Factor: 1 << 16, Chunk: 512, Ranks: 4}
	app, err := workloads.HPCAppByName("BLAST")
	if err != nil {
		t.Fatal(err)
	}

	run := func(fs storage.FileSystem) *trace.Census {
		if err := app.Setup(fs, cfg); err != nil {
			t.Fatal(err)
		}
		census := trace.NewCensus()
		if err := app.Run(trace.Wrap(fs, census), cfg); err != nil {
			t.Fatal(err)
		}
		return census
	}

	posixCensus := run(newPosixStack())
	blobCensus := run(core.New(core.Options{Nodes: 9}).POSIX())

	if posixCensus.TotalCalls() != blobCensus.TotalCalls() {
		t.Fatalf("call counts differ: posix %d vs blob %d",
			posixCensus.TotalCalls(), blobCensus.TotalCalls())
	}
	if posixCensus.BytesRead() != blobCensus.BytesRead() ||
		posixCensus.BytesWritten() != blobCensus.BytesWritten() {
		t.Fatalf("volumes differ: posix %d/%d vs blob %d/%d",
			posixCensus.BytesRead(), posixCensus.BytesWritten(),
			blobCensus.BytesRead(), blobCensus.BytesWritten())
	}
}

func newPosixStack() storage.FileSystem {
	return posixfs.NewStrict(cluster.New(cluster.Config{Nodes: 9, Seed: 1}))
}

// TestSparkJobOnConvergedStack runs a Spark application end to end on
// blobfs and checks the committed output files in the underlying blob
// namespace.
func TestSparkJobOnConvergedStack(t *testing.T) {
	cfg := workloads.Config{Factor: 1 << 16, Chunk: 512, Executors: 2}
	platform := core.New(core.Options{Nodes: 9})
	fs := platform.POSIX()

	app, err := workloads.SparkAppByName(cfg, "Sort")
	if err != nil {
		t.Fatal(err)
	}
	if err := workloads.SetupSparkEnv(fs); err != nil {
		t.Fatal(err)
	}
	if err := workloads.SetupSparkApp(fs, app); err != nil {
		t.Fatal(err)
	}
	engine := sparksim.NewEngine(fs, cfg.Executors)
	engine.SetChunkSize(cfg.Chunk)
	res, err := workloads.RunSpark(engine, storage.NewContext(), app)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesWritten == 0 {
		t.Fatal("no output written")
	}
	// The part files are plain blobs in the flat namespace.
	ctx := platform.NewContext()
	infos, err := platform.Blob().Scan(ctx, "output/Sort/part-")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != app.App.OutputTasks {
		t.Fatalf("found %d part blobs, want %d", len(infos), app.App.OutputTasks)
	}
}

// TestMixedWorkloadSharedPlatform runs an MPI checkpoint writer, a KV
// service and a TSDB feed concurrently against ONE blob store — the
// converged multi-tenant scenario the paper's title asks about.
func TestMixedWorkloadSharedPlatform(t *testing.T) {
	platform := core.New(core.Options{Nodes: 8, Seed: 9})
	var wg sync.WaitGroup
	errCh := make(chan error, 3)

	// Tenant 1: MPI application checkpointing through mpiio on blobfs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		fs := platform.POSIX()
		errs := mpi.Run(4, sim.DefaultCostModel(), func(r *mpi.Rank) error {
			f, err := mpiio.Open(r, fs, "/tenant1.ckpt", true, mpiio.Options{})
			if err != nil {
				return err
			}
			payload := bytes.Repeat([]byte{byte(r.ID + 1)}, 4096)
			if _, err := f.WriteAt(int64(r.ID)*4096, payload); err != nil {
				return err
			}
			return f.Close()
		})
		if err := mpi.FirstError(errs); err != nil {
			errCh <- fmt.Errorf("tenant1: %w", err)
		}
	}()

	// Tenant 2: KV store traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := storage.NewContext()
		kv, err := platform.KV(ctx, "tenant2", 4)
		if err != nil {
			errCh <- fmt.Errorf("tenant2: %w", err)
			return
		}
		for i := 0; i < 100; i++ {
			if err := kv.Put(ctx, fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
				errCh <- fmt.Errorf("tenant2 put: %w", err)
				return
			}
		}
		for i := 0; i < 100; i += 7 {
			v, err := kv.Get(ctx, fmt.Sprintf("key-%d", i))
			if err != nil || string(v) != fmt.Sprintf("value-%d", i) {
				errCh <- fmt.Errorf("tenant2 get %d: (%q, %v)", i, v, err)
				return
			}
		}
	}()

	// Tenant 3: metrics feed into the TSDB.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := storage.NewContext()
		db, err := platform.TSDB("tenant3", time.Hour)
		if err != nil {
			errCh <- fmt.Errorf("tenant3: %w", err)
			return
		}
		t0 := time.Date(2017, 9, 5, 0, 0, 0, 0, time.UTC)
		for i := 0; i < 200; i++ {
			if err := db.Append(ctx, "iops", tsdb.Point{T: t0.Add(time.Duration(i) * time.Second), V: float64(i)}); err != nil {
				errCh <- fmt.Errorf("tenant3 append: %w", err)
				return
			}
		}
		pts, err := db.Query(ctx, "iops", t0, t0.Add(time.Hour))
		if err != nil || len(pts) != 200 {
			errCh <- fmt.Errorf("tenant3 query: (%d, %v)", len(pts), err)
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if msg := platform.BlobStore().CheckInvariants(); msg != "" {
		t.Fatalf("shared platform invariants: %s", msg)
	}
}

// TestCheckpointSurvivesNodeCrash combines mpiio checkpointing, failure
// injection and WAL recovery: after a node crash and recovery, the
// checkpoint restores bit-for-bit.
func TestCheckpointSurvivesNodeCrash(t *testing.T) {
	platform := core.New(core.Options{Nodes: 6, Blob: blob.Config{ChunkSize: 4096, Replication: 3}})
	store := platform.BlobStore()
	ctx := platform.NewContext()

	if err := store.CreateBlob(ctx, "ckpt"); err != nil {
		t.Fatal(err)
	}
	state := bytes.Repeat([]byte("checkpoint-payload."), 1000)
	if _, err := store.WriteBlob(ctx, "ckpt", 0, state); err != nil {
		t.Fatal(err)
	}

	// Crash two nodes, recover them from their WALs.
	for _, node := range []cluster.NodeID{1, 4} {
		store.Crash(node)
	}
	for _, node := range []cluster.NodeID{1, 4} {
		if err := store.Recover(node); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, len(state))
	n, err := store.ReadBlob(ctx, "ckpt", 0, got)
	if err != nil || n != len(state) || !bytes.Equal(got, state) {
		t.Fatalf("restore after crash: (%d, %v)", n, err)
	}
}

// TestH5OverTracedBlobStack pushes the full HPC I/O stack through the
// converged storage: h5 -> mpiio -> tracer -> blobfs -> blob store.
func TestH5OverTracedBlobStack(t *testing.T) {
	platform := core.New(core.Options{Nodes: 8})
	fs, census := platform.TracedPOSIX()
	errs := mpi.Run(4, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := h5.Create(r, fs, "/climate.h5")
		if err != nil {
			return err
		}
		ds, err := f.CreateDataset("salinity", h5.Float64, []int64{4, 128})
		if err != nil {
			return err
		}
		row := make([]float64, 128)
		for i := range row {
			row[i] = float64(r.ID*1000 + i)
		}
		if err := ds.WriteFloat64([]int64{int64(r.ID), 0}, []int64{1, 128}, row); err != nil {
			return err
		}
		return f.Close()
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	// Full-stack Figure 1 property.
	if got := census.KindCount(storage.CallDirOp); got != 0 {
		t.Fatalf("full stack issued %d directory ops", got)
	}
	// Read back through a fresh rank group.
	errs = mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := h5.Open(r, fs, "/climate.h5")
		if err != nil {
			return err
		}
		defer f.Close()
		ds, err := f.Dataset("salinity")
		if err != nil {
			return err
		}
		got := make([]float64, 128)
		if err := ds.ReadFloat64([]int64{2, 0}, []int64{1, 128}, got); err != nil {
			return err
		}
		if got[5] != 2005 {
			return fmt.Errorf("rank 2 row element 5 = %v", got[5])
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

// TestKVStoreOnRebalancedCluster verifies a KV tenant keeps working across
// server join/drain churn.
func TestKVStoreOnRebalancedCluster(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 6, Seed: 11})
	store := blob.NewOnNodes(c, blob.Config{ChunkSize: 256, Replication: 2},
		[]cluster.NodeID{0, 1, 2, 3})
	ctx := storage.NewContext()
	kv, err := kvstore.Open(ctx, store, "churn-kv", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.AddServer(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if err := store.RemoveServer(ctx, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		v, err := kv.Get(ctx, fmt.Sprintf("k%d", i))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d after churn: (%q, %v)", i, v, err)
		}
	}
	// And writes keep working.
	if err := kv.Put(ctx, "post-churn", []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

// TestRelaxedFSRejectsHPCWorkload documents why HDFS-like storage cannot
// host the HPC side unchanged (random writes), motivating blobs as the
// converged layer rather than HDFS.
func TestRelaxedFSRejectsHPCWorkload(t *testing.T) {
	fs := relaxedfs.New(cluster.New(cluster.Config{Nodes: 5, Seed: 1}), relaxedfs.Config{})
	ctx := storage.NewContext()
	h, err := fs.Create(ctx, "/model.out")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close(ctx)
	if _, err := h.WriteAt(ctx, 0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	// A strided checkpoint write (rank 2's slab) is a random write.
	if _, err := h.WriteAt(ctx, 1000, make([]byte, 100)); !errors.Is(err, storage.ErrUnsupported) {
		t.Fatalf("relaxedfs accepted a random write: %v", err)
	}
}
