#!/bin/sh
# examples: build and run every example program against a fresh simulated
# store, failing on the first non-zero exit. Each example is a minimal
# end-to-end exerciser of one front-end (quickstart: blob data plane,
# posixlegacy: blobfs POSIX emulation, checkpoint: mpiio collective I/O,
# scidata: h5/adios scientific formats, analytics: sparksim shuffle), so
# this smoke run is what keeps the documented entry points from rotting —
# benchcheck.sh runs it before recording any number.
#
# Usage: scripts/examples.sh
set -e
cd "$(dirname "$0")/.."
go build ./examples/...
for ex in examples/*/; do
	name="$(basename "$ex")"
	echo "examples: running $name"
	go run "./$ex" >/dev/null
done
echo "examples: all passed"
