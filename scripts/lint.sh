#!/bin/sh
# lint: run the blobvet contract analyzers (plus go vet) without the
# full bench pipeline. This is the cheap pre-commit gate; benchcheck.sh
# runs the same blobvet stage before recording any number.
#
# Usage: scripts/lint.sh [packages...]   (default ./...)
set -e
cd "$(dirname "$0")/.."
pkgs="${@:-./...}"
go run ./cmd/blobvet $pkgs
go vet $pkgs
