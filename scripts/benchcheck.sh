#!/bin/sh
# benchcheck: gate the data plane, then record its perf trajectory.
#
# Order matters: blobvet, vet, the -race suites, and the WAL fuzz battery
# must pass before the numbers are worth recording — a racy dispatcher or
# a log format that breaks crash replay produces fast garbage. blobvet
# runs FIRST: it enforces the dispatch.go concurrency contract, the
# single WAL append path, virtual-time determinism, errors.Is sentinel
# discipline, and stripe-lock pairing (see internal/lint/README.md), and
# numbers measured on a tree that violates those contracts are worthless
# however fast. The race scope covers the packages the goroutine fan-out
# touches — the blob data plane, the sharded WAL lanes it appends to, the
# virtual-time substrate it folds costs into, plus the remaining
# concurrent packages (core, storage, kvstore) so the analyzers' static
# guarantees and the dynamic race detector cover the same tree;
# -shuffle=on randomizes test order so accidental
# inter-test state dependencies cannot hide a regression. Each wal and
# blob fuzz target then runs for a short fixed budget — FuzzReplayMerged
# covers lane interleavings, per-lane torn tails, and checkpoint-then-
# append resets on top of the single-stream battery, and the blob-side
# FuzzRecoverParallel pits the parallel lane-decode recovery pipeline
# against the serial oracle on fuzzed workloads and tears — so framing,
# merge, replay, or recovery-equivalence regressions are caught here, not
# in a later crash.
#
# The -race suite includes the full seeded chaos battery (TestChaosBattery:
# 200 fault schedules of crash/tear/flap/transient-error under concurrent
# 2PC load) plus the SetDown flap race test, and the fuzz loop picks up the
# wal FaultMedium schedule fuzzer (FuzzFaultSchedule) alongside the replay
# batteries, so failure-domain regressions fail here before any number is
# recorded.
#
# The hot-path, recovery, and faults micro-benchmarks then run with
# allocation accounting and the results (including the WAL lane-count
# sweeps) land in BENCH_hotpath.json, BENCH_recovery.json, and
# BENCH_faults.json, giving future PRs a perf trajectory to compare
# against. Four gates guard the committed numbers, each evaluated BEFORE
# its file is overwritten: the committed BENCH_hotpath.json is the
# allocation-regression baseline (write-path alloc_bytes_per_op /
# allocs_per_op must not grow), the parallel/serial write ns-per-op ratio
# must stay under a GOMAXPROCS-aware bound (bench.CheckWriteScaling), the
# parallel/serial crash-recovery ratio must stay under its own
# GOMAXPROCS-aware bound (bench.CheckRecoveryScaling) so the parallel
# lane-decode pipeline keeps beating — or at minimum never quietly
# regresses against — the single-threaded recovery oracle, and the
# degraded/healthy write cost ratio must stay under a deterministic
# virtual-cost bound (bench.CheckFaults) so losing a replica never makes
# the write path do pathological extra work.
#
# Usage: scripts/benchcheck.sh [hotpath-output-file] [recovery-output-file] [faults-output-file]
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_hotpath.json}"
rout="${2:-BENCH_recovery.json}"
fout="${3:-BENCH_faults.json}"
go run ./cmd/blobvet ./...
go vet ./...
go test -race -shuffle=on ./internal/blob/... ./internal/sim/... ./internal/cluster/... ./internal/wal/... ./internal/core/... ./internal/storage/... ./internal/kvstore/...
for pkg in ./internal/wal ./internal/blob; do
	for fz in $(go test -run '^$' -list '^Fuzz' "$pkg" | grep '^Fuzz'); do
		go test -run '^$' -fuzz "^${fz}\$" -fuzztime 10s "$pkg"
	done
done
go test -run '^$' -bench 'HotPath|Recover|Fault' -benchmem -benchtime=1s .
go run ./cmd/benchsuite -exp hotpath -hotpath-out "$out" -hotpath-baseline BENCH_hotpath.json
go run ./cmd/benchsuite -exp recovery -recovery-out "$rout"
go run ./cmd/benchsuite -exp faults -faults-out "$fout"
