#!/bin/sh
# benchcheck: run the data-plane hot-path micro-benchmarks with allocation
# accounting and record the results in BENCH_hotpath.json, giving future PRs
# a perf trajectory to compare against.
#
# Usage: scripts/benchcheck.sh [output-file]
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_hotpath.json}"
go test -run '^$' -bench 'HotPath' -benchmem -benchtime=1s .
go run ./cmd/benchsuite -exp hotpath -hotpath-out "$out"
