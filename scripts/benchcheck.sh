#!/bin/sh
# benchcheck: gate the data plane, then record its perf trajectory.
#
# Order matters: blobvet, vet, the -race suites, and the WAL fuzz battery
# must pass before the numbers are worth recording — a racy dispatcher or
# a log format that breaks crash replay produces fast garbage. blobvet
# runs FIRST: it enforces the dispatch.go concurrency contract, the
# single WAL append path, virtual-time determinism, errors.Is sentinel
# discipline, and stripe-lock pairing (see internal/lint/README.md), and
# numbers measured on a tree that violates those contracts are worthless
# however fast. The race scope covers the packages the goroutine fan-out
# touches — the blob data plane, the sharded WAL lanes it appends to, the
# virtual-time substrate it folds costs into, plus the remaining
# concurrent packages (core, storage, kvstore) so the analyzers' static
# guarantees and the dynamic race detector cover the same tree, plus
# every front-end the conformance matrix registers (fstest, blobfs,
# posixfs, relaxedfs, mpiio, h5, adios, s3gw, sparksim) so the converged
# surface runs under the detector too;
# -shuffle=on randomizes test order so accidental
# inter-test state dependencies cannot hide a regression. Each wal,
# blob, and fstest fuzz target then runs for a short fixed budget —
# FuzzReplayMerged covers lane interleavings, per-lane torn tails, and
# checkpoint-then-append resets on top of the single-stream battery, the
# blob-side FuzzRecoverParallel pits the parallel lane-decode recovery
# pipeline against the serial oracle on fuzzed workloads and tears, and
# fstest's FuzzFSOps replays randomized op scripts differentially against
# the posixfs reference over every registered backend — so framing,
# merge, replay, recovery-equivalence, or front-end-semantics regressions
# are caught here, not in a later crash.
#
# The -race suite includes the full seeded chaos battery (TestChaosBattery:
# 200 fault schedules of crash/tear/flap/transient-error under concurrent
# 2PC load) plus the SetDown flap race test, and the fuzz loop picks up the
# wal FaultMedium schedule fuzzer (FuzzFaultSchedule) alongside the replay
# batteries, so failure-domain regressions fail here before any number is
# recorded.
#
# The hot-path, recovery, and faults micro-benchmarks then run with
# allocation accounting and the results (including the WAL lane-count
# sweeps) land in BENCH_hotpath.json, BENCH_recovery.json, and
# BENCH_faults.json, giving future PRs a perf trajectory to compare
# against. Four gates guard the committed numbers, each evaluated BEFORE
# its file is overwritten: the committed BENCH_hotpath.json is the
# allocation-regression baseline (write-path alloc_bytes_per_op /
# allocs_per_op must not grow), the parallel/serial write ns-per-op ratio
# must stay under a GOMAXPROCS-aware bound (bench.CheckWriteScaling), the
# parallel/serial crash-recovery ratio must stay under its own
# GOMAXPROCS-aware bound (bench.CheckRecoveryScaling) so the parallel
# lane-decode pipeline keeps beating — or at minimum never quietly
# regresses against — the single-threaded recovery oracle, and the
# degraded/healthy write cost ratio must stay under a deterministic
# virtual-cost bound (bench.CheckFaults) so losing a replica never makes
# the write path do pathological extra work.
#
# The frontends experiment then measures the converged claim end-to-end
# (IOR-style HPC pattern, sparksim shuffle, s3gw put/get) into
# BENCH_frontends.json, gated on the rename fastpath/copy virtual ratio
# (bench.CheckFrontends) before the file is overwritten, and
# scripts/examples.sh smoke-runs every example program so the documented
# entry points cannot rot unnoticed.
#
# The rebalance experiment measures what elasticity costs the foreground —
# p99 of a mixed read / 2PC-write workload during a live node join and
# drain vs quiesced — into BENCH_rebalance.json, gated on the
# during-migration/quiesced virtual p99 ratio (bench.CheckRebalance)
# before the file is overwritten. Its crash-safety side is covered above:
# the -race suite includes the migration batch-boundary crash sweeps and
# the chaos battery's membership actor, and the fuzz loop picks up
# FuzzRebalanceCrash with the other blob fuzz targets.
#
# Usage: scripts/benchcheck.sh [hotpath-output-file] [recovery-output-file] [faults-output-file] [frontends-output-file] [rebalance-output-file]
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_hotpath.json}"
rout="${2:-BENCH_recovery.json}"
fout="${3:-BENCH_faults.json}"
feout="${4:-BENCH_frontends.json}"
reout="${5:-BENCH_rebalance.json}"
go run ./cmd/blobvet ./...
go vet ./...
go test -race -shuffle=on ./internal/blob/... ./internal/sim/... ./internal/cluster/... ./internal/wal/... ./internal/core/... ./internal/storage/... ./internal/kvstore/... \
	./internal/fstest/... ./internal/blobfs/... ./internal/fs/... ./internal/mpiio/... ./internal/h5/... ./internal/adios/... ./internal/s3gw/... ./internal/sparksim/...
for pkg in ./internal/wal ./internal/blob ./internal/fstest; do
	for fz in $(go test -run '^$' -list '^Fuzz' "$pkg" | grep '^Fuzz'); do
		go test -run '^$' -fuzz "^${fz}\$" -fuzztime 10s "$pkg"
	done
done
scripts/examples.sh
go test -run '^$' -bench 'HotPath|Recover|Fault' -benchmem -benchtime=1s .
go run ./cmd/benchsuite -exp hotpath -hotpath-out "$out" -hotpath-baseline BENCH_hotpath.json
go run ./cmd/benchsuite -exp recovery -recovery-out "$rout"
go run ./cmd/benchsuite -exp faults -faults-out "$fout"
go run ./cmd/benchsuite -exp frontends -frontends-out "$feout"
go run ./cmd/benchsuite -exp rebalance -rebalance-out "$reout"
