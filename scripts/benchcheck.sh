#!/bin/sh
# benchcheck: gate the data plane, then record its perf trajectory.
#
# Order matters: vet, the -race suites, and the WAL fuzz battery must pass
# before the numbers are worth recording — a racy dispatcher or a log
# format that breaks crash replay produces fast garbage. The race scope
# covers the packages the goroutine fan-out touches: the blob data plane,
# the sharded WAL lanes it appends to, and the virtual-time substrate it
# folds costs into; -shuffle=on randomizes test order so accidental
# inter-test state dependencies cannot hide a regression. Each wal fuzz
# target then runs for a short fixed budget — FuzzReplayMerged covers lane
# interleavings and per-lane torn tails on top of the single-stream
# battery — so framing, merge, or replay regressions in the record
# encoding are caught here, not in a later crash.
#
# The hot-path micro-benchmarks then run with allocation accounting and the
# results (including the WAL lane-count sweep) land in BENCH_hotpath.json,
# giving future PRs a perf trajectory to compare against. Two gates guard
# the committed numbers, both evaluated BEFORE the file is overwritten:
# the committed BENCH_hotpath.json is the allocation-regression baseline
# (write-path alloc_bytes_per_op / allocs_per_op must not grow), and the
# parallel/serial write ns-per-op ratio must stay under a GOMAXPROCS-aware
# bound (bench.CheckWriteScaling) so the sharded-lane WAL keeps delivering
# real multi-writer scaling where the hardware has cores to scale on.
#
# Usage: scripts/benchcheck.sh [output-file]
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_hotpath.json}"
go vet ./...
go test -race -shuffle=on ./internal/blob/... ./internal/sim/... ./internal/cluster/... ./internal/wal/...
for fz in $(go test -run '^$' -list '^Fuzz' ./internal/wal | grep '^Fuzz'); do
	go test -run '^$' -fuzz "^${fz}\$" -fuzztime 10s ./internal/wal
done
go test -run '^$' -bench 'HotPath' -benchmem -benchtime=1s .
go run ./cmd/benchsuite -exp hotpath -hotpath-out "$out" -hotpath-baseline BENCH_hotpath.json
