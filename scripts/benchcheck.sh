#!/bin/sh
# benchcheck: gate the data plane, then record its perf trajectory.
#
# Order matters: vet, the -race suites, and the WAL fuzz battery must pass
# before the numbers are worth recording — a racy dispatcher or a log
# format that breaks crash replay produces fast garbage. The race scope
# covers the packages the goroutine fan-out touches: the blob data plane,
# the WAL it appends to, and the virtual-time substrate it folds costs
# into. Each wal fuzz target then runs for a short fixed budget, so framing
# or replay regressions in the record encoding are caught here, not in a
# later crash.
#
# The hot-path micro-benchmarks then run with allocation accounting and the
# results land in BENCH_hotpath.json, giving future PRs a perf trajectory
# to compare against. The committed BENCH_hotpath.json doubles as the
# regression baseline: benchsuite reads it before overwriting and fails if
# the write path's alloc_bytes_per_op (or allocs_per_op) regressed.
#
# Usage: scripts/benchcheck.sh [output-file]
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_hotpath.json}"
go vet ./...
go test -race ./internal/blob/... ./internal/sim/... ./internal/cluster/... ./internal/wal/...
for fz in $(go test -run '^$' -list '^Fuzz' ./internal/wal | grep '^Fuzz'); do
	go test -run '^$' -fuzz "^${fz}\$" -fuzztime 10s ./internal/wal
done
go test -run '^$' -bench 'HotPath' -benchmem -benchtime=1s .
go run ./cmd/benchsuite -exp hotpath -hotpath-out "$out" -hotpath-baseline BENCH_hotpath.json
