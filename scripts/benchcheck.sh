#!/bin/sh
# benchcheck: gate the data plane, then record its perf trajectory.
#
# Order matters: vet and the -race suites must pass before the numbers are
# worth recording — a racy dispatcher produces fast garbage. The race scope
# covers the packages the goroutine fan-out touches: the blob data plane
# and the virtual-time substrate it folds costs into.
#
# The hot-path micro-benchmarks then run with allocation accounting and the
# results land in BENCH_hotpath.json, giving future PRs a perf trajectory
# to compare against.
#
# Usage: scripts/benchcheck.sh [output-file]
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_hotpath.json}"
go vet ./...
go test -race ./internal/blob/... ./internal/sim/... ./internal/cluster/...
go test -run '^$' -bench 'HotPath' -benchmem -benchtime=1s .
go run ./cmd/benchsuite -exp hotpath -hotpath-out "$out"
