// Package storage defines the interfaces shared by every storage system in
// the repository and the storage-call taxonomy used by the tracer.
//
// Two interfaces matter:
//
//   - BlobStore is exactly the primitive set of the paper's Section III:
//     blob access (random read, size), blob manipulation (random write,
//     truncate), blob administration (create, delete) and namespace access
//     (scan).
//   - FileSystem is the POSIX-IO subset the traced applications exercise:
//     file ops (open/create/read/write/truncate/unlink/stat/sync) plus the
//     directory and "other" ops (mkdir/rmdir/readdir/xattr/chmod/rename)
//     whose relative frequency Figures 1–2 and Table II measure.
//
// All operations take a client Context carrying the virtual clock, so the
// same interface works for the strict PFS, the relaxed HDFS-like FS, the
// blob store and the blob-backed POSIX adapter.
package storage

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Context identifies a logical client of a storage system: its virtual
// clock plus identity fields used for permission checks.
type Context struct {
	Clock *sim.Clock
	UID   int
	GID   int
}

// NewContext returns a context with a fresh clock and root identity.
func NewContext() *Context {
	return &Context{Clock: sim.NewClock(), UID: 0, GID: 0}
}

// Fork derives a child context with an independent clock starting at the
// parent's current virtual time.
func (c *Context) Fork() *Context {
	return &Context{Clock: c.Clock.Fork(), UID: c.UID, GID: c.GID}
}

// Sentinel errors shared by every backend.
var (
	ErrNotFound      = errors.New("storage: not found")
	ErrExists        = errors.New("storage: already exists")
	ErrNotEmpty      = errors.New("storage: directory not empty")
	ErrIsDirectory   = errors.New("storage: is a directory")
	ErrNotDirectory  = errors.New("storage: not a directory")
	ErrPermission    = errors.New("storage: permission denied")
	ErrReadOnly      = errors.New("storage: write not permitted")
	ErrInvalidArg    = errors.New("storage: invalid argument")
	ErrUnsupported   = errors.New("storage: operation not supported by this backend")
	ErrClosed        = errors.New("storage: handle closed")
	ErrStaleHandle   = errors.New("storage: stale handle")
	ErrUnavailable   = errors.New("storage: unavailable")
	ErrTxnConflict   = errors.New("storage: transaction conflict")
	ErrQuotaExceeded = errors.New("storage: quota exceeded")
)

// BlobInfo describes one blob in a scan result.
type BlobInfo struct {
	Key  string
	Size int64
}

// BlobStore is the paper's Section III primitive set.
type BlobStore interface {
	// CreateBlob registers a new empty blob under key.
	CreateBlob(ctx *Context, key string) error
	// DeleteBlob removes the blob and its data.
	DeleteBlob(ctx *Context, key string) error
	// ReadBlob reads up to len(p) bytes at off, returning the count read.
	// Reading at or past EOF returns 0, nil (size is exposed separately).
	ReadBlob(ctx *Context, key string, off int64, p []byte) (int, error)
	// WriteBlob writes p at off, extending the blob as needed.
	WriteBlob(ctx *Context, key string, off int64, p []byte) (int, error)
	// TruncateBlob sets the blob size, zero-filling on extension.
	TruncateBlob(ctx *Context, key string, size int64) error
	// BlobSize reports the blob's current size.
	BlobSize(ctx *Context, key string) (int64, error)
	// Scan lists blobs whose key starts with prefix, in key order.
	Scan(ctx *Context, prefix string) ([]BlobInfo, error)
}

// BlobRenamer is an optional BlobStore extension: a server-side rename that
// moves a blob to a new key without streaming its bytes through the client.
// Adapters discover it by type assertion and fall back to the honest
// copy-then-delete emulation when the store does not provide it.
type BlobRenamer interface {
	// RenameBlob moves the blob at oldKey to newKey. The target key must
	// not exist (ErrExists otherwise); the source must (ErrNotFound).
	RenameBlob(ctx *Context, oldKey, newKey string) error
}

// ChunkSizer is an optional extension reporting the backend's natural
// placement granularity in bytes. Clients that partition collective writes
// (mpiio two-phase I/O) align their shares to it so each aggregated write
// maps onto whole chunks. A return of 0 means "no natural granularity".
type ChunkSizer interface {
	ChunkSize() int
}

// FileInfo describes a file or directory.
type FileInfo struct {
	Name  string
	Size  int64
	Mode  uint32
	IsDir bool
}

// DirEntry is one entry in a directory listing.
type DirEntry struct {
	Name  string
	IsDir bool
}

// Handle is an open file. Reads and writes are positional (pread/pwrite
// style), matching both MPI-IO and HDFS stream usage after the seek layer
// is stripped.
type Handle interface {
	ReadAt(ctx *Context, off int64, p []byte) (int, error)
	WriteAt(ctx *Context, off int64, p []byte) (int, error)
	// Sync makes previously written data durable and visible per the
	// backend's semantics.
	Sync(ctx *Context) error
	Close(ctx *Context) error
}

// FileSystem is the POSIX-IO subset the traced applications use.
type FileSystem interface {
	Create(ctx *Context, path string) (Handle, error)
	Open(ctx *Context, path string) (Handle, error)
	Unlink(ctx *Context, path string) error
	Stat(ctx *Context, path string) (FileInfo, error)
	Truncate(ctx *Context, path string, size int64) error
	Rename(ctx *Context, oldPath, newPath string) error

	Mkdir(ctx *Context, path string) error
	Rmdir(ctx *Context, path string) error
	ReadDir(ctx *Context, path string) ([]DirEntry, error)

	// Chmod and xattrs are the paper's "other" call category.
	Chmod(ctx *Context, path string, mode uint32) error
	GetXattr(ctx *Context, path, name string) (string, error)
	SetXattr(ctx *Context, path, name, value string) error
}

// CallKind classifies a storage call into the four categories of Figures
// 1–2: file reads, file writes, directory operations, and other.
type CallKind int

// Call kinds, ordered as in the paper's figures.
const (
	CallFileRead CallKind = iota
	CallFileWrite
	CallDirOp
	CallOther
	numCallKinds
)

// String names the kind as in the figures' legends.
func (k CallKind) String() string {
	switch k {
	case CallFileRead:
		return "File read"
	case CallFileWrite:
		return "File write"
	case CallDirOp:
		return "Directory operations"
	case CallOther:
		return "Other"
	default:
		return fmt.Sprintf("CallKind(%d)", int(k))
	}
}

// NumCallKinds is the number of classification buckets.
const NumCallKinds = int(numCallKinds)

// Op identifies a specific storage operation, used for Table II's breakdown
// and for the blob-mapping coverage analysis.
type Op string

// Operation names. File-level operations (the paper classifies open and
// unlink as file operations) map to blob primitives; directory-level ones
// do not and must be emulated.
const (
	OpOpen     Op = "open"
	OpCreate   Op = "create"
	OpClose    Op = "close"
	OpRead     Op = "read"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpTruncate Op = "truncate"
	OpUnlink   Op = "unlink"
	OpStat     Op = "stat"
	OpRename   Op = "rename"

	OpMkdir   Op = "mkdir"
	OpRmdir   Op = "rmdir"
	OpOpendir Op = "opendir"

	OpChmod    Op = "chmod"
	OpGetXattr Op = "getxattr"
	OpSetXattr Op = "setxattr"
)

// Kind classifies the operation into the figure categories. The mapping
// follows Section IV: reads and writes are the data categories; stat, open,
// close, sync, create, unlink, truncate and rename are file operations that
// the paper counts outside the directory/other buckets — we fold the
// non-read/write file calls into the read or write buckets by data
// direction where meaningful, and report pure-metadata file calls under
// "Other" only when they are xattr/chmod style conveniences.
func (o Op) Kind() CallKind {
	switch o {
	case OpRead, OpOpen, OpStat:
		return CallFileRead
	case OpWrite, OpCreate, OpClose, OpSync, OpTruncate, OpUnlink, OpRename:
		return CallFileWrite
	case OpMkdir, OpRmdir, OpOpendir:
		return CallDirOp
	default:
		return CallOther
	}
}

// MapsToBlobPrimitive reports whether the operation maps directly to one of
// Section III's blob primitives (file ops do; directory ops and xattr-style
// conveniences do not and require scan emulation).
func (o Op) MapsToBlobPrimitive() bool {
	switch o {
	case OpOpen, OpCreate, OpClose, OpRead, OpWrite, OpSync,
		OpTruncate, OpUnlink, OpStat, OpRename:
		return true
	default:
		return false
	}
}
