package storage

import (
	"testing"
	"time"
)

func TestNewContext(t *testing.T) {
	ctx := NewContext()
	if ctx.Clock == nil {
		t.Fatal("NewContext returned nil clock")
	}
	if ctx.UID != 0 || ctx.GID != 0 {
		t.Fatalf("unexpected identity %d:%d", ctx.UID, ctx.GID)
	}
}

func TestContextFork(t *testing.T) {
	ctx := NewContext()
	ctx.UID, ctx.GID = 42, 7
	ctx.Clock.Advance(5 * time.Millisecond)
	child := ctx.Fork()
	if child.UID != 42 || child.GID != 7 {
		t.Fatalf("Fork dropped identity: %d:%d", child.UID, child.GID)
	}
	if child.Clock.Now() != 5*time.Millisecond {
		t.Fatalf("Fork clock = %v, want 5ms", child.Clock.Now())
	}
	child.Clock.Advance(time.Millisecond)
	if ctx.Clock.Now() != 5*time.Millisecond {
		t.Fatal("child clock advance leaked into parent")
	}
}

func TestCallKindString(t *testing.T) {
	cases := map[CallKind]string{
		CallFileRead:  "File read",
		CallFileWrite: "File write",
		CallDirOp:     "Directory operations",
		CallOther:     "Other",
		CallKind(9):   "CallKind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", int(k), got, want)
		}
	}
}

func TestNumCallKinds(t *testing.T) {
	if NumCallKinds != 4 {
		t.Fatalf("NumCallKinds = %d, want the paper's 4 figure categories", NumCallKinds)
	}
}

func TestOpKindClassification(t *testing.T) {
	readSide := []Op{OpRead, OpOpen, OpStat}
	for _, o := range readSide {
		if o.Kind() != CallFileRead {
			t.Fatalf("%s classified as %v, want File read", o, o.Kind())
		}
	}
	writeSide := []Op{OpWrite, OpCreate, OpClose, OpSync, OpTruncate, OpUnlink, OpRename}
	for _, o := range writeSide {
		if o.Kind() != CallFileWrite {
			t.Fatalf("%s classified as %v, want File write", o, o.Kind())
		}
	}
	dirs := []Op{OpMkdir, OpRmdir, OpOpendir}
	for _, o := range dirs {
		if o.Kind() != CallDirOp {
			t.Fatalf("%s classified as %v, want Directory operations", o, o.Kind())
		}
	}
	other := []Op{OpChmod, OpGetXattr, OpSetXattr}
	for _, o := range other {
		if o.Kind() != CallOther {
			t.Fatalf("%s classified as %v, want Other", o, o.Kind())
		}
	}
}

// Section III: "We classify file open and unlink as file operations" — every
// file-level op must map to a blob primitive; directory ops must not.
func TestMapsToBlobPrimitive(t *testing.T) {
	fileOps := []Op{OpOpen, OpCreate, OpClose, OpRead, OpWrite, OpSync,
		OpTruncate, OpUnlink, OpStat, OpRename}
	for _, o := range fileOps {
		if !o.MapsToBlobPrimitive() {
			t.Fatalf("file op %s should map to a blob primitive", o)
		}
	}
	nonMapping := []Op{OpMkdir, OpRmdir, OpOpendir, OpChmod, OpGetXattr, OpSetXattr}
	for _, o := range nonMapping {
		if o.MapsToBlobPrimitive() {
			t.Fatalf("op %s should require emulation, not a direct mapping", o)
		}
	}
}

func TestSentinelErrorsDistinct(t *testing.T) {
	errs := []error{ErrNotFound, ErrExists, ErrNotEmpty, ErrIsDirectory,
		ErrNotDirectory, ErrPermission, ErrReadOnly, ErrInvalidArg,
		ErrUnsupported, ErrClosed, ErrStaleHandle, ErrUnavailable,
		ErrTxnConflict, ErrQuotaExceeded}
	seen := map[string]bool{}
	for _, e := range errs {
		if e == nil {
			t.Fatal("nil sentinel error")
		}
		if seen[e.Error()] {
			t.Fatalf("duplicate error message %q", e.Error())
		}
		seen[e.Error()] = true
	}
}
