package s3gw

import (
	"encoding/xml"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/blob"
	"repro/internal/blobfs"
	"repro/internal/cluster"
	"repro/internal/storage"
)

func newServer(t *testing.T) (*httptest.Server, *Gateway, storage.BlobStore) {
	t.Helper()
	store := blob.New(cluster.New(cluster.Config{Nodes: 4, Seed: 1}),
		blob.Config{ChunkSize: 64, Replication: 2})
	gw := New(store)
	srv := httptest.NewServer(gw)
	t.Cleanup(srv.Close)
	return srv, gw, store
}

func do(t *testing.T, method, url, body string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestPutGetRoundTrip(t *testing.T) {
	srv, _, _ := newServer(t)
	resp := do(t, http.MethodPut, srv.URL+"/data/object-1", "hello s3 world")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	resp = do(t, http.MethodGet, srv.URL+"/data/object-1", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "hello s3 world" {
		t.Fatalf("GET body = %q", body)
	}
}

func TestPutOverwrites(t *testing.T) {
	srv, _, _ := newServer(t)
	do(t, http.MethodPut, srv.URL+"/k", "first version, long")
	do(t, http.MethodPut, srv.URL+"/k", "v2")
	resp := do(t, http.MethodGet, srv.URL+"/k", "")
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "v2" {
		t.Fatalf("after overwrite = %q", body)
	}
}

func TestHead(t *testing.T) {
	srv, _, _ := newServer(t)
	do(t, http.MethodPut, srv.URL+"/obj", "12345678")
	resp := do(t, http.MethodHead, srv.URL+"/obj", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD status = %d", resp.StatusCode)
	}
	if cl := resp.Header.Get("Content-Length"); cl != "8" {
		t.Fatalf("Content-Length = %q", cl)
	}
	resp = do(t, http.MethodHead, srv.URL+"/ghost", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HEAD missing = %d", resp.StatusCode)
	}
}

func TestDelete(t *testing.T) {
	srv, _, _ := newServer(t)
	do(t, http.MethodPut, srv.URL+"/gone", "x")
	resp := do(t, http.MethodDelete, srv.URL+"/gone", "")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	resp = do(t, http.MethodGet, srv.URL+"/gone", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE = %d", resp.StatusCode)
	}
	resp = do(t, http.MethodDelete, srv.URL+"/gone", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double DELETE = %d", resp.StatusCode)
	}
}

func TestRangeRequests(t *testing.T) {
	srv, _, _ := newServer(t)
	do(t, http.MethodPut, srv.URL+"/r", "0123456789")
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/r", nil)
	req.Header.Set("Range", "bytes=2-5")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("range status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "2345" {
		t.Fatalf("range body = %q", body)
	}
	if cr := resp.Header.Get("Content-Range"); cr != "bytes 2-5/10" {
		t.Fatalf("Content-Range = %q", cr)
	}

	// Open-ended range.
	req, _ = http.NewRequest(http.MethodGet, srv.URL+"/r", nil)
	req.Header.Set("Range", "bytes=7-")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ = io.ReadAll(resp.Body)
	if string(body) != "789" {
		t.Fatalf("open range body = %q", body)
	}

	// Invalid range.
	req, _ = http.NewRequest(http.MethodGet, srv.URL+"/r", nil)
	req.Header.Set("Range", "bytes=50-60")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("bad range status = %d", resp.StatusCode)
	}
}

func TestListWithPrefix(t *testing.T) {
	srv, _, _ := newServer(t)
	for _, k := range []string{"logs/2017/a", "logs/2017/b", "data/x"} {
		do(t, http.MethodPut, srv.URL+"/"+k, "content")
	}
	resp := do(t, http.MethodGet, srv.URL+"/?prefix=logs/", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("LIST status = %d", resp.StatusCode)
	}
	var result struct {
		XMLName  xml.Name `xml:"ListBucketResult"`
		KeyCount int      `xml:"KeyCount"`
		Contents []struct {
			Key  string `xml:"Key"`
			Size int64  `xml:"Size"`
		} `xml:"Contents"`
	}
	raw, _ := io.ReadAll(resp.Body)
	if err := xml.Unmarshal(raw, &result); err != nil {
		t.Fatalf("decode: %v\n%s", err, raw)
	}
	if result.KeyCount != 2 || len(result.Contents) != 2 {
		t.Fatalf("listing = %+v", result)
	}
	if result.Contents[0].Key != "logs/2017/a" || result.Contents[0].Size != 7 {
		t.Fatalf("first entry = %+v", result.Contents[0])
	}
}

func TestMethodAndPathErrors(t *testing.T) {
	srv, _, _ := newServer(t)
	resp := do(t, http.MethodPost, srv.URL+"/k", "x")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	resp = do(t, http.MethodPut, srv.URL+"/", "x")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT to root = %d", resp.StatusCode)
	}
}

func TestVirtualTimeAccrues(t *testing.T) {
	srv, gw, _ := newServer(t)
	do(t, http.MethodPut, srv.URL+"/t", strings.Repeat("x", 10000))
	do(t, http.MethodGet, srv.URL+"/t", "")
	if gw.TotalVirtualTime() <= 0 {
		t.Fatal("gateway accrued no virtual time")
	}
}

// Convergence property: an object PUT through the S3 interface is the same
// bytes through the POSIX view and the native blob API.
func TestS3AndPOSIXShareData(t *testing.T) {
	store := blob.New(cluster.New(cluster.Config{Nodes: 4, Seed: 1}), blob.Config{})
	srv := httptest.NewServer(New(store))
	defer srv.Close()

	do(t, http.MethodPut, srv.URL+"/shared/file.txt", "one object, three interfaces")

	ctx := storage.NewContext()
	fs := blobfs.New(store)
	h, err := fs.Open(ctx, "/shared/file.txt")
	if err != nil {
		t.Fatalf("POSIX view: %v", err)
	}
	defer h.Close(ctx)
	buf := make([]byte, 64)
	n, _ := h.ReadAt(ctx, 0, buf)
	if string(buf[:n]) != "one object, three interfaces" {
		t.Fatalf("POSIX read = %q", buf[:n])
	}
	size, err := store.BlobSize(ctx, "shared/file.txt")
	if err != nil || size != int64(n) {
		t.Fatalf("native view = (%d, %v)", size, err)
	}
}
