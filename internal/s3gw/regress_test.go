package s3gw

import (
	"io"
	"net/http"
	"testing"
)

// TestPutOverwriteShorterBody pins the truncate-then-write overwrite path:
// replacing a long object with a shorter body must not leave a stale tail
// from the previous version (the PUT truncates to zero before writing).
func TestPutOverwriteShorterBody(t *testing.T) {
	srv, _, _ := newServer(t)
	long := "a-rather-long-first-version-spanning-multiple-chunks-" +
		"0123456789012345678901234567890123456789012345678901234567890123"
	if resp := do(t, http.MethodPut, srv.URL+"/obj", long); resp.StatusCode != http.StatusOK {
		t.Fatalf("first PUT status = %d", resp.StatusCode)
	}
	if resp := do(t, http.MethodPut, srv.URL+"/obj", "tiny"); resp.StatusCode != http.StatusOK {
		t.Fatalf("overwrite PUT status = %d", resp.StatusCode)
	}
	resp := do(t, http.MethodGet, srv.URL+"/obj", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "tiny" {
		t.Fatalf("overwritten object = %q, want %q", body, "tiny")
	}
	if cl := resp.Header.Get("Content-Length"); cl != "4" {
		t.Fatalf("Content-Length = %q, want 4", cl)
	}
	// Overwrite with an empty body must yield an empty object too.
	if resp := do(t, http.MethodPut, srv.URL+"/obj", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("empty PUT status = %d", resp.StatusCode)
	}
	resp = do(t, http.MethodGet, srv.URL+"/obj", "")
	if body, _ := io.ReadAll(resp.Body); len(body) != 0 {
		t.Fatalf("object after empty overwrite = %q, want empty", body)
	}
}

// TestParseRangeEdgeCases pins the single-range parser against the corner
// specs S3 clients actually send.
func TestParseRangeEdgeCases(t *testing.T) {
	const size = 100
	cases := []struct {
		header string
		off    int64
		length int64
		ok     bool
	}{
		{"bytes=0-99", 0, 100, true},
		{"bytes=0-", 0, 100, true},       // open-ended from start
		{"bytes=99-", 99, 1, true},       // open-ended at last byte
		{"bytes=100-", 0, 0, false},      // open-ended at EOF: unsatisfiable
		{"bytes=40-39", 0, 0, false},     // end before start
		{"bytes=90-200", 90, 10, true},   // end clamped to size-1
		{"bytes=0-0", 0, 1, true},        // single byte
		{"bytes=100-110", 0, 0, false},   // wholly beyond size
		{"bytes=-10", 0, 0, false},       // suffix form unsupported here
		{"bytes=a-b", 0, 0, false},       // garbage
		{"bytes=0-9,20-29", 0, 0, false}, // multi-range unsupported
		{"bites=0-9", 0, 0, false},       // wrong unit
		{"bytes=0", 0, 0, false},         // no dash
		{"", 0, 0, false},                // absent header
	}
	for _, c := range cases {
		off, length, ok := parseRange(c.header, size)
		if ok != c.ok || off != c.off || length != c.length {
			t.Errorf("parseRange(%q, %d) = (%d, %d, %v), want (%d, %d, %v)",
				c.header, size, off, length, ok, c.off, c.length, c.ok)
		}
	}
}

// TestRangeAtEOFOverHTTP drives range corner cases through the gateway:
// "bytes=<size>-" is unsatisfiable (416, the S3 answer), while an
// in-bounds open-ended range serves the 206 suffix.
func TestRangeAtEOFOverHTTP(t *testing.T) {
	srv, _, _ := newServer(t)
	if resp := do(t, http.MethodPut, srv.URL+"/r", "0123456789"); resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	getRange := func(spec string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/r", nil)
		req.Header.Set("Range", spec)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := getRange("bytes=10-"); resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("GET with EOF range: status %d, want 416", resp.StatusCode)
	}
	if resp := getRange("bytes=5-999"); resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("GET with clamped range: status %d, want 206", resp.StatusCode)
	} else {
		if body, _ := io.ReadAll(resp.Body); string(body) != "56789" {
			t.Fatalf("clamped range body = %q, want %q", body, "56789")
		}
		if cr := resp.Header.Get("Content-Range"); cr != "bytes 5-9/10" {
			t.Fatalf("Content-Range = %q", cr)
		}
	}
	if resp := getRange("bytes=junk"); resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("GET with malformed range: status %d, want 416", resp.StatusCode)
	}
}
