// Package s3gw exposes a blob store through an S3-flavoured HTTP object
// interface — the cloud-side access path the paper's related work
// discusses (pwalrus' "storage service layer (S3 interface)" over the same
// data as the parallel-file-system view).
//
// Supported subset:
//
//	PUT    /<key>              store an object (overwrite allowed)
//	GET    /<key>              fetch an object (Range: bytes=a-b honoured)
//	HEAD   /<key>              object metadata (Content-Length)
//	DELETE /<key>              remove an object
//	GET    /?prefix=<p>        list objects, S3 ListBucketResult XML
//
// Every request runs on a forked virtual clock; the accumulated gateway
// time is visible via TotalVirtualTime, so the gateway's cost shows up in
// experiments like every other access layer.
package s3gw

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/storage"
)

// Gateway is an http.Handler over a blob store.
type Gateway struct {
	store storage.BlobStore

	mu      sync.Mutex
	virtual time.Duration
}

// New returns a gateway serving the given store.
func New(store storage.BlobStore) *Gateway {
	return &Gateway{store: store}
}

// TotalVirtualTime reports the summed virtual time of all requests served.
func (g *Gateway) TotalVirtualTime() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.virtual
}

func (g *Gateway) track(ctx *storage.Context) {
	g.mu.Lock()
	g.virtual += ctx.Clock.Now()
	g.mu.Unlock()
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ctx := storage.NewContext()
	defer g.track(ctx)

	key := strings.TrimPrefix(r.URL.Path, "/")
	if key == "" {
		if r.Method == http.MethodGet {
			g.list(ctx, w, r)
			return
		}
		http.Error(w, "missing object key", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut:
		g.put(ctx, w, r, key)
	case http.MethodGet:
		g.get(ctx, w, r, key)
	case http.MethodHead:
		g.head(ctx, w, key)
	case http.MethodDelete:
		g.delete(ctx, w, key)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (g *Gateway) put(ctx *storage.Context, w http.ResponseWriter, r *http.Request, key string) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	err = g.store.CreateBlob(ctx, key)
	switch {
	case err == nil:
	case errors.Is(err, storage.ErrExists):
		// S3 PUT overwrites.
		if err := g.store.TruncateBlob(ctx, key, 0); err != nil {
			httpStoreError(w, err)
			return
		}
	default:
		httpStoreError(w, err)
		return
	}
	if len(body) > 0 {
		if _, err := g.store.WriteBlob(ctx, key, 0, body); err != nil {
			httpStoreError(w, err)
			return
		}
	}
	w.WriteHeader(http.StatusOK)
}

// parseRange handles the single-range form "bytes=a-b" (and "bytes=a-").
func parseRange(header string, size int64) (off, length int64, ok bool) {
	spec, found := strings.CutPrefix(header, "bytes=")
	if !found || strings.Contains(spec, ",") {
		return 0, 0, false
	}
	lo, hi, found := strings.Cut(spec, "-")
	if !found {
		return 0, 0, false
	}
	start, err := strconv.ParseInt(lo, 10, 64)
	if err != nil || start < 0 || start >= size {
		return 0, 0, false
	}
	end := size - 1
	if hi != "" {
		end, err = strconv.ParseInt(hi, 10, 64)
		if err != nil || end < start {
			return 0, 0, false
		}
		if end >= size {
			end = size - 1
		}
	}
	return start, end - start + 1, true
}

func (g *Gateway) get(ctx *storage.Context, w http.ResponseWriter, r *http.Request, key string) {
	size, err := g.store.BlobSize(ctx, key)
	if err != nil {
		httpStoreError(w, err)
		return
	}
	off, length := int64(0), size
	status := http.StatusOK
	if rng := r.Header.Get("Range"); rng != "" && size > 0 {
		var ok bool
		off, length, ok = parseRange(rng, size)
		if !ok {
			http.Error(w, "invalid range", http.StatusRequestedRangeNotSatisfiable)
			return
		}
		status = http.StatusPartialContent
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, off+length-1, size))
	}
	buf := make([]byte, length)
	n, err := g.store.ReadBlob(ctx, key, off, buf)
	if err != nil {
		httpStoreError(w, err)
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(n))
	w.WriteHeader(status)
	w.Write(buf[:n])
}

func (g *Gateway) head(ctx *storage.Context, w http.ResponseWriter, key string) {
	size, err := g.store.BlobSize(ctx, key)
	if err != nil {
		httpStoreError(w, err)
		return
	}
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.WriteHeader(http.StatusOK)
}

func (g *Gateway) delete(ctx *storage.Context, w http.ResponseWriter, key string) {
	if err := g.store.DeleteBlob(ctx, key); err != nil {
		httpStoreError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// listBucketResult is the S3 listing document (subset).
type listBucketResult struct {
	XMLName  xml.Name  `xml:"ListBucketResult"`
	Prefix   string    `xml:"Prefix"`
	KeyCount int       `xml:"KeyCount"`
	Contents []content `xml:"Contents"`
}

type content struct {
	Key  string `xml:"Key"`
	Size int64  `xml:"Size"`
}

func (g *Gateway) list(ctx *storage.Context, w http.ResponseWriter, r *http.Request) {
	prefix := r.URL.Query().Get("prefix")
	infos, err := g.store.Scan(ctx, prefix)
	if err != nil {
		httpStoreError(w, err)
		return
	}
	result := listBucketResult{Prefix: prefix, KeyCount: len(infos)}
	for _, info := range infos {
		result.Contents = append(result.Contents, content{Key: info.Key, Size: info.Size})
	}
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(http.StatusOK)
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	enc.Encode(result)
}

func httpStoreError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, storage.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, storage.ErrInvalidArg):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, storage.ErrStaleHandle), errors.Is(err, storage.ErrUnavailable):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
