package mpiio

import (
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/storage"
)

// FS adapts the MPI-IO library itself to storage.FileSystem, so the
// write-behind/visibility-on-sync semantics of Section II-A can sit in the
// front-end conformance matrix next to the backends it runs over. Every
// handle is an mpiio.File opened on its own single-rank communicator
// (MPI_COMM_SELF): writes buffer per handle and become globally visible on
// Sync or Close, reads overlay the handle's own pending writes (MPI-IO
// local visibility), and everything else passes through to the inner file
// system.
type FS struct {
	inner storage.FileSystem
	cost  sim.CostModel
	opts  Options
}

// NewFS wraps inner with MPI-IO handle semantics. cost prices the (here
// trivial, single-rank) collective synchronization.
func NewFS(inner storage.FileSystem, cost sim.CostModel, opts Options) *FS {
	return &FS{inner: inner, cost: cost, opts: opts}
}

// Inner returns the wrapped file system.
func (fs *FS) Inner() storage.FileSystem { return fs.inner }

// ChunkSize forwards the inner backend's placement granularity
// (storage.ChunkSizer) so collective writes align through the adapter too.
func (fs *FS) ChunkSize() int {
	if cs, ok := fs.inner.(storage.ChunkSizer); ok {
		return cs.ChunkSize()
	}
	return 0
}

// Create opens a new (or truncated) file with MPI-IO write-behind.
func (fs *FS) Create(ctx *storage.Context, path string) (storage.Handle, error) {
	f, err := Open(mpi.Self(ctx, fs.cost), fs.inner, path, true, fs.opts)
	if err != nil {
		return nil, err
	}
	return &fsHandle{f: f}, nil
}

// Open opens an existing file with MPI-IO write-behind.
func (fs *FS) Open(ctx *storage.Context, path string) (storage.Handle, error) {
	f, err := Open(mpi.Self(ctx, fs.cost), fs.inner, path, false, fs.opts)
	if err != nil {
		return nil, err
	}
	return &fsHandle{f: f}, nil
}

// The metadata surface passes through: MPI-IO adds semantics only to open
// file handles, and HPC applications issue no directory traffic anyway
// (Figure 1) — the pass-through keeps the matrix honest about that.

func (fs *FS) Unlink(ctx *storage.Context, path string) error { return fs.inner.Unlink(ctx, path) }
func (fs *FS) Stat(ctx *storage.Context, path string) (storage.FileInfo, error) {
	return fs.inner.Stat(ctx, path)
}
func (fs *FS) Truncate(ctx *storage.Context, path string, size int64) error {
	return fs.inner.Truncate(ctx, path, size)
}
func (fs *FS) Rename(ctx *storage.Context, oldPath, newPath string) error {
	return fs.inner.Rename(ctx, oldPath, newPath)
}
func (fs *FS) Mkdir(ctx *storage.Context, path string) error { return fs.inner.Mkdir(ctx, path) }
func (fs *FS) Rmdir(ctx *storage.Context, path string) error { return fs.inner.Rmdir(ctx, path) }
func (fs *FS) ReadDir(ctx *storage.Context, path string) ([]storage.DirEntry, error) {
	return fs.inner.ReadDir(ctx, path)
}
func (fs *FS) Chmod(ctx *storage.Context, path string, mode uint32) error {
	return fs.inner.Chmod(ctx, path, mode)
}
func (fs *FS) GetXattr(ctx *storage.Context, path, name string) (string, error) {
	return fs.inner.GetXattr(ctx, path, name)
}
func (fs *FS) SetXattr(ctx *storage.Context, path, name, value string) error {
	return fs.inner.SetXattr(ctx, path, name, value)
}

// fsHandle bridges storage.Handle's ctx-carrying signatures onto an
// mpiio.File, whose rank was pinned to the opening context.
type fsHandle struct {
	f *File
}

func (h *fsHandle) ReadAt(ctx *storage.Context, off int64, p []byte) (int, error) {
	if off < 0 {
		return 0, storage.ErrInvalidArg
	}
	return h.f.ReadAt(off, p)
}

func (h *fsHandle) WriteAt(ctx *storage.Context, off int64, p []byte) (int, error) {
	return h.f.WriteAt(off, p)
}

func (h *fsHandle) Sync(ctx *storage.Context) error { return h.f.Sync() }

func (h *fsHandle) Close(ctx *storage.Context) error { return h.f.Close() }
