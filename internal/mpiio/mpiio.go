// Package mpiio implements an MPI-IO-like parallel I/O library over any
// storage.FileSystem, reproducing the semantics the paper leans on
// (Section II-A): "MPI-IO requires a write to be visible by all processes
// only after the file is closed or synced".
//
// Concretely:
//
//   - writes are buffered per rank (write-behind) and flushed, coalesced
//     into contiguous runs, on Sync or Close — so the storage layer sees
//     far fewer, larger calls than the application issued, and other ranks
//     observe the data only after the flush;
//   - a rank always sees its own writes (local visibility), implemented by
//     overlaying the pending buffer on reads;
//   - Open and Close are collective (all ranks of the communicator call
//     them together), as the standard requires;
//   - collective data operations (WriteAtAll / ReadAtAll) implement
//     two-phase I/O: ranks exchange their pieces so that each rank performs
//     one large contiguous storage access instead of many interleaved small
//     ones.
//
// The package issues only file reads, writes, opens, closes and syncs —
// never a directory operation — which is precisely why Figure 1 shows HPC
// applications performing nothing but file I/O.
package mpiio

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/mpi"
	"repro/internal/storage"
)

// DefaultBufferSize is the per-rank write-behind buffer threshold.
const DefaultBufferSize = 1 << 20

// File is an MPI-IO file handle held by one rank.
type File struct {
	fs   storage.FileSystem
	rank *mpi.Rank
	h    storage.Handle
	path string

	mu       sync.Mutex
	pending  []pendingWrite
	bufBytes int
	maxBuf   int
	atomic   bool
	closed   bool
}

type pendingWrite struct {
	off  int64
	data []byte
}

// Options tunes an open file.
type Options struct {
	// BufferSize is the write-behind threshold; <= 0 selects
	// DefaultBufferSize. A zero-buffer configuration (set to 1) makes every
	// write synchronous, which the consistency ablation uses.
	BufferSize int
}

// Open opens path collectively on every rank of r's communicator. When
// create is true, rank 0 creates (truncating) the file before the others
// open it.
func Open(r *mpi.Rank, fs storage.FileSystem, path string, create bool, opts Options) (*File, error) {
	if opts.BufferSize <= 0 {
		opts.BufferSize = DefaultBufferSize
	}
	var h storage.Handle
	var err error
	if create {
		if r.ID == 0 {
			h, err = fs.Create(r.Ctx, path)
		}
		r.Barrier() // others must not open before the create lands
		if r.ID != 0 {
			h, err = fs.Open(r.Ctx, path)
		}
	} else {
		h, err = fs.Open(r.Ctx, path)
	}
	if err != nil {
		// Collective semantics: every rank must learn of the failure; the
		// barrier above already ordered creates, so just report.
		return nil, fmt.Errorf("mpiio: open %q on rank %d: %w", path, r.ID, err)
	}
	return &File{fs: fs, rank: r, h: h, path: path, maxBuf: opts.BufferSize}, nil
}

// SetAtomicity toggles MPI-IO atomic mode (MPI_File_set_atomicity): when
// enabled, every write goes straight to storage (no write-behind), so
// sequential consistency among the ranks follows from the backend's own
// ordering. Enabling it flushes any buffered writes first. Collective in
// the standard; here each rank's handle is switched independently and the
// caller coordinates, as the traced applications do.
func (f *File) SetAtomicity(atomic bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return storage.ErrClosed
	}
	if atomic && !f.atomic {
		if err := f.flushLocked(); err != nil {
			return err
		}
	}
	f.atomic = atomic
	return nil
}

// Atomicity reports the handle's current atomic-mode setting.
func (f *File) Atomicity() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.atomic
}

// WriteAt buffers an independent write. The data becomes visible to other
// ranks only after Sync or Close (or immediately under atomic mode); it is
// always immediately visible to this rank's own reads.
func (f *File) WriteAt(off int64, p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, storage.ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("mpiio: write at %d: %w", off, storage.ErrInvalidArg)
	}
	if f.atomic {
		if _, err := f.h.WriteAt(f.rank.Ctx, off, p); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	f.pending = append(f.pending, pendingWrite{off: off, data: append([]byte(nil), p...)})
	f.bufBytes += len(p)
	if f.bufBytes >= f.maxBuf {
		if err := f.flushLocked(); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// ReadAt reads at off, overlaying this rank's pending writes so a rank
// always observes its own data (MPI-IO local visibility).
func (f *File) ReadAt(off int64, p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, storage.ErrClosed
	}
	n, err := f.h.ReadAt(f.rank.Ctx, off, p)
	if err != nil {
		return n, err
	}
	// Overlay pending writes; they may extend the visible region.
	for _, w := range f.pending {
		lo, hi := w.off, w.off+int64(len(w.data))
		rLo, rHi := off, off+int64(len(p))
		if hi <= rLo || lo >= rHi {
			continue
		}
		start := lo
		if start < rLo {
			start = rLo
		}
		end := hi
		if end > rHi {
			end = rHi
		}
		copy(p[start-off:end-off], w.data[start-lo:end-lo])
		if int(end-off) > n {
			n = int(end - off)
		}
	}
	return n, nil
}

// Sync flushes buffered writes (coalesced) and syncs the underlying handle,
// making this rank's writes globally visible — the MPI-IO visibility point.
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return storage.ErrClosed
	}
	if err := f.flushLocked(); err != nil {
		return err
	}
	return f.h.Sync(f.rank.Ctx)
}

// flushLocked merges pending writes into maximal contiguous runs (later
// writes win on overlap) and issues them to storage.
func (f *File) flushLocked() error {
	if len(f.pending) == 0 {
		return nil
	}
	runs := coalesce(f.pending)
	for _, w := range runs {
		if _, err := f.h.WriteAt(f.rank.Ctx, w.off, w.data); err != nil {
			return fmt.Errorf("mpiio: flush %q: %w", f.path, err)
		}
	}
	f.pending = nil
	f.bufBytes = 0
	return nil
}

// coalesce merges a write list into sorted, disjoint, maximal runs, with
// later writes overriding earlier ones where they overlap. Walking from the
// last write to the first, each earlier write keeps only the parts not
// already covered by later ones.
func coalesce(writes []pendingWrite) []pendingWrite {
	if len(writes) == 0 {
		return nil
	}
	covered := make([]pendingWrite, 0, len(writes))
	var result []pendingWrite
	for i := len(writes) - 1; i >= 0; i-- {
		if len(writes[i].data) == 0 {
			continue
		}
		pieces := []pendingWrite{writes[i]}
		for _, c := range covered {
			var next []pendingWrite
			for _, p := range pieces {
				next = append(next, subtract(p, c)...)
			}
			pieces = next
		}
		for _, p := range pieces {
			if len(p.data) > 0 {
				result = append(result, p)
			}
		}
		covered = append(covered, writes[i])
	}
	sort.Slice(result, func(a, b int) bool { return result[a].off < result[b].off })
	// Merge adjacent runs into maximal contiguous writes.
	var merged []pendingWrite
	for _, w := range result {
		if n := len(merged); n > 0 && merged[n-1].off+int64(len(merged[n-1].data)) == w.off {
			merged[n-1].data = append(merged[n-1].data, w.data...)
			continue
		}
		merged = append(merged, pendingWrite{w.off, append([]byte(nil), w.data...)})
	}
	return merged
}

// subtract returns the parts of p not covered by c.
func subtract(p, c pendingWrite) []pendingWrite {
	pLo, pHi := p.off, p.off+int64(len(p.data))
	cLo, cHi := c.off, c.off+int64(len(c.data))
	if cHi <= pLo || cLo >= pHi {
		return []pendingWrite{p}
	}
	var out []pendingWrite
	if pLo < cLo {
		out = append(out, pendingWrite{pLo, p.data[:cLo-pLo]})
	}
	if pHi > cHi {
		out = append(out, pendingWrite{cHi, p.data[cHi-pLo:]})
	}
	return out
}

// Close flushes, closes the storage handle, and synchronizes the
// communicator (MPI_File_close is collective).
func (f *File) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return storage.ErrClosed
	}
	err := f.flushLocked()
	f.closed = true
	f.mu.Unlock()
	if cerr := f.h.Close(f.rank.Ctx); err == nil {
		err = cerr
	}
	f.rank.Barrier()
	return err
}

// Piece is one (offset, data) extent contributed to a collective write.
type Piece struct {
	Off  int64
	Data []byte
}

// WriteAtAll is the collective two-phase write for one contiguous piece
// per rank; see WriteAtAllv for the general strided form.
func (f *File) WriteAtAll(off int64, p []byte) (int, error) {
	n, err := f.WriteAtAllv([]Piece{{Off: off, Data: p}})
	return int(n), err
}

// WriteAtAllv is the general collective two-phase write: every rank
// contributes any number of (possibly tiny, strided) pieces; the pieces
// are exchanged across the communicator and each rank issues ONE large
// contiguous write covering its share of the union range — the I/O
// aggregation that turns N*k interleaved small accesses into N sequential
// streams. All ranks must call it together. Returns this rank's
// contributed byte count.
func (f *File) WriteAtAllv(pieces []Piece) (int64, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, storage.ErrClosed
	}
	f.mu.Unlock()
	for _, p := range pieces {
		if p.Off < 0 {
			return 0, fmt.Errorf("mpiio: collective write at %d: %w", p.Off, storage.ErrInvalidArg)
		}
	}
	var contributed int64
	for _, p := range pieces {
		contributed += int64(len(p.Data))
	}

	all := f.exchangeV(pieces)
	lo, hi := unionRangeV(all)
	if hi <= lo {
		f.rank.Barrier()
		return contributed, nil
	}
	// Partition [lo, hi) into size contiguous shares; this rank assembles
	// and writes share #ID. Interior share boundaries are aligned to the
	// backend's chunk size (storage.ChunkSizer) so each aggregated write
	// covers whole chunks: on the blob store that sends every chunk to
	// exactly one writer — no two ranks contend for one chunk's replica
	// set, and a multi-chunk share commits through the 2PC batched write
	// path instead of splitting chunks across ranks.
	size := int64(f.rank.Size())
	span := hi - lo
	share := (span + size - 1) / size
	myLo := shareBound(lo, hi, share, f.chunkAlign(), int64(f.rank.ID))
	myHi := shareBound(lo, hi, share, f.chunkAlign(), int64(f.rank.ID)+1)
	if myLo < myHi {
		buf := make([]byte, myHi-myLo)
		filled := false
		for _, pc := range all {
			pLo, pHi := pc.Off, pc.Off+int64(len(pc.Data))
			if pHi <= myLo || pLo >= myHi {
				continue
			}
			start, end := pLo, pHi
			if start < myLo {
				start = myLo
			}
			if end > myHi {
				end = myHi
			}
			copy(buf[start-myLo:end-myLo], pc.Data[start-pLo:end-pLo])
			filled = true
		}
		if filled {
			f.mu.Lock()
			_, err := f.h.WriteAt(f.rank.Ctx, myLo, buf)
			f.mu.Unlock()
			if err != nil {
				return 0, fmt.Errorf("mpiio: collective write: %w", err)
			}
		}
	}
	f.rank.Barrier() // collective completion
	return contributed, nil
}

// chunkAlign reports the backend's chunk granularity for collective share
// partitioning (0 = no alignment).
func (f *File) chunkAlign() int64 {
	if cs, ok := f.fs.(storage.ChunkSizer); ok {
		return int64(cs.ChunkSize())
	}
	return 0
}

// shareBound returns the k-th boundary of the collective share partition of
// [lo, hi): the nominal boundary lo + k*share, rounded up to the next chunk
// multiple when the backend has one. Rounding each absolute boundary (not
// the share width) keeps the partition exact — boundaries stay monotone,
// the first is lo, the last is hi, and every interior one lands on a chunk
// edge even when lo itself is unaligned. Shares may end up empty; their
// ranks simply skip the write and meet the others at the barrier.
func shareBound(lo, hi, share, align, k int64) int64 {
	b := lo + k*share
	if b >= hi {
		return hi
	}
	if b <= lo {
		return lo
	}
	if align > 1 {
		if rem := b % align; rem != 0 {
			b += align - rem
		}
		if b > hi {
			b = hi
		}
	}
	return b
}

// ReadAtAll is the collective read: every rank reads its extent and the
// communicator synchronizes on completion. Aggregation happens on the
// write path (WriteAtAll), where interleaved small accesses are the
// dominant pattern in the traced applications; collective reads in those
// applications are already contiguous per rank.
func (f *File) ReadAtAll(off int64, p []byte) (int, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, storage.ErrClosed
	}
	n, err := f.h.ReadAt(f.rank.Ctx, off, p)
	f.mu.Unlock()
	f.rank.Barrier()
	return n, err
}

// exchangeV all-gathers every rank's piece list. Wire format: u32 piece
// count, then per piece i64 offset, u32 length, data bytes.
func (f *File) exchangeV(pieces []Piece) []Piece {
	size := 4
	for _, p := range pieces {
		size += 12 + len(p.Data)
	}
	payload := make([]byte, 0, size)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(pieces)))
	payload = append(payload, hdr[:4]...)
	for _, p := range pieces {
		binary.LittleEndian.PutUint64(hdr[0:8], uint64(p.Off))
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(p.Data)))
		payload = append(payload, hdr[:12]...)
		payload = append(payload, p.Data...)
	}
	all := f.rank.AllGather(payload)
	var out []Piece
	for _, b := range all {
		if len(b) < 4 {
			continue
		}
		count := binary.LittleEndian.Uint32(b[:4])
		pos := 4
		for i := uint32(0); i < count && pos+12 <= len(b); i++ {
			off := int64(binary.LittleEndian.Uint64(b[pos : pos+8]))
			n := int(binary.LittleEndian.Uint32(b[pos+8 : pos+12]))
			pos += 12
			if pos+n > len(b) {
				break
			}
			out = append(out, Piece{Off: off, Data: b[pos : pos+n]})
			pos += n
		}
	}
	return out
}

func unionRangeV(pieces []Piece) (lo, hi int64) {
	first := true
	for _, p := range pieces {
		if len(p.Data) == 0 {
			continue
		}
		pLo, pHi := p.Off, p.Off+int64(len(p.Data))
		if first || pLo < lo {
			lo = pLo
		}
		if first || pHi > hi {
			hi = pHi
		}
		first = false
	}
	if first {
		return 0, 0
	}
	return lo, hi
}
