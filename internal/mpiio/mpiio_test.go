package mpiio

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/fs/posixfs"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
)

func newTracedFS() (*trace.FS, *trace.Census) {
	census := trace.NewCensus()
	fs := trace.Wrap(posixfs.NewStrict(cluster.New(cluster.Config{Nodes: 5, Seed: 1})), census)
	return fs, census
}

func TestCollectiveCreateAndRoundTrip(t *testing.T) {
	fs, _ := newTracedFS()
	errs := mpi.Run(4, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Open(r, fs, "/out.dat", true, Options{})
		if err != nil {
			return err
		}
		region := []byte(fmt.Sprintf("rank-%d-data", r.ID))
		if _, err := f.WriteAt(int64(r.ID*16), region); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		r.Barrier() // everyone synced; now cross-rank reads must see data
		buf := make([]byte, len(region))
		other := (r.ID + 1) % r.Size()
		want := fmt.Sprintf("rank-%d-data", other)
		if _, err := f.ReadAt(int64(other*16), buf); err != nil {
			return err
		}
		if string(buf) != want {
			return fmt.Errorf("rank %d read %q, want %q", r.ID, buf, want)
		}
		return f.Close()
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestLocalVisibilityBeforeSync(t *testing.T) {
	fs, _ := newTracedFS()
	errs := mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Open(r, fs, "/f", true, Options{BufferSize: 1 << 20})
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.WriteAt(10, []byte("buffered")); err != nil {
			return err
		}
		// Own write visible without any sync.
		buf := make([]byte, 8)
		n, err := f.ReadAt(10, buf)
		if err != nil || n != 8 || string(buf) != "buffered" {
			return fmt.Errorf("own write invisible: (%d, %v, %q)", n, err, buf)
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

// MPI-IO semantics: another rank must NOT see a write until the writer
// syncs. (The underlying posixfs would show it immediately; the buffering
// layer is what relaxes the visibility.)
func TestDeferredGlobalVisibility(t *testing.T) {
	fs, _ := newTracedFS()
	errs := mpi.Run(2, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Open(r, fs, "/shared", true, Options{BufferSize: 1 << 20})
		if err != nil {
			return err
		}
		defer f.Close()
		if r.ID == 0 {
			if _, err := f.WriteAt(0, []byte("unsynced")); err != nil {
				return err
			}
		}
		r.Barrier()
		if r.ID == 1 {
			buf := make([]byte, 8)
			n, _ := f.ReadAt(0, buf)
			if n != 0 {
				return fmt.Errorf("rank 1 saw %d unsynced bytes (%q)", n, buf[:n])
			}
		}
		r.Barrier()
		if r.ID == 0 {
			if err := f.Sync(); err != nil {
				return err
			}
		}
		r.Barrier()
		if r.ID == 1 {
			buf := make([]byte, 8)
			n, _ := f.ReadAt(0, buf)
			if n != 8 || string(buf) != "unsynced" {
				return fmt.Errorf("rank 1 after sync: (%d, %q)", n, buf[:n])
			}
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCoalescing(t *testing.T) {
	fs, census := newTracedFS()
	errs := mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Open(r, fs, "/seq", true, Options{BufferSize: 1 << 20})
		if err != nil {
			return err
		}
		// 100 tiny sequential writes...
		for i := 0; i < 100; i++ {
			if _, err := f.WriteAt(int64(i*8), bytes.Repeat([]byte{byte(i)}, 8)); err != nil {
				return err
			}
		}
		return f.Close()
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	// ... must reach storage as one coalesced write.
	if got := census.OpCount(storage.OpWrite); got != 1 {
		t.Fatalf("storage saw %d writes, want 1 coalesced", got)
	}
	if got := census.BytesWritten(); got != 800 {
		t.Fatalf("bytes written = %d", got)
	}
}

func TestCoalesceOverlapLaterWins(t *testing.T) {
	got := coalesce([]pendingWrite{
		{0, []byte("aaaa")},
		{2, []byte("bbbb")},
		{4, []byte("cc")},
	})
	if len(got) != 1 {
		t.Fatalf("coalesce returned %d runs: %+v", len(got), got)
	}
	if got[0].off != 0 || string(got[0].data) != "aabbcc" {
		t.Fatalf("run = (%d, %q), want (0, aabbcc)", got[0].off, got[0].data)
	}
}

func TestCoalesceDisjointRunsStaySplit(t *testing.T) {
	got := coalesce([]pendingWrite{
		{100, []byte("xx")},
		{0, []byte("yy")},
	})
	if len(got) != 2 {
		t.Fatalf("coalesce = %+v", got)
	}
	if got[0].off != 0 || got[1].off != 100 {
		t.Fatalf("runs not sorted: %+v", got)
	}
}

// Property: flushing coalesced writes produces the same file content as
// applying the writes in order to a flat buffer.
func TestCoalesceEquivalenceProperty(t *testing.T) {
	type w struct {
		Off  uint8
		Data []byte
	}
	f := func(ws []w) bool {
		var writes []pendingWrite
		ref := make([]byte, 0, 512)
		for _, x := range ws {
			if len(x.Data) > 64 {
				x.Data = x.Data[:64]
			}
			writes = append(writes, pendingWrite{int64(x.Off), x.Data})
			need := int(x.Off) + len(x.Data)
			for len(ref) < need {
				ref = append(ref, 0)
			}
			copy(ref[x.Off:], x.Data)
		}
		runs := coalesce(writes)
		got := make([]byte, len(ref))
		// Runs must be disjoint and sorted; apply them.
		var last int64 = -1
		for _, r := range runs {
			if r.off < last {
				return false
			}
			last = r.off + int64(len(r.data))
			if int(last) > len(got) {
				return false
			}
			copy(got[r.off:], r.data)
		}
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveWriteAtAll(t *testing.T) {
	fs, census := newTracedFS()
	const ranks = 4
	const per = 64
	errs := mpi.Run(ranks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Open(r, fs, "/coll", true, Options{})
		if err != nil {
			return err
		}
		// Interleaved pattern: rank i owns bytes [i*per, (i+1)*per).
		data := bytes.Repeat([]byte{byte(r.ID + 1)}, per)
		if _, err := f.WriteAtAll(int64(r.ID*per), data); err != nil {
			return err
		}
		return f.Close()
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	// Verify file contents.
	ctx := storage.NewContext()
	h, err := fs.Open(ctx, "/coll")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ranks*per)
	n, err := h.ReadAt(ctx, 0, buf)
	if err != nil || n != ranks*per {
		t.Fatalf("ReadAt = (%d, %v)", n, err)
	}
	for i := 0; i < ranks; i++ {
		for j := 0; j < per; j++ {
			if buf[i*per+j] != byte(i+1) {
				t.Fatalf("byte %d = %d, want %d", i*per+j, buf[i*per+j], i+1)
			}
		}
	}
	// Two-phase I/O: exactly one storage write per rank (each aggregator
	// writes one contiguous share).
	if got := census.OpCount(storage.OpWrite); got != ranks {
		t.Fatalf("storage writes = %d, want %d aggregated", got, ranks)
	}
}

func TestCollectiveReadAtAll(t *testing.T) {
	fs, _ := newTracedFS()
	// Seed the file.
	ctx := storage.NewContext()
	h, _ := fs.Create(ctx, "/in")
	content := make([]byte, 256)
	for i := range content {
		content[i] = byte(i)
	}
	h.WriteAt(ctx, 0, content)
	h.Close(ctx)

	errs := mpi.Run(4, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Open(r, fs, "/in", false, Options{})
		if err != nil {
			return err
		}
		defer f.Close()
		buf := make([]byte, 64)
		n, err := f.ReadAtAll(int64(r.ID*64), buf)
		if err != nil || n != 64 {
			return fmt.Errorf("ReadAtAll = (%d, %v)", n, err)
		}
		for j := 0; j < 64; j++ {
			if buf[j] != byte(r.ID*64+j) {
				return fmt.Errorf("rank %d byte %d = %d", r.ID, j, buf[j])
			}
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestNoDirectoryOperationsIssued(t *testing.T) {
	// The Figure 1 property: an MPI-IO application issues file operations
	// only, regardless of what it does.
	fs, census := newTracedFS()
	errs := mpi.Run(4, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Open(r, fs, "/app.out", true, Options{})
		if err != nil {
			return err
		}
		for i := 0; i < 50; i++ {
			f.WriteAt(int64(r.ID*1000+i*8), make([]byte, 8))
		}
		f.Sync()
		buf := make([]byte, 8)
		f.ReadAt(0, buf)
		return f.Close()
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	if got := census.KindCount(storage.CallDirOp); got != 0 {
		t.Fatalf("MPI-IO issued %d directory operations", got)
	}
	if got := census.KindCount(storage.CallOther); got != 0 {
		t.Fatalf("MPI-IO issued %d 'other' calls", got)
	}
}

func TestClosedFileRejectsOps(t *testing.T) {
	fs, _ := newTracedFS()
	errs := mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Open(r, fs, "/f", true, Options{})
		if err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if _, err := f.WriteAt(0, []byte("x")); !errors.Is(err, storage.ErrClosed) {
			return fmt.Errorf("write after close: %v", err)
		}
		if _, err := f.ReadAt(0, make([]byte, 1)); !errors.Is(err, storage.ErrClosed) {
			return fmt.Errorf("read after close: %v", err)
		}
		if err := f.Sync(); !errors.Is(err, storage.ErrClosed) {
			return fmt.Errorf("sync after close: %v", err)
		}
		if err := f.Close(); !errors.Is(err, storage.ErrClosed) {
			return fmt.Errorf("double close: %v", err)
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissingFileFails(t *testing.T) {
	fs, _ := newTracedFS()
	errs := mpi.Run(2, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		_, err := Open(r, fs, "/absent", false, Options{})
		if err == nil {
			return fmt.Errorf("rank %d opened a missing file", r.ID)
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestBufferThresholdTriggersFlush(t *testing.T) {
	fs, census := newTracedFS()
	errs := mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Open(r, fs, "/f", true, Options{BufferSize: 64})
		if err != nil {
			return err
		}
		defer f.Close()
		// 64 bytes fills the buffer -> flush happens without Sync.
		for i := 0; i < 8; i++ {
			f.WriteAt(int64(i*8), make([]byte, 8))
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	if got := census.OpCount(storage.OpWrite); got == 0 {
		t.Fatal("threshold did not trigger a flush")
	}
}

func TestAtomicModeImmediateVisibility(t *testing.T) {
	fs, census := newTracedFS()
	errs := mpi.Run(2, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Open(r, fs, "/atomic", true, Options{BufferSize: 1 << 20})
		if err != nil {
			return err
		}
		defer f.Close()
		if err := f.SetAtomicity(true); err != nil {
			return err
		}
		if !f.Atomicity() {
			return fmt.Errorf("atomicity not set")
		}
		if r.ID == 0 {
			if _, err := f.WriteAt(0, []byte("atomic-data")); err != nil {
				return err
			}
		}
		r.Barrier()
		if r.ID == 1 {
			buf := make([]byte, 11)
			n, err := f.ReadAt(0, buf)
			if err != nil || n != 11 || string(buf) != "atomic-data" {
				return fmt.Errorf("atomic write invisible without sync: (%d, %v, %q)", n, err, buf[:n])
			}
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	// Atomic writes reach storage one-to-one (no coalescing).
	if got := census.OpCount(storage.OpWrite); got != 1 {
		t.Fatalf("storage writes = %d, want 1", got)
	}
}

func TestSetAtomicityFlushesPending(t *testing.T) {
	fs, census := newTracedFS()
	errs := mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Open(r, fs, "/flush", true, Options{BufferSize: 1 << 20})
		if err != nil {
			return err
		}
		defer f.Close()
		for i := 0; i < 10; i++ {
			f.WriteAt(int64(i*4), make([]byte, 4))
		}
		if census.OpCount(storage.OpWrite) != 0 {
			return fmt.Errorf("buffered writes leaked early")
		}
		if err := f.SetAtomicity(true); err != nil {
			return err
		}
		if census.OpCount(storage.OpWrite) == 0 {
			return fmt.Errorf("enabling atomic mode did not flush")
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestSetAtomicityOnClosedFile(t *testing.T) {
	fs, _ := newTracedFS()
	errs := mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Open(r, fs, "/c", true, Options{})
		if err != nil {
			return err
		}
		f.Close()
		if err := f.SetAtomicity(true); !errors.Is(err, storage.ErrClosed) {
			return fmt.Errorf("SetAtomicity after close: %v", err)
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAtAllvAggregatesStridedPieces(t *testing.T) {
	fs, census := newTracedFS()
	const ranks = 4
	const blocks = 8
	const bs = 64
	errs := mpi.Run(ranks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Open(r, fs, "/stride", true, Options{})
		if err != nil {
			return err
		}
		pieces := make([]Piece, blocks)
		for j := 0; j < blocks; j++ {
			data := bytes.Repeat([]byte{byte(r.ID + 1)}, bs)
			pieces[j] = Piece{Off: int64((j*ranks + r.ID) * bs), Data: data}
		}
		n, err := f.WriteAtAllv(pieces)
		if err != nil || n != blocks*bs {
			return fmt.Errorf("WriteAtAllv = (%d, %v)", n, err)
		}
		return f.Close()
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	// 32 strided application pieces reach storage as `ranks` contiguous
	// writes — the two-phase aggregation.
	if got := census.OpCount(storage.OpWrite); got != ranks {
		t.Fatalf("storage writes = %d, want %d aggregated", got, ranks)
	}
	// Content check: block j belongs to rank (j mod ranks).
	ctx := storage.NewContext()
	h, err := fs.Open(ctx, "/stride")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ranks*blocks*bs)
	if n, _ := h.ReadAt(ctx, 0, buf); n != len(buf) {
		t.Fatalf("read %d/%d", n, len(buf))
	}
	for j := 0; j < ranks*blocks; j++ {
		want := byte(j%ranks + 1)
		for i := 0; i < bs; i++ {
			if buf[j*bs+i] != want {
				t.Fatalf("block %d byte %d = %d, want %d", j, i, buf[j*bs+i], want)
			}
		}
	}
}

func TestWriteAtAllvValidation(t *testing.T) {
	fs, _ := newTracedFS()
	errs := mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Open(r, fs, "/v", true, Options{})
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.WriteAtAllv([]Piece{{Off: -1, Data: []byte("x")}}); err == nil {
			return fmt.Errorf("negative offset accepted")
		}
		// Empty piece list: a no-op collective.
		if _, err := f.WriteAtAllv(nil); err != nil {
			return fmt.Errorf("empty list: %v", err)
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}
