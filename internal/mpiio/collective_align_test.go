package mpiio

import (
	"sync"
	"testing"

	"repro/internal/blob"
	"repro/internal/blobfs"
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/storage"
)

// recFS wraps a FileSystem and records every WriteAt issued through its
// handles, so the test can see exactly how the collective aggregated.
type recFS struct {
	storage.FileSystem
	mu     sync.Mutex
	writes []recWrite
}

type recWrite struct {
	off int64
	n   int
}

func (r *recFS) ChunkSize() int {
	if cs, ok := r.FileSystem.(storage.ChunkSizer); ok {
		return cs.ChunkSize()
	}
	return 0
}

func (r *recFS) Create(ctx *storage.Context, path string) (storage.Handle, error) {
	h, err := r.FileSystem.Create(ctx, path)
	if err != nil {
		return nil, err
	}
	return &recHandle{Handle: h, fs: r}, nil
}

func (r *recFS) Open(ctx *storage.Context, path string) (storage.Handle, error) {
	h, err := r.FileSystem.Open(ctx, path)
	if err != nil {
		return nil, err
	}
	return &recHandle{Handle: h, fs: r}, nil
}

type recHandle struct {
	storage.Handle
	fs *recFS
}

func (h *recHandle) WriteAt(ctx *storage.Context, off int64, p []byte) (int, error) {
	h.fs.mu.Lock()
	h.fs.writes = append(h.fs.writes, recWrite{off, len(p)})
	h.fs.mu.Unlock()
	return h.Handle.WriteAt(ctx, off, p)
}

// TestWriteAtAllvChunkAlignedShares pins the collective share partition to
// the backend's chunk grid: over a 64-byte-chunk blob store, each rank's
// aggregated write must start and end on chunk boundaries (except at the
// union edges), no chunk may be touched by two ranks, and the assembled
// bytes must land exactly.
func TestWriteAtAllvChunkAlignedShares(t *testing.T) {
	const (
		chunk  = 64
		ranks  = 4
		piece  = 16
		rounds = 6
		total  = int64(ranks * piece * rounds) // 384, contiguous union
	)
	c := cluster.New(cluster.Config{Nodes: 5, Seed: 1})
	inner := blobfs.New(blob.New(c, blob.Config{ChunkSize: chunk, Replication: 2}))
	fs := &recFS{FileSystem: inner}
	if fs.ChunkSize() != chunk {
		t.Fatalf("ChunkSize through wrapper = %d, want %d", fs.ChunkSize(), chunk)
	}

	errs := mpi.Run(ranks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Open(r, fs, "/strided.dat", true, Options{})
		if err != nil {
			return err
		}
		// Rank r owns the r-th 16-byte slot of every 64-byte round: the
		// classic interleaved access pattern collective I/O exists for.
		var pieces []Piece
		for k := 0; k < rounds; k++ {
			data := make([]byte, piece)
			for i := range data {
				data[i] = byte(1 + r.ID*rounds + k)
			}
			pieces = append(pieces, Piece{Off: int64(k*ranks*piece + r.ID*piece), Data: data})
		}
		if _, err := f.WriteAtAllv(pieces); err != nil {
			return err
		}
		return f.Close()
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}

	// Every aggregated write sits on the chunk grid and covers each chunk
	// at most once.
	fs.mu.Lock()
	writes := append([]recWrite(nil), fs.writes...)
	fs.mu.Unlock()
	if len(writes) == 0 || len(writes) > ranks {
		t.Fatalf("got %d aggregated writes, want 1..%d (one per contributing rank)", len(writes), ranks)
	}
	seen := make(map[int64]bool)
	for _, w := range writes {
		end := w.off + int64(w.n)
		if w.off%chunk != 0 {
			t.Errorf("aggregated write starts off-grid at %d", w.off)
		}
		if end%chunk != 0 && end != total {
			t.Errorf("aggregated write ends off-grid at %d", end)
		}
		for ci := w.off / chunk; ci*chunk < end; ci++ {
			if seen[ci] {
				t.Errorf("chunk %d written by two ranks", ci)
			}
			seen[ci] = true
		}
	}

	// The bytes landed exactly: slot i of round k holds rank i's fill.
	ctx := storage.NewContext()
	h, err := inner.Open(ctx, "/strided.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close(ctx)
	got := make([]byte, total)
	if n, err := h.ReadAt(ctx, 0, got); err != nil || int64(n) != total {
		t.Fatalf("read back = (%d, %v)", n, err)
	}
	for p := int64(0); p < total; p++ {
		rank := int(p/piece) % ranks
		round := int(p / (ranks * piece))
		if want := byte(1 + rank*rounds + round); got[p] != want {
			t.Fatalf("byte %d = %d, want %d", p, got[p], want)
		}
	}
}
