package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// TestMultiLogSingleLaneByteIdentical pins the acceptance baseline: a
// MultiLog with one lane, driven through any mix of AppendV and AppendNV,
// produces a byte stream identical to a plain Log fed the same appends —
// the lane format IS the single-log format, order keys land where LSNs do.
func TestMultiLogSingleLaneByteIdentical(t *testing.T) {
	f := func(ops []vOp, batchEvery uint8) bool {
		m := NewMultiLog(1)
		var rb Buffer
		ref := New(&rb)

		every := int(batchEvery%4) + 1
		var batch []AppendVSpec
		flush := func() bool {
			if len(batch) == 0 {
				return true
			}
			mk, mn, err := m.AppendNV(0, batch)
			if err != nil {
				return false
			}
			rk, rn, err := ref.AppendNV(batch)
			if err != nil {
				return false
			}
			batch = batch[:0]
			return mk == rk && mn == rn
		}
		for i, op := range ops {
			if i%every == every-1 {
				batch = append(batch, AppendVSpec{Type: RecordType(op.T), Header: op.Header, Payload: op.Payload})
				if !flush() {
					return false
				}
				continue
			}
			mk, mn, err := m.AppendV(0, RecordType(op.T), op.Header, op.Payload)
			if err != nil {
				return false
			}
			rk, rn, err := ref.AppendV(RecordType(op.T), op.Header, op.Payload)
			if err != nil {
				return false
			}
			if mk != rk || mn != rn {
				return false
			}
		}
		if !flush() {
			return false
		}
		got := readerBytes(t, m.LaneBuffer(0))
		want := readerBytes(t, &rb)
		if !bytes.Equal(got, want) {
			t.Logf("single-lane MultiLog diverges from Log: %d vs %d bytes", len(got), len(want))
			return false
		}
		return m.Size() == ref.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiLogMergedOrderConcurrent drives concurrent appenders across the
// lanes and checks the merge contract: ReplayMerged yields every record
// exactly once, keys exactly consecutive from 1, each record bit-identical
// to what the appender that received that key wrote.
func TestMultiLogMergedOrderConcurrent(t *testing.T) {
	const (
		writers = 8
		perW    = 200
		lanes   = 4
	)
	m := NewMultiLog(lanes)
	type wrote struct {
		typ     RecordType
		payload []byte
	}
	byKey := make([]wrote, writers*perW+1) // 1-indexed by order key
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perW; j++ {
				lane := (w + j) % lanes
				typ := RecordType(1 + (w+j)%11)
				payload := []byte(fmt.Sprintf("w%d-j%d", w, j))
				split := j % (len(payload) + 1)
				key, _, err := m.AppendV(lane, typ, payload[:split], payload[split:])
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				mu.Lock()
				if byKey[key].payload != nil {
					t.Errorf("key %d assigned twice", key)
				}
				byKey[key] = wrote{typ, payload}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	next := uint64(1)
	err := m.ReplayMerged(func(rec Record) error {
		if rec.LSN != next {
			return fmt.Errorf("merged key %d, want %d", rec.LSN, next)
		}
		want := byKey[rec.LSN]
		if rec.Type != want.typ || !bytes.Equal(rec.Payload, want.payload) {
			return fmt.Errorf("key %d: record %v %q diverges from appended %v %q",
				rec.LSN, rec.Type, rec.Payload, want.typ, want.payload)
		}
		next++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := next-1, uint64(writers*perW); got != want {
		t.Fatalf("merged %d records, appended %d", got, want)
	}
}

// TestMultiLogGroupCommitCoalesces is the white-box staging test: requests
// pre-loaded into a lane's ring must flush as ONE medium write with
// consecutive keys and per-request sizes matching the reference encoding.
func TestMultiLogGroupCommitCoalesces(t *testing.T) {
	m := NewMultiLog(2)
	ln := &m.lanes[1]

	reqs := []*laneReq{
		{typ: RecWrite, header: []byte("hh"), payload: []byte("payload-one"), done: make(chan struct{}, 1)},
		{typ: RecCommit, done: make(chan struct{}, 1)},
		{batch: []AppendVSpec{
			{Type: RecCreate, Header: []byte("k1")},
			{Type: RecDelete, Payload: []byte("k2")},
		}, done: make(chan struct{}, 1)},
	}
	ln.mu.Lock()
	ln.flushing = true
	ln.queue = append(ln.queue, reqs...)
	ln.mu.Unlock()

	before := ln.buf.Writes()
	ln.drain()
	if got := ln.buf.Writes() - before; got != 1 {
		t.Fatalf("group commit issued %d medium writes for 3 staged requests, want 1", got)
	}
	wantKeys := []uint64{1, 2, 3} // batch occupies keys 3,4
	wantN := []int{
		recPrefixLen + 2 + 11,
		recPrefixLen,
		2*recPrefixLen + 2 + 2,
	}
	for i, r := range reqs {
		select {
		case <-r.done:
		default:
			t.Fatalf("request %d was not signaled", i)
		}
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
		if r.key != wantKeys[i] || r.n != wantN[i] {
			t.Fatalf("request %d: key=%d n=%d, want key=%d n=%d", i, r.key, r.n, wantKeys[i], wantN[i])
		}
	}
	var got []Record
	if err := m.ReplayMerged(func(rec Record) error {
		got = append(got, Record{Type: rec.Type, LSN: rec.LSN, Payload: append([]byte(nil), rec.Payload...)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("replayed %d records, want 4", len(got))
	}
	if got[0].Type != RecWrite || string(got[0].Payload) != "hhpayload-one" ||
		got[1].Type != RecCommit || got[2].Type != RecCreate || got[3].Type != RecDelete {
		t.Fatalf("coalesced batch replayed wrong: %+v", got)
	}
	if !ln.flushing && len(ln.queue) == 0 {
		return
	}
	t.Fatal("drain left the lane owned or non-empty")
}

// TestMultiLogRecoverRepairsTornLanes: a tear on one lane must make the
// merged prefix stop at the gap, recovery must truncate every lane to the
// prefix — including records on OTHER lanes that decoded clean but lie
// logically after the gap — and post-recovery appends must extend the
// prefix and survive the next replay.
func TestMultiLogRecoverRepairsTornLanes(t *testing.T) {
	m := NewMultiLog(2)
	// Alternate lanes: keys 1,3,5 on lane 0; keys 2,4,6 on lane 1.
	for i := 1; i <= 6; i++ {
		lane := (i + 1) % 2
		if _, _, err := m.AppendV(lane, RecWrite, nil, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Tear lane 0's tail: key 5's record is damaged -> merged prefix is
	// keys 1..4; key 6 on lane 1 is clean on its medium but unrecoverable.
	b0 := m.LaneBuffer(0)
	b0.Truncate(b0.Len() - 2)
	lane1Full := m.LaneBuffer(1).Len()

	var keys []uint64
	if err := m.RecoverMerged(func(rec Record) error {
		keys = append(keys, rec.LSN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 4 || keys[3] != 4 {
		t.Fatalf("recovered keys %v, want [1 2 3 4]", keys)
	}
	if m.LaneBuffer(1).Len() >= lane1Full {
		t.Fatal("repair did not truncate the after-gap record off lane 1")
	}
	if m.NextKey() != 5 {
		t.Fatalf("NextKey after recovery = %d, want 5", m.NextKey())
	}

	// Post-recovery appends land at key 5 and the next replay is clean and
	// complete.
	if key, _, err := m.AppendV(0, RecCommit, nil, []byte("after")); err != nil || key != 5 {
		t.Fatalf("post-recovery append: key=%d err=%v", key, err)
	}
	keys = keys[:0]
	if err := m.ReplayMerged(func(rec Record) error {
		keys = append(keys, rec.LSN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 || keys[4] != 5 {
		t.Fatalf("replay after post-recovery append: keys %v, want [1 2 3 4 5]", keys)
	}
}

// TestMultiLogCorruptLaneReportsErrCorrupt: a checksum failure on a lane
// the merge still needs must surface as ErrCorrupt, with only the exact
// pre-corruption prefix yielded, and RecoverMerged must refuse to repair.
func TestMultiLogCorruptLaneReportsErrCorrupt(t *testing.T) {
	m := NewMultiLog(2)
	for i := 1; i <= 4; i++ {
		if _, _, err := m.AppendV(i%2, RecWrite, nil, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Flip a byte inside lane 1's first record (keys 1 and 3 live there).
	if err := m.LaneBuffer(1).Corrupt(recPrefixLen); err != nil {
		t.Fatal(err)
	}
	var n int
	err := m.ReplayMerged(func(Record) error { n++; return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if n != 0 {
		t.Fatalf("yielded %d records past a corrupt key-1 record, want 0", n)
	}
	if err := m.RecoverMerged(func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("RecoverMerged err = %v, want ErrCorrupt", err)
	}
}

// TestMultiLogResetAllRestartsKeys: checkpoint compaction must restart the
// order keys at 1 so merged replay's start-at-1 invariant holds for the
// snapshot that follows, and the lanes must be empty.
func TestMultiLogResetAllRestartsKeys(t *testing.T) {
	m := NewMultiLog(3)
	for i := 0; i < 10; i++ {
		if _, _, err := m.AppendV(i%3, RecWrite, nil, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	m.ResetAll()
	if m.Size() != 0 || m.NextKey() != 1 {
		t.Fatalf("after ResetAll: size=%d nextKey=%d", m.Size(), m.NextKey())
	}
	key, _, err := m.AppendV(2, RecCreate, nil, []byte("snapshot"))
	if err != nil || key != 1 {
		t.Fatalf("first post-reset append: key=%d err=%v", key, err)
	}
	count := 0
	if err := m.ReplayMerged(func(rec Record) error {
		count++
		if rec.LSN != 1 || rec.Type != RecCreate {
			return fmt.Errorf("unexpected record %v key %d", rec.Type, rec.LSN)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("replayed %d records after reset+append, want 1", count)
	}
}

// batchedFeed serves a lane's pre-decoded records from memory — the
// staged-decode shape the blob store's parallel recovery pipeline hands
// the merge, terminal state included. Unlike a live Decoder it exposes the
// already-materialized transitions (batch exhaustion, done/err after a
// partial run) the feed contract has to define precisely.
type batchedFeed struct {
	recs   []Record
	frames []int64
	i      int
	done   bool
	err    error
}

func (f *batchedFeed) Next() (Record, int64, bool, error) {
	if f.i < len(f.recs) {
		rec, frame := f.recs[f.i], f.frames[f.i]
		f.i++
		return rec, frame, false, nil
	}
	return Record{}, 0, f.done, f.err
}

// preDecode drains one lane through the exported Decoder into a
// batchedFeed, exactly what a concurrent pre-decoding stage produces.
func preDecode(m *MultiLog, lane int) *batchedFeed {
	f := &batchedFeed{}
	dec := NewDecoder(m.LaneBuffer(lane).Reader())
	for {
		rec, frame, done, err := dec.Next()
		if done || err != nil {
			f.done, f.err = done, err
			return f
		}
		f.recs = append(f.recs, rec)
		f.frames = append(f.frames, frame)
	}
}

func preDecodeAll(m *MultiLog) []LaneFeed {
	feeds := make([]LaneFeed, m.Lanes())
	for lane := range feeds {
		feeds[lane] = preDecode(m, lane)
	}
	return feeds
}

// fillMergedFixture drives a deterministic interleaved history across 3
// lanes (singles and batches), so two calls produce byte-identical logs.
func fillMergedFixture(t *testing.T, m *MultiLog) {
	t.Helper()
	for i := 0; i < 40; i++ {
		lane := (i * 7) % 3
		payload := make([]byte, 5+(i*11)%90)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		if i%5 == 4 {
			specs := []AppendVSpec{
				{Type: RecWrite, Header: payload[:2], Payload: payload[2:]},
				{Type: RecCommit, Payload: payload[:3]},
			}
			if _, _, err := m.AppendNV(lane, specs); err != nil {
				t.Fatal(err)
			}
		} else if _, _, err := m.AppendV(lane, RecWrite, payload[:1], payload[1:]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMergedFeedsMatchSerial pins ReplayMergedFeeds/RecoverMergedFeeds
// against the serial decode path on the same torn media: identical record
// sequences, identical error, and — after recovery through feeds on one
// log and through the serial path on a byte-identical twin — identical
// repaired media and size accounting.
func TestMergedFeedsMatchSerial(t *testing.T) {
	for _, tear := range []struct {
		name string
		cut  func(m *MultiLog)
	}{
		{"untouched", func(m *MultiLog) {}},
		{"one-lane-torn", func(m *MultiLog) { m.LaneBuffer(1).Truncate(m.LaneBuffer(1).Len() - 4) }},
		{"two-lanes-torn", func(m *MultiLog) {
			m.LaneBuffer(0).Truncate(m.LaneBuffer(0).Len() / 2)
			m.LaneBuffer(2).Truncate(m.LaneBuffer(2).Len() - 1)
		}},
		{"lane-cleared", func(m *MultiLog) { m.LaneBuffer(2).Truncate(0) }},
		{"corrupt", func(m *MultiLog) {
			if err := m.LaneBuffer(0).Corrupt(10); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tear.name, func(t *testing.T) {
			m := NewMultiLog(3)
			twin := NewMultiLog(3)
			fillMergedFixture(t, m)
			fillMergedFixture(t, twin)
			tear.cut(m)
			tear.cut(twin)

			collect := func(dst *[]Record) func(Record) error {
				return func(rec Record) error {
					p := append([]byte(nil), rec.Payload...)
					*dst = append(*dst, Record{Type: rec.Type, LSN: rec.LSN, Payload: p})
					return nil
				}
			}
			var serial, fed []Record
			errSerial := m.ReplayMerged(collect(&serial))
			errFed := m.ReplayMergedFeeds(preDecodeAll(m), collect(&fed))
			if !errors.Is(errSerial, errFed) && !errors.Is(errFed, errSerial) {
				t.Fatalf("replay errors diverge: serial %v, feeds %v", errSerial, errFed)
			}
			if len(serial) != len(fed) {
				t.Fatalf("feeds merged %d records, serial %d", len(fed), len(serial))
			}
			for i := range serial {
				if serial[i].Type != fed[i].Type || serial[i].LSN != fed[i].LSN ||
					!bytes.Equal(serial[i].Payload, fed[i].Payload) {
					t.Fatalf("record %d diverges between serial and feed merge", i)
				}
			}
			if errSerial != nil {
				return // corrupt media: no repair to compare
			}

			// Recovery through feeds on m, through serial decode on the twin:
			// repaired media and accounting must be byte-identical.
			if err := m.RecoverMergedFeeds(preDecodeAll(m), func(Record) error { return nil }); err != nil {
				t.Fatalf("feed recovery: %v", err)
			}
			if err := twin.RecoverMerged(func(Record) error { return nil }); err != nil {
				t.Fatalf("serial recovery: %v", err)
			}
			for lane := 0; lane < 3; lane++ {
				got := readerBytes(t, m.LaneBuffer(lane))
				want := readerBytes(t, twin.LaneBuffer(lane))
				if !bytes.Equal(got, want) {
					t.Fatalf("lane %d repaired media diverge: %d vs %d bytes", lane, len(got), len(want))
				}
				if m.LaneSize(lane) != twin.LaneSize(lane) {
					t.Fatalf("lane %d size accounting diverges: %d vs %d", lane, m.LaneSize(lane), twin.LaneSize(lane))
				}
			}
			if m.NextKey() != twin.NextKey() {
				t.Fatalf("re-based keys diverge: %d vs %d", m.NextKey(), twin.NextKey())
			}
		})
	}
}
