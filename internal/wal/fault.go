package wal

import (
	"errors"
	"sync"
	"time"

	"repro/internal/sim"
)

// FaultMedium wraps a log medium with seeded, deterministic write-fault
// injection: clean errors (nothing lands), torn writes (a random strict
// prefix lands, then the medium goes sticky-dead like a yanked disk), and
// slow writes (virtual-time delay accumulated for the caller to charge).
// It implements RecordWriter, so a Log built on it exercises the vectored
// append path exactly as a Buffer does.
//
// Intended for WAL-layer tests: the blob store's append path treats medium
// errors as fatal (it panics — see Log.src's key-burning note), so storage
// chaos tests inject faults at the cluster layer instead and simulate media
// loss with Buffer.Truncate/Corrupt before recovery.

// ErrMediumDead is returned by every write after a torn write killed the
// medium, until Revive.
var ErrMediumDead = errors.New("wal: medium dead")

// ErrMediumFault is the injected clean write failure: the medium stays
// usable and the write left no bytes behind.
var ErrMediumFault = errors.New("wal: injected medium fault")

// FaultMediumConfig tunes a FaultMedium. Probabilities are evaluated per
// write in the order slow, error, tear; zero values disable that fault.
type FaultMediumConfig struct {
	Seed     uint64
	ErrProb  float64       // clean failure: error returned, nothing written
	TearProb float64       // torn write: strict prefix lands, then sticky-dead
	SlowProb float64       // slow write: SlowBy added to Delay(), write proceeds
	SlowBy   time.Duration // virtual latency per slow write
}

// FaultMedium is a fault-injecting RecordWriter. Safe for concurrent use;
// given one goroutine (a WAL lane has a single flush leader at a time) the
// fault sequence is a pure function of the seed and the write sequence.
type FaultMedium struct {
	mu     sync.Mutex
	dst    RecordWriter
	rng    *sim.RNG
	cfg    FaultMediumConfig
	dead   bool
	delay  time.Duration
	faults int
}

// NewFaultMedium wraps dst with injection driven by cfg.
func NewFaultMedium(dst RecordWriter, cfg FaultMediumConfig) *FaultMedium {
	return &FaultMedium{dst: dst, rng: sim.NewRNG(cfg.Seed), cfg: cfg}
}

// Write implements io.Writer.
func (m *FaultMedium) Write(p []byte) (int, error) {
	return m.WriteV([][]byte{p})
}

// WriteV implements RecordWriter. A torn write lands a strict prefix of the
// concatenated segments (possibly none of them) and kills the medium: the
// next replay sees exactly what a power cut mid-write leaves behind.
func (m *FaultMedium) WriteV(segs [][]byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return 0, ErrMediumDead
	}
	if m.cfg.SlowProb > 0 && m.rng.Float64() < m.cfg.SlowProb {
		m.delay += m.cfg.SlowBy
	}
	if m.cfg.ErrProb > 0 && m.rng.Float64() < m.cfg.ErrProb {
		m.faults++
		return 0, ErrMediumFault
	}
	if m.cfg.TearProb > 0 && m.rng.Float64() < m.cfg.TearProb {
		m.faults++
		m.dead = true
		total := 0
		for _, s := range segs {
			total += len(s)
		}
		keep := 0
		if total > 0 {
			keep = m.rng.Intn(total) // strictly shorter than the full write
		}
		written := 0
		for _, s := range segs {
			take := len(s)
			if written+take > keep {
				take = keep - written
			}
			if take > 0 {
				n, err := m.dst.Write(s[:take])
				written += n
				if err != nil {
					return written, err
				}
			}
			if written >= keep {
				break
			}
		}
		return written, ErrMediumDead
	}
	return m.dst.WriteV(segs)
}

// Revive resurrects a torn-dead medium, modeling the disk coming back after
// the crash recovery that repaired it.
func (m *FaultMedium) Revive() {
	m.mu.Lock()
	m.dead = false
	m.mu.Unlock()
}

// Dead reports whether a torn write killed the medium.
func (m *FaultMedium) Dead() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dead
}

// Faults reports how many injected failures (clean or torn) have fired.
func (m *FaultMedium) Faults() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.faults
}

// Delay returns the accumulated virtual latency of slow writes; callers
// charge it to their simulated clock.
func (m *FaultMedium) Delay() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delay
}
