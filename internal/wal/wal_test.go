package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestAppendReplayRoundTrip(t *testing.T) {
	var b Buffer
	l := New(&b)
	payloads := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma-longer-payload")}
	types := []RecordType{RecCreate, RecWrite, RecCommit}
	for i := range payloads {
		lsn, n, err := l.Append(types[i], payloads[i])
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
		if n <= len(payloads[i]) {
			t.Fatalf("encoded size %d not larger than payload %d", n, len(payloads[i]))
		}
	}
	recs, err := ReplayAll(b.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Type != types[i] || r.LSN != uint64(i+1) || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
}

func TestReplayEmptyLog(t *testing.T) {
	var b Buffer
	recs, err := ReplayAll(b.Reader())
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty log: recs=%v err=%v", recs, err)
	}
}

func TestNextLSNAndSize(t *testing.T) {
	var b Buffer
	l := New(&b)
	if l.NextLSN() != 1 {
		t.Fatalf("NextLSN = %d", l.NextLSN())
	}
	_, n, _ := l.Append(RecDelete, []byte("x"))
	if l.NextLSN() != 2 {
		t.Fatalf("NextLSN after append = %d", l.NextLSN())
	}
	if l.Size() != int64(n) || b.Len() != n {
		t.Fatalf("Size=%d buffer=%d encoded=%d", l.Size(), b.Len(), n)
	}
}

func TestReplayStopsAtCorruption(t *testing.T) {
	var b Buffer
	l := New(&b)
	_, n1, _ := l.Append(RecCreate, []byte("one"))
	l.Append(RecWrite, []byte("two"))
	l.Append(RecCommit, []byte("three"))
	// Corrupt a byte inside the second record's payload region: record 2
	// starts at n1; skip its 8-byte header plus the type/LSN prefix.
	if err := b.Corrupt(n1 + 8 + 9); err != nil {
		t.Fatal(err)
	}
	var seen int
	err := Replay(b.Reader(), func(Record) error { seen++; return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if seen != 1 {
		t.Fatalf("replayed %d records before corruption, want 1", seen)
	}
}

func TestReplayTornTailIsClean(t *testing.T) {
	var b Buffer
	l := New(&b)
	l.Append(RecCreate, []byte("first"))
	l.Append(RecWrite, []byte("second-record-payload"))
	full := b.Len()
	for _, cut := range []int{full - 1, full - 5, full - 20} {
		var c Buffer
		c.Write(readerBytes(t, &b))
		c.Truncate(cut)
		recs, err := ReplayAll(c.Reader())
		if err != nil {
			t.Fatalf("cut=%d: torn tail returned error %v", cut, err)
		}
		if len(recs) != 1 {
			t.Fatalf("cut=%d: replayed %d records, want 1", cut, len(recs))
		}
	}
}

func readerBytes(t *testing.T, b *Buffer) []byte {
	t.Helper()
	var out bytes.Buffer
	if _, err := out.ReadFrom(b.Reader()); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestReplayHandlerErrorPropagates(t *testing.T) {
	var b Buffer
	l := New(&b)
	l.Append(RecCreate, nil)
	want := errors.New("handler boom")
	err := Replay(b.Reader(), func(Record) error { return want })
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want handler error", err)
	}
}

func TestBufferCorruptBounds(t *testing.T) {
	var b Buffer
	if err := b.Corrupt(0); err == nil {
		t.Fatal("Corrupt on empty buffer did not error")
	}
	b.Write([]byte{1, 2, 3})
	if err := b.Corrupt(5); err == nil {
		t.Fatal("Corrupt out of range did not error")
	}
	if err := b.Corrupt(1); err != nil {
		t.Fatal(err)
	}
}

func TestRecordTypeString(t *testing.T) {
	cases := map[RecordType]string{
		RecCreate: "create", RecDelete: "delete", RecWrite: "write",
		RecTruncate: "truncate", RecCommit: "commit", RecAbort: "abort",
		RecordType(99): "RecordType(99)",
	}
	for tt, want := range cases {
		if got := tt.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", tt, got, want)
		}
	}
}

func TestConcurrentAppendsUniqueLSNs(t *testing.T) {
	var b Buffer
	l := New(&b)
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				lsn, _, err := l.Append(RecWrite, []byte(fmt.Sprintf("%d-%d", i, j)))
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[lsn] {
					t.Errorf("duplicate LSN %d", lsn)
				}
				seen[lsn] = true
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	recs, err := ReplayAll(b.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 800 {
		t.Fatalf("replayed %d records, want 800", len(recs))
	}
}

// Property: any sequence of appended payloads replays byte-identically and
// in order.
func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var b Buffer
		l := New(&b)
		for _, p := range payloads {
			if _, _, err := l.Append(RecWrite, p); err != nil {
				return false
			}
		}
		recs, err := ReplayAll(b.Reader())
		if err != nil || len(recs) != len(payloads) {
			return false
		}
		for i, r := range recs {
			if !bytes.Equal(r.Payload, payloads[i]) || r.LSN != uint64(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
