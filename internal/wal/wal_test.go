package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestAppendReplayRoundTrip(t *testing.T) {
	var b Buffer
	l := New(&b)
	payloads := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma-longer-payload")}
	types := []RecordType{RecCreate, RecWrite, RecCommit}
	for i := range payloads {
		lsn, n, err := l.Append(types[i], payloads[i])
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
		if n <= len(payloads[i]) {
			t.Fatalf("encoded size %d not larger than payload %d", n, len(payloads[i]))
		}
	}
	recs, err := ReplayAll(b.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Type != types[i] || r.LSN != uint64(i+1) || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
}

func TestReplayEmptyLog(t *testing.T) {
	var b Buffer
	recs, err := ReplayAll(b.Reader())
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty log: recs=%v err=%v", recs, err)
	}
}

func TestNextLSNAndSize(t *testing.T) {
	var b Buffer
	l := New(&b)
	if l.NextLSN() != 1 {
		t.Fatalf("NextLSN = %d", l.NextLSN())
	}
	_, n, _ := l.Append(RecDelete, []byte("x"))
	if l.NextLSN() != 2 {
		t.Fatalf("NextLSN after append = %d", l.NextLSN())
	}
	if l.Size() != int64(n) || b.Len() != n {
		t.Fatalf("Size=%d buffer=%d encoded=%d", l.Size(), b.Len(), n)
	}
}

func TestReplayStopsAtCorruption(t *testing.T) {
	var b Buffer
	l := New(&b)
	_, n1, _ := l.Append(RecCreate, []byte("one"))
	l.Append(RecWrite, []byte("two"))
	l.Append(RecCommit, []byte("three"))
	// Corrupt a byte inside the second record's payload region: record 2
	// starts at n1; skip its 8-byte header plus the type/LSN prefix.
	if err := b.Corrupt(n1 + 8 + 9); err != nil {
		t.Fatal(err)
	}
	var seen int
	err := Replay(b.Reader(), func(Record) error { seen++; return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if seen != 1 {
		t.Fatalf("replayed %d records before corruption, want 1", seen)
	}
}

func TestReplayTornTailIsClean(t *testing.T) {
	var b Buffer
	l := New(&b)
	l.Append(RecCreate, []byte("first"))
	l.Append(RecWrite, []byte("second-record-payload"))
	full := b.Len()
	for _, cut := range []int{full - 1, full - 5, full - 20} {
		var c Buffer
		c.Write(readerBytes(t, &b))
		c.Truncate(cut)
		recs, err := ReplayAll(c.Reader())
		if err != nil {
			t.Fatalf("cut=%d: torn tail returned error %v", cut, err)
		}
		if len(recs) != 1 {
			t.Fatalf("cut=%d: replayed %d records, want 1", cut, len(recs))
		}
	}
}

func readerBytes(t *testing.T, b *Buffer) []byte {
	t.Helper()
	var out bytes.Buffer
	if _, err := out.ReadFrom(b.Reader()); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestReplayHandlerErrorPropagates(t *testing.T) {
	var b Buffer
	l := New(&b)
	l.Append(RecCreate, nil)
	want := errors.New("handler boom")
	err := Replay(b.Reader(), func(Record) error { return want })
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want handler error", err)
	}
}

func TestBufferCorruptBounds(t *testing.T) {
	var b Buffer
	if err := b.Corrupt(0); err == nil {
		t.Fatal("Corrupt on empty buffer did not error")
	}
	b.Write([]byte{1, 2, 3})
	if err := b.Corrupt(5); err == nil {
		t.Fatal("Corrupt out of range did not error")
	}
	if err := b.Corrupt(1); err != nil {
		t.Fatal(err)
	}
}

func TestRecordTypeString(t *testing.T) {
	cases := map[RecordType]string{
		RecCreate: "create", RecDelete: "delete", RecWrite: "write",
		RecTruncate: "truncate", RecCommit: "commit", RecAbort: "abort",
		RecordType(99): "RecordType(99)",
	}
	for tt, want := range cases {
		if got := tt.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", tt, got, want)
		}
	}
}

func TestConcurrentAppendsUniqueLSNs(t *testing.T) {
	var b Buffer
	l := New(&b)
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				lsn, _, err := l.Append(RecWrite, []byte(fmt.Sprintf("%d-%d", i, j)))
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[lsn] {
					t.Errorf("duplicate LSN %d", lsn)
				}
				seen[lsn] = true
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	recs, err := ReplayAll(b.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 800 {
		t.Fatalf("replayed %d records, want 800", len(recs))
	}
}

// plainWriter hides a Buffer's WriteV so a Log falls back to the staging
// encode path, which must produce the identical byte stream.
type plainWriter struct{ b *Buffer }

func (w plainWriter) Write(p []byte) (int, error) { return w.b.Write(p) }

// vOp is one randomized record shape for the vectored-equivalence
// properties: a type, a header segment, and a payload segment.
type vOp struct {
	T       uint8
	Header  []byte
	Payload []byte
}

// legacyStream encodes ops with the reference single-buffer encoder
// appendRecord (payload = header||payload), with LSNs from 1 — the
// on-medium stream every append form is pinned against.
func legacyStream(ops []vOp) []byte {
	var dst []byte
	for i, op := range ops {
		joined := append(append([]byte(nil), op.Header...), op.Payload...)
		dst = appendRecord(dst, RecordType(op.T), uint64(i+1), joined)
	}
	return dst
}

// checkAccounting verifies one append's LSN/size bookkeeping against the
// reference encoder's encoded length.
func checkAccounting(t *testing.T, l *Log, lsn uint64, wantLSN uint64, n, wantN int) {
	t.Helper()
	if lsn != wantLSN {
		t.Fatalf("lsn = %d, want %d", lsn, wantLSN)
	}
	if n != wantN {
		t.Fatalf("encoded size = %d, want %d", n, wantN)
	}
}

// TestAppendVMatchesAppendRecord pins the vectored encode paths —
// AppendV and AppendNV, on both a RecordWriter target and a plain
// io.Writer fallback — byte-for-byte against the legacy appendRecord
// encoding across randomized type/header/payload shapes, including
// LSN/Size accounting equality.
func TestAppendVMatchesAppendRecord(t *testing.T) {
	f := func(ops []vOp) bool {
		want := legacyStream(ops)

		// AppendV, vectored target.
		var vb Buffer
		vl := New(&vb)
		// AppendV, fallback (staging) target.
		var fb Buffer
		fl := New(plainWriter{&fb})
		// AppendNV, vectored target, one atomic batch.
		var nb Buffer
		nl := New(&nb)
		specs := make([]AppendVSpec, 0, len(ops))

		off := 0
		for i, op := range ops {
			recLen := recPrefixLen + len(op.Header) + len(op.Payload)
			lsn, n, err := vl.AppendV(RecordType(op.T), op.Header, op.Payload)
			if err != nil {
				return false
			}
			checkAccounting(t, vl, lsn, uint64(i+1), n, recLen)
			lsn, n, err = fl.AppendV(RecordType(op.T), op.Header, op.Payload)
			if err != nil {
				return false
			}
			checkAccounting(t, fl, lsn, uint64(i+1), n, recLen)
			specs = append(specs, AppendVSpec{Type: RecordType(op.T), Header: op.Header, Payload: op.Payload})
			off += recLen
		}
		if len(specs) > 0 {
			first, n, err := nl.AppendNV(specs)
			if err != nil || first != 1 || n != len(want) {
				return false
			}
		}
		for name, b := range map[string]*Buffer{"AppendV": &vb, "AppendV-fallback": &fb, "AppendNV": &nb} {
			if got := readerBytes(t, b); !bytes.Equal(got, want) {
				t.Logf("%s stream diverges from appendRecord (%d vs %d bytes)", name, len(got), len(want))
				return false
			}
		}
		// Size/NextLSN accounting must agree with the reference stream.
		for _, l := range []*Log{vl, fl, nl} {
			if l.Size() != int64(len(want)) || l.NextLSN() != uint64(len(ops)+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendVEquivalentToAppend pins that splitting a record's payload at
// any point is invisible on the medium: Append(t, header||payload) and
// AppendV(t, header, payload) produce identical streams, and replay cannot
// tell which form wrote a record.
func TestAppendVEquivalentToAppend(t *testing.T) {
	f := func(joined []byte, cut uint8) bool {
		k := int(cut) % (len(joined) + 1)
		var ab, vb Buffer
		al, vl := New(&ab), New(&vb)
		if _, _, err := al.Append(RecWrite, joined); err != nil {
			return false
		}
		if _, _, err := vl.AppendV(RecWrite, joined[:k], joined[k:]); err != nil {
			return false
		}
		return bytes.Equal(readerBytes(t, &ab), readerBytes(t, &vb))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendNVMatchesSequentialAppendV: one atomic batch equals the record
// sequence appended one at a time, including the total-size return.
func TestAppendNVMatchesSequentialAppendV(t *testing.T) {
	f := func(ops []vOp) bool {
		if len(ops) == 0 {
			return true
		}
		var sb, nb Buffer
		sl, nl := New(&sb), New(&nb)
		total := 0
		specs := make([]AppendVSpec, len(ops))
		for i, op := range ops {
			_, n, err := sl.AppendV(RecordType(op.T), op.Header, op.Payload)
			if err != nil {
				return false
			}
			total += n
			specs[i] = AppendVSpec{Type: RecordType(op.T), Header: op.Header, Payload: op.Payload}
		}
		first, n, err := nl.AppendNV(specs)
		if err != nil || first != 1 || n != total {
			return false
		}
		return bytes.Equal(readerBytes(t, &sb), readerBytes(t, &nb))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBufferSlabbed exercises the segmented backing across slab boundaries:
// content written through Write/WriteV spanning many small slabs must read
// back exactly, Truncate and Corrupt must address the right slab, and Reset
// must recycle slabs without mixing stale bytes into new content.
func TestBufferSlabbed(t *testing.T) {
	b := &Buffer{SlabSize: 7}
	var want []byte
	for i := 0; i < 100; i++ {
		seg := bytes.Repeat([]byte{byte(i)}, i%13)
		if i%2 == 0 {
			b.Write(seg)
		} else {
			b.WriteV([][]byte{seg, seg})
			want = append(want, seg...)
		}
		want = append(want, seg...)
	}
	if b.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(want))
	}
	if got := readerBytes(t, b); !bytes.Equal(got, want) {
		t.Fatal("slabbed content diverges from contiguous reference")
	}
	if min := (len(want) + 6) / 7; b.Slabs() != min {
		t.Fatalf("Slabs = %d, want %d", b.Slabs(), min)
	}
	// Truncate mid-slab, then overwrite the tail: stale slab bytes beyond
	// the cut must not resurface.
	b.Truncate(100)
	b.Write(bytes.Repeat([]byte{0xEE}, 50))
	want = append(want[:100], bytes.Repeat([]byte{0xEE}, 50)...)
	if got := readerBytes(t, b); !bytes.Equal(got, want) {
		t.Fatal("content diverges after truncate+rewrite")
	}
	// Corrupt addresses the logical offset across slabs.
	if err := b.Corrupt(101); err != nil {
		t.Fatal(err)
	}
	want[101] ^= 0xff
	if got := readerBytes(t, b); !bytes.Equal(got, want) {
		t.Fatal("Corrupt flipped the wrong byte")
	}
	// Reset recycles: refilling must not see stale content.
	b.Reset()
	if b.Len() != 0 || b.Slabs() != 0 {
		t.Fatalf("after Reset: Len=%d Slabs=%d", b.Len(), b.Slabs())
	}
	b.Write([]byte("fresh"))
	if got := readerBytes(t, b); !bytes.Equal(got, []byte("fresh")) {
		t.Fatalf("after Reset+Write: %q", got)
	}
}

// Property: any sequence of appended payloads replays byte-identically and
// in order.
func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var b Buffer
		l := New(&b)
		for _, p := range payloads {
			if _, _, err := l.Append(RecWrite, p); err != nil {
				return false
			}
		}
		recs, err := ReplayAll(b.Reader())
		if err != nil || len(recs) != len(payloads) {
			return false
		}
		for i, r := range recs {
			if !bytes.Equal(r.Payload, payloads[i]) || r.LSN != uint64(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
