package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestFaultMediumCleanErrorLeavesNothing(t *testing.T) {
	b := &Buffer{}
	m := NewFaultMedium(b, FaultMediumConfig{Seed: 1, ErrProb: 1})
	l := New(m)
	for i := 0; i < 3; i++ {
		if _, _, err := l.Append(RecWrite, []byte("payload")); !errors.Is(err, ErrMediumFault) {
			t.Fatalf("append %d: got %v, want ErrMediumFault", i, err)
		}
	}
	if b.Len() != 0 {
		t.Fatalf("clean faults left %d bytes on the medium", b.Len())
	}
	if m.Dead() {
		t.Fatal("clean faults must not kill the medium")
	}
	if m.Faults() != 3 {
		t.Fatalf("Faults() = %d, want 3", m.Faults())
	}
	recs, err := ReplayAll(b.Reader())
	if err != nil || len(recs) != 0 {
		t.Fatalf("replay after clean faults: %d records, err %v", len(recs), err)
	}
}

func TestFaultMediumTornWriteStickyDead(t *testing.T) {
	b := &Buffer{}
	m := NewFaultMedium(b, FaultMediumConfig{Seed: 7, TearProb: 1})
	l := New(m)
	payload := bytes.Repeat([]byte("x"), 200)
	if _, _, err := l.Append(RecWrite, payload); err == nil {
		t.Fatal("torn append reported success")
	}
	if !m.Dead() {
		t.Fatal("torn write must kill the medium")
	}
	if b.Len() >= recPrefixLen+len(payload) {
		t.Fatalf("tear landed the full record: %d bytes", b.Len())
	}
	// The torn record is invisible: replay of the prefix is clean and empty.
	recs, err := ReplayAll(b.Reader())
	if err != nil || len(recs) != 0 {
		t.Fatalf("torn record visible: %d records, err %v", len(recs), err)
	}
	if _, _, err := l.Append(RecWrite, payload); !errors.Is(err, ErrMediumDead) {
		t.Fatalf("write to dead medium: got %v, want ErrMediumDead", err)
	}
	// Crash recovery: trim the torn tail and revive the disk. TearProb is 1
	// here, so the next write tears again rather than landing — the
	// repair-then-carry-on path under a sane mix is runFaultSchedule's job.
	valid, err := ReplayValid(b.Reader(), func(Record) error { return nil })
	if err != nil {
		t.Fatalf("ReplayValid: %v", err)
	}
	b.Truncate(int(valid))
	m.Revive()
	if m.Dead() {
		t.Fatal("Revive left the medium dead")
	}
	if _, _, err := l.Append(RecWrite, payload); errors.Is(err, ErrMediumDead) && !m.Dead() {
		t.Fatalf("append after revive failed as dead without killing the medium: %v", err)
	}
}

func TestFaultMediumSlowWriteAccounting(t *testing.T) {
	b := &Buffer{}
	m := NewFaultMedium(b, FaultMediumConfig{Seed: 3, SlowProb: 1, SlowBy: 3 * time.Millisecond})
	l := New(m)
	for i := 0; i < 5; i++ {
		if _, _, err := l.Append(RecWrite, []byte("p")); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got, want := m.Delay(), 15*time.Millisecond; got != want {
		t.Fatalf("Delay() = %v, want %v", got, want)
	}
	recs, err := ReplayAll(b.Reader())
	if err != nil || len(recs) != 5 {
		t.Fatalf("slow writes must still land: %d records, err %v", len(recs), err)
	}
}

// runFaultSchedule drives a Log over a FaultMedium through n appends with the
// given fault mix, repairing (trim + revive) after every tear the way crash
// recovery does, and checks the core durability contract: replay yields
// EXACTLY the successfully-acknowledged records, in order, with consecutive
// LSNs, and every failed append left no visible record behind.
func runFaultSchedule(t *testing.T, seed uint64, errProb, tearProb float64, n int) {
	t.Helper()
	b := &Buffer{}
	m := NewFaultMedium(b, FaultMediumConfig{Seed: seed, ErrProb: errProb, TearProb: tearProb})
	l := New(m)
	var acked [][]byte
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("op-%d-%d", seed, i))
		if _, _, err := l.Append(RecWrite, payload); err == nil {
			acked = append(acked, payload)
		} else if m.Dead() {
			valid, verr := ReplayValid(b.Reader(), func(Record) error { return nil })
			if verr != nil {
				t.Fatalf("seed %d op %d: ReplayValid after tear: %v", seed, i, verr)
			}
			b.Truncate(int(valid))
			m.Revive()
		}
	}
	recs, err := ReplayAll(b.Reader())
	if err != nil {
		t.Fatalf("seed %d: replay: %v", seed, err)
	}
	if len(recs) != len(acked) {
		t.Fatalf("seed %d: replay yields %d records, %d were acknowledged", seed, len(recs), len(acked))
	}
	for i, rec := range recs {
		if !bytes.Equal(rec.Payload, acked[i]) {
			t.Fatalf("seed %d: record %d payload %q, want %q", seed, i, rec.Payload, acked[i])
		}
		if rec.LSN != uint64(i+1) {
			t.Fatalf("seed %d: record %d has LSN %d, want %d (failed appends must not burn LSNs)",
				seed, i, rec.LSN, i+1)
		}
	}
}

func TestFaultScheduleMixed(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		runFaultSchedule(t, seed, 0.2, 0.1, 60)
	}
}

// FuzzFaultSchedule lets the fuzzer hunt for a fault interleaving under which
// an acknowledged record is lost or a failed one becomes visible.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(uint64(1), byte(0), byte(0), byte(20))
	f.Add(uint64(2), byte(60), byte(0), byte(40))
	f.Add(uint64(3), byte(0), byte(60), byte(40))
	f.Add(uint64(4), byte(120), byte(40), byte(80))
	f.Fuzz(func(t *testing.T, seed uint64, errP, tearP, ops byte) {
		// Cap probabilities at ~70% so schedules keep making progress.
		runFaultSchedule(t, seed, float64(errP)/365, float64(tearP)/365, int(ops)%120+1)
	})
}
