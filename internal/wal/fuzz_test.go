package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzReplay is the log-format crash battery: a record sequence derived
// deterministically from the fuzz input is appended through a random mix of
// the encode paths (Append, AppendV, AppendNV), the medium is then torn
// (truncated at an arbitrary offset) and optionally hit by a single-byte
// flip, and Replay must hold the recovery contract:
//
//   - it never panics;
//   - it returns nil (clean stop at the end or at a torn tail) or
//     ErrCorrupt — never any other failure;
//   - every record it yields is exactly a prefix of the appended sequence
//     (type, LSN, and payload bit-for-bit): corruption can cut replay
//     short, but can never invent, reorder, or mutate a record.
//
// The seed corpus covers empty payloads, max-length records, and
// multi-record batches.
func FuzzReplay(f *testing.F) {
	// Spec grammar (see buildLog): each record consumes 4 spec bytes —
	// type selector, encode-path selector, payload length, header split.
	f.Add([]byte{}, uint16(0), false, uint16(0))                                          // empty log
	f.Add([]byte{0, 0, 0, 0}, uint16(0), false, uint16(0))                                // one empty-payload record, truncated to nothing
	f.Add([]byte{2, 0, 255, 3}, uint16(0xffff), false, uint16(0))                         // max-length record, untouched
	f.Add([]byte{2, 1, 255, 255}, uint16(0xffff), true, uint16(20))                       // max-length vectored record, flipped in the payload
	f.Add([]byte{1, 2, 7, 2, 3, 2, 9, 0, 5, 2, 40, 40}, uint16(0xffff), false, uint16(0)) // multi-record batch
	f.Add([]byte{1, 2, 7, 2, 3, 2, 9, 0}, uint16(30), false, uint16(0))                   // batch with a torn tail
	f.Add([]byte{4, 1, 16, 8, 6, 0, 0, 0}, uint16(0xffff), true, uint16(3))               // flip inside the length prefix

	f.Fuzz(func(t *testing.T, spec []byte, cut uint16, flip bool, flipOff uint16) {
		var b Buffer
		appended := buildLog(t, New(&b), spec)
		full := b.Len()

		// Tear the medium at an arbitrary offset (cut > len is a no-op:
		// the "crash happened after the last append hit the disk" case).
		b.Truncate(int(cut) % (full + 1))
		if flip && b.Len() > 0 {
			if err := b.Corrupt(int(flipOff) % b.Len()); err != nil {
				t.Fatalf("corrupt: %v", err)
			}
		}

		var got []Record
		valid, err := ReplayValid(b.Reader(), func(rec Record) error {
			p := append([]byte(nil), rec.Payload...)
			got = append(got, Record{Type: rec.Type, LSN: rec.LSN, Payload: p})
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("replay returned a non-corruption error: %v", err)
		}
		// The valid prefix is exactly the framing of the yielded records,
		// and truncating the medium to it (crash repair) must replay to the
		// identical sequence with a clean stop.
		var wantValid int64
		for _, rec := range got {
			wantValid += recPrefixLen + int64(len(rec.Payload))
		}
		if valid != wantValid {
			t.Fatalf("valid prefix %d bytes, yielded records span %d", valid, wantValid)
		}
		b.Truncate(int(valid))
		again := 0
		if _, err := ReplayValid(b.Reader(), func(rec Record) error { again++; return nil }); err != nil {
			t.Fatalf("replay after truncating to the valid prefix failed: %v", err)
		}
		if again != len(got) {
			t.Fatalf("repaired medium replayed %d records, want %d", again, len(got))
		}
		if len(got) > len(appended) {
			t.Fatalf("replay yielded %d records, only %d were appended", len(got), len(appended))
		}
		for i, rec := range got {
			want := appended[i]
			if rec.Type != want.Type || rec.LSN != want.LSN || !bytes.Equal(rec.Payload, want.Payload) {
				t.Fatalf("record %d diverges: got {%v %d %x}, appended {%v %d %x}",
					i, rec.Type, rec.LSN, rec.Payload, want.Type, want.LSN, want.Payload)
			}
		}
		// A clean replay of an untouched medium must yield everything.
		if err == nil && int(cut)%(full+1) >= full && !flip && len(got) != len(appended) {
			t.Fatalf("untouched log replayed %d of %d records", len(got), len(appended))
		}
	})
}

// buildLog appends records derived from spec and returns what was appended.
// Each record consumes 4 spec bytes: (type, path, length, split). The path
// byte routes through Append, AppendV (payload split at `split`), or a
// pending AppendNV batch flushed when the selector says so — so the fuzzer
// also explores every encode path's framing, not just Replay.
func buildLog(t *testing.T, l *Log, spec []byte) []Record {
	t.Helper()
	var appended []Record
	var batch []AppendVSpec
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if _, _, err := l.AppendNV(batch); err != nil {
			t.Fatalf("append batch: %v", err)
		}
		batch = nil
	}
	lsn := uint64(1)
	for i := 0; i+4 <= len(spec); i += 4 {
		rt := RecordType(spec[i]%12 + 1)
		path := spec[i+1] % 4
		plen := int(spec[i+2])
		if plen > 200 {
			plen = 1 << 10 // "max-length" bucket: a full-sized record
		}
		payload := make([]byte, plen)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		split := 0
		if plen > 0 {
			split = int(spec[i+3]) % (plen + 1)
		}
		switch path {
		case 0:
			flush()
			if _, _, err := l.Append(rt, payload); err != nil {
				t.Fatalf("append: %v", err)
			}
		case 1:
			flush()
			if _, _, err := l.AppendV(rt, payload[:split], payload[split:]); err != nil {
				t.Fatalf("appendv: %v", err)
			}
		default:
			batch = append(batch, AppendVSpec{Type: rt, Header: payload[:split], Payload: payload[split:]})
			if path == 3 {
				flush()
			}
		}
		appended = append(appended, Record{Type: rt, LSN: lsn, Payload: payload})
		lsn++
	}
	flush()
	return appended
}

// FuzzReplayRaw feeds Replay arbitrary bytes — no encoder in the loop — so
// the decoder's framing checks (implausible lengths, torn prefixes, CRC
// windows) face inputs no writer would produce. The only contract here is
// totality: nil or ErrCorrupt, never a panic or another error class.
func FuzzReplayRaw(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{8, 0, 0, 0, 0, 0, 0, 0})
	// A syntactically valid single record, to give mutation a foothold.
	var b Buffer
	l := New(&b)
	l.Append(RecWrite, []byte("seed-payload"))
	l.Append(RecCommit, nil)
	f.Add(readerRaw(&b))
	// An implausible length prefix.
	huge := make([]byte, 8)
	binary.LittleEndian.PutUint32(huge[0:4], 1<<31)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, raw []byte) {
		err := Replay(bytes.NewReader(raw), func(rec Record) error {
			if len(rec.Payload) > len(raw) {
				t.Fatalf("record payload %d bytes exceeds the %d-byte input", len(rec.Payload), len(raw))
			}
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("replay returned a non-corruption error: %v", err)
		}
	})
}

func readerRaw(b *Buffer) []byte {
	var out bytes.Buffer
	out.ReadFrom(b.Reader())
	return out.Bytes()
}

// FuzzReplayMerged is the multi-lane crash battery: a record sequence is
// appended across a MultiLog's lanes (lane, type, encode path, and payload
// length all derived from the fuzz input, so the logical order and the
// per-lane interleaving are both fuzzer-controlled), two lanes are then
// torn at arbitrary offsets and one byte optionally flipped, and
// ReplayMerged must hold the merged recovery contract:
//
//   - it never panics, and fails only with ErrCorrupt;
//   - it yields EXACTLY an order-key prefix of the appended sequence —
//     keys consecutive from 1, each record bit-for-bit what was appended
//     with that key. A record can be cut off by a tear on its own lane OR
//     by a gap on another lane, but can never be reordered, mutated, or
//     resurrected past a gap;
//   - after a clean merge, RecoverMerged repairs the media so the same
//     prefix replays again cleanly, and a post-recovery append lands at
//     the next key and replays with the prefix.
func FuzzReplayMerged(f *testing.F) {
	// Spec grammar (see buildMultiLog): each record consumes 4 spec bytes —
	// lane selector, type, encode-path selector, payload length; a lane
	// byte of 255 is a checkpoint (ResetAll: lanes dropped, keys restarted).
	f.Add([]byte{}, uint16(0), uint16(0), false, uint16(0))                                                         // empty log
	f.Add([]byte{0, 1, 0, 8, 1, 2, 1, 8, 2, 3, 2, 8, 3, 4, 3, 8}, uint16(0xffff), uint16(0xffff), false, uint16(0)) // all lanes, untouched
	f.Add([]byte{0, 1, 0, 200, 0, 2, 0, 200}, uint16(30), uint16(0xffff), false, uint16(0))                         // one lane torn mid-record
	f.Add([]byte{1, 1, 2, 9, 2, 2, 2, 9, 1, 3, 3, 9}, uint16(0xffff), uint16(12), true, uint16(40))                 // batch + tear + flip
	// Checkpoint-then-append: history, a reset, a fresh history, torn tail.
	f.Add([]byte{0, 1, 0, 8, 1, 2, 1, 8, 255, 0, 0, 0, 2, 3, 0, 8, 3, 4, 1, 8}, uint16(20), uint16(0xffff), false, uint16(0))
	// Checkpoint between appends on the SAME lane plus a flip after it.
	f.Add([]byte{1, 1, 0, 50, 255, 0, 0, 0, 1, 2, 0, 50}, uint16(0xffff), uint16(0xffff), true, uint16(9))
	// Mid-group-commit tears: multi-record AppendNV batches (one medium
	// write each) cut so the tear lands between and inside batch records.
	f.Add([]byte{1, 1, 2, 210, 1, 4, 2, 210}, uint16(40), uint16(0xffff), false, uint16(0))
	f.Add([]byte{2, 5, 2, 100, 2, 6, 2, 100, 2, 7, 2, 100}, uint16(90), uint16(300), false, uint16(0))
	f.Fuzz(func(t *testing.T, spec []byte, cutA, cutB uint16, flip bool, flipAt uint16) {
		const lanes = 4
		m := NewMultiLog(lanes)
		appended := buildMultiLog(t, m, spec)

		// Tear two lanes at arbitrary offsets (a cut past the end is the
		// "crash after the last append persisted" no-op case).
		for i, cut := range []uint16{cutA, cutB} {
			lb := m.LaneBuffer((int(cut) + i) % lanes)
			lb.Truncate(int(cut/lanes) % (lb.Len() + 1))
		}
		if flip {
			lb := m.LaneBuffer(int(flipAt) % lanes)
			if lb.Len() > 0 {
				if err := lb.Corrupt(int(flipAt/lanes) % lb.Len()); err != nil {
					t.Fatalf("corrupt: %v", err)
				}
			}
		}

		var got []Record
		collect := func(rec Record) error {
			p := append([]byte(nil), rec.Payload...)
			got = append(got, Record{Type: rec.Type, LSN: rec.LSN, Payload: p})
			return nil
		}
		err := m.ReplayMerged(collect)
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("merged replay returned a non-corruption error: %v", err)
		}
		if len(got) > len(appended) {
			t.Fatalf("merged replay yielded %d records, only %d were appended", len(got), len(appended))
		}
		for i, rec := range got {
			want := appended[i]
			if rec.LSN != uint64(i+1) {
				t.Fatalf("merged record %d has key %d: not an exact order-key prefix", i, rec.LSN)
			}
			if rec.Type != want.Type || !bytes.Equal(rec.Payload, want.Payload) {
				t.Fatalf("merged record %d diverges: got {%v %x}, appended {%v %x}",
					i, rec.Type, rec.Payload, want.Type, want.Payload)
			}
		}
		if err != nil {
			return // corrupt media: no repair, nothing more to check
		}

		// Crash repair: the repaired media must replay the identical prefix
		// cleanly, and a post-recovery append must extend it.
		prefix := len(got)
		got = got[:0]
		if err := m.RecoverMerged(collect); err != nil {
			t.Fatalf("recover after clean merge failed: %v", err)
		}
		if len(got) != prefix {
			t.Fatalf("recovery replayed %d records, merge yielded %d", len(got), prefix)
		}
		key, _, err := m.AppendV(int(cutA)%lanes, RecMeta, nil, []byte("post-recovery"))
		if err != nil {
			t.Fatalf("post-recovery append: %v", err)
		}
		if key != uint64(prefix+1) {
			t.Fatalf("post-recovery append got key %d, want %d", key, prefix+1)
		}
		got = got[:0]
		if err := m.ReplayMerged(collect); err != nil {
			t.Fatalf("replay after post-recovery append: %v", err)
		}
		if len(got) != prefix+1 || string(got[prefix].Payload) != "post-recovery" {
			t.Fatalf("post-recovery append did not survive replay: %d records", len(got))
		}
	})
}

// buildMultiLog appends records derived from spec across the lanes and
// returns them in logical (order-key) order. Each record consumes 4 spec
// bytes: (lane, type, path, length); the path byte routes through AppendV,
// a single-spec AppendNV, or a two-record AppendNV batch that also
// consumes the next record's spec for the same lane. A lane byte of 255 is
// a checkpoint instead of a record: ResetAll drops every lane and restarts
// the order keys at 1, and the expected sequence restarts with them — the
// checkpoint-then-append shape whose replay must see ONLY the fresh
// history.
func buildMultiLog(t *testing.T, m *MultiLog, spec []byte) []Record {
	t.Helper()
	var appended []Record
	mk := func(i, plen int) []byte {
		if plen > 200 {
			plen = 1 << 10
		}
		p := make([]byte, plen)
		for j := range p {
			p[j] = byte(i + 3*j)
		}
		return p
	}
	for i := 0; i+4 <= len(spec); i += 4 {
		if spec[i] == 0xff {
			m.ResetAll()
			appended = appended[:0]
			continue
		}
		lane := int(spec[i]) % m.Lanes()
		rt := RecordType(spec[i+1]%12 + 1)
		path := spec[i+2] % 3
		payload := mk(i, int(spec[i+3]))
		split := len(payload) / 2
		switch path {
		case 0:
			if _, _, err := m.AppendV(lane, rt, payload[:split], payload[split:]); err != nil {
				t.Fatalf("appendv: %v", err)
			}
			appended = append(appended, Record{Type: rt, Payload: payload})
		case 1:
			if _, _, err := m.AppendNV(lane, []AppendVSpec{{Type: rt, Header: payload[:split], Payload: payload[split:]}}); err != nil {
				t.Fatalf("appendnv: %v", err)
			}
			appended = append(appended, Record{Type: rt, Payload: payload})
		default:
			// Two-record atomic batch; the second record reuses this spec
			// quad with a different fill so batches cross record shapes.
			second := mk(i+1, int(spec[i+3])/2)
			specs := []AppendVSpec{
				{Type: rt, Header: payload[:split], Payload: payload[split:]},
				{Type: RecordType(spec[i+3]%12 + 1), Payload: second},
			}
			if _, _, err := m.AppendNV(lane, specs); err != nil {
				t.Fatalf("appendnv batch: %v", err)
			}
			appended = append(appended,
				Record{Type: rt, Payload: payload},
				Record{Type: specs[1].Type, Payload: second})
		}
	}
	for i := range appended {
		appended[i].LSN = uint64(i + 1)
	}
	return appended
}
