package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzReplay is the log-format crash battery: a record sequence derived
// deterministically from the fuzz input is appended through a random mix of
// the encode paths (Append, AppendV, AppendNV), the medium is then torn
// (truncated at an arbitrary offset) and optionally hit by a single-byte
// flip, and Replay must hold the recovery contract:
//
//   - it never panics;
//   - it returns nil (clean stop at the end or at a torn tail) or
//     ErrCorrupt — never any other failure;
//   - every record it yields is exactly a prefix of the appended sequence
//     (type, LSN, and payload bit-for-bit): corruption can cut replay
//     short, but can never invent, reorder, or mutate a record.
//
// The seed corpus covers empty payloads, max-length records, and
// multi-record batches.
func FuzzReplay(f *testing.F) {
	// Spec grammar (see buildLog): each record consumes 4 spec bytes —
	// type selector, encode-path selector, payload length, header split.
	f.Add([]byte{}, uint16(0), false, uint16(0))                                          // empty log
	f.Add([]byte{0, 0, 0, 0}, uint16(0), false, uint16(0))                                // one empty-payload record, truncated to nothing
	f.Add([]byte{2, 0, 255, 3}, uint16(0xffff), false, uint16(0))                         // max-length record, untouched
	f.Add([]byte{2, 1, 255, 255}, uint16(0xffff), true, uint16(20))                       // max-length vectored record, flipped in the payload
	f.Add([]byte{1, 2, 7, 2, 3, 2, 9, 0, 5, 2, 40, 40}, uint16(0xffff), false, uint16(0)) // multi-record batch
	f.Add([]byte{1, 2, 7, 2, 3, 2, 9, 0}, uint16(30), false, uint16(0))                   // batch with a torn tail
	f.Add([]byte{4, 1, 16, 8, 6, 0, 0, 0}, uint16(0xffff), true, uint16(3))               // flip inside the length prefix

	f.Fuzz(func(t *testing.T, spec []byte, cut uint16, flip bool, flipOff uint16) {
		var b Buffer
		appended := buildLog(t, New(&b), spec)
		full := b.Len()

		// Tear the medium at an arbitrary offset (cut > len is a no-op:
		// the "crash happened after the last append hit the disk" case).
		b.Truncate(int(cut) % (full + 1))
		if flip && b.Len() > 0 {
			if err := b.Corrupt(int(flipOff) % b.Len()); err != nil {
				t.Fatalf("corrupt: %v", err)
			}
		}

		var got []Record
		valid, err := ReplayValid(b.Reader(), func(rec Record) error {
			p := append([]byte(nil), rec.Payload...)
			got = append(got, Record{Type: rec.Type, LSN: rec.LSN, Payload: p})
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("replay returned a non-corruption error: %v", err)
		}
		// The valid prefix is exactly the framing of the yielded records,
		// and truncating the medium to it (crash repair) must replay to the
		// identical sequence with a clean stop.
		var wantValid int64
		for _, rec := range got {
			wantValid += recPrefixLen + int64(len(rec.Payload))
		}
		if valid != wantValid {
			t.Fatalf("valid prefix %d bytes, yielded records span %d", valid, wantValid)
		}
		b.Truncate(int(valid))
		again := 0
		if _, err := ReplayValid(b.Reader(), func(rec Record) error { again++; return nil }); err != nil {
			t.Fatalf("replay after truncating to the valid prefix failed: %v", err)
		}
		if again != len(got) {
			t.Fatalf("repaired medium replayed %d records, want %d", again, len(got))
		}
		if len(got) > len(appended) {
			t.Fatalf("replay yielded %d records, only %d were appended", len(got), len(appended))
		}
		for i, rec := range got {
			want := appended[i]
			if rec.Type != want.Type || rec.LSN != want.LSN || !bytes.Equal(rec.Payload, want.Payload) {
				t.Fatalf("record %d diverges: got {%v %d %x}, appended {%v %d %x}",
					i, rec.Type, rec.LSN, rec.Payload, want.Type, want.LSN, want.Payload)
			}
		}
		// A clean replay of an untouched medium must yield everything.
		if err == nil && int(cut)%(full+1) >= full && !flip && len(got) != len(appended) {
			t.Fatalf("untouched log replayed %d of %d records", len(got), len(appended))
		}
	})
}

// buildLog appends records derived from spec and returns what was appended.
// Each record consumes 4 spec bytes: (type, path, length, split). The path
// byte routes through Append, AppendV (payload split at `split`), or a
// pending AppendNV batch flushed when the selector says so — so the fuzzer
// also explores every encode path's framing, not just Replay.
func buildLog(t *testing.T, l *Log, spec []byte) []Record {
	t.Helper()
	var appended []Record
	var batch []AppendVSpec
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if _, _, err := l.AppendNV(batch); err != nil {
			t.Fatalf("append batch: %v", err)
		}
		batch = nil
	}
	lsn := uint64(1)
	for i := 0; i+4 <= len(spec); i += 4 {
		rt := RecordType(spec[i]%12 + 1)
		path := spec[i+1] % 4
		plen := int(spec[i+2])
		if plen > 200 {
			plen = 1 << 10 // "max-length" bucket: a full-sized record
		}
		payload := make([]byte, plen)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		split := 0
		if plen > 0 {
			split = int(spec[i+3]) % (plen + 1)
		}
		switch path {
		case 0:
			flush()
			if _, _, err := l.Append(rt, payload); err != nil {
				t.Fatalf("append: %v", err)
			}
		case 1:
			flush()
			if _, _, err := l.AppendV(rt, payload[:split], payload[split:]); err != nil {
				t.Fatalf("appendv: %v", err)
			}
		default:
			batch = append(batch, AppendVSpec{Type: rt, Header: payload[:split], Payload: payload[split:]})
			if path == 3 {
				flush()
			}
		}
		appended = append(appended, Record{Type: rt, LSN: lsn, Payload: payload})
		lsn++
	}
	flush()
	return appended
}

// FuzzReplayRaw feeds Replay arbitrary bytes — no encoder in the loop — so
// the decoder's framing checks (implausible lengths, torn prefixes, CRC
// windows) face inputs no writer would produce. The only contract here is
// totality: nil or ErrCorrupt, never a panic or another error class.
func FuzzReplayRaw(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{8, 0, 0, 0, 0, 0, 0, 0})
	// A syntactically valid single record, to give mutation a foothold.
	var b Buffer
	l := New(&b)
	l.Append(RecWrite, []byte("seed-payload"))
	l.Append(RecCommit, nil)
	f.Add(readerRaw(&b))
	// An implausible length prefix.
	huge := make([]byte, 8)
	binary.LittleEndian.PutUint32(huge[0:4], 1<<31)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, raw []byte) {
		err := Replay(bytes.NewReader(raw), func(rec Record) error {
			if len(rec.Payload) > len(raw) {
				t.Fatalf("record payload %d bytes exceeds the %d-byte input", len(rec.Payload), len(raw))
			}
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("replay returned a non-corruption error: %v", err)
		}
	})
}

func readerRaw(b *Buffer) []byte {
	var out bytes.Buffer
	out.ReadFrom(b.Reader())
	return out.Bytes()
}
