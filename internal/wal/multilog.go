// multilog.go implements the sharded lane log: the per-server replacement
// for a single mutex-serialized Log, built so that parallel writers whose
// chunks already live behind independent lock stripes also append to
// independent log lanes.
//
// # Lane format and order keys
//
// A MultiLog is N lanes, each a private Log over its own Buffer medium.
// The on-medium lane format is exactly the single-log record format — a
// MultiLog with one lane produces a byte stream identical to a plain Log
// fed the same appends — with one semantic shift: the u64 LSN field of
// every record carries a server-scoped order key drawn from one atomic
// counter shared by all lanes. Keys are assigned in append order (the
// counter increments under the appending lane's flush ownership), so:
//
//   - keys are unique and total-ordered across the whole MultiLog;
//   - within one lane, keys on the medium are strictly increasing;
//   - the key sequence 1,2,3,… enumerates the logical append order the
//     server observed, interleaved across lanes.
//
// ReplayMerged inverts the sharding at recovery: it decodes all lanes in
// lockstep and yields records in ascending key order, requiring the keys
// to be exactly consecutive from 1. The merged output is therefore always
// an exact order-key prefix of the logical append sequence: a torn lane
// tail creates a key gap, and everything logically after the gap — on any
// lane — is not yielded, so replay can never reorder records, resurrect a
// record whose causal predecessors were lost, or observe a state the live
// server never passed through. RecoverMerged additionally repairs the
// media to that prefix (truncating each lane past its last merged record)
// and re-bases the key counter, so post-recovery appends extend the prefix
// seamlessly.
//
// ResetAll (checkpoint compaction) resets the key counter along with the
// lane media: unlike a single Log's ResetSize, keys restart at 1 after a
// checkpoint, because the start-at-1 invariant is what lets merged replay
// detect a lane whose entire content was torn away.
//
// # Group commit
//
// Each lane admits one flush leader at a time. An appender that finds the
// lane idle becomes leader immediately and appends directly — at
// concurrency 1 this is the whole protocol, a handful of uncontended
// atomic/mutex operations more than a bare Log append. Appenders that
// arrive while a flush is in progress enqueue their vectored segments in
// the lane's staging ring and block on a pooled wakeup channel; the
// current leader drains the ring after its own write and flushes the
// coalesced batch as ONE vectored append — one lane-log lock acquisition,
// one medium write, consecutive order keys — then signals each follower
// with its assigned key and encoded size. The leader loops until the ring
// is empty before releasing flush ownership, so every staged request is
// flushed by construction.
package wal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// MultiLog is a sharded, group-committed write-ahead log: N lanes with
// independent mutexes and media, totally ordered by a shared order-key
// counter stamped into each record's LSN field. Safe for concurrent
// appends; replay and recovery require quiescence (no in-flight appends),
// the same discipline Log's readers already assume.
type MultiLog struct {
	seq   atomic.Uint64 // order-key source shared by every lane
	lanes []mlane
}

// mlane is one lane: a private Log over a private Buffer plus the
// group-commit staging ring.
type mlane struct {
	log *Log
	buf *Buffer

	mu       sync.Mutex // guards queue and flushing
	queue    []*laneReq // staged appends awaiting the flush leader
	spare    []*laneReq // recycled backing for the next queue swap
	flushing bool       // a leader currently owns the lane's flush

	// specs is the leader's scratch for the coalesced batch; the backing
	// survives across flushes, entries are zeroed after each write so the
	// lane does not pin caller payload buffers between batches.
	specs []AppendVSpec
}

// laneReq is one staged append awaiting a lane's flush leader. Requests
// are pooled; the wakeup channel is allocated once per pooled object.
type laneReq struct {
	// Single-record form (AppendV): type plus the two payload segments.
	typ     RecordType
	header  []byte
	payload []byte
	// Batch form (AppendNV); non-nil takes precedence over the single-
	// record fields. The slice is the caller's and must stay unchanged
	// until the request completes.
	batch []AppendVSpec

	key  uint64 // order key of the (first) record, set by the leader
	n    int    // encoded bytes of this request's records
	err  error
	done chan struct{} // leader -> follower wakeup, capacity 1
}

var laneReqPool = sync.Pool{
	New: func() any { return &laneReq{done: make(chan struct{}, 1)} },
}

// release drops the request's payload references and recycles it.
func (r *laneReq) release() {
	r.typ, r.header, r.payload, r.batch = 0, nil, nil, nil
	r.key, r.n, r.err = 0, 0, nil
	laneReqPool.Put(r)
}

// NewMultiLog returns a lane log with the given lane count (minimum 1).
// Any lane count works; power-of-two counts make LaneFor a pure mask of
// the hash bits callers already use for lock striping.
func NewMultiLog(lanes int) *MultiLog {
	if lanes < 1 {
		lanes = 1
	}
	m := &MultiLog{lanes: make([]mlane, lanes)}
	for i := range m.lanes {
		buf := &Buffer{}
		l := New(buf)
		l.src = &m.seq
		m.lanes[i].log = l
		m.lanes[i].buf = buf
	}
	return m
}

// Lanes reports the lane count.
func (m *MultiLog) Lanes() int { return len(m.lanes) }

// LaneFor maps a placement hash to its lane. It reads the same upper hash
// bits the blob server's chunk-table lock striping uses, so with matching
// counts a chunk's log lane and its lock stripe coincide.
func (m *MultiLog) LaneFor(h uint64) int {
	return int((h >> 32) % uint64(len(m.lanes)))
}

// LaneBuffer exposes a lane's medium. Recovery truncation and the crash
// tests' torn-write injection go through it; appenders never should.
func (m *MultiLog) LaneBuffer(lane int) *Buffer { return m.lanes[lane].buf }

// LaneSize reports the encoded bytes appended to one lane since creation
// or its last reset/repair.
func (m *MultiLog) LaneSize(lane int) int64 { return m.lanes[lane].log.Size() }

// Size sums the lane sizes. The sum is exact only when the log is
// quiescent; concurrent appenders can move individual lanes mid-sum.
func (m *MultiLog) Size() int64 {
	var total int64
	for i := range m.lanes {
		total += m.lanes[i].log.Size()
	}
	return total
}

// NextKey returns the order key the next append will receive. Exact only
// when quiescent.
func (m *MultiLog) NextKey() uint64 { return m.seq.Load() + 1 }

// AppendV appends one record to the lane, group-committed, and returns its
// order key and encoded size. The header/payload split follows Log.AppendV;
// both segments must stay unchanged until the call returns.
func (m *MultiLog) AppendV(lane int, t RecordType, header, payload []byte) (key uint64, n int, err error) {
	ln := &m.lanes[lane]
	ln.mu.Lock()
	if !ln.flushing {
		// Idle lane: become leader and append directly — the concurrency-1
		// fast path, nothing staged. (flushing==false implies the ring is
		// empty: a leader only clears the flag once it has drained.)
		ln.flushing = true
		ln.mu.Unlock()
		key, n, err = ln.log.AppendV(t, header, payload)
		ln.drain()
		return key, n, err
	}
	r := laneReqPool.Get().(*laneReq)
	r.typ, r.header, r.payload = t, header, payload
	ln.queue = append(ln.queue, r)
	ln.mu.Unlock()
	<-r.done
	key, n, err = r.key, r.n, r.err
	r.release()
	return key, n, err
}

// AppendNV appends a batch of records to the lane atomically (contiguous
// on the medium, consecutive order keys), group-committed alongside any
// concurrent appends to the same lane. Returns the first record's key and
// the total encoded size. specs and the segments they reference must stay
// unchanged until the call returns.
func (m *MultiLog) AppendNV(lane int, specs []AppendVSpec) (firstKey uint64, n int, err error) {
	if len(specs) == 0 {
		return 0, 0, nil
	}
	ln := &m.lanes[lane]
	ln.mu.Lock()
	if !ln.flushing {
		ln.flushing = true
		ln.mu.Unlock()
		firstKey, n, err = ln.log.AppendNV(specs)
		ln.drain()
		return firstKey, n, err
	}
	r := laneReqPool.Get().(*laneReq)
	r.batch = specs
	ln.queue = append(ln.queue, r)
	ln.mu.Unlock()
	<-r.done
	firstKey, n, err = r.key, r.n, r.err
	r.release()
	return firstKey, n, err
}

// drain is the group-commit flush loop, run only by the lane's current
// leader (whose own record was already appended directly on the fast
// path): flush coalesced batches until the staging ring is empty, then
// release flush ownership.
func (ln *mlane) drain() {
	for {
		ln.mu.Lock()
		if len(ln.queue) == 0 {
			ln.flushing = false
			ln.mu.Unlock()
			return
		}
		batch := ln.queue
		ln.queue = ln.spare[:0]
		ln.spare = batch
		ln.mu.Unlock()

		// Coalesce every staged request into one vectored batch append:
		// one lane-log lock acquisition, one medium write, consecutive
		// order keys.
		specs := ln.specs[:0]
		for _, r := range batch {
			if r.batch != nil {
				specs = append(specs, r.batch...)
			} else {
				specs = append(specs, AppendVSpec{Type: r.typ, Header: r.header, Payload: r.payload})
			}
		}
		first, _, err := ln.log.AppendNV(specs)
		for i := range specs {
			specs[i] = AppendVSpec{} // drop payload refs before the scratch parks
		}
		ln.specs = specs[:0]

		key := first
		for i, r := range batch {
			recs := 1
			n := recPrefixLen + len(r.header) + len(r.payload)
			if r.batch != nil {
				recs = len(r.batch)
				n = 0
				for _, sp := range r.batch {
					n += recPrefixLen + len(sp.Header) + len(sp.Payload)
				}
			}
			r.key, r.n, r.err = key, n, err
			key += uint64(recs)
			r.done <- struct{}{} // after this send, r belongs to the follower
			batch[i] = nil       // spare must not pin recycled requests
		}
	}
}

// LaneFeed supplies one lane's records, in medium order, to a merged
// replay. Next mirrors Decoder.Next: it yields the record, its full
// on-medium frame length, done=true at a clean end (EOF or torn tail), or
// an error (ErrCorrupt for checksum/framing failures). The merge consumes
// feeds one record at a time in exact order-key sequence, holding at most
// one head record per lane, so a feed's records must stay valid after it
// advances (Decoder's fresh-allocation contract).
//
// Feed i must stream exactly what lane i's medium holds — the frame
// lengths are summed into the lane's repair truncation point, so a feed
// that skips, reorders, or re-frames records would make RecoverMergedFeeds
// corrupt the medium. Decoder over LaneBuffer(i).Reader() is the canonical
// implementation; concurrent pre-decoding pipelines (the blob store's
// parallel recovery) batch that same decode stream ahead of the merge.
type LaneFeed interface {
	Next() (rec Record, frame int64, done bool, err error)
}

// ReplayMerged decodes every lane and yields records in logical append
// order — ascending order key, required to be exactly consecutive from 1.
// It stops cleanly at the first missing key (a torn lane tail tears away
// everything logically after it, on every lane) and returns ErrCorrupt if
// any lane's decode hit a checksum failure while the merge still wanted
// records from it. If fn returns an error, replay stops and returns it.
// Requires quiescence.
func (m *MultiLog) ReplayMerged(fn func(Record) error) error {
	_, _, err := replayMergedFeeds(m.laneFeeds(), fn)
	return err
}

// ReplayMergedFeeds is ReplayMerged over caller-supplied lane feeds — one
// per lane, in lane order. It exists so recovery can pre-decode lanes
// concurrently while the merge itself (and therefore the prefix contract)
// stays this package's single implementation. Requires quiescence.
func (m *MultiLog) ReplayMergedFeeds(feeds []LaneFeed, fn func(Record) error) error {
	_, _, err := replayMergedFeeds(m.checkFeeds(feeds), fn)
	return err
}

// laneFeeds returns the serial decode feeds: one Decoder per lane over a
// snapshot of that lane's medium.
func (m *MultiLog) laneFeeds() []LaneFeed {
	feeds := make([]LaneFeed, len(m.lanes))
	for i := range m.lanes {
		feeds[i] = NewDecoder(m.lanes[i].buf.Reader())
	}
	return feeds
}

// checkFeeds validates a caller-supplied feed set against the lane count.
func (m *MultiLog) checkFeeds(feeds []LaneFeed) []LaneFeed {
	if len(feeds) != len(m.lanes) {
		panic(fmt.Sprintf("wal: %d lane feeds for a %d-lane log", len(feeds), len(m.lanes)))
	}
	return feeds
}

// replayMergedFeeds is the merge engine: it yields records across the
// feeds in exact order-key sequence and additionally returns, per lane,
// the byte length of the lane's prefix that lies within the merged
// order-key prefix (the repair truncation point), and the last key
// yielded. It is the ONLY merge implementation — serial decode and
// concurrent pre-decode differ solely in the feed, so the prefix contract
// cannot fork between them.
func replayMergedFeeds(feeds []LaneFeed, fn func(Record) error) (consumed []int64, last uint64, err error) {
	k := len(feeds)
	consumed = make([]int64, k)
	heads := make([]Record, k)
	frames := make([]int64, k)
	live := make([]bool, k)
	corrupt := false
	load := func(i int) error {
		rec, frame, done, derr := feeds[i].Next()
		if derr != nil {
			if errors.Is(derr, ErrCorrupt) {
				// The lane is unreadable from here on; the merge stops at
				// this lane's next key and reports the corruption.
				corrupt = true
				live[i] = false
				return nil
			}
			return derr
		}
		if done {
			live[i] = false
			return nil
		}
		heads[i], frames[i], live[i] = rec, frame, true
		return nil
	}
	for i := range feeds {
		if err := load(i); err != nil {
			return consumed, last, err
		}
	}
	for next := uint64(1); ; next++ {
		found := -1
		for i := 0; i < k; i++ {
			if live[i] && heads[i].LSN == next {
				found = i
				break
			}
		}
		if found < 0 {
			break // key gap or all lanes exhausted: end of the merged prefix
		}
		if err := fn(heads[found]); err != nil {
			return consumed, last, err
		}
		consumed[found] += frames[found]
		last = next
		if err := load(found); err != nil {
			return consumed, last, err
		}
	}
	if corrupt {
		return consumed, last, ErrCorrupt
	}
	return consumed, last, nil
}

// RecoverMerged is ReplayMerged plus crash repair: after a clean merge it
// truncates every lane to its last record inside the merged prefix —
// discarding torn tails AND records that decoded clean but lie logically
// after a gap, which are unrecoverable under the prefix contract — resets
// each lane's size accounting, and re-bases the order-key counter so the
// next append extends the recovered prefix. On error (ErrCorrupt, a
// handler error) nothing is repaired. Requires quiescence.
func (m *MultiLog) RecoverMerged(fn func(Record) error) error {
	return m.recoverFeeds(m.laneFeeds(), fn)
}

// RecoverMergedFeeds is RecoverMerged over caller-supplied lane feeds (see
// ReplayMergedFeeds). The repair truncation points are the frame sums of
// the merged records as the feeds reported them, so the feeds must stream
// the lane media bit-for-bit. Requires quiescence.
func (m *MultiLog) RecoverMergedFeeds(feeds []LaneFeed, fn func(Record) error) error {
	return m.recoverFeeds(m.checkFeeds(feeds), fn)
}

func (m *MultiLog) recoverFeeds(feeds []LaneFeed, fn func(Record) error) error {
	consumed, last, err := replayMergedFeeds(feeds, fn)
	if err != nil {
		return err
	}
	for i := range m.lanes {
		ln := &m.lanes[i]
		if int64(ln.buf.Len()) > consumed[i] {
			ln.buf.Truncate(int(consumed[i]))
		}
		ln.log.SetSize(consumed[i])
	}
	m.seq.Store(last)
	return nil
}

// ResetAll discards every lane's content and restarts the order keys at 1
// (checkpoint compaction: the snapshot that follows is a fresh logical
// history). Unlike Log.ResetSize, keys deliberately do NOT stay monotonic
// across a reset — merged replay's start-at-1 invariant is what detects a
// lane whose entire content was torn away. Requires quiescence.
func (m *MultiLog) ResetAll() {
	for i := range m.lanes {
		m.lanes[i].buf.Reset()
		m.lanes[i].log.ResetSize()
	}
	m.seq.Store(0)
}
