// Package wal implements the write-ahead log used by each blob-store server
// for durability of namespace mutations and chunk writes. Records are
// length-prefixed and CRC32C-protected; replay stops cleanly at the first
// torn or corrupt record, mimicking crash-recovery behaviour of real object
// stores (RADOS journals, Týr's persistent log).
//
// The log writes into any io.Writer (in the simulation, an in-memory buffer
// whose persistence cost is charged to the virtual disk by the caller), so
// the package itself is pure and synchronous.
//
// # Vectored appends
//
// A record's payload often arrives in two pieces: a small caller-encoded
// header (chunk addressing, descriptor metadata) and a large data segment
// (the chunk bytes). AppendV and AppendNV accept the pieces separately and,
// when the target implements RecordWriter, stream prefix, header, and
// payload to the medium as one vectored write — the data segment is copied
// exactly once, caller buffer to log medium, with the CRC computed
// incrementally over the segments. Targets that only implement io.Writer
// get the same byte stream via a staging buffer. Either way the encoding is
// bit-identical to the single-buffer appendRecord form, so logs written by
// any mix of Append/AppendV/AppendNV replay interchangeably.
//
// # Sharded lanes and group commit
//
// A single Log serializes every appender on one mutex — the write-scaling
// wall of a server whose chunks are otherwise independently locked.
// MultiLog (multilog.go) removes it: N lanes per server, each lane a
// private Log over its own medium, with a server-scoped atomic order key
// stamped into the records' LSN field so replay can interleave the lanes
// back into the exact logical append order. The lane format is exactly the
// single-log format — a MultiLog with one lane is byte-identical to a Log —
// and appends within a lane coalesce through a group-commit staging ring:
// concurrent appenders enqueue their vectored segments, one leader flushes
// the whole batch under a single lane-lock acquisition and a single medium
// write, and followers are woken over per-request channels. See multilog.go
// for the order-key semantics, the merged-replay prefix contract, and the
// group-commit protocol in detail.
package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
)

// RecordType tags the semantic kind of a log record. The WAL itself treats
// payloads as opaque; types exist so replay handlers can dispatch.
type RecordType uint8

// Record types used by the blob server.
const (
	RecCreate RecordType = iota + 1
	RecDelete
	RecWrite
	RecTruncate
	RecCommit
	RecAbort
	RecMeta
	RecChunkDelete
	RecChunkTruncate
	// RecPrepWrite is a chunk write prepared by a multi-chunk (2PC)
	// transaction: replay buffers it and applies it only once the same
	// chunk's RecChunkCommit arrives, so a crash mid-transaction cannot
	// resurrect a half-committed write.
	RecPrepWrite
	// RecChunkCommit commits every buffered RecPrepWrite for its chunk.
	// (RecCommit remains the transaction-level marker with a meta payload;
	// replay skips it.)
	RecChunkCommit
	// RecRepairNeeded records replication debt for one chunk: a degraded
	// write succeeded on this replica while peers named in the payload's
	// mask missed it. The payload reuses the chunk header layout with the
	// debt mask in the version field and no data. Replay uses overwrite
	// semantics — the latest record's mask wins — so clearing debt is
	// logged as a mask with the repaired bits dropped (0 deletes the
	// entry).
	RecRepairNeeded
	// RecMigrateBegin is the durable intent record of a membership change:
	// AddServer/RemoveServer append it to every live server's log BEFORE the
	// ring mutates, so a crash mid-rebalance recovers with the intent open
	// and can roll the interrupted migration forward. The payload carries
	// the migration sequence number, the operation (add/remove), and the
	// node; replay keeps at most one intent open per server (a later Begin
	// supersedes an earlier one).
	RecMigrateBegin
	// RecMigrateBatch carries one migration batch's 2PC protocol on a
	// participating server. Its payload starts with a phase byte: a prepare
	// marker (replay drops any buffered batch state), a chunk-copy record
	// (replay buffers it, like RecPrepWrite), a chunk-delete record (replay
	// buffers the drop), or a commit marker (replay materializes every
	// buffered copy version-guarded and applies every buffered delete). A
	// crash between prepare and commit therefore leaves the batch fully
	// absent; a crash after commit leaves it fully applied.
	RecMigrateBatch
	// RecMigrateEnd closes the intent opened by RecMigrateBegin with the
	// same sequence number: the migration completed and recovery has
	// nothing to roll forward.
	RecMigrateEnd
)

// String names the record type.
func (t RecordType) String() string {
	switch t {
	case RecCreate:
		return "create"
	case RecDelete:
		return "delete"
	case RecWrite:
		return "write"
	case RecTruncate:
		return "truncate"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecMeta:
		return "meta"
	case RecChunkDelete:
		return "chunk-delete"
	case RecChunkTruncate:
		return "chunk-truncate"
	case RecPrepWrite:
		return "prep-write"
	case RecChunkCommit:
		return "chunk-commit"
	case RecRepairNeeded:
		return "repair-needed"
	case RecMigrateBegin:
		return "migrate-begin"
	case RecMigrateBatch:
		return "migrate-batch"
	case RecMigrateEnd:
		return "migrate-end"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Record is one durable log entry.
type Record struct {
	Type    RecordType
	LSN     uint64 // assigned by the log at append time
	Payload []byte
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record whose checksum failed during replay.
var ErrCorrupt = errors.New("wal: corrupt record")

// RecordWriter is the writev-style log target: WriteV appends the
// concatenation of the segments as one atomic write, so a vectored record
// append lands on the medium without the segments being staged into a
// contiguous buffer first. Buffer implements it; targets that do not are
// served through a staging fallback producing the identical byte stream.
type RecordWriter interface {
	io.Writer
	WriteV(segs [][]byte) (int, error)
}

// Log is an append-only write-ahead log. Safe for concurrent appends.
type Log struct {
	mu      sync.Mutex
	w       io.Writer
	rw      RecordWriter // non-nil when w supports vectored writes
	nextLSN uint64
	bytes   int64
	// scratch is the per-log reusable encode buffer for non-vectored
	// targets: records are staged here under mu and written out in one
	// Write call, so steady-state appends allocate nothing once the buffer
	// has grown to the working record size.
	scratch []byte
	// hdrs stages the fixed 17-byte prefix+header block of each record in
	// a vectored append (recPrefixLen per record, contiguous). Persistent
	// so the blocks never escape to a per-call heap allocation.
	hdrs []byte
	// segs is the reusable segment list handed to rw.WriteV.
	segs [][]byte
	// src, when non-nil, overrides LSN assignment: each record draws its
	// LSN from this shared counter instead of the log's private nextLSN.
	// MultiLog sets it on its lane logs so every record carries a
	// server-scoped order key; because one flush leader at a time appends
	// to a lane, the keys on each lane's medium are strictly increasing.
	// With src set, a failed medium write burns the drawn keys — callers
	// must use an infallible medium (Buffer is; the blob store panics on
	// any append error regardless), or merged replay would stop at the gap.
	src *atomic.Uint64
}

// recPrefixLen is the encoded size of the per-record framing: u32 length,
// u32 crc32c, u8 type, u64 lsn.
const recPrefixLen = 17

// New returns a log appending to w.
func New(w io.Writer) *Log {
	l := &Log{w: w, nextLSN: 1}
	l.rw, _ = w.(RecordWriter)
	return l
}

// Append writes one record and returns its LSN and the encoded size in
// bytes (so the caller can charge the virtual disk for the persistence).
func (l *Log) Append(t RecordType, payload []byte) (lsn uint64, n int, err error) {
	return l.AppendV(t, payload, nil)
}

// AppendV writes one record whose payload is the concatenation of header
// and payload, without ever staging the payload segment: on a RecordWriter
// target the prefix, header, and payload stream to the medium as one
// vectored write (payload bytes are copied exactly once). Either segment
// may be nil. The encoded byte stream is bit-identical to
// Append(t, header||payload).
func (l *Log) AppendV(t RecordType, header, payload []byte) (lsn uint64, n int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn = l.nextLSN
	if l.src != nil {
		lsn = l.src.Add(1)
	}
	if cap(l.hdrs) < recPrefixLen {
		l.hdrs = make([]byte, 0, 16*recPrefixLen)
	}
	l.hdrs = l.hdrs[:recPrefixLen]
	l.stagePrefix(0, t, lsn, header, payload)
	if l.rw != nil {
		l.segs = append(l.segs[:0], l.hdrs[0:recPrefixLen], header, payload)
		n, err = l.rw.WriteV(l.segs)
		l.clearSegs()
	} else {
		l.scratch = append(l.scratch[:0], l.hdrs[0:recPrefixLen]...)
		l.scratch = append(l.scratch, header...)
		l.scratch = append(l.scratch, payload...)
		n, err = l.w.Write(l.scratch)
	}
	if err != nil {
		return 0, 0, fmt.Errorf("wal: append: %w", err)
	}
	l.nextLSN = lsn + 1
	l.bytes += int64(n)
	return lsn, n, nil
}

// AppendVSpec is one record of a batched AppendNV: the record's payload is
// the concatenation of Header and Payload (either may be nil).
type AppendVSpec struct {
	Type    RecordType
	Header  []byte
	Payload []byte
}

// AppendNV is the vectored batch append: the records land atomically with
// consecutive LSNs in a single write to the target, every record's header
// and payload segments streaming to a RecordWriter without staging. Byte
// stream, LSNs, and sizes are identical to calling
// Append(t, header||payload) per spec. It returns the LSN of the first
// record and the total encoded size.
func (l *Log) AppendNV(specs []AppendVSpec) (firstLSN uint64, n int, err error) {
	k := len(specs)
	if k == 0 {
		return 0, 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	firstLSN = l.nextLSN
	if l.src != nil {
		firstLSN = l.src.Add(uint64(k)) - uint64(k) + 1
	}
	if need := k * recPrefixLen; cap(l.hdrs) < need {
		l.hdrs = make([]byte, 0, need)
	}
	l.hdrs = l.hdrs[:k*recPrefixLen]
	for i, sp := range specs {
		l.stagePrefix(i*recPrefixLen, sp.Type, firstLSN+uint64(i), sp.Header, sp.Payload)
	}
	if l.rw != nil {
		l.segs = l.segs[:0]
		for i, sp := range specs {
			l.segs = append(l.segs, l.hdrs[i*recPrefixLen:(i+1)*recPrefixLen], sp.Header, sp.Payload)
		}
		n, err = l.rw.WriteV(l.segs)
		l.clearSegs()
	} else {
		l.scratch = l.scratch[:0]
		for i, sp := range specs {
			l.scratch = append(l.scratch, l.hdrs[i*recPrefixLen:(i+1)*recPrefixLen]...)
			l.scratch = append(l.scratch, sp.Header...)
			l.scratch = append(l.scratch, sp.Payload...)
		}
		n, err = l.w.Write(l.scratch)
	}
	if err != nil {
		return 0, 0, fmt.Errorf("wal: append batch: %w", err)
	}
	l.nextLSN = firstLSN + uint64(k)
	l.bytes += int64(n)
	return firstLSN, n, nil
}

// clearSegs drops the segment references once WriteV has copied them out,
// so the log does not pin the caller's payload buffers (which can be whole
// chunk-sized client slices) until its next append.
func (l *Log) clearSegs() {
	for i := range l.segs {
		l.segs[i] = nil
	}
	l.segs = l.segs[:0]
}

// stagePrefix encodes one record's 17-byte framing block at offset off in
// l.hdrs (which the caller has already sized to cover it), computing the
// CRC incrementally over the type/LSN header and both payload segments.
// Staging in the log-owned buffer — not a stack array — keeps the block
// from escaping to a per-append heap allocation in the checksum call.
func (l *Log) stagePrefix(off int, t RecordType, lsn uint64, header, payload []byte) {
	b := l.hdrs[off : off+recPrefixLen]
	b[8] = byte(t)
	binary.LittleEndian.PutUint64(b[9:17], lsn)
	sum := crc32.Update(0, castagnoli, b[8:17])
	sum = crc32.Update(sum, castagnoli, header)
	sum = crc32.Update(sum, castagnoli, payload)
	binary.LittleEndian.PutUint32(b[0:4], uint32(9+len(header)+len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], sum)
}

// NextLSN returns the LSN the next append will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Size returns the encoded bytes appended since New or the last ResetSize.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// ResetSize zeroes the byte counter after the caller has truncated the
// log's underlying writer (checkpoint compaction), keeping Size consistent
// with the bytes actually on the medium. LSNs are deliberately NOT reset:
// they stay monotonic across compactions.
func (l *Log) ResetSize() {
	l.mu.Lock()
	l.bytes = 0
	l.mu.Unlock()
}

// SetSize overwrites the byte counter after the caller has repaired the
// medium to a known length — crash recovery truncating a torn tail
// (ReplayValid). Like ResetSize, it does not touch LSNs.
func (l *Log) SetSize(n int64) {
	l.mu.Lock()
	l.bytes = n
	l.mu.Unlock()
}

// record layout (all integers little-endian):
//
//	u32 length of (type + lsn + payload)     \  framing prefix, 8 bytes
//	u32 crc32c of that region                /
//	u8  type                                 \  record header, 9 bytes,
//	u64 lsn                                  /  covered by the crc
//	payload                                  — covered by the crc
//
// A vectored append (AppendV/AppendNV) contributes the payload as two
// back-to-back segments, header then data; the framing and crc treat them
// as one region, so the on-medium stream does not record — and replay
// cannot observe — which append form produced a record.
//
// appendRecord appends the encoded record to dst without any intermediate
// buffer: the checksum is computed incrementally over the type/LSN header
// and the payload in place. It is the reference encoder the vectored paths
// are pinned against (TestAppendVMatchesAppendRecord); the Log itself now
// encodes through stagePrefix.
func appendRecord(dst []byte, t RecordType, lsn uint64, payload []byte) []byte {
	var hdr [9]byte
	hdr[0] = byte(t)
	binary.LittleEndian.PutUint64(hdr[1:9], lsn)
	sum := crc32.Update(0, castagnoli, hdr[:])
	sum = crc32.Update(sum, castagnoli, payload)
	var pre [8]byte
	binary.LittleEndian.PutUint32(pre[0:4], uint32(len(hdr)+len(payload)))
	binary.LittleEndian.PutUint32(pre[4:8], sum)
	dst = append(dst, pre[:]...)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Replay decodes records from r in order, invoking fn for each. It stops at
// EOF (clean end), at a truncated tail (treated as a torn final write, not
// an error), or at the first checksum failure, which returns ErrCorrupt.
// If fn returns an error, replay stops and returns that error.
func Replay(r io.Reader, fn func(Record) error) error {
	_, err := ReplayValid(r, fn)
	return err
}

// replayBodyStep bounds each incremental body-read allocation during
// replay, so an untrusted length prefix cannot trigger a giant eager
// allocation for bytes the medium does not hold.
const replayBodyStep = 1 << 20

// decoder incrementally decodes records from one log medium. It is the
// engine shared by ReplayValid (a single stream walked to its end) and
// MultiLog's merged replay, which holds one decoded head record per lane
// and advances lanes one record at a time as the order-key merge consumes
// them. Each record's body is a fresh allocation, so a held head stays
// valid while other lanes advance.
type decoder struct {
	r io.Reader
}

// next decodes one record. done=true reports a clean stop — EOF or a torn
// tail (truncated framing or body). err is ErrCorrupt on a checksum or
// framing failure, or a wrapped reader error; rec and frame are valid only
// when done==false and err==nil. frame is the record's full on-medium
// length (framing prefix plus body), the datum valid-prefix accounting and
// crash repair sum up.
func (d *decoder) next() (rec Record, frame int64, done bool, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Record{}, 0, true, nil // torn header: clean stop
		}
		return Record{}, 0, false, fmt.Errorf("wal: replay header: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length < 9 || length > 1<<30 {
		return Record{}, 0, false, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, length)
	}
	// Read the body in bounded steps: the length field is untrusted
	// (corruption, torn prefix), so the buffer grows only as bytes
	// actually arrive instead of eagerly allocating up to 1 GiB for a
	// record the medium cannot deliver.
	body := make([]byte, 0, min(int(length), replayBodyStep))
	for len(body) < int(length) {
		grow := min(int(length)-len(body), replayBodyStep)
		off := len(body)
		if off+grow <= cap(body) {
			body = body[:off+grow] // records <= one step extend in place
		} else {
			body = append(body, make([]byte, grow)...)
		}
		if _, err := io.ReadFull(d.r, body[off:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return Record{}, 0, true, nil // torn body: clean stop
			}
			return Record{}, 0, false, fmt.Errorf("wal: replay body: %w", err)
		}
	}
	if crc32.Checksum(body, castagnoli) != sum {
		return Record{}, 0, false, ErrCorrupt
	}
	rec = Record{
		Type:    RecordType(body[0]),
		LSN:     binary.LittleEndian.Uint64(body[1:9]),
		Payload: body[9:],
	}
	return rec, int64(len(hdr)) + int64(length), false, nil
}

// Decoder is the exported face of the streaming record decoder: it walks
// one log medium record by record, yielding each record's full on-medium
// frame length alongside it. MultiLog's merged recovery accepts per-lane
// record streams through the LaneFeed interface (multilog.go), and Decoder
// is the canonical feed — callers that pre-decode lanes concurrently
// (the blob store's parallel recovery pipeline) wrap one Decoder per lane
// and batch its output, and the merge cannot tell the difference because
// both shapes produce exactly this decode sequence. Each yielded record's
// payload is a fresh allocation, so records stay valid after the decoder
// advances.
type Decoder struct {
	d decoder
}

// NewDecoder returns a decoder streaming records from r, which must read a
// single log medium from its start (Buffer.Reader provides a stable
// snapshot).
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{d: decoder{r: r}}
}

// Next decodes one record. done=true reports a clean stop — EOF or a torn
// tail. err is ErrCorrupt on a checksum or framing failure; rec and frame
// are valid only when done==false and err==nil. frame is the record's full
// on-medium length (framing prefix plus body) — the datum merged recovery
// sums into each lane's repair truncation point, so a feed wrapping this
// decoder must pass it through unchanged.
func (d *Decoder) Next() (rec Record, frame int64, done bool, err error) {
	return d.d.next()
}

// ReplayValid is Replay plus the medium-repair datum crash recovery needs:
// it additionally returns the length in bytes of the valid record prefix —
// the offset just past the last record that decoded and checksummed clean.
// After a torn-tail stop the caller must truncate the medium to that
// offset before appending again; otherwise the next append lands behind
// the torn partial record, whose stale length prefix would make a later
// replay swallow the new record's first bytes and fail the torn record's
// checksum — ErrCorrupt and silent loss of everything appended since.
func ReplayValid(r io.Reader, fn func(Record) error) (valid int64, err error) {
	d := decoder{r: r}
	for {
		rec, frame, done, err := d.next()
		if done || err != nil {
			return valid, err
		}
		if err := fn(rec); err != nil {
			return valid, err
		}
		valid += frame
	}
}

// ReplayAll collects every record from r into a slice; see Replay for
// termination semantics.
func ReplayAll(r io.Reader) ([]Record, error) {
	var recs []Record
	err := Replay(r, func(rec Record) error {
		// Copy the payload: Replay reuses nothing today, but callers must
		// not depend on that.
		p := make([]byte, len(rec.Payload))
		copy(p, rec.Payload)
		rec.Payload = p
		recs = append(recs, rec)
		return nil
	})
	return recs, err
}

// DefaultSlabSize is Buffer's backing-slab granularity when SlabSize is 0.
const DefaultSlabSize = 64 << 10

// Buffer is a convenience in-memory log target that also serves as the
// replay source. It implements RecordWriter over fixed-size slabs: the
// backing never regrows geometrically (no growSlice copy-and-discard of a
// giant contiguous slice), appends past the current slab simply start a new
// one, and Reset retains the slabs on a free list, so a steady
// append/compact cycle allocates nothing once the high-water mark is
// reached.
type Buffer struct {
	// SlabSize overrides the backing-slab size in bytes (for tests that
	// want to cross slab boundaries cheaply). Zero means DefaultSlabSize.
	// Must not change once the buffer holds data.
	SlabSize int

	mu     sync.Mutex
	slabs  [][]byte // each of slabSize() capacity; bytes [0,n) are live
	n      int      // total content length
	free   [][]byte // slabs retained by Reset for reuse
	writes int      // Write/WriteV calls since creation (not reset by Reset)
}

func (b *Buffer) slabSize() int {
	if b.SlabSize > 0 {
		return b.SlabSize
	}
	return DefaultSlabSize
}

// writeLocked copies p into the slab sequence at the current end.
func (b *Buffer) writeLocked(p []byte) {
	ss := b.slabSize()
	for len(p) > 0 {
		si, off := b.n/ss, b.n%ss
		if si == len(b.slabs) {
			if k := len(b.free); k > 0 {
				b.slabs = append(b.slabs, b.free[k-1])
				b.free[k-1] = nil
				b.free = b.free[:k-1]
			} else {
				b.slabs = append(b.slabs, make([]byte, ss))
			}
		}
		c := copy(b.slabs[si][off:], p)
		b.n += c
		p = p[c:]
	}
}

// Write implements io.Writer.
func (b *Buffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.writes++
	b.writeLocked(p)
	return len(p), nil
}

// WriteV implements RecordWriter: the segments land back-to-back under one
// lock acquisition, so a vectored record append is as atomic with respect
// to concurrent appenders and readers as a single Write.
func (b *Buffer) WriteV(segs [][]byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.writes++
	n := 0
	for _, p := range segs {
		b.writeLocked(p)
		n += len(p)
	}
	return n, nil
}

// Reader returns a reader over a snapshot of the current contents.
func (b *Buffer) Reader() io.Reader {
	b.mu.Lock()
	defer b.mu.Unlock()
	snap := make([]byte, b.n)
	ss := b.slabSize()
	for i := 0; i < len(b.slabs) && i*ss < b.n; i++ {
		copy(snap[i*ss:], b.slabs[i][:min(ss, b.n-i*ss)])
	}
	return bytes.NewReader(snap)
}

// Len returns the current content length.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Writes reports how many Write/WriteV calls have landed since creation
// (Reset does not zero it). Tests use it to prove group commit actually
// coalesced a staged batch into one medium write.
func (b *Buffer) Writes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.writes
}

// Slabs reports how many backing slabs currently hold content. Tests use
// it to prove a log actually spans a segmented backing.
func (b *Buffer) Slabs() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	ss := b.slabSize()
	return (b.n + ss - 1) / ss
}

// Reset discards all buffered content. Checkpointing uses it to drop a log
// prefix that a freshly written snapshot has made redundant. The slabs move
// to a free list, so refilling after a reset reuses them instead of
// re-allocating the first window.
func (b *Buffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.free = append(b.free, b.slabs...)
	b.slabs = b.slabs[:0]
	b.n = 0
}

// Corrupt flips one byte at off, for crash/corruption injection in tests.
func (b *Buffer) Corrupt(off int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if off < 0 || off >= b.n {
		return fmt.Errorf("wal: corrupt offset %d out of range %d", off, b.n)
	}
	ss := b.slabSize()
	b.slabs[off/ss][off%ss] ^= 0xff
	return nil
}

// Truncate drops all content after n bytes, simulating a torn write. Slabs
// past the cut stay allocated and are overwritten by subsequent appends.
func (b *Buffer) Truncate(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n < b.n {
		b.n = n
	}
}
