// Package wal implements the write-ahead log used by each blob-store server
// for durability of namespace mutations and chunk writes. Records are
// length-prefixed and CRC32C-protected; replay stops cleanly at the first
// torn or corrupt record, mimicking crash-recovery behaviour of real object
// stores (RADOS journals, Týr's persistent log).
//
// The log writes into any io.Writer (in the simulation, an in-memory buffer
// whose persistence cost is charged to the virtual disk by the caller), so
// the package itself is pure and synchronous.
package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// RecordType tags the semantic kind of a log record. The WAL itself treats
// payloads as opaque; types exist so replay handlers can dispatch.
type RecordType uint8

// Record types used by the blob server.
const (
	RecCreate RecordType = iota + 1
	RecDelete
	RecWrite
	RecTruncate
	RecCommit
	RecAbort
	RecMeta
)

// String names the record type.
func (t RecordType) String() string {
	switch t {
	case RecCreate:
		return "create"
	case RecDelete:
		return "delete"
	case RecWrite:
		return "write"
	case RecTruncate:
		return "truncate"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecMeta:
		return "meta"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Record is one durable log entry.
type Record struct {
	Type    RecordType
	LSN     uint64 // assigned by the log at append time
	Payload []byte
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record whose checksum failed during replay.
var ErrCorrupt = errors.New("wal: corrupt record")

// Log is an append-only write-ahead log. Safe for concurrent appends.
type Log struct {
	mu      sync.Mutex
	w       io.Writer
	nextLSN uint64
	bytes   int64
}

// New returns a log appending to w.
func New(w io.Writer) *Log { return &Log{w: w, nextLSN: 1} }

// Append writes one record and returns its LSN and the encoded size in
// bytes (so the caller can charge the virtual disk for the persistence).
func (l *Log) Append(t RecordType, payload []byte) (lsn uint64, n int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn = l.nextLSN
	buf := encode(Record{Type: t, LSN: lsn, Payload: payload})
	if _, err := l.w.Write(buf); err != nil {
		return 0, 0, fmt.Errorf("wal: append: %w", err)
	}
	l.nextLSN++
	l.bytes += int64(len(buf))
	return lsn, len(buf), nil
}

// NextLSN returns the LSN the next append will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Size returns the total encoded bytes appended so far.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// record layout:
//
//	u32 length of (type + lsn + payload)
//	u32 crc32c of that region
//	u8  type
//	u64 lsn
//	payload
func encode(r Record) []byte {
	body := make([]byte, 1+8+len(r.Payload))
	body[0] = byte(r.Type)
	binary.LittleEndian.PutUint64(body[1:9], r.LSN)
	copy(body[9:], r.Payload)
	out := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(body, castagnoli))
	copy(out[8:], body)
	return out
}

// Replay decodes records from r in order, invoking fn for each. It stops at
// EOF (clean end), at a truncated tail (treated as a torn final write, not
// an error), or at the first checksum failure, which returns ErrCorrupt.
// If fn returns an error, replay stops and returns that error.
func Replay(r io.Reader, fn func(Record) error) error {
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // torn header: clean stop
			}
			return fmt.Errorf("wal: replay header: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length < 9 || length > 1<<30 {
			return fmt.Errorf("%w: implausible record length %d", ErrCorrupt, length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(r, body); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // torn body: clean stop
			}
			return fmt.Errorf("wal: replay body: %w", err)
		}
		if crc32.Checksum(body, castagnoli) != sum {
			return ErrCorrupt
		}
		rec := Record{
			Type:    RecordType(body[0]),
			LSN:     binary.LittleEndian.Uint64(body[1:9]),
			Payload: body[9:],
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// ReplayAll collects every record from r into a slice; see Replay for
// termination semantics.
func ReplayAll(r io.Reader) ([]Record, error) {
	var recs []Record
	err := Replay(r, func(rec Record) error {
		// Copy the payload: Replay reuses nothing today, but callers must
		// not depend on that.
		p := make([]byte, len(rec.Payload))
		copy(p, rec.Payload)
		rec.Payload = p
		recs = append(recs, rec)
		return nil
	})
	return recs, err
}

// Buffer is a convenience in-memory log target that also serves as the
// replay source.
type Buffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

// Write implements io.Writer.
func (b *Buffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// Reader returns a reader over a snapshot of the current contents.
func (b *Buffer) Reader() io.Reader {
	b.mu.Lock()
	defer b.mu.Unlock()
	return bytes.NewReader(append([]byte(nil), b.buf.Bytes()...))
}

// Len returns the current content length.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

// Corrupt flips one byte at off, for crash/corruption injection in tests.
func (b *Buffer) Corrupt(off int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	data := b.buf.Bytes()
	if off < 0 || off >= len(data) {
		return fmt.Errorf("wal: corrupt offset %d out of range %d", off, len(data))
	}
	data[off] ^= 0xff
	return nil
}

// Truncate drops all content after n bytes, simulating a torn write.
func (b *Buffer) Truncate(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n < b.buf.Len() {
		b.buf.Truncate(n)
	}
}
