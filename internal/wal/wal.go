// Package wal implements the write-ahead log used by each blob-store server
// for durability of namespace mutations and chunk writes. Records are
// length-prefixed and CRC32C-protected; replay stops cleanly at the first
// torn or corrupt record, mimicking crash-recovery behaviour of real object
// stores (RADOS journals, Týr's persistent log).
//
// The log writes into any io.Writer (in the simulation, an in-memory buffer
// whose persistence cost is charged to the virtual disk by the caller), so
// the package itself is pure and synchronous.
package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// RecordType tags the semantic kind of a log record. The WAL itself treats
// payloads as opaque; types exist so replay handlers can dispatch.
type RecordType uint8

// Record types used by the blob server.
const (
	RecCreate RecordType = iota + 1
	RecDelete
	RecWrite
	RecTruncate
	RecCommit
	RecAbort
	RecMeta
	RecChunkDelete
	RecChunkTruncate
	// RecPrepWrite is a chunk write prepared by a multi-chunk (2PC)
	// transaction: replay buffers it and applies it only once the same
	// chunk's RecChunkCommit arrives, so a crash mid-transaction cannot
	// resurrect a half-committed write.
	RecPrepWrite
	// RecChunkCommit commits every buffered RecPrepWrite for its chunk.
	// (RecCommit remains the transaction-level marker with a meta payload;
	// replay skips it.)
	RecChunkCommit
)

// String names the record type.
func (t RecordType) String() string {
	switch t {
	case RecCreate:
		return "create"
	case RecDelete:
		return "delete"
	case RecWrite:
		return "write"
	case RecTruncate:
		return "truncate"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecMeta:
		return "meta"
	case RecChunkDelete:
		return "chunk-delete"
	case RecChunkTruncate:
		return "chunk-truncate"
	case RecPrepWrite:
		return "prep-write"
	case RecChunkCommit:
		return "chunk-commit"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Record is one durable log entry.
type Record struct {
	Type    RecordType
	LSN     uint64 // assigned by the log at append time
	Payload []byte
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record whose checksum failed during replay.
var ErrCorrupt = errors.New("wal: corrupt record")

// Log is an append-only write-ahead log. Safe for concurrent appends.
type Log struct {
	mu      sync.Mutex
	w       io.Writer
	nextLSN uint64
	bytes   int64
	// scratch is the per-log reusable encode buffer: records are staged
	// here under mu and written out in one Write call, so steady-state
	// appends allocate nothing once the buffer has grown to the working
	// record size.
	scratch []byte
}

// New returns a log appending to w.
func New(w io.Writer) *Log { return &Log{w: w, nextLSN: 1} }

// Append writes one record and returns its LSN and the encoded size in
// bytes (so the caller can charge the virtual disk for the persistence).
func (l *Log) Append(t RecordType, payload []byte) (lsn uint64, n int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn = l.nextLSN
	l.scratch = appendRecord(l.scratch[:0], t, lsn, payload)
	if _, err := l.w.Write(l.scratch); err != nil {
		return 0, 0, fmt.Errorf("wal: append: %w", err)
	}
	l.nextLSN++
	l.bytes += int64(len(l.scratch))
	return lsn, len(l.scratch), nil
}

// AppendSpec is one record of a batched AppendN.
type AppendSpec struct {
	Type    RecordType
	Payload []byte
}

// AppendN appends the records atomically with consecutive LSNs, staging
// them all in the log's scratch buffer and issuing a single Write — one
// buffer grow for a k-record batch instead of k. It returns the LSN of the
// first record and the total encoded size.
func (l *Log) AppendN(specs []AppendSpec) (firstLSN uint64, n int, err error) {
	if len(specs) == 0 {
		return 0, 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	firstLSN = l.nextLSN
	l.scratch = l.scratch[:0]
	for i, sp := range specs {
		l.scratch = appendRecord(l.scratch, sp.Type, firstLSN+uint64(i), sp.Payload)
	}
	if _, err := l.w.Write(l.scratch); err != nil {
		return 0, 0, fmt.Errorf("wal: append batch: %w", err)
	}
	l.nextLSN += uint64(len(specs))
	l.bytes += int64(len(l.scratch))
	return firstLSN, len(l.scratch), nil
}

// NextLSN returns the LSN the next append will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Size returns the encoded bytes appended since New or the last ResetSize.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// ResetSize zeroes the byte counter after the caller has truncated the
// log's underlying writer (checkpoint compaction), keeping Size consistent
// with the bytes actually on the medium. LSNs are deliberately NOT reset:
// they stay monotonic across compactions.
func (l *Log) ResetSize() {
	l.mu.Lock()
	l.bytes = 0
	l.mu.Unlock()
}

// record layout:
//
//	u32 length of (type + lsn + payload)
//	u32 crc32c of that region
//	u8  type
//	u64 lsn
//	payload
// appendRecord appends the encoded record to dst without any intermediate
// buffer: the checksum is computed incrementally over the type/LSN header
// and the payload in place.
func appendRecord(dst []byte, t RecordType, lsn uint64, payload []byte) []byte {
	var hdr [9]byte
	hdr[0] = byte(t)
	binary.LittleEndian.PutUint64(hdr[1:9], lsn)
	sum := crc32.Update(0, castagnoli, hdr[:])
	sum = crc32.Update(sum, castagnoli, payload)
	var pre [8]byte
	binary.LittleEndian.PutUint32(pre[0:4], uint32(len(hdr)+len(payload)))
	binary.LittleEndian.PutUint32(pre[4:8], sum)
	dst = append(dst, pre[:]...)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Replay decodes records from r in order, invoking fn for each. It stops at
// EOF (clean end), at a truncated tail (treated as a torn final write, not
// an error), or at the first checksum failure, which returns ErrCorrupt.
// If fn returns an error, replay stops and returns that error.
func Replay(r io.Reader, fn func(Record) error) error {
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // torn header: clean stop
			}
			return fmt.Errorf("wal: replay header: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length < 9 || length > 1<<30 {
			return fmt.Errorf("%w: implausible record length %d", ErrCorrupt, length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(r, body); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // torn body: clean stop
			}
			return fmt.Errorf("wal: replay body: %w", err)
		}
		if crc32.Checksum(body, castagnoli) != sum {
			return ErrCorrupt
		}
		rec := Record{
			Type:    RecordType(body[0]),
			LSN:     binary.LittleEndian.Uint64(body[1:9]),
			Payload: body[9:],
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// ReplayAll collects every record from r into a slice; see Replay for
// termination semantics.
func ReplayAll(r io.Reader) ([]Record, error) {
	var recs []Record
	err := Replay(r, func(rec Record) error {
		// Copy the payload: Replay reuses nothing today, but callers must
		// not depend on that.
		p := make([]byte, len(rec.Payload))
		copy(p, rec.Payload)
		rec.Payload = p
		recs = append(recs, rec)
		return nil
	})
	return recs, err
}

// Buffer is a convenience in-memory log target that also serves as the
// replay source.
type Buffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

// Write implements io.Writer.
func (b *Buffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// Reader returns a reader over a snapshot of the current contents.
func (b *Buffer) Reader() io.Reader {
	b.mu.Lock()
	defer b.mu.Unlock()
	return bytes.NewReader(append([]byte(nil), b.buf.Bytes()...))
}

// Len returns the current content length.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

// Reset discards all buffered content. Checkpointing uses it to drop a log
// prefix that a freshly written snapshot has made redundant.
func (b *Buffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf.Reset()
}

// Corrupt flips one byte at off, for crash/corruption injection in tests.
func (b *Buffer) Corrupt(off int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	data := b.buf.Bytes()
	if off < 0 || off >= len(data) {
		return fmt.Errorf("wal: corrupt offset %d out of range %d", off, len(data))
	}
	data[off] ^= 0xff
	return nil
}

// Truncate drops all content after n bytes, simulating a torn write.
func (b *Buffer) Truncate(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n < b.buf.Len() {
		b.buf.Truncate(n)
	}
}
