package mpi

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Split partitions the communicator MPI_Comm_split-style: ranks with the
// same color form a new sub-communicator; within a color, new rank IDs
// follow ascending (key, old rank) order. Every rank of the parent must
// call Split together (it is a collective). The returned Rank shares the
// caller's virtual clock: the process is the same, only the communication
// scope narrows.
//
// A negative color (MPI_UNDEFINED) yields a nil communicator; the caller
// still participates in the collective exchange.
func (r *Rank) Split(color, key int) *Rank {
	// Exchange (color, key) pairs.
	var payload [16]byte
	binary.LittleEndian.PutUint64(payload[0:8], uint64(int64(color)))
	binary.LittleEndian.PutUint64(payload[8:16], uint64(int64(key)))
	all := r.collect(payload[:])

	if color < 0 {
		return nil
	}
	type member struct {
		oldRank int
		key     int
	}
	var members []member
	for oldRank, p := range all {
		c := int(int64(binary.LittleEndian.Uint64(p[0:8])))
		k := int(int64(binary.LittleEndian.Uint64(p[8:16])))
		if c == color {
			members = append(members, member{oldRank, k})
		}
	}
	sort.Slice(members, func(a, b int) bool {
		if members[a].key != members[b].key {
			return members[a].key < members[b].key
		}
		return members[a].oldRank < members[b].oldRank
	})

	newID := -1
	oldRanks := make([]int, len(members))
	for i, m := range members {
		oldRanks[i] = m.oldRank
		if m.oldRank == r.ID {
			newID = i
		}
	}
	if newID < 0 {
		// Unreachable: our own (color, key) was in the exchange.
		panic(fmt.Sprintf("mpi: Split lost rank %d", r.ID))
	}
	return &Rank{
		ID:    newID,
		world: r.world.subWorld(color, oldRanks),
		Ctx:   r.Ctx, // same process, same clock
	}
}

// subWorld builds (or reuses) the communicator backing one color group.
// Sub-communicators get distinct mailboxes and rendezvous state but share
// the parent's cost model.
func (w *World) subWorld(color int, oldRanks []int) *World {
	w.subMu.Lock()
	defer w.subMu.Unlock()
	if w.subs == nil {
		w.subs = make(map[string]*World)
	}
	key := fmt.Sprintf("%d:%v", color, oldRanks)
	if sub, ok := w.subs[key]; ok {
		return sub
	}
	sub := newWorld(len(oldRanks), w.cost)
	w.subs[key] = sub
	return sub
}
