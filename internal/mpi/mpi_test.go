package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

func cost() sim.CostModel { return sim.DefaultCostModel() }

func TestRunAllRanksExecute(t *testing.T) {
	seen := make([]bool, 8)
	errs := Run(8, cost(), func(r *Rank) error {
		seen[r.ID] = true
		if r.Size() != 8 {
			return fmt.Errorf("size = %d", r.Size())
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("rank %d never ran", i)
		}
	}
}

func TestRunPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run(0) did not panic")
		}
	}()
	Run(0, cost(), func(*Rank) error { return nil })
}

func TestFirstError(t *testing.T) {
	boom := errors.New("boom")
	if got := FirstError([]error{nil, boom, nil}); !errors.Is(got, boom) {
		t.Fatalf("FirstError = %v", got)
	}
	if got := FirstError([]error{nil, nil}); got != nil {
		t.Fatalf("FirstError = %v", got)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	clocks := make([]time.Duration, 4)
	errs := Run(4, cost(), func(r *Rank) error {
		// Each rank does a different amount of local work.
		r.Ctx.Clock.Advance(time.Duration(r.ID) * time.Millisecond)
		r.Barrier()
		clocks[r.ID] = r.Ctx.Clock.Now()
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if clocks[i] != clocks[0] {
			t.Fatalf("clocks diverge after barrier: %v", clocks)
		}
	}
	if clocks[0] < 3*time.Millisecond {
		t.Fatalf("barrier did not wait for the slowest rank: %v", clocks[0])
	}
}

func TestBcast(t *testing.T) {
	payload := []byte("from root")
	errs := Run(4, cost(), func(r *Rank) error {
		var in []byte
		if r.ID == 2 {
			in = payload
		}
		got := r.Bcast(2, in)
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("rank %d got %q", r.ID, got)
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	errs := Run(5, cost(), func(r *Rank) error {
		data := []byte{byte(r.ID * 10)}
		got := r.Gather(0, data)
		if r.ID != 0 {
			if got != nil {
				return fmt.Errorf("non-root rank %d got %v", r.ID, got)
			}
			return nil
		}
		if len(got) != 5 {
			return fmt.Errorf("root got %d pieces", len(got))
		}
		for i, p := range got {
			if len(p) != 1 || p[0] != byte(i*10) {
				return fmt.Errorf("piece %d = %v", i, p)
			}
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	errs := Run(3, cost(), func(r *Rank) error {
		got := r.AllGather([]byte{byte(r.ID)})
		if len(got) != 3 {
			return fmt.Errorf("AllGather returned %d pieces", len(got))
		}
		for i, p := range got {
			if p[0] != byte(i) {
				return fmt.Errorf("piece %d = %v", i, p)
			}
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduce(t *testing.T) {
	errs := Run(6, cost(), func(r *Rank) error {
		sum := r.AllReduceInt64(int64(r.ID+1), func(a, b int64) int64 { return a + b })
		if sum != 21 { // 1+2+...+6
			return fmt.Errorf("rank %d: sum = %d", r.ID, sum)
		}
		max := r.AllReduceInt64(int64(r.ID), func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
		if max != 5 {
			return fmt.Errorf("rank %d: max = %d", r.ID, max)
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecv(t *testing.T) {
	errs := Run(2, cost(), func(r *Rank) error {
		if r.ID == 0 {
			r.Send(1, 7, []byte("hello"))
			reply := r.Recv(1, 8)
			if string(reply) != "world" {
				return fmt.Errorf("reply = %q", reply)
			}
			return nil
		}
		msg := r.Recv(0, 7)
		if string(msg) != "hello" {
			return fmt.Errorf("msg = %q", msg)
		}
		r.Send(0, 8, []byte("world"))
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvTagFiltering(t *testing.T) {
	errs := Run(2, cost(), func(r *Rank) error {
		if r.ID == 0 {
			r.Send(1, 1, []byte("first"))
			r.Send(1, 2, []byte("second"))
			return nil
		}
		// Receive out of order by tag.
		second := r.Recv(0, 2)
		first := r.Recv(0, 1)
		if string(first) != "first" || string(second) != "second" {
			return fmt.Errorf("tag filtering broken: %q / %q", first, second)
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestRecvAdvancesClock(t *testing.T) {
	errs := Run(2, cost(), func(r *Rank) error {
		if r.ID == 0 {
			r.Ctx.Clock.Advance(10 * time.Millisecond)
			r.Send(1, 0, []byte("late message"))
			return nil
		}
		r.Recv(0, 0)
		if r.Ctx.Clock.Now() < 10*time.Millisecond {
			return fmt.Errorf("receiver clock %v behind sender", r.Ctx.Clock.Now())
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedCollectives(t *testing.T) {
	// Regression guard for generation bookkeeping: many collectives in a
	// row must not deadlock or cross-contaminate.
	errs := Run(4, cost(), func(r *Rank) error {
		for i := 0; i < 50; i++ {
			v := r.AllReduceInt64(1, func(a, b int64) int64 { return a + b })
			if v != 4 {
				return fmt.Errorf("iteration %d: %d", i, v)
			}
			r.Barrier()
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestSendPanicsOnBadRank(t *testing.T) {
	errs := Run(1, cost(), func(r *Rank) error {
		defer func() {
			if recover() == nil {
				t.Error("Send to invalid rank did not panic")
			}
		}()
		r.Send(5, 0, nil)
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankCollectives(t *testing.T) {
	errs := Run(1, cost(), func(r *Rank) error {
		r.Barrier()
		if got := r.Bcast(0, []byte("solo")); string(got) != "solo" {
			return fmt.Errorf("Bcast = %q", got)
		}
		if got := r.AllReduceInt64(9, func(a, b int64) int64 { return a + b }); got != 9 {
			return fmt.Errorf("AllReduce = %d", got)
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestSplitFormsGroups(t *testing.T) {
	errs := Run(6, cost(), func(r *Rank) error {
		// Even/odd split.
		sub := r.Split(r.ID%2, r.ID)
		if sub == nil {
			return fmt.Errorf("rank %d got nil sub-communicator", r.ID)
		}
		if sub.Size() != 3 {
			return fmt.Errorf("rank %d: sub size = %d", r.ID, sub.Size())
		}
		if want := r.ID / 2; sub.ID != want {
			return fmt.Errorf("rank %d: sub rank = %d, want %d", r.ID, sub.ID, want)
		}
		// Collectives inside the group see only group members.
		sum := sub.AllReduceInt64(int64(r.ID), func(a, b int64) int64 { return a + b })
		want := int64(0 + 2 + 4)
		if r.ID%2 == 1 {
			want = 1 + 3 + 5
		}
		if sum != want {
			return fmt.Errorf("rank %d: group sum = %d, want %d", r.ID, sum, want)
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	errs := Run(4, cost(), func(r *Rank) error {
		color := -1
		if r.ID < 2 {
			color = 0
		}
		sub := r.Split(color, 0)
		if r.ID < 2 {
			if sub == nil || sub.Size() != 2 {
				return fmt.Errorf("rank %d: sub = %v", r.ID, sub)
			}
			sub.Barrier()
		} else if sub != nil {
			return fmt.Errorf("rank %d: undefined color produced a communicator", r.ID)
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	errs := Run(4, cost(), func(r *Rank) error {
		// Reverse ordering via descending keys.
		sub := r.Split(0, -r.ID)
		if want := r.Size() - 1 - r.ID; sub.ID != want {
			return fmt.Errorf("rank %d: sub rank = %d, want %d", r.ID, sub.ID, want)
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestSplitSendRecvWithinGroup(t *testing.T) {
	errs := Run(4, cost(), func(r *Rank) error {
		sub := r.Split(r.ID/2, r.ID) // groups {0,1} and {2,3}
		if sub.ID == 0 {
			sub.Send(1, 5, []byte(fmt.Sprintf("group-%d", r.ID/2)))
			return nil
		}
		msg := sub.Recv(0, 5)
		if string(msg) != fmt.Sprintf("group-%d", r.ID/2) {
			return fmt.Errorf("rank %d got %q", r.ID, msg)
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestSplitSharesClock(t *testing.T) {
	errs := Run(2, cost(), func(r *Rank) error {
		sub := r.Split(0, r.ID)
		before := r.Ctx.Clock.Now()
		sub.Barrier()
		if r.Ctx.Clock.Now() < before {
			return fmt.Errorf("clock went backwards")
		}
		if sub.Ctx != r.Ctx {
			return fmt.Errorf("sub-communicator has a different context")
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
}
