// Package mpi implements a miniature MPI runtime: ranks are goroutines, and
// the package provides the point-to-point and collective operations the
// paper's HPC applications are built on (barrier, broadcast, gather,
// all-reduce, send/recv).
//
// Virtual time follows the MPI model: each rank owns a clock
// (storage.Context); collectives synchronize the participants' clocks to
// the slowest rank plus a logarithmic tree cost, exactly how barrier time
// behaves on a real interconnect at first order.
package mpi

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
)

// World is one communicator spanning size ranks.
type World struct {
	size int
	cost sim.CostModel

	mu      sync.Mutex
	cond    *sync.Cond
	gen     int64
	arrived int
	inputs  [][]byte
	outputs [][]byte

	// Point-to-point mailboxes, one per (src, dst) pair, created lazily.
	boxesMu sync.Mutex
	boxes   map[[2]int]chan message

	// Sub-communicators created by Split, keyed by (color, membership).
	subMu sync.Mutex
	subs  map[string]*World
}

type message struct {
	tag  int
	data []byte
	at   time.Duration // sender's clock at send time
}

// Rank is one process in the world.
type Rank struct {
	ID    int
	world *World
	// Ctx carries the rank's virtual clock; storage calls made by the rank
	// must use it.
	Ctx *storage.Context
}

// Size returns the communicator size.
func (r *Rank) Size() int { return r.world.size }

// newWorld builds a communicator for n ranks.
func newWorld(n int, cost sim.CostModel) *World {
	w := &World{
		size:  n,
		cost:  cost,
		boxes: make(map[[2]int]chan message),
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Run spawns n ranks executing fn concurrently and returns each rank's
// final error (indexed by rank) once all complete. It panics if n < 1.
func Run(n int, cost sim.CostModel, fn func(r *Rank) error) []error {
	if n < 1 {
		panic(fmt.Sprintf("mpi: invalid world size %d", n))
	}
	w := newWorld(n, cost)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := &Rank{ID: id, world: w, Ctx: storage.NewContext()}
			errs[id] = fn(r)
		}(i)
	}
	wg.Wait()
	return errs
}

// Self returns a single-rank communicator (MPI_COMM_SELF): collectives
// complete immediately because the lone rank is always the last arriver.
// It exists so MPI-IO file semantics (write-behind, visibility-on-sync)
// can be embedded outside an mpi.Run world — mpiio's storage.FileSystem
// adapter opens every handle on its own Self rank. The rank adopts ctx for
// its storage calls so costs land on the caller's virtual clock.
func Self(ctx *storage.Context, cost sim.CostModel) *Rank {
	return &Rank{ID: 0, world: newWorld(1, cost), Ctx: ctx}
}

// FirstError returns the first non-nil error from a Run result, or nil.
func FirstError(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// rendezvous blocks until every rank has contributed input for this
// generation, then returns the full input slice (identical view for all
// ranks). The last arriver advances the generation.
func (w *World) rendezvous(rank int, input []byte) [][]byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.inputs == nil {
		w.inputs = make([][]byte, w.size)
	}
	w.inputs[rank] = input
	w.arrived++
	gen := w.gen
	if w.arrived == w.size {
		w.outputs = w.inputs
		w.inputs = nil
		w.arrived = 0
		w.gen++
		w.cond.Broadcast()
	} else {
		for w.gen == gen {
			w.cond.Wait()
		}
	}
	return w.outputs
}

// treeCost returns the collective's virtual-time cost for a payload of n
// bytes: ceil(log2(size)) tree steps, each one wire traversal.
func (w *World) treeCost(n int) time.Duration {
	steps := 0
	for s := 1; s < w.size; s <<= 1 {
		steps++
	}
	if steps == 0 {
		steps = 1
	}
	return time.Duration(steps) * w.cost.WireTime(n)
}

// syncClocks advances every participant to the max clock plus cost. It must
// be called by every rank with its own context after a rendezvous (the
// rendezvous result carries no clock info, so clocks are exchanged as part
// of the collective payloads below).
func maxTime(times []time.Duration) time.Duration {
	var m time.Duration
	for _, t := range times {
		if t > m {
			m = t
		}
	}
	return m
}

// clockBytes and clockFromBytes serialize a clock reading into rendezvous
// payload prefixes.
func clockBytes(d time.Duration) []byte {
	v := uint64(d)
	return []byte{
		byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
		byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56),
	}
}

func clockFromBytes(b []byte) time.Duration {
	if len(b) < 8 {
		return 0
	}
	v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	return time.Duration(v)
}

// collect runs one collective exchange: every rank contributes data, every
// rank receives all contributions, and all clocks synchronize to the
// slowest participant plus the tree cost for the largest payload.
func (r *Rank) collect(data []byte) [][]byte {
	payload := append(clockBytes(r.Ctx.Clock.Now()), data...)
	all := r.world.rendezvous(r.ID, payload)
	times := make([]time.Duration, len(all))
	out := make([][]byte, len(all))
	maxLen := 0
	for i, p := range all {
		times[i] = clockFromBytes(p)
		out[i] = p[8:]
		if len(out[i]) > maxLen {
			maxLen = len(out[i])
		}
	}
	r.Ctx.Clock.AdvanceTo(maxTime(times) + r.world.treeCost(maxLen))
	return out
}

// Barrier blocks until all ranks arrive; clocks synchronize to the slowest.
func (r *Rank) Barrier() {
	r.collect(nil)
}

// Bcast distributes root's buffer to every rank, returning the received
// copy (root receives its own data back).
func (r *Rank) Bcast(root int, data []byte) []byte {
	if root < 0 || root >= r.world.size {
		panic(fmt.Sprintf("mpi: Bcast root %d out of range", root))
	}
	var contrib []byte
	if r.ID == root {
		contrib = data
	}
	all := r.collect(contrib)
	out := make([]byte, len(all[root]))
	copy(out, all[root])
	return out
}

// Gather collects every rank's buffer; the root receives the full slice
// (indexed by rank) and the others receive nil.
func (r *Rank) Gather(root int, data []byte) [][]byte {
	if root < 0 || root >= r.world.size {
		panic(fmt.Sprintf("mpi: Gather root %d out of range", root))
	}
	all := r.collect(data)
	if r.ID != root {
		return nil
	}
	out := make([][]byte, len(all))
	for i, p := range all {
		out[i] = append([]byte(nil), p...)
	}
	return out
}

// AllGather collects every rank's buffer on every rank.
func (r *Rank) AllGather(data []byte) [][]byte {
	all := r.collect(data)
	out := make([][]byte, len(all))
	for i, p := range all {
		out[i] = append([]byte(nil), p...)
	}
	return out
}

// AllReduceInt64 combines one int64 per rank with op on every rank.
func (r *Rank) AllReduceInt64(v int64, op func(a, b int64) int64) int64 {
	buf := make([]byte, 8)
	u := uint64(v)
	for i := 0; i < 8; i++ {
		buf[i] = byte(u >> (8 * i))
	}
	all := r.collect(buf)
	acc := decodeInt64(all[0])
	for _, p := range all[1:] {
		acc = op(acc, decodeInt64(p))
	}
	return acc
}

func decodeInt64(b []byte) int64 {
	var u uint64
	for i := 0; i < 8 && i < len(b); i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return int64(u)
}

// Send delivers data to rank dst with a tag; it does not block on the
// receiver (buffered eager protocol).
func (r *Rank) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= r.world.size {
		panic(fmt.Sprintf("mpi: Send to rank %d out of range", dst))
	}
	box := r.world.box(r.ID, dst)
	cp := append([]byte(nil), data...)
	r.Ctx.Clock.Advance(r.world.cost.WireTime(len(data)))
	box <- message{tag: tag, data: cp, at: r.Ctx.Clock.Now()}
}

// Recv blocks for a message from src with the given tag, returning its
// payload. Receiving advances the clock to no earlier than the send
// completion (message latency already charged by the sender).
func (r *Rank) Recv(src, tag int) []byte {
	if src < 0 || src >= r.world.size {
		panic(fmt.Sprintf("mpi: Recv from rank %d out of range", src))
	}
	box := r.world.box(src, r.ID)
	for {
		m := <-box
		if m.tag == tag {
			r.Ctx.Clock.AdvanceTo(m.at)
			return m.data
		}
		// Wrong tag: requeue and retry (tags are rare in this codebase, so
		// the simple strategy suffices).
		box <- m
	}
}

func (w *World) box(src, dst int) chan message {
	w.boxesMu.Lock()
	defer w.boxesMu.Unlock()
	key := [2]int{src, dst}
	b, ok := w.boxes[key]
	if !ok {
		b = make(chan message, 1024)
		w.boxes[key] = b
	}
	return b
}
