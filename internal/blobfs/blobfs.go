// Package blobfs implements a POSIX-IO file-system interface on top of the
// flat-namespace blob store, the Section III legacy-compatibility argument
// ("this is proven possible by the Ceph file system, a file-system
// interface to RADOS").
//
// Mapping, exactly as the paper describes:
//
//   - file operations map one-to-one onto blob primitives: open/stat →
//     size, read → random read, write → random write, create → create,
//     unlink → delete, truncate → truncate;
//   - directory operations have no blob counterpart and are EMULATED with
//     the scan primitive: a directory is a marker blob whose key ends in
//     "/", and listing scans the key prefix. The paper calls this path
//     "far from optimized", and the ablation benchmarks quantify it;
//   - permissions and xattrs — the POSIX features the paper calls rarely
//     needed — are kept client-side by the adapter (the blob layer
//     deliberately has no notion of them), enough for legacy applications
//     to run unmodified.
//
// Rename has no paper-level blob primitive either. When the store offers
// the storage.BlobRenamer extension (internal/blob's server-side rename),
// the adapter uses it — chunks move through the fast data plane without a
// client round trip per megabyte; otherwise rename degrades to the honest
// copy + delete emulation.
package blobfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/storage"
)

// FS adapts a storage.BlobStore to storage.FileSystem.
type FS struct {
	store storage.BlobStore

	// Client-side metadata for POSIX conveniences the blob layer lacks.
	mu     sync.Mutex
	modes  map[string]uint32
	xattrs map[string]map[string]string
}

// New returns a POSIX adapter over store.
func New(store storage.BlobStore) *FS {
	return &FS{
		store:  store,
		modes:  make(map[string]uint32),
		xattrs: make(map[string]map[string]string),
	}
}

// Store returns the underlying blob store.
func (fs *FS) Store() storage.BlobStore { return fs.store }

// ChunkSize forwards the store's placement granularity (storage.ChunkSizer)
// so collective writers above the adapter can align their shares to whole
// chunks; 0 when the store has no natural granularity.
func (fs *FS) ChunkSize() int {
	if cs, ok := fs.store.(storage.ChunkSizer); ok {
		return cs.ChunkSize()
	}
	return 0
}

// fileKey maps a path to its blob key; dirKey maps a path to its directory
// marker key (trailing slash keeps the two namespaces disjoint).
func fileKey(path string) (string, error) {
	k := strings.Trim(path, "/")
	if k == "" || strings.Contains(k, "//") || strings.Contains(path, "..") {
		return "", fmt.Errorf("path %q: %w", path, storage.ErrInvalidArg)
	}
	return k, nil
}

func dirKey(path string) (string, error) {
	if strings.Trim(path, "/") == "" {
		return "", nil // root: always exists, no marker needed
	}
	k, err := fileKey(path)
	if err != nil {
		return "", err
	}
	return k + "/", nil
}

// parentExists verifies the parent directory marker, one flat lookup.
func (fs *FS) parentExists(ctx *storage.Context, path string) error {
	k, err := fileKey(path)
	if err != nil {
		return err
	}
	i := strings.LastIndexByte(k, '/')
	if i < 0 {
		return nil // parent is the root
	}
	parentMarker := k[:i] + "/"
	if _, err := fs.store.BlobSize(ctx, parentMarker); err != nil {
		return fmt.Errorf("parent of %q: %w", path, fs.classifyMiss(ctx, path))
	}
	return nil
}

// classifyMiss picks the POSIX error class for a failed path lookup the
// way a component walk would: when a strict ancestor of the path exists
// as a FILE, resolution died at that component (ErrNotDirectory, POSIX
// ENOTDIR); otherwise the path is simply absent (ErrNotFound). The flat
// namespace has no real walk, so this probes ancestor blob keys only on
// the miss path — the differential fuzzer pins the taxonomy to posixfs's.
func (fs *FS) classifyMiss(ctx *storage.Context, path string) error {
	k, err := fileKey(path)
	if err != nil {
		return storage.ErrNotFound
	}
	for i := strings.LastIndexByte(k, '/'); i > 0; i = strings.LastIndexByte(k[:i], '/') {
		if _, err := fs.store.BlobSize(ctx, k[:i]); err == nil {
			return storage.ErrNotDirectory
		}
	}
	return storage.ErrNotFound
}

// Create makes (or truncates) a file. Maps to blob create (+ truncate when
// the file existed).
func (fs *FS) Create(ctx *storage.Context, path string) (storage.Handle, error) {
	k, err := fileKey(path)
	if err != nil {
		return nil, err
	}
	if err := fs.parentExists(ctx, path); err != nil {
		return nil, err
	}
	if isDir, _ := fs.isDir(ctx, path); isDir {
		return nil, fmt.Errorf("create %q: %w", path, storage.ErrIsDirectory)
	}
	switch err := fs.store.CreateBlob(ctx, k); {
	case err == nil:
		fs.setMode(path, 0o644)
	case errors.Is(err, storage.ErrExists):
		if err := fs.store.TruncateBlob(ctx, k, 0); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	return &handle{fs: fs, key: k, open: true}, nil
}

// Open opens an existing file. Maps to a blob size probe.
func (fs *FS) Open(ctx *storage.Context, path string) (storage.Handle, error) {
	k, err := fileKey(path)
	if err != nil {
		return nil, err
	}
	if isDir, _ := fs.isDir(ctx, path); isDir {
		return nil, fmt.Errorf("open %q: %w", path, storage.ErrIsDirectory)
	}
	if _, err := fs.store.BlobSize(ctx, k); err != nil {
		return nil, fmt.Errorf("open %q: %w", path, fs.classifyMiss(ctx, path))
	}
	return &handle{fs: fs, key: k, open: true}, nil
}

// Unlink removes a file. Maps to blob delete.
func (fs *FS) Unlink(ctx *storage.Context, path string) error {
	k, err := fileKey(path)
	if err != nil {
		return err
	}
	if isDir, _ := fs.isDir(ctx, path); isDir {
		return fmt.Errorf("unlink %q: %w", path, storage.ErrIsDirectory)
	}
	if err := fs.store.DeleteBlob(ctx, k); err != nil {
		return fmt.Errorf("unlink %q: %w", path, fs.classifyMiss(ctx, path))
	}
	fs.clearMeta(path)
	return nil
}

func (fs *FS) isDir(ctx *storage.Context, path string) (bool, error) {
	dk, err := dirKey(path)
	if err != nil {
		return false, err
	}
	if dk == "" {
		return true, nil // root
	}
	_, err = fs.store.BlobSize(ctx, dk)
	return err == nil, nil
}

// Stat maps to a blob size probe (file) or marker probe (directory).
func (fs *FS) Stat(ctx *storage.Context, path string) (storage.FileInfo, error) {
	if isDir, err := fs.isDir(ctx, path); err != nil {
		return storage.FileInfo{}, err
	} else if isDir {
		return storage.FileInfo{Name: baseName(path), Mode: 0o755, IsDir: true}, nil
	}
	k, err := fileKey(path)
	if err != nil {
		return storage.FileInfo{}, err
	}
	size, err := fs.store.BlobSize(ctx, k)
	if err != nil {
		return storage.FileInfo{}, fmt.Errorf("stat %q: %w", path, fs.classifyMiss(ctx, path))
	}
	return storage.FileInfo{Name: baseName(path), Size: size, Mode: fs.mode(path), IsDir: false}, nil
}

func baseName(path string) string {
	k := strings.Trim(path, "/")
	if i := strings.LastIndexByte(k, '/'); i >= 0 {
		return k[i+1:]
	}
	return k
}

// Truncate maps to blob truncate. Directory paths are rejected with the
// POSIX class (ErrIsDirectory, not ErrNotFound) so the differential fuzzer
// sees the same error taxonomy as posixfs.
func (fs *FS) Truncate(ctx *storage.Context, path string, size int64) error {
	k, err := fileKey(path)
	if err != nil {
		return err
	}
	if isDir, _ := fs.isDir(ctx, path); isDir {
		return fmt.Errorf("truncate %q: %w", path, storage.ErrIsDirectory)
	}
	if err := fs.store.TruncateBlob(ctx, k, size); err != nil {
		if errors.Is(err, storage.ErrNotFound) {
			return fmt.Errorf("truncate %q: %w", path, fs.classifyMiss(ctx, path))
		}
		return err
	}
	return nil
}

// Rename moves a file or directory subtree. When the store implements
// storage.BlobRenamer (internal/blob does), each blob moves server-side
// through the fast data plane — WAL-durable chunk rewrites under both
// descriptor latches, no bytes through the client; otherwise the adapter
// falls back to the honest copy-then-delete emulation the paper describes,
// visible in the ablation benchmarks. The target must not exist (blobfs
// rename is HDFS-style non-replacing; the fstest matrix pins it).
func (fs *FS) Rename(ctx *storage.Context, oldPath, newPath string) error {
	if err := fs.parentExists(ctx, newPath); err != nil {
		return err
	}
	if isDir, _ := fs.isDir(ctx, oldPath); isDir {
		oldPrefix, err := dirKey(oldPath)
		if err != nil {
			return err
		}
		newPrefix, err := dirKey(newPath)
		if err != nil {
			return err
		}
		if newPrefix == "" {
			return fmt.Errorf("rename to root: %w", storage.ErrInvalidArg)
		}
		if strings.HasPrefix(newPrefix, oldPrefix) {
			return fmt.Errorf("rename %q into its own subtree %q: %w", oldPath, newPath, storage.ErrInvalidArg)
		}
		if exists, _ := fs.pathExists(ctx, newPath); exists {
			return fmt.Errorf("rename to %q: %w", newPath, storage.ErrExists)
		}
		infos, err := fs.store.Scan(ctx, oldPrefix)
		if err != nil {
			return err
		}
		// Move the marker itself plus everything under it.
		if err := fs.moveBlob(ctx, strings.TrimSuffix(oldPrefix, "/")+"/", newPrefix); err != nil {
			return err
		}
		fs.moveMeta(oldPath, newPath)
		for _, info := range infos {
			if info.Key == oldPrefix {
				continue
			}
			rest := strings.TrimPrefix(info.Key, oldPrefix)
			if err := fs.moveBlob(ctx, info.Key, newPrefix+rest); err != nil {
				return err
			}
			fs.moveMeta(oldPath+"/"+strings.TrimSuffix(rest, "/"), newPath+"/"+strings.TrimSuffix(rest, "/"))
		}
		return nil
	}
	oldKey, err := fileKey(oldPath)
	if err != nil {
		return err
	}
	newKey, err := fileKey(newPath)
	if err != nil {
		return err
	}
	if _, err := fs.store.BlobSize(ctx, oldKey); err != nil {
		return fmt.Errorf("rename %q: %w", oldPath, fs.classifyMiss(ctx, oldPath))
	}
	if exists, _ := fs.pathExists(ctx, newPath); exists {
		return fmt.Errorf("rename to %q: %w", newPath, storage.ErrExists)
	}
	if err := fs.moveBlob(ctx, oldKey, newKey); err != nil {
		return err
	}
	fs.moveMeta(oldPath, newPath)
	return nil
}

// pathExists reports whether the path names an existing file or directory
// (either namespace: data blob or marker blob).
func (fs *FS) pathExists(ctx *storage.Context, path string) (bool, error) {
	if isDir, err := fs.isDir(ctx, path); err != nil {
		return false, err
	} else if isDir {
		return true, nil
	}
	k, err := fileKey(path)
	if err != nil {
		return false, err
	}
	_, err = fs.store.BlobSize(ctx, k)
	return err == nil, nil
}

// moveBlob relocates one blob. Fast path: the store's server-side rename.
// Fallback: client-side streaming copy then delete.
func (fs *FS) moveBlob(ctx *storage.Context, oldKey, newKey string) error {
	if r, ok := fs.store.(storage.BlobRenamer); ok {
		return r.RenameBlob(ctx, oldKey, newKey)
	}
	size, err := fs.store.BlobSize(ctx, oldKey)
	if err != nil {
		return err
	}
	if err := fs.store.CreateBlob(ctx, newKey); err != nil {
		return err
	}
	const chunk = 1 << 20
	buf := make([]byte, chunk)
	for off := int64(0); off < size; {
		n, err := fs.store.ReadBlob(ctx, oldKey, off, buf)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		if _, err := fs.store.WriteBlob(ctx, newKey, off, buf[:n]); err != nil {
			return err
		}
		off += int64(n)
	}
	return fs.store.DeleteBlob(ctx, oldKey)
}

// Mkdir is emulated with a marker blob. A file occupying the path blocks
// the directory: the two key namespaces are disjoint (trailing slash), so
// without this check a marker could silently coexist with a file blob —
// found by the FuzzFSOps differential fuzzer and pinned by
// TestMkdirOverFileRejected.
func (fs *FS) Mkdir(ctx *storage.Context, path string) error {
	if path == "" {
		return fmt.Errorf("mkdir %q: %w", path, storage.ErrInvalidArg)
	}
	dk, err := dirKey(path)
	if err != nil {
		return err
	}
	if dk == "" {
		return fmt.Errorf("mkdir %q: %w", path, storage.ErrExists)
	}
	if err := fs.parentExists(ctx, path); err != nil {
		return err
	}
	if fk, err := fileKey(path); err == nil {
		if _, err := fs.store.BlobSize(ctx, fk); err == nil {
			return fmt.Errorf("mkdir %q: file in the way: %w", path, storage.ErrExists)
		}
	}
	if err := fs.store.CreateBlob(ctx, dk); err != nil {
		return fmt.Errorf("mkdir %q: %w", path, storage.ErrExists)
	}
	return nil
}

// Rmdir is emulated with a scan: the directory must hold nothing but its
// own marker.
func (fs *FS) Rmdir(ctx *storage.Context, path string) error {
	dk, err := dirKey(path)
	if err != nil {
		return err
	}
	if dk == "" {
		return fmt.Errorf("rmdir root: %w", storage.ErrInvalidArg)
	}
	if _, err := fs.store.BlobSize(ctx, dk); err != nil {
		// Distinguish "a file sits there" — at the path itself or at an
		// ancestor component (POSIX ENOTDIR) — from "nothing there"
		// (ENOENT), matching posixfs's error classes.
		if fk, ferr := fileKey(path); ferr == nil {
			if _, ferr := fs.store.BlobSize(ctx, fk); ferr == nil {
				return fmt.Errorf("rmdir %q: %w", path, storage.ErrNotDirectory)
			}
		}
		return fmt.Errorf("rmdir %q: %w", path, fs.classifyMiss(ctx, path))
	}
	infos, err := fs.store.Scan(ctx, dk)
	if err != nil {
		return err
	}
	for _, info := range infos {
		if info.Key != dk {
			return fmt.Errorf("rmdir %q: %w", path, storage.ErrNotEmpty)
		}
	}
	return fs.store.DeleteBlob(ctx, dk)
}

// ReadDir is the paper's scan emulation: list every blob under the prefix
// and reduce to immediate children.
func (fs *FS) ReadDir(ctx *storage.Context, path string) ([]storage.DirEntry, error) {
	dk, err := dirKey(path)
	if err != nil {
		return nil, err
	}
	if dk != "" {
		if _, err := fs.store.BlobSize(ctx, dk); err != nil {
			// A file at the path itself or at an ancestor component is
			// ENOTDIR, not ENOENT — same taxonomy as Rmdir above.
			if fk, ferr := fileKey(path); ferr == nil {
				if _, ferr := fs.store.BlobSize(ctx, fk); ferr == nil {
					return nil, fmt.Errorf("readdir %q: %w", path, storage.ErrNotDirectory)
				}
			}
			return nil, fmt.Errorf("readdir %q: %w", path, fs.classifyMiss(ctx, path))
		}
	}
	infos, err := fs.store.Scan(ctx, dk)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []storage.DirEntry
	for _, info := range infos {
		rest := strings.TrimPrefix(info.Key, dk)
		if rest == "" {
			continue // the marker itself
		}
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			// A child directory's marker or a deeper descendant.
			name := rest[:i]
			if !seen[name] {
				seen[name] = true
				out = append(out, storage.DirEntry{Name: name, IsDir: true})
			}
			continue
		}
		if !seen[rest] {
			seen[rest] = true
			out = append(out, storage.DirEntry{Name: rest, IsDir: false})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out, nil
}

// Chmod records the mode client-side (no blob-layer permissions exist).
func (fs *FS) Chmod(ctx *storage.Context, path string, mode uint32) error {
	if _, err := fs.Stat(ctx, path); err != nil {
		return err
	}
	fs.setMode(path, mode&0o7777)
	return nil
}

// GetXattr reads a client-side extended attribute.
func (fs *FS) GetXattr(ctx *storage.Context, path, name string) (string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if m, ok := fs.xattrs[clean(path)]; ok {
		if v, ok := m[name]; ok {
			return v, nil
		}
	}
	return "", fmt.Errorf("xattr %q on %q: %w", name, path, storage.ErrNotFound)
}

// SetXattr writes a client-side extended attribute.
func (fs *FS) SetXattr(ctx *storage.Context, path, name, value string) error {
	if _, err := fs.Stat(ctx, path); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p := clean(path)
	if fs.xattrs[p] == nil {
		fs.xattrs[p] = make(map[string]string)
	}
	fs.xattrs[p][name] = value
	return nil
}

func clean(path string) string { return "/" + strings.Trim(path, "/") }

func (fs *FS) setMode(path string, mode uint32) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.modes[clean(path)] = mode
}

func (fs *FS) mode(path string) uint32 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if m, ok := fs.modes[clean(path)]; ok {
		return m
	}
	return 0o644
}

func (fs *FS) clearMeta(path string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.modes, clean(path))
	delete(fs.xattrs, clean(path))
}

// moveMeta carries the client-side mode and xattrs across a rename, the way
// an inode keeps them on a real file system.
func (fs *FS) moveMeta(oldPath, newPath string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	op, np := clean(oldPath), clean(newPath)
	if m, ok := fs.modes[op]; ok {
		fs.modes[np] = m
		delete(fs.modes, op)
	}
	if x, ok := fs.xattrs[op]; ok {
		fs.xattrs[np] = x
		delete(fs.xattrs, op)
	}
}

// handle is an open blobfs file; reads and writes map straight onto blob
// primitives.
type handle struct {
	fs   *FS
	key  string
	mu   sync.Mutex
	open bool
}

func (h *handle) ReadAt(ctx *storage.Context, off int64, p []byte) (int, error) {
	if err := h.check(); err != nil {
		return 0, err
	}
	return h.fs.store.ReadBlob(ctx, h.key, off, p)
}

func (h *handle) WriteAt(ctx *storage.Context, off int64, p []byte) (int, error) {
	if err := h.check(); err != nil {
		return 0, err
	}
	return h.fs.store.WriteBlob(ctx, h.key, off, p)
}

// Sync is a no-op: blob writes are durable (WAL) when acknowledged.
func (h *handle) Sync(ctx *storage.Context) error { return h.check() }

func (h *handle) Close(ctx *storage.Context) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.open {
		return storage.ErrClosed
	}
	h.open = false
	return nil
}

func (h *handle) check() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.open {
		return storage.ErrClosed
	}
	return nil
}
