package blobfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/storage"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: 4, Seed: 1})
	return New(blob.New(c, blob.Config{ChunkSize: 64, Replication: 2}))
}

func TestFileRoundTrip(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/data")
	h, err := fs.Create(ctx, "/data/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("legacy app payload over blobs")
	if n, err := h.WriteAt(ctx, 0, payload); err != nil || n != len(payload) {
		t.Fatalf("WriteAt = (%d, %v)", n, err)
	}
	got := make([]byte, len(payload))
	if n, err := h.ReadAt(ctx, 0, got); err != nil || n != len(payload) || !bytes.Equal(got, payload) {
		t.Fatalf("ReadAt = (%d, %v, %q)", n, err, got)
	}
	if err := h.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(ctx); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestRandomWritesSupported(t *testing.T) {
	// Unlike HDFS, the blob layer supports random writes — a key Section
	// III argument for HPC suitability.
	fs := newFS(t)
	ctx := storage.NewContext()
	h, _ := fs.Create(ctx, "/f")
	h.WriteAt(ctx, 100, []byte("tail"))
	h.WriteAt(ctx, 0, []byte("head"))
	info, _ := fs.Stat(ctx, "/f")
	if info.Size != 104 {
		t.Fatalf("size = %d, want 104", info.Size)
	}
	buf := make([]byte, 4)
	h.ReadAt(ctx, 100, buf)
	if string(buf) != "tail" {
		t.Fatalf("random write lost: %q", buf)
	}
}

func TestCreateRequiresParentDir(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	if _, err := fs.Create(ctx, "/missing/f"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("create without parent: %v", err)
	}
	// Root-level files need no marker.
	if _, err := fs.Create(ctx, "/top"); err != nil {
		t.Fatal(err)
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	h, _ := fs.Create(ctx, "/f")
	h.WriteAt(ctx, 0, []byte("old"))
	h.Close(ctx)
	h2, err := fs.Create(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close(ctx)
	if info, _ := fs.Stat(ctx, "/f"); info.Size != 0 {
		t.Fatalf("re-create kept %d bytes", info.Size)
	}
}

func TestDirectoryEmulation(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	if err := fs.Mkdir(ctx, "/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(ctx, "/a"); !errors.Is(err, storage.ErrExists) {
		t.Fatalf("duplicate mkdir: %v", err)
	}
	if err := fs.Mkdir(ctx, "/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(ctx, "/x/y"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("mkdir without parent: %v", err)
	}
	h, _ := fs.Create(ctx, "/a/f1")
	h.Close(ctx)
	h, _ = fs.Create(ctx, "/a/f2")
	h.Close(ctx)

	entries, err := fs.ReadDir(ctx, "/a")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		name  string
		isDir bool
	}{{"b", true}, {"f1", false}, {"f2", false}}
	if len(entries) != len(want) {
		t.Fatalf("ReadDir = %v", entries)
	}
	for i, w := range want {
		if entries[i].Name != w.name || entries[i].IsDir != w.isDir {
			t.Fatalf("ReadDir = %v, want %v", entries, want)
		}
	}
	// Listing only immediate children: /a/b's contents stay hidden.
	h, _ = fs.Create(ctx, "/a/b/deep")
	h.Close(ctx)
	entries, _ = fs.ReadDir(ctx, "/a")
	if len(entries) != 3 {
		t.Fatalf("deep file leaked into parent listing: %v", entries)
	}
}

func TestReadDirRoot(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/d")
	h, _ := fs.Create(ctx, "/f")
	h.Close(ctx)
	entries, err := fs.ReadDir(ctx, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != "d" || !entries[0].IsDir || entries[1].Name != "f" {
		t.Fatalf("root listing = %v", entries)
	}
}

func TestRmdirSemantics(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/d")
	h, _ := fs.Create(ctx, "/d/f")
	h.Close(ctx)
	if err := fs.Rmdir(ctx, "/d"); !errors.Is(err, storage.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	fs.Unlink(ctx, "/d/f")
	if err := fs.Rmdir(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(ctx, "/d"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("rmdir absent: %v", err)
	}
	if err := fs.Rmdir(ctx, "/"); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("rmdir root: %v", err)
	}
}

func TestStatFileAndDir(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/d")
	h, _ := fs.Create(ctx, "/d/f")
	h.WriteAt(ctx, 0, make([]byte, 42))
	h.Close(ctx)
	info, err := fs.Stat(ctx, "/d/f")
	if err != nil || info.Size != 42 || info.IsDir || info.Name != "f" {
		t.Fatalf("Stat file = (%+v, %v)", info, err)
	}
	info, err = fs.Stat(ctx, "/d")
	if err != nil || !info.IsDir {
		t.Fatalf("Stat dir = (%+v, %v)", info, err)
	}
	if _, err := fs.Stat(ctx, "/nope"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("Stat missing: %v", err)
	}
	if info, err := fs.Stat(ctx, "/"); err != nil || !info.IsDir {
		t.Fatalf("Stat root = (%+v, %v)", info, err)
	}
}

func TestUnlinkAndTruncate(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	h, _ := fs.Create(ctx, "/f")
	h.WriteAt(ctx, 0, []byte("0123456789"))
	h.Close(ctx)
	if err := fs.Truncate(ctx, "/f", 4); err != nil {
		t.Fatal(err)
	}
	if info, _ := fs.Stat(ctx, "/f"); info.Size != 4 {
		t.Fatalf("size = %d", info.Size)
	}
	if err := fs.Unlink(ctx, "/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink(ctx, "/f"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("unlink absent: %v", err)
	}
	fs.Mkdir(ctx, "/d")
	if err := fs.Unlink(ctx, "/d"); !errors.Is(err, storage.ErrIsDirectory) {
		t.Fatalf("unlink dir: %v", err)
	}
}

func TestRenameFile(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/out")
	h, _ := fs.Create(ctx, "/out/tmp")
	h.WriteAt(ctx, 0, []byte("committed"))
	h.Close(ctx)
	if err := fs.Rename(ctx, "/out/tmp", "/out/final"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(ctx, "/out/tmp"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatal("source survived rename")
	}
	h2, err := fs.Open(ctx, "/out/final")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	if n, _ := h2.ReadAt(ctx, 0, buf); string(buf[:n]) != "committed" {
		t.Fatalf("renamed content = %q", buf[:n])
	}
	if err := fs.Rename(ctx, "/missing", "/x"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("rename missing: %v", err)
	}
}

func TestRenameDirectorySubtree(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/src")
	fs.Mkdir(ctx, "/src/sub")
	h, _ := fs.Create(ctx, "/src/a")
	h.WriteAt(ctx, 0, []byte("A"))
	h.Close(ctx)
	h, _ = fs.Create(ctx, "/src/sub/b")
	h.WriteAt(ctx, 0, []byte("B"))
	h.Close(ctx)
	if err := fs.Rename(ctx, "/src", "/dst"); err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]string{"/dst/a": "A", "/dst/sub/b": "B"} {
		h, err := fs.Open(ctx, path)
		if err != nil {
			t.Fatalf("open %s after dir rename: %v", path, err)
		}
		buf := make([]byte, 1)
		h.ReadAt(ctx, 0, buf)
		if string(buf) != want {
			t.Fatalf("%s = %q", path, buf)
		}
	}
	if _, err := fs.Stat(ctx, "/src"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatal("source dir survived rename")
	}
}

func TestClientSideMetadata(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	h, _ := fs.Create(ctx, "/f")
	h.Close(ctx)
	if err := fs.Chmod(ctx, "/f", 0o600); err != nil {
		t.Fatal(err)
	}
	if info, _ := fs.Stat(ctx, "/f"); info.Mode != 0o600 {
		t.Fatalf("mode = %o", info.Mode)
	}
	if err := fs.SetXattr(ctx, "/f", "user.k", "v"); err != nil {
		t.Fatal(err)
	}
	if v, err := fs.GetXattr(ctx, "/f", "user.k"); err != nil || v != "v" {
		t.Fatalf("GetXattr = (%q, %v)", v, err)
	}
	if _, err := fs.GetXattr(ctx, "/f", "user.none"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("absent xattr: %v", err)
	}
	if err := fs.Chmod(ctx, "/missing", 0o600); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("chmod missing: %v", err)
	}
}

func TestInvalidPaths(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	for _, p := range []string{"", "/", "/a//b", "/a/../b"} {
		if _, err := fs.Create(ctx, p); !errors.Is(err, storage.ErrInvalidArg) {
			t.Fatalf("create %q: %v", p, err)
		}
	}
}

func TestManyFilesScanScales(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/dir")
	for i := 0; i < 50; i++ {
		h, err := fs.Create(ctx, fmt.Sprintf("/dir/file-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		h.Close(ctx)
	}
	entries, err := fs.ReadDir(ctx, "/dir")
	if err != nil || len(entries) != 50 {
		t.Fatalf("ReadDir = (%d entries, %v)", len(entries), err)
	}
	// Sorted order check.
	if entries[0].Name != "file-000" || entries[49].Name != "file-049" {
		t.Fatalf("ordering broken: first=%s last=%s", entries[0].Name, entries[49].Name)
	}
}
