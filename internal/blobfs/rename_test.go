package blobfs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/storage"
)

// The tests in this file pin behaviour found or rewired by the front-end
// conformance PR: the server-side rename fast path (storage.BlobRenamer)
// and the error-class fixes flushed out by fstest.FuzzFSOps.

// TestRenameMultiChunkFile pins byte-for-byte survival of a file spanning
// many chunks across Rename, now routed through blob.RenameBlob instead of
// the client-side copy loop.
func TestRenameMultiChunkFile(t *testing.T) {
	fs := newFS(t) // 64-byte chunks
	ctx := storage.NewContext()
	if err := fs.Mkdir(ctx, "/a"); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64*5+17)
	for i := range data {
		data[i] = byte(i*31 + 3)
	}
	h, err := fs.Create(ctx, "/a/big")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetXattr(ctx, "/a/big", "user.origin", "hpc"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(ctx, "/a/big", "/a/moved"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if _, err := fs.Stat(ctx, "/a/big"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("source survived rename: %v", err)
	}
	fi, err := fs.Stat(ctx, "/a/moved")
	if err != nil || fi.Size != int64(len(data)) {
		t.Fatalf("stat moved = (%+v, %v)", fi, err)
	}
	h2, err := fs.Open(ctx, "/a/moved")
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close(ctx)
	got := make([]byte, len(data))
	if n, err := h2.ReadAt(ctx, 0, got); err != nil || n != len(data) {
		t.Fatalf("read moved = (%d, %v)", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("moved bytes differ from written bytes")
	}
	// Client-side metadata rides along.
	if v, err := fs.GetXattr(ctx, "/a/moved", "user.origin"); err != nil || v != "hpc" {
		t.Fatalf("xattr after rename = (%q, %v)", v, err)
	}
}

// TestRenameSparseFile pins hole preservation through Rename: the old copy
// loop read zero-filled spans and wrote them back densely; the fast path
// must keep the holes.
func TestRenameSparseFile(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	h, err := fs.Create(ctx, "/sparse")
	if err != nil {
		t.Fatal(err)
	}
	const tailOff = 64 * 9
	if _, err := h.WriteAt(ctx, 0, []byte("head")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(ctx, tailOff, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(ctx, "/sparse", "/dense-not"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	fi, err := fs.Stat(ctx, "/dense-not")
	if err != nil || fi.Size != tailOff+4 {
		t.Fatalf("stat = (%+v, %v)", fi, err)
	}
	h2, err := fs.Open(ctx, "/dense-not")
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close(ctx)
	got := make([]byte, tailOff+4)
	if n, err := h2.ReadAt(ctx, 0, got); err != nil || n != len(got) {
		t.Fatalf("read = (%d, %v)", n, err)
	}
	want := make([]byte, tailOff+4)
	copy(want, "head")
	copy(want[tailOff:], "tail")
	if !bytes.Equal(got, want) {
		t.Fatal("sparse content mangled by rename")
	}
}

// TestRenameFallbackWithoutBlobRenamer pins the copy-then-delete fallback
// for stores that do not implement storage.BlobRenamer: same observable
// result, bytes moved through the client.
func TestRenameFallbackWithoutBlobRenamer(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 4, Seed: 1})
	inner := blob.New(c, blob.Config{ChunkSize: 64, Replication: 2})
	fs := New(plainStore{inner})
	ctx := storage.NewContext()
	data := make([]byte, 64*3+9)
	for i := range data {
		data[i] = byte(i * 7)
	}
	h, err := fs.Create(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	h.Close(ctx)
	if err := fs.Rename(ctx, "/f", "/g"); err != nil {
		t.Fatalf("fallback rename: %v", err)
	}
	h2, err := fs.Open(ctx, "/g")
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close(ctx)
	got := make([]byte, len(data))
	if n, err := h2.ReadAt(ctx, 0, got); err != nil || n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("fallback read = (%d, %v)", n, err)
	}
}

// plainStore hides blob.Store's BlobRenamer (and ChunkSizer) so the
// fallback path stays exercised.
type plainStore struct {
	inner *blob.Store
}

func (p plainStore) CreateBlob(ctx *storage.Context, key string) error {
	return p.inner.CreateBlob(ctx, key)
}
func (p plainStore) DeleteBlob(ctx *storage.Context, key string) error {
	return p.inner.DeleteBlob(ctx, key)
}
func (p plainStore) WriteBlob(ctx *storage.Context, key string, off int64, data []byte) (int, error) {
	return p.inner.WriteBlob(ctx, key, off, data)
}
func (p plainStore) ReadBlob(ctx *storage.Context, key string, off int64, out []byte) (int, error) {
	return p.inner.ReadBlob(ctx, key, off, out)
}
func (p plainStore) BlobSize(ctx *storage.Context, key string) (int64, error) {
	return p.inner.BlobSize(ctx, key)
}
func (p plainStore) TruncateBlob(ctx *storage.Context, key string, size int64) error {
	return p.inner.TruncateBlob(ctx, key, size)
}
func (p plainStore) Scan(ctx *storage.Context, prefix string) ([]storage.BlobInfo, error) {
	return p.inner.Scan(ctx, prefix)
}

// TestMkdirOverFileRejected pins the FuzzFSOps find: a directory marker
// must not be created where a file already lives.
func TestMkdirOverFileRejected(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	h, err := fs.Create(ctx, "/occupied")
	if err != nil {
		t.Fatal(err)
	}
	h.Close(ctx)
	if err := fs.Mkdir(ctx, "/occupied"); !errors.Is(err, storage.ErrExists) {
		t.Fatalf("mkdir over file: %v", err)
	}
	// The file is untouched and still a file.
	fi, err := fs.Stat(ctx, "/occupied")
	if err != nil || fi.IsDir {
		t.Fatalf("stat after rejected mkdir = (%+v, %v)", fi, err)
	}
}

// TestRenameOntoExistingRejected pins the non-replacing rename contract,
// including the FuzzFSOps find that a file could previously be renamed on
// top of an existing directory.
func TestRenameOntoExistingRejected(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/dir")
	h, _ := fs.Create(ctx, "/f")
	h.Close(ctx)
	h, _ = fs.Create(ctx, "/g")
	h.Close(ctx)

	if err := fs.Rename(ctx, "/f", "/g"); !errors.Is(err, storage.ErrExists) {
		t.Fatalf("rename onto file: %v", err)
	}
	if err := fs.Rename(ctx, "/f", "/dir"); !errors.Is(err, storage.ErrExists) {
		t.Fatalf("rename onto directory: %v", err)
	}
	if err := fs.Rename(ctx, "/f", "/missing/parent"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("rename into missing parent: %v", err)
	}
	if err := fs.Rename(ctx, "/dir", "/dir/inside"); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("rename dir into own subtree: %v", err)
	}
	for _, p := range []string{"/f", "/g", "/dir"} {
		if _, err := fs.Stat(ctx, p); err != nil {
			t.Fatalf("%s damaged by rejected rename: %v", p, err)
		}
	}
}

// TestErrorClassesMatchPOSIX pins the remaining FuzzFSOps error-taxonomy
// finds: truncate of a directory and rmdir of a file must return the same
// sentinel classes posixfs does.
func TestErrorClassesMatchPOSIX(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/d")
	h, _ := fs.Create(ctx, "/f")
	h.Close(ctx)

	if err := fs.Truncate(ctx, "/d", 0); !errors.Is(err, storage.ErrIsDirectory) {
		t.Fatalf("truncate dir: %v", err)
	}
	if err := fs.Rmdir(ctx, "/f"); !errors.Is(err, storage.ErrNotDirectory) {
		t.Fatalf("rmdir file: %v", err)
	}
	if err := fs.Rmdir(ctx, "/nope"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("rmdir missing: %v", err)
	}
}

// TestFileAncestorIsNotDirectory pins the FuzzFSOps find from corpus input
// 8a2bf18e51115f46: after a directory is removed and a FILE created at the
// same path, every lookup under it must fail with ErrNotDirectory (POSIX
// ENOTDIR — resolution died at a file component), not ErrNotFound. posixfs
// discovers this in its component walk; blobfs's flat namespace has to
// reconstruct it via classifyMiss.
func TestFileAncestorIsNotDirectory(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/d")
	if err := fs.Rmdir(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	h, err := fs.Create(ctx, "/d")
	if err != nil {
		t.Fatal(err)
	}
	h.Close(ctx)

	if _, err := fs.Stat(ctx, "/d/x"); !errors.Is(err, storage.ErrNotDirectory) {
		t.Fatalf("stat under file: %v", err)
	}
	if _, err := fs.Open(ctx, "/d/x"); !errors.Is(err, storage.ErrNotDirectory) {
		t.Fatalf("open under file: %v", err)
	}
	if _, err := fs.Create(ctx, "/d/x"); !errors.Is(err, storage.ErrNotDirectory) {
		t.Fatalf("create under file: %v", err)
	}
	if err := fs.Unlink(ctx, "/d/x"); !errors.Is(err, storage.ErrNotDirectory) {
		t.Fatalf("unlink under file: %v", err)
	}
	if err := fs.Truncate(ctx, "/d/x", 0); !errors.Is(err, storage.ErrNotDirectory) {
		t.Fatalf("truncate under file: %v", err)
	}
	if err := fs.Mkdir(ctx, "/d/x"); !errors.Is(err, storage.ErrNotDirectory) {
		t.Fatalf("mkdir under file: %v", err)
	}
	if err := fs.Rmdir(ctx, "/d/x"); !errors.Is(err, storage.ErrNotDirectory) {
		t.Fatalf("rmdir under file: %v", err)
	}
	if _, err := fs.ReadDir(ctx, "/d/x"); !errors.Is(err, storage.ErrNotDirectory) {
		t.Fatalf("readdir under file: %v", err)
	}
	if _, err := fs.ReadDir(ctx, "/d"); !errors.Is(err, storage.ErrNotDirectory) {
		t.Fatalf("readdir of file: %v", err)
	}
	if err := fs.Rename(ctx, "/d/x", "/y"); !errors.Is(err, storage.ErrNotDirectory) {
		t.Fatalf("rename from under file: %v", err)
	}
	if h, err := fs.Create(ctx, "/src"); err != nil {
		t.Fatal(err)
	} else {
		h.Close(ctx)
	}
	if err := fs.Rename(ctx, "/src", "/d/x"); !errors.Is(err, storage.ErrNotDirectory) {
		t.Fatalf("rename to under file: %v", err)
	}
	// A genuinely absent path stays ENOENT.
	if _, err := fs.Stat(ctx, "/nope/x"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("stat under missing dir: %v", err)
	}
}
