// Package relaxedfs implements the HDFS-like distributed file system Spark
// runs on in the paper's Section IV traces: a hierarchical namespace on a
// namenode, block-replicated data on datanodes, and the GFS/HDFS semantic
// trade-offs the paper's related-work section describes —
//
//   - write-once / read-many: writes are appends; random updates return
//     ErrUnsupported (the storage model big-data applications are built
//     around);
//   - single-writer leases: one writer per file at a time;
//   - relaxed visibility: appended data becomes readable only after
//     Sync (hflush) or Close, never immediately;
//   - directory operations and permissions exist (HDFS keeps them), which
//     is exactly why Table II can observe Spark's mkdir/rmdir/opendir
//     traffic.
//
// Rename moves whole subtrees atomically, which the Spark output committer
// (internal/sparksim) depends on.
package relaxedfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/storage"
)

// Config sizes the file system.
type Config struct {
	// Namenode is the node hosting the namespace. Defaults to node 0.
	Namenode cluster.NodeID
	// BlockSize is the block granularity. Defaults to 8 MiB (scaled-down
	// HDFS 128 MiB, matching the repository's 1:1024 scale-down of Table I
	// volumes... at ratio 1:16 for blocks so files still span blocks).
	BlockSize int
	// Replication is the number of copies of each block. Defaults to 3,
	// clamped to the number of datanodes.
	Replication int
}

// FS is a simulated HDFS-like file system. It implements storage.FileSystem.
type FS struct {
	cfg       Config
	cluster   *cluster.Cluster
	datanodes []cluster.NodeID

	mu      sync.RWMutex
	root    *inode
	nextIno uint64
}

type inode struct {
	ino   uint64
	mu    sync.RWMutex
	isDir bool
	mode  uint32
	uid   int
	gid   int

	children map[string]*inode

	// data is the *visible* file content: bytes made durable by Sync/Close.
	data []byte
	// leased marks an active single writer.
	leased  bool
	blockAt int // first datanode for round-robin block placement
	xattrs  map[string]string
}

// New builds a relaxedfs over the cluster. All nodes except the namenode
// act as datanodes; a single-node cluster doubles up.
func New(c *cluster.Cluster, cfg Config) *FS {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 8 << 20
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 3
	}
	fs := &FS{cfg: cfg, cluster: c}
	for _, n := range c.Nodes() {
		if n.ID != cfg.Namenode {
			fs.datanodes = append(fs.datanodes, n.ID)
		}
	}
	if len(fs.datanodes) == 0 {
		fs.datanodes = []cluster.NodeID{cfg.Namenode}
	}
	if fs.cfg.Replication > len(fs.datanodes) {
		fs.cfg.Replication = len(fs.datanodes)
	}
	fs.root = &inode{ino: 1, isDir: true, mode: 0o755, children: make(map[string]*inode)}
	fs.nextIno = 2
	return fs
}

// Config returns the effective configuration.
func (fs *FS) Config() Config { return fs.cfg }

func splitPath(path string) ([]string, error) {
	if path == "" {
		return nil, fmt.Errorf("empty path: %w", storage.ErrInvalidArg)
	}
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		switch p {
		case "", ".":
			continue
		case "..":
			return nil, fmt.Errorf("path %q: parent references not supported: %w", path, storage.ErrInvalidArg)
		default:
			out = append(out, p)
		}
	}
	return out, nil
}

// resolve walks the namespace. HDFS resolves the whole path in one namenode
// operation (the namespace is in namenode memory), so unlike posixfs the
// charge is a single metadata RPC regardless of depth — hierarchy is
// cheaper here, but still a central-server round trip.
func (fs *FS) resolve(ctx *storage.Context, path string) (*inode, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	return fs.walk(ctx, parts)
}

func (fs *FS) walk(ctx *storage.Context, parts []string) (*inode, error) {
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.Namenode, 1)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	cur := fs.root
	for _, comp := range parts {
		if !cur.isDir {
			return nil, fmt.Errorf("component %q: %w", comp, storage.ErrNotDirectory)
		}
		child, ok := cur.children[comp]
		if !ok {
			return nil, fmt.Errorf("component %q: %w", comp, storage.ErrNotFound)
		}
		cur = child
	}
	return cur, nil
}

func (fs *FS) resolveParent(ctx *storage.Context, path string) (*inode, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", fmt.Errorf("path %q has no final component: %w", path, storage.ErrInvalidArg)
	}
	dir, err := fs.walk(ctx, parts[:len(parts)-1])
	if err != nil {
		return nil, "", err
	}
	if !dir.isDir {
		return nil, "", fmt.Errorf("parent of %q: %w", path, storage.ErrNotDirectory)
	}
	return dir, parts[len(parts)-1], nil
}

// Mkdir creates a directory (parents must exist, as with HDFS mkdir; Spark
// calls mkdirs level by level, which sparksim reproduces).
func (fs *FS) Mkdir(ctx *storage.Context, path string) error {
	dir, name, err := fs.resolveParent(ctx, path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, exists := dir.children[name]; exists {
		return fmt.Errorf("mkdir %q: %w", path, storage.ErrExists)
	}
	dir.children[name] = &inode{
		ino: fs.nextIno, isDir: true, mode: 0o755,
		uid: ctx.UID, gid: ctx.GID,
		children: make(map[string]*inode),
	}
	fs.nextIno++
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.Namenode, 1)
	return nil
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(ctx *storage.Context, path string) error {
	dir, name, err := fs.resolveParent(ctx, path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	child, ok := dir.children[name]
	if !ok {
		return fmt.Errorf("rmdir %q: %w", path, storage.ErrNotFound)
	}
	if !child.isDir {
		return fmt.Errorf("rmdir %q: %w", path, storage.ErrNotDirectory)
	}
	if len(child.children) > 0 {
		return fmt.Errorf("rmdir %q: %w", path, storage.ErrNotEmpty)
	}
	delete(dir.children, name)
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.Namenode, 1)
	return nil
}

// ReadDir lists a directory in name order.
func (fs *FS) ReadDir(ctx *storage.Context, path string) ([]storage.DirEntry, error) {
	n, err := fs.resolve(ctx, path)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if !n.isDir {
		return nil, fmt.Errorf("readdir %q: %w", path, storage.ErrNotDirectory)
	}
	out := make([]storage.DirEntry, 0, len(n.children))
	for name, c := range n.children {
		out = append(out, storage.DirEntry{Name: name, IsDir: c.isDir})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.Namenode, 1)
	return out, nil
}

// Stat returns metadata for a path.
func (fs *FS) Stat(ctx *storage.Context, path string) (storage.FileInfo, error) {
	n, err := fs.resolve(ctx, path)
	if err != nil {
		return storage.FileInfo{}, err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	parts, _ := splitPath(path)
	name := ""
	if len(parts) > 0 {
		name = parts[len(parts)-1]
	}
	return storage.FileInfo{Name: name, Size: int64(len(n.data)), Mode: n.mode, IsDir: n.isDir}, nil
}

// Truncate is limited in HDFS; the traced applications never shrink files,
// only the degenerate truncate-to-zero via re-create. Arbitrary truncation
// is unsupported, which the blob-mapping analysis records.
func (fs *FS) Truncate(ctx *storage.Context, path string, size int64) error {
	if size != 0 {
		return fmt.Errorf("truncate %q to %d: %w", path, size, storage.ErrUnsupported)
	}
	n, err := fs.resolve(ctx, path)
	if err != nil {
		return err
	}
	if n.isDir {
		return fmt.Errorf("truncate %q: %w", path, storage.ErrIsDirectory)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.data = nil
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.Namenode, 1)
	return nil
}

// Chmod updates permissions (kept by HDFS for convenience).
func (fs *FS) Chmod(ctx *storage.Context, path string, mode uint32) error {
	n, err := fs.resolve(ctx, path)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.mode = mode & 0o7777
	n.mu.Unlock()
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.Namenode, 1)
	return nil
}

// GetXattr reads an extended attribute.
func (fs *FS) GetXattr(ctx *storage.Context, path, name string) (string, error) {
	n, err := fs.resolve(ctx, path)
	if err != nil {
		return "", err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	v, ok := n.xattrs[name]
	if !ok {
		return "", fmt.Errorf("xattr %q on %q: %w", name, path, storage.ErrNotFound)
	}
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.Namenode, 1)
	return v, nil
}

// SetXattr writes an extended attribute.
func (fs *FS) SetXattr(ctx *storage.Context, path, name, value string) error {
	n, err := fs.resolve(ctx, path)
	if err != nil {
		return err
	}
	n.mu.Lock()
	if n.xattrs == nil {
		n.xattrs = make(map[string]string)
	}
	n.xattrs[name] = value
	n.mu.Unlock()
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.Namenode, 1)
	return nil
}

// Unlink removes a file.
func (fs *FS) Unlink(ctx *storage.Context, path string) error {
	dir, name, err := fs.resolveParent(ctx, path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	child, ok := dir.children[name]
	if !ok {
		return fmt.Errorf("unlink %q: %w", path, storage.ErrNotFound)
	}
	if child.isDir {
		return fmt.Errorf("unlink %q: %w", path, storage.ErrIsDirectory)
	}
	delete(dir.children, name)
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.Namenode, 1)
	return nil
}

// Rename moves a file or directory subtree atomically (the HDFS primitive
// Spark's output committer is built on).
func (fs *FS) Rename(ctx *storage.Context, oldPath, newPath string) error {
	oldDir, oldName, err := fs.resolveParent(ctx, oldPath)
	if err != nil {
		return err
	}
	newDir, newName, err := fs.resolveParent(ctx, newPath)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	child, ok := oldDir.children[oldName]
	if !ok {
		return fmt.Errorf("rename %q: %w", oldPath, storage.ErrNotFound)
	}
	if _, exists := newDir.children[newName]; exists {
		return fmt.Errorf("rename to %q: %w", newPath, storage.ErrExists)
	}
	delete(oldDir.children, oldName)
	newDir.children[newName] = child
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.Namenode, 1)
	return nil
}
