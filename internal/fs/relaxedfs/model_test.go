package relaxedfs

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/storage"
)

// The write-once reference model: files are append-only byte slices with
// a visible prefix (flushed) and a pending tail per open writer.
type waModel struct {
	visible map[string][]byte
	pending map[string][]byte
}

// waOp is one random append/sync/close/read action on a bounded file set.
type waOp struct {
	Kind uint8
	File uint8
	Data []byte
}

// TestRelaxedFSMatchesAppendModel drives random append/flush sequences and
// checks visibility semantics against the model: readers see exactly the
// flushed prefix.
func TestRelaxedFSMatchesAppendModel(t *testing.T) {
	files := []string{"/a", "/b", "/c"}
	f := func(ops []waOp) bool {
		fs := New(cluster.New(cluster.Config{Nodes: 4, Seed: 1}), Config{})
		ctx := storage.NewContext()
		model := &waModel{visible: map[string][]byte{}, pending: map[string][]byte{}}
		writers := map[string]storage.Handle{}

		for _, o := range ops {
			path := files[int(o.File)%len(files)]
			data := o.Data
			if len(data) > 64 {
				data = data[:64]
			}
			switch o.Kind % 4 {
			case 0: // open writer (create) if not already writing
				if _, open := writers[path]; open {
					continue
				}
				h, err := fs.Create(ctx, path)
				if err != nil {
					return false
				}
				writers[path] = h
				model.visible[path] = nil // create truncates
				model.pending[path] = nil
			case 1: // append
				h, open := writers[path]
				if !open {
					continue
				}
				end := int64(len(model.visible[path]) + len(model.pending[path]))
				if _, err := h.WriteAt(ctx, end, data); err != nil {
					return false
				}
				model.pending[path] = append(model.pending[path], data...)
			case 2: // sync (publish)
				h, open := writers[path]
				if !open {
					continue
				}
				if err := h.Sync(ctx); err != nil {
					return false
				}
				model.visible[path] = append(model.visible[path], model.pending[path]...)
				model.pending[path] = nil
			case 3: // close (publish + release)
				h, open := writers[path]
				if !open {
					continue
				}
				if err := h.Close(ctx); err != nil {
					return false
				}
				delete(writers, path)
				model.visible[path] = append(model.visible[path], model.pending[path]...)
				model.pending[path] = nil
			}

			// Invariant after every op: a fresh reader sees exactly the
			// visible prefix of every created file.
			for p, want := range model.visible {
				r, err := fs.Open(ctx, p)
				if err != nil {
					return false
				}
				got := make([]byte, len(want)+32)
				n, err := r.ReadAt(ctx, 0, got)
				r.Close(ctx)
				if err != nil || n != len(want) || !bytes.Equal(got[:n], want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Sizes reported by Stat must equal the visible length, never including
// pending bytes.
func TestStatReportsVisibleLength(t *testing.T) {
	fs := New(cluster.New(cluster.Config{Nodes: 4, Seed: 1}), Config{})
	ctx := storage.NewContext()
	h, err := fs.Create(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	h.WriteAt(ctx, 0, make([]byte, 100))
	if info, _ := fs.Stat(ctx, "/f"); info.Size != 0 {
		t.Fatalf("pending bytes visible in Stat: %d", info.Size)
	}
	h.Sync(ctx)
	if info, _ := fs.Stat(ctx, "/f"); info.Size != 100 {
		t.Fatalf("size after sync = %d", info.Size)
	}
	h.WriteAt(ctx, 100, make([]byte, 50))
	h.Close(ctx)
	if info, _ := fs.Stat(ctx, "/f"); info.Size != 150 {
		t.Fatalf("size after close = %d", info.Size)
	}
}

// A reopened (overwritten) file under churn keeps lease exclusion intact.
func TestLeaseChurn(t *testing.T) {
	fs := New(cluster.New(cluster.Config{Nodes: 4, Seed: 1}), Config{})
	ctx := storage.NewContext()
	for round := 0; round < 10; round++ {
		h, err := fs.Create(ctx, "/churn")
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if _, err := fs.Create(ctx, "/churn"); err == nil {
			t.Fatalf("round %d: double lease", round)
		}
		payload := []byte(fmt.Sprintf("round-%d", round))
		if _, err := h.WriteAt(ctx, 0, payload); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(ctx); err != nil {
			t.Fatal(err)
		}
		r, _ := fs.Open(ctx, "/churn")
		buf := make([]byte, 16)
		n, _ := r.ReadAt(ctx, 0, buf)
		r.Close(ctx)
		if string(buf[:n]) != fmt.Sprintf("round-%d", round) {
			t.Fatalf("round %d content = %q", round, buf[:n])
		}
	}
}
