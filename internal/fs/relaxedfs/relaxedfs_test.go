package relaxedfs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	return New(cluster.New(cluster.Config{Nodes: 5, Seed: 1}), Config{})
}

func write(t *testing.T, fs *FS, ctx *storage.Context, path string, data []byte) {
	t.Helper()
	h, err := fs.Create(ctx, path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := h.WriteAt(ctx, 0, data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := h.Close(ctx); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func TestWriteOnceRoundTrip(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/data")
	payload := []byte("hdfs-style write once read many")
	write(t, fs, ctx, "/data/part-00000", payload)

	h, err := fs.Open(ctx, "/data/part-00000")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	n, err := h.ReadAt(ctx, 0, got)
	if err != nil || n != len(payload) || !bytes.Equal(got, payload) {
		t.Fatalf("ReadAt = (%d, %v, %q)", n, err, got)
	}
}

func TestRandomWritesRejected(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	h, _ := fs.Create(ctx, "/f")
	h.WriteAt(ctx, 0, []byte("0123456789"))
	if _, err := h.WriteAt(ctx, 2, []byte("xx")); !errors.Is(err, storage.ErrUnsupported) {
		t.Fatalf("random write: %v", err)
	}
	// Append at the exact end is allowed.
	if _, err := h.WriteAt(ctx, 10, []byte("more")); err != nil {
		t.Fatalf("append: %v", err)
	}
}

func TestReadOnlyOpenHandles(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	write(t, fs, ctx, "/f", []byte("abc"))
	h, _ := fs.Open(ctx, "/f")
	if _, err := h.WriteAt(ctx, 3, []byte("x")); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("write on read handle: %v", err)
	}
}

// Relaxed visibility: un-flushed appends are invisible to readers until
// Sync or Close — the MPI-IO-like semantics the paper contrasts with POSIX.
func TestDeferredVisibility(t *testing.T) {
	fs := newFS(t)
	wctx := storage.NewContext()
	w, _ := fs.Create(wctx, "/log")
	w.WriteAt(wctx, 0, []byte("pending"))

	rctx := storage.NewContext()
	r, _ := fs.Open(rctx, "/log")
	buf := make([]byte, 16)
	if n, _ := r.ReadAt(rctx, 0, buf); n != 0 {
		t.Fatalf("unflushed data visible: read %d bytes", n)
	}
	if err := w.Sync(wctx); err != nil {
		t.Fatal(err)
	}
	if n, _ := r.ReadAt(rctx, 0, buf); n != 7 || string(buf[:n]) != "pending" {
		t.Fatalf("after hflush: read (%d, %q)", n, buf[:n])
	}
	w.WriteAt(wctx, 7, []byte("+tail"))
	w.Close(wctx)
	if n, _ := r.ReadAt(rctx, 7, buf); n != 5 || string(buf[:n]) != "+tail" {
		t.Fatalf("after close: read (%d, %q)", n, buf[:n])
	}
}

func TestSingleWriterLease(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	w, _ := fs.Create(ctx, "/f")
	if _, err := fs.Create(ctx, "/f"); !errors.Is(err, storage.ErrExists) {
		t.Fatalf("second writer while leased: %v", err)
	}
	w.Close(ctx)
	// Lease released: re-create (overwrite) succeeds and empties the file.
	w2, err := fs.Create(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close(ctx)
	if info, _ := fs.Stat(ctx, "/f"); info.Size != 0 {
		t.Fatalf("overwrite create kept %d bytes", info.Size)
	}
}

func TestMkdirRmdirReaddir(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	if err := fs.Mkdir(ctx, "/user"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(ctx, "/user/spark"); err != nil {
		t.Fatal(err)
	}
	write(t, fs, ctx, "/user/spark/app.jar", []byte("jarbytes"))
	entries, err := fs.ReadDir(ctx, "/user/spark")
	if err != nil || len(entries) != 1 || entries[0].Name != "app.jar" || entries[0].IsDir {
		t.Fatalf("ReadDir = (%v, %v)", entries, err)
	}
	if err := fs.Rmdir(ctx, "/user/spark"); !errors.Is(err, storage.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	fs.Unlink(ctx, "/user/spark/app.jar")
	if err := fs.Rmdir(ctx, "/user/spark"); err != nil {
		t.Fatal(err)
	}
}

func TestRenameMovesSubtree(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/out")
	fs.Mkdir(ctx, "/out/_temporary")
	write(t, fs, ctx, "/out/_temporary/part-0", []byte("result"))
	if err := fs.Rename(ctx, "/out/_temporary/part-0", "/out/part-0"); err != nil {
		t.Fatal(err)
	}
	h, err := fs.Open(ctx, "/out/part-0")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if n, _ := h.ReadAt(ctx, 0, buf); string(buf[:n]) != "result" {
		t.Fatalf("renamed content = %q", buf[:n])
	}
	// Directory rename carries children.
	fs.Mkdir(ctx, "/dir")
	write(t, fs, ctx, "/dir/x", []byte("1"))
	if err := fs.Rename(ctx, "/dir", "/dir2"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(ctx, "/dir2/x"); err != nil {
		t.Fatalf("child lost in dir rename: %v", err)
	}
}

func TestTruncateOnlyToZero(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	write(t, fs, ctx, "/f", []byte("data"))
	if err := fs.Truncate(ctx, "/f", 2); !errors.Is(err, storage.ErrUnsupported) {
		t.Fatalf("partial truncate: %v", err)
	}
	if err := fs.Truncate(ctx, "/f", 0); err != nil {
		t.Fatal(err)
	}
	if info, _ := fs.Stat(ctx, "/f"); info.Size != 0 {
		t.Fatalf("size after truncate = %d", info.Size)
	}
	// FuzzFSOps find: truncate-to-zero of a directory silently succeeded
	// (clearing nothing); POSIX error class is ErrIsDirectory.
	if err := fs.Mkdir(ctx, "/dir"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(ctx, "/dir", 0); !errors.Is(err, storage.ErrIsDirectory) {
		t.Fatalf("truncate dir: %v", err)
	}
}

func TestXattrAndChmod(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	write(t, fs, ctx, "/f", nil)
	if err := fs.SetXattr(ctx, "/f", "user.k", "v"); err != nil {
		t.Fatal(err)
	}
	if v, err := fs.GetXattr(ctx, "/f", "user.k"); err != nil || v != "v" {
		t.Fatalf("GetXattr = (%q, %v)", v, err)
	}
	if err := fs.Chmod(ctx, "/f", 0o600); err != nil {
		t.Fatal(err)
	}
	if info, _ := fs.Stat(ctx, "/f"); info.Mode != 0o600 {
		t.Fatalf("mode = %o", info.Mode)
	}
}

func TestErrorsOnMissingPaths(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	if _, err := fs.Open(ctx, "/nope"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("open: %v", err)
	}
	if _, err := fs.ReadDir(ctx, "/nope"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("readdir: %v", err)
	}
	if err := fs.Unlink(ctx, "/nope"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("unlink: %v", err)
	}
	if err := fs.Rename(ctx, "/nope", "/x"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("rename: %v", err)
	}
	if _, err := fs.Stat(ctx, "/nope"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("stat: %v", err)
	}
}

func TestResolutionFlatCostVsDepth(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 5, Seed: 1})
	fs := New(c, Config{})
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/a")
	fs.Mkdir(ctx, "/a/b")
	fs.Mkdir(ctx, "/a/b/c")
	write(t, fs, ctx, "/a/b/c/leaf", nil)

	c.ResetStats() // drain queues so each stat sees an idle namenode
	shallow := storage.NewContext()
	fs.Stat(shallow, "/a")
	c.ResetStats()
	deep := storage.NewContext()
	fs.Stat(deep, "/a/b/c/leaf")
	// HDFS resolves in-memory in one namenode op: depth must NOT change the
	// charged cost (contrast with posixfs).
	if shallow.Clock.Now() != deep.Clock.Now() {
		t.Fatalf("namenode resolution should be depth-independent: %v vs %v",
			shallow.Clock.Now(), deep.Clock.Now())
	}
}

func TestWriteCostIncludesReplication(t *testing.T) {
	run := func(rep int) int64 {
		fs := New(cluster.New(cluster.Config{Nodes: 5, Seed: 1}), Config{Replication: rep})
		ctx := storage.NewContext()
		h, _ := fs.Create(ctx, "/f")
		start := ctx.Clock.Now()
		h.WriteAt(ctx, 0, make([]byte, 1<<20))
		h.Close(ctx)
		return int64(ctx.Clock.Now() - start)
	}
	if r1, r3 := run(1), run(3); r3 <= r1 {
		t.Fatalf("replication 3 (%d) not costlier than 1 (%d)", r3, r1)
	}
}

func TestSingleNodeCluster(t *testing.T) {
	fs := New(cluster.New(cluster.Config{Nodes: 1}), Config{})
	ctx := storage.NewContext()
	write(t, fs, ctx, "/f", []byte("solo"))
	h, _ := fs.Open(ctx, "/f")
	buf := make([]byte, 4)
	if n, _ := h.ReadAt(ctx, 0, buf); string(buf[:n]) != "solo" {
		t.Fatalf("read = %q", buf[:n])
	}
}
