package relaxedfs

import (
	"fmt"
	"sync"

	"repro/internal/storage"
)

// handle is an open relaxedfs file. A writer handle owns the file's lease;
// its appends accumulate in a private buffer that becomes visible on Sync
// (hflush) or Close. Reader handles see only visible data.
type handle struct {
	fs       *FS
	node     *inode
	path     string
	mu       sync.Mutex
	open     bool
	writable bool
	// pending holds appended-but-not-flushed bytes (writer handles only).
	pending []byte
}

// Create makes a new file and opens it for writing, acquiring the
// single-writer lease. Creating over an existing file replaces it (HDFS
// create with overwrite), unless another writer holds its lease.
func (fs *FS) Create(ctx *storage.Context, path string) (storage.Handle, error) {
	dir, name, err := fs.resolveParent(ctx, path)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if existing, ok := dir.children[name]; ok {
		if existing.isDir {
			return nil, fmt.Errorf("create %q: %w", path, storage.ErrIsDirectory)
		}
		existing.mu.Lock()
		if existing.leased {
			existing.mu.Unlock()
			return nil, fmt.Errorf("create %q: lease held by another writer: %w", path, storage.ErrExists)
		}
		existing.leased = true
		existing.data = nil
		existing.mu.Unlock()
		fs.cluster.MetaOp(ctx.Clock, fs.cfg.Namenode, 1)
		return &handle{fs: fs, node: existing, path: path, open: true, writable: true}, nil
	}
	n := &inode{
		ino: fs.nextIno, mode: 0o644,
		uid: ctx.UID, gid: ctx.GID,
		leased:  true,
		blockAt: int(fs.nextIno) % len(fs.datanodes),
	}
	fs.nextIno++
	dir.children[name] = n
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.Namenode, 1)
	return &handle{fs: fs, node: n, path: path, open: true, writable: true}, nil
}

// Open opens an existing file read-only (the HDFS access mode).
func (fs *FS) Open(ctx *storage.Context, path string) (storage.Handle, error) {
	n, err := fs.resolve(ctx, path)
	if err != nil {
		return nil, err
	}
	if n.isDir {
		return nil, fmt.Errorf("open %q: %w", path, storage.ErrIsDirectory)
	}
	return &handle{fs: fs, node: n, path: path, open: true}, nil
}

// ReadAt reads visible (flushed) data. Unflushed writer-side bytes are
// invisible — the relaxed-visibility contract.
func (h *handle) ReadAt(ctx *storage.Context, off int64, p []byte) (int, error) {
	if err := h.check(off); err != nil {
		return 0, err
	}
	h.node.mu.RLock()
	defer h.node.mu.RUnlock()
	if off >= int64(len(h.node.data)) {
		return 0, nil
	}
	n := copy(p, h.node.data[off:])
	h.fs.chargeBlockIO(ctx, h.node, off, n, false)
	return n, nil
}

// WriteAt appends. HDFS supports no random writes: off must equal the
// file's current end (visible plus pending), otherwise ErrUnsupported.
func (h *handle) WriteAt(ctx *storage.Context, off int64, p []byte) (int, error) {
	if err := h.check(off); err != nil {
		return 0, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.writable {
		return 0, fmt.Errorf("write to read-only handle %q: %w", h.path, storage.ErrReadOnly)
	}
	h.node.mu.RLock()
	end := int64(len(h.node.data)) + int64(len(h.pending))
	h.node.mu.RUnlock()
	if off != end {
		return 0, fmt.Errorf("write at %d on %q (end %d): random writes: %w",
			off, h.path, end, storage.ErrUnsupported)
	}
	h.pending = append(h.pending, p...)
	// The client streams the bytes to the block pipeline as it writes; the
	// data-path cost is charged here, visibility is deferred to Sync/Close.
	h.fs.chargeBlockIO(ctx, h.node, off, len(p), true)
	return len(p), nil
}

// Sync (hflush) publishes pending bytes to readers.
func (h *handle) Sync(ctx *storage.Context) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.open {
		return storage.ErrClosed
	}
	h.flushLocked(ctx)
	return nil
}

func (h *handle) flushLocked(ctx *storage.Context) {
	if len(h.pending) == 0 {
		return
	}
	h.node.mu.Lock()
	h.node.data = append(h.node.data, h.pending...)
	h.node.mu.Unlock()
	h.pending = nil
	h.fs.cluster.MetaOp(ctx.Clock, h.fs.cfg.Namenode, 1) // block report
}

// Close publishes pending bytes and releases the lease.
func (h *handle) Close(ctx *storage.Context) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.open {
		return storage.ErrClosed
	}
	h.open = false
	if h.writable {
		h.flushLocked(ctx)
		h.node.mu.Lock()
		h.node.leased = false
		h.node.mu.Unlock()
	}
	h.fs.cluster.MetaOp(ctx.Clock, h.fs.cfg.Namenode, 1)
	return nil
}

func (h *handle) check(off int64) error {
	h.mu.Lock()
	open := h.open
	h.mu.Unlock()
	if !open {
		return storage.ErrClosed
	}
	if off < 0 {
		return fmt.Errorf("offset %d: %w", off, storage.ErrInvalidArg)
	}
	return nil
}

// chargeBlockIO charges the data-path cost of an n-byte transfer: blocks
// are placed round-robin over datanodes; writes additionally pay the
// replication pipeline (each replica's disk and NIC, pipelined so the cost
// is the max of the chain stages plus per-hop latency).
func (fs *FS) chargeBlockIO(ctx *storage.Context, node *inode, off int64, n int, write bool) {
	if n <= 0 {
		return
	}
	bs := int64(fs.cfg.BlockSize)
	var children []*storage.Context
	for done := int64(0); done < int64(n); {
		blockIdx := (off + done) / bs
		within := (off + done) % bs
		take := bs - within
		if take > int64(n)-done {
			take = int64(n) - done
		}
		first := (node.blockAt + int(blockIdx)) % len(fs.datanodes)
		child := ctx.Fork()
		if write {
			// Replication pipeline: hop to each replica in turn, then the
			// disks absorb the stream in parallel.
			var repl []*storage.Context
			for r := 0; r < fs.cfg.Replication; r++ {
				dn := fs.datanodes[(first+r)%len(fs.datanodes)]
				fs.cluster.RPC(child.Clock, dn, int(take), 64, 0)
				rc := child.Fork()
				fs.cluster.DiskWrite(rc.Clock, dn, int(take))
				repl = append(repl, rc)
			}
			for _, rc := range repl {
				child.Clock.Join(rc.Clock)
			}
		} else {
			dn := fs.datanodes[first]
			fs.cluster.DiskRead(child.Clock, dn, int(take))
			fs.cluster.RPC(child.Clock, dn, 64, int(take), 0)
		}
		children = append(children, child)
		done += take
	}
	for _, c := range children {
		ctx.Clock.Join(c.Clock)
	}
}
