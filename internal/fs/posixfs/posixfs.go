// Package posixfs implements the strict POSIX-IO parallel file system that
// serves as the paper's HPC baseline (Lustre / OrangeFS):
//
//   - a hierarchical namespace held by a dedicated metadata server (MDS);
//     every path operation resolves component by component, each component
//     costing a metadata RPC — the hierarchy tax of Section I;
//   - per-component permission checks (the POSIX feature the paper calls
//     "largely unused");
//   - strict consistency: every read and write acquires a range lock from
//     the MDS-resident lock manager before touching data, so a write is
//     immediately visible to all clients — the semantics MPI-IO does not
//     need but a POSIX file system must pay for;
//   - file data striped across object storage targets (OSTs), with data
//     transfer costs charged per stripe.
//
// Functional state (namespace tree, file bytes, modes, xattrs) is real and
// fully tested; service times are charged to the virtual clock.
package posixfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/storage"
)

// Config sizes the file system.
type Config struct {
	// MDS is the node hosting the metadata server. Defaults to node 0.
	MDS cluster.NodeID
	// StripeSize is the striping unit across OSTs. Defaults to 1 MiB.
	StripeSize int
	// StripeCount is how many OSTs a file is striped over. Defaults to 4,
	// clamped to the number of OSTs.
	StripeCount int
	// LockAcquisition, when true (the default via NewStrict), charges a
	// lock-manager round trip on every read and write. Disabling it is the
	// "relaxed semantics behind the POSIX API" configuration (OrangeFS
	// style) used by the consistency ablation.
	LockAcquisition bool
}

// FS is a simulated POSIX-compliant parallel file system. It implements
// storage.FileSystem.
type FS struct {
	cfg     Config
	cluster *cluster.Cluster
	osts    []cluster.NodeID

	mu   sync.RWMutex
	root *inode
	// lockMgr serializes strict-consistency range-lock traffic; functional
	// mutual exclusion is per-inode, this resource models the MDS-side cost.
	nextIno uint64
}

type inode struct {
	ino   uint64
	mu    sync.RWMutex
	isDir bool
	mode  uint32
	uid   int
	gid   int

	// Directory state.
	children map[string]*inode

	// File state. Data is held whole; stripe layout only shapes costs.
	data     []byte
	stripeAt int // first OST index for round-robin striping
	xattrs   map[string]string
}

// New builds a posixfs over the cluster. All nodes except the MDS act as
// OSTs; with a single-node cluster the MDS doubles as the OST.
func New(c *cluster.Cluster, cfg Config) *FS {
	if cfg.StripeSize <= 0 {
		cfg.StripeSize = 1 << 20
	}
	if cfg.StripeCount <= 0 {
		cfg.StripeCount = 4
	}
	fs := &FS{cfg: cfg, cluster: c}
	for _, n := range c.Nodes() {
		if n.ID != cfg.MDS {
			fs.osts = append(fs.osts, n.ID)
		}
	}
	if len(fs.osts) == 0 {
		fs.osts = []cluster.NodeID{cfg.MDS}
	}
	if fs.cfg.StripeCount > len(fs.osts) {
		fs.cfg.StripeCount = len(fs.osts)
	}
	fs.root = &inode{
		ino:      1,
		isDir:    true,
		mode:     0o755,
		children: make(map[string]*inode),
	}
	fs.nextIno = 2
	return fs
}

// NewStrict builds a posixfs with full POSIX semantics (per-operation lock
// acquisition), the configuration every baseline experiment uses.
func NewStrict(c *cluster.Cluster) *FS {
	return New(c, Config{LockAcquisition: true})
}

// Config returns the effective configuration.
func (fs *FS) Config() Config { return fs.cfg }

// splitPath normalizes and splits an absolute or relative slash path into
// components, rejecting empty paths.
func splitPath(path string) ([]string, error) {
	if path == "" {
		return nil, fmt.Errorf("empty path: %w", storage.ErrInvalidArg)
	}
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		switch p {
		case "", ".":
			continue
		case "..":
			return nil, fmt.Errorf("path %q: parent references not supported: %w", path, storage.ErrInvalidArg)
		default:
			out = append(out, p)
		}
	}
	return out, nil
}

// canAccess checks POSIX rwx permission bits for the context's identity.
func canAccess(ctx *storage.Context, n *inode, want uint32) bool {
	if ctx.UID == 0 {
		return true
	}
	var bits uint32
	switch {
	case ctx.UID == n.uid:
		bits = (n.mode >> 6) & 7
	case ctx.GID == n.gid:
		bits = (n.mode >> 3) & 7
	default:
		bits = n.mode & 7
	}
	return bits&want == want
}

const (
	permR uint32 = 4
	permW uint32 = 2
	permX uint32 = 1
)

// resolve walks the path from the root, charging one MDS metadata op per
// component (lookup + permission check) and verifying execute permission on
// every traversed directory. It returns the final inode.
func (fs *FS) resolve(ctx *storage.Context, path string) (*inode, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	return fs.walk(ctx, parts)
}

func (fs *FS) walk(ctx *storage.Context, parts []string) (*inode, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	cur := fs.root
	// Root lookup costs one metadata op even for "/" itself.
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.MDS, 1)
	for _, comp := range parts {
		if !cur.isDir {
			return nil, fmt.Errorf("component %q: %w", comp, storage.ErrNotDirectory)
		}
		if !canAccess(ctx, cur, permX) {
			return nil, fmt.Errorf("component %q: %w", comp, storage.ErrPermission)
		}
		child, ok := cur.children[comp]
		if !ok {
			return nil, fmt.Errorf("component %q: %w", comp, storage.ErrNotFound)
		}
		fs.cluster.MetaOp(ctx.Clock, fs.cfg.MDS, 1)
		cur = child
	}
	return cur, nil
}

// resolveParent resolves everything but the last component, returning the
// parent directory and the final name.
func (fs *FS) resolveParent(ctx *storage.Context, path string) (*inode, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", fmt.Errorf("path %q has no final component: %w", path, storage.ErrInvalidArg)
	}
	dir, err := fs.walk(ctx, parts[:len(parts)-1])
	if err != nil {
		return nil, "", err
	}
	if !dir.isDir {
		return nil, "", fmt.Errorf("parent of %q: %w", path, storage.ErrNotDirectory)
	}
	return dir, parts[len(parts)-1], nil
}

// Mkdir creates a directory. The parent must exist and be writable.
func (fs *FS) Mkdir(ctx *storage.Context, path string) error {
	dir, name, err := fs.resolveParent(ctx, path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !canAccess(ctx, dir, permW) {
		return fmt.Errorf("mkdir %q: %w", path, storage.ErrPermission)
	}
	if _, exists := dir.children[name]; exists {
		return fmt.Errorf("mkdir %q: %w", path, storage.ErrExists)
	}
	dir.children[name] = &inode{
		ino:      fs.nextIno,
		isDir:    true,
		mode:     0o755,
		uid:      ctx.UID,
		gid:      ctx.GID,
		children: make(map[string]*inode),
	}
	fs.nextIno++
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.MDS, 2) // insert + journal
	return nil
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(ctx *storage.Context, path string) error {
	dir, name, err := fs.resolveParent(ctx, path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	child, ok := dir.children[name]
	if !ok {
		return fmt.Errorf("rmdir %q: %w", path, storage.ErrNotFound)
	}
	if !child.isDir {
		return fmt.Errorf("rmdir %q: %w", path, storage.ErrNotDirectory)
	}
	if len(child.children) > 0 {
		return fmt.Errorf("rmdir %q: %w", path, storage.ErrNotEmpty)
	}
	if !canAccess(ctx, dir, permW) {
		return fmt.Errorf("rmdir %q: %w", path, storage.ErrPermission)
	}
	delete(dir.children, name)
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.MDS, 2)
	return nil
}

// ReadDir lists a directory in name order.
func (fs *FS) ReadDir(ctx *storage.Context, path string) ([]storage.DirEntry, error) {
	n, err := fs.resolve(ctx, path)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if !n.isDir {
		return nil, fmt.Errorf("readdir %q: %w", path, storage.ErrNotDirectory)
	}
	if !canAccess(ctx, n, permR) {
		return nil, fmt.Errorf("readdir %q: %w", path, storage.ErrPermission)
	}
	out := make([]storage.DirEntry, 0, len(n.children))
	for name, c := range n.children {
		out = append(out, storage.DirEntry{Name: name, IsDir: c.isDir})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	// Listing pays per-entry metadata cost on the MDS.
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.MDS, 1+len(out)/8)
	return out, nil
}

// Stat returns metadata for a path.
func (fs *FS) Stat(ctx *storage.Context, path string) (storage.FileInfo, error) {
	n, err := fs.resolve(ctx, path)
	if err != nil {
		return storage.FileInfo{}, err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	parts, _ := splitPath(path)
	name := ""
	if len(parts) > 0 {
		name = parts[len(parts)-1]
	}
	return storage.FileInfo{
		Name:  name,
		Size:  int64(len(n.data)),
		Mode:  n.mode,
		IsDir: n.isDir,
	}, nil
}

// Chmod updates the permission bits; only the owner or root may do so.
func (fs *FS) Chmod(ctx *storage.Context, path string, mode uint32) error {
	n, err := fs.resolve(ctx, path)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if ctx.UID != 0 && ctx.UID != n.uid {
		return fmt.Errorf("chmod %q: %w", path, storage.ErrPermission)
	}
	n.mode = mode & 0o7777
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.MDS, 1)
	return nil
}

// GetXattr reads an extended attribute (the paper's "other" call category,
// observed in ECOHAM's prep scripts).
func (fs *FS) GetXattr(ctx *storage.Context, path, name string) (string, error) {
	n, err := fs.resolve(ctx, path)
	if err != nil {
		return "", err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	v, ok := n.xattrs[name]
	if !ok {
		return "", fmt.Errorf("xattr %q on %q: %w", name, path, storage.ErrNotFound)
	}
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.MDS, 1)
	return v, nil
}

// SetXattr writes an extended attribute.
func (fs *FS) SetXattr(ctx *storage.Context, path, name, value string) error {
	n, err := fs.resolve(ctx, path)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !canAccess(ctx, n, permW) {
		return fmt.Errorf("setxattr %q on %q: %w", name, path, storage.ErrPermission)
	}
	if n.xattrs == nil {
		n.xattrs = make(map[string]string)
	}
	n.xattrs[name] = value
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.MDS, 1)
	return nil
}

// Unlink removes a file.
func (fs *FS) Unlink(ctx *storage.Context, path string) error {
	dir, name, err := fs.resolveParent(ctx, path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	child, ok := dir.children[name]
	if !ok {
		return fmt.Errorf("unlink %q: %w", path, storage.ErrNotFound)
	}
	if child.isDir {
		return fmt.Errorf("unlink %q: %w", path, storage.ErrIsDirectory)
	}
	if !canAccess(ctx, dir, permW) {
		return fmt.Errorf("unlink %q: %w", path, storage.ErrPermission)
	}
	delete(dir.children, name)
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.MDS, 2)
	return nil
}

// Rename moves a file or directory with full POSIX replace semantics: an
// existing target file is atomically replaced, a directory may replace only
// an empty directory (ENOTEMPTY otherwise), and the source and target kinds
// must agree (EISDIR / ENOTDIR). Renaming a path onto itself is a no-op
// success; moving a directory into its own subtree is rejected (EINVAL).
func (fs *FS) Rename(ctx *storage.Context, oldPath, newPath string) error {
	oldParts, err := splitPath(oldPath)
	if err != nil {
		return err
	}
	newParts, err := splitPath(newPath)
	if err != nil {
		return err
	}
	if len(newParts) > len(oldParts) {
		sub := true
		for i := range oldParts {
			if newParts[i] != oldParts[i] {
				sub = false
				break
			}
		}
		if sub {
			return fmt.Errorf("rename %q into its own subtree %q: %w", oldPath, newPath, storage.ErrInvalidArg)
		}
	}
	oldDir, oldName, err := fs.resolveParent(ctx, oldPath)
	if err != nil {
		return err
	}
	newDir, newName, err := fs.resolveParent(ctx, newPath)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	child, ok := oldDir.children[oldName]
	if !ok {
		return fmt.Errorf("rename %q: %w", oldPath, storage.ErrNotFound)
	}
	if !canAccess(ctx, oldDir, permW) || !canAccess(ctx, newDir, permW) {
		return fmt.Errorf("rename %q -> %q: %w", oldPath, newPath, storage.ErrPermission)
	}
	if target, exists := newDir.children[newName]; exists {
		if target == child {
			// Same entry (hard-link-free tree: same path): POSIX no-op.
			fs.cluster.MetaOp(ctx.Clock, fs.cfg.MDS, 1)
			return nil
		}
		switch {
		case target.isDir && !child.isDir:
			return fmt.Errorf("rename %q onto directory %q: %w", oldPath, newPath, storage.ErrIsDirectory)
		case !target.isDir && child.isDir:
			return fmt.Errorf("rename directory %q onto %q: %w", oldPath, newPath, storage.ErrNotDirectory)
		case target.isDir && len(target.children) > 0:
			return fmt.Errorf("rename onto %q: %w", newPath, storage.ErrNotEmpty)
		}
		// Replace: the target entry is atomically unlinked by the swap below.
	}
	delete(oldDir.children, oldName)
	newDir.children[newName] = child
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.MDS, 2)
	return nil
}
