package posixfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	return NewStrict(cluster.New(cluster.Config{Nodes: 5, Seed: 1}))
}

func TestMkdirAndReadDir(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	for _, p := range []string{"/a", "/a/b", "/a/c"} {
		if err := fs.Mkdir(ctx, p); err != nil {
			t.Fatalf("mkdir %s: %v", p, err)
		}
	}
	entries, err := fs.ReadDir(ctx, "/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != "b" || entries[1].Name != "c" {
		t.Fatalf("ReadDir = %v", entries)
	}
	if !entries[0].IsDir {
		t.Fatal("subdirectory not flagged as dir")
	}
}

func TestMkdirErrors(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	if err := fs.Mkdir(ctx, "/x/y"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("mkdir missing parent: %v", err)
	}
	fs.Mkdir(ctx, "/x")
	if err := fs.Mkdir(ctx, "/x"); !errors.Is(err, storage.ErrExists) {
		t.Fatalf("mkdir duplicate: %v", err)
	}
	if err := fs.Mkdir(ctx, ""); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("mkdir empty: %v", err)
	}
	if err := fs.Mkdir(ctx, "/x/../y"); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("mkdir dotdot: %v", err)
	}
}

func TestRmdirSemantics(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/d")
	fs.Mkdir(ctx, "/d/sub")
	if err := fs.Rmdir(ctx, "/d"); !errors.Is(err, storage.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := fs.Rmdir(ctx, "/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(ctx, "/d"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("rmdir absent: %v", err)
	}
	h, _ := fs.Create(ctx, "/f")
	h.Close(ctx)
	if err := fs.Rmdir(ctx, "/f"); !errors.Is(err, storage.ErrNotDirectory) {
		t.Fatalf("rmdir file: %v", err)
	}
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/data")
	h, err := fs.Create(ctx, "/data/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("strict posix payload")
	if n, err := h.WriteAt(ctx, 0, payload); err != nil || n != len(payload) {
		t.Fatalf("WriteAt = (%d, %v)", n, err)
	}
	got := make([]byte, len(payload))
	if n, err := h.ReadAt(ctx, 0, got); err != nil || n != len(payload) || !bytes.Equal(got, payload) {
		t.Fatalf("ReadAt = (%d, %v, %q)", n, err, got)
	}
	if err := h.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(ctx); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
	if _, err := h.ReadAt(ctx, 0, got); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	h, _ := fs.Create(ctx, "/f")
	h.WriteAt(ctx, 0, []byte("old content"))
	h.Close(ctx)
	h2, err := fs.Create(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close(ctx)
	info, _ := fs.Stat(ctx, "/f")
	if info.Size != 0 {
		t.Fatalf("Create did not truncate: size %d", info.Size)
	}
}

// Strict POSIX semantics: a write through one handle is immediately visible
// through another handle on the same file — the exact property the paper
// says HPC applications pay for without needing.
func TestStrictVisibilityAcrossHandles(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	w, _ := fs.Create(ctx, "/shared")
	r, err := fs.Open(ctx, "/shared")
	if err != nil {
		t.Fatal(err)
	}
	w.WriteAt(ctx, 0, []byte("visible"))
	got := make([]byte, 7)
	n, err := r.ReadAt(ctx, 0, got)
	if err != nil || n != 7 || string(got) != "visible" {
		t.Fatalf("immediate visibility violated: (%d, %v, %q)", n, err, got)
	}
}

func TestOpenErrors(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	if _, err := fs.Open(ctx, "/missing"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("open missing: %v", err)
	}
	fs.Mkdir(ctx, "/dir")
	if _, err := fs.Open(ctx, "/dir"); !errors.Is(err, storage.ErrIsDirectory) {
		t.Fatalf("open dir: %v", err)
	}
	if _, err := fs.Create(ctx, "/dir"); !errors.Is(err, storage.ErrIsDirectory) {
		t.Fatalf("create over dir: %v", err)
	}
}

func TestStatAndTruncate(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	h, _ := fs.Create(ctx, "/f")
	h.WriteAt(ctx, 0, make([]byte, 100))
	h.Close(ctx)
	info, err := fs.Stat(ctx, "/f")
	if err != nil || info.Size != 100 || info.IsDir || info.Name != "f" {
		t.Fatalf("Stat = (%+v, %v)", info, err)
	}
	if err := fs.Truncate(ctx, "/f", 40); err != nil {
		t.Fatal(err)
	}
	info, _ = fs.Stat(ctx, "/f")
	if info.Size != 40 {
		t.Fatalf("size after truncate = %d", info.Size)
	}
	if err := fs.Truncate(ctx, "/f", 80); err != nil {
		t.Fatal(err)
	}
	h2, _ := fs.Open(ctx, "/f")
	buf := make([]byte, 80)
	n, _ := h2.ReadAt(ctx, 0, buf)
	if n != 80 {
		t.Fatalf("read after extend = %d", n)
	}
	for i := 40; i < 80; i++ {
		if buf[i] != 0 {
			t.Fatal("extended region not zero-filled")
		}
	}
	if err := fs.Truncate(ctx, "/f", -1); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("negative truncate: %v", err)
	}
}

func TestUnlink(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	h, _ := fs.Create(ctx, "/f")
	h.Close(ctx)
	if err := fs.Unlink(ctx, "/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(ctx, "/f"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("stat after unlink: %v", err)
	}
	fs.Mkdir(ctx, "/d")
	if err := fs.Unlink(ctx, "/d"); !errors.Is(err, storage.ErrIsDirectory) {
		t.Fatalf("unlink dir: %v", err)
	}
	if err := fs.Unlink(ctx, "/nope"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("unlink absent: %v", err)
	}
}

func TestRename(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/src")
	fs.Mkdir(ctx, "/dst")
	h, _ := fs.Create(ctx, "/src/f")
	h.WriteAt(ctx, 0, []byte("content"))
	h.Close(ctx)
	if err := fs.Rename(ctx, "/src/f", "/dst/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(ctx, "/src/f"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatal("source survived rename")
	}
	h2, err := fs.Open(ctx, "/dst/g")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if n, _ := h2.ReadAt(ctx, 0, buf); n != 7 || string(buf) != "content" {
		t.Fatalf("renamed content = %q", buf[:n])
	}
	if err := fs.Rename(ctx, "/missing", "/dst/x"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("rename missing: %v", err)
	}
	// POSIX rename(2) replaces an existing target atomically.
	hh, _ := fs.Create(ctx, "/dst/h")
	hh.WriteAt(ctx, 0, []byte("old"))
	hh.Close(ctx)
	if err := fs.Rename(ctx, "/dst/g", "/dst/h"); err != nil {
		t.Fatalf("rename over existing file: %v", err)
	}
	if _, err := fs.Stat(ctx, "/dst/g"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatal("source survived replacing rename")
	}
	h3, err := fs.Open(ctx, "/dst/h")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := h3.ReadAt(ctx, 0, buf); n != 7 || string(buf) != "content" {
		t.Fatalf("replaced content = %q", buf[:n])
	}
	h3.Close(ctx)
	// But a directory can never be clobbered into, nor moved into itself.
	if err := fs.Rename(ctx, "/dst/h", "/src"); !errors.Is(err, storage.ErrIsDirectory) {
		t.Fatalf("rename file onto dir: %v", err)
	}
	if err := fs.Rename(ctx, "/dst", "/dst/inside"); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("rename dir into own subtree: %v", err)
	}
}

func TestXattrs(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	h, _ := fs.Create(ctx, "/f")
	h.Close(ctx)
	if _, err := fs.GetXattr(ctx, "/f", "user.tag"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("getxattr absent: %v", err)
	}
	if err := fs.SetXattr(ctx, "/f", "user.tag", "value"); err != nil {
		t.Fatal(err)
	}
	v, err := fs.GetXattr(ctx, "/f", "user.tag")
	if err != nil || v != "value" {
		t.Fatalf("GetXattr = (%q, %v)", v, err)
	}
}

func TestPermissions(t *testing.T) {
	fs := newFS(t)
	root := storage.NewContext() // uid 0
	fs.Mkdir(root, "/private")
	fs.Chmod(root, "/private", 0o700)
	h, _ := fs.Create(root, "/private/secret")
	h.Close(root)

	user := storage.NewContext()
	user.UID, user.GID = 1000, 1000
	if _, err := fs.Open(user, "/private/secret"); !errors.Is(err, storage.ErrPermission) {
		t.Fatalf("traversal through 0700 dir: %v", err)
	}
	if err := fs.Mkdir(user, "/private/sub"); !errors.Is(err, storage.ErrPermission) {
		t.Fatalf("mkdir in 0700 dir: %v", err)
	}
	// World-readable file in accessible dir.
	h2, _ := fs.Create(root, "/public")
	h2.Close(root)
	fs.Chmod(root, "/public", 0o600)
	if _, err := fs.Open(user, "/public"); !errors.Is(err, storage.ErrPermission) {
		t.Fatalf("open 0600 file as other: %v", err)
	}
	fs.Chmod(root, "/public", 0o644)
	if _, err := fs.Open(user, "/public"); err != nil {
		t.Fatalf("open 0644 file as other: %v", err)
	}
	// Non-owner cannot chmod.
	if err := fs.Chmod(user, "/public", 0o777); !errors.Is(err, storage.ErrPermission) {
		t.Fatalf("chmod by non-owner: %v", err)
	}
}

func TestPathResolutionCostGrowsWithDepth(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	path := ""
	for i := 0; i < 8; i++ {
		path = path + fmt.Sprintf("/d%d", i)
		if err := fs.Mkdir(ctx, path); err != nil {
			t.Fatal(err)
		}
	}
	h, _ := fs.Create(ctx, path+"/leaf")
	h.Close(ctx)

	shallow := storage.NewContext()
	if _, err := fs.Stat(shallow, "/d0"); err != nil {
		t.Fatal(err)
	}
	deep := storage.NewContext()
	if _, err := fs.Stat(deep, path+"/leaf"); err != nil {
		t.Fatal(err)
	}
	if deep.Clock.Now() <= shallow.Clock.Now() {
		t.Fatalf("deep stat (%v) not costlier than shallow stat (%v) — hierarchy tax missing",
			deep.Clock.Now(), shallow.Clock.Now())
	}
}

func TestLockAcquisitionCost(t *testing.T) {
	c1 := cluster.New(cluster.Config{Nodes: 5, Seed: 1})
	strict := New(c1, Config{LockAcquisition: true})
	c2 := cluster.New(cluster.Config{Nodes: 5, Seed: 1})
	relaxed := New(c2, Config{LockAcquisition: false})

	run := func(fs *FS) int64 {
		ctx := storage.NewContext()
		h, err := fs.Create(ctx, "/f")
		if err != nil {
			t.Fatal(err)
		}
		start := ctx.Clock.Now()
		for i := 0; i < 100; i++ {
			h.WriteAt(ctx, int64(i), []byte{1})
		}
		return int64(ctx.Clock.Now() - start)
	}
	if s, r := run(strict), run(relaxed); s <= r {
		t.Fatalf("strict locking (%d) not costlier than relaxed (%d)", s, r)
	}
}

func TestConcurrentWritersSharedFile(t *testing.T) {
	fs := newFS(t)
	setup := storage.NewContext()
	h, _ := fs.Create(setup, "/shared")
	h.Close(setup)
	const ranks = 8
	const per = 128
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ctx := storage.NewContext()
			hh, err := fs.Open(ctx, "/shared")
			if err != nil {
				t.Error(err)
				return
			}
			defer hh.Close(ctx)
			payload := bytes.Repeat([]byte{byte(rank + 1)}, per)
			if _, err := hh.WriteAt(ctx, int64(rank*per), payload); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()
	ctx := storage.NewContext()
	rh, _ := fs.Open(ctx, "/shared")
	buf := make([]byte, ranks*per)
	n, err := rh.ReadAt(ctx, 0, buf)
	if err != nil || n != ranks*per {
		t.Fatalf("ReadAt = (%d, %v)", n, err)
	}
	for r := 0; r < ranks; r++ {
		for i := 0; i < per; i++ {
			if buf[r*per+i] != byte(r+1) {
				t.Fatalf("rank %d region corrupted at %d: %d", r, i, buf[r*per+i])
			}
		}
	}
}

func TestReadAtEOF(t *testing.T) {
	fs := newFS(t)
	ctx := storage.NewContext()
	h, _ := fs.Create(ctx, "/f")
	h.WriteAt(ctx, 0, []byte("abc"))
	n, err := h.ReadAt(ctx, 3, make([]byte, 4))
	if err != nil || n != 0 {
		t.Fatalf("read at EOF = (%d, %v)", n, err)
	}
	n, err = h.ReadAt(ctx, 1, make([]byte, 10))
	if err != nil || n != 2 {
		t.Fatalf("short read = (%d, %v)", n, err)
	}
	if _, err := h.ReadAt(ctx, -1, make([]byte, 1)); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("negative offset: %v", err)
	}
}

func TestSingleNodeClusterWorks(t *testing.T) {
	fs := NewStrict(cluster.New(cluster.Config{Nodes: 1}))
	ctx := storage.NewContext()
	h, err := fs.Create(ctx, "/solo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(ctx, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
}
