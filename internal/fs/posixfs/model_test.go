package posixfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/storage"
)

// The reference model: a map of path -> content plus a directory set,
// with POSIX semantics for the operation subset the random walk uses.
type fsModel struct {
	files map[string][]byte
	dirs  map[string]bool
}

func newFSModel() *fsModel {
	return &fsModel{
		files: map[string][]byte{},
		dirs:  map[string]bool{"/": true},
	}
}

func parent(path string) string {
	for i := len(path) - 1; i > 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "/"
}

func (m *fsModel) mkdir(path string) error {
	if m.dirs[path] || m.files[path] != nil {
		return storage.ErrExists
	}
	if !m.dirs[parent(path)] {
		return storage.ErrNotFound
	}
	m.dirs[path] = true
	return nil
}

func (m *fsModel) create(path string) error {
	if m.dirs[path] {
		return storage.ErrIsDirectory
	}
	if !m.dirs[parent(path)] {
		return storage.ErrNotFound
	}
	m.files[path] = nil
	return nil
}

func (m *fsModel) write(path string, off int64, p []byte) error {
	data, ok := m.files[path]
	if !ok {
		return storage.ErrNotFound
	}
	if len(p) == 0 {
		return nil // pwrite(…, 0) never extends
	}
	if need := off + int64(len(p)); need > int64(len(data)) {
		grown := make([]byte, need)
		copy(grown, data)
		data = grown
	}
	copy(data[off:], p)
	m.files[path] = data
	return nil
}

func (m *fsModel) unlink(path string) error {
	if m.dirs[path] {
		return storage.ErrIsDirectory
	}
	if _, ok := m.files[path]; !ok {
		return storage.ErrNotFound
	}
	delete(m.files, path)
	return nil
}

func (m *fsModel) rmdir(path string) error {
	if !m.dirs[path] {
		if _, ok := m.files[path]; ok {
			return storage.ErrNotDirectory
		}
		return storage.ErrNotFound
	}
	for f := range m.files {
		if parent(f) == path {
			return storage.ErrNotEmpty
		}
	}
	for d := range m.dirs {
		if d != path && parent(d) == path {
			return storage.ErrNotEmpty
		}
	}
	delete(m.dirs, path)
	return nil
}

// fsOp is one random operation; quick generates the fields.
type fsOp struct {
	Kind uint8
	Dir  uint8
	Name uint8
	Off  uint16
	Data []byte
}

// TestPosixFSMatchesModel drives random mkdir/create/write/read/unlink/
// rmdir sequences against posixfs and the model, comparing every outcome
// class and all final contents.
func TestPosixFSMatchesModel(t *testing.T) {
	dirs := []string{"/", "/a", "/b", "/a/sub"}
	names := []string{"f0", "f1", "f2"}

	f := func(ops []fsOp) bool {
		fs := NewStrict(cluster.New(cluster.Config{Nodes: 4, Seed: 1}))
		ctx := storage.NewContext()
		model := newFSModel()
		for _, o := range ops {
			dir := dirs[int(o.Dir)%len(dirs)]
			path := dir
			if path == "/" {
				path = ""
			}
			switch o.Kind % 6 {
			case 0: // mkdir one of the fixed dirs
				d := dirs[1+int(o.Name)%(len(dirs)-1)]
				gotErr := fs.Mkdir(ctx, d)
				wantErr := model.mkdir(d)
				if !sameErrClass(gotErr, wantErr) {
					return false
				}
			case 1: // create
				p := path + "/" + names[int(o.Name)%len(names)]
				h, gotErr := fs.Create(ctx, p)
				wantErr := model.create(p)
				if !sameErrClass(gotErr, wantErr) {
					return false
				}
				if gotErr == nil {
					h.Close(ctx)
				}
			case 2: // write
				p := path + "/" + names[int(o.Name)%len(names)]
				data := o.Data
				if len(data) > 128 {
					data = data[:128]
				}
				off := int64(o.Off % 512)
				h, gotErr := fs.Open(ctx, p)
				_, wantExists := model.files[p]
				if (gotErr == nil) != wantExists {
					return false
				}
				if gotErr == nil {
					if _, err := h.WriteAt(ctx, off, data); err != nil {
						return false
					}
					h.Close(ctx)
					if err := model.write(p, off, data); err != nil {
						return false
					}
				}
			case 3: // unlink
				p := path + "/" + names[int(o.Name)%len(names)]
				if !sameErrClass(fs.Unlink(ctx, p), model.unlink(p)) {
					return false
				}
			case 4: // rmdir
				d := dirs[1+int(o.Name)%(len(dirs)-1)]
				if !sameErrClass(fs.Rmdir(ctx, d), model.rmdir(d)) {
					return false
				}
			case 5: // stat + read-verify one model file
				for p, want := range model.files {
					info, err := fs.Stat(ctx, p)
					if err != nil || info.Size != int64(len(want)) {
						return false
					}
					break
				}
			}
		}
		// Final content sweep.
		for p, want := range model.files {
			h, err := fs.Open(ctx, p)
			if err != nil {
				return false
			}
			got := make([]byte, len(want)+8)
			n, err := h.ReadAt(ctx, 0, got)
			h.Close(ctx)
			if err != nil || n != len(want) || !bytes.Equal(got[:n], want) {
				return false
			}
		}
		// Every model dir must stat as a dir.
		for d := range model.dirs {
			if d == "/" {
				continue
			}
			info, err := fs.Stat(ctx, d)
			if err != nil || !info.IsDir {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// sameErrClass compares storage sentinel classes, ignoring wrapping.
func sameErrClass(got, want error) bool {
	if (got == nil) != (want == nil) {
		return false
	}
	if got == nil {
		return true
	}
	for _, sentinel := range []error{
		storage.ErrNotFound, storage.ErrExists, storage.ErrNotEmpty,
		storage.ErrIsDirectory, storage.ErrNotDirectory, storage.ErrPermission,
	} {
		if errors.Is(want, sentinel) {
			return errors.Is(got, sentinel)
		}
	}
	return true
}

// Directory listings must agree with the model after a deterministic
// mixed sequence (regression companion to the random walk).
func TestReadDirAgreesWithModel(t *testing.T) {
	fs := NewStrict(cluster.New(cluster.Config{Nodes: 4, Seed: 1}))
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/proj")
	for i := 0; i < 5; i++ {
		h, err := fs.Create(ctx, fmt.Sprintf("/proj/file-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		h.Close(ctx)
	}
	fs.Mkdir(ctx, "/proj/nested")
	fs.Unlink(ctx, "/proj/file-2")
	entries, err := fs.ReadDir(ctx, "/proj")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"file-0", "file-1", "file-3", "file-4", "nested"}
	if len(entries) != len(want) {
		t.Fatalf("ReadDir = %v", entries)
	}
	for i, w := range want {
		if entries[i].Name != w {
			t.Fatalf("ReadDir = %v, want %v", entries, want)
		}
	}
}
