package posixfs

import (
	"fmt"
	"sync"

	"repro/internal/storage"
)

// handle is an open posixfs file. Under strict POSIX semantics every read
// and write acquires a range lock from the MDS lock manager before touching
// data, making each write immediately visible to all other handles.
type handle struct {
	fs   *FS
	node *inode
	path string
	mu   sync.Mutex
	open bool
}

// Create makes (or truncates) a file and opens it.
func (fs *FS) Create(ctx *storage.Context, path string) (storage.Handle, error) {
	dir, name, err := fs.resolveParent(ctx, path)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	existing, ok := dir.children[name]
	if ok {
		fs.mu.Unlock()
		if existing.isDir {
			return nil, fmt.Errorf("create %q: %w", path, storage.ErrIsDirectory)
		}
		existing.mu.Lock()
		if !canAccess(ctx, existing, permW) {
			existing.mu.Unlock()
			return nil, fmt.Errorf("create %q: %w", path, storage.ErrPermission)
		}
		existing.data = nil // O_TRUNC
		existing.mu.Unlock()
		fs.cluster.MetaOp(ctx.Clock, fs.cfg.MDS, 1)
		return &handle{fs: fs, node: existing, path: path, open: true}, nil
	}
	if !canAccess(ctx, dir, permW) {
		fs.mu.Unlock()
		return nil, fmt.Errorf("create %q: %w", path, storage.ErrPermission)
	}
	n := &inode{
		ino:      fs.nextIno,
		mode:     0o644,
		uid:      ctx.UID,
		gid:      ctx.GID,
		stripeAt: int(fs.nextIno) % len(fs.osts),
	}
	fs.nextIno++
	dir.children[name] = n
	fs.mu.Unlock()
	// Create costs: namespace insert + stripe-layout allocation across the
	// file's OSTs.
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.MDS, 1+fs.cfg.StripeCount)
	return &handle{fs: fs, node: n, path: path, open: true}, nil
}

// Open opens an existing file for reading and writing.
func (fs *FS) Open(ctx *storage.Context, path string) (storage.Handle, error) {
	n, err := fs.resolve(ctx, path)
	if err != nil {
		return nil, err
	}
	if n.isDir {
		return nil, fmt.Errorf("open %q: %w", path, storage.ErrIsDirectory)
	}
	if !canAccess(ctx, n, permR) {
		return nil, fmt.Errorf("open %q: %w", path, storage.ErrPermission)
	}
	return &handle{fs: fs, node: n, path: path, open: true}, nil
}

// Truncate resizes a file by path.
func (fs *FS) Truncate(ctx *storage.Context, path string, size int64) error {
	if size < 0 {
		return fmt.Errorf("truncate %q to %d: %w", path, size, storage.ErrInvalidArg)
	}
	n, err := fs.resolve(ctx, path)
	if err != nil {
		return err
	}
	if n.isDir {
		return fmt.Errorf("truncate %q: %w", path, storage.ErrIsDirectory)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !canAccess(ctx, n, permW) {
		return fmt.Errorf("truncate %q: %w", path, storage.ErrPermission)
	}
	resize(n, size)
	fs.cluster.MetaOp(ctx.Clock, fs.cfg.MDS, 1)
	return nil
}

func resize(n *inode, size int64) {
	switch {
	case size <= int64(len(n.data)):
		n.data = n.data[:size]
	case size <= int64(cap(n.data)):
		// Reuse spare capacity; the region beyond the old length must be
		// zeroed (it may hold stale bytes from an earlier shrink).
		old := len(n.data)
		n.data = n.data[:size]
		clearBytes(n.data[old:])
	default:
		newCap := int64(cap(n.data))
		if newCap < 1024 {
			newCap = 1024
		}
		for newCap < size {
			newCap *= 2
		}
		grown := make([]byte, size, newCap)
		copy(grown, n.data)
		n.data = grown
	}
}

func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// chargeStripedIO charges the data-path cost of an n-byte transfer at the
// given offset: the bytes are spread over the file's stripe set, each
// stripe paying its OST's disk and NIC.
func (fs *FS) chargeStripedIO(ctx *storage.Context, node *inode, off int64, n int) {
	if n <= 0 {
		return
	}
	ss := int64(fs.cfg.StripeSize)
	var children []*storage.Context
	for done := int64(0); done < int64(n); {
		stripeIdx := (off + done) / ss
		within := (off + done) % ss
		take := ss - within
		if take > int64(n)-done {
			take = int64(n) - done
		}
		ost := fs.osts[(node.stripeAt+int(stripeIdx))%len(fs.osts)]
		child := ctx.Fork()
		fs.cluster.DiskWrite(child.Clock, ost, int(take))
		fs.cluster.RPC(child.Clock, ost, 64, int(take), 0)
		children = append(children, child)
		done += take
	}
	for _, c := range children {
		ctx.Clock.Join(c.Clock)
	}
}

// chargeLock charges the strict-consistency range-lock acquisition round
// trip, when the configuration demands it.
func (fs *FS) chargeLock(ctx *storage.Context) {
	if fs.cfg.LockAcquisition {
		fs.cluster.MetaOp(ctx.Clock, fs.cfg.MDS, 1)
	}
}

// ReadAt implements storage.Handle.
func (h *handle) ReadAt(ctx *storage.Context, off int64, p []byte) (int, error) {
	if err := h.check(off); err != nil {
		return 0, err
	}
	h.fs.chargeLock(ctx)
	h.node.mu.RLock()
	defer h.node.mu.RUnlock()
	if off >= int64(len(h.node.data)) {
		return 0, nil
	}
	n := copy(p, h.node.data[off:])
	h.fs.chargeStripedIO(ctx, h.node, off, n)
	return n, nil
}

// WriteAt implements storage.Handle. The write is immediately visible to
// every other handle on the file (strict POSIX semantics).
func (h *handle) WriteAt(ctx *storage.Context, off int64, p []byte) (int, error) {
	if err := h.check(off); err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	h.fs.chargeLock(ctx)
	h.node.mu.Lock()
	defer h.node.mu.Unlock()
	if need := off + int64(len(p)); need > int64(len(h.node.data)) {
		resize(h.node, need)
	}
	copy(h.node.data[off:], p)
	h.fs.chargeStripedIO(ctx, h.node, off, len(p))
	return len(p), nil
}

// Sync flushes client caches; under strict semantics data is already
// visible, so only a durability round trip is charged.
func (h *handle) Sync(ctx *storage.Context) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.open {
		return storage.ErrClosed
	}
	h.fs.cluster.MetaOp(ctx.Clock, h.fs.cfg.MDS, 1)
	return nil
}

// Close releases the handle.
func (h *handle) Close(ctx *storage.Context) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.open {
		return storage.ErrClosed
	}
	h.open = false
	h.fs.cluster.MetaOp(ctx.Clock, h.fs.cfg.MDS, 1)
	return nil
}

func (h *handle) check(off int64) error {
	h.mu.Lock()
	open := h.open
	h.mu.Unlock()
	if !open {
		return storage.ErrClosed
	}
	if off < 0 {
		return fmt.Errorf("offset %d: %w", off, storage.ErrInvalidArg)
	}
	return nil
}
