// Package chash implements a consistent-hash ring with virtual nodes. The
// blob store uses it for data placement, standing in for RADOS' CRUSH map:
// given a blob (or chunk) key it deterministically selects an ordered set of
// distinct nodes — primary first, then replicas — with good balance and
// minimal movement when the membership changes.
package chash

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Ring maps keys to member IDs via consistent hashing.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []point // sorted by hash
	members map[int]bool
	// epoch counts membership changes. Placement caches key their entries
	// by epoch and invalidate lazily when it advances; it is bumped inside
	// the write critical section so a reader that observes the new epoch is
	// guaranteed to also observe the new point set.
	epoch atomic.Uint64
}

type point struct {
	hash   uint64
	member int
}

// New returns a ring with the given number of virtual nodes per member.
// vnodes must be >= 1; typical values are 64–256.
func New(vnodes int) *Ring {
	if vnodes < 1 {
		panic(fmt.Sprintf("chash: invalid vnodes %d", vnodes))
	}
	return &Ring{vnodes: vnodes, members: make(map[int]bool)}
}

// mix64 is the SplitMix64 finalizer. FNV alone clusters badly on short,
// structured inputs (small integers, common key prefixes); the finalizer
// restores avalanche behaviour, which the ring's balance depends on.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// KeyHasher incrementally computes a ring key hash over structured key
// material (prefixes, blob keys, chunk indices) without materializing an
// intermediate string. The hash is bit-identical to hashing the
// concatenated bytes with the ring's own key hash, so callers can switch
// between string keys and streamed keys without moving data:
//
//	NewKeyHasher().String("c:").String(key).Byte(0).Int64Decimal(idx).Sum()
//
// equals HashKey("c:" + key + "\x00" + strconv.FormatInt(idx, 10)).
// The value is FNV-1a state; the SplitMix64 finalizer is applied by Sum.
type KeyHasher uint64

const (
	fnvOffset64 KeyHasher = 14695981039346656037
	fnvPrime64  KeyHasher = 1099511628211
)

// NewKeyHasher returns the empty-input hasher state.
func NewKeyHasher() KeyHasher { return fnvOffset64 }

// String folds s into the hash.
func (k KeyHasher) String(s string) KeyHasher {
	for i := 0; i < len(s); i++ {
		k = (k ^ KeyHasher(s[i])) * fnvPrime64
	}
	return k
}

// Byte folds one byte into the hash.
func (k KeyHasher) Byte(b byte) KeyHasher {
	return (k ^ KeyHasher(b)) * fnvPrime64
}

// Int64Decimal folds the ASCII decimal representation of v into the hash,
// matching what hashing fmt.Sprintf("%d", v) as part of a string key would
// produce. Allocation-free.
func (k KeyHasher) Int64Decimal(v int64) KeyHasher {
	var buf [20]byte
	s := strconv.AppendInt(buf[:0], v, 10)
	for _, c := range s {
		k = k.Byte(c)
	}
	return k
}

// Sum finalizes the hash for use with LocateHashNInto.
func (k KeyHasher) Sum() uint64 { return mix64(uint64(k)) }

// HashKey returns the ring hash of a plain string key; the value can be fed
// to LocateHashNInto. HashKey(s) == NewKeyHasher().String(s).Sum().
func HashKey(s string) uint64 { return hashKey(s) }

func hashVnode(member, i int) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(member))
	binary.LittleEndian.PutUint64(buf[8:], uint64(i))
	h.Write(buf[:])
	return mix64(h.Sum64())
}

// Add inserts a member into the ring. Adding an existing member is a no-op.
func (r *Ring) Add(member int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hashVnode(member, i), member})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	r.epoch.Add(1)
}

// Remove deletes a member from the ring. Removing an absent member is a
// no-op.
func (r *Ring) Remove(member int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
	r.epoch.Add(1)
}

// Epoch returns the number of membership changes so far. It is monotonic;
// a placement cached at one epoch is valid exactly while Epoch() still
// returns that value.
func (r *Ring) Epoch() uint64 { return r.epoch.Load() }

// Members returns the current member IDs in ascending order.
func (r *Ring) Members() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// Size returns the number of members.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Locate returns the first member clockwise from the key's hash, i.e. the
// primary owner. It returns false when the ring is empty.
func (r *Ring) Locate(key string) (int, bool) {
	owners := r.LocateN(key, 1)
	if len(owners) == 0 {
		return 0, false
	}
	return owners[0], true
}

// LocateN returns up to n distinct members responsible for key, primary
// first, walking the ring clockwise. Fewer than n are returned when the
// ring has fewer members. The result slice is the only allocation; use
// LocateNInto to avoid it.
func (r *Ring) LocateN(key string, n int) []int {
	if n <= 0 {
		return nil
	}
	r.mu.RLock()
	if len(r.points) == 0 {
		r.mu.RUnlock()
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]int, n)
	got := r.locateIntoLocked(hashKey(key), out)
	r.mu.RUnlock()
	return out[:got]
}

// LocateNInto fills dst with up to len(dst) distinct members responsible
// for key, primary first, and returns how many were written. It performs no
// allocation: callers on hot paths pass a reusable or stack buffer.
func (r *Ring) LocateNInto(key string, dst []int) int {
	return r.LocateHashNInto(hashKey(key), dst)
}

// LocateHashNInto is LocateNInto for a pre-computed key hash (HashKey or
// KeyHasher.Sum), letting callers that address structured keys skip string
// construction entirely.
func (r *Ring) LocateHashNInto(h uint64, dst []int) int {
	r.mu.RLock()
	got := r.locateIntoLocked(h, dst)
	r.mu.RUnlock()
	return got
}

// locateIntoLocked walks the ring clockwise from h, writing distinct owners
// into dst. Caller holds r.mu. Duplicate suppression is a linear scan of
// the owners found so far — replica counts are small, so this beats a map
// and allocates nothing.
func (r *Ring) locateIntoLocked(h uint64, dst []int) int {
	if len(r.points) == 0 || len(dst) == 0 {
		return 0
	}
	n := len(dst)
	if n > len(r.members) {
		n = len(r.members)
	}
	if len(r.members) == 1 {
		// Single-member ring: every point belongs to it; skip the search.
		dst[0] = r.points[0].member
		return 1
	}
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	got := 0
walk:
	for i := 0; got < n && i < len(r.points); i++ {
		m := r.points[(idx+i)%len(r.points)].member
		for _, prev := range dst[:got] {
			if prev == m {
				continue walk
			}
		}
		dst[got] = m
		got++
	}
	return got
}

// Distribution counts how many of the given keys land on each member as
// primary, for balance diagnostics and tests.
func (r *Ring) Distribution(keys []string) map[int]int {
	dist := make(map[int]int)
	for _, k := range keys {
		if m, ok := r.Locate(k); ok {
			dist[m]++
		}
	}
	return dist
}
