// Package chash implements a consistent-hash ring with virtual nodes. The
// blob store uses it for data placement, standing in for RADOS' CRUSH map:
// given a blob (or chunk) key it deterministically selects an ordered set of
// distinct nodes — primary first, then replicas — with good balance and
// minimal movement when the membership changes.
package chash

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Ring maps keys to member IDs via consistent hashing.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []point // sorted by hash
	members map[int]bool
}

type point struct {
	hash   uint64
	member int
}

// New returns a ring with the given number of virtual nodes per member.
// vnodes must be >= 1; typical values are 64–256.
func New(vnodes int) *Ring {
	if vnodes < 1 {
		panic(fmt.Sprintf("chash: invalid vnodes %d", vnodes))
	}
	return &Ring{vnodes: vnodes, members: make(map[int]bool)}
}

// mix64 is the SplitMix64 finalizer. FNV alone clusters badly on short,
// structured inputs (small integers, common key prefixes); the finalizer
// restores avalanche behaviour, which the ring's balance depends on.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

func hashVnode(member, i int) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(member))
	binary.LittleEndian.PutUint64(buf[8:], uint64(i))
	h.Write(buf[:])
	return mix64(h.Sum64())
}

// Add inserts a member into the ring. Adding an existing member is a no-op.
func (r *Ring) Add(member int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hashVnode(member, i), member})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a member from the ring. Removing an absent member is a
// no-op.
func (r *Ring) Remove(member int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the current member IDs in ascending order.
func (r *Ring) Members() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// Size returns the number of members.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Locate returns the first member clockwise from the key's hash, i.e. the
// primary owner. It returns false when the ring is empty.
func (r *Ring) Locate(key string) (int, bool) {
	owners := r.LocateN(key, 1)
	if len(owners) == 0 {
		return 0, false
	}
	return owners[0], true
}

// LocateN returns up to n distinct members responsible for key, primary
// first, walking the ring clockwise. Fewer than n are returned when the
// ring has fewer members.
func (r *Ring) LocateN(key string, n int) []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashKey(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(idx+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// Distribution counts how many of the given keys land on each member as
// primary, for balance diagnostics and tests.
func (r *Ring) Distribution(keys []string) map[int]int {
	dist := make(map[int]int)
	for _, k := range keys {
		if m, ok := r.Locate(k); ok {
			dist[m]++
		}
	}
	return dist
}
