package chash

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadVnodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestEmptyRing(t *testing.T) {
	r := New(8)
	if _, ok := r.Locate("k"); ok {
		t.Fatal("Locate on empty ring returned a member")
	}
	if got := r.LocateN("k", 3); got != nil {
		t.Fatalf("LocateN on empty ring = %v", got)
	}
	if r.Size() != 0 {
		t.Fatalf("Size = %d", r.Size())
	}
}

func TestAddRemoveIdempotent(t *testing.T) {
	r := New(8)
	r.Add(1)
	r.Add(1)
	if r.Size() != 1 {
		t.Fatalf("double Add: Size = %d", r.Size())
	}
	r.Remove(2) // absent, no-op
	r.Remove(1)
	r.Remove(1)
	if r.Size() != 0 {
		t.Fatalf("after removes: Size = %d", r.Size())
	}
}

func TestMembersSorted(t *testing.T) {
	r := New(4)
	for _, m := range []int{5, 1, 3} {
		r.Add(m)
	}
	got := r.Members()
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members() = %v, want %v", got, want)
		}
	}
}

func TestLocateDeterministic(t *testing.T) {
	r := New(64)
	for i := 0; i < 8; i++ {
		r.Add(i)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("blob-%d", i)
		a, _ := r.Locate(k)
		b, _ := r.Locate(k)
		if a != b {
			t.Fatalf("Locate(%q) unstable: %d vs %d", k, a, b)
		}
	}
}

func TestLocateNDistinctAndPrimaryFirst(t *testing.T) {
	r := New(64)
	for i := 0; i < 5; i++ {
		r.Add(i)
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%d", i)
		owners := r.LocateN(k, 3)
		if len(owners) != 3 {
			t.Fatalf("LocateN(%q, 3) = %v", k, owners)
		}
		seen := map[int]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner in %v", owners)
			}
			seen[o] = true
		}
		p, _ := r.Locate(k)
		if owners[0] != p {
			t.Fatalf("primary mismatch: LocateN[0]=%d Locate=%d", owners[0], p)
		}
	}
}

func TestLocateNClampedToMembership(t *testing.T) {
	r := New(16)
	r.Add(0)
	r.Add(1)
	if got := r.LocateN("k", 10); len(got) != 2 {
		t.Fatalf("LocateN beyond membership = %v, want 2 owners", got)
	}
	if got := r.LocateN("k", 0); got != nil {
		t.Fatalf("LocateN(0) = %v, want nil", got)
	}
}

func TestBalance(t *testing.T) {
	r := New(128)
	const nodes = 8
	for i := 0; i < nodes; i++ {
		r.Add(i)
	}
	keys := make([]string, 8000)
	for i := range keys {
		keys[i] = fmt.Sprintf("object/%d", i)
	}
	dist := r.Distribution(keys)
	want := len(keys) / nodes
	for m, c := range dist {
		if c < want/2 || c > want*2 {
			t.Fatalf("member %d owns %d keys, want within [%d, %d]: %v", m, c, want/2, want*2, dist)
		}
	}
}

// Property: removing one member only moves keys that were owned by that
// member (consistent-hashing minimal-disruption guarantee).
func TestMinimalMovementOnRemoval(t *testing.T) {
	r := New(64)
	for i := 0; i < 6; i++ {
		r.Add(i)
	}
	before := map[string]int{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%d", i)
		m, _ := r.Locate(k)
		before[k] = m
	}
	r.Remove(3)
	for k, old := range before {
		now, _ := r.Locate(k)
		if old != 3 && now != old {
			t.Fatalf("key %q moved from %d to %d although member 3 was removed", k, old, now)
		}
		if now == 3 {
			t.Fatalf("key %q still maps to removed member", k)
		}
	}
}

// Property: for any key and any live membership, Locate returns a current
// member.
func TestLocateReturnsMemberProperty(t *testing.T) {
	f := func(key string, add []uint8) bool {
		r := New(16)
		live := map[int]bool{}
		for _, a := range add {
			m := int(a % 17)
			r.Add(m)
			live[m] = true
		}
		m, ok := r.Locate(key)
		if len(live) == 0 {
			return !ok
		}
		return ok && live[m]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Regression: LocateN ordering is pinned to the clockwise walk from the
// key's hash (primary first), and the allocation-free variants agree with
// it exactly — including when the ring has no more members than requested
// replicas (the early-return path).
func TestLocateNOrderingPinnedAcrossVariants(t *testing.T) {
	for _, members := range [][]int{{4}, {1, 7}, {0, 1, 2}, {3, 5, 8, 11, 13}} {
		r := New(32)
		for _, m := range members {
			r.Add(m)
		}
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("pin-%d", i)
			for _, n := range []int{1, 2, 3, len(members), len(members) + 3} {
				want := locateNReference(r, k, n)
				got := r.LocateN(k, n)
				if !equalInts(got, want) {
					t.Fatalf("members %v LocateN(%q,%d) = %v, want %v", members, k, n, got, want)
				}
				dst := make([]int, n)
				cnt := r.LocateNInto(k, dst)
				if !equalInts(dst[:cnt], want) {
					t.Fatalf("members %v LocateNInto(%q,%d) = %v, want %v", members, k, n, dst[:cnt], want)
				}
				cnt = r.LocateHashNInto(HashKey(k), dst)
				if !equalInts(dst[:cnt], want) {
					t.Fatalf("members %v LocateHashNInto(%q,%d) = %v, want %v", members, k, n, dst[:cnt], want)
				}
				if len(want) > 0 {
					if p, _ := r.Locate(k); p != want[0] {
						t.Fatalf("primary mismatch for %q: Locate=%d, walk=%d", k, p, want[0])
					}
				}
			}
		}
	}
}

// locateNReference reimplements the clockwise walk naively, as the pinned
// specification of owner ordering.
func locateNReference(r *Ring, key string, n int) []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n > len(r.members) {
		n = len(r.members)
	}
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hashKey(key)
	start := 0
	for start < len(r.points) && r.points[start].hash < h {
		start++
	}
	var out []int
	seen := map[int]bool{}
	for i := 0; len(out) < n && i < len(r.points); i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLocateNIntoAllocationFree(t *testing.T) {
	r := New(64)
	for i := 0; i < 8; i++ {
		r.Add(i)
	}
	dst := make([]int, 3)
	h := HashKey("steady-key")
	allocs := testing.AllocsPerRun(200, func() {
		if r.LocateHashNInto(h, dst) != 3 {
			t.Fatal("short lookup")
		}
	})
	if allocs != 0 {
		t.Fatalf("LocateHashNInto allocates %v per call, want 0", allocs)
	}
}

func TestEpochAdvancesOnMembershipChange(t *testing.T) {
	r := New(8)
	if r.Epoch() != 0 {
		t.Fatalf("fresh ring epoch = %d", r.Epoch())
	}
	r.Add(1)
	r.Add(2)
	if r.Epoch() != 2 {
		t.Fatalf("epoch after two adds = %d, want 2", r.Epoch())
	}
	r.Add(1) // no-op must not bump
	if r.Epoch() != 2 {
		t.Fatalf("epoch after no-op add = %d, want 2", r.Epoch())
	}
	r.Remove(1)
	if r.Epoch() != 3 {
		t.Fatalf("epoch after remove = %d, want 3", r.Epoch())
	}
	r.Remove(1) // no-op must not bump
	if r.Epoch() != 3 {
		t.Fatalf("epoch after no-op remove = %d, want 3", r.Epoch())
	}
}

// KeyHasher must be bit-identical to hashing the concatenated string, so
// stores can stream structured keys without changing placement.
func TestKeyHasherMatchesStringHash(t *testing.T) {
	cases := []struct {
		streamed KeyHasher
		str      string
	}{
		{NewKeyHasher().String("d:").String("blob/alpha"), "d:blob/alpha"},
		{NewKeyHasher().String("c:").String("k").Byte(0).Int64Decimal(0), "c:k\x000"},
		{NewKeyHasher().String("c:").String("a/b").Byte(0).Int64Decimal(12345), "c:a/b\x0012345"},
		{NewKeyHasher().String("c:").String("x").Byte(0).Int64Decimal(-7), "c:x\x00-7"},
		{NewKeyHasher(), ""},
	}
	for _, c := range cases {
		if got, want := c.streamed.Sum(), HashKey(c.str); got != want {
			t.Fatalf("streamed hash of %q = %#x, want %#x", c.str, got, want)
		}
	}
	f := func(key string, idx int64) bool {
		streamed := NewKeyHasher().String("c:").String(key).Byte(0).Int64Decimal(idx).Sum()
		return streamed == HashKey(fmt.Sprintf("c:%s\x00%d", key, idx))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
