package blob

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/storage"
)

// populate drives a varied mutation history across several blobs.
func populate(t *testing.T, s *Store, ctx *storage.Context, rng *sim.RNG) map[string][]byte {
	t.Helper()
	expect := make(map[string][]byte)
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("obj-%d", i)
		if err := s.CreateBlob(ctx, key); err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 200+i*97)
		rng.Fill(data)
		if _, err := s.WriteBlob(ctx, key, 0, data); err != nil {
			t.Fatal(err)
		}
		expect[key] = data
	}
	// Overwrite part of one, truncate another, delete a third.
	patch := []byte("patched-region")
	if _, err := s.WriteBlob(ctx, "obj-1", 50, patch); err != nil {
		t.Fatal(err)
	}
	copy(expect["obj-1"][50:], patch)
	if err := s.TruncateBlob(ctx, "obj-2", 100); err != nil {
		t.Fatal(err)
	}
	expect["obj-2"] = expect["obj-2"][:100]
	if err := s.DeleteBlob(ctx, "obj-3"); err != nil {
		t.Fatal(err)
	}
	delete(expect, "obj-3")
	return expect
}

func verifyAll(t *testing.T, s *Store, ctx *storage.Context, expect map[string][]byte) {
	t.Helper()
	for key, want := range expect {
		size, err := s.BlobSize(ctx, key)
		if err != nil {
			t.Fatalf("%s: size: %v", key, err)
		}
		if size != int64(len(want)) {
			t.Fatalf("%s: size = %d, want %d", key, size, len(want))
		}
		got := make([]byte, len(want))
		n, err := s.ReadBlob(ctx, key, 0, got)
		if err != nil || n != len(want) || !bytes.Equal(got, want) {
			t.Fatalf("%s: read = (%d, %v), content match=%v", key, n, err, bytes.Equal(got, want))
		}
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
}

func TestCrashRecoverySingleNode(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 5, Seed: 1}), Config{ChunkSize: 64, Replication: 2})
	ctx := storage.NewContext()
	expect := populate(t, s, ctx, sim.NewRNG(11))

	// Crash and recover every node in turn; data must survive bit-for-bit.
	for node := 0; node < 5; node++ {
		s.Crash(cluster.NodeID(node))
		if err := s.Recover(cluster.NodeID(node)); err != nil {
			t.Fatalf("recover node %d: %v", node, err)
		}
		verifyAll(t, s, ctx, expect)
	}
}

func TestCrashRecoveryAllNodes(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 4, Seed: 2}), Config{ChunkSize: 32, Replication: 2})
	ctx := storage.NewContext()
	expect := populate(t, s, ctx, sim.NewRNG(12))

	// Power loss: every server loses volatile state at once.
	for node := 0; node < 4; node++ {
		s.Crash(cluster.NodeID(node))
	}
	// Nothing is readable while down.
	if _, err := s.BlobSize(ctx, "obj-0"); err == nil {
		t.Fatal("crashed cluster still served metadata")
	}
	for node := 0; node < 4; node++ {
		if err := s.Recover(cluster.NodeID(node)); err != nil {
			t.Fatalf("recover node %d: %v", node, err)
		}
	}
	verifyAll(t, s, ctx, expect)
}

func TestRecoveredStateIdenticalToLive(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 4, Seed: 3}), Config{ChunkSize: 48, Replication: 3})
	ctx := storage.NewContext()
	populate(t, s, ctx, sim.NewRNG(13))

	// Snapshot live state of node 2, crash+recover, compare.
	sv := s.servers[2]
	sv.mu.RLock()
	liveDesc := make(map[string]int64, len(sv.blobs))
	for k, d := range sv.blobs {
		liveDesc[k] = d.size
	}
	sv.mu.RUnlock()
	liveChunks := make(map[chunkID]string)
	sv.forEachChunk(func(id chunkID, c []byte) {
		liveChunks[id] = string(c)
	})

	s.Crash(2)
	if err := s.Recover(2); err != nil {
		t.Fatal(err)
	}

	sv.mu.RLock()
	if len(sv.blobs) != len(liveDesc) {
		t.Fatalf("descriptor count after recovery = %d, want %d", len(sv.blobs), len(liveDesc))
	}
	for k, size := range liveDesc {
		d, ok := sv.blobs[k]
		if !ok || d.size != size {
			t.Fatalf("descriptor %q diverges after recovery", k)
		}
	}
	sv.mu.RUnlock()
	if got := sv.chunkCount(); got != len(liveChunks) {
		t.Fatalf("chunk count after recovery = %d, want %d", got, len(liveChunks))
	}
	for id, c := range liveChunks {
		got, ok := sv.getChunk(id.ringHash(), id)
		if !ok || string(got) != c {
			t.Fatalf("chunk %v diverges after recovery", id)
		}
	}
}

// TestCheckpointPreservesRecovery: compacting the WAL into a state
// snapshot must leave crash recovery bit-for-bit equivalent, and the log
// must actually shrink.
func TestCheckpointPreservesRecovery(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 5, Seed: 9}), Config{ChunkSize: 64, Replication: 2})
	ctx := storage.NewContext()
	expect := populate(t, s, ctx, sim.NewRNG(31))

	// Grow the logs with overwrites, then checkpoint everywhere.
	for i := 0; i < 20; i++ {
		if _, err := s.WriteBlob(ctx, "obj-0", 0, []byte("overwrite-cycle")); err != nil {
			t.Fatal(err)
		}
	}
	copy(expect["obj-0"], "overwrite-cycle")
	grown := s.servers[0].logBuf.Len()
	s.CheckpointAll()
	if after := s.servers[0].logBuf.Len(); after >= grown {
		t.Fatalf("checkpoint did not shrink the log: %d -> %d", grown, after)
	}

	// Crash + recover every node: the snapshot must reconstruct the state.
	for node := 0; node < 5; node++ {
		s.Crash(cluster.NodeID(node))
		if err := s.Recover(cluster.NodeID(node)); err != nil {
			t.Fatalf("recover node %d after checkpoint: %v", node, err)
		}
	}
	verifyAll(t, s, ctx, expect)

	// Post-checkpoint mutations append to the compacted log and survive
	// another crash cycle.
	if _, err := s.WriteBlob(ctx, "obj-0", 4, []byte("post-ckpt")); err != nil {
		t.Fatal(err)
	}
	copy(expect["obj-0"][4:], "post-ckpt")
	for node := 0; node < 5; node++ {
		s.Crash(cluster.NodeID(node))
		if err := s.Recover(cluster.NodeID(node)); err != nil {
			t.Fatal(err)
		}
	}
	verifyAll(t, s, ctx, expect)
}

// TestCheckpointSkipsDownServer: a crashed server's WAL is its only
// recovery source; checkpointing must not wipe it.
func TestCheckpointSkipsDownServer(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 4, Seed: 10}), Config{ChunkSize: 64, Replication: 2})
	ctx := storage.NewContext()
	expect := populate(t, s, ctx, sim.NewRNG(41))

	s.Crash(2)
	s.CheckpointAll() // must leave node 2's WAL intact
	if err := s.Recover(2); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, s, ctx, expect)
	if n := s.DescriptorCount(2) + s.ChunkCount(2); n == 0 {
		t.Fatal("node 2 recovered empty: checkpoint wiped a down server's WAL")
	}
}

func TestRecoveryAfterTornTail(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 3, Seed: 4}), Config{ChunkSize: 64, Replication: 1})
	ctx := storage.NewContext()
	if err := s.CreateBlob(ctx, "durable"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteBlob(ctx, "durable", 0, []byte("first-write")); err != nil {
		t.Fatal(err)
	}
	// Tear the tail of every log (a crash mid-append); recovery must stop
	// cleanly at the torn record rather than fail.
	for node := 0; node < 3; node++ {
		sv := s.servers[node]
		if n := sv.logBuf.Len(); n > 3 {
			sv.logBuf.Truncate(n - 3)
		}
		s.Crash(cluster.NodeID(node))
		if err := s.Recover(cluster.NodeID(node)); err != nil {
			t.Fatalf("recover with torn tail, node %d: %v", node, err)
		}
	}
}

// TestCheckpointThenCrashMidAppendTornSlab drives the segmented WAL buffer
// through a full compaction cycle and then a crash mid-append: after a
// checkpoint (Buffer.Reset + Log.ResetSize) the log is refilled across
// several slabs, the final slab is torn mid-record, and replay must still
// see a consistent prefix — every fully-appended write, nothing of the torn
// one, on every replica identically.
func TestCheckpointThenCrashMidAppendTornSlab(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 4, Seed: 21}), Config{ChunkSize: 1024, Replication: 2})
	ctx := storage.NewContext()
	key := "slab-blob"
	if err := s.CreateBlob(ctx, key); err != nil {
		t.Fatal(err)
	}
	base := make([]byte, 4096)
	sim.NewRNG(77).Fill(base)
	if _, err := s.WriteBlob(ctx, key, 0, base); err != nil {
		t.Fatal(err)
	}

	// Compact everywhere: every log restarts at a snapshot (ResetSize).
	s.CheckpointAll()
	for node := 0; node < 4; node++ {
		if got, want := s.servers[node].log.Size(), int64(s.servers[node].logBuf.Len()); got != want {
			t.Fatalf("node %d: Log.Size %d != buffer length %d after checkpoint", node, got, want)
		}
	}

	// Refill chunk 0's replica logs well past one slab: 200 overwrites of
	// the same chunk, each a distinct pattern, all landing on the same
	// replica set.
	pattern := func(i int) []byte {
		p := make([]byte, 1024)
		for j := range p {
			p[j] = byte(i + j*7)
		}
		return p
	}
	const rounds = 200
	for i := 0; i < rounds; i++ {
		if _, err := s.WriteBlob(ctx, key, 0, pattern(i)); err != nil {
			t.Fatal(err)
		}
	}
	owners := s.chunkOwners(chunkID{key, 0})
	for _, o := range owners {
		if slabs := s.servers[o].logBuf.Slabs(); slabs < 2 {
			t.Fatalf("node %d: log holds %d slab(s); the test needs multi-slab growth", o, slabs)
		}
	}

	// Crash mid-append: tear the final slab of every replica's log a few
	// bytes short, cutting into the last (round-199) record.
	for _, o := range owners {
		buf := s.servers[o].logBuf
		buf.Truncate(buf.Len() - 3)
	}
	for _, o := range owners {
		s.Crash(cluster.NodeID(o))
		if err := s.Recover(cluster.NodeID(o)); err != nil {
			t.Fatalf("recover node %d: %v", o, err)
		}
	}

	// The consistent prefix: rounds 0..198 fully applied, the torn round
	// 199 invisible, replicas identical, untouched chunks intact.
	got := make([]byte, 4096)
	if n, err := s.ReadBlob(ctx, key, 0, got); err != nil || n != len(got) {
		t.Fatalf("read after recovery: (%d, %v)", n, err)
	}
	if !bytes.Equal(got[:1024], pattern(rounds-2)) {
		t.Fatal("chunk 0 after torn-tail recovery is not the last fully-logged write")
	}
	if !bytes.Equal(got[1024:], base[1024:]) {
		t.Fatal("untouched chunks diverged across checkpoint + recovery")
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}

	// The recovered servers keep appending into the recycled slabs: another
	// write and clean crash cycle must replay exactly.
	if _, err := s.WriteBlob(ctx, key, 0, pattern(1000)); err != nil {
		t.Fatal(err)
	}
	for _, o := range owners {
		s.Crash(cluster.NodeID(o))
		if err := s.Recover(cluster.NodeID(o)); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.ReadBlob(ctx, key, 0, got); err != nil || n != len(got) {
		t.Fatalf("read after second recovery: (%d, %v)", n, err)
	}
	if !bytes.Equal(got[:1024], pattern(1000)) {
		t.Fatal("write after torn-tail recovery did not survive the next crash")
	}
}

func TestWritesFailWhileCrashed(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 3, Seed: 5}), Config{ChunkSize: 64, Replication: 1})
	ctx := storage.NewContext()
	if err := s.CreateBlob(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	owners := s.descOwners("k")
	s.Crash(cluster.NodeID(owners[0]))
	if _, err := s.WriteBlob(ctx, "k", 0, []byte("x")); err == nil {
		t.Fatal("write succeeded against a crashed descriptor primary")
	}
	if err := s.Recover(cluster.NodeID(owners[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteBlob(ctx, "k", 0, []byte("x")); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}
