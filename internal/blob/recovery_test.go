package blob

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/storage"
)

// populate drives a varied mutation history across several blobs.
func populate(t *testing.T, s *Store, ctx *storage.Context, rng *sim.RNG) map[string][]byte {
	t.Helper()
	expect := make(map[string][]byte)
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("obj-%d", i)
		if err := s.CreateBlob(ctx, key); err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 200+i*97)
		rng.Fill(data)
		if _, err := s.WriteBlob(ctx, key, 0, data); err != nil {
			t.Fatal(err)
		}
		expect[key] = data
	}
	// Overwrite part of one, truncate another, delete a third.
	patch := []byte("patched-region")
	if _, err := s.WriteBlob(ctx, "obj-1", 50, patch); err != nil {
		t.Fatal(err)
	}
	copy(expect["obj-1"][50:], patch)
	if err := s.TruncateBlob(ctx, "obj-2", 100); err != nil {
		t.Fatal(err)
	}
	expect["obj-2"] = expect["obj-2"][:100]
	if err := s.DeleteBlob(ctx, "obj-3"); err != nil {
		t.Fatal(err)
	}
	delete(expect, "obj-3")
	return expect
}

func verifyAll(t *testing.T, s *Store, ctx *storage.Context, expect map[string][]byte) {
	t.Helper()
	for key, want := range expect {
		size, err := s.BlobSize(ctx, key)
		if err != nil {
			t.Fatalf("%s: size: %v", key, err)
		}
		if size != int64(len(want)) {
			t.Fatalf("%s: size = %d, want %d", key, size, len(want))
		}
		got := make([]byte, len(want))
		n, err := s.ReadBlob(ctx, key, 0, got)
		if err != nil || n != len(want) || !bytes.Equal(got, want) {
			t.Fatalf("%s: read = (%d, %v), content match=%v", key, n, err, bytes.Equal(got, want))
		}
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
}

func TestCrashRecoverySingleNode(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 5, Seed: 1}), Config{ChunkSize: 64, Replication: 2})
	ctx := storage.NewContext()
	expect := populate(t, s, ctx, sim.NewRNG(11))

	// Crash and recover every node in turn; data must survive bit-for-bit.
	for node := 0; node < 5; node++ {
		s.Crash(cluster.NodeID(node))
		if err := s.Recover(cluster.NodeID(node)); err != nil {
			t.Fatalf("recover node %d: %v", node, err)
		}
		verifyAll(t, s, ctx, expect)
	}
}

func TestCrashRecoveryAllNodes(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 4, Seed: 2}), Config{ChunkSize: 32, Replication: 2})
	ctx := storage.NewContext()
	expect := populate(t, s, ctx, sim.NewRNG(12))

	// Power loss: every server loses volatile state at once.
	for node := 0; node < 4; node++ {
		s.Crash(cluster.NodeID(node))
	}
	// Nothing is readable while down.
	if _, err := s.BlobSize(ctx, "obj-0"); err == nil {
		t.Fatal("crashed cluster still served metadata")
	}
	for node := 0; node < 4; node++ {
		if err := s.Recover(cluster.NodeID(node)); err != nil {
			t.Fatalf("recover node %d: %v", node, err)
		}
	}
	verifyAll(t, s, ctx, expect)
}

func TestRecoveredStateIdenticalToLive(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 4, Seed: 3}), Config{ChunkSize: 48, Replication: 3})
	ctx := storage.NewContext()
	populate(t, s, ctx, sim.NewRNG(13))

	// Snapshot live state of node 2, crash+recover, compare.
	sv := s.servers[2]
	sv.mu.RLock()
	liveDesc := make(map[string]int64, len(sv.blobs))
	for k, d := range sv.blobs {
		liveDesc[k] = d.size
	}
	sv.mu.RUnlock()
	liveChunks := make(map[chunkID]string)
	sv.forEachChunk(func(id chunkID, c []byte, _ uint64) {
		liveChunks[id] = string(c)
	})

	s.Crash(2)
	if err := s.Recover(2); err != nil {
		t.Fatal(err)
	}

	sv.mu.RLock()
	if len(sv.blobs) != len(liveDesc) {
		t.Fatalf("descriptor count after recovery = %d, want %d", len(sv.blobs), len(liveDesc))
	}
	for k, size := range liveDesc {
		d, ok := sv.blobs[k]
		if !ok || d.size != size {
			t.Fatalf("descriptor %q diverges after recovery", k)
		}
	}
	sv.mu.RUnlock()
	if got := sv.chunkCount(); got != len(liveChunks) {
		t.Fatalf("chunk count after recovery = %d, want %d", got, len(liveChunks))
	}
	for id, c := range liveChunks {
		got, ok := sv.getChunk(id.ringHash(), id)
		if !ok || string(got) != c {
			t.Fatalf("chunk %v diverges after recovery", id)
		}
	}
}

// TestCheckpointPreservesRecovery: compacting the WAL into a state
// snapshot must leave crash recovery bit-for-bit equivalent, and the log
// must actually shrink.
func TestCheckpointPreservesRecovery(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 5, Seed: 9}), Config{ChunkSize: 64, Replication: 2})
	ctx := storage.NewContext()
	expect := populate(t, s, ctx, sim.NewRNG(31))

	// Grow the logs with overwrites, then checkpoint everywhere.
	for i := 0; i < 20; i++ {
		if _, err := s.WriteBlob(ctx, "obj-0", 0, []byte("overwrite-cycle")); err != nil {
			t.Fatal(err)
		}
	}
	copy(expect["obj-0"], "overwrite-cycle")
	grown := s.servers[0].wal.Size()
	s.CheckpointAll()
	if after := s.servers[0].wal.Size(); after >= grown {
		t.Fatalf("checkpoint did not shrink the log: %d -> %d", grown, after)
	}

	// Crash + recover every node: the snapshot must reconstruct the state.
	for node := 0; node < 5; node++ {
		s.Crash(cluster.NodeID(node))
		if err := s.Recover(cluster.NodeID(node)); err != nil {
			t.Fatalf("recover node %d after checkpoint: %v", node, err)
		}
	}
	verifyAll(t, s, ctx, expect)

	// Post-checkpoint mutations append to the compacted log and survive
	// another crash cycle.
	if _, err := s.WriteBlob(ctx, "obj-0", 4, []byte("post-ckpt")); err != nil {
		t.Fatal(err)
	}
	copy(expect["obj-0"][4:], "post-ckpt")
	for node := 0; node < 5; node++ {
		s.Crash(cluster.NodeID(node))
		if err := s.Recover(cluster.NodeID(node)); err != nil {
			t.Fatal(err)
		}
	}
	verifyAll(t, s, ctx, expect)
}

// TestCheckpointSkipsDownServer: a crashed server's WAL is its only
// recovery source; checkpointing must not wipe it.
func TestCheckpointSkipsDownServer(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 4, Seed: 10}), Config{ChunkSize: 64, Replication: 2})
	ctx := storage.NewContext()
	expect := populate(t, s, ctx, sim.NewRNG(41))

	s.Crash(2)
	s.CheckpointAll() // must leave node 2's WAL intact
	if err := s.Recover(2); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, s, ctx, expect)
	if n := s.DescriptorCount(2) + s.ChunkCount(2); n == 0 {
		t.Fatal("node 2 recovered empty: checkpoint wiped a down server's WAL")
	}
}

func TestRecoveryAfterTornTail(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 3, Seed: 4}), Config{ChunkSize: 64, Replication: 1})
	ctx := storage.NewContext()
	if err := s.CreateBlob(ctx, "durable"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteBlob(ctx, "durable", 0, []byte("first-write")); err != nil {
		t.Fatal(err)
	}
	// Tear the tail of every non-empty log lane (a crash mid-append on
	// several lanes at once); recovery must stop cleanly at the merged
	// order-key prefix rather than fail.
	for node := 0; node < 3; node++ {
		sv := s.servers[node]
		for lane := 0; lane < sv.wal.Lanes(); lane++ {
			if buf := sv.wal.LaneBuffer(lane); buf.Len() > 3 {
				buf.Truncate(buf.Len() - 3)
			}
		}
		s.Crash(cluster.NodeID(node))
		if err := s.Recover(cluster.NodeID(node)); err != nil {
			t.Fatalf("recover with torn tail, node %d: %v", node, err)
		}
	}
}

// TestCheckpointThenCrashMidAppendTornSlab drives the segmented WAL buffer
// through a full compaction cycle and then a crash mid-append: after a
// checkpoint (Buffer.Reset + Log.ResetSize) the log is refilled across
// several slabs, the final slab is torn mid-record, and replay must still
// see a consistent prefix — every fully-appended write, nothing of the torn
// one, on every replica identically.
func TestCheckpointThenCrashMidAppendTornSlab(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 4, Seed: 21}), Config{ChunkSize: 1024, Replication: 2})
	ctx := storage.NewContext()
	key := "slab-blob"
	if err := s.CreateBlob(ctx, key); err != nil {
		t.Fatal(err)
	}
	base := make([]byte, 4096)
	sim.NewRNG(77).Fill(base)
	if _, err := s.WriteBlob(ctx, key, 0, base); err != nil {
		t.Fatal(err)
	}

	// Compact everywhere: every log restarts at a snapshot (ResetAll).
	s.CheckpointAll()
	for node := 0; node < 4; node++ {
		sv := s.servers[node]
		for lane := 0; lane < sv.wal.Lanes(); lane++ {
			if got, want := sv.wal.LaneSize(lane), int64(sv.wal.LaneBuffer(lane).Len()); got != want {
				t.Fatalf("node %d lane %d: size %d != buffer length %d after checkpoint", node, lane, got, want)
			}
		}
	}

	// Refill chunk 0's replica logs well past one slab: 200 overwrites of
	// the same chunk, each a distinct pattern, all landing on the same
	// replica set.
	pattern := func(i int) []byte {
		p := make([]byte, 1024)
		for j := range p {
			p[j] = byte(i + j*7)
		}
		return p
	}
	const rounds = 200
	for i := 0; i < rounds; i++ {
		if _, err := s.WriteBlob(ctx, key, 0, pattern(i)); err != nil {
			t.Fatal(err)
		}
	}
	// All 200 overwrites address chunk 0, so they all land on its log lane.
	h0 := chunkID{key, 0}.ringHash()
	owners := s.chunkOwners(chunkID{key, 0})
	for _, o := range owners {
		sv := s.servers[o]
		if slabs := sv.wal.LaneBuffer(sv.chunkLane(h0)).Slabs(); slabs < 2 {
			t.Fatalf("node %d: chunk-0 lane holds %d slab(s); the test needs multi-slab growth", o, slabs)
		}
	}

	// Crash mid-append: tear the final slab of every replica's chunk-0
	// lane a few bytes short, cutting into the last (round-199) record.
	for _, o := range owners {
		sv := s.servers[o]
		buf := sv.wal.LaneBuffer(sv.chunkLane(h0))
		buf.Truncate(buf.Len() - 3)
	}
	// Correlated crash: every replica goes down BEFORE any recovers, so
	// rejoin resync finds no live peer holding the torn round-199 write.
	// (Sequential crash/recover would let the surviving replicas' retained
	// memory legitimately re-supply it — that is resync working, not a torn
	// prefix.)
	for _, o := range owners {
		s.Crash(cluster.NodeID(o))
	}
	for _, o := range owners {
		if err := s.Recover(cluster.NodeID(o)); err != nil {
			t.Fatalf("recover node %d: %v", o, err)
		}
	}

	// The consistent prefix: rounds 0..198 fully applied, the torn round
	// 199 invisible, replicas identical, untouched chunks intact.
	got := make([]byte, 4096)
	if n, err := s.ReadBlob(ctx, key, 0, got); err != nil || n != len(got) {
		t.Fatalf("read after recovery: (%d, %v)", n, err)
	}
	if !bytes.Equal(got[:1024], pattern(rounds-2)) {
		t.Fatal("chunk 0 after torn-tail recovery is not the last fully-logged write")
	}
	if !bytes.Equal(got[1024:], base[1024:]) {
		t.Fatal("untouched chunks diverged across checkpoint + recovery")
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}

	// The recovered servers keep appending into the recycled slabs: another
	// write and clean crash cycle must replay exactly.
	if _, err := s.WriteBlob(ctx, key, 0, pattern(1000)); err != nil {
		t.Fatal(err)
	}
	for _, o := range owners {
		s.Crash(cluster.NodeID(o))
	}
	for _, o := range owners {
		if err := s.Recover(cluster.NodeID(o)); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.ReadBlob(ctx, key, 0, got); err != nil || n != len(got) {
		t.Fatalf("read after second recovery: (%d, %v)", n, err)
	}
	if !bytes.Equal(got[:1024], pattern(1000)) {
		t.Fatal("write after torn-tail recovery did not survive the next crash")
	}
}

// TestRecoverTwoLaneCrashConverges extends the torn-slab test to the
// sharded log: checkpoint, refill two DIFFERENT lanes (two blobs whose
// chunk-0 placement hashes select distinct lanes), then crash mid-append
// on both lanes at once on every replica. Recovery must converge every
// replica to the same consistent prefix — the merged order-key prefix
// stops at the earlier torn record, so the later lane's clean records
// past it are discarded everywhere identically — and post-recovery
// appends must survive the next crash cycle.
func TestRecoverTwoLaneCrashConverges(t *testing.T) {
	// Replication == nodes: every server logs the same record sequence, so
	// identical tears recover to identical prefixes on every replica.
	s := New(cluster.New(cluster.Config{Nodes: 3, Seed: 33}), Config{ChunkSize: 1024, Replication: 3})
	ctx := storage.NewContext()

	// Two keys whose chunk 0 lands on different log lanes.
	sv0 := s.servers[0]
	keyA := ""
	keyB := ""
	laneOf := func(key string) int { return sv0.chunkLane(chunkID{key, 0}.ringHash()) }
	for i := 0; keyB == ""; i++ {
		key := fmt.Sprintf("lane-blob-%d", i)
		switch {
		case keyA == "":
			keyA = key
		case laneOf(key) != laneOf(keyA):
			keyB = key
		}
	}
	hA, hB := chunkID{keyA, 0}.ringHash(), chunkID{keyB, 0}.ringHash()

	pattern := func(seed int) []byte {
		p := make([]byte, 1024)
		for j := range p {
			p[j] = byte(seed + j*11)
		}
		return p
	}
	for _, key := range []string{keyA, keyB} {
		if err := s.CreateBlob(ctx, key); err != nil {
			t.Fatal(err)
		}
		if _, err := s.WriteBlob(ctx, key, 0, pattern(0)); err != nil {
			t.Fatal(err)
		}
	}
	s.CheckpointAll()

	// Interleave single-chunk overwrites: lane(A) and lane(B) fill in
	// lockstep, A's round-i record always logically before B's.
	const rounds = 10
	for i := 1; i <= rounds; i++ {
		if _, err := s.WriteBlob(ctx, keyA, 0, pattern(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.WriteBlob(ctx, keyB, 0, pattern(i+100)); err != nil {
			t.Fatal(err)
		}
	}

	// Crash mid-append on BOTH lanes of every server: each lane's final
	// record (A's and B's round-10 write) is torn a few bytes short.
	for _, sv := range s.servers {
		for _, h := range []uint64{hA, hB} {
			buf := sv.wal.LaneBuffer(sv.chunkLane(h))
			buf.Truncate(buf.Len() - 3)
		}
	}
	// Correlated crash: all replicas down before any recovers (see the
	// torn-slab test above — live peers' retained memory would otherwise
	// resync the torn write back in).
	for node := 0; node < 3; node++ {
		s.Crash(cluster.NodeID(node))
	}
	for node := 0; node < 3; node++ {
		if err := s.Recover(cluster.NodeID(node)); err != nil {
			t.Fatalf("recover node %d: %v", node, err)
		}
	}

	// The consistent prefix: A's torn round-10 write creates the earlier
	// key gap, so both blobs recover to round 9 — B's round-10 record is
	// discarded by the prefix rule (and torn) — on every replica alike.
	got := make([]byte, 1024)
	if _, err := s.ReadBlob(ctx, keyA, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(rounds-1)) {
		t.Fatalf("%s after two-lane torn recovery is not the last fully-merged write", keyA)
	}
	if _, err := s.ReadBlob(ctx, keyB, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(rounds-1+100)) {
		t.Fatalf("%s after two-lane torn recovery is not the last fully-merged write", keyB)
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("replicas diverged after two-lane crash recovery: %s", msg)
	}

	// Post-recovery appends extend the repaired lanes and survive the next
	// full crash cycle.
	if _, err := s.WriteBlob(ctx, keyA, 0, pattern(42)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteBlob(ctx, keyB, 0, pattern(43)); err != nil {
		t.Fatal(err)
	}
	for node := 0; node < 3; node++ {
		s.Crash(cluster.NodeID(node))
		if err := s.Recover(cluster.NodeID(node)); err != nil {
			t.Fatalf("second recover node %d: %v", node, err)
		}
	}
	if _, err := s.ReadBlob(ctx, keyA, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(42)) {
		t.Fatal("write after two-lane recovery did not survive the next crash")
	}
	if _, err := s.ReadBlob(ctx, keyB, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(43)) {
		t.Fatal("write after two-lane recovery did not survive the next crash")
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariants after post-recovery crash cycle: %s", msg)
	}
}

// TestRecoverySingleLaneConfig pins the WALLanes=1 degenerate case: the
// lane plumbing must behave exactly like the historical single log across
// a full mutation history and crash cycle.
func TestRecoverySingleLaneConfig(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 5, Seed: 7}), Config{ChunkSize: 64, Replication: 2, WALLanes: 1})
	ctx := storage.NewContext()
	expect := populate(t, s, ctx, sim.NewRNG(55))
	if got := s.servers[0].wal.Lanes(); got != 1 {
		t.Fatalf("WALLanes=1 built %d lanes", got)
	}
	for node := 0; node < 5; node++ {
		s.Crash(cluster.NodeID(node))
		if err := s.Recover(cluster.NodeID(node)); err != nil {
			t.Fatalf("recover node %d: %v", node, err)
		}
	}
	verifyAll(t, s, ctx, expect)
}

func TestWritesFailWhileCrashed(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 3, Seed: 5}), Config{ChunkSize: 64, Replication: 1})
	ctx := storage.NewContext()
	if err := s.CreateBlob(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	owners := s.descOwners("k")
	s.Crash(cluster.NodeID(owners[0]))
	if _, err := s.WriteBlob(ctx, "k", 0, []byte("x")); err == nil {
		t.Fatal("write succeeded against a crashed descriptor primary")
	}
	if err := s.Recover(cluster.NodeID(owners[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteBlob(ctx, "k", 0, []byte("x")); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}
