package blob

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Membership management: servers can join and leave the store at runtime,
// under live traffic. The consistent-hash ring keeps movement minimal (only
// keys whose replica set actually changed migrate), which is the operational
// argument for hash-placed object stores over directory-partitioned file
// systems.
//
// A membership change is an epoch-versioned, incremental, crash-safe
// migration (see the "Membership and elasticity semantics" section of the
// package doc):
//
//  1. A durable intent (RecMigrateBegin) is appended to every surviving
//     server's log BEFORE the ring mutates — the ARIES-style record that
//     lets Recover roll an interrupted migration forward.
//  2. The ring mutates under the member gate, so the epoch flip is atomic
//     with respect to in-flight foreground ops.
//  3. A reconcile sweep moves chunks in bounded, throttled batches on the
//     dispatch pool. Each batch is 2PC-logged: prepare markers on the
//     gained owners, buffered copy/delete records, then commit markers —
//     replay materializes a batch only at its commit marker, so a crash
//     leaves it fully applied or fully absent.
//  4. RecMigrateEnd closes the intent. A crash before the End record
//     replays an open intent and resumeMigration re-runs the reconcile
//     sweep, which is idempotent: placement already consistent means an
//     empty plan.
//
// The sweep is formulated as reconciliation against the CURRENT ring (owners
// missing or behind the freshest surviving copy receive it; holders outside
// the replica set drop theirs) rather than an old-vs-new ownership diff.
// That one formulation serves the live sweep, the crash roll-forward (where
// the pre-crash progress is unknown), and repeated resumption.

// ErrLastServer is returned when removal would empty the store.
var ErrLastServer = fmt.Errorf("blob: cannot remove the last server: %w", storage.ErrInvalidArg)

// migLane is the log lane carrying migration intents and batch markers.
// Lane 0 always exists (Config.WALLanes >= 1). Buffered copy/delete records
// ride the chunk's natural lane instead; the server-scoped order keys keep
// the merged replay in true append order across lanes.
const migLane = 0

// migrationTick is the virtual-time quantum the migration throttle sleeps
// when its token budget is exhausted; each tick refills
// Config.MigrationRateBytes.
const migrationTick = time.Millisecond

// AddServer joins a previously unused cluster node to the store and
// rebalances incrementally: every descriptor and chunk whose new replica
// set includes the node is copied there in throttled, crash-safe batches;
// replicas dropped from a set are deleted. Foreground traffic keeps
// running throughout — a join is a background reconcile, not a freeze.
func (s *Store) AddServer(ctx *storage.Context, node cluster.NodeID) error {
	if int(node) < 0 || int(node) >= len(s.servers) {
		return fmt.Errorf("blob: no node %d: %w", node, storage.ErrInvalidArg)
	}
	s.migrateMu.Lock()
	defer s.migrateMu.Unlock()
	if s.serving(int(node)) {
		return fmt.Errorf("blob: node %d already serving: %w", node, storage.ErrExists)
	}
	return s.runMembershipChange(ctx, migOpAdd, node)
}

// RemoveServer drains a server: its ring membership is dropped, all data it
// held primary-or-replica responsibility for is re-replicated onto the
// surviving owners in throttled, crash-safe batches, and its local state —
// memory AND log lanes — is cleared, so a later Recover or rejoin cannot
// resurrect pre-drain placement.
func (s *Store) RemoveServer(ctx *storage.Context, node cluster.NodeID) error {
	if int(node) < 0 || int(node) >= len(s.servers) {
		return fmt.Errorf("blob: no node %d: %w", node, storage.ErrInvalidArg)
	}
	s.migrateMu.Lock()
	defer s.migrateMu.Unlock()
	if !s.serving(int(node)) {
		return fmt.Errorf("blob: node %d not serving: %w", node, storage.ErrNotFound)
	}
	if s.ring.Size() <= 1 {
		return ErrLastServer
	}
	return s.runMembershipChange(ctx, migOpRemove, node)
}

// serving reports whether node is currently in the ring.
func (s *Store) serving(node int) bool {
	for _, m := range s.ring.Members() {
		if m == node {
			return true
		}
	}
	return false
}

// ServingNodes returns the nodes currently in the ring, ascending.
func (s *Store) ServingNodes() []cluster.NodeID {
	members := s.ring.Members()
	out := make([]cluster.NodeID, len(members))
	for i, m := range members {
		out[i] = cluster.NodeID(m)
	}
	return out
}

// runMembershipChange executes one join or drain end to end. The caller
// holds migrateMu, so the ring epoch is stable for the sweep's duration.
func (s *Store) runMembershipChange(ctx *storage.Context, op uint8, node cluster.NodeID) error {
	s.migSeq++
	intent := &migrationIntent{seq: s.migSeq, op: op, node: int64(node)}
	cg := s.directCharge(ctx)
	// Durable intent before any state changes: a crash at ANY later point
	// replays an open RecMigrateBegin and rolls the migration forward.
	s.logIntent(&cg, wal.RecMigrateBegin, intent, -1)
	s.migIntent.Store(intent)
	s.migrating.Add(1)
	defer s.migrating.Add(-1)
	// The epoch flip: exclusive on the member gate for an instant, so every
	// foreground op lands entirely on the old owner sets or entirely on the
	// new — never half and half.
	s.member.Lock()
	if op == migOpAdd {
		s.ring.Add(int(node))
	} else {
		s.ring.Remove(int(node))
	}
	s.member.Unlock()
	s.runMigration(ctx, intent)
	s.finishMigration(ctx, intent)
	return nil
}

// resumeMigration rolls an interrupted migration forward: Recover calls it
// once every server has been recovered and an open intent was replayed. If
// the crash preceded the epoch bump the reconcile sweep finds placement
// already consistent and the intent is simply closed; the drain of a
// removed node is likewise skipped when the ring still contains it.
func (s *Store) resumeMigration(ctx *storage.Context) {
	s.migrateMu.Lock()
	defer s.migrateMu.Unlock()
	intent := s.migIntent.Load()
	if intent == nil {
		return
	}
	if intent.seq > s.migSeq {
		s.migSeq = intent.seq
	}
	s.migrating.Add(1)
	defer s.migrating.Add(-1)
	s.runMigration(ctx, intent)
	s.finishMigration(ctx, intent)
}

// finishMigration drains a removed node, converges repair debt recorded
// during the sweep, and durably closes the intent.
func (s *Store) finishMigration(ctx *storage.Context, intent *migrationIntent) {
	cg := s.directCharge(ctx)
	skip := -1
	if intent.op == migOpRemove && !s.serving(int(intent.node)) {
		skip = int(intent.node)
		sv := s.servers[skip]
		sv.mu.Lock()
		sv.blobs = make(map[string]*descriptor)
		sv.mu.Unlock()
		sv.resetChunks()
		// Reset the drained node's log lanes along with its memory: a
		// populated log would let a later Recover or rejoin resurrect
		// pre-drain descriptors and chunks the survivors now own.
		sv.wal.ResetAll()
	}
	// Drain the debt the sweep recorded for targets it could not reach
	// (crash-wiped gained owners, fault-failed installs). Targets still
	// unreachable stay in debt here and converge via the repairNode pass
	// when they come back (Recover / SetDown(false)).
	s.Repair(ctx)
	s.logIntent(&cg, wal.RecMigrateEnd, intent, skip)
	s.migIntent.Store(nil)
}

// logIntent appends a RecMigrateBegin/RecMigrateEnd record to every
// surviving server's migration lane (skip excludes a just-drained node
// whose freshly reset log must not reopen the intent).
func (s *Store) logIntent(cg *charge, t wal.RecordType, intent *migrationIntent, skip int) {
	bp := hdrPool.Get().(*[]byte)
	*bp = appendMigrateIntent((*bp)[:0], intent.seq, intent.op, intent.node)
	for i, sv := range s.servers {
		if i == skip || sv.isWiped() {
			continue
		}
		s.walAppendLane(cg, sv, migLane, t, *bp, nil)
	}
	hdrPool.Put(bp)
}

// walAppendMigMark appends a prepare or commit batch marker to sv's
// migration lane.
func (s *Store) walAppendMigMark(cg *charge, sv *server, phase uint8, seq, batch uint64) {
	bp := hdrPool.Get().(*[]byte)
	*bp = appendMigrateMark((*bp)[:0], phase, seq, batch)
	s.walAppendLane(cg, sv, migLane, wal.RecMigrateBatch, *bp, nil)
	hdrPool.Put(bp)
}

// walAppendMigChunk appends a buffered chunk copy or delete to the chunk's
// natural lane; the data segment streams through the vectored append
// exactly like a foreground write.
func (s *Store) walAppendMigChunk(cg *charge, sv *server, phase uint8, h uint64, id chunkID, ver uint64, data []byte) {
	bp := hdrPool.Get().(*[]byte)
	*bp = appendMigrateChunkHeader((*bp)[:0], phase, id, ver)
	s.walAppendLane(cg, sv, sv.chunkLane(h), wal.RecMigrateBatch, *bp, data)
	hdrPool.Put(bp)
}

// runMigration reconciles descriptors, then moves chunks in bounded batches
// throttled by a virtual-time token bucket: each batch debits its byte
// footprint, and an exhausted budget sleeps migrationTick quanta (refilling
// MigrationRateBytes each) before the batch may proceed. One batch is in
// flight at a time, which bounds in-flight migration bytes on the pool.
func (s *Store) runMigration(ctx *storage.Context, intent *migrationIntent) {
	if s.migBatchHook != nil {
		// The boundary before any batch: intent durable, sweep not started.
		s.migBatchHook(-1)
	}
	cg := s.directCharge(ctx)
	s.migrateDescriptors(&cg)
	moves := s.migrationPlan()
	budget := s.cfg.MigrationRateBytes
	for batch := 0; len(moves) > 0; batch++ {
		n, bytes := 0, 0
		for n < len(moves) && n < s.cfg.MigrationBatchChunks &&
			(n == 0 || bytes+moves[n].bytes <= s.cfg.MigrationBatchBytes) {
			bytes += moves[n].bytes
			n++
		}
		for budget < bytes {
			cg.localCompute(migrationTick)
			budget += s.cfg.MigrationRateBytes
		}
		budget -= bytes
		s.runBatch(ctx, &cg, intent, uint64(batch), moves[:n])
		if s.migBatchHook != nil {
			s.migBatchHook(batch)
		}
		moves = moves[n:]
	}
}

// migrateDescriptors reconciles descriptor placement against the current
// ring. Gained owners receive the canonical descriptor OBJECT (pointer
// shared, not a copy) under its read latch, so every op past and future
// serializes on one latch per blob across the handover; holders outside the
// replica set drop their copy only after every owner holds one.
func (s *Store) migrateDescriptors(cg *charge) {
	seen := make(map[string]bool)
	for _, sv := range s.servers {
		if sv.isWiped() {
			continue
		}
		sv.mu.RLock()
		for key := range sv.blobs {
			seen[key] = true
		}
		sv.mu.RUnlock()
	}
	keys := make([]string, 0, len(seen))
	for key := range seen {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		owners := s.descOwners(key)
		if len(owners) == 0 {
			continue
		}
		_, d := s.canonicalDesc(key, owners)
		if d == nil {
			continue
		}
		d.latch.RLock()
		// Re-resolve under the latch: DeleteBlob holds it exclusively for
		// the whole drop, so a pointer mismatch here means the blob was
		// deleted (or deleted and recreated, in which case the new copy was
		// placed natively at the current epoch) between probe and lock.
		if _, cur := s.canonicalDesc(key, owners); cur != d {
			d.latch.RUnlock()
			continue
		}
		size := d.size
		for _, o := range owners {
			sv := s.servers[o]
			sv.mu.Lock()
			_, held := sv.blobs[key]
			if !held {
				sv.blobs[key] = d
			}
			sv.mu.Unlock()
			if !held {
				cg.metaOp(sv.node, 1)
				// Logged under the read latch: a concurrent writer needs
				// the latch exclusively to change the size, so the size
				// recorded here cannot interleave with a newer RecMeta on
				// this server's lane in the wrong order.
				s.walAppendMeta(cg, sv, wal.RecCreate, key, size)
			}
		}
		d.latch.RUnlock()
		for i, sv := range s.servers {
			if sv.isWiped() || containsNode(owners, i) {
				continue
			}
			sv.mu.Lock()
			_, held := sv.blobs[key]
			if held {
				delete(sv.blobs, key)
			}
			sv.mu.Unlock()
			if held {
				s.walAppendMeta(cg, sv, wal.RecDelete, key, 0)
			}
		}
	}
}

func containsNode(owners []int, node int) bool {
	for _, o := range owners {
		if o == node {
			return true
		}
	}
	return false
}

// migMove is one chunk the reconcile sweep must touch.
type migMove struct {
	id    chunkID
	h     uint64
	bytes int
}

// migrationPlan scans every surviving server's chunk table and returns, in
// sorted order, the chunks whose placement disagrees with the current ring:
// an owner missing the chunk or holding a version behind the freshest
// surviving copy, or a holder outside the replica set. The plan carries no
// placement snapshot — each batch task re-resolves owners and versions at
// execution time, so the same plan formulation serves fresh migrations and
// crash roll-forward alike.
func (s *Store) migrationPlan() []migMove {
	type chunkInfo struct {
		holders uint64
		debt    uint64
		maxVer  uint64
		bytes   int
	}
	infos := make(map[chunkID]*chunkInfo)
	for i, sv := range s.servers {
		if sv.isWiped() {
			continue
		}
		bit := uint64(1) << uint(i)
		sv.forEachChunk(func(id chunkID, data []byte, ver uint64) {
			ci := infos[id]
			if ci == nil {
				ci = &chunkInfo{}
				infos[id] = ci
			}
			ci.holders |= bit
			if ver > ci.maxVer {
				ci.maxVer = ver
			}
			if len(data) > ci.bytes {
				ci.bytes = len(data)
			}
		})
		// Debt records walk separately: a mask may sit on a server that
		// holds no copy of the chunk at all (the owed-target fallback in
		// runBatch parks one there), and orphaned masks are themselves a
		// reason to visit a chunk (see the need check below).
		sv.forEachDebt(func(id chunkID, mask uint64) {
			ci := infos[id]
			if ci == nil {
				ci = &chunkInfo{}
				infos[id] = ci
			}
			ci.debt |= mask
		})
	}
	ids := make([]chunkID, 0, len(infos))
	for id := range infos {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].key != ids[j].key {
			return ids[i].key < ids[j].key
		}
		return ids[i].idx < ids[j].idx
	})
	var moves []migMove
	for _, id := range ids {
		ci := infos[id]
		h := id.ringHash()
		var ownerBits uint64
		need := false
		for _, o := range s.ownersForHash(h) {
			ownerBits |= 1 << uint(o)
			if s.servers[o].chunkVer(h, id) < ci.maxVer {
				need = true
			}
		}
		if ci.holders&^ownerBits != 0 {
			need = true
		}
		// A debt mask naming a peer outside the new owner set is orphaned:
		// repairChunk services only owner targets, so the bit would count as
		// outstanding debt forever. Visiting the chunk lets runBatch scrub it.
		if ci.debt&^ownerBits != 0 {
			need = true
		}
		if need {
			moves = append(moves, migMove{id: id, h: h, bytes: ci.bytes})
		}
	}
	return moves
}

// migInstall is one in-memory chunk install deferred until the batch's
// commit markers are durable.
type migInstall struct {
	node int
	data []byte
	ver  uint64
}

// migResult is what one chunk's migration task hands back to the batch
// caller: the deferred installs and deletes, the repair debt owed by
// unreachable targets, and the bitmask of servers whose logs buffered a
// record (the batch's 2PC participants).
type migResult struct {
	mv       migMove
	installs []migInstall
	deletes  []int
	owed     uint64
	logged   uint64
}

// migTargets returns the owners that need a copy of the chunk: missing it
// or holding a version behind the freshest surviving copy.
func (s *Store) migTargets(h uint64, id chunkID) []int {
	var best uint64
	for _, sv := range s.servers {
		if sv.isWiped() {
			continue
		}
		if v := sv.chunkVer(h, id); v > best {
			best = v
		}
	}
	if best == 0 {
		return nil
	}
	var out []int
	for _, o := range s.ownersForHash(h) {
		if s.servers[o].chunkVer(h, id) < best {
			out = append(out, o)
		}
	}
	return out
}

// runBatch moves one bounded batch of chunks under the 2PC protocol:
// prepare markers on the live gained owners, buffered copy/delete records
// appended by the per-chunk fan tasks, commit markers on every participant,
// and only then the in-memory materialization — so the durable order is
// exactly "batch fully applied or fully absent" at any crash point.
func (s *Store) runBatch(ctx *storage.Context, cg *charge, intent *migrationIntent, batch uint64, moves []migMove) {
	var prep uint64
	for _, mv := range moves {
		for _, o := range s.migTargets(mv.h, mv.id) {
			// Soft-down targets participate (retained memory + log, like a
			// foreground write after the partition snapshot); only a
			// crash-wiped target is out of reach until Recover.
			if !s.servers[o].isWiped() {
				prep |= 1 << uint(o)
			}
		}
	}
	for i, sv := range s.servers {
		if prep&(1<<uint(i)) != 0 {
			s.walAppendMigMark(cg, sv, migPhasePrepare, intent.seq, batch)
		}
	}
	results := make([]migResult, len(moves))
	fan := s.newFan()
	for i := range moves {
		i := i
		mv := moves[i]
		t := fan.task(taskFunc)
		t.fn = func(tcg *charge) error {
			results[i] = s.migrateChunk(tcg, mv)
			return nil
		}
		fan.spawn(t)
	}
	fan.join(ctx)
	var parts uint64
	for i := range results {
		parts |= results[i].logged
	}
	for i, sv := range s.servers {
		if parts&(1<<uint(i)) != 0 {
			s.walAppendMigMark(cg, sv, migPhaseCommit, intent.seq, batch)
		}
	}
	// Commit markers are durable; now materialize. Installs are version
	// guarded: a foreground write that advanced the chunk past the copied
	// version while the batch was in flight wins, exactly as it does at
	// replay (recovery.go applies buffered copies under the same guard).
	for i := range results {
		r := &results[i]
		for _, in := range r.installs {
			s.servers[in.node].setChunkIfNewer(r.mv.h, r.mv.id, append([]byte(nil), in.data...), in.ver)
		}
		for _, n := range r.deletes {
			s.servers[n].deleteChunk(r.mv.h, r.mv.id)
		}
		if r.owed != 0 {
			// Record the debt on every reachable fresh owner, after the
			// installs above so the debt-on-fresh-holder invariant holds.
			recorded := false
			for _, o := range s.ownersForHash(r.mv.h) {
				sv := s.servers[o]
				if sv.isDown() || sv.isWiped() || r.owed&(1<<uint(o)) != 0 {
					continue
				}
				if sv.chunkVer(r.mv.h, r.mv.id) == 0 {
					continue
				}
				s.recordDebt(cg, sv, r.mv.h, r.mv.id, r.owed)
				recorded = true
			}
			if !recorded {
				// Every fresh owner is down or gone from the owner set (the
				// bytes may survive only on strays or down nodes). The
				// checked-read path unions debt across CURRENT owners only,
				// so the record must land on one: park the mask on each
				// reachable owed target itself. A live-but-empty gained
				// owner then reads as stale rather than serving sparse
				// zeros, and repair drains the self-record once a fresh
				// source rejoins.
				for _, o := range s.ownersForHash(r.mv.h) {
					sv := s.servers[o]
					if r.owed&(1<<uint(o)) == 0 || sv.isDown() || sv.isWiped() {
						continue
					}
					s.recordDebt(cg, sv, r.mv.h, r.mv.id, r.owed)
				}
			}
		}
		s.scrubDebt(cg, r.mv.h, r.mv.id)
	}
	s.revalidateBatch(cg, results)
}

// scrubDebt drops, on every non-wiped server, the chunk's debt bits naming
// peers outside the current owner set. A membership change orphans such
// bits: the named peer's copy is deleted by this same sweep (or was never
// made), it will never serve the chunk again, and repairChunk services
// only owner targets — an orphaned bit would otherwise count as
// outstanding repair debt forever. Claims about current owners are
// untouched (a concurrent degraded write resolves its owner set after the
// epoch flip, so every live claim names current owners only). The reduced
// mask is logged with recordDebt's full-mask overwrite semantics, under
// the stripe lock, so replay converges to the same bookkeeping.
func (s *Store) scrubDebt(cg *charge, h uint64, id chunkID) {
	var ownerBits uint64
	for _, o := range s.ownersForHash(h) {
		ownerBits |= 1 << uint(o)
	}
	for _, sv := range s.servers {
		if sv.isWiped() {
			continue
		}
		st := sv.stripe(h)
		st.mu.Lock()
		if mask, ok := st.debt[id]; ok && mask&^ownerBits != 0 {
			mask &= ownerBits
			sv.setDebtLocked(st, id, mask)
			s.walAppendChunk(cg, sv, wal.RecRepairNeeded, h, id, 0, mask, nil)
			tracef("scrubDebt node=%d id=%s/%d mask=%x", sv.node, id.key, id.idx, mask)
		}
		st.mu.Unlock()
	}
}

// migrateChunk reconciles one chunk's replica set as a fan task. It
// performs the durable work (buffered copy/delete records, cost charges)
// and defers the in-memory effects to the batch caller, which applies them
// only after the commit markers land.
func (s *Store) migrateChunk(cg *charge, mv migMove) migResult {
	res := migResult{mv: mv}
	h, id := mv.h, mv.id
	owners := s.ownersForHash(h)
	var ownerBits uint64
	for _, o := range owners {
		ownerBits |= 1 << uint(o)
	}
	// Survey the surviving holders: debt union and source candidates.
	type migSrc struct {
		sv    *server
		node  int
		ver   uint64
		stale bool
		down  bool
	}
	var rawOwed, holderBits uint64
	var cands []migSrc
	for i, sv := range s.servers {
		if sv.isWiped() {
			continue
		}
		ver := sv.chunkVer(h, id)
		if ver == 0 {
			continue
		}
		holderBits |= 1 << uint(i)
		rawOwed |= sv.debtMask(h, id)
	}
	for i, sv := range s.servers {
		if holderBits&(1<<uint(i)) == 0 {
			continue
		}
		cands = append(cands, migSrc{
			sv:    sv,
			node:  i,
			ver:   sv.chunkVer(h, id),
			stale: rawOwed&(1<<uint(i)) != 0,
			down:  sv.isDown(),
		})
	}
	res.owed = rawOwed & ownerBits
	// Source order: fresh before stale, live before down, higher version
	// first — the copy every destination receives is the best survivor.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].stale != cands[j].stale {
			return !cands[i].stale
		}
		if cands[i].down != cands[j].down {
			return !cands[i].down
		}
		if cands[i].ver != cands[j].ver {
			return cands[i].ver > cands[j].ver
		}
		return cands[i].node < cands[j].node
	})
	var src *migSrc
	var data []byte
	var srcVer uint64
	for ci := range cands {
		c := &cands[ci]
		if err := s.faultCheck(cg, c.sv.node, cluster.FaultDiskRead); err != nil {
			continue
		}
		d, ver, ok := c.sv.copyChunk(h, id)
		if !ok {
			continue // raced a concurrent delete
		}
		src, data, srcVer = c, d, ver
		break
	}
	if src == nil {
		// No readable source survives: every behind owner goes into debt
		// and the stray copies are retained — they are the only bytes left,
		// and repairDrain converges placement once a source is reachable.
		for _, o := range owners {
			if s.servers[o].chunkVer(h, id) == 0 {
				res.owed |= 1 << uint(o)
			}
		}
		return res
	}
	// One source read serves every destination.
	cg.diskRead(src.sv.node, len(data))
	for _, o := range owners {
		sv := s.servers[o]
		if sv.chunkVer(h, id) >= srcVer {
			continue
		}
		bit := uint64(1) << uint(o)
		if sv.isWiped() {
			// A crash-wiped gained owner cannot take the copy — its memory
			// is gone until Recover rebuilds it from the WAL alone — so the
			// batch records repair debt and resyncNode converges it after
			// recovery. A soft-DOWN owner, by contrast, receives the copy
			// below exactly as it receives a foreground write after the
			// partition snapshot (retained memory + log keep it consistent):
			// delivering now is what keeps a drained node from being wiped
			// at finishMigration while still holding a chunk's only fresh
			// bytes, with nothing but an undrainable debt mask left behind.
			res.owed |= bit
			continue
		}
		if err := s.faultCheck(cg, sv.node, cluster.FaultDiskWrite); err != nil {
			res.owed |= bit
			continue
		}
		cg.rpc(sv.node, len(data), 64, 0)
		cg.diskWrite(sv.node, len(data))
		s.walAppendMigChunk(cg, sv, migPhaseChunk, h, id, srcVer, data)
		res.logged |= bit
		if src.stale {
			// A copy from a stale source misses the same writes the source
			// does; the destination inherits the debt.
			res.owed |= bit
		}
		res.installs = append(res.installs, migInstall{node: o, data: data, ver: srcVer})
	}
	// Holders outside the replica set drop their copy (buffered, so the
	// drop replays atomically with the batch's installs).
	for i, sv := range s.servers {
		if holderBits&(1<<uint(i)) == 0 || ownerBits&(1<<uint(i)) != 0 {
			continue
		}
		s.walAppendMigChunk(cg, sv, migPhaseDelete, h, id, 0, nil)
		res.logged |= 1 << uint(i)
		res.deletes = append(res.deletes, i)
	}
	return res
}

// revalidateBatch re-checks each installed chunk against its blob's current
// extent after the batch committed. The copy source may have been a holder
// that missed a concurrent DeleteBlob or TruncateBlob (those fan out to the
// owners of record, and a stray holder is no longer one), so an install can
// resurrect bytes past the blob's end; the fix-ups here are logged plainly
// (RecChunkDelete / RecChunkTruncate), after the batch, so replay converges
// to the same state.
func (s *Store) revalidateBatch(cg *charge, results []migResult) {
	for i := range results {
		r := &results[i]
		if len(r.installs) == 0 {
			continue
		}
		h, id := r.mv.h, r.mv.id
		_, d, err := s.primaryDesc(id.key)
		keep := int64(0)
		if err == nil {
			d.latch.RLock()
			size := d.size
			d.latch.RUnlock()
			keep = size - id.idx*int64(s.cfg.ChunkSize)
		}
		switch {
		case keep <= 0:
			// Blob deleted (or truncated away) while the copy was in
			// flight: drop the installs we made, and only those (the
			// version guard skips chunks a newer write has since replaced).
			for _, in := range r.installs {
				sv := s.servers[in.node]
				if sv.chunkVer(h, id) != in.ver {
					continue
				}
				sv.deleteChunk(h, id)
				s.walAppendChunk(cg, sv, wal.RecChunkDelete, h, id, 0, 0, nil)
			}
		case keep < int64(s.cfg.ChunkSize):
			for _, in := range r.installs {
				if int64(len(in.data)) <= keep {
					continue
				}
				sv := s.servers[in.node]
				if sv.chunkVer(h, id) != in.ver {
					continue
				}
				sv.trimChunk(h, id, keep)
				s.walAppendChunk(cg, sv, wal.RecChunkTruncate, h, id, keep, 0, nil)
			}
		}
	}
}

// setChunkIfNewer installs data at ver unless the server already holds the
// chunk at that version or newer (a concurrent foreground write won the
// race). Returns whether the install happened.
func (sv *server) setChunkIfNewer(h uint64, id chunkID, data []byte, ver uint64) bool {
	st := sv.stripe(h)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.ver[id] >= ver {
		return false
	}
	st.m[id] = data
	st.ver[id] = ver
	return true
}
