package blob

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Membership management: servers can join and leave the store at runtime.
// The consistent-hash ring keeps movement minimal (only keys whose replica
// set actually changed migrate), which is the operational argument for
// hash-placed object stores over directory-partitioned file systems.

// ErrLastServer is returned when removal would empty the store.
var ErrLastServer = fmt.Errorf("blob: cannot remove the last server: %w", storage.ErrInvalidArg)

// AddServer joins a previously unused cluster node to the store and
// rebalances: every descriptor and chunk whose new replica set includes
// the node is copied there; replicas dropped from a set are deleted.
func (s *Store) AddServer(ctx *storage.Context, node cluster.NodeID) error {
	if int(node) < 0 || int(node) >= len(s.servers) {
		return fmt.Errorf("blob: no node %d: %w", node, storage.ErrInvalidArg)
	}
	members := s.ring.Members()
	for _, m := range members {
		if m == int(node) {
			return fmt.Errorf("blob: node %d already serving: %w", node, storage.ErrExists)
		}
	}
	before := s.ownershipSnapshot()
	s.ring.Add(int(node))
	return s.migrate(ctx, before)
}

// RemoveServer drains a server: its ring membership is dropped, all data
// it held primary-or-replica responsibility for is re-replicated onto the
// surviving owners, and its local state is cleared.
func (s *Store) RemoveServer(ctx *storage.Context, node cluster.NodeID) error {
	if int(node) < 0 || int(node) >= len(s.servers) {
		return fmt.Errorf("blob: no node %d: %w", node, storage.ErrInvalidArg)
	}
	found := false
	for _, m := range s.ring.Members() {
		if m == int(node) {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("blob: node %d not serving: %w", node, storage.ErrNotFound)
	}
	if s.ring.Size() <= 1 {
		return ErrLastServer
	}
	before := s.ownershipSnapshot()
	s.ring.Remove(int(node))
	if err := s.migrate(ctx, before); err != nil {
		return err
	}
	// Clear the drained server.
	sv := s.servers[int(node)]
	sv.mu.Lock()
	sv.blobs = make(map[string]*descriptor)
	sv.chunks = make(map[string][]byte)
	sv.mu.Unlock()
	return nil
}

// ServingNodes returns the nodes currently in the ring, ascending.
func (s *Store) ServingNodes() []cluster.NodeID {
	members := s.ring.Members()
	out := make([]cluster.NodeID, len(members))
	for i, m := range members {
		out[i] = cluster.NodeID(m)
	}
	return out
}

// ownership captures, for one key (descriptor) or chunk, who held it before
// a membership change.
type ownership struct {
	descOwners  map[string][]int
	chunkOwners map[string][]int
	// sizes and chunk data snapshot from the primaries, used as the
	// migration source of truth.
	descSizes map[string]int64
}

// ownershipSnapshot records current placements before the ring mutates.
func (s *Store) ownershipSnapshot() *ownership {
	o := &ownership{
		descOwners:  make(map[string][]int),
		chunkOwners: make(map[string][]int),
		descSizes:   make(map[string]int64),
	}
	for i, sv := range s.servers {
		sv.mu.RLock()
		for key, d := range sv.blobs {
			if _, seen := o.descOwners[key]; !seen {
				o.descOwners[key] = s.descOwners(key)
			}
			if owners := o.descOwners[key]; len(owners) > 0 && owners[0] == i {
				o.descSizes[key] = d.size
			}
		}
		for ck := range sv.chunks {
			if _, seen := o.chunkOwners[ck]; !seen {
				key, idx, ok := splitChunkKey(ck)
				if ok {
					o.chunkOwners[ck] = s.chunkOwners(key, idx)
				}
			}
		}
		sv.mu.RUnlock()
	}
	return o
}

// migrate reconciles placements after a ring change: for every descriptor
// and chunk, copy to gained owners and delete from lost ones. Costs are
// charged per moved byte (read source disk + wire + destination disk).
func (s *Store) migrate(ctx *storage.Context, before *ownership) error {
	for key, oldOwners := range before.descOwners {
		newOwners := s.descOwners(key)
		size := before.descSizes[key]
		for _, gained := range diff(newOwners, oldOwners) {
			sv := s.servers[gained]
			sv.mu.Lock()
			if _, ok := sv.blobs[key]; !ok {
				sv.blobs[key] = &descriptor{size: size}
			}
			sv.mu.Unlock()
			s.cluster.MetaOp(ctx.Clock, sv.node, 1)
			s.walAppend(ctx, sv, wal.RecCreate, encMeta(key, size))
		}
		for _, lost := range diff(oldOwners, newOwners) {
			sv := s.servers[lost]
			sv.mu.Lock()
			delete(sv.blobs, key)
			sv.mu.Unlock()
			s.walAppend(ctx, sv, wal.RecDelete, encMeta(key, 0))
		}
	}

	for ck, oldOwners := range before.chunkOwners {
		newOwners := oldOwners
		if key, idx, ok := splitChunkKey(ck); ok {
			newOwners = s.chunkOwners(key, idx)
		}
		gained := diff(newOwners, oldOwners)
		lost := diff(oldOwners, newOwners)
		if len(gained) == 0 && len(lost) == 0 {
			continue
		}
		// Source: the first old owner still holding the bytes.
		var data []byte
		var src *server
		for _, o := range oldOwners {
			sv := s.servers[o]
			sv.mu.RLock()
			if c, ok := sv.chunks[ck]; ok {
				data = append([]byte(nil), c...)
				src = sv
			}
			sv.mu.RUnlock()
			if src != nil {
				break
			}
		}
		for _, g := range gained {
			sv := s.servers[g]
			if src != nil {
				s.cluster.DiskRead(ctx.Clock, src.node, len(data))
				s.cluster.RPC(ctx.Clock, sv.node, len(data), 64, 0)
				s.cluster.DiskWrite(ctx.Clock, sv.node, len(data))
			}
			sv.mu.Lock()
			sv.chunks[ck] = append([]byte(nil), data...)
			sv.mu.Unlock()
			s.walAppend(ctx, sv, wal.RecWrite, encChunk(ck, 0, data))
		}
		for _, l := range lost {
			sv := s.servers[l]
			sv.mu.Lock()
			delete(sv.chunks, ck)
			sv.mu.Unlock()
			s.walAppend(ctx, sv, wal.RecDelete, encChunk(ck, 0, nil))
		}
	}
	return nil
}

// diff returns the members of a not present in b.
func diff(a, b []int) []int {
	inB := make(map[int]bool, len(b))
	for _, x := range b {
		inB[x] = true
	}
	var out []int
	for _, x := range a {
		if !inB[x] {
			out = append(out, x)
		}
	}
	return out
}
