package blob

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Membership management: servers can join and leave the store at runtime.
// The consistent-hash ring keeps movement minimal (only keys whose replica
// set actually changed migrate), which is the operational argument for
// hash-placed object stores over directory-partitioned file systems.
// Membership changes bump the ring epoch, lazily invalidating the
// placement cache; steady-state lookups resume caching at the new epoch.

// ErrLastServer is returned when removal would empty the store.
var ErrLastServer = fmt.Errorf("blob: cannot remove the last server: %w", storage.ErrInvalidArg)

// AddServer joins a previously unused cluster node to the store and
// rebalances: every descriptor and chunk whose new replica set includes
// the node is copied there; replicas dropped from a set are deleted.
func (s *Store) AddServer(ctx *storage.Context, node cluster.NodeID) error {
	if int(node) < 0 || int(node) >= len(s.servers) {
		return fmt.Errorf("blob: no node %d: %w", node, storage.ErrInvalidArg)
	}
	members := s.ring.Members()
	for _, m := range members {
		if m == int(node) {
			return fmt.Errorf("blob: node %d already serving: %w", node, storage.ErrExists)
		}
	}
	before := s.ownershipSnapshot()
	s.ring.Add(int(node))
	return s.migrate(ctx, before)
}

// RemoveServer drains a server: its ring membership is dropped, all data
// it held primary-or-replica responsibility for is re-replicated onto the
// surviving owners, and its local state is cleared.
func (s *Store) RemoveServer(ctx *storage.Context, node cluster.NodeID) error {
	if int(node) < 0 || int(node) >= len(s.servers) {
		return fmt.Errorf("blob: no node %d: %w", node, storage.ErrInvalidArg)
	}
	found := false
	for _, m := range s.ring.Members() {
		if m == int(node) {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("blob: node %d not serving: %w", node, storage.ErrNotFound)
	}
	if s.ring.Size() <= 1 {
		return ErrLastServer
	}
	before := s.ownershipSnapshot()
	s.ring.Remove(int(node))
	if err := s.migrate(ctx, before); err != nil {
		return err
	}
	// Clear the drained server.
	sv := s.servers[int(node)]
	sv.mu.Lock()
	sv.blobs = make(map[string]*descriptor)
	sv.mu.Unlock()
	sv.resetChunks()
	return nil
}

// ServingNodes returns the nodes currently in the ring, ascending.
func (s *Store) ServingNodes() []cluster.NodeID {
	members := s.ring.Members()
	out := make([]cluster.NodeID, len(members))
	for i, m := range members {
		out[i] = cluster.NodeID(m)
	}
	return out
}

// ownership captures, for every descriptor and chunk, who held it before
// a membership change.
type ownership struct {
	descOwners  map[string][]int
	chunkOwners map[chunkID][]int
	// sizes snapshot from the primaries, used as the migration source of
	// truth.
	descSizes map[string]int64
}

// ownershipSnapshot records current placements before the ring mutates.
func (s *Store) ownershipSnapshot() *ownership {
	o := &ownership{
		descOwners:  make(map[string][]int),
		chunkOwners: make(map[chunkID][]int),
		descSizes:   make(map[string]int64),
	}
	// Lookups go straight to the ring (ownersUncachedForHash): the epoch
	// bump that follows this snapshot would discard any entries cached
	// here before they could ever be served.
	for i, sv := range s.servers {
		sv.mu.RLock()
		for key, d := range sv.blobs {
			if _, seen := o.descOwners[key]; !seen {
				o.descOwners[key] = s.ownersUncachedForHash(descRingHash(key))
			}
			if owners := o.descOwners[key]; len(owners) > 0 && owners[0] == i {
				o.descSizes[key] = d.size
			}
		}
		sv.mu.RUnlock()
		sv.forEachChunk(func(id chunkID, _ []byte, _ uint64) {
			if _, seen := o.chunkOwners[id]; !seen {
				o.chunkOwners[id] = s.ownersUncachedForHash(id.ringHash())
			}
		})
	}
	return o
}

// migrate reconciles placements after a ring change: for every descriptor
// and chunk, copy to gained owners and delete from lost ones. Costs are
// charged per moved byte (read source disk + wire + destination disk).
// Chunk moves are scatter-gathered across the worker pool — each chunk is
// an independent fan task — and both sweeps iterate in sorted order so the
// folded virtual time is deterministic despite the map-shaped snapshot.
func (s *Store) migrate(ctx *storage.Context, before *ownership) error {
	descKeys := make([]string, 0, len(before.descOwners))
	for key := range before.descOwners {
		descKeys = append(descKeys, key)
	}
	sort.Strings(descKeys)
	cg := s.directCharge(ctx)
	for _, key := range descKeys {
		oldOwners := before.descOwners[key]
		newOwners := s.descOwners(key)
		size := before.descSizes[key]
		for _, gained := range diff(newOwners, oldOwners) {
			sv := s.servers[gained]
			sv.mu.Lock()
			if _, ok := sv.blobs[key]; !ok {
				sv.blobs[key] = &descriptor{size: size}
			}
			sv.mu.Unlock()
			s.cluster.MetaOp(ctx.Clock, sv.node, 1)
			s.walAppendMeta(&cg, sv, wal.RecCreate, key, size)
		}
		for _, lost := range diff(oldOwners, newOwners) {
			sv := s.servers[lost]
			sv.mu.Lock()
			delete(sv.blobs, key)
			sv.mu.Unlock()
			s.walAppendMeta(&cg, sv, wal.RecDelete, key, 0)
		}
	}

	ids := make([]chunkID, 0, len(before.chunkOwners))
	for id := range before.chunkOwners {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].key != ids[j].key {
			return ids[i].key < ids[j].key
		}
		return ids[i].idx < ids[j].idx
	})
	fan := s.newFan()
	for _, id := range ids {
		id := id
		oldOwners := before.chunkOwners[id]
		t := fan.task(taskFunc)
		t.fn = func(tcg *charge) error {
			s.migrateChunk(tcg, id, oldOwners)
			return nil
		}
		fan.spawn(t)
	}
	fan.join(ctx)
	return nil
}

// migrateChunk reconciles one chunk's replica set after a ring change. It
// runs as a fan task: stripe locks guard the chunk tables, the placement
// cache and WAL are concurrency-safe, and costs fold at the migrate join.
// Migration appends ride the vectored WAL path (walAppendChunk): the moved
// chunk's bytes are copied once into the destination log, not staged.
func (s *Store) migrateChunk(cg *charge, id chunkID, oldOwners []int) {
	h := id.ringHash()
	newOwners := s.ownersForHash(h)
	gained := diff(newOwners, oldOwners)
	lost := diff(oldOwners, newOwners)
	if len(gained) == 0 && len(lost) == 0 {
		return
	}
	// Outstanding repair debt follows the chunk across the move: union the
	// masks the old owners hold, then drop bits of nodes that are no longer
	// owners — a node outside the replica set serves nothing, so nothing is
	// owed to it anymore.
	var owed uint64
	for _, o := range oldOwners {
		owed |= s.servers[o].debtMask(h, id)
	}
	var ownerBits uint64
	for _, o := range newOwners {
		if o < 64 {
			ownerBits |= 1 << uint(o)
		}
	}
	owed &= ownerBits
	// Source: prefer a fresh old owner (debt bit clear) with the highest
	// version; fall back to a stale copy only when nothing fresh survives.
	// The copy is made under the stripe lock so a concurrent writer cannot
	// tear it.
	var data []byte
	var src *server
	var srcVer uint64
	srcStale := true
	for _, o := range oldOwners {
		sv := s.servers[o]
		c, ver, ok := sv.copyChunk(h, id)
		if !ok {
			continue
		}
		stale := o < 64 && owed&(1<<uint(o)) != 0
		if src == nil || (!stale && srcStale) || (stale == srcStale && ver > srcVer) {
			data, src, srcVer, srcStale = c, sv, ver, stale
		}
	}
	for _, g := range gained {
		sv := s.servers[g]
		if src != nil {
			cg.diskRead(src.node, len(data))
			cg.rpc(sv.node, len(data), 64, 0)
			cg.diskWrite(sv.node, len(data))
		}
		// A copy taken from a stale source misses the same writes the
		// source does; the gained owner inherits the debt.
		if srcStale && src != nil && g < 64 {
			owed |= 1 << uint(g)
		}
		sv.setChunk(h, id, append([]byte(nil), data...), srcVer)
		s.walAppendChunk(cg, sv, wal.RecWrite, h, id, 0, srcVer, data)
	}
	for _, l := range lost {
		sv := s.servers[l]
		sv.deleteChunk(h, id)
		s.walAppendChunk(cg, sv, wal.RecChunkDelete, h, id, 0, 0, nil)
	}
	if owed != 0 {
		for _, o := range newOwners {
			sv := s.servers[o]
			if sv.isDown() {
				continue
			}
			s.recordDebt(cg, sv, h, id, owed)
		}
	}
}

// diff returns the members of a not present in b.
func diff(a, b []int) []int {
	inB := make(map[int]bool, len(b))
	for _, x := range b {
		inB[x] = true
	}
	var out []int
	for _, x := range a {
		if !inB[x] {
			out = append(out, x)
		}
	}
	return out
}
