package blob

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/wal"
)

// LogRecords replays a server's write-ahead log — all lanes, merged into
// logical append order by the records' order keys — and returns its
// records. Tests use this to assert that every namespace mutation was made
// durable before being acknowledged.
func (s *Store) LogRecords(node cluster.NodeID) ([]wal.Record, error) {
	sv := s.servers[int(node)]
	var recs []wal.Record
	err := sv.wal.ReplayMerged(func(rec wal.Record) error {
		p := make([]byte, len(rec.Payload))
		copy(p, rec.Payload)
		rec.Payload = p
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("blob: replay node %d: %w", node, err)
	}
	return recs, nil
}

// Crash simulates a server losing its volatile state: the in-memory
// descriptor and chunk tables are wiped (the WAL, being durable, survives)
// and the server is marked down.
func (s *Store) Crash(node cluster.NodeID) {
	sv := s.servers[int(node)]
	sv.mu.Lock()
	sv.blobs = make(map[string]*descriptor)
	sv.down = true
	sv.mu.Unlock()
	sv.resetChunks()
}

// prepWrite is the buffered 2PC chunk write awaiting its commit record
// during replay. At most one is pending per chunk: the per-blob latch
// serializes transactions and each transaction prepares a chunk exactly
// once, so a newer prepare supersedes any dangling one a torn transaction
// left behind — which is also what keeps a later commit from resurrecting
// stale prepared bytes.
type prepWrite struct {
	within int64
	data   []byte
}

// applyRecovered merges one chunk write into the replayed chunk table.
func applyRecovered(chunks map[chunkID][]byte, id chunkID, within int64, data []byte) {
	chunk := chunks[id]
	need := within + int64(len(data))
	if int64(len(chunk)) < need {
		grown := make([]byte, need)
		copy(grown, chunk)
		chunk = grown
	}
	copy(chunk[within:], data)
	chunks[id] = chunk
}

// Recover rebuilds a server's volatile state by replaying its write-ahead
// log, then marks the server up again. Every mutation path appends a
// self-describing record (codec.go) whose payload shape is determined by
// its type — meta records carry (key, size), chunk records carry
// (chunkID, within, data) — so replay reconstructs descriptors and chunk
// bytes exactly without parsing string keys.
//
// Multi-chunk (2PC) writes replay all-or-nothing: RecPrepWrite records are
// buffered per chunk and materialize only when that chunk's RecChunkCommit
// arrives; a RecAbort discards them, and prepares still pending when the
// log ends (a crash mid-transaction) are dropped.
//
// The log is a sharded lane log (wal.MultiLog): replay merges the lanes by
// the server-scoped order key stamped into every record, yielding exactly
// the logical append order — and exactly an order-key PREFIX of it. A torn
// lane tail creates a key gap, and every record logically after the gap,
// on any lane, is discarded with it; since the key order respects the
// order mutations were issued, the recovered state is always a state the
// live server actually passed through (a delete can never survive the
// chunk drops that preceded it, a commit never its prepares).
//
// Recovery also repairs the media: wal.MultiLog.RecoverMerged truncates
// each lane past its last record inside the merged prefix — torn garbage
// AND clean-but-after-gap records — and re-bases the order-key counter, so
// appends accepted after recovery extend the prefix instead of hiding
// behind bytes a later replay would trip over or stop before.
func (s *Store) Recover(node cluster.NodeID) error {
	sv := s.servers[int(node)]
	sv.mu.Lock()
	blobs := make(map[string]*descriptor)
	chunks := make(map[chunkID][]byte)
	var pending map[chunkID]prepWrite
	err := sv.wal.RecoverMerged(func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecCreate, wal.RecMeta:
			key, size, err := decMeta(rec.Payload)
			if err != nil {
				return err
			}
			d, ok := blobs[key]
			if !ok {
				d = &descriptor{}
				blobs[key] = d
			}
			d.size = size
			return nil
		case wal.RecWrite:
			id, within, data, err := decChunkPayload(rec.Payload)
			if err != nil {
				return err
			}
			applyRecovered(chunks, id, within, data)
			return nil
		case wal.RecPrepWrite:
			id, within, data, err := decChunkPayload(rec.Payload)
			if err != nil {
				return err
			}
			if pending == nil {
				pending = make(map[chunkID]prepWrite)
			}
			// rec.Payload is a fresh per-record buffer; retaining data is
			// safe. Overwrite, never accumulate: only the latest prepare
			// belongs to the transaction whose commit may follow.
			pending[id] = prepWrite{within: within, data: data}
			return nil
		case wal.RecChunkCommit:
			id, _, _, err := decChunkPayload(rec.Payload)
			if err != nil {
				return err
			}
			if p, ok := pending[id]; ok {
				applyRecovered(chunks, id, p.within, p.data)
				delete(pending, id)
			}
			return nil
		case wal.RecAbort:
			id, _, _, err := decChunkPayload(rec.Payload)
			if err != nil {
				return err
			}
			delete(pending, id)
			return nil
		case wal.RecDelete:
			key, _, err := decMeta(rec.Payload)
			if err != nil {
				return err
			}
			delete(blobs, key)
			return nil
		case wal.RecChunkDelete:
			id, _, _, err := decChunkPayload(rec.Payload)
			if err != nil {
				return err
			}
			delete(chunks, id)
			return nil
		case wal.RecTruncate:
			key, size, err := decMeta(rec.Payload)
			if err != nil {
				return err
			}
			if d, ok := blobs[key]; ok {
				d.size = size
			}
			return nil
		case wal.RecChunkTruncate:
			id, keep, _, err := decChunkPayload(rec.Payload)
			if err != nil {
				return err
			}
			if c, ok := chunks[id]; ok && int64(len(c)) > keep {
				chunks[id] = c[:keep]
			}
			return nil
		case wal.RecCommit:
			return nil // transaction-level marker; state is in the chunk records
		default:
			return fmt.Errorf("blob: recover node %d: unknown record type %v", node, rec.Type)
		}
	})
	if err != nil {
		sv.mu.Unlock()
		return fmt.Errorf("blob: recover node %d: %w", node, err)
	}
	sv.blobs = blobs
	sv.mu.Unlock()
	// Scatter the rebuilt chunks across the worker pool; insertions into
	// distinct lock stripes proceed in parallel and the map is read-only
	// here, so order does not matter. sv.mu is deliberately NOT held
	// across this wait: a worker must never block on a lock whose holder
	// is waiting on the pool (see the dispatch.go contract).
	sv.resetChunks()
	ids := make([]chunkID, 0, len(chunks))
	for id := range chunks {
		ids = append(ids, id)
	}
	parallelDo(len(ids), func(i int) {
		id := ids[i]
		sv.setChunk(id.ringHash(), id, chunks[id])
	})
	sv.mu.Lock()
	sv.down = false
	sv.mu.Unlock()
	return nil
}

// Checkpoint rewrites a server's write-ahead log as a snapshot of its
// current volatile state — one record per descriptor and chunk replica —
// and drops the old log content, bounding log growth the way real object
// stores compact their journals. Recovery after a checkpoint replays the
// snapshot exactly. The server must be quiescent (no concurrent mutations)
// for the duration, the same discipline Crash and Recover require.
func (s *Store) Checkpoint(node cluster.NodeID) {
	sv := s.servers[int(node)]
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.down {
		// A crashed server's volatile state is empty; its WAL is the only
		// recovery source. Checkpointing it would snapshot nothing and
		// discard that source — silent data loss. Skip until recovered.
		return
	}
	// Drop every lane and restart the order keys at 1: the snapshot below
	// is a fresh logical history (merged replay requires keys consecutive
	// from 1, which is also what detects a wholly-torn lane).
	sv.wal.ResetAll()
	// Records are re-encoded one at a time through the vectored append,
	// each routed to its natural lane (chunk records by placement hash,
	// descriptors by ring hash) so the compacted log keeps the lane
	// balance live traffic will extend: only the few-dozen-byte header is
	// staged, and each chunk's bytes stream from the live chunk slice
	// (stable under the stripe read lock forEachChunk holds) to the
	// compacted lane in one copy. The lanes' slab-backed Buffers reuse the
	// slabs the Reset above just freed, so a steady checkpoint cycle
	// allocates nothing.
	bp := hdrPool.Get().(*[]byte)
	appendOne := func(lane int, t wal.RecordType, data []byte) {
		if _, _, err := sv.wal.AppendV(lane, t, *bp, data); err != nil {
			panic(fmt.Sprintf("blob: checkpoint node %d: %v", node, err))
		}
	}
	for key, d := range sv.blobs {
		*bp = appendMetaPayload((*bp)[:0], key, d.size)
		appendOne(sv.metaLane(key), wal.RecCreate, nil)
	}
	sv.forEachChunk(func(id chunkID, data []byte) {
		*bp = appendChunkHeader((*bp)[:0], id, 0)
		appendOne(sv.chunkLane(id.ringHash()), wal.RecWrite, data)
	})
	hdrPool.Put(bp)
}

// CheckpointAll checkpoints every live server in parallel across the
// worker pool; the store must be quiescent. Down servers are skipped
// (their WAL is their only state).
func (s *Store) CheckpointAll() {
	parallelDo(len(s.servers), func(i int) {
		s.Checkpoint(cluster.NodeID(i))
	})
}

// DescriptorCount reports how many blob descriptors (primary or replica
// copies) the server currently holds.
func (s *Store) DescriptorCount(node cluster.NodeID) int {
	sv := s.servers[int(node)]
	sv.mu.RLock()
	defer sv.mu.RUnlock()
	return len(sv.blobs)
}

// ChunkCount reports how many chunk replicas the server currently holds.
func (s *Store) ChunkCount(node cluster.NodeID) int {
	return s.servers[int(node)].chunkCount()
}

// CheckInvariants validates cross-server consistency:
//
//  1. every descriptor on a primary is present on all of its replicas with
//     the same size;
//  2. every chunk replica belongs to a live blob and lies within its size;
//  3. replicas of one chunk hold identical bytes.
//
// It returns a description of the first violation found, or "".
func (s *Store) CheckInvariants() string {
	for i, sv := range s.servers {
		sv.mu.RLock()
		keys := make([]string, 0, len(sv.blobs))
		sizes := make(map[string]int64, len(sv.blobs))
		for k, d := range sv.blobs {
			keys = append(keys, k)
			sizes[k] = d.size
		}
		sv.mu.RUnlock()
		for _, key := range keys {
			owners := s.descOwners(key)
			if owners[0] != i {
				continue // only validate from the primary's view
			}
			for _, o := range owners[1:] {
				rs := s.servers[o]
				rs.mu.RLock()
				rd, ok := rs.blobs[key]
				var rsize int64
				if ok {
					rsize = rd.size
				}
				rs.mu.RUnlock()
				if !ok {
					return fmt.Sprintf("descriptor %q missing on replica node %d", key, o)
				}
				if rsize != sizes[key] {
					return fmt.Sprintf("descriptor %q size mismatch: primary %d, replica node %d has %d",
						key, sizes[key], o, rsize)
				}
			}
		}
	}

	// Chunk-level checks from each chunk primary's view.
	for i, sv := range s.servers {
		var ids []chunkID
		sv.forEachChunk(func(id chunkID, _ []byte) {
			ids = append(ids, id)
		})
		for _, id := range ids {
			h := id.ringHash()
			owners := s.ownersForHash(h)
			if owners[0] != i {
				continue
			}
			_, d, err := s.primaryDesc(id.key)
			if err != nil {
				return fmt.Sprintf("chunk %d of %q has no live blob", id.idx, id.key)
			}
			d.latch.RLock()
			size := d.size
			d.latch.RUnlock()
			if id.idx*int64(s.cfg.ChunkSize) >= size {
				return fmt.Sprintf("chunk %d of %q lies beyond blob size %d", id.idx, id.key, size)
			}
			primaryData, _ := sv.copyChunk(h, id)
			for _, o := range owners[1:] {
				replicaData, _ := s.servers[o].copyChunk(h, id)
				if string(replicaData) != string(primaryData) {
					return fmt.Sprintf("chunk %d of %q diverges between node %d and node %d", id.idx, id.key, i, o)
				}
			}
		}
	}
	return ""
}
