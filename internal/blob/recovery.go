package blob

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/wal"
)

// LogRecords replays a server's write-ahead log — all lanes, merged into
// logical append order by the records' order keys — and returns its
// records. Tests use this to assert that every namespace mutation was made
// durable before being acknowledged.
func (s *Store) LogRecords(node cluster.NodeID) ([]wal.Record, error) {
	sv := s.servers[int(node)]
	var recs []wal.Record
	err := sv.wal.ReplayMerged(func(rec wal.Record) error {
		p := make([]byte, len(rec.Payload))
		copy(p, rec.Payload)
		rec.Payload = p
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("blob: replay node %d: %w", node, err)
	}
	return recs, nil
}

// Crash simulates a server losing its volatile state: the in-memory
// descriptor and chunk tables are wiped (the WAL, being durable, survives)
// and the server is marked down.
func (s *Store) Crash(node cluster.NodeID) {
	sv := s.servers[int(node)]
	sv.mu.Lock()
	sv.blobs = make(map[string]*descriptor)
	sv.down = true
	sv.wiped = true
	sv.mu.Unlock()
	sv.resetChunks()
	tracef("crash node=%d", node)
}

// prepWrite is the buffered 2PC chunk write awaiting its commit record
// during replay. At most one is pending per chunk: the per-blob latch
// serializes transactions and each transaction prepares a chunk exactly
// once, so a newer prepare supersedes any dangling one a torn transaction
// left behind — which is also what keeps a later commit from resurrecting
// stale prepared bytes.
type prepWrite struct {
	within int64
	ver    uint64
	data   []byte
}

// applyRecovered merges one chunk write into the replayed chunk table and
// installs the write's persisted version.
func applyRecovered(chunks map[chunkID][]byte, vers map[chunkID]uint64, id chunkID, within int64, ver uint64, data []byte) {
	chunk := chunks[id]
	need := within + int64(len(data))
	if int64(len(chunk)) < need {
		grown := make([]byte, need)
		copy(grown, chunk)
		chunk = grown
	}
	copy(chunk[within:], data)
	chunks[id] = chunk
	if ver > vers[id] {
		vers[id] = ver
	}
}

// Recover rebuilds a server's volatile state by replaying its write-ahead
// log, then marks the server up again. Every mutation path appends a
// self-describing record (codec.go) whose payload shape is determined by
// its type — meta records carry (key, size), chunk records carry
// (chunkID, within, data) — so replay reconstructs descriptors and chunk
// bytes exactly without parsing string keys.
//
// Multi-chunk (2PC) writes replay all-or-nothing: RecPrepWrite records are
// buffered per chunk and materialize only when that chunk's RecChunkCommit
// arrives; a RecAbort discards them, and prepares still pending when the
// log ends (a crash mid-transaction) are dropped.
//
// The log is a sharded lane log (wal.MultiLog): replay merges the lanes by
// the server-scoped order key stamped into every record, yielding exactly
// the logical append order — and exactly an order-key PREFIX of it. A torn
// lane tail creates a key gap, and every record logically after the gap,
// on any lane, is discarded with it; since the key order respects the
// order mutations were issued, the recovered state is always a state the
// live server actually passed through (a delete can never survive the
// chunk drops that preceded it, a commit never its prepares).
//
// Recovery also repairs the media: wal.MultiLog.RecoverMerged truncates
// each lane past its last record inside the merged prefix — torn garbage
// AND clean-but-after-gap records — and re-bases the order-key counter, so
// appends accepted after recovery extend the prefix instead of hiding
// behind bytes a later replay would trip over or stop before.
//
// By default the lanes are DECODED in parallel: one prefetching feed per
// lane rides the worker pool (recoverfeed.go) while this goroutine runs
// the order-key merge over the pre-decoded heads. The merge engine, the
// prefix contract, and the media repair are the same code either way —
// Config.SerialRecovery selects the single-threaded decode as the oracle
// the equivalence tests pin the pipeline against, byte for byte.
func (s *Store) Recover(node cluster.NodeID) error {
	sv := s.servers[int(node)]
	// The replay below builds into local maps and — on the parallel path —
	// waits on pool-executed decode jobs, so no latch-class lock may be
	// held across it (dispatch.go contract); recovery's quiescence
	// requirement is what makes the lock-free read of the lane media safe.
	// sv.mu is taken only to install the rebuilt tables.
	blobs := make(map[string]*descriptor)
	chunks := make(map[chunkID][]byte)
	vers := make(map[chunkID]uint64)
	debt := make(map[chunkID]uint64)
	var pending map[chunkID]prepWrite
	// Migration replay state: buffered batch records (copies AND deletes)
	// materialize only at their commit marker, so a batch torn anywhere
	// before it replays as fully absent; the open intent (a Begin without a
	// matching End) is published after replay so Recover can roll the
	// migration forward.
	var migPend map[chunkID]prepWrite
	var migDel map[chunkID]bool
	var openIntent *migrationIntent
	var maxMigSeq uint64
	replay := func(fn func(wal.Record) error) error {
		if s.cfg.SerialRecovery {
			return sv.wal.RecoverMerged(fn)
		}
		return sv.wal.RecoverMergedFeeds(newRecoveryFeeds(sv.wal), fn)
	}
	err := replay(func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecCreate, wal.RecMeta:
			key, size, err := decMeta(rec.Payload)
			if err != nil {
				return err
			}
			d, ok := blobs[key]
			if !ok {
				d = &descriptor{}
				blobs[key] = d
			}
			d.size = size
			return nil
		case wal.RecWrite:
			id, within, ver, data, err := decChunkPayload(rec.Payload)
			if err != nil {
				return err
			}
			applyRecovered(chunks, vers, id, within, ver, data)
			return nil
		case wal.RecPrepWrite:
			id, within, ver, data, err := decChunkPayload(rec.Payload)
			if err != nil {
				return err
			}
			if pending == nil {
				pending = make(map[chunkID]prepWrite)
			}
			// rec.Payload is a fresh per-record buffer; retaining data is
			// safe. Overwrite, never accumulate: only the latest prepare
			// belongs to the transaction whose commit may follow.
			pending[id] = prepWrite{within: within, ver: ver, data: data}
			return nil
		case wal.RecChunkCommit:
			id, _, _, _, err := decChunkPayload(rec.Payload)
			if err != nil {
				return err
			}
			if p, ok := pending[id]; ok {
				applyRecovered(chunks, vers, id, p.within, p.ver, p.data)
				delete(pending, id)
			}
			return nil
		case wal.RecAbort:
			id, _, _, _, err := decChunkPayload(rec.Payload)
			if err != nil {
				return err
			}
			delete(pending, id)
			return nil
		case wal.RecRepairNeeded:
			// Overwrite semantics: the record carries the chunk's full debt
			// mask (in the version slot) as of its append, so the last
			// record in logical order wins — a zero mask clears the entry.
			id, _, mask, _, err := decChunkPayload(rec.Payload)
			if err != nil {
				return err
			}
			if mask == 0 {
				delete(debt, id)
			} else {
				debt[id] = mask
			}
			return nil
		case wal.RecDelete:
			key, _, err := decMeta(rec.Payload)
			if err != nil {
				return err
			}
			delete(blobs, key)
			return nil
		case wal.RecChunkDelete:
			id, _, _, _, err := decChunkPayload(rec.Payload)
			if err != nil {
				return err
			}
			delete(chunks, id)
			delete(vers, id)
			delete(debt, id)
			return nil
		case wal.RecTruncate:
			key, size, err := decMeta(rec.Payload)
			if err != nil {
				return err
			}
			if d, ok := blobs[key]; ok {
				d.size = size
			}
			return nil
		case wal.RecChunkTruncate:
			id, keep, _, _, err := decChunkPayload(rec.Payload)
			if err != nil {
				return err
			}
			if c, ok := chunks[id]; ok && int64(len(c)) > keep {
				chunks[id] = c[:keep]
			}
			return nil
		case wal.RecCommit:
			return nil // transaction-level marker; state is in the chunk records
		case wal.RecMigrateBegin:
			seq, op, mnode, err := decMigrateIntent(rec.Payload)
			if err != nil {
				return err
			}
			openIntent = &migrationIntent{seq: seq, op: op, node: mnode}
			if seq > maxMigSeq {
				maxMigSeq = seq
			}
			migPend, migDel = nil, nil
			return nil
		case wal.RecMigrateEnd:
			seq, _, _, err := decMigrateIntent(rec.Payload)
			if err != nil {
				return err
			}
			if seq > maxMigSeq {
				maxMigSeq = seq
			}
			if openIntent != nil && openIntent.seq == seq {
				openIntent = nil
			}
			migPend, migDel = nil, nil
			return nil
		case wal.RecMigrateBatch:
			if len(rec.Payload) < 1 {
				return fmt.Errorf("blob: migrate batch record empty")
			}
			switch phase := rec.Payload[0]; phase {
			case migPhasePrepare:
				// A fresh batch opens: any residue a torn earlier batch left
				// buffered is dead (its commit can no longer follow).
				migPend, migDel = nil, nil
			case migPhaseChunk:
				id, _, ver, data, err := decChunkPayload(rec.Payload[1:])
				if err != nil {
					return err
				}
				if migPend == nil {
					migPend = make(map[chunkID]prepWrite)
				}
				migPend[id] = prepWrite{ver: ver, data: data}
			case migPhaseDelete:
				id, _, _, _, err := decChunkPayload(rec.Payload[1:])
				if err != nil {
					return err
				}
				if migDel == nil {
					migDel = make(map[chunkID]bool)
				}
				migDel[id] = true
			case migPhaseCommit:
				// Materialize the batch. Installs replace wholesale — a
				// migration copy carries the chunk's full bytes, possibly
				// SHORTER than what an older replayed write grew (the source
				// may have been trimmed), so the grow-only applyRecovered
				// merge would keep a stale tail. The version guard mirrors
				// the live install (setChunkIfNewer): a newer foreground
				// write logged before the copy wins.
				for id, pw := range migPend {
					if pw.ver > vers[id] {
						chunks[id] = pw.data
						vers[id] = pw.ver
					}
				}
				for id := range migDel {
					delete(chunks, id)
					delete(vers, id)
					delete(debt, id)
				}
				migPend, migDel = nil, nil
			default:
				return fmt.Errorf("blob: migrate batch record: unknown phase %d", phase)
			}
			return nil
		default:
			return fmt.Errorf("blob: recover node %d: unknown record type %v", node, rec.Type)
		}
	})
	if err != nil {
		return fmt.Errorf("blob: recover node %d: %w", node, err)
	}
	// Keep the migration sequence monotonic past everything the log has
	// seen, and publish a replayed open intent store-wide (monotonically:
	// several recovering servers may each replay one). Recovery requires
	// store quiescence, so no live migration races these.
	if maxMigSeq > s.migSeq {
		s.migSeq = maxMigSeq
	}
	if openIntent != nil {
		if cur := s.migIntent.Load(); cur == nil || cur.seq < openIntent.seq {
			s.migIntent.Store(openIntent)
		}
	}
	sv.mu.Lock()
	sv.blobs = blobs
	sv.mu.Unlock()
	// Scatter the rebuilt chunks across the worker pool; insertions into
	// distinct lock stripes proceed in parallel and the map is read-only
	// here, so order does not matter. sv.mu is deliberately NOT held
	// across this wait: a worker must never block on a lock whose holder
	// is waiting on the pool (see the dispatch.go contract).
	sv.resetChunks()
	ids := make([]chunkID, 0, len(chunks))
	for id := range chunks {
		//blobvet:allow virtualtime chunk installs commute: distinct stripes, read-only source map, no observable order after the join
		ids = append(ids, id)
	}
	parallelDo(len(ids), func(i int) {
		id := ids[i]
		sv.setChunk(id.ringHash(), id, chunks[id], vers[id])
	})
	// Install surviving repair debt serially: a crash leaves a handful of
	// debt entries at most, not a chunk table's worth.
	for id, mask := range debt {
		st := sv.stripe(id.ringHash())
		st.mu.Lock()
		sv.setDebtLocked(st, id, mask)
		st.mu.Unlock()
	}
	// The replayed tables are in place: sv's memory is authoritative again
	// (though possibly behind), so the resync below may consult it — and
	// peers' resyncs may consult sv — even while sv is still marked down.
	sv.mu.Lock()
	sv.wiped = false
	sv.mu.Unlock()
	tracef("recover node=%d replayed chunks=%d debts=%d", node, len(chunks), len(debt))
	// Resync from live peers BEFORE serving: the merged-replay prefix
	// contract can drop acknowledged writes behind a torn lane tail, and
	// this node's own debt records only cover what its log survived. A
	// version sweep against the peers catches both that loss and every
	// write the node missed while down.
	s.resyncNode(sv)
	sv.mu.Lock()
	sv.down = false
	sv.mu.Unlock()
	// Now that the node serves again, drain the debt peers accumulated
	// against it (and any stale debt record naming an already-fresh copy).
	// The full drain, not the node-scoped one: the bidirectional resync
	// sweep may just have recorded debt naming LIVE peers that missed
	// writes this node's replayed log proves were acknowledged.
	s.Repair(storage.NewContext())
	// Roll an interrupted migration forward once the whole store is back:
	// the reconcile sweep re-runs from the replayed intent (idempotent —
	// placement already consistent means an empty plan) and the intent is
	// durably closed. While any server is still wiped, its unreplayed state
	// must not be reconciled around, so the roll-forward waits for the last
	// Recover of the crash.
	if s.migIntent.Load() != nil && !s.anyWiped() {
		s.resumeMigration(storage.NewContext())
	}
	return nil
}

// anyWiped reports whether any server is crashed-but-not-yet-recovered.
func (s *Store) anyWiped() bool {
	for _, sv := range s.servers {
		if sv.isWiped() {
			return true
		}
	}
	return false
}

// ckptLane is one lane's share of a checkpoint snapshot: the descriptor
// and chunk records whose natural lane (descriptor ring hash, chunk
// placement hash) is this lane, collected so the lane can be re-encoded
// against its own medium independently of every other lane.
type ckptLane struct {
	metas  []ckptMeta
	chunks []ckptChunk
	debts  []ckptDebt
	// intent, set only on the migration lane, re-logs an open migration
	// intent: the checkpoint's ResetAll would otherwise drop the
	// RecMigrateBegin record, and a crash after the checkpoint could no
	// longer roll the interrupted migration forward.
	intent *migrationIntent
}

func (l *ckptLane) empty() bool {
	return len(l.metas) == 0 && len(l.chunks) == 0 && len(l.debts) == 0 && l.intent == nil
}

type ckptMeta struct {
	key  string
	size int64
}

type ckptChunk struct {
	id   chunkID
	ver  uint64
	data []byte
}

type ckptDebt struct {
	id   chunkID
	mask uint64
}

// checkpointPlan snapshots sv's volatile state into per-lane record lists
// and resets the lane log (content dropped, order keys restarted at 1 —
// the snapshot is a fresh logical history, and merged replay's
// consecutive-from-1 invariant is what detects a wholly-torn lane).
// Returns nil for a down server: its volatile state is empty and its WAL
// is the only recovery source — checkpointing it would snapshot nothing
// and discard that source, silent data loss.
//
// The plan holds live chunk slices by reference; the quiescence the
// checkpoint requires (no concurrent mutations, the Crash/Recover
// discipline) is what keeps them stable until the lane writers have
// streamed them out.
func (sv *server) checkpointPlan() []ckptLane {
	sv.mu.Lock()
	if sv.down {
		sv.mu.Unlock()
		return nil
	}
	plan := make([]ckptLane, sv.wal.Lanes())
	// Iterate descriptors in sorted key order: checkpoint records are an
	// ordered WAL history, so letting map order pick the record sequence
	// would make two runs of one seed write different logs.
	keys := make([]string, 0, len(sv.blobs))
	for key := range sv.blobs {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		lane := sv.metaLane(key)
		plan[lane].metas = append(plan[lane].metas, ckptMeta{key, sv.blobs[key].size})
	}
	sv.mu.Unlock()
	sv.forEachChunk(func(id chunkID, data []byte, ver uint64) {
		lane := sv.chunkLane(id.ringHash())
		plan[lane].chunks = append(plan[lane].chunks, ckptChunk{id, ver, data})
	})
	// Outstanding repair debt must survive the compaction: re-log each
	// chunk's current mask so a crash between checkpoint and repair still
	// recovers knowing which replicas owe copies.
	sv.forEachDebt(func(id chunkID, mask uint64) {
		lane := sv.chunkLane(id.ringHash())
		plan[lane].debts = append(plan[lane].debts, ckptDebt{id, mask})
	})
	// An open migration intent is part of the durable state the snapshot
	// must carry forward (batch buffers need not be: a checkpoint requires
	// quiescence, so no batch is torn open at this point — the chunk table
	// already reflects every committed batch).
	if intent := sv.migIntent.Load(); intent != nil {
		plan[migLane].intent = intent
	}
	// The stripe walks above run in map order; restore a total order so
	// the streamed lane records are byte-identical across runs.
	for i := range plan {
		l := &plan[i]
		sort.Slice(l.chunks, func(a, b int) bool { return l.chunks[a].id.less(l.chunks[b].id) })
		sort.Slice(l.debts, func(a, b int) bool { return l.debts[a].id.less(l.debts[b].id) })
	}
	sv.wal.ResetAll()
	return plan
}

// checkpointLane re-encodes one lane's surviving records against that
// lane's own medium. Records go through the vectored append: only the
// few-dozen-byte header is staged (in a pooled buffer private to this
// lane job), and each chunk's bytes stream from the live chunk slice to
// the compacted lane in one copy. The lane's slab-backed Buffer reuses
// the slabs ResetAll just freed, so a steady checkpoint cycle allocates
// nothing — and because every lane appends to a private Log/Buffer, lane
// jobs run concurrently without sharing a single lock or medium
// (dispatch contract: the job takes no latch-class lock and never waits
// on the pool).
func (sv *server) checkpointLane(lane int, plan *ckptLane) {
	if plan.empty() {
		return
	}
	bp := hdrPool.Get().(*[]byte)
	appendOne := func(t wal.RecordType, data []byte) {
		if _, _, err := sv.wal.AppendV(lane, t, *bp, data); err != nil {
			panic(fmt.Sprintf("blob: checkpoint node %d: %v", sv.node, err))
		}
	}
	if plan.intent != nil {
		// First record of the compacted migration lane, so replay reopens
		// the intent before anything else.
		*bp = appendMigrateIntent((*bp)[:0], plan.intent.seq, plan.intent.op, plan.intent.node)
		appendOne(wal.RecMigrateBegin, nil)
	}
	for _, m := range plan.metas {
		*bp = appendMetaPayload((*bp)[:0], m.key, m.size)
		appendOne(wal.RecCreate, nil)
	}
	for _, c := range plan.chunks {
		*bp = appendChunkHeader((*bp)[:0], c.id, 0, c.ver)
		appendOne(wal.RecWrite, c.data)
	}
	for _, d := range plan.debts {
		// RecRepairNeeded reuses the chunk header with the mask in the
		// version slot (codec.go); overwrite-replay makes one record per
		// chunk sufficient.
		*bp = appendChunkHeader((*bp)[:0], d.id, 0, d.mask)
		appendOne(wal.RecRepairNeeded, nil)
	}
	hdrPool.Put(bp)
}

// Checkpoint rewrites a server's write-ahead log as a snapshot of its
// current volatile state — one record per descriptor and chunk replica —
// and drops the old log content, bounding log growth the way real object
// stores compact their journals. Recovery after a checkpoint replays the
// snapshot exactly. The snapshot streams per-lane: each lane's surviving
// records are re-encoded against that lane's own medium as an independent
// worker-pool job, so the compaction write-back scales with the lane
// sharding exactly like recovery's decode does. The server must be
// quiescent (no concurrent mutations) for the duration, the same
// discipline Crash and Recover require; like every parallelDo caller,
// Checkpoint must not run on a pool worker.
func (s *Store) Checkpoint(node cluster.NodeID) {
	sv := s.servers[int(node)]
	plan := sv.checkpointPlan()
	if plan == nil {
		return
	}
	parallelDo(len(plan), func(lane int) {
		sv.checkpointLane(lane, &plan[lane])
	})
}

// CheckpointAll checkpoints every live server; the store must be
// quiescent. Down servers are skipped (their WAL is their only state).
// The fan-out is flat — every (server, lane) pair becomes one pool job —
// rather than nesting per-server parallelDo calls inside pool workers,
// which the dispatch contract forbids (a worker blocking on a nested
// pool wait can deadlock a saturated pool).
func (s *Store) CheckpointAll() {
	type laneJob struct {
		sv   *server
		plan *ckptLane
		lane int
	}
	var jobs []laneJob
	for _, sv := range s.servers {
		plan := sv.checkpointPlan()
		for lane := range plan {
			if plan[lane].empty() {
				continue
			}
			jobs = append(jobs, laneJob{sv, &plan[lane], lane})
		}
	}
	parallelDo(len(jobs), func(i int) {
		jobs[i].sv.checkpointLane(jobs[i].lane, jobs[i].plan)
	})
}

// DescriptorCount reports how many blob descriptors (primary or replica
// copies) the server currently holds.
func (s *Store) DescriptorCount(node cluster.NodeID) int {
	sv := s.servers[int(node)]
	sv.mu.RLock()
	defer sv.mu.RUnlock()
	return len(sv.blobs)
}

// ChunkCount reports how many chunk replicas the server currently holds.
func (s *Store) ChunkCount(node cluster.NodeID) int {
	return s.servers[int(node)].chunkCount()
}

// WALSize reports the encoded bytes currently held across all of the
// server's log lanes — the volume a crash recovery of that server decodes.
// Exact only while the server is quiescent.
func (s *Store) WALSize(node cluster.NodeID) int64 {
	return s.servers[int(node)].wal.Size()
}

// CheckInvariants validates cross-server consistency:
//
//  1. every descriptor on a primary is present on all of its replicas with
//     the same size;
//  2. every chunk replica belongs to a live blob and lies within its size;
//  3. replicas of one chunk hold identical bytes — except replicas named in
//     the chunk's repair-debt mask (unioned across owners), which a
//     degraded write is allowed to leave behind until repair clears them.
//
// It returns a description of the first violation found, or "". After every
// node has rejoined and repair drained (RepairPending() == 0), the debt
// exemption is vacuous and the full strict check applies.
func (s *Store) CheckInvariants() string {
	for i, sv := range s.servers {
		sv.mu.RLock()
		keys := make([]string, 0, len(sv.blobs))
		sizes := make(map[string]int64, len(sv.blobs))
		for k, d := range sv.blobs {
			keys = append(keys, k)
			sizes[k] = d.size
		}
		sv.mu.RUnlock()
		// "First violation found" should name the same violation on
		// every run of one seed.
		sort.Strings(keys)
		for _, key := range keys {
			owners := s.descOwners(key)
			if owners[0] != i {
				continue // only validate from the primary's view
			}
			for _, o := range owners[1:] {
				rs := s.servers[o]
				rs.mu.RLock()
				rd, ok := rs.blobs[key]
				var rsize int64
				if ok {
					rsize = rd.size
				}
				rs.mu.RUnlock()
				if !ok {
					return fmt.Sprintf("descriptor %q missing on replica node %d", key, o)
				}
				if rsize != sizes[key] {
					return fmt.Sprintf("descriptor %q size mismatch: primary %d, replica node %d has %d",
						key, sizes[key], o, rsize)
				}
			}
		}
	}

	// Chunk-level checks from each chunk primary's view.
	for i, sv := range s.servers {
		var ids []chunkID
		sv.forEachChunk(func(id chunkID, _ []byte, _ uint64) {
			ids = append(ids, id)
		})
		for _, id := range ids {
			h := id.ringHash()
			owners := s.ownersForHash(h)
			if owners[0] != i {
				continue
			}
			_, d, err := s.primaryDesc(id.key)
			if err != nil {
				return fmt.Sprintf("chunk %d of %q has no live blob", id.idx, id.key)
			}
			d.latch.RLock()
			size := d.size
			d.latch.RUnlock()
			if id.idx*int64(s.cfg.ChunkSize) >= size {
				return fmt.Sprintf("chunk %d of %q lies beyond blob size %d", id.idx, id.key, size)
			}
			// Union the debt mask across owners; replicas it names missed
			// degraded writes and legitimately diverge until repaired.
			var stale uint64
			for _, o := range owners {
				stale |= s.servers[o].debtMask(h, id)
			}
			refNode := -1
			var refData []byte
			var refVer uint64
			for _, o := range owners {
				if o < 64 && stale&(1<<uint(o)) != 0 {
					continue
				}
				data, ver, _ := s.servers[o].copyChunk(h, id)
				if refNode < 0 {
					refNode, refData, refVer = o, data, ver
					continue
				}
				if ver != refVer {
					return fmt.Sprintf("chunk %d of %q version diverges between node %d (v%d) and node %d (v%d)",
						id.idx, id.key, refNode, refVer, o, ver)
				}
				if string(data) != string(refData) {
					return fmt.Sprintf("chunk %d of %q diverges between node %d and node %d", id.idx, id.key, refNode, o)
				}
			}
		}
	}
	return ""
}
