package blob

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/wal"
)

// LogRecords replays a server's write-ahead log and returns its records.
// Tests use this to assert that every namespace mutation was made durable
// before being acknowledged.
func (s *Store) LogRecords(node cluster.NodeID) ([]wal.Record, error) {
	sv := s.servers[int(node)]
	recs, err := wal.ReplayAll(sv.logBuf.Reader())
	if err != nil {
		return nil, fmt.Errorf("blob: replay node %d: %w", node, err)
	}
	return recs, nil
}

// Crash simulates a server losing its volatile state: the in-memory
// descriptor and chunk tables are wiped (the WAL, being durable, survives)
// and the server is marked down.
func (s *Store) Crash(node cluster.NodeID) {
	sv := s.servers[int(node)]
	sv.mu.Lock()
	sv.blobs = make(map[string]*descriptor)
	sv.chunks = make(map[string][]byte)
	sv.down = true
	sv.mu.Unlock()
}

// Recover rebuilds a server's volatile state by replaying its write-ahead
// log, then marks the server up again. Every mutation path appends a
// self-describing record (codec.go), so replay reconstructs descriptors
// (with sizes) and chunk bytes exactly.
func (s *Store) Recover(node cluster.NodeID) error {
	sv := s.servers[int(node)]
	sv.mu.Lock()
	defer sv.mu.Unlock()
	blobs := make(map[string]*descriptor)
	chunks := make(map[string][]byte)
	err := wal.Replay(sv.logBuf.Reader(), func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecCreate, wal.RecMeta:
			key, size, err := decMeta(rec.Payload)
			if err != nil {
				return err
			}
			d, ok := blobs[key]
			if !ok {
				d = &descriptor{}
				blobs[key] = d
			}
			d.size = size
			return nil
		case wal.RecWrite:
			ck, within, data, err := decChunk(rec.Payload)
			if err != nil {
				return err
			}
			chunk := chunks[ck]
			need := within + int64(len(data))
			if int64(len(chunk)) < need {
				grown := make([]byte, need)
				copy(grown, chunk)
				chunk = grown
			}
			copy(chunk[within:], data)
			chunks[ck] = chunk
			return nil
		case wal.RecDelete:
			key, _, err := decMeta(rec.Payload)
			if err != nil {
				return err
			}
			if strings.ContainsRune(key, '\x00') {
				delete(chunks, key)
			} else {
				delete(blobs, key)
			}
			return nil
		case wal.RecTruncate:
			key, keep, err := decMeta(rec.Payload)
			if err != nil {
				return err
			}
			if strings.ContainsRune(key, '\x00') {
				if c, ok := chunks[key]; ok && int64(len(c)) > keep {
					chunks[key] = c[:keep]
				}
			} else if d, ok := blobs[key]; ok {
				d.size = keep
			}
			return nil
		case wal.RecCommit, wal.RecAbort:
			return nil // transaction bookkeeping; state already in data records
		default:
			return fmt.Errorf("blob: recover node %d: unknown record type %v", node, rec.Type)
		}
	})
	if err != nil {
		return fmt.Errorf("blob: recover node %d: %w", node, err)
	}
	sv.blobs = blobs
	sv.chunks = chunks
	sv.down = false
	return nil
}

// DescriptorCount reports how many blob descriptors (primary or replica
// copies) the server currently holds.
func (s *Store) DescriptorCount(node cluster.NodeID) int {
	sv := s.servers[int(node)]
	sv.mu.RLock()
	defer sv.mu.RUnlock()
	return len(sv.blobs)
}

// ChunkCount reports how many chunk replicas the server currently holds.
func (s *Store) ChunkCount(node cluster.NodeID) int {
	sv := s.servers[int(node)]
	sv.mu.RLock()
	defer sv.mu.RUnlock()
	return len(sv.chunks)
}

// CheckInvariants validates cross-server consistency:
//
//  1. every descriptor on a primary is present on all of its replicas with
//     the same size;
//  2. every chunk replica belongs to a live blob and lies within its size;
//  3. replicas of one chunk hold identical bytes.
//
// It returns a description of the first violation found, or "".
func (s *Store) CheckInvariants() string {
	for i, sv := range s.servers {
		sv.mu.RLock()
		keys := make([]string, 0, len(sv.blobs))
		sizes := make(map[string]int64, len(sv.blobs))
		for k, d := range sv.blobs {
			keys = append(keys, k)
			sizes[k] = d.size
		}
		sv.mu.RUnlock()
		for _, key := range keys {
			owners := s.descOwners(key)
			if owners[0] != i {
				continue // only validate from the primary's view
			}
			for _, o := range owners[1:] {
				rs := s.servers[o]
				rs.mu.RLock()
				rd, ok := rs.blobs[key]
				var rsize int64
				if ok {
					rsize = rd.size
				}
				rs.mu.RUnlock()
				if !ok {
					return fmt.Sprintf("descriptor %q missing on replica node %d", key, o)
				}
				if rsize != sizes[key] {
					return fmt.Sprintf("descriptor %q size mismatch: primary %d, replica node %d has %d",
						key, sizes[key], o, rsize)
				}
			}
		}
	}

	// Chunk-level checks from each chunk primary's view.
	for i, sv := range s.servers {
		sv.mu.RLock()
		cks := make([]string, 0, len(sv.chunks))
		for ck := range sv.chunks {
			cks = append(cks, ck)
		}
		sv.mu.RUnlock()
		for _, ck := range cks {
			key, idx, ok := splitChunkKey(ck)
			if !ok {
				return fmt.Sprintf("malformed chunk key %q on node %d", ck, i)
			}
			owners := s.chunkOwners(key, idx)
			if owners[0] != i {
				continue
			}
			_, d, err := s.primaryDesc(key)
			if err != nil {
				return fmt.Sprintf("chunk %q has no live blob", ck)
			}
			d.latch.RLock()
			size := d.size
			d.latch.RUnlock()
			if idx*int64(s.cfg.ChunkSize) >= size {
				return fmt.Sprintf("chunk %q lies beyond blob size %d", ck, size)
			}
			sv.mu.RLock()
			primaryData := string(sv.chunks[ck])
			sv.mu.RUnlock()
			for _, o := range owners[1:] {
				rs := s.servers[o]
				rs.mu.RLock()
				replicaData := string(rs.chunks[ck])
				rs.mu.RUnlock()
				if replicaData != primaryData {
					return fmt.Sprintf("chunk %q diverges between node %d and node %d", ck, i, o)
				}
			}
		}
	}
	return ""
}

func splitChunkKey(ck string) (key string, idx int64, ok bool) {
	i := strings.IndexByte(ck, '\x00')
	if i < 0 {
		return "", 0, false
	}
	key = ck[:i]
	var n int64
	if _, err := fmt.Sscanf(ck[i+1:], "%d", &n); err != nil {
		return "", 0, false
	}
	return key, n, true
}
