package blob

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/wal"
)

func newStore(t *testing.T, nodes int, cfg Config) *Store {
	t.Helper()
	return New(cluster.New(cluster.Config{Nodes: nodes, Seed: 1}), cfg)
}

func TestConfigDefaults(t *testing.T) {
	s := newStore(t, 4, Config{})
	cfg := s.Config()
	if cfg.ChunkSize != 4<<20 || cfg.Replication != 3 || cfg.VNodes != 64 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestReplicationClampedToClusterSize(t *testing.T) {
	s := newStore(t, 2, Config{Replication: 5})
	if got := s.Config().Replication; got != 2 {
		t.Fatalf("Replication = %d, want clamped to 2", got)
	}
}

func TestCreateReadWriteRoundTrip(t *testing.T) {
	s := newStore(t, 4, Config{ChunkSize: 64})
	ctx := storage.NewContext()
	if err := s.CreateBlob(ctx, "results/output.dat"); err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox jumps over the lazy dog")
	n, err := s.WriteBlob(ctx, "results/output.dat", 0, data)
	if err != nil || n != len(data) {
		t.Fatalf("WriteBlob = (%d, %v)", n, err)
	}
	got := make([]byte, len(data))
	n, err = s.ReadBlob(ctx, "results/output.dat", 0, got)
	if err != nil || n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("ReadBlob = (%d, %v), data %q", n, err, got)
	}
	size, err := s.BlobSize(ctx, "results/output.dat")
	if err != nil || size != int64(len(data)) {
		t.Fatalf("BlobSize = (%d, %v)", size, err)
	}
}

func TestCreateValidation(t *testing.T) {
	s := newStore(t, 3, Config{})
	ctx := storage.NewContext()
	if err := s.CreateBlob(ctx, ""); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("empty key: err = %v", err)
	}
	if err := s.CreateBlob(ctx, "a\x00b"); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("NUL key: err = %v", err)
	}
	if err := s.CreateBlob(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateBlob(ctx, "k"); !errors.Is(err, storage.ErrExists) {
		t.Fatalf("duplicate create: err = %v", err)
	}
}

func TestOpsOnMissingBlob(t *testing.T) {
	s := newStore(t, 3, Config{})
	ctx := storage.NewContext()
	if _, err := s.ReadBlob(ctx, "ghost", 0, make([]byte, 4)); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("read: %v", err)
	}
	if _, err := s.WriteBlob(ctx, "ghost", 0, []byte("x")); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("write: %v", err)
	}
	if err := s.TruncateBlob(ctx, "ghost", 1); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("truncate: %v", err)
	}
	if err := s.DeleteBlob(ctx, "ghost"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("delete: %v", err)
	}
	if _, err := s.BlobSize(ctx, "ghost"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("size: %v", err)
	}
}

func TestNegativeOffsetsRejected(t *testing.T) {
	s := newStore(t, 3, Config{})
	ctx := storage.NewContext()
	s.CreateBlob(ctx, "k")
	if _, err := s.ReadBlob(ctx, "k", -1, make([]byte, 1)); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("read: %v", err)
	}
	if _, err := s.WriteBlob(ctx, "k", -1, []byte("x")); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("write: %v", err)
	}
	if err := s.TruncateBlob(ctx, "k", -1); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("truncate: %v", err)
	}
}

func TestMultiChunkWriteAndRead(t *testing.T) {
	s := newStore(t, 4, Config{ChunkSize: 16})
	ctx := storage.NewContext()
	s.CreateBlob(ctx, "big")
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := s.WriteBlob(ctx, "big", 5, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 120)
	n, err := s.ReadBlob(ctx, "big", 0, got)
	if err != nil {
		t.Fatal(err)
	}
	if n != 105 {
		t.Fatalf("read %d bytes, want 105", n)
	}
	for i := 0; i < 5; i++ {
		if got[i] != 0 {
			t.Fatalf("leading gap byte %d = %d, want 0 (sparse)", i, got[i])
		}
	}
	if !bytes.Equal(got[5:105], data) {
		t.Fatal("multi-chunk payload corrupted")
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
}

func TestReadPastEOF(t *testing.T) {
	s := newStore(t, 3, Config{ChunkSize: 8})
	ctx := storage.NewContext()
	s.CreateBlob(ctx, "k")
	s.WriteBlob(ctx, "k", 0, []byte("hello"))
	n, err := s.ReadBlob(ctx, "k", 5, make([]byte, 10))
	if err != nil || n != 0 {
		t.Fatalf("read at EOF = (%d, %v), want (0, nil)", n, err)
	}
	n, err = s.ReadBlob(ctx, "k", 100, make([]byte, 10))
	if err != nil || n != 0 {
		t.Fatalf("read past EOF = (%d, %v)", n, err)
	}
	buf := make([]byte, 10)
	n, err = s.ReadBlob(ctx, "k", 3, buf)
	if err != nil || n != 2 || string(buf[:n]) != "lo" {
		t.Fatalf("short read = (%d, %v, %q)", n, err, buf[:n])
	}
}

func TestEmptyWriteNoop(t *testing.T) {
	s := newStore(t, 3, Config{})
	ctx := storage.NewContext()
	s.CreateBlob(ctx, "k")
	n, err := s.WriteBlob(ctx, "k", 10, nil)
	if err != nil || n != 0 {
		t.Fatalf("empty write = (%d, %v)", n, err)
	}
	if size, _ := s.BlobSize(ctx, "k"); size != 0 {
		t.Fatalf("empty write changed size to %d", size)
	}
}

func TestTruncateShrinkAndGrow(t *testing.T) {
	s := newStore(t, 4, Config{ChunkSize: 8})
	ctx := storage.NewContext()
	s.CreateBlob(ctx, "t")
	s.WriteBlob(ctx, "t", 0, []byte("abcdefghijklmnopqrstuvwxyz"))

	if err := s.TruncateBlob(ctx, "t", 10); err != nil {
		t.Fatal(err)
	}
	if size, _ := s.BlobSize(ctx, "t"); size != 10 {
		t.Fatalf("size after shrink = %d", size)
	}
	buf := make([]byte, 26)
	n, _ := s.ReadBlob(ctx, "t", 0, buf)
	if n != 10 || string(buf[:n]) != "abcdefghij" {
		t.Fatalf("after shrink read = (%d, %q)", n, buf[:n])
	}

	if err := s.TruncateBlob(ctx, "t", 20); err != nil {
		t.Fatal(err)
	}
	n, _ = s.ReadBlob(ctx, "t", 0, buf)
	if n != 20 {
		t.Fatalf("after grow read %d bytes, want 20", n)
	}
	if string(buf[:10]) != "abcdefghij" {
		t.Fatalf("grow corrupted prefix: %q", buf[:10])
	}
	for i := 10; i < 20; i++ {
		if buf[i] != 0 {
			t.Fatalf("grown region byte %d = %d, want 0", i, buf[i])
		}
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
}

func TestDeleteRemovesEverything(t *testing.T) {
	s := newStore(t, 4, Config{ChunkSize: 8})
	ctx := storage.NewContext()
	s.CreateBlob(ctx, "d")
	s.WriteBlob(ctx, "d", 0, make([]byte, 100))
	if err := s.DeleteBlob(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BlobSize(ctx, "d"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("blob survived delete: %v", err)
	}
	total := 0
	for i := 0; i < 4; i++ {
		total += s.ChunkCount(cluster.NodeID(i)) + s.DescriptorCount(cluster.NodeID(i))
	}
	if total != 0 {
		t.Fatalf("delete left %d descriptors/chunks behind", total)
	}
}

func TestScanPrefixAndOrder(t *testing.T) {
	s := newStore(t, 4, Config{})
	ctx := storage.NewContext()
	for _, k := range []string{"logs/b", "logs/a", "data/x", "logs/c"} {
		if err := s.CreateBlob(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
	s.WriteBlob(ctx, "logs/a", 0, []byte("12345"))
	infos, err := s.Scan(ctx, "logs/")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("Scan returned %d blobs, want 3: %v", len(infos), infos)
	}
	wantKeys := []string{"logs/a", "logs/b", "logs/c"}
	for i, info := range infos {
		if info.Key != wantKeys[i] {
			t.Fatalf("scan order: got %v", infos)
		}
	}
	if infos[0].Size != 5 {
		t.Fatalf("scan size for logs/a = %d, want 5", infos[0].Size)
	}
	all, _ := s.Scan(ctx, "")
	if len(all) != 4 {
		t.Fatalf("full scan returned %d, want 4", len(all))
	}
}

func TestReplicationFactor(t *testing.T) {
	s := newStore(t, 6, Config{ChunkSize: 1 << 20, Replication: 3})
	ctx := storage.NewContext()
	s.CreateBlob(ctx, "r")
	s.WriteBlob(ctx, "r", 0, []byte("payload"))
	descs, chunks := 0, 0
	for i := 0; i < 6; i++ {
		descs += s.DescriptorCount(cluster.NodeID(i))
		chunks += s.ChunkCount(cluster.NodeID(i))
	}
	if descs != 3 {
		t.Fatalf("descriptor copies = %d, want 3", descs)
	}
	if chunks != 3 {
		t.Fatalf("chunk copies = %d, want 3", chunks)
	}
}

func TestReadFallbackWhenPrimaryDown(t *testing.T) {
	s := newStore(t, 4, Config{ChunkSize: 1 << 20, Replication: 3})
	ctx := storage.NewContext()
	s.CreateBlob(ctx, "f")
	data := []byte("survives failure")
	s.WriteBlob(ctx, "f", 0, data)
	// Take down the chunk primary.
	owners := s.chunkOwners(chunkID{"f", 0})
	s.SetDown(cluster.NodeID(owners[0]), true)
	got := make([]byte, len(data))
	n, err := s.ReadBlob(ctx, "f", 0, got)
	if err != nil || n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("read with primary down = (%d, %v, %q)", n, err, got)
	}
	// All replicas down -> error.
	for _, o := range owners {
		s.SetDown(cluster.NodeID(o), true)
	}
	if _, err := s.ReadBlob(ctx, "f", 0, got); !errors.Is(err, storage.ErrUnavailable) {
		t.Fatalf("read with all replicas down: %v", err)
	}
}

// TestDegradedWriteWhenReplicaDown: a write whose chunk replica set has a
// down node succeeds on the live subset (primary promotion included),
// records the miss as repair debt, and converges byte-identical after the
// node rejoins.
func TestDegradedWriteWhenReplicaDown(t *testing.T) {
	s := newStore(t, 4, Config{ChunkSize: 4, Replication: 2})
	ctx := storage.NewContext()
	s.CreateBlob(ctx, "w")
	id := chunkID{"w", 0}
	owners := s.chunkOwners(id)
	// Keep the descriptor primary up — with it down the write fails before
	// ever reaching the chunk layer, which is not the path under test.
	down := owners[0]
	if down == s.descOwners("w")[0] {
		down = owners[1]
	}
	s.SetDown(cluster.NodeID(down), true)
	if _, err := s.WriteBlob(ctx, "w", 0, []byte("data")); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	if s.RepairPending() == 0 {
		t.Fatal("degraded write recorded no repair debt")
	}
	// Reads in degraded state serve the fresh live copy, never the stale one.
	got := make([]byte, 4)
	if _, err := s.ReadBlob(ctx, "w", 0, got); err != nil || !bytes.Equal(got, []byte("data")) {
		t.Fatalf("degraded read = (%v, %q)", err, got)
	}
	// Rejoin kicks repair; the debt drains and the copies converge.
	s.SetDown(cluster.NodeID(down), false)
	if n := s.RepairPending(); n != 0 {
		t.Fatalf("repair debt outstanding after rejoin: %d", n)
	}
	h := id.ringHash()
	a, av, _ := s.servers[owners[0]].copyChunk(h, id)
	b, bv, _ := s.servers[owners[1]].copyChunk(h, id)
	if !bytes.Equal(a, b) || av != bv {
		t.Fatalf("replicas diverge after repair: %q(v%d) vs %q(v%d)", a, av, b, bv)
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
}

// TestStrictWriteRefusedBelowMinLiveOwners restores the historical strict
// behavior: MinLiveOwners == Replication means any down replica refuses the
// write with ErrUnavailable before anything durable lands.
func TestStrictWriteRefusedBelowMinLiveOwners(t *testing.T) {
	s := newStore(t, 4, Config{ChunkSize: 4, Replication: 2, MinLiveOwners: 2})
	ctx := storage.NewContext()
	s.CreateBlob(ctx, "w")
	owners := s.chunkOwners(chunkID{"w", 0})
	down := owners[0]
	if down == s.descOwners("w")[0] {
		down = owners[1]
	}
	s.SetDown(cluster.NodeID(down), true)
	if _, err := s.WriteBlob(ctx, "w", 0, []byte("data")); !errors.Is(err, storage.ErrUnavailable) {
		t.Fatalf("strict-mode write with a replica down: %v", err)
	}
	if s.RepairPending() != 0 {
		t.Fatal("refused write left repair debt behind")
	}
}

func TestWALDurabilityRecords(t *testing.T) {
	s := newStore(t, 3, Config{ChunkSize: 8, Replication: 2})
	ctx := storage.NewContext()
	s.CreateBlob(ctx, "w")
	s.WriteBlob(ctx, "w", 0, make([]byte, 20)) // multi-chunk -> 2PC prepare + commit records
	s.WriteBlob(ctx, "w", 0, make([]byte, 4))  // single-chunk -> plain write records
	s.TruncateBlob(ctx, "w", 4)
	s.DeleteBlob(ctx, "w")
	byType := map[wal.RecordType]int{}
	for i := 0; i < 3; i++ {
		recs, err := s.LogRecords(cluster.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			byType[r.Type]++
		}
	}
	if byType[wal.RecCreate] == 0 || byType[wal.RecWrite] == 0 ||
		byType[wal.RecPrepWrite] == 0 || byType[wal.RecChunkCommit] == 0 ||
		byType[wal.RecTruncate] == 0 || byType[wal.RecDelete] == 0 {
		t.Fatalf("missing WAL record types: %v", byType)
	}
	// A multi-chunk write must commit on every replica that holds a
	// prepare, or that replica's own crash replay would discard the data.
	if byType[wal.RecChunkCommit] != byType[wal.RecPrepWrite] {
		t.Fatalf("prepares (%d) and chunk commits (%d) diverge: %v",
			byType[wal.RecPrepWrite], byType[wal.RecChunkCommit], byType)
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	s := newStore(t, 4, Config{ChunkSize: 1 << 20})
	ctx := storage.NewContext()
	s.CreateBlob(ctx, "t")
	before := ctx.Clock.Now()
	s.WriteBlob(ctx, "t", 0, make([]byte, 1<<20))
	afterWrite := ctx.Clock.Now()
	if afterWrite <= before {
		t.Fatal("write did not advance virtual time")
	}
	s.ReadBlob(ctx, "t", 0, make([]byte, 1<<20))
	if ctx.Clock.Now() <= afterWrite {
		t.Fatal("read did not advance virtual time")
	}
}

func TestHigherReplicationCostsMore(t *testing.T) {
	data := make([]byte, 1<<20)
	costs := map[int]int64{}
	for _, rep := range []int{1, 3} {
		s := newStore(t, 6, Config{ChunkSize: 1 << 20, Replication: rep})
		ctx := storage.NewContext()
		s.CreateBlob(ctx, "k")
		before := ctx.Clock.Now()
		s.WriteBlob(ctx, "k", 0, data)
		costs[rep] = int64(ctx.Clock.Now() - before)
	}
	if costs[3] <= costs[1] {
		t.Fatalf("replication 3 write (%d) not costlier than replication 1 (%d)", costs[3], costs[1])
	}
}

func TestConcurrentWritersDisjointBlobs(t *testing.T) {
	s := newStore(t, 8, Config{ChunkSize: 256})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := storage.NewContext()
			key := fmt.Sprintf("blob-%d", i)
			if err := s.CreateBlob(ctx, key); err != nil {
				errs <- err
				return
			}
			payload := bytes.Repeat([]byte{byte(i)}, 1000)
			if _, err := s.WriteBlob(ctx, key, 0, payload); err != nil {
				errs <- err
				return
			}
			got := make([]byte, 1000)
			if n, err := s.ReadBlob(ctx, key, 0, got); err != nil || n != 1000 {
				errs <- fmt.Errorf("read %s: (%d, %v)", key, n, err)
				return
			}
			if !bytes.Equal(got, payload) {
				errs <- fmt.Errorf("blob %s corrupted", key)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
}

// Multi-chunk writes must be atomically visible: concurrent whole-blob
// writers of distinct patterns must never leave a mixed pattern.
func TestAtomicMultiChunkVisibility(t *testing.T) {
	s := newStore(t, 4, Config{ChunkSize: 16})
	setup := storage.NewContext()
	s.CreateBlob(setup, "atomic")
	const size = 128
	s.WriteBlob(setup, "atomic", 0, bytes.Repeat([]byte{0xAA}, size))

	var writers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(pattern byte) {
			defer writers.Done()
			ctx := storage.NewContext()
			for i := 0; i < 30; i++ {
				s.WriteBlob(ctx, "atomic", 0, bytes.Repeat([]byte{pattern}, size))
			}
		}(byte(0x10 * (w + 1)))
	}
	violation := make(chan string, 1)
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		ctx := storage.NewContext()
		buf := make([]byte, size)
		for {
			select {
			case <-stop:
				return
			default:
			}
			n, err := s.ReadBlob(ctx, "atomic", 0, buf)
			if err != nil || n != size {
				continue
			}
			for i := 1; i < size; i++ {
				if buf[i] != buf[0] {
					select {
					case violation <- fmt.Sprintf("mixed write visible: %x vs %x at %d", buf[0], buf[i], i):
					default:
					}
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	select {
	case v := <-violation:
		t.Fatal(v)
	default:
	}
}
