package blob

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
)

func txnStore(t *testing.T) (*Store, *storage.Context) {
	t.Helper()
	s := New(cluster.New(cluster.Config{Nodes: 5, Seed: 1}), Config{ChunkSize: 64, Replication: 2})
	return s, storage.NewContext()
}

func TestTxnCommitAppliesAllWrites(t *testing.T) {
	s, ctx := txnStore(t)
	s.CreateBlob(ctx, "a")
	s.CreateBlob(ctx, "b")

	txn := s.Begin(ctx)
	if err := txn.Write("a", 0, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Write("b", 0, []byte("beta")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	n, _ := s.ReadBlob(ctx, "a", 0, buf)
	if string(buf[:n]) != "alpha" {
		t.Fatalf("a = %q", buf[:n])
	}
	n, _ = s.ReadBlob(ctx, "b", 0, buf)
	if string(buf[:n]) != "beta" {
		t.Fatalf("b = %q", buf[:n])
	}
}

func TestTxnAbortDiscards(t *testing.T) {
	s, ctx := txnStore(t)
	s.CreateBlob(ctx, "a")
	txn := s.Begin(ctx)
	txn.Write("a", 0, []byte("never"))
	txn.Abort()
	if size, _ := s.BlobSize(ctx, "a"); size != 0 {
		t.Fatalf("aborted write applied: size %d", size)
	}
	if err := txn.Commit(); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("commit after abort: %v", err)
	}
}

func TestTxnDoubleCommitRejected(t *testing.T) {
	s, ctx := txnStore(t)
	s.CreateBlob(ctx, "a")
	txn := s.Begin(ctx)
	txn.Write("a", 0, []byte("x"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("double commit: %v", err)
	}
	if err := txn.Write("a", 0, []byte("y")); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("write after commit: %v", err)
	}
}

func TestTxnMissingBlobFailsCommit(t *testing.T) {
	s, ctx := txnStore(t)
	txn := s.Begin(ctx)
	txn.Write("ghost", 0, []byte("x"))
	if err := txn.Commit(); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("commit on missing blob: %v", err)
	}
}

func TestTxnEmptyCommit(t *testing.T) {
	s, ctx := txnStore(t)
	txn := s.Begin(ctx)
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnInvalidWrite(t *testing.T) {
	s, ctx := txnStore(t)
	txn := s.Begin(ctx)
	if err := txn.Write("a", -1, []byte("x")); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("negative offset: %v", err)
	}
}

func TestTxnOptimisticConflict(t *testing.T) {
	s, ctx := txnStore(t)
	s.CreateBlob(ctx, "counter")
	s.WriteBlob(ctx, "counter", 0, []byte{1})

	// Txn reads, then a concurrent writer bumps the version, then commit
	// must fail with ErrTxnConflict.
	txn := s.Begin(ctx)
	buf := make([]byte, 1)
	if _, err := txn.Read("counter", 0, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteBlob(ctx, "counter", 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	txn.Write("counter", 0, []byte{buf[0] + 1})
	if err := txn.Commit(); !errors.Is(err, storage.ErrTxnConflict) {
		t.Fatalf("commit after interleaved write: %v", err)
	}
	// The conflicting txn's write must not have been applied.
	s.ReadBlob(ctx, "counter", 0, buf)
	if buf[0] != 9 {
		t.Fatalf("counter = %d, want the interleaved writer's 9", buf[0])
	}
}

func TestTxnReadOnlyValidation(t *testing.T) {
	s, ctx := txnStore(t)
	s.CreateBlob(ctx, "x")
	s.WriteBlob(ctx, "x", 0, []byte("v1"))

	txn := s.Begin(ctx)
	buf := make([]byte, 2)
	txn.Read("x", 0, buf)
	// No interleaving: read-only commit succeeds.
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}

// Transactional transfers between two "accounts" must conserve the total
// under concurrency — the classic serializability check, validated by
// read-version commit validation.
func TestTxnTransfersConserveTotal(t *testing.T) {
	s, _ := txnStore(t)
	setup := storage.NewContext()
	s.CreateBlob(setup, "acct/a")
	s.CreateBlob(setup, "acct/b")
	writeU64 := func(key string, v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		if _, err := s.WriteBlob(setup, key, 0, b[:]); err != nil {
			t.Fatal(err)
		}
	}
	writeU64("acct/a", 1000)
	writeU64("acct/b", 1000)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := storage.NewContext()
			moved := 0
			for moved < 25 {
				txn := s.Begin(ctx)
				var ab, bb [8]byte
				if _, err := txn.Read("acct/a", 0, ab[:]); err != nil {
					txn.Abort()
					continue
				}
				if _, err := txn.Read("acct/b", 0, bb[:]); err != nil {
					txn.Abort()
					continue
				}
				a := binary.LittleEndian.Uint64(ab[:])
				b := binary.LittleEndian.Uint64(bb[:])
				if a == 0 {
					txn.Abort()
					break
				}
				binary.LittleEndian.PutUint64(ab[:], a-1)
				binary.LittleEndian.PutUint64(bb[:], b+1)
				txn.Write("acct/a", 0, ab[:])
				txn.Write("acct/b", 0, bb[:])
				if err := txn.Commit(); err != nil {
					if errors.Is(err, storage.ErrTxnConflict) {
						continue // retry
					}
					t.Error(err)
					return
				}
				moved++
			}
		}(w)
	}
	wg.Wait()

	ctx := storage.NewContext()
	var ab, bb [8]byte
	s.ReadBlob(ctx, "acct/a", 0, ab[:])
	s.ReadBlob(ctx, "acct/b", 0, bb[:])
	a := binary.LittleEndian.Uint64(ab[:])
	b := binary.LittleEndian.Uint64(bb[:])
	if a+b != 2000 {
		t.Fatalf("total not conserved: %d + %d = %d, want 2000", a, b, a+b)
	}
	if b != 1000+100 {
		t.Fatalf("b = %d, want 1100 after 4x25 transfers", b)
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
}

func TestTxnSurvivesCrashRecovery(t *testing.T) {
	s, ctx := txnStore(t)
	s.CreateBlob(ctx, "t1")
	s.CreateBlob(ctx, "t2")
	txn := s.Begin(ctx)
	txn.Write("t1", 0, []byte("one"))
	txn.Write("t2", 0, []byte("two"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	for node := 0; node < 5; node++ {
		s.Crash(cluster.NodeID(node))
		if err := s.Recover(cluster.NodeID(node)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 3)
	n, _ := s.ReadBlob(ctx, "t1", 0, buf)
	if string(buf[:n]) != "one" {
		t.Fatalf("t1 after recovery = %q", buf[:n])
	}
	n, _ = s.ReadBlob(ctx, "t2", 0, buf)
	if string(buf[:n]) != "two" {
		t.Fatalf("t2 after recovery = %q", buf[:n])
	}
}
