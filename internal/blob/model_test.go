package blob

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/storage"
)

// refBlob is the reference model: a plain byte slice with the same write /
// truncate / read semantics the store promises.
type refBlob struct{ data []byte }

func (r *refBlob) write(off int64, p []byte) {
	if len(p) == 0 {
		return // pwrite(…, 0) never extends
	}
	need := off + int64(len(p))
	if int64(len(r.data)) < need {
		grown := make([]byte, need)
		copy(grown, r.data)
		r.data = grown
	}
	copy(r.data[off:], p)
}

func (r *refBlob) truncate(size int64) {
	if size <= int64(len(r.data)) {
		r.data = r.data[:size]
		return
	}
	grown := make([]byte, size)
	copy(grown, r.data)
	r.data = grown
}

func (r *refBlob) read(off int64, n int) []byte {
	if off >= int64(len(r.data)) {
		return nil
	}
	end := off + int64(n)
	if end > int64(len(r.data)) {
		end = int64(len(r.data))
	}
	return r.data[off:end]
}

// op is one random operation against a single blob.
type op struct {
	Kind byte   // 0=write 1=truncate 2=read
	Off  uint16 // bounded offsets keep blobs small
	Size uint16
}

// TestStoreMatchesReferenceModel drives random operation sequences against
// both the blob store (with a tiny chunk size to force chunk-boundary
// handling) and the reference model, requiring byte-identical reads and
// sizes at every step, plus cross-replica invariants at the end.
func TestStoreMatchesReferenceModel(t *testing.T) {
	rng := sim.NewRNG(20240612)
	f := func(ops []op) bool {
		s := New(cluster.New(cluster.Config{Nodes: 5, Seed: 7}),
			Config{ChunkSize: 32, Replication: 2})
		ctx := storage.NewContext()
		if err := s.CreateBlob(ctx, "model"); err != nil {
			return false
		}
		ref := &refBlob{}
		for _, o := range ops {
			off := int64(o.Off % 1024)
			n := int(o.Size % 512)
			switch o.Kind % 3 {
			case 0:
				p := make([]byte, n)
				rng.Fill(p)
				if _, err := s.WriteBlob(ctx, "model", off, p); err != nil {
					return false
				}
				ref.write(off, p)
			case 1:
				if err := s.TruncateBlob(ctx, "model", off); err != nil {
					return false
				}
				ref.truncate(off)
			case 2:
				buf := make([]byte, n)
				got, err := s.ReadBlob(ctx, "model", off, buf)
				if err != nil {
					return false
				}
				want := ref.read(off, n)
				if got != len(want) || !bytes.Equal(buf[:got], want) {
					return false
				}
			}
			size, err := s.BlobSize(ctx, "model")
			if err != nil || size != int64(len(ref.data)) {
				return false
			}
		}
		// Full-content comparison and replica consistency at the end.
		final := make([]byte, len(ref.data)+64)
		got, err := s.ReadBlob(ctx, "model", 0, final)
		if err != nil || got != len(ref.data) || !bytes.Equal(final[:got], ref.data) {
			return false
		}
		return s.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestScanMatchesCreatedSet: after arbitrary create/delete interleavings,
// Scan("") returns exactly the live key set.
func TestScanMatchesCreatedSet(t *testing.T) {
	f := func(actions []uint8) bool {
		s := New(cluster.New(cluster.Config{Nodes: 4, Seed: 3}), Config{Replication: 2})
		ctx := storage.NewContext()
		live := map[string]bool{}
		keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		for _, a := range actions {
			k := keys[int(a)%len(keys)]
			if a%2 == 0 {
				err := s.CreateBlob(ctx, k)
				if live[k] {
					if err == nil {
						return false // duplicate create must fail
					}
				} else if err != nil {
					return false
				}
				live[k] = true
			} else {
				err := s.DeleteBlob(ctx, k)
				if live[k] {
					if err != nil {
						return false
					}
					delete(live, k)
				} else if err == nil {
					return false // deleting absent blob must fail
				}
			}
		}
		infos, err := s.Scan(ctx, "")
		if err != nil || len(infos) != len(live) {
			return false
		}
		for _, info := range infos {
			if !live[info.Key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
