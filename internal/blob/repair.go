package blob

import (
	"sort"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/wal"
)

// repair.go — rejoin resync: the background pass that pays down the repair
// debt degraded writes accumulate (io.go) so a node that was down converges
// back to byte-identical replicas before its copies are ever served.
//
// Two mechanisms cooperate:
//
//   - Debt-driven repair (Repair / repairNode): degraded writes record, on
//     every surviving owner, a per-chunk bitmask of the owners that missed
//     the write (RecRepairNeeded). Repair copies the freshest fresh-owner
//     version onto each owed live node and clears its bit, guarded by the
//     chunk version so a racing degraded write's fresh debt is never erased.
//   - Version resync (resyncNode): a crash can tear a WAL lane tail and
//     silently drop acknowledged writes that NO debt record names (every
//     replica applied them; only this node's log lost them). Recover
//     therefore sweeps the live peers' chunk tables, compares per-chunk
//     versions, and pulls anything newer BEFORE marking the node up.
//
// Both run on the dispatch pool as ordinary fan tasks and obey the
// dispatch.go contract: stripe locks and WAL appends only (short-hold /
// bounded-wait), never the per-blob descriptor latch, never a nested pool
// wait. Repair and rebalance coordinate through the ring epoch: a repair
// round snapshots the epoch and every per-chunk task re-checks it, bailing
// out when membership changed underneath (migrate re-records surviving debt
// against the new owner set, so nothing is lost by bailing).

// repairItem is one chunk's outstanding debt restricted to the targets a
// repair round will actually service.
type repairItem struct {
	id   chunkID
	mask uint64
}

// Repair drains every outstanding repair-debt entry whose owed node is
// currently live, returning the number of per-chunk repair tasks that made
// progress. Debt owed to still-down nodes remains until they rejoin
// (SetDown / Recover trigger the node-scoped drain automatically).
func (s *Store) Repair(ctx *storage.Context) int {
	return s.repairDrain(ctx, cluster.NodeID(-1))
}

// repairNode drains the debt owed to one node, looping until no entry names
// it or no progress can be made (node re-downed, no fresh live source yet).
// Called by SetDown(node, false) and Recover after the node is serving.
func (s *Store) repairNode(ctx *storage.Context, node cluster.NodeID) int {
	return s.repairDrain(ctx, node)
}

// repairDrain is the shared drain loop. only < 0 targets every live owed
// node; otherwise only that node's bit is serviced. Each round fans the
// collected items across the worker pool and re-collects; it terminates
// when a round finds no debt or clears nothing (progress is required so an
// unreachable target cannot spin the loop).
func (s *Store) repairDrain(ctx *storage.Context, only cluster.NodeID) int {
	total := 0
	for {
		if only >= 0 && s.servers[int(only)].isDown() {
			return total
		}
		work := s.collectDebt(only)
		if len(work) == 0 {
			return total
		}
		epoch := s.ring.Epoch()
		var progressed atomic.Int64
		fan := s.newFan()
		for _, w := range work {
			w := w
			t := fan.task(taskFunc)
			t.fn = func(cg *charge) error {
				if s.repairChunk(cg, w.id, w.mask, epoch) {
					progressed.Add(1)
				}
				return nil
			}
			fan.spawn(t)
		}
		fan.join(ctx)
		if progressed.Load() == 0 {
			return total
		}
		total += int(progressed.Load())
	}
}

// collectDebt unions the per-chunk debt masks across every server, restricts
// them to serviceable targets (the one node asked for, or every live owed
// node), and returns the items sorted for deterministic fan submission.
func (s *Store) collectDebt(only cluster.NodeID) []repairItem {
	union := make(map[chunkID]uint64)
	for _, sv := range s.servers {
		sv.forEachDebt(func(id chunkID, mask uint64) {
			union[id] |= mask
		})
	}
	items := make([]repairItem, 0, len(union))
	for id, mask := range union {
		if only >= 0 {
			bit := uint64(1) << uint(only)
			if mask&bit == 0 {
				continue
			}
			mask = bit
		} else {
			var live uint64
			for o := 0; o < len(s.servers) && o < 64; o++ {
				if mask&(1<<uint(o)) != 0 && !s.servers[o].isDown() {
					live |= 1 << uint(o)
				}
			}
			if live == 0 {
				continue
			}
			mask = live
		}
		items = append(items, repairItem{id: id, mask: mask})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].id.key != items[j].id.key {
			return items[i].id.key < items[j].id.key
		}
		return items[i].id.idx < items[j].id.idx
	})
	return items
}

// repairChunk services one chunk's owed targets. It re-checks the ring
// epoch (membership moved: bail, migrate carried the debt to the new owner
// set) and the live debt union (a racing repair may already have cleared
// bits). Reports whether any target made progress.
func (s *Store) repairChunk(cg *charge, id chunkID, owed uint64, epoch uint64) bool {
	if s.ring.Epoch() != epoch {
		return false
	}
	h := id.ringHash()
	owners := s.ownersForHash(h)
	var stale uint64
	for _, o := range owners {
		stale |= s.servers[o].debtMask(h, id)
	}
	owed &= stale
	progress := false
	for _, o := range owners {
		if o >= 64 || owed&(1<<uint(o)) == 0 {
			continue
		}
		target := s.servers[o]
		if target.isDown() {
			continue
		}
		if s.repairReplica(cg, h, id, owners, target, stale) {
			progress = true
		}
	}
	return progress
}

// repairReplica copies the freshest fresh-owner version of the chunk onto
// target (only if strictly newer than what target holds — a concurrent
// writer may already have covered it) and clears target's debt bit on every
// holder. The install and the clear are both guarded by version: the
// install never moves target backwards, and the clear is capped at the
// version repaired to (clearDebt's upTo), so a degraded write that lands a
// NEWER version concurrently keeps its debt. Never holds two stripe locks
// at once.
func (s *Store) repairReplica(cg *charge, h uint64, id chunkID, owners []int, target *server, stale uint64) bool {
	var src *server
	var srcData []byte
	var srcVer uint64
	for _, o := range owners {
		sv := s.servers[o]
		if sv == target || sv.isDown() {
			continue
		}
		if o < 64 && stale&(1<<uint(o)) != 0 {
			continue // a stale replica must never seed a repair
		}
		if data, ver, ok := sv.copyChunk(h, id); ok && (src == nil || ver > srcVer) {
			src, srcData, srcVer = sv, data, ver
		}
	}
	if src == nil {
		return false // no fresh live source right now; a later round retries
	}
	if s.faultCheck(cg, src.node, cluster.FaultDiskRead) != nil ||
		s.faultCheck(cg, target.node, cluster.FaultDiskWrite) != nil {
		return false
	}
	cg.diskRead(src.node, len(srcData))
	cg.rpc(target.node, len(srcData), 64, 0)
	st := target.stripe(h)
	st.mu.Lock()
	upTo := st.ver[id]
	installed := false
	if srcVer > upTo {
		st.m[id] = srcData
		st.ver[id] = srcVer
		upTo = srcVer
		installed = true
		// Durable on the target too: a crash after repair must not resurrect
		// the stale bytes. Append-under-stripe-lock is the recordDebt
		// pattern — acyclic, a lane leader never takes stripe locks.
		s.walAppendChunk(cg, target, wal.RecWrite, h, id, 0, srcVer, srcData)
		cg.diskWrite(target.node, len(srcData))
		s.metrics.Counter("blob.repair.chunks").Inc()
		s.metrics.Counter("blob.repair.bytes").Add(int64(len(srcData)))
	}
	tracef("repairReplica target=%d id=%s/%d src=%d srcVer=%d upTo=%d installed=%v", target.node, id.key, id.idx, src.node, srcVer, upTo, installed)
	st.mu.Unlock()
	bit := uint64(1) << uint(target.node)
	cleared := false
	for _, o := range owners {
		if s.clearDebt(cg, s.servers[o], h, id, bit, upTo) {
			cleared = true
		}
	}
	// Progress only if something actually changed. A debt bit held solely
	// by a holder NEWER than any live source (e.g. the sole fresh copy is
	// on a down node) is unserviceable this round: the install is a no-op
	// and the version guard rightly refuses the clear. Reporting progress
	// there would spin the drain loop.
	return installed || cleared
}

// clearDebt removes bit from the chunk's debt mask on sv and logs the
// reduced mask, but only while sv has not seen a write newer than upTo —
// a holder at a newer version recorded (or is about to record, under this
// same stripe lock's ordering) debt the repair pass has not serviced yet.
func (s *Store) clearDebt(cg *charge, sv *server, h uint64, id chunkID, bit, upTo uint64) bool {
	st := sv.stripe(h)
	st.mu.Lock()
	cleared := false
	if mask, ok := st.debt[id]; ok && mask&bit != 0 && st.ver[id] <= upTo {
		mask &^= bit
		sv.setDebtLocked(st, id, mask)
		s.walAppendChunk(cg, sv, wal.RecRepairNeeded, h, id, 0, mask, nil)
		cleared = true
		tracef("clearDebt node=%d id=%s/%d bit=%x upTo=%d mask=%x ver=%d", sv.node, id.key, id.idx, bit, upTo, mask, st.ver[id])
	}
	st.mu.Unlock()
	return cleared
}

// resyncNode pulls, onto the still-down sv, every chunk version a live peer
// holds newer than sv's own copy. Recover runs this after replaying sv's
// log and BEFORE marking sv up: the merged-replay prefix contract discards
// everything behind a torn lane tail, including acknowledged writes that no
// surviving debt record names (all replicas applied them — only sv's log
// lost them), and version comparison against the peers is the only way to
// find those. Chunks whose debt mask names sv are skipped here; the
// post-rejoin repairNode pass services them with full debt bookkeeping.
//
// Quiescence is NOT required: sv is still down, so writers neither read nor
// update its copies beyond the retained-memory applies, and those only move
// versions forward — the same monotonic guard the install uses.
func (s *Store) resyncNode(sv *server) {
	// Candidates: everything the live peers hold (what sv might have to
	// pull) plus everything sv itself replayed (chunks the peers might be
	// missing outright — the bidirectional check below needs those too).
	candidates := make(map[chunkID]bool)
	for _, peer := range s.servers {
		if peer != sv && peer.isDown() {
			continue
		}
		peer.forEachChunk(func(id chunkID, _ []byte, _ uint64) {
			candidates[id] = true
		})
	}
	if len(candidates) == 0 {
		return
	}
	ids := make([]chunkID, 0, len(candidates))
	for id := range candidates {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].key != ids[j].key {
			return ids[i].key < ids[j].key
		}
		return ids[i].idx < ids[j].idx
	})
	ctx := storage.NewContext()
	cg := s.directCharge(ctx)
	mine := int(sv.node)

	// Descriptors resync FIRST: the chunk sweep below uses the adopted
	// blob extents to tell a resurrected chunk (sv replayed a write whose
	// later delete/truncate fell behind the torn tail) from a chunk the
	// peers are genuinely missing.
	s.resyncDescriptors(sv, &cg)
	extents := make(map[string]blobExtent)

	for _, id := range ids {
		h := id.ringHash()
		owners := s.ownersForHash(h)
		member := false
		for _, o := range owners {
			if o == mine {
				member = true
				break
			}
		}
		if !member {
			continue
		}
		// Deletion gating: a torn tail loses a delete or truncate record as
		// easily as a write record, and replay then resurrects the chunk.
		// The live desc-owner peers' descriptors are the authority on the
		// blob's extent (size changes replicate synchronously to every desc
		// owner): a chunk wholly beyond that extent — or of a blob no live
		// desc owner knows — is a resurrection. Drop it from memory instead
		// of sweeping versions; sweeping would read the peers' deletion as
		// "everyone is behind me" and spread the corpse back across the
		// replica set. The drop is deliberately NOT logged: a crash mid-write
		// can legitimately replay a chunk ahead of its size record (the data
		// append precedes the meta append), and logging a delete there would
		// change the recovered record stream. An in-memory drop is re-derived
		// from the peers on every recovery, which is just as permanent.
		ext, seen := extents[id.key]
		if !seen {
			ext = s.peerBlobExtent(sv, id.key)
			extents[id.key] = ext
		}
		if ext.known && (!ext.exists || id.idx*int64(s.cfg.ChunkSize) >= ext.size) {
			st := sv.stripe(h)
			st.mu.Lock()
			if _, have := st.m[id]; have {
				delete(st.m, id)
				delete(st.ver, id)
				sv.setDebtLocked(st, id, 0)
				tracef("resyncDrop node=%d id=%s/%d beyond extent (size=%d exists=%v)", sv.node, id.key, id.idx, ext.size, ext.exists)
			}
			st.mu.Unlock()
			continue
		}
		// Staleness here is the REFINED claim, not the raw debt union: a
		// debt bit for peer p only proves p missed a write if some holder
		// asserting it has a HIGHER chunk version than p (exclusion freezes
		// a genuinely stale replica's version below the excluding write, so
		// a real claim always has such a holder). sv's own replayed mask
		// can be a resurrected OLD record — the tear that dropped sv's tail
		// also dropped the clearDebt records logged after its peers were
		// repaired — and trusting it raw would make resync distrust exactly
		// the fresh peers it must pull from. A vacuous bit is left for the
		// post-rejoin repair pass to clear (version-guarded, same rule).
		var stale uint64
		for _, o := range owners {
			if o >= 64 {
				continue
			}
			m := s.servers[o].debtMask(h, id)
			if m == 0 {
				continue
			}
			hv := s.servers[o].chunkVer(h, id)
			for _, p := range owners {
				if p >= 64 || p == o {
					continue
				}
				if m&(1<<uint(p)) != 0 && hv > s.servers[p].chunkVer(h, id) {
					stale |= 1 << uint(p)
				}
			}
		}
		if mine < 64 && stale&(1<<uint(mine)) != 0 {
			continue // owed by real debt: repairNode handles it after rejoin
		}
		var src *server
		var srcData []byte
		var srcVer uint64
		for _, o := range owners {
			peer := s.servers[o]
			if peer == sv || peer.isDown() {
				continue
			}
			if o < 64 && stale&(1<<uint(o)) != 0 {
				continue
			}
			if data, ver, ok := peer.copyChunk(h, id); ok && (src == nil || ver > srcVer) {
				src, srcData, srcVer = peer, data, ver
			}
		}
		var myVer uint64
		if src != nil {
			cg.diskRead(src.node, len(srcData))
			cg.rpc(sv.node, len(srcData), 64, 0)
		}
		st := sv.stripe(h)
		st.mu.Lock()
		if src != nil && srcVer > st.ver[id] {
			tracef("resyncPull node=%d id=%s/%d src=%d srcVer=%d had=%d", sv.node, id.key, id.idx, src.node, srcVer, st.ver[id])
			st.m[id] = srcData
			st.ver[id] = srcVer
			s.walAppendChunk(&cg, sv, wal.RecWrite, h, id, 0, srcVer, srcData)
			cg.diskWrite(sv.node, len(srcData))
			s.metrics.Counter("blob.resync.chunks").Inc()
			s.metrics.Counter("blob.resync.bytes").Add(int64(len(srcData)))
		}
		myVer = st.ver[id]
		st.mu.Unlock()

		// The sweep is bidirectional. A degraded write acked by a single
		// included owner leaves that owner holding both the only copy of
		// the data AND the only RecRepairNeeded naming the peers that
		// missed it; if that owner is the one crashing, a torn lane tail
		// can keep the data record yet drop the debt record — replay then
		// knows the bytes but has forgotten the peers are stale. sv's
		// replayed version is authoritative for what it holds (RecWrite is
		// only logged for applied, acknowledged writes, and deletes and
		// truncates replicate to every owner's log including down ones),
		// so any owner behind it that no surviving debt record names must
		// have missed writes: re-record the debt and let repair
		// re-install. Concurrent writers can make a peer look transiently
		// behind; the spurious bit that records is cleared by the next
		// repair pass after a full-chunk install, never by a stale one.
		var behind uint64
		for _, o := range owners {
			if o == mine || o >= 64 {
				continue
			}
			if stale&(1<<uint(o)) != 0 {
				continue
			}
			// Soft-down peers count on both sides of the comparison: their
			// retained memory still answers version probes. Crash-wiped
			// peers do NOT — their memory is gone until their own Recover
			// replays it, so any comparison against them is noise (a full
			// cluster recovery would otherwise record spurious debt naming
			// every not-yet-recovered node).
			if s.servers[o].isWiped() {
				continue
			}
			v := s.servers[o].chunkVer(h, id)
			if v != myVer {
				tracef("resyncSweep node=%d id=%s/%d peer=%d peerVer=%d myVer=%d", sv.node, id.key, id.idx, o, v, myVer)
			}
			if v < myVer {
				behind |= 1 << uint(o)
			} else if v > myVer && mine < 64 {
				// A fresh peer is ahead of sv and the pull above could not
				// service it (the peer is down, or a fault blocked the
				// copy). The classic shape: sv was repaired, its installed
				// write record was torn off with the crash, and the repair
				// had already cleared sv's debt bit everywhere — replay
				// legitimately shows no debt, yet sv is behind. Record
				// sv's bit ON THE AHEAD PEER: the debt-on-fresh-holder
				// invariant is what keeps clearDebt's version guard sound
				// (the bit only clears once a repair reaches the peer's
				// version), and the read path unions debt across all
				// owners, so sv is skipped until the re-install lands.
				s.recordDebt(&cg, s.servers[o], h, id, 1<<uint(mine))
			}
		}
		if behind != 0 {
			s.recordDebt(&cg, sv, h, id, behind)
		}
	}
}

// blobExtent is the cluster view of a blob's existence and size as held by
// the recovering node's live desc-owner peers. known is false when no such
// peer is reachable — then nothing may be dropped on its authority.
type blobExtent struct {
	size   int64
	exists bool
	known  bool
}

// peerBlobExtent polls sv's desc-owner peers for key. Soft-down peers count
// (retained memory stays authoritative — SetDown keeps descriptors current);
// crash-wiped peers do not (their memory is garbage until their own Recover).
// Sizes replicate synchronously so peers agree; max papers over a peer probed
// mid-extend.
func (s *Store) peerBlobExtent(sv *server, key string) blobExtent {
	var ext blobExtent
	// An open migration intent means descriptor placement may be
	// mid-handover: the current ring's desc owners are polled below, and one
	// that lacks the blob may simply not have RECEIVED it yet — its
	// ignorance is not deletion evidence, and dropping on it would destroy
	// chunks of every blob whose descriptor the interrupted migration had
	// not reached. Yield no authority; the roll-forward's reconcile sweep
	// re-establishes descriptor placement and revalidateBatch re-checks
	// chunk extents against it.
	if s.migIntent.Load() != nil {
		return ext
	}
	for _, o := range s.descOwners(key) {
		peer := s.servers[o]
		if peer == sv || peer.isWiped() {
			continue
		}
		ext.known = true
		peer.mu.RLock()
		d, ok := peer.blobs[key]
		peer.mu.RUnlock()
		if !ok {
			continue
		}
		ext.exists = true
		d.latch.RLock()
		if d.size > ext.size {
			ext.size = d.size
		}
		d.latch.RUnlock()
	}
	return ext
}

// resyncDescriptors adopts, onto the still-down sv, the descriptor sizes its
// live desc-owner peers hold. Size changes flow through the descriptor
// primary and replicate synchronously to EVERY owner (down owners keep their
// retained memory current), so all live peers agree on a blob's size; the
// only way sv's copy can lag is a torn meta-lane tail discarding RecMeta
// records at replay. Version comparison cannot find those (descriptor
// versions are per-copy), but agreement among the peers makes any live
// desc-owner peer authoritative. The adopted size is re-logged (RecMeta
// upserts at replay) so a later crash rebuilds it from sv's own log.
func (s *Store) resyncDescriptors(sv *server, cg *charge) {
	keys := make(map[string]bool)
	for _, peer := range s.servers {
		if peer == sv || peer.isDown() {
			continue
		}
		peer.mu.RLock()
		for key := range peer.blobs {
			keys[key] = true
		}
		peer.mu.RUnlock()
	}
	sorted := make([]string, 0, len(keys))
	for key := range keys {
		sorted = append(sorted, key)
	}
	sort.Strings(sorted)
	mine := int(sv.node)
	for _, key := range sorted {
		owners := s.descOwners(key)
		member := false
		var peer *server
		for _, o := range owners {
			if o == mine {
				member = true
			} else if peer == nil && !s.servers[o].isDown() {
				peer = s.servers[o]
			}
		}
		if !member || peer == nil {
			continue
		}
		peer.mu.RLock()
		pd, ok := peer.blobs[key]
		peer.mu.RUnlock()
		if !ok {
			continue
		}
		pd.latch.RLock()
		size := pd.size
		pd.latch.RUnlock()
		sv.mu.Lock()
		d, have := sv.blobs[key]
		if !have {
			d = &descriptor{}
			sv.blobs[key] = d
		}
		changed := !have || d.size != size
		d.size = size
		sv.mu.Unlock()
		if changed {
			cg.metaOp(sv.node, 1)
			s.walAppendMeta(cg, sv, wal.RecMeta, key, size)
		}
	}
}
