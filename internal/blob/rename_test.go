package blob

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
)

func renamePattern(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*13 + 7)
	}
	return p
}

func TestRenameBlobMultiChunk(t *testing.T) {
	s := newStore(t, 5, Config{ChunkSize: 8, Replication: 2})
	ctx := storage.NewContext()
	if err := s.CreateBlob(ctx, "old"); err != nil {
		t.Fatal(err)
	}
	data := renamePattern(8*3 + 5) // 3 full chunks + partial tail
	if _, err := s.WriteBlob(ctx, "old", 0, data); err != nil {
		t.Fatal(err)
	}
	if err := s.RenameBlob(ctx, "old", "new"); err != nil {
		t.Fatalf("RenameBlob: %v", err)
	}
	if _, err := s.BlobSize(ctx, "old"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("source survived rename: %v", err)
	}
	size, err := s.BlobSize(ctx, "new")
	if err != nil || size != int64(len(data)) {
		t.Fatalf("target size = (%d, %v), want %d", size, err, len(data))
	}
	got := make([]byte, len(data))
	if _, err := s.ReadBlob(ctx, "new", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("renamed bytes differ:\n got %x\nwant %x", got, data)
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
}

// TestRenameBlobSparse pins hole preservation: chunks the source never
// stored stay absent under the target key — the rename must not
// materialize zero-filled chunks — while the logical size and zero reads
// survive.
func TestRenameBlobSparse(t *testing.T) {
	s := newStore(t, 5, Config{ChunkSize: 8, Replication: 2})
	ctx := storage.NewContext()
	if err := s.CreateBlob(ctx, "sparse"); err != nil {
		t.Fatal(err)
	}
	head := []byte("head")
	tail := []byte("tail!")
	const tailOff = 8 * 6 // chunks 1..5 are holes
	if _, err := s.WriteBlob(ctx, "sparse", 0, head); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteBlob(ctx, "sparse", tailOff, tail); err != nil {
		t.Fatal(err)
	}
	if err := s.RenameBlob(ctx, "sparse", "moved"); err != nil {
		t.Fatalf("RenameBlob: %v", err)
	}
	wantSize := int64(tailOff + len(tail))
	if size, err := s.BlobSize(ctx, "moved"); err != nil || size != wantSize {
		t.Fatalf("size = (%d, %v), want %d", size, err, wantSize)
	}
	got := make([]byte, wantSize)
	if _, err := s.ReadBlob(ctx, "moved", 0, got); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, wantSize)
	copy(want, head)
	copy(want[tailOff:], tail)
	if !bytes.Equal(got, want) {
		t.Fatalf("sparse bytes differ:\n got %x\nwant %x", got, want)
	}
	// White-box: the hole chunks must not exist on any replica.
	for idx := int64(1); idx <= 5; idx++ {
		id := chunkID{"moved", idx}
		h := id.ringHash()
		for _, o := range s.ownersForHash(h) {
			if _, _, ok := s.servers[o].copyChunk(h, id); ok {
				t.Fatalf("hole chunk %d materialized on node %d", idx, o)
			}
		}
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
}

func TestRenameBlobErrors(t *testing.T) {
	s := newStore(t, 4, Config{ChunkSize: 16, Replication: 2})
	ctx := storage.NewContext()
	s.CreateBlob(ctx, "src")
	s.WriteBlob(ctx, "src", 0, []byte("payload"))
	s.CreateBlob(ctx, "taken")

	if err := s.RenameBlob(ctx, "src", "taken"); !errors.Is(err, storage.ErrExists) {
		t.Fatalf("rename onto existing: %v", err)
	}
	if err := s.RenameBlob(ctx, "ghost", "dst"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("rename missing source: %v", err)
	}
	if err := s.RenameBlob(ctx, "src", ""); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("rename to empty key: %v", err)
	}
	// Self-rename is a no-op on a live blob, ErrNotFound on a missing one.
	if err := s.RenameBlob(ctx, "src", "src"); err != nil {
		t.Fatalf("self rename: %v", err)
	}
	if err := s.RenameBlob(ctx, "ghost", "ghost"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("self rename of missing: %v", err)
	}
	// Failed renames must leave the source untouched and no target debris.
	got := make([]byte, 7)
	if _, err := s.ReadBlob(ctx, "src", 0, got); err != nil || string(got) != "payload" {
		t.Fatalf("source after failed renames = (%v, %q)", err, got)
	}
	if _, err := s.BlobSize(ctx, "dst"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("target debris after failed rename: %v", err)
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
}

// TestRenameBlobDegraded drives the rename while a chunk replica is down:
// the copy lands on the live subset through the ordinary degraded-write
// path, records repair debt, and converges byte-identical after rejoin.
func TestRenameBlobDegraded(t *testing.T) {
	s := newStore(t, 4, Config{ChunkSize: 4, Replication: 2})
	ctx := storage.NewContext()
	s.CreateBlob(ctx, "deg")
	data := renamePattern(10)
	if _, err := s.WriteBlob(ctx, "deg", 0, data); err != nil {
		t.Fatal(err)
	}
	// Down a node that owns a target chunk but neither descriptor primary.
	id := chunkID{"deg2", 0}
	down := -1
	for _, o := range s.chunkOwners(id) {
		if o != s.descOwners("deg")[0] && o != s.descOwners("deg2")[0] {
			down = o
			break
		}
	}
	if down < 0 {
		t.Skip("no non-primary owner available in this placement")
	}
	s.SetDown(cluster.NodeID(down), true)
	if err := s.RenameBlob(ctx, "deg", "deg2"); err != nil {
		t.Fatalf("degraded rename: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := s.ReadBlob(ctx, "deg2", 0, got); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("degraded read after rename = (%v, %x)", err, got)
	}
	s.SetDown(cluster.NodeID(down), false)
	if n := s.RepairPending(); n != 0 {
		t.Fatalf("repair debt outstanding after rejoin: %d", n)
	}
	if _, err := s.ReadBlob(ctx, "deg2", 0, got); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-repair read = (%v, %x)", err, got)
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
}
