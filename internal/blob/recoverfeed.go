// recoverfeed.go implements the parallel lane-decode stage of crash
// recovery: one pre-decoding feed per WAL lane, riding the shared worker
// pool (dispatch.go), in front of wal.MultiLog's order-key merge.
//
// The shape is a per-lane double buffer. Each feed owns two record
// batches: the merge consumes one (cur) while a pool job decodes the
// other (next); when cur drains, the feed waits for the in-flight job,
// swaps the batches, and immediately kicks a job for the batch after
// that. At any moment at most one decode job per lane is in flight and at
// most two batches per lane are materialized, so the pipeline is bounded
// no matter how large the log is — and with every lane's first batch
// kicked before the merge starts, all lanes decode concurrently from the
// first record.
//
// The dispatch contract (dispatch.go) is preserved by construction:
//
//   - a decode job never blocks — it decodes a fixed-size batch from a
//     stable medium snapshot (Buffer.Reader) and signals a capacity-1
//     channel that is empty by protocol (one job in flight per feed, the
//     consumer drains the signal before kicking the next);
//   - only the merge — running on the recovery caller, never on a pool
//     worker — waits on that channel, the same caller-waits-on-workers
//     class as ctxFan.join;
//   - a kick that finds the pool queue full decodes inline on the caller,
//     exactly like ctxFan.dispatch's fallback, so a saturated pool
//     degrades to the serial path instead of deadlocking.
//
// The merge itself — and with it the strict consecutive-from-1 order-key
// prefix contract and the media repair — is wal.replayMergedFeeds, shared
// bit-for-bit with the serial path (Config.SerialRecovery); a feed only
// re-stages the decode, which is why parallel recovery cannot diverge
// from the single-threaded oracle.
package blob

import "repro/internal/wal"

// recoveryBatchRecs is the record count of one pre-decoded lane batch:
// small enough that two batches of chunk-sized records per lane stay a
// bounded fraction of the recovering server's state, large enough that the
// merge rarely waits on an in-flight decode.
const recoveryBatchRecs = 64

// laneBatch is one pre-decoded run of a lane's records. done/err terminate
// the lane after recs: done reports the clean end of the medium (EOF or
// torn tail), err a decode failure (wal.ErrCorrupt).
type laneBatch struct {
	recs   []wal.Record
	frames []int64
	done   bool
	err    error
}

// laneFeed is the double-buffered, pool-prefetched wal.LaneFeed over one
// lane. It is also the pool job (runnable): run decodes the next batch.
type laneFeed struct {
	dec *wal.Decoder
	cur laneBatch // batch the merge is consuming
	i   int       // cursor into cur.recs
	// next is the prefetch target. Between kick and the ready signal it is
	// owned by the decode job; the merge must not touch it.
	next  laneBatch
	ready chan struct{} // job -> merge completion signal, capacity 1
}

// newRecoveryFeeds builds one prefetching feed per lane of m and kicks
// every lane's first batch onto the worker pool, so all lanes decode
// concurrently while the caller enters the merge. Each feed decodes from a
// stable snapshot of its lane's medium (wal.Buffer.Reader), so in-flight
// jobs are unaffected by the repair truncation that follows the merge.
func newRecoveryFeeds(m *wal.MultiLog) []wal.LaneFeed {
	feeds := make([]wal.LaneFeed, m.Lanes())
	for lane := range feeds {
		f := &laneFeed{
			dec:   wal.NewDecoder(m.LaneBuffer(lane).Reader()),
			ready: make(chan struct{}, 1),
		}
		f.cur.recs = make([]wal.Record, 0, recoveryBatchRecs)
		f.cur.frames = make([]int64, 0, recoveryBatchRecs)
		f.next.recs = make([]wal.Record, 0, recoveryBatchRecs)
		f.next.frames = make([]int64, 0, recoveryBatchRecs)
		f.kick()
		feeds[lane] = f
	}
	return feeds
}

// kick submits the next-batch decode to the worker pool, or runs it inline
// when the queue is full (the job is non-blocking, so inline fallback is
// safe on the merge caller).
func (f *laneFeed) kick() {
	select {
	case dispatchPool() <- f:
	default:
		f.run()
	}
}

// run decodes up to recoveryBatchRecs records into the spare batch and
// signals the merge. It is the pool job body: pure decode work against the
// feed's private snapshot — no locks, no blocking, no pool waits.
func (f *laneFeed) run() {
	b := &f.next
	b.recs, b.frames = b.recs[:0], b.frames[:0]
	b.done, b.err = false, nil
	for len(b.recs) < recoveryBatchRecs {
		rec, frame, done, err := f.dec.Next()
		if done || err != nil {
			b.done, b.err = done, err
			break
		}
		b.recs = append(b.recs, rec)
		b.frames = append(b.frames, frame)
	}
	f.ready <- struct{}{}
}

// Next implements wal.LaneFeed: it serves the current batch record by
// record and, on exhaustion, waits for the in-flight prefetch, swaps the
// double buffer, and kicks the following batch. Only the recovery caller
// runs Next, so the wait blocks no pool worker.
func (f *laneFeed) Next() (wal.Record, int64, bool, error) {
	for {
		if f.i < len(f.cur.recs) {
			rec, frame := f.cur.recs[f.i], f.cur.frames[f.i]
			// The merge owns the record now; drop the batch's reference so
			// the recycled slot cannot pin the payload.
			f.cur.recs[f.i] = wal.Record{}
			f.i++
			return rec, frame, false, nil
		}
		if f.cur.done || f.cur.err != nil {
			return wal.Record{}, 0, f.cur.done, f.cur.err
		}
		<-f.ready
		f.cur, f.next = f.next, f.cur
		f.i = 0
		if !f.cur.done && f.cur.err == nil {
			f.kick()
		}
	}
}
