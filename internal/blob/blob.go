// Package blob implements the flat-namespace blob store the paper proposes
// as the converged HPC/Big-Data storage layer (Section III), modelled on
// Týr and RADOS:
//
//   - a flat key namespace — no hierarchy, no permissions;
//   - exactly the Section III primitive set: create, delete, random read,
//     random write, truncate, size, scan;
//   - consistent-hash data placement over the cluster (package chash),
//     chunked striping, primary-copy replication;
//   - per-server write-ahead logging for durability;
//   - Týr-style lightweight transactions: a write spanning several chunks
//     commits atomically via a two-phase protocol whose round trips are
//     charged to the virtual clock.
//
// Correctness (read-your-writes, atomic multi-chunk visibility, scan
// completeness) is implemented for real on in-memory data; only durations
// are simulated. A per-blob latch provides the atomic visibility the real
// system gets from versioned chunk sets, while the two-phase commit cost is
// charged explicitly, so benchmarks still see the protocol's latency.
package blob

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/chash"
	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Config sizes a blob store.
type Config struct {
	// ChunkSize is the striping granularity in bytes. Defaults to 4 MiB
	// (RADOS' default object size order of magnitude).
	ChunkSize int
	// Replication is the number of copies of every chunk and descriptor,
	// including the primary. Defaults to 3.
	Replication int
	// VNodes is the consistent-hash virtual-node count per server.
	// Defaults to 64.
	VNodes int
	// AsyncReplication relaxes write durability: the client is
	// acknowledged after the chunk primary persists, with replica copies
	// applied off the critical path — one of the configurable consistency
	// models the paper cites ([12], [13]) as the HPC community's
	// alternative to strict semantics.
	AsyncReplication bool
	// IndexedScan adds a per-server ordered prefix index over descriptor
	// keys. Scans then cost proportional to the matches instead of the
	// whole keyspace, closing the directory-emulation gap the paper
	// concedes — at the price of index maintenance on every create and
	// delete. This is the extension the paper's future work points toward.
	IndexedScan bool
}

func (c Config) withDefaults() Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = 4 << 20
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	return c
}

// Store is a blob store running on a simulated cluster. It implements
// storage.BlobStore.
type Store struct {
	cfg     Config
	cluster *cluster.Cluster
	ring    *chash.Ring
	servers []*server
}

// server is the per-node state: the descriptors this node owns as primary
// or replica, the chunks placed on it, and its write-ahead log.
type server struct {
	node cluster.NodeID
	mu   sync.RWMutex
	// blobs maps key -> descriptor for descriptors replicated here.
	blobs map[string]*descriptor
	// chunks maps chunkKey(key, idx) -> data for chunks replicated here.
	chunks map[string][]byte
	log    *wal.Log
	logBuf *wal.Buffer
	down   bool
}

// descriptor is a blob's metadata. The authoritative copy lives on the
// blob's primary descriptor server; replicas hold copies.
type descriptor struct {
	size    int64
	version uint64
	// latch serializes writes and makes multi-chunk commits atomically
	// visible. Only the primary's latch is used.
	latch sync.RWMutex
}

// New builds a blob store spanning every node of the cluster.
func New(c *cluster.Cluster, cfg Config) *Store {
	return NewOnNodes(c, cfg, nil)
}

// NewOnNodes builds a blob store that initially serves from the given
// subset of cluster nodes (nil means all). Per-server state exists for
// every cluster node so that AddServer can later join the rest.
func NewOnNodes(c *cluster.Cluster, cfg Config, serving []cluster.NodeID) *Store {
	cfg = cfg.withDefaults()
	if cfg.Replication > c.Size() {
		cfg.Replication = c.Size()
	}
	inRing := make(map[cluster.NodeID]bool, len(serving))
	if serving == nil {
		for _, n := range c.Nodes() {
			inRing[n.ID] = true
		}
	} else {
		for _, id := range serving {
			inRing[id] = true
		}
	}
	s := &Store{cfg: cfg, cluster: c, ring: chash.New(cfg.VNodes)}
	for _, n := range c.Nodes() {
		buf := &wal.Buffer{}
		s.servers = append(s.servers, &server{
			node:   n.ID,
			blobs:  make(map[string]*descriptor),
			chunks: make(map[string][]byte),
			log:    wal.New(buf),
			logBuf: buf,
		})
		if inRing[n.ID] {
			s.ring.Add(int(n.ID))
		}
	}
	return s
}

// Config returns the effective configuration after defaulting.
func (s *Store) Config() Config { return s.cfg }

// Cluster returns the underlying simulated cluster.
func (s *Store) Cluster() *cluster.Cluster { return s.cluster }

// SetDown marks a server as failed (true) or recovered (false). Reads fall
// back to replicas of a down server; writes involving it fail.
func (s *Store) SetDown(node cluster.NodeID, down bool) {
	sv := s.servers[int(node)]
	sv.mu.Lock()
	sv.down = down
	sv.mu.Unlock()
}

func (sv *server) isDown() bool {
	sv.mu.RLock()
	defer sv.mu.RUnlock()
	return sv.down
}

func chunkKey(key string, idx int64) string {
	return fmt.Sprintf("%s\x00%d", key, idx)
}

// descOwners returns the descriptor replica set for key, primary first.
func (s *Store) descOwners(key string) []int {
	return s.ring.LocateN("d:"+key, s.cfg.Replication)
}

// chunkOwners returns the replica set for one chunk, primary first.
func (s *Store) chunkOwners(key string, idx int64) []int {
	return s.ring.LocateN("c:"+chunkKey(key, idx), s.cfg.Replication)
}

// primaryDesc returns the primary descriptor server and the live descriptor
// for key, or storage.ErrNotFound.
func (s *Store) primaryDesc(key string) (*server, *descriptor, error) {
	owners := s.descOwners(key)
	if len(owners) == 0 {
		return nil, nil, storage.ErrNotFound
	}
	sv := s.servers[owners[0]]
	sv.mu.RLock()
	d, ok := sv.blobs[key]
	sv.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("blob %q: %w", key, storage.ErrNotFound)
	}
	return sv, d, nil
}

// walAppend records a durable mutation on sv and charges ctx's clock for
// the log persistence on sv's disk.
func (s *Store) walAppend(ctx *storage.Context, sv *server, t wal.RecordType, payload []byte) {
	_, n, err := sv.log.Append(t, payload)
	if err != nil {
		// The in-memory buffer cannot fail; a failure here is a bug.
		panic(fmt.Sprintf("blob: wal append: %v", err))
	}
	s.cluster.DiskAppend(ctx.Clock, sv.node, n)
}

// CreateBlob registers a new, empty blob. The descriptor is written to its
// primary and replicated synchronously.
func (s *Store) CreateBlob(ctx *storage.Context, key string) error {
	if key == "" || strings.ContainsRune(key, '\x00') {
		return fmt.Errorf("blob key %q: %w", key, storage.ErrInvalidArg)
	}
	owners := s.descOwners(key)
	primary := s.servers[owners[0]]
	if primary.isDown() {
		return fmt.Errorf("blob %q: primary down: %w", key, storage.ErrStaleHandle)
	}
	// One metadata RPC to the primary: flat-namespace single lookup — this
	// is the cost asymmetry against hierarchical path resolution.
	s.cluster.MetaOp(ctx.Clock, primary.node, 1)
	if s.cfg.IndexedScan {
		// Prefix-index insert, the write-path price of cheap scans.
		s.cluster.LocalCompute(ctx.Clock, s.cluster.Cost().MetaTime(1))
	}

	primary.mu.Lock()
	if _, exists := primary.blobs[key]; exists {
		primary.mu.Unlock()
		return fmt.Errorf("blob %q: %w", key, storage.ErrExists)
	}
	primary.blobs[key] = &descriptor{}
	primary.mu.Unlock()
	s.walAppend(ctx, primary, wal.RecCreate, encMeta(key, 0))

	// Synchronous descriptor replication, replicas updated in parallel.
	s.replicateDesc(ctx, key, owners[1:], 0)
	return nil
}

// replicateDesc copies the descriptor (with the given size) to replicas,
// charging parallel RPC+WAL costs.
func (s *Store) replicateDesc(ctx *storage.Context, key string, replicas []int, size int64) {
	children := make([]*storage.Context, 0, len(replicas))
	for _, r := range replicas {
		rs := s.servers[r]
		child := ctx.Fork()
		s.cluster.MetaOp(child.Clock, rs.node, 1)
		rs.mu.Lock()
		d, ok := rs.blobs[key]
		if !ok {
			d = &descriptor{}
			rs.blobs[key] = d
		}
		d.size = size
		rs.mu.Unlock()
		s.walAppend(child, rs, wal.RecCreate, encMeta(key, size))
		children = append(children, child)
	}
	for _, c := range children {
		ctx.Clock.Join(c.Clock)
	}
}

// DeleteBlob removes the blob's descriptor and all chunk replicas.
func (s *Store) DeleteBlob(ctx *storage.Context, key string) error {
	primary, d, err := s.primaryDesc(key)
	if err != nil {
		return err
	}
	if primary.isDown() {
		return fmt.Errorf("blob %q: primary down: %w", key, storage.ErrStaleHandle)
	}
	d.latch.Lock()
	defer d.latch.Unlock()

	s.cluster.MetaOp(ctx.Clock, primary.node, 1)
	if s.cfg.IndexedScan {
		// Prefix-index removal mirrors the insert cost.
		s.cluster.LocalCompute(ctx.Clock, s.cluster.Cost().MetaTime(1))
	}
	size := d.size
	nChunks := (size + int64(s.cfg.ChunkSize) - 1) / int64(s.cfg.ChunkSize)

	// Drop chunk replicas, recording each removal durably.
	for idx := int64(0); idx < nChunks; idx++ {
		ck := chunkKey(key, idx)
		for _, o := range s.chunkOwners(key, idx) {
			sv := s.servers[o]
			sv.mu.Lock()
			delete(sv.chunks, ck)
			sv.mu.Unlock()
			s.walAppend(ctx, sv, wal.RecDelete, encChunk(ck, 0, nil))
		}
	}
	// Drop descriptor replicas, then the primary copy.
	for _, o := range s.descOwners(key) {
		sv := s.servers[o]
		sv.mu.Lock()
		delete(sv.blobs, key)
		sv.mu.Unlock()
		s.walAppend(ctx, sv, wal.RecDelete, encMeta(key, 0))
	}
	return nil
}

// BlobSize reports the blob's size from its primary descriptor.
func (s *Store) BlobSize(ctx *storage.Context, key string) (int64, error) {
	primary, d, err := s.primaryDesc(key)
	if err != nil {
		return 0, err
	}
	s.cluster.MetaOp(ctx.Clock, primary.node, 1)
	d.latch.RLock()
	defer d.latch.RUnlock()
	return d.size, nil
}

// Scan lists blobs with the given key prefix in key order. The request is
// broadcast to every server's descriptor table (the flat namespace has no
// index), mirroring the paper's note that scan-based emulation is
// "far from optimized".
func (s *Store) Scan(ctx *storage.Context, prefix string) ([]storage.BlobInfo, error) {
	seen := make(map[string]int64)
	clocks := make([]*storage.Context, 0, len(s.servers))
	for i, sv := range s.servers {
		child := ctx.Fork()
		s.cluster.MetaOp(child.Clock, sv.node, 1)
		sv.mu.RLock()
		examined := len(sv.blobs)
		matches := 0
		for key, d := range sv.blobs {
			if !strings.HasPrefix(key, prefix) {
				continue
			}
			matches++
			// Only the primary's answer is authoritative for size.
			if owners := s.descOwners(key); len(owners) > 0 && owners[0] == i {
				seen[key] = d.size
			}
		}
		sv.mu.RUnlock()
		if s.cfg.IndexedScan {
			// Ordered prefix index: cost follows the matches only.
			s.cluster.LocalCompute(child.Clock, s.cluster.Cost().MetaTime(1+matches/16))
		} else {
			// The plain flat namespace has no index: every descriptor on
			// the server is examined regardless of the prefix — the reason
			// the paper calls scan-based directory emulation "far from
			// optimized". One metadata unit per four descriptors examined
			// approximates RADOS-style pool listing cost.
			s.cluster.LocalCompute(child.Clock, s.cluster.Cost().MetaTime(1+examined/4))
		}
		clocks = append(clocks, child)
	}
	for _, c := range clocks {
		ctx.Clock.Join(c.Clock)
	}
	out := make([]storage.BlobInfo, 0, len(seen))
	for k, size := range seen {
		out = append(out, storage.BlobInfo{Key: k, Size: size})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out, nil
}
