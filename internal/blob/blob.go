// Package blob implements the flat-namespace blob store the paper proposes
// as the converged HPC/Big-Data storage layer (Section III), modelled on
// Týr and RADOS:
//
//   - a flat key namespace — no hierarchy, no permissions;
//   - exactly the Section III primitive set: create, delete, random read,
//     random write, truncate, size, scan;
//   - consistent-hash data placement over the cluster (package chash),
//     chunked striping, primary-copy replication;
//   - per-server write-ahead logging for durability;
//   - Týr-style lightweight transactions: a write spanning several chunks
//     commits atomically via a two-phase protocol whose round trips are
//     charged to the virtual clock.
//
// Correctness (read-your-writes, atomic multi-chunk visibility, scan
// completeness) is implemented for real on in-memory data; only durations
// are simulated. A per-blob latch provides the atomic visibility the real
// system gets from versioned chunk sets, while the two-phase commit cost is
// charged explicitly, so benchmarks still see the protocol's latency.
//
// # Data-plane architecture
//
// The per-chunk dispatch path is engineered for throughput and allocation
// discipline, because the paper's thesis — one blob namespace serving both
// HPC and Big-Data traffic — only holds if per-chunk cost is near-free:
//
//   - chunk addressing: chunks are identified by the comparable struct
//     chunkID{key, idx}. Server chunk tables are keyed by chunkID and the
//     placement hash is computed by streaming the key material through
//     chash.KeyHasher, so no "key\x00idx" string is ever built on the
//     read/write path.
//   - placement cache: Store.ownersForHash fronts the consistent-hash ring
//     with an epoch-versioned, sharded lookup cache. Steady-state placement
//     is a shard-local RLock plus one map probe; ring walks happen only on
//     cold keys or after a membership change bumps Ring.Epoch(), which
//     invalidates the cache lazily.
//   - striped server state: each server's chunk table is split across
//     chunkStripes lock-striped shards selected by the chunk's placement
//     hash, so concurrent readers and writers of different chunks do not
//     contend on one RWMutex. The per-blob descriptor latch remains the
//     atomic-visibility point for multi-chunk commits.
//   - sharded WAL lanes + group commit: each server's write-ahead log is a
//     wal.MultiLog — Config.WALLanes lanes (default: the chunk-stripe
//     count), a chunk's lane derived from the same placement-hash bits as
//     its lock stripe, descriptor records routed by the descriptor's ring
//     hash — so parallel writers to different chunks append to different
//     lane mutexes, and writers that do collide on a lane coalesce through
//     the group-commit staging ring into one medium write. A server-scoped
//     order key stamped into every record lets recovery merge the lanes
//     back into exact logical order (wal.MultiLog.RecoverMerged). Records
//     append vectored (AppendV/AppendNV): only the small addressing header
//     is staged in a pooled scratch buffer, while chunk data streams from
//     the caller's buffer to the log medium in exactly one copy.
//     Multi-record operations batch same-(server,lane) records through
//     AppendNV.
//   - goroutine fan-out: per-chunk work executes on a bounded worker pool
//     (dispatch.go) with resource charges recorded into per-task ledgers
//     and folded into the shared cluster accounting at join, so real
//     parallel execution keeps the sequential implementation's virtual
//     clock semantics bit-for-bit. See dispatch.go for the concurrency
//     contract.
//
// # Failure semantics
//
// The store keeps serving through node failures and heals on rejoin; the
// rules below are what the seeded chaos battery (chaos_test.go) pins.
//
// Degraded writes. A write whose replica set contains down owners proceeds
// on the live subset as long as Config.MinLiveOwners (default 1) replicas
// remain; a down chunk primary is promoted past. A down owner is EXCLUDED
// from the write, never partially applied to: its chunk version stays
// frozen below the excluding write, which is what makes version comparison
// meaningful later. Every surviving replica durably logs a RecRepairNeeded
// record naming the excluded owners (full-mask overwrite semantics in the
// record's version slot; mask 0 deletes the entry) — the debt that repair
// drains. Debt is recorded only AFTER the holder applies the write
// (direct writes on the data path, 2PC exclusions at commit apply), so a
// debt bit always lives on a holder strictly newer than the peer it names;
// clearDebt's version guard leans on that invariant. If an excluded owner
// flaps back up mid-write, the writer's epilogue drains the freshly logged
// debt immediately (io.go writeLocked) — between that and the rejoin
// drain, one of the two always runs after the debt lands.
//
// Reads never observe stale replicas. While any repair is pending, reads
// union the chunk's debt masks across ALL owners (down servers keep their
// memory — the stand-in for monitor-layer peering metadata) and serve from
// the highest-versioned live owner not named stale; a replica that missed
// a write is unreachable until its debt clears. Paths that find no usable
// replica fail with storage.ErrUnavailable.
//
// Rejoin resync. SetDown(node, false) and Recover both drain the node's
// debt (repair.go). Recover additionally version-syncs the replayed state
// against live peers BEFORE rejoining (resyncNode): a torn lane tail can
// discard acknowledged writes together with the very debt records that
// named them, so version comparison is the only witness left. The sweep is
// bidirectional (pull what peers hold newer, re-record debt for peers
// behind the replayed log), trusts a debt bit only when some holder
// asserting it is strictly newer than the named peer (a resurrected old
// mask is vacuous and must not block resync), and drops replayed chunks
// that live desc-owner peers say were deleted or truncated away rather
// than spreading the resurrection back. All installs are version-guarded
// under stripe locks and epoch-checked against rebalance.
//
// Fault injection enters at two layers: wal.FaultMedium injects clean
// errors, torn writes, and slow writes under the log (WAL-layer tests),
// and the cluster layer injects seeded transient per-op faults that the
// data plane absorbs with bounded retry and virtual-clock backoff
// (fault.go); crashes are simulated by dropping volatile state and
// replaying the (possibly torn) log.
//
// # Membership and elasticity semantics
//
// AddServer/RemoveServer change placement online: foreground reads and
// writes keep succeeding — and stay stale-free — while chunks move
// (rebalance.go). The protocol is ARIES-style intent logging over
// RADOS-style epoch-versioned placement:
//
// Intent before mutation. The membership change appends a durable
// RecMigrateBegin to every live server's log BEFORE the ring mutates, and
// a RecMigrateEnd once the sweep completes. A crash anywhere between the
// two recovers with the intent open; the last Recover that leaves no
// server wiped rolls the migration forward (resumeMigration) by
// reconciling every held chunk and descriptor against the current ring —
// copy to owners missing a replica, delete from holders that lost
// ownership — so recovery always lands on a placement the system could
// have reached, never a half-remembered sweep position. Checkpoints re-log
// an open intent before resetting the lanes, so compaction cannot lose it.
//
// The epoch flip is atomic with respect to foreground ops. Ops hold
// Store.member shared for their duration; the ring mutation takes it
// exclusively for an instant. An in-flight write therefore lands entirely
// on the old owner sets (its chunks are picked up as holders by the sweep)
// or entirely on the new ones — never a mix that could strand an
// acknowledged write on a replica the sweep then deletes.
//
// Batches are crash-atomic and throttled. The sweep moves chunks in
// bounded batches (Config.MigrationBatchChunks/MigrationBatchBytes), each
// 2PC-logged: a prepare marker on the gained owners, buffered chunk-copy
// and chunk-delete records, then a commit marker on every participant.
// Replay materializes a batch only at its commit marker — version-guarded,
// so copies never regress a chunk a concurrent write advanced — which
// makes every batch fully applied or fully absent after a crash. A token
// bucket (Config.MigrationRateBytes per virtual-time tick) debits each
// batch's bytes before dispatch, charging deficits to the migration
// caller's clock, and at most one batch is in flight on the pool.
//
// Live traffic during the sweep. While Store.migrating is nonzero, reads
// take the version-checked path with the candidate set widened from the
// current owners to every non-wiped server — a chunk's only fresh copy
// (and the debt mask naming its stale peers) may still sit on the drained
// node or a stray holder the sweep has not reached — serving the
// highest-versioned fresh live holder, vetoed into unavailability by any
// fresh down holder strictly ahead of it. Writes assign versions against
// the same widened scan (nextChunkVer), so the version order stays globally
// comparable mid-handover, and exclude owners whose chunk version is
// behind that maximum, recording repair debt instead of writing a partial
// update over a base the owner does not hold yet. A soft-down gained
// owner receives its migration copy exactly as it receives a foreground
// write after the partition snapshot (retained memory + log keep it
// consistent); only a crash-wiped target becomes repair debt, converged
// by resyncNode after its recovery.
// Descriptors move by sharing the canonical *descriptor pointer with
// gained owners under the blob's latch, so writers racing the handover
// still serialize on a single latch and log sizes in a replayable order.
//
// Draining a node resets its logs. RemoveServer clears the drained node's
// memory AND its WAL lanes (ResetAll) once the sweep completes, so a later
// Crash/Recover of that node — or a rejoin via AddServer — cannot
// resurrect pre-drain state from stale records.
package blob

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/chash"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Config sizes a blob store.
type Config struct {
	// ChunkSize is the striping granularity in bytes. Defaults to 4 MiB
	// (RADOS' default object size order of magnitude).
	ChunkSize int
	// Replication is the number of copies of every chunk and descriptor,
	// including the primary. Defaults to 3.
	Replication int
	// VNodes is the consistent-hash virtual-node count per server.
	// Defaults to 64.
	VNodes int
	// AsyncReplication relaxes write durability: the client is
	// acknowledged after the chunk primary persists, with replica copies
	// applied off the critical path — one of the configurable consistency
	// models the paper cites ([12], [13]) as the HPC community's
	// alternative to strict semantics.
	AsyncReplication bool
	// IndexedScan adds a per-server ordered prefix index over descriptor
	// keys. Scans then cost proportional to the matches instead of the
	// whole keyspace, closing the directory-emulation gap the paper
	// concedes — at the price of index maintenance on every create and
	// delete. This is the extension the paper's future work points toward.
	IndexedScan bool
	// InlineFanout executes fan-out tasks sequentially on the calling
	// goroutine instead of the worker pool. Virtual-time results are
	// identical by construction (charges fold at join either way); the
	// knob exists as the determinism baseline and for debugging.
	InlineFanout bool
	// WALLanes is the number of sharded write-ahead-log lanes per server
	// (wal.MultiLog): concurrent writers to chunks in different lanes do
	// not contend on a log mutex, and writers that do share a lane group-
	// commit. Defaults to the chunk-stripe count, so a chunk's log lane is
	// derived from the same placement-hash bits as its lock stripe. With 1
	// lane the on-medium layout is byte-identical to the single-log
	// implementation.
	WALLanes int
	// SerialRecovery makes Store.Recover decode the WAL lanes with the
	// single-threaded merge instead of the parallel lane-decode pipeline
	// (recoverfeed.go). Recovered state is identical by construction — the
	// merge engine is shared and only the decode staging differs — which
	// the equivalence property tests pin byte-for-byte; the knob exists as
	// that oracle and for debugging.
	SerialRecovery bool
	// MinLiveOwners is the minimum number of live replicas a chunk write
	// needs before it proceeds degraded (the down owners' copies become
	// repair debt). Defaults to 1: a write survives as long as any owner
	// is up, with the first live owner promoted to primary. Setting it to
	// Replication restores the strict all-replicas-or-fail behavior.
	MinLiveOwners int
	// MigrationBatchChunks caps how many chunks one rebalance batch moves:
	// each AddServer/RemoveServer sweep is cut into batches of at most this
	// many chunks, each batch 2PC-logged (RecMigrateBatch prepare / copies /
	// deletes / commit) and individually crash-atomic. Defaults to 16.
	MigrationBatchChunks int
	// MigrationBatchBytes additionally bounds a batch by payload volume:
	// a batch closes once its source bytes reach this cap (a single chunk
	// larger than the cap still forms a one-chunk batch). This is the bound
	// on in-flight migration bytes — at most one batch is in flight.
	// Defaults to 1 MiB.
	MigrationBatchBytes int
	// MigrationRateBytes throttles the rebalance sweep against foreground
	// traffic: a token bucket holding one migrationTick's worth of budget
	// refills MigrationRateBytes per virtual-time tick, and a batch's bytes
	// are debited before it dispatches — deficits charge idle ticks to the
	// migration caller's virtual clock, never to foreground ops. Defaults
	// to 8 MiB per tick. Set to a huge value to effectively disable
	// throttling (tests do).
	MigrationRateBytes int
	// MigrationBatchHook, when set, is called on the migration caller's
	// goroutine at every batch boundary of a rebalance sweep: once with -1
	// after the intent is durable but before any batch dispatches, then
	// once after each committed batch. Benchmarks and tests use it to
	// interleave foreground work with a live migration at deterministic
	// points; production configs leave it nil.
	MigrationBatchHook func(batch int)
}

func (c Config) withDefaults() Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = 4 << 20
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.WALLanes <= 0 {
		c.WALLanes = chunkStripes
	}
	if c.MinLiveOwners <= 0 {
		c.MinLiveOwners = 1
	}
	if c.MigrationBatchChunks <= 0 {
		c.MigrationBatchChunks = 16
	}
	if c.MigrationBatchBytes <= 0 {
		c.MigrationBatchBytes = 1 << 20
	}
	if c.MigrationRateBytes <= 0 {
		c.MigrationRateBytes = 8 << 20
	}
	return c
}

// chunkID addresses one chunk of one blob. It is the map key of the server
// chunk tables and the unit of placement: a comparable struct, so the hot
// path never materializes a combined string key.
type chunkID struct {
	key string
	idx int64
}

// less orders chunk IDs by (key, idx) — the total order checkpoint
// streaming uses so one seed always writes one log.
func (c chunkID) less(o chunkID) bool {
	return c.key < o.key || (c.key == o.key && c.idx < o.idx)
}

// ringHash returns the chunk's placement hash, streamed through the ring's
// key hasher. It is bit-identical to hashing the historical string form
// "c:" + key + "\x00" + decimal(idx), so placement is unchanged from the
// string-keyed implementation — but no string is built.
func (c chunkID) ringHash() uint64 {
	return chash.NewKeyHasher().String("c:").String(c.key).Byte(0).Int64Decimal(c.idx).Sum()
}

// descRingHash returns the placement hash of a blob's descriptor,
// equivalent to hashing "d:" + key without the concatenation.
func descRingHash(key string) uint64 {
	return chash.NewKeyHasher().String("d:").String(key).Sum()
}

// placementShards shards the placement cache to keep cache hits from
// serializing on one lock. Must be a power of two.
const placementShards = 16

// placementShardMax bounds one shard's entry count so a long-lived store
// serving a huge key population cannot pin unbounded ring-derivable data.
// Eviction is a whole-shard reset: entries are cheap to re-derive, and a
// reset leaves the other shards untouched.
const placementShardMax = 1 << 14

// placementCache memoizes ring lookups per placement hash. Entries are
// valid for exactly one ring epoch; a membership change bumps the epoch and
// each shard drops its map lazily on next access. Caching by hash is exact,
// not approximate: ring placement is a pure function of the hash.
type placementCache struct {
	shards [placementShards]placementShard
}

type placementShard struct {
	mu    sync.RWMutex
	epoch uint64
	m     map[uint64][]int
}

// ownersForHash returns the replica set (primary first) for a placement
// hash. Steady state is a shard RLock and one map probe — no ring lock, no
// allocation. The returned slice is shared and must not be mutated.
func (s *Store) ownersForHash(h uint64) []int {
	ep := s.ring.Epoch()
	sh := &s.placement.shards[h&(placementShards-1)]
	sh.mu.RLock()
	if sh.epoch == ep {
		if owners, ok := sh.m[h]; ok {
			sh.mu.RUnlock()
			return owners
		}
	}
	sh.mu.RUnlock()

	dst := make([]int, s.cfg.Replication)
	got := s.ring.LocateHashNInto(h, dst)
	owners := dst[:got]

	sh.mu.Lock()
	if sh.epoch != ep {
		if sh.epoch > ep {
			// The shard has already advanced past the epoch we computed
			// under; our result may be stale — serve it to this caller
			// (equivalent to a lookup racing the membership change) but do
			// not cache it.
			sh.mu.Unlock()
			return owners
		}
		sh.epoch = ep
		sh.m = nil
	}
	if sh.m == nil || len(sh.m) >= placementShardMax {
		sh.m = make(map[uint64][]int, 64)
	}
	sh.m[h] = owners
	sh.mu.Unlock()
	return owners
}

// Store is a blob store running on a simulated cluster. It implements
// storage.BlobStore.
type Store struct {
	cfg       Config
	cluster   *cluster.Cluster
	ring      *chash.Ring
	servers   []*server
	placement placementCache
	// repairPending counts debt entries (chunks owing repair to at least
	// one replica) across every server. While it is zero — the steady
	// state — reads take the fast path with no freshness probing.
	repairPending atomic.Int64
	// metrics counts failure-domain events: degraded writes, transient
	// retries, repaired chunks/bytes. Only event paths touch it, so the
	// healthy hot path pays nothing.
	metrics *metrics.Registry

	// member gates foreground ops against the instant the ring mutates:
	// every placement-resolving op holds it shared for its whole duration,
	// and AddServer/RemoveServer take it exclusively around the ring
	// mutation alone. That makes the epoch flip atomic with respect to
	// in-flight ops — a write either runs entirely against the old owner
	// sets (and its chunks are then migrated as holders) or entirely
	// against the new ones — without serializing foreground traffic behind
	// the migration sweep itself.
	member sync.RWMutex
	// migrateMu serializes membership changes end to end: at most one
	// migration sweep runs at a time, so the ring epoch is stable for the
	// sweep's whole duration.
	migrateMu sync.Mutex
	// migSeq numbers migrations (under migrateMu) so intent records are
	// totally ordered per store lifetime.
	migSeq uint64
	// migrating is nonzero while a migration sweep (or crash roll-forward)
	// is in flight. Reads then take the version-checked path and writes
	// exclude owners still awaiting their migration copy (io.go), which is
	// what keeps live traffic stale-free while placement converges.
	migrating atomic.Int64
	// migIntent publishes the open migration intent (live, or replayed
	// from a RecMigrateBegin without a matching End) so checkpoints can
	// re-log it and Recover can roll the migration forward once no server
	// is left wiped.
	migIntent atomic.Pointer[migrationIntent]
	// migBatchHook, when set, runs on the migration caller after each
	// batch commits — the seam the crash sweep uses to capture
	// batch-boundary media and to interleave foreground 2PC load. Seeded
	// from Config.MigrationBatchHook; tests in this package assign it
	// directly.
	migBatchHook func(batch int)
}

// migrationIntent is the in-memory form of a RecMigrateBegin record: one
// membership change that has been durably announced but not yet completed.
type migrationIntent struct {
	seq  uint64
	op   uint8 // migOpAdd or migOpRemove
	node int64
}

// chunkStripes is the lock-striping factor of each server's chunk table.
// Must be a power of two.
const chunkStripes = 16

// chunkStripe is one lock-striped shard of a server's chunk table.
type chunkStripe struct {
	mu sync.RWMutex
	m  map[chunkID][]byte
	// ver holds the replica-comparable version of each chunk this server
	// stores: assigned by the writer as one more than the highest version
	// any owner held, installed identically on every replica that applied
	// the write, and persisted in the chunk's WAL records. Rejoin resync
	// and degraded-read freshness compare these versions across replicas.
	ver map[chunkID]uint64
	// debt maps a chunk to the bitmask of node IDs that missed one of its
	// writes (degraded write while those owners were down, or an injected
	// replica fault). Every mutation is mirrored by a RecRepairNeeded
	// record carrying the full new mask, so debt survives crashes.
	debt map[chunkID]uint64
}

// server is the per-node state: the descriptors this node owns as primary
// or replica, the chunks placed on it (lock-striped by placement hash), and
// its sharded, group-committed write-ahead log.
type server struct {
	node cluster.NodeID
	mu   sync.RWMutex
	// blobs maps key -> descriptor for descriptors replicated here.
	blobs map[string]*descriptor
	// stripes hold the chunk replicas placed on this server, sharded so
	// that concurrent access to different chunks does not contend.
	stripes [chunkStripes]chunkStripe
	// wal is the lane log: chunk records route to the lane derived from
	// their placement hash (the bits that also pick the lock stripe),
	// descriptor records to the lane of the descriptor's ring hash.
	// This is the ONLY append path — there is no per-server single log.
	wal  *wal.MultiLog
	down bool
	// wiped marks a crashed-but-not-yet-recovered server: its volatile
	// state is gone, so — unlike a soft-down (SetDown) server, whose
	// retained memory stays authoritative — its chunk versions and debt
	// masks must not be consulted. Crash sets it, Recover clears it once
	// the replayed tables are installed.
	wiped bool
	// repairPending points at the store-wide debt-entry counter so stripe
	// helpers can maintain it without a back-pointer to the Store.
	repairPending *atomic.Int64
	// migIntent points at the store-wide open-migration pointer so the
	// checkpoint planner (which only sees the server) can re-log an open
	// RecMigrateBegin before ResetAll drops it from the lanes.
	migIntent *atomic.Pointer[migrationIntent]
}

// chunkLane selects the log lane for a chunk placement hash.
func (sv *server) chunkLane(h uint64) int { return sv.wal.LaneFor(h) }

// metaLane selects the log lane for a descriptor record.
func (sv *server) metaLane(key string) int { return sv.wal.LaneFor(descRingHash(key)) }

// stripe selects the lock stripe for a chunk placement hash. It uses a
// different bit range than the placement-cache shard selector so the two
// shardings decorrelate.
func (sv *server) stripe(h uint64) *chunkStripe {
	return &sv.stripes[(h>>32)&(chunkStripes-1)]
}

func (sv *server) getChunk(h uint64, id chunkID) ([]byte, bool) {
	st := sv.stripe(h)
	st.mu.RLock()
	data, ok := st.m[id]
	st.mu.RUnlock()
	return data, ok
}

// copyChunk returns a copy of the chunk's bytes and its version, made
// while holding the stripe lock, so callers can use them without racing
// concurrent writers that mutate the live slice in place.
func (sv *server) copyChunk(h uint64, id chunkID) ([]byte, uint64, bool) {
	st := sv.stripe(h)
	st.mu.RLock()
	defer st.mu.RUnlock()
	data, ok := st.m[id]
	if !ok {
		return nil, 0, false
	}
	return append([]byte(nil), data...), st.ver[id], true
}

// chunkVer reads the chunk's version (0 when the server does not hold it).
func (sv *server) chunkVer(h uint64, id chunkID) uint64 {
	st := sv.stripe(h)
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.ver[id]
}

func (sv *server) setChunk(h uint64, id chunkID, data []byte, ver uint64) {
	st := sv.stripe(h)
	st.mu.Lock()
	st.m[id] = data
	st.ver[id] = ver
	st.mu.Unlock()
}

// setDebtLocked installs the debt mask for id, maintaining the store-wide
// pending counter. The caller must hold st's write lock.
func (sv *server) setDebtLocked(st *chunkStripe, id chunkID, mask uint64) {
	if mask == 0 {
		if _, ok := st.debt[id]; ok {
			delete(st.debt, id)
			sv.repairPending.Add(-1)
		}
		return
	}
	if _, ok := st.debt[id]; !ok {
		sv.repairPending.Add(1)
	}
	st.debt[id] = mask
}

func (sv *server) deleteChunk(h uint64, id chunkID) {
	st := sv.stripe(h)
	st.mu.Lock()
	delete(st.m, id)
	delete(st.ver, id)
	sv.setDebtLocked(st, id, 0)
	st.mu.Unlock()
}

// trimChunk shortens the chunk to keep bytes if it is longer.
func (sv *server) trimChunk(h uint64, id chunkID, keep int64) {
	st := sv.stripe(h)
	st.mu.Lock()
	if c, ok := st.m[id]; ok && int64(len(c)) > keep {
		st.m[id] = c[:keep]
	}
	st.mu.Unlock()
}

// chunkCount sums the stripes.
func (sv *server) chunkCount() int {
	n := 0
	for i := range sv.stripes {
		st := &sv.stripes[i]
		st.mu.RLock()
		n += len(st.m)
		st.mu.RUnlock()
	}
	return n
}

// forEachChunk calls fn for every chunk replica on the server, holding each
// stripe's read lock for the duration of its visits; fn must not mutate the
// data or call back into the stripe.
func (sv *server) forEachChunk(fn func(id chunkID, data []byte, ver uint64)) {
	for i := range sv.stripes {
		st := &sv.stripes[i]
		st.mu.RLock()
		for id, data := range st.m {
			fn(id, data, st.ver[id])
		}
		st.mu.RUnlock()
	}
}

// debtMask reads the chunk's repair-debt mask (0 when none is recorded).
func (sv *server) debtMask(h uint64, id chunkID) uint64 {
	st := sv.stripe(h)
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.debt[id]
}

// forEachDebt calls fn for every debt entry on the server, under each
// stripe's read lock; fn must not call back into the stripe.
func (sv *server) forEachDebt(fn func(id chunkID, mask uint64)) {
	for i := range sv.stripes {
		st := &sv.stripes[i]
		st.mu.RLock()
		for id, mask := range st.debt {
			fn(id, mask)
		}
		st.mu.RUnlock()
	}
}

// resetChunks drops every chunk replica and the version/debt tables
// (crash / drain), releasing the dropped debt from the pending counter.
func (sv *server) resetChunks() {
	for i := range sv.stripes {
		st := &sv.stripes[i]
		st.mu.Lock()
		st.m = make(map[chunkID][]byte)
		st.ver = make(map[chunkID]uint64)
		if n := len(st.debt); n > 0 {
			sv.repairPending.Add(-int64(n))
			st.debt = make(map[chunkID]uint64)
		}
		st.mu.Unlock()
	}
}

// descriptor is a blob's metadata. The authoritative copy lives on the
// blob's primary descriptor server; replicas hold copies.
type descriptor struct {
	size    int64
	version uint64
	// latch serializes writes and makes multi-chunk commits atomically
	// visible. Only the primary's latch is used.
	latch sync.RWMutex
}

// New builds a blob store spanning every node of the cluster.
func New(c *cluster.Cluster, cfg Config) *Store {
	return NewOnNodes(c, cfg, nil)
}

// NewOnNodes builds a blob store that initially serves from the given
// subset of cluster nodes (nil means all). Per-server state exists for
// every cluster node so that AddServer can later join the rest.
func NewOnNodes(c *cluster.Cluster, cfg Config, serving []cluster.NodeID) *Store {
	cfg = cfg.withDefaults()
	if cfg.Replication > c.Size() {
		cfg.Replication = c.Size()
	}
	inRing := make(map[cluster.NodeID]bool, len(serving))
	if serving == nil {
		for _, n := range c.Nodes() {
			inRing[n.ID] = true
		}
	} else {
		for _, id := range serving {
			inRing[id] = true
		}
	}
	s := &Store{cfg: cfg, cluster: c, ring: chash.New(cfg.VNodes), metrics: metrics.NewRegistry(),
		migBatchHook: cfg.MigrationBatchHook}
	for _, n := range c.Nodes() {
		sv := &server{
			node:          n.ID,
			blobs:         make(map[string]*descriptor),
			wal:           wal.NewMultiLog(cfg.WALLanes),
			repairPending: &s.repairPending,
			migIntent:     &s.migIntent,
		}
		for i := range sv.stripes {
			sv.stripes[i].m = make(map[chunkID][]byte)
			sv.stripes[i].ver = make(map[chunkID]uint64)
			sv.stripes[i].debt = make(map[chunkID]uint64)
		}
		s.servers = append(s.servers, sv)
		if inRing[n.ID] {
			s.ring.Add(int(n.ID))
		}
	}
	return s
}

// Config returns the effective configuration after defaulting.
func (s *Store) Config() Config { return s.cfg }

// ChunkSize reports the store's placement granularity, implementing the
// storage.ChunkSizer extension so front-ends (mpiio collective writes,
// blobfs) can align their accesses to whole chunks.
func (s *Store) ChunkSize() int { return s.cfg.ChunkSize }

// Cluster returns the underlying simulated cluster.
func (s *Store) Cluster() *cluster.Cluster { return s.cluster }

// Metrics returns the store's failure-domain event counters (degraded
// writes, transient retries, repair traffic).
func (s *Store) Metrics() *metrics.Registry { return s.metrics }

// RepairPending reports how many chunk debt entries currently await repair
// across the store (0 in the healthy steady state).
func (s *Store) RepairPending() int64 { return s.repairPending.Load() }

// SetDown marks a server as failed (true) or recovered (false). Reads fall
// back to replicas of a down server; writes whose replica sets contain it
// proceed degraded on the live subset (Config.MinLiveOwners). Flipping a
// server back up kicks a repair pass that drains the replication debt the
// node accumulated while it was down; until a chunk's debt clears, reads
// keep avoiding the stale replica (version-checked fallback in readChunk),
// so rejoin never serves stale bytes.
func (s *Store) SetDown(node cluster.NodeID, down bool) {
	sv := s.servers[int(node)]
	sv.mu.Lock()
	was := sv.down
	sv.down = down
	sv.mu.Unlock()
	tracef("setDown node=%d down=%v was=%v", node, down, was)
	if was && !down {
		// Mark up first so racing writes stop creating new debt for this
		// node, then drain what accumulated. The drain also terminates
		// early if a concurrent flap takes the node back down.
		s.repairNode(storage.NewContext(), node)
	}
}

func (sv *server) isDown() bool {
	sv.mu.RLock()
	defer sv.mu.RUnlock()
	return sv.down
}

func (sv *server) isWiped() bool {
	sv.mu.RLock()
	defer sv.mu.RUnlock()
	return sv.wiped
}

// descOwners returns the descriptor replica set for key, primary first.
// The result is shared with the placement cache: callers must not mutate.
func (s *Store) descOwners(key string) []int {
	return s.ownersForHash(descRingHash(key))
}

// chunkOwners returns the replica set for one chunk, primary first. The
// result is shared with the placement cache: callers must not mutate. Hot
// paths that already computed id.ringHash() call ownersForHash directly so
// the hash also selects the lock stripe.
func (s *Store) chunkOwners(id chunkID) []int {
	return s.ownersForHash(id.ringHash())
}

// primaryDesc returns the primary descriptor server and the live descriptor
// for key, or storage.ErrNotFound.
//
// While a migration is in flight the new primary may not have received its
// descriptor copy yet; the lookup then falls back to the canonical holder
// (canonicalDesc) instead of failing, so foreground ops keep succeeding
// throughout a live join/leave. The fallback resolves to the same
// *descriptor object the migration sweep installs onto gained owners, so
// every op serializes on one latch per blob even mid-handover.
func (s *Store) primaryDesc(key string) (*server, *descriptor, error) {
	owners := s.descOwners(key)
	if len(owners) == 0 {
		return nil, nil, storage.ErrNotFound
	}
	sv := s.servers[owners[0]]
	sv.mu.RLock()
	d, ok := sv.blobs[key]
	sv.mu.RUnlock()
	if !ok {
		if s.migrating.Load() != 0 {
			if sv, d := s.canonicalDesc(key, owners); d != nil {
				return sv, d, nil
			}
		}
		return nil, nil, fmt.Errorf("blob %q: %w", key, storage.ErrNotFound)
	}
	return sv, d, nil
}

// canonicalDesc returns the canonical copy of a descriptor during a
// migration: the first current owner holding it, else the first holder in
// node order. Deterministic — concurrent callers resolve the same object,
// and the migration desc sweep installs exactly this object's pointer onto
// gained owners (install before delete, per key), so the canonical object
// is stable across the whole handover.
func (s *Store) canonicalDesc(key string, owners []int) (*server, *descriptor) {
	for _, o := range owners {
		sv := s.servers[o]
		sv.mu.RLock()
		d, ok := sv.blobs[key]
		sv.mu.RUnlock()
		if ok {
			return sv, d
		}
	}
	for _, sv := range s.servers {
		if sv.isWiped() {
			continue
		}
		sv.mu.RLock()
		d, ok := sv.blobs[key]
		sv.mu.RUnlock()
		if ok {
			return sv, d
		}
	}
	return nil, nil
}

// hdrPool stages the small record headers of vectored WAL appends (chunk
// addressing, descriptor metadata). Chunk data never enters it: wal.AppendV
// streams the data segment from the caller's buffer straight to the log
// medium, so the only staged bytes are the header's few dozen.
var hdrPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// walAppendLane records a durable mutation on one of sv's log lanes — the
// record payload being header||data, appended vectored (and possibly
// group-committed with concurrent lane appenders) so data is copied exactly
// once — and charges the log persistence on sv's disk through cg (directly
// on the caller's clock, or into a fan task's ledger).
func (s *Store) walAppendLane(cg *charge, sv *server, lane int, t wal.RecordType, header, data []byte) {
	_, n, err := sv.wal.AppendV(lane, t, header, data)
	if err != nil {
		// The in-memory buffer cannot fail; a failure here is a bug.
		panic(fmt.Sprintf("blob: wal append: %v", err))
	}
	cg.diskAppend(sv.node, n)
}

// walAppendChunk logs a chunk mutation on the chunk's lane: the addressing
// header is staged in a pooled buffer, the chunk bytes stream through the
// vectored append. h is the chunk's placement hash, which callers on the
// hot path have already computed — it selects the lane exactly as it
// selects the lock stripe.
func (s *Store) walAppendChunk(cg *charge, sv *server, t wal.RecordType, h uint64, id chunkID, within int64, ver uint64, data []byte) {
	bp := hdrPool.Get().(*[]byte)
	*bp = appendChunkHeader((*bp)[:0], id, within, ver)
	s.walAppendLane(cg, sv, sv.chunkLane(h), t, *bp, data)
	hdrPool.Put(bp)
}

// walAppendMeta logs a descriptor mutation on the descriptor's lane through
// the same pooled staging (meta payloads are all header, no data segment).
func (s *Store) walAppendMeta(cg *charge, sv *server, t wal.RecordType, key string, size int64) {
	bp := hdrPool.Get().(*[]byte)
	*bp = appendMetaPayload((*bp)[:0], key, size)
	s.walAppendLane(cg, sv, sv.metaLane(key), t, *bp, nil)
	hdrPool.Put(bp)
}

// CreateBlob registers a new, empty blob. The descriptor is written to its
// primary and replicated synchronously.
func (s *Store) CreateBlob(ctx *storage.Context, key string) error {
	s.member.RLock()
	defer s.member.RUnlock()
	return s.createBlob(ctx, key)
}

// createBlob is CreateBlob without the member gate, for callers already
// holding it (RenameBlob): RLock does not nest — a writer queued between
// two read acquisitions deadlocks both.
func (s *Store) createBlob(ctx *storage.Context, key string) error {
	if key == "" || strings.ContainsRune(key, '\x00') {
		return fmt.Errorf("blob key %q: %w", key, storage.ErrInvalidArg)
	}
	owners := s.descOwners(key)
	primary := s.servers[owners[0]]
	if primary.isDown() {
		return fmt.Errorf("blob %q: primary down: %w", key, storage.ErrUnavailable)
	}
	// One metadata RPC to the primary: flat-namespace single lookup — this
	// is the cost asymmetry against hierarchical path resolution.
	s.cluster.MetaOp(ctx.Clock, primary.node, 1)
	if s.cfg.IndexedScan {
		// Prefix-index insert, the write-path price of cheap scans.
		s.cluster.LocalCompute(ctx.Clock, s.cluster.Cost().MetaTime(1))
	}

	primary.mu.Lock()
	if _, exists := primary.blobs[key]; exists {
		primary.mu.Unlock()
		return fmt.Errorf("blob %q: %w", key, storage.ErrExists)
	}
	primary.blobs[key] = &descriptor{}
	primary.mu.Unlock()
	cg := s.directCharge(ctx)
	s.walAppendMeta(&cg, primary, wal.RecCreate, key, 0)

	// Synchronous descriptor replication, replicas updated in parallel.
	s.replicateDesc(ctx, key, owners[1:], 0)
	return nil
}

// replicateDesc copies the descriptor (with the given size) to replicas,
// charging parallel RPC+WAL costs.
func (s *Store) replicateDesc(ctx *storage.Context, key string, replicas []int, size int64) {
	fan := s.newFan()
	for _, r := range replicas {
		t := fan.task(taskDescReplicate)
		t.sv = s.servers[r]
		t.key = key
		t.size = size
		t.rec = wal.RecCreate
		t.meta = true // upsert: the replica may not hold the descriptor yet
		fan.spawn(t)
	}
	fan.join(ctx)
}

// DeleteBlob removes the blob's descriptor and all chunk replicas. Chunk
// deletion records bound for the same server are batched into one WAL
// append.
func (s *Store) DeleteBlob(ctx *storage.Context, key string) error {
	s.member.RLock()
	defer s.member.RUnlock()
	primary, d, err := s.primaryDesc(key)
	if err != nil {
		return err
	}
	if primary.isDown() {
		return fmt.Errorf("blob %q: primary down: %w", key, storage.ErrUnavailable)
	}
	d.latch.Lock()
	defer d.latch.Unlock()
	return s.deleteLocked(ctx, key, primary, d)
}

// deleteLocked performs the deletion with the descriptor latch already held.
// RenameBlob (rename.go) calls it while additionally holding the target
// blob's latch, matching the multi-latch discipline of txn.go.
func (s *Store) deleteLocked(ctx *storage.Context, key string, primary *server, d *descriptor) error {
	s.cluster.MetaOp(ctx.Clock, primary.node, 1)
	if s.cfg.IndexedScan {
		// Prefix-index removal mirrors the insert cost.
		s.cluster.LocalCompute(ctx.Clock, s.cluster.Cost().MetaTime(1))
	}
	size := d.size
	nChunks := (size + int64(s.cfg.ChunkSize) - 1) / int64(s.cfg.ChunkSize)

	// Drop chunk replicas, recording each removal durably; records are
	// grouped per server and logged with one batched append each.
	batch := newWalBatch(s)
	for idx := int64(0); idx < nChunks; idx++ {
		id := chunkID{key, idx}
		h := id.ringHash()
		for _, o := range s.ownersForHash(h) {
			sv := s.servers[o]
			sv.deleteChunk(h, id)
			batch.addChunk(sv, wal.RecChunkDelete, h, id, 0, 0, nil)
		}
	}
	batch.flush(ctx)
	// Drop descriptor replicas, then the primary copy.
	cg := s.directCharge(ctx)
	for _, o := range s.descOwners(key) {
		sv := s.servers[o]
		sv.mu.Lock()
		delete(sv.blobs, key)
		sv.mu.Unlock()
		s.walAppendMeta(&cg, sv, wal.RecDelete, key, 0)
	}
	return nil
}

// BlobSize reports the blob's size from its primary descriptor.
func (s *Store) BlobSize(ctx *storage.Context, key string) (int64, error) {
	s.member.RLock()
	defer s.member.RUnlock()
	primary, d, err := s.primaryDesc(key)
	if err != nil {
		return 0, err
	}
	s.cluster.MetaOp(ctx.Clock, primary.node, 1)
	d.latch.RLock()
	defer d.latch.RUnlock()
	return d.size, nil
}

// Scan lists blobs with the given key prefix in key order. The request is
// broadcast to every server's descriptor table (the flat namespace has no
// index), mirroring the paper's note that scan-based emulation is
// "far from optimized".
func (s *Store) Scan(ctx *storage.Context, prefix string) ([]storage.BlobInfo, error) {
	// Per-server hit slices: each key is reported only by its primary, so
	// the slices are disjoint and merge without deduplication. Tasks only
	// collect descriptor pointers — a worker must never block on the
	// descriptor latch (writers hold it across their own fan joins, see
	// the dispatch.go contract); sizes are read on the caller after join.
	type hit struct {
		key string
		d   *descriptor
	}
	results := make([][]hit, len(s.servers))
	fan := s.newFan()
	for i, sv := range s.servers {
		i, sv := i, sv
		t := fan.task(taskFunc)
		t.fn = func(cg *charge) error {
			cg.metaOp(sv.node, 1)
			sv.mu.RLock()
			examined := len(sv.blobs)
			matches := 0
			for key, d := range sv.blobs {
				if !strings.HasPrefix(key, prefix) {
					continue
				}
				matches++
				// Only the primary's answer is authoritative for size.
				if owners := s.descOwners(key); len(owners) > 0 && owners[0] == i {
					//blobvet:allow virtualtime per-server hit slices are disjoint scratch; the merged result is sorted by key after the join
					results[i] = append(results[i], hit{key, d})
				}
			}
			sv.mu.RUnlock()
			if s.cfg.IndexedScan {
				// Ordered prefix index: cost follows the matches only.
				cg.localCompute(s.cluster.Cost().MetaTime(1 + matches/16))
			} else {
				// The plain flat namespace has no index: every descriptor on
				// the server is examined regardless of the prefix — the reason
				// the paper calls scan-based directory emulation "far from
				// optimized". One metadata unit per four descriptors examined
				// approximates RADOS-style pool listing cost.
				cg.localCompute(s.cluster.Cost().MetaTime(1 + examined/4))
			}
			return nil
		}
		fan.spawn(t)
	}
	if _, err := fan.join(ctx); err != nil {
		return nil, err
	}
	var out []storage.BlobInfo
	for _, part := range results {
		for _, h := range part {
			// The latch is the writers' lock for primary descriptor sizes;
			// taking it here, on the caller with no other lock held, cannot
			// deadlock against a writer's fan.
			h.d.latch.RLock()
			size := h.d.size
			h.d.latch.RUnlock()
			out = append(out, storage.BlobInfo{Key: h.key, Size: size})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out, nil
}

// walBatch accumulates per-(server,lane) WAL records so a multi-record
// operation (chunk drops of a delete, commit markers of a 2PC write)
// issues one wal.MultiLog.AppendNV per lane touched instead of one append
// per record. Only the small record headers are staged (in one pooled
// buffer; spec headers point into it) — data segments, when present, ride
// through the vectored append straight from the caller's bytes. Batches
// are pooled, and the per-lane spec slices keep their capacity across
// recycling, so a steady-state commit phase allocates nothing.
type walBatch struct {
	s       *Store
	servers []*server
	lanes   []int // parallel to servers: the lane of each group
	specs   [][]wal.AppendVSpec
	extents [][][2]int // staged header extents, parallel to specs
	buf     *[]byte
}

var walBatchPool = sync.Pool{New: func() any { return new(walBatch) }}

func newWalBatch(s *Store) *walBatch {
	b := walBatchPool.Get().(*walBatch)
	b.s = s
	b.buf = hdrPool.Get().(*[]byte)
	*b.buf = (*b.buf)[:0] // pooled buffers keep their stale length; start clean
	return b
}

// release returns the staging buffer and the batch to their pools. The
// specs/extents backing arrays are kept (truncated on slot reuse in add)
// with their spec entries zeroed so no caller data buffer stays reachable
// from the pool; the servers slice is what bounds the live slot count.
func (b *walBatch) release() {
	hdrPool.Put(b.buf)
	b.buf = nil
	for i := range b.servers {
		b.servers[i] = nil
		for j := range b.specs[i] {
			b.specs[i][j] = wal.AppendVSpec{}
		}
	}
	b.servers = b.servers[:0]
	b.lanes = b.lanes[:0]
	b.s = nil
	walBatchPool.Put(b)
}

// addChunk stages one chunk record for sv, grouped under the chunk's log
// lane (h is its placement hash). data (may be nil for the marker records)
// is carried by reference into the vectored append; the caller must keep
// it unchanged until the batch flushes.
func (b *walBatch) addChunk(sv *server, t wal.RecordType, h uint64, id chunkID, within int64, ver uint64, data []byte) {
	start := len(*b.buf)
	*b.buf = appendChunkHeader(*b.buf, id, within, ver)
	b.add(sv, sv.chunkLane(h), t, start, len(*b.buf), data)
}

// addMeta stages one descriptor record for sv on the descriptor's lane.
func (b *walBatch) addMeta(sv *server, t wal.RecordType, key string, size int64) {
	start := len(*b.buf)
	*b.buf = appendMetaPayload(*b.buf, key, size)
	b.add(sv, sv.metaLane(key), t, start, len(*b.buf), nil)
}

// add records the spec under the (sv, lane) group. Header extents are
// resolved into slices only at flush time, because the staging buffer may
// still be reallocated by later appends; the data segment is stable and
// stored now.
func (b *walBatch) add(sv *server, lane int, t wal.RecordType, start, end int, data []byte) {
	i := -1
	for j, known := range b.servers {
		if known == sv && b.lanes[j] == lane {
			i = j
			break
		}
	}
	if i < 0 {
		i = len(b.servers)
		b.servers = append(b.servers, sv)
		b.lanes = append(b.lanes, lane)
		if len(b.specs) <= i {
			b.specs = append(b.specs, nil)
			b.extents = append(b.extents, nil)
		} else {
			// Recycled slot: keep the backing arrays, drop stale entries.
			b.specs[i] = b.specs[i][:0]
			b.extents[i] = b.extents[i][:0]
		}
	}
	b.specs[i] = append(b.specs[i], wal.AppendVSpec{Type: t, Payload: data})
	b.extents[i] = append(b.extents[i], [2]int{start, end})
}

// resolve turns the staged header extents into slices, once the staging
// buffer has stopped growing.
func (b *walBatch) resolve() {
	for i := range b.servers {
		for j := range b.specs[i] {
			ext := b.extents[i][j]
			b.specs[i][j].Header = (*b.buf)[ext[0]:ext[1]]
		}
	}
}

// walAppendBatch logs specs to one of sv's lanes with a single AppendNV
// (atomic within the lane, group-committed with concurrent lane traffic)
// and charges the disk append through cg. Shared by walBatch.flush (direct
// charging) and the dispatcher's taskWalFlush (ledger charging), so the
// append invariant and the cost shape cannot diverge between the two.
func (s *Store) walAppendBatch(cg *charge, sv *server, lane int, specs []wal.AppendVSpec) {
	_, n, err := sv.wal.AppendNV(lane, specs)
	if err != nil {
		panic(fmt.Sprintf("blob: wal batch append: %v", err))
	}
	cg.diskAppend(sv.node, n)
}

// flush logs every (server,lane) batch, charging the disk appends
// sequentially on ctx's clock — the cost shape of a client walking replica
// sets one record at a time (deletes, truncates, transaction commit
// markers).
func (b *walBatch) flush(ctx *storage.Context) {
	b.resolve()
	cg := b.s.directCharge(ctx)
	for i := range b.servers {
		b.s.walAppendBatch(&cg, b.servers[i], b.lanes[i], b.specs[i])
	}
	b.release()
}

// flushParallel logs each (server,lane) batch as a worker-pool task on its
// own forked clock and joins on the slowest — the cost shape of the 2PC
// commit phase, where every participant persists its commit records
// concurrently. metaPerRecord additionally charges one commit round trip
// per record on the participant's clock before the append.
func (b *walBatch) flushParallel(ctx *storage.Context, metaPerRecord bool) {
	b.resolve()
	fan := b.s.newFan()
	for i := range b.servers {
		t := fan.task(taskWalFlush)
		t.sv = b.servers[i]
		t.lane = b.lanes[i]
		t.specs = b.specs[i]
		t.meta = metaPerRecord
		fan.spawn(t)
	}
	// join waits for every append before the staging buffer is recycled.
	fan.join(ctx)
	b.release()
}
