// rebalance_crash_test.go pins the crash-safety and liveness claims of the
// epoch-versioned migration protocol (rebalance.go):
//
//   - TestMigrationCrashSweep{Add,Remove} crash the WHOLE cluster at every
//     migration batch boundary — and at a torn-tail variant of each, the
//     crash landing inside the last medium write — then recover every node
//     and require the open intent to roll forward to a placement satisfying
//     CheckInvariants, with every blob byte-identical to the pre-migration
//     oracle, on both the parallel and serial recovery paths (byte-identical
//     to each other: state AND repaired media).
//   - TestMigrationCheckpointCarriesIntent checkpoints mid-migration (the
//     quiescent gap between two batches) and crashes after: the compacted
//     logs must still replay an open RecMigrateBegin — the planner re-logs
//     it ahead of the snapshot — and roll forward.
//   - TestRemoveServerResetsWAL is the satellite regression: a drained
//     node's lanes are reset with its memory, so a later crash/recover
//     cycle cannot resurrect pre-drain state.
//   - TestMigrationThrottle pins the token bucket in virtual time.
//   - TestMigrationUnderLiveTraffic runs concurrent foreground readers and
//     writers (plain and 2PC) across a live join and drain, requiring every
//     write to succeed and every read to be read-your-writes exact — the
//     zero-stale-reads contract.
//   - FuzzRebalanceCrash drives fuzzer-chosen workloads into a membership
//     change, crashes at a fuzzer-chosen batch boundary with optional torn
//     tails, and requires recovery equivalence plus oracle-exact contents.
package blob

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/storage"
)

// captureAllLanes snapshots every server's full lane media.
func captureAllLanes(s *Store) [][][]byte {
	out := make([][][]byte, len(s.servers))
	for i, sv := range s.servers {
		out[i] = captureLanes(sv)
	}
	return out
}

func restoreAllLanes(s *Store, snap [][][]byte) {
	for i, sv := range s.servers {
		restoreLanes(sv, snap[i])
	}
}

// tearMigrationTails chops 3 bytes off the tail of every lane that grew
// past its pre-migration length `base` — the whole-cluster crash landing
// mid-append of the migration's own last record per lane. Only
// migration-era records may tear: the seed workload's history was
// acknowledged long before the crash, so a tear landing there would be an
// illegitimate medium state, not a crash. One witness server is skipped
// entirely: a crash that tears the intent record on EVERY server makes the
// membership change itself non-durable, which the store-global ring (whose
// membership is durable out of band) cannot represent.
func tearMigrationTails(s *Store, base [][][]byte, witness int) {
	for i, sv := range s.servers {
		if i == witness {
			continue
		}
		for lane := 0; lane < sv.wal.Lanes(); lane++ {
			lb := sv.wal.LaneBuffer(lane)
			if lb.Len() >= len(base[i][lane])+3 {
				lb.Truncate(lb.Len() - 3)
			}
		}
	}
}

// crashRecoverAll crashes every node from the current media and recovers
// them all; the last Recover triggers the migration roll-forward if an
// intent replayed open.
func crashRecoverAll(t *testing.T, s *Store, serial bool) {
	t.Helper()
	for si := range s.servers {
		s.Crash(cluster.NodeID(si))
	}
	s.cfg.SerialRecovery = serial
	for si := range s.servers {
		if err := s.Recover(cluster.NodeID(si)); err != nil {
			t.Fatalf("recover node %d (serial=%v): %v", si, serial, err)
		}
	}
	s.cfg.SerialRecovery = false
}

// runMigrationCrashSweep seeds a cluster, runs one membership change while
// capturing full cluster media at every batch boundary, then replays each
// capture (and its torn variant) as a whole-cluster crash.
func runMigrationCrashSweep(t *testing.T, remove bool) {
	c := cluster.New(cluster.Config{Nodes: 5, Seed: 91})
	initial := []cluster.NodeID{0, 1, 2, 3}
	if remove {
		initial = []cluster.NodeID{0, 1, 2, 3, 4}
	}
	// InlineFanout: batch boundaries are quiescent instants, so a media
	// capture there is a consistent whole-cluster crash image, and the
	// roll-forward's own appends replay deterministically.
	s := NewOnNodes(c, Config{ChunkSize: 64, Replication: 2, WALLanes: 4,
		InlineFanout: true, MigrationBatchChunks: 4}, initial)
	ctx := storage.NewContext()
	expect := seedBlobs(t, s, ctx, 24)

	// Snapshot points: the pre-sweep boundary (intent durable, no batch —
	// the hook's batch == -1 call), every batch boundary, and completion.
	// The pre-intent state is NOT a valid crash image here: the ring is
	// store-global (membership is assumed durable out of band), so the
	// earliest representable crash is "intent logged".
	base := captureAllLanes(s)
	var snaps [][][][]byte
	s.migBatchHook = func(int) { snaps = append(snaps, captureAllLanes(s)) }
	var err error
	if remove {
		err = s.RemoveServer(ctx, 4)
	} else {
		err = s.AddServer(ctx, 4)
	}
	if err != nil {
		t.Fatal(err)
	}
	s.migBatchHook = nil
	snaps = append(snaps, captureAllLanes(s)) // completed (End logged)
	if len(snaps) < 4 {
		t.Fatalf("migration produced only %d batch boundaries; workload too small to sweep", len(snaps)-2)
	}

	for si, snap := range snaps {
		for _, torn := range []bool{false, true} {
			// Parallel recovery first.
			restoreAllLanes(s, snap)
			if torn {
				tearMigrationTails(s, base, 0)
			}
			crashRecoverAll(t, s, false)
			if s.migIntent.Load() != nil {
				t.Fatalf("snap %d torn=%v: migration intent still open after recovery", si, torn)
			}
			if msg := s.CheckInvariants(); msg != "" {
				t.Fatalf("snap %d torn=%v: invariants: %s", si, torn, msg)
			}
			verifyBlobs(t, s, ctx, expect)
			if remove {
				if s.DescriptorCount(4)+s.ChunkCount(4) != 0 {
					t.Fatalf("snap %d torn=%v: drained node holds data after roll-forward", si, torn)
				}
			}
			parallel := make([]nodeState, len(s.servers))
			for ni, sv := range s.servers {
				parallel[ni] = captureNode(sv)
			}

			// The identical crash through the serial oracle must land on
			// identical bytes everywhere — state and repaired media, including
			// the roll-forward's own appends.
			restoreAllLanes(s, snap)
			if torn {
				tearMigrationTails(s, base, 0)
			}
			crashRecoverAll(t, s, true)
			for ni, sv := range s.servers {
				serial := captureNode(sv)
				if !reflect.DeepEqual(parallel[ni], serial) {
					t.Fatalf("snap %d torn=%v: node %d diverges between parallel and serial recovery\nparallel descs %v chunks %d\nserial   descs %v chunks %d",
						si, torn, ni, parallel[ni].descs, len(parallel[ni].chunks),
						serial.descs, len(serial.chunks))
				}
			}
		}
	}
}

func TestMigrationCrashSweepAdd(t *testing.T)    { runMigrationCrashSweep(t, false) }
func TestMigrationCrashSweepRemove(t *testing.T) { runMigrationCrashSweep(t, true) }

// TestMigrationCheckpointCarriesIntent checkpoints in the quiescent gap
// between two migration batches — which resets every lane — and crashes
// right after. The compacted logs must still replay the open intent (the
// checkpoint planner re-logs RecMigrateBegin ahead of the snapshot) and the
// recovery roll-forward must complete the migration.
func TestMigrationCheckpointCarriesIntent(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 5, Seed: 23})
	s := NewOnNodes(c, Config{ChunkSize: 64, Replication: 2, WALLanes: 4,
		InlineFanout: true, MigrationBatchChunks: 4}, []cluster.NodeID{0, 1, 2, 3})
	ctx := storage.NewContext()
	expect := seedBlobs(t, s, ctx, 24)

	var snap [][][]byte
	s.migBatchHook = func(batch int) {
		if batch == 1 {
			s.CheckpointAll()
			snap = captureAllLanes(s)
		}
	}
	if err := s.AddServer(ctx, 4); err != nil {
		t.Fatal(err)
	}
	s.migBatchHook = nil
	if snap == nil {
		t.Fatal("migration finished before batch 1; workload too small")
	}

	restoreAllLanes(s, snap)
	crashRecoverAll(t, s, false)
	if s.migIntent.Load() != nil {
		t.Fatal("intent not closed after post-checkpoint crash recovery")
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	verifyBlobs(t, s, ctx, expect)
	if s.DescriptorCount(4)+s.ChunkCount(4) == 0 {
		t.Fatal("joined server received no data through the roll-forward")
	}
}

// TestRemoveServerResetsWAL pins the drain-the-logs fix: after RemoveServer
// the drained node's lanes are empty, and a crash/recover cycle of the whole
// cluster resurrects none of its pre-drain state.
func TestRemoveServerResetsWAL(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 4, Seed: 6})
	s := New(c, Config{ChunkSize: 64, Replication: 2, WALLanes: 4, InlineFanout: true})
	ctx := storage.NewContext()
	expect := seedBlobs(t, s, ctx, 20)

	if err := s.RemoveServer(ctx, 1); err != nil {
		t.Fatal(err)
	}
	recs, err := s.LogRecords(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("drained node's WAL still holds %d records (first: %v)", len(recs), recs[0].Type)
	}
	crashRecoverAll(t, s, false)
	if got := s.DescriptorCount(1) + s.ChunkCount(1); got != 0 {
		t.Fatalf("crash/recover resurrected %d objects on the drained node", got)
	}
	if len(s.ServingNodes()) != 3 {
		t.Fatalf("serving nodes = %v", s.ServingNodes())
	}
	verifyBlobs(t, s, ctx, expect)
}

// TestMigrationThrottle pins the token bucket: the same join under a tight
// MigrationRateBytes must charge more virtual time to the migration caller
// than under an effectively unlimited rate.
func TestMigrationThrottle(t *testing.T) {
	run := func(rate int) int64 {
		c := cluster.New(cluster.Config{Nodes: 5, Seed: 9})
		s := NewOnNodes(c, Config{ChunkSize: 64, Replication: 2, WALLanes: 4,
			InlineFanout: true, MigrationRateBytes: rate}, []cluster.NodeID{0, 1, 2, 3})
		ctx := storage.NewContext()
		seedBlobs(t, s, ctx, 30)
		start := ctx.Clock.Now()
		if err := s.AddServer(ctx, 4); err != nil {
			t.Fatal(err)
		}
		return int64(ctx.Clock.Now() - start)
	}
	throttled := run(256)
	unthrottled := run(1 << 30)
	if throttled <= unthrottled {
		t.Fatalf("throttled join (%d) not slower than unthrottled (%d)", throttled, unthrottled)
	}
	// The deficit sleeps are whole migrationTicks; a 256 B/tick budget
	// against kilobytes of moved chunks must cost at least a few.
	if throttled-unthrottled < 3*int64(migrationTick) {
		t.Fatalf("throttle charged only %d over the unthrottled join", throttled-unthrottled)
	}
}

// TestMigrationUnderLiveTraffic is the online-elasticity contract test:
// foreground readers and writers run full-speed across a live join and a
// live drain. Every write must succeed (nothing is down), and every read
// must return exactly the worker's last acknowledged bytes — never a stale
// or empty copy from a mid-handover replica.
func TestMigrationUnderLiveTraffic(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 6, Seed: 17})
	s := NewOnNodes(c, Config{ChunkSize: 32, Replication: 3, MigrationBatchChunks: 2},
		[]cluster.NodeID{0, 1, 2, 3, 4})
	ctx := storage.NewContext()

	const workers = 4
	keys := make([]string, workers)
	oracle := make([][]byte, workers)
	for w := 0; w < workers; w++ {
		keys[w] = fmt.Sprintf("live-%d", w)
		if err := s.CreateBlob(ctx, keys[w]); err != nil {
			t.Fatal(err)
		}
		oracle[w] = pattern(w, 200) // multi-chunk from the start
		if _, err := s.WriteBlob(ctx, keys[w], 0, oracle[w]); err != nil {
			t.Fatal(err)
		}
	}
	roData := pattern(99, 300)
	if err := s.CreateBlob(ctx, "live-ro"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteBlob(ctx, "live-ro", 0, roData); err != nil {
		t.Fatal(err)
	}

	// Stretch the sweep in real time so the workers genuinely interleave
	// with every migration stage. This test asserts oracle equality, not
	// timing, so the real-time pacing cannot leak into any replayed log.
	//blobvet:allow virtualtime test-only real-time pacing to force goroutine interleaving; assertions are oracle-based, not timing-based
	s.migBatchHook = func(int) { time.Sleep(200 * time.Microsecond) }
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			wctx := storage.NewContext()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				data := pattern(w*31+i, 30+i%70)
				off := int64((i * 17) % 180)
				var err error
				if i%4 == 3 { // transactional variant: 2PC under migration
					txn := s.Begin(wctx)
					if err = txn.Write(keys[w], off, data); err == nil {
						err = txn.Commit()
					}
				} else {
					_, err = s.WriteBlob(wctx, keys[w], off, data)
				}
				if err != nil {
					t.Errorf("worker %d write %d during migration: %v", w, i, err)
					return
				}
				oracle[w] = applyOracle(oracle[w], off, data)
				got := make([]byte, len(oracle[w]))
				if _, err := s.ReadBlob(wctx, keys[w], 0, got); err != nil {
					t.Errorf("worker %d read %d during migration: %v", w, i, err)
					return
				}
				if !bytes.Equal(got, oracle[w]) {
					t.Errorf("worker %d: stale read during migration at op %d", w, i)
					return
				}
				ro := make([]byte, len(roData))
				if _, err := s.ReadBlob(wctx, "live-ro", 0, ro); err != nil {
					t.Errorf("worker %d: read-only blob unavailable during migration: %v", w, err)
					return
				}
				if !bytes.Equal(ro, roData) {
					t.Errorf("worker %d: read-only blob went stale during migration", w)
					return
				}
			}
		}()
	}
	if err := s.AddServer(ctx, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveServer(ctx, 0); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	s.migBatchHook = nil
	if t.Failed() {
		return
	}

	if msg := s.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	for w := 0; w < workers; w++ {
		got := make([]byte, len(oracle[w]))
		if _, err := s.ReadBlob(ctx, keys[w], 0, got); err != nil || !bytes.Equal(got, oracle[w]) {
			t.Fatalf("worker %d key diverged after churn: %v", w, err)
		}
	}
	if s.DescriptorCount(0)+s.ChunkCount(0) != 0 {
		t.Fatal("drained node still holds data")
	}
}

// FuzzRebalanceCrash: a fuzzer-derived workload, then a membership change
// crashed at a fuzzer-chosen batch boundary (optionally with torn lane
// tails). Recovery must close the intent, satisfy the invariants, serve
// every blob oracle-exact, and agree byte-for-byte between the parallel and
// serial paths. Registered alongside the other Fuzz targets in
// scripts/benchcheck.sh's fuzz loop.
func FuzzRebalanceCrash(f *testing.F) {
	f.Add([]byte{}, uint32(0), false, false)
	f.Add([]byte{0, 0, 0, 1, 0, 120, 0, 1, 0, 1, 1, 70, 1, 0, 40}, uint32(1), false, false)
	f.Add([]byte{0, 0, 0, 1, 0, 200, 0, 1, 0, 1, 1, 90, 3, 0, 50, 1, 2, 0, 1, 2, 60}, uint32(2), true, true)
	f.Add([]byte{0, 0, 0, 1, 0, 90, 5, 0, 0, 1, 0, 80, 0, 1, 0, 1, 1, 100}, uint32(0), false, true)

	keys := []string{"m0", "m1", "m2"}
	f.Fuzz(func(t *testing.T, script []byte, crashAt uint32, torn, remove bool) {
		initial := []cluster.NodeID{0, 1, 2, 3}
		if remove {
			initial = []cluster.NodeID{0, 1, 2, 3, 4}
		}
		s := NewOnNodes(cluster.New(cluster.Config{Nodes: 5, Seed: 3}),
			Config{ChunkSize: 32, Replication: 2, WALLanes: 4,
				InlineFanout: true, MigrationBatchChunks: 3}, initial)
		ctx := storage.NewContext()
		want := make(map[string][]byte)
		live := make(map[string]bool)
		for i := 0; i+3 <= len(script); i += 3 {
			key := keys[int(script[i+1])%len(keys)]
			arg := int(script[i+2])
			switch script[i] % 6 {
			case 0:
				if !live[key] {
					if err := s.CreateBlob(ctx, key); err != nil {
						t.Fatal(err)
					}
					live[key] = true
					want[key] = []byte{}
				}
			case 1, 2:
				if live[key] {
					data := pattern(i, arg+1)
					off := int64(arg % 48)
					if _, err := s.WriteBlob(ctx, key, off, data); err != nil {
						t.Fatal(err)
					}
					want[key] = applyOracle(want[key], off, data)
				}
			case 3:
				if live[key] {
					if err := s.TruncateBlob(ctx, key, int64(arg)); err != nil {
						t.Fatal(err)
					}
					cur := want[key]
					if arg <= len(cur) {
						want[key] = cur[:arg]
					} else {
						want[key] = append(cur, make([]byte, arg-len(cur))...)
					}
				}
			case 4:
				if live[key] {
					if err := s.DeleteBlob(ctx, key); err != nil {
						t.Fatal(err)
					}
					live[key] = false
					delete(want, key)
				}
			case 5:
				s.CheckpointAll()
			}
		}

		base := captureAllLanes(s)
		var snaps [][][][]byte
		s.migBatchHook = func(int) { snaps = append(snaps, captureAllLanes(s)) }
		var err error
		if remove {
			err = s.RemoveServer(ctx, 4)
		} else {
			err = s.AddServer(ctx, 4)
		}
		if err != nil {
			t.Fatal(err)
		}
		s.migBatchHook = nil
		snaps = append(snaps, captureAllLanes(s))
		snap := snaps[int(crashAt)%len(snaps)]

		check := func(serial bool) []nodeState {
			restoreAllLanes(s, snap)
			if torn {
				tearMigrationTails(s, base, 0)
			}
			crashRecoverAll(t, s, serial)
			if s.migIntent.Load() != nil {
				t.Fatalf("serial=%v: intent still open after recovery", serial)
			}
			if msg := s.CheckInvariants(); msg != "" {
				t.Fatalf("serial=%v: invariants: %s", serial, msg)
			}
			for key, data := range want {
				size, err := s.BlobSize(ctx, key)
				if err != nil || size != int64(len(data)) {
					t.Fatalf("serial=%v: blob %q size (%d, %v), want %d", serial, key, size, err, len(data))
				}
				if len(data) == 0 {
					continue
				}
				got := make([]byte, len(data))
				if _, err := s.ReadBlob(ctx, key, 0, got); err != nil {
					t.Fatalf("serial=%v: read %q: %v", serial, key, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("serial=%v: blob %q diverged from the oracle", serial, key)
				}
			}
			states := make([]nodeState, len(s.servers))
			for ni, sv := range s.servers {
				states[ni] = captureNode(sv)
			}
			return states
		}
		parallel := check(false)
		serial := check(true)
		for ni := range parallel {
			if !reflect.DeepEqual(parallel[ni], serial[ni]) {
				t.Fatalf("node %d diverges between parallel and serial recovery", ni)
			}
		}
	})
}
