package blob

import (
	"fmt"
	"sync"

	"repro/internal/storage"
	"repro/internal/wal"
)

// ReadBlob reads up to len(p) bytes at off. Short reads happen at EOF;
// reading at or beyond EOF returns 0, nil. If a chunk's primary is down the
// read falls back to the next replica.
func (s *Store) ReadBlob(ctx *storage.Context, key string, off int64, p []byte) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("read %q at %d: %w", key, off, storage.ErrInvalidArg)
	}
	primary, d, err := s.primaryDesc(key)
	if err != nil {
		return 0, err
	}
	// Size lookup: one flat-namespace metadata op on the descriptor primary.
	s.cluster.MetaOp(ctx.Clock, primary.node, 1)

	d.latch.RLock()
	defer d.latch.RUnlock()
	size := d.size
	if off >= size {
		return 0, nil
	}
	want := int64(len(p))
	if off+want > size {
		want = size - off
	}

	// Fan out per-chunk reads with forked clocks; join on the slowest —
	// parallel striped reads are the throughput story of object storage.
	cs := int64(s.cfg.ChunkSize)
	fan := newFan()
	var n int64
	for n < want {
		idx := (off + n) / cs
		within := (off + n) % cs
		take := cs - within
		if take > want-n {
			take = want - n
		}
		dst := p[n : n+take]
		child := fan.child(ctx)
		if err := s.readChunk(child, chunkID{key, idx}, within, dst); err != nil {
			return int(n), err
		}
		n += take
	}
	fan.join(ctx)
	return int(n), nil
}

// readChunk reads from the first live replica of the chunk. Missing chunk
// data within the blob's size reads as zeros (sparse blob semantics). The
// placement hash is computed once and reused for both the owner lookup and
// the lock-stripe selection — the whole dispatch is allocation-free.
func (s *Store) readChunk(ctx *storage.Context, id chunkID, within int64, dst []byte) error {
	h := id.ringHash()
	owners := s.ownersForHash(h)
	for _, o := range owners {
		sv := s.servers[o]
		if sv.isDown() {
			continue
		}
		var copied int
		st := sv.stripe(h)
		st.mu.RLock()
		if data, ok := st.m[id]; ok && within < int64(len(data)) {
			copied = copy(dst, data[within:])
		}
		st.mu.RUnlock()
		// Sparse tail: anything the replica did not cover reads as zeros.
		clear(dst[copied:])
		// Cost: RPC carrying the chunk payload back, plus the disk read.
		s.cluster.DiskRead(ctx.Clock, sv.node, len(dst))
		s.cluster.RPC(ctx.Clock, sv.node, 64, len(dst), 0)
		return nil
	}
	return fmt.Errorf("chunk %d of %q: all replicas down: %w", id.idx, id.key, storage.ErrStaleHandle)
}

// WriteBlob writes p at off, extending the blob as needed. A write that
// spans a single chunk commits directly on that chunk's replica set; a
// multi-chunk write runs the Týr-style lightweight transaction: prepare on
// every participant chunk, then commit, with the descriptor version bumped
// once — the paper's "blob manipulation" primitive with built-in atomicity.
func (s *Store) WriteBlob(ctx *storage.Context, key string, off int64, p []byte) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("write %q at %d: %w", key, off, storage.ErrInvalidArg)
	}
	primary, d, err := s.primaryDesc(key)
	if err != nil {
		return 0, err
	}
	if primary.isDown() {
		return 0, fmt.Errorf("blob %q: primary down: %w", key, storage.ErrStaleHandle)
	}
	if len(p) == 0 {
		return 0, nil
	}
	// No descriptor round trip here: placement is client-side (the hash
	// ring), so a write contacts only the chunk servers it touches. The
	// descriptor primary is involved only for multi-chunk transactions and
	// size extensions below — the flat-namespace advantage the paper's
	// future-work experiment measures.
	d.latch.Lock()
	defer d.latch.Unlock()
	return s.writeLocked(ctx, key, primary, d, off, p)
}

// chunkPlace is one participant chunk's resolved placement, computed once
// per write and shared by the prepare, data, and commit phases.
type chunkPlace struct {
	id     chunkID
	h      uint64
	owners []int
}

// placePool recycles the per-write placement scratch.
var placePool = sync.Pool{
	New: func() any {
		s := make([]chunkPlace, 0, 8)
		return &s
	},
}

// writeLocked performs the write with the descriptor latch already held.
// Multi-blob transactions (txn.go) call it while holding several latches.
func (s *Store) writeLocked(ctx *storage.Context, key string, primary *server, d *descriptor, off int64, p []byte) (int, error) {
	cs := int64(s.cfg.ChunkSize)
	firstChunk := off / cs
	lastChunk := (off + int64(len(p)) - 1) / cs
	multi := lastChunk > firstChunk

	// Resolve every participant chunk's placement once; the prepare, data,
	// and commit phases all dispatch from this scratch instead of
	// re-hashing and re-probing per phase.
	pp := placePool.Get().(*[]chunkPlace)
	places := (*pp)[:0]
	defer func() {
		*pp = places[:0]
		placePool.Put(pp)
	}()
	for idx := firstChunk; idx <= lastChunk; idx++ {
		id := chunkID{key, idx}
		h := id.ringHash()
		places = append(places, chunkPlace{id: id, h: h, owners: s.ownersForHash(h)})
	}

	if multi {
		// Prepare phase: one metadata round trip per participant chunk
		// primary, charged in parallel.
		fan := newFan()
		for _, pl := range places {
			if s.servers[pl.owners[0]].isDown() {
				return 0, fmt.Errorf("chunk %d of %q: primary down: %w", pl.id.idx, key, storage.ErrStaleHandle)
			}
			child := fan.child(ctx)
			s.cluster.MetaOp(child.Clock, s.servers[pl.owners[0]].node, 1)
		}
		fan.join(ctx)
	}

	// Data phase: write each chunk to its full replica set, in parallel
	// across chunks.
	fan := newFan()
	var n int64
	for n < int64(len(p)) {
		idx := (off + n) / cs
		within := (off + n) % cs
		take := cs - within
		if take > int64(len(p))-n {
			take = int64(len(p)) - n
		}
		child := fan.child(ctx)
		if err := s.writeChunk(child, places[idx-firstChunk], within, p[n:n+take]); err != nil {
			return int(n), err
		}
		n += take
	}
	fan.join(ctx)

	if multi {
		// Commit phase: one commit round trip per participant chunk plus
		// the commit record's log append, charged in parallel across the
		// participant servers; records bound for the same server's log
		// are batched into one append.
		batch := newWalBatch(s)
		for _, pl := range places {
			batch.addChunk(s.servers[pl.owners[0]], wal.RecCommit, pl.id, 0, nil)
		}
		batch.flushParallel(ctx, true)
	}

	// Descriptor update: bump version, extend size if needed, replicate.
	d.version++
	if off+int64(len(p)) > d.size {
		d.size = off + int64(len(p))
		s.cluster.MetaOp(ctx.Clock, primary.node, 1)
		s.walAppendMeta(ctx, primary, wal.RecMeta, key, d.size)
		s.replicateDescSize(ctx, key, d.size)
	}
	return len(p), nil
}

// writeChunk applies data to the chunk at the given intra-chunk offset on
// every replica, primary first then replicas in parallel (primary-copy
// replication). The caller resolves placement once (chunkPlace); the hash
// serves both the owner lookup and the lock-stripe selection.
func (s *Store) writeChunk(ctx *storage.Context, pl chunkPlace, within int64, data []byte) error {
	id, h, owners := pl.id, pl.h, pl.owners
	// Client -> primary carries the payload.
	primary := s.servers[owners[0]]
	if primary.isDown() {
		return fmt.Errorf("chunk %d of %q: primary down: %w", id.idx, id.key, storage.ErrStaleHandle)
	}
	s.cluster.RPC(ctx.Clock, primary.node, len(data), 64, 0)
	applyChunk(primary, h, id, within, data)
	s.walAppendChunk(ctx, primary, wal.RecWrite, id, within, data)
	s.cluster.DiskWrite(ctx.Clock, primary.node, len(data))

	// Primary -> replicas in parallel. With synchronous replication the
	// client waits for every copy; with AsyncReplication the copies are
	// applied (and their resource time reserved) but the client clock does
	// not wait on them.
	fan := newFan()
	for _, o := range owners[1:] {
		sv := s.servers[o]
		if sv.isDown() {
			return fmt.Errorf("chunk %d of %q: replica down: %w", id.idx, id.key, storage.ErrStaleHandle)
		}
		child := fan.child(ctx)
		s.cluster.RPC(child.Clock, sv.node, len(data), 64, 0)
		applyChunk(sv, h, id, within, data)
		s.walAppendChunk(child, sv, wal.RecWrite, id, within, data)
		s.cluster.DiskWrite(child.Clock, sv.node, len(data))
	}
	if s.cfg.AsyncReplication {
		// The replica clocks are deliberately not joined: the client is
		// acknowledged without waiting. Recycle the children without
		// advancing ctx.
		fan.drop()
	} else {
		fan.join(ctx)
	}
	return nil
}

// applyChunk writes data into sv's copy of the chunk, growing it as
// needed. Growth doubles capacity so sequential small appends stay
// amortized O(1) instead of quadratic.
func applyChunk(sv *server, h uint64, id chunkID, within int64, data []byte) {
	st := sv.stripe(h)
	st.mu.Lock()
	defer st.mu.Unlock()
	chunk := st.m[id]
	need := within + int64(len(data))
	switch {
	case int64(len(chunk)) >= need:
		// In-place overwrite, no growth.
	case int64(cap(chunk)) >= need:
		// Reused capacity may hold stale bytes from an earlier truncate;
		// the gap before the write must read as zeros (sparse semantics).
		old := int64(len(chunk))
		chunk = chunk[:need]
		if old < within {
			clear(chunk[old:within])
		}
	default:
		newCap := int64(cap(chunk))
		if newCap < 1024 {
			newCap = 1024
		}
		for newCap < need {
			newCap *= 2
		}
		grown := make([]byte, need, newCap)
		copy(grown, chunk)
		chunk = grown
	}
	copy(chunk[within:], data)
	st.m[id] = chunk
}

// TruncateBlob sets the blob's size. Shrinking drops whole chunks past the
// new end and trims the boundary chunk; growing is sparse (reads return
// zeros).
func (s *Store) TruncateBlob(ctx *storage.Context, key string, size int64) error {
	if size < 0 {
		return fmt.Errorf("truncate %q to %d: %w", key, size, storage.ErrInvalidArg)
	}
	primary, d, err := s.primaryDesc(key)
	if err != nil {
		return err
	}
	if primary.isDown() {
		return fmt.Errorf("blob %q: primary down: %w", key, storage.ErrStaleHandle)
	}
	s.cluster.MetaOp(ctx.Clock, primary.node, 1)

	d.latch.Lock()
	defer d.latch.Unlock()

	cs := int64(s.cfg.ChunkSize)
	if size < d.size {
		oldChunks := (d.size + cs - 1) / cs
		keepChunks := (size + cs - 1) / cs
		batch := newWalBatch(s)
		for idx := keepChunks; idx < oldChunks; idx++ {
			id := chunkID{key, idx}
			h := id.ringHash()
			for _, o := range s.ownersForHash(h) {
				sv := s.servers[o]
				sv.deleteChunk(h, id)
				batch.addChunk(sv, wal.RecChunkDelete, id, 0, nil)
			}
		}
		// Trim the boundary chunk.
		if keepChunks > 0 {
			idx := keepChunks - 1
			keep := size - idx*cs
			id := chunkID{key, idx}
			h := id.ringHash()
			for _, o := range s.ownersForHash(h) {
				sv := s.servers[o]
				sv.trimChunk(h, id, keep)
				batch.addChunk(sv, wal.RecChunkTruncate, id, keep, nil)
			}
		}
		batch.flush(ctx)
	}
	d.version++
	d.size = size
	s.walAppendMeta(ctx, primary, wal.RecTruncate, key, size)
	s.replicateDescSize(ctx, key, size)
	return nil
}

// replicateDescSize pushes the new size to descriptor replicas in parallel.
// Caller holds the primary descriptor latch.
func (s *Store) replicateDescSize(ctx *storage.Context, key string, size int64) {
	owners := s.descOwners(key)
	fan := newFan()
	for _, o := range owners[1:] {
		sv := s.servers[o]
		child := fan.child(ctx)
		s.cluster.MetaOp(child.Clock, sv.node, 1)
		sv.mu.Lock()
		if rd, ok := sv.blobs[key]; ok {
			rd.size = size
		}
		sv.mu.Unlock()
		s.walAppendMeta(child, sv, wal.RecMeta, key, size)
	}
	fan.join(ctx)
}
