package blob

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/wal"
)

// ReadBlob reads up to len(p) bytes at off. Short reads happen at EOF;
// reading at or beyond EOF returns 0, nil. If a chunk's primary is down the
// read falls back to the next replica.
func (s *Store) ReadBlob(ctx *storage.Context, key string, off int64, p []byte) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("read %q at %d: %w", key, off, storage.ErrInvalidArg)
	}
	s.member.RLock()
	defer s.member.RUnlock()
	primary, d, err := s.primaryDesc(key)
	if err != nil {
		return 0, err
	}
	// Size lookup: one flat-namespace metadata op on the descriptor primary.
	s.cluster.MetaOp(ctx.Clock, primary.node, 1)

	d.latch.RLock()
	defer d.latch.RUnlock()
	size := d.size
	if off >= size {
		return 0, nil
	}
	want := int64(len(p))
	if off+want > size {
		want = size - off
	}

	// Fan out per-chunk reads across the worker pool; join on the slowest —
	// parallel striped reads are the throughput story of object storage.
	// Every exit joins the fan, so no pooled context leaks and the time
	// charged by completed chunks is never lost. A read confined to one
	// chunk runs inline: a one-task fan pays dispatch overhead for no
	// parallelism, and the folded virtual time is identical either way.
	cs := int64(s.cfg.ChunkSize)
	fan := s.newFan()
	if off/cs == (off+want-1)/cs {
		fan.inline = true
	}
	forEachSpan(off, want, cs, func(idx, within, start, take int64) {
		t := fan.task(taskReadChunk)
		t.pl.id = chunkID{key, idx}
		t.within = within
		t.data = p[start : start+take]
		fan.spawn(t)
	})
	errIdx, err := fan.join(ctx)
	if err != nil {
		// Chunks before the first failed one are fully read; later chunks
		// may or may not have landed in p, which pread semantics allow.
		return int(fanPrefixBytes(off, want, cs, errIdx)), err
	}
	return int(want), nil
}

// readChunk reads from the first live replica of the chunk. Missing chunk
// data within the blob's size reads as zeros (sparse blob semantics). The
// placement hash is computed once and reused for both the owner lookup and
// the lock-stripe selection — the whole dispatch is allocation-free.
//
// While any repair debt is outstanding anywhere in the store, the read
// takes a freshness-checked slow path instead: replicas named stale by a
// debt mask are skipped, and among the fresh live owners the one with the
// highest chunk version serves — so a rejoined-but-unrepaired replica can
// never satisfy a read with stale bytes.
func (s *Store) readChunk(cg *charge, id chunkID, within int64, dst []byte) error {
	h := id.ringHash()
	owners := s.ownersForHash(h)
	// A live migration forces the checked path too: a gained owner that has
	// not yet received its copy holds nothing (or an older version) with no
	// debt mask naming it, and only the version comparison keeps it from
	// serving a stale or empty read while placement converges.
	if s.repairPending.Load() != 0 || s.migrating.Load() != 0 {
		return s.readChunkChecked(cg, h, id, owners, within, dst)
	}
	for _, o := range owners {
		sv := s.servers[o]
		if sv.isDown() {
			continue
		}
		if s.faultCheck(cg, sv.node, cluster.FaultDiskRead) != nil {
			continue // a faulted replica reads like a down one: fall back
		}
		s.readReplica(cg, sv, h, id, within, dst)
		return nil
	}
	return fmt.Errorf("chunk %d of %q: all replicas down: %w", id.idx, id.key, storage.ErrUnavailable)
}

// readReplica copies the chunk's bytes out of one replica and charges the
// transfer. Only the bytes the replica actually held are charged as disk
// read; the sparse zero-filled tail costs nothing on the disk (the RPC
// still carries the full response).
func (s *Store) readReplica(cg *charge, sv *server, h uint64, id chunkID, within int64, dst []byte) {
	var copied int
	st := sv.stripe(h)
	st.mu.RLock()
	if data, ok := st.m[id]; ok && within < int64(len(data)) {
		copied = copy(dst, data[within:])
	}
	st.mu.RUnlock()
	// Sparse tail: anything the replica did not cover reads as zeros.
	clear(dst[copied:])
	cg.diskRead(sv.node, copied)
	cg.rpc(sv.node, 64, len(dst), 0)
}

// readChunkChecked is the degraded-mode read path: it unions the chunk's
// debt masks across every owner (down servers keep their memory, so their
// debt records still count — the stand-in for the monitor-layer peering
// metadata a real RADOS cluster consults), then serves from the
// highest-versioned live owner not named stale. A replica that missed a
// write is therefore unreachable until repair clears its debt bit.
func (s *Store) readChunkChecked(cg *charge, h uint64, id chunkID, owners []int, within int64, dst []byte) error {
	// While a migration is in flight the candidate set widens from the
	// current owners to every non-wiped server: the chunk's only fresh copy
	// (and the debt mask that names its stale peers) may still sit on a
	// drained node or a stray holder the reconcile sweep has not reached,
	// while the gained owners hold nothing at all. Restricting the scan to
	// the post-flip owner set there serves sparse zeros off a live-but-empty
	// gained owner — a stale read nothing in the owner set can veto.
	if s.migrating.Load() != 0 {
		// Fresh slice — the caller's owners may alias the placement cache.
		all := make([]int, 0, len(s.servers))
		for i, sv := range s.servers {
			if !sv.isWiped() {
				all = append(all, i)
			}
		}
		owners = all
	}
	var stale uint64
	for _, o := range owners {
		st := s.servers[o].stripe(h)
		st.mu.RLock()
		stale |= st.debt[id]
		st.mu.RUnlock()
	}
	// Highest version among the fresh live owners.
	var maxVer uint64
	found := false
	for _, o := range owners {
		sv := s.servers[o]
		if sv.isDown() || (o < 64 && stale&(1<<uint(o)) != 0) {
			continue
		}
		if v := sv.chunkVer(h, id); !found || v > maxVer {
			maxVer = v
			found = true
		}
	}
	// A fresh DOWN owner strictly ahead of every fresh live owner means the
	// reachable copies are missing writes no debt mask accounts for — the
	// live-but-empty gained owner of an in-flight migration is the canonical
	// case (its copy is en route, so nothing names it stale). Down servers
	// keep their memory (the monitor-metadata stand-in, as above), so the
	// version probe is answerable; the read reports unavailable rather than
	// serving bytes known to be behind. Wiped servers hold nothing and
	// cannot veto.
	for _, o := range owners {
		sv := s.servers[o]
		if !sv.isDown() || sv.isWiped() || (o < 64 && stale&(1<<uint(o)) != 0) {
			continue
		}
		if sv.chunkVer(h, id) > maxVer {
			found = false
			break
		}
	}
	if found {
		for _, o := range owners {
			sv := s.servers[o]
			if sv.isDown() || (o < 64 && stale&(1<<uint(o)) != 0) || sv.chunkVer(h, id) != maxVer {
				continue
			}
			if s.faultCheck(cg, sv.node, cluster.FaultDiskRead) != nil {
				continue
			}
			s.readReplica(cg, sv, h, id, within, dst)
			return nil
		}
	}
	return fmt.Errorf("chunk %d of %q: no fresh live replica: %w", id.idx, id.key, storage.ErrUnavailable)
}

// WriteBlob writes p at off, extending the blob as needed. A write that
// spans a single chunk commits directly on that chunk's replica set; a
// multi-chunk write runs the Týr-style lightweight transaction: prepare on
// every participant chunk, then commit, with the descriptor version bumped
// once — the paper's "blob manipulation" primitive with built-in atomicity.
func (s *Store) WriteBlob(ctx *storage.Context, key string, off int64, p []byte) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("write %q at %d: %w", key, off, storage.ErrInvalidArg)
	}
	s.member.RLock()
	defer s.member.RUnlock()
	primary, d, err := s.primaryDesc(key)
	if err != nil {
		return 0, err
	}
	if primary.isDown() {
		return 0, fmt.Errorf("blob %q: primary down: %w", key, storage.ErrUnavailable)
	}
	if len(p) == 0 {
		return 0, nil
	}
	// No descriptor round trip here: placement is client-side (the hash
	// ring), so a write contacts only the chunk servers it touches. The
	// descriptor primary is involved only for multi-chunk transactions and
	// size extensions below — the flat-namespace advantage the paper's
	// future-work experiment measures.
	d.latch.Lock()
	defer d.latch.Unlock()
	return s.writeLocked(ctx, key, primary, d, off, p)
}

// chunkPlace is one participant chunk's resolved placement, computed once
// per write and shared by the prepare, data, and commit phases. ver is the
// version this write installs on every replica it reaches: assigned by the
// caller under the descriptor latch (one more than the highest version any
// owner holds), so all replicas of the chunk stay version-comparable.
type chunkPlace struct {
	id     chunkID
	h      uint64
	ver    uint64
	owners []int
	// excl is the owner set the data phase excluded from this write (down,
	// or already named stale by a debt mask), written back by writeChunk.
	// The commit phases consult it so apply and commit cover EXACTLY the
	// replicas that received the data — the version invariant (a replica at
	// version V holds every write ≤ V it was not excluded-with-debt from)
	// breaks if a later phase touches an excluded replica.
	excl uint64
}

// placePool recycles the per-write placement scratch.
var placePool = sync.Pool{
	New: func() any {
		s := make([]chunkPlace, 0, 8)
		return &s
	},
}

// writeLocked performs the write with the descriptor latch already held.
// Multi-blob transactions (txn.go) call it while holding several latches.
//
// Multi-chunk writes log 2PC-style: the data phase appends RecPrepWrite to
// every replica of every participant, the commit phase appends
// RecChunkCommit to the same set, and a data-phase failure appends RecAbort
// markers — so crash replay applies a multi-chunk write all-or-nothing
// (recovery.go buffers prepares and materializes them only on commit).
func (s *Store) writeLocked(ctx *storage.Context, key string, primary *server, d *descriptor, off int64, p []byte) (int, error) {
	return s.writeLockedRec(ctx, key, primary, d, off, p, false)
}

// writeLockedRec is writeLocked with the commit protocol selectable.
// direct=true commits every chunk with RecWrite and skips the prepare and
// commit phases even for a multi-chunk span. That is sound ONLY when the
// caller needs no write-level crash atomicity: RenameBlob's copy-in
// qualifies — the target key is freshly created and both descriptor
// latches are held (no reader or writer can observe a partial span), and
// the rename's own crash story is "never acked, source intact until the
// final logged delete", not chunk-transactionality (a sparse rename
// flushes multiple spans, so 2PC per span never provided rename-level
// atomicity anyway). Per-chunk RecWrite records replay independently,
// exactly like ordinary single-chunk writes.
func (s *Store) writeLockedRec(ctx *storage.Context, key string, primary *server, d *descriptor, off int64, p []byte, direct bool) (int, error) {
	cs := int64(s.cfg.ChunkSize)
	firstChunk := off / cs
	lastChunk := (off + int64(len(p)) - 1) / cs
	multi := (lastChunk > firstChunk) && !direct
	spanFan := lastChunk > firstChunk

	// Resolve every participant chunk's placement once; the prepare, data,
	// and commit phases all dispatch from this scratch instead of
	// re-hashing and re-probing per phase.
	pp := placePool.Get().(*[]chunkPlace)
	places := (*pp)[:0]
	defer func() {
		*pp = places[:0]
		placePool.Put(pp)
	}()
	for idx := firstChunk; idx <= lastChunk; idx++ {
		id := chunkID{key, idx}
		h := id.ringHash()
		owners := s.ownersForHash(h)
		places = append(places, chunkPlace{id: id, h: h, ver: s.nextChunkVer(h, id, owners), owners: owners})
	}

	recType := wal.RecWrite
	if multi {
		recType = wal.RecPrepWrite

		// Prepare phase: one metadata round trip per participant chunk
		// primary, charged in parallel.
		fan := s.newFan()
		for i := range places {
			t := fan.task(taskPrepare)
			t.sv = s.servers[places[i].owners[0]]
			t.pl = places[i]
			fan.spawn(t)
		}
		if _, err := fan.join(ctx); err != nil {
			// Nothing durable was prepared (the prepare is a round trip,
			// not a log record), so there is nothing to abort.
			return 0, err
		}
	}

	// Data phase: write each chunk to its full replica set, in parallel
	// across chunks. A single-chunk write keeps the chunk task inline
	// (PR 1's sequential shape); only its replica sub-fan, if any, can
	// profit from the pool, and that profit is below dispatch cost at
	// typical chunk sizes. A direct multi-chunk span still fans out.
	fan := s.newFan()
	if !spanFan {
		fan.inline = true
	}
	forEachSpan(off, int64(len(p)), cs, func(idx, within, start, take int64) {
		t := fan.task(taskWriteChunk)
		t.pl = places[idx-firstChunk]
		t.plp = &places[idx-firstChunk] // writeChunk reports its excl mask here
		t.within = within
		t.data = p[start : start+take]
		t.rec = recType
		fan.spawn(t)
	})
	if _, err := fan.join(ctx); err != nil {
		if multi {
			// The transaction dies mid-flight: append abort markers so
			// replay discards the prepared chunk writes instead of
			// resurrecting a half-committed transaction.
			s.abortPrepared(ctx, places)
		}
		// Nothing is readable or durable from the failed write — a
		// single-chunk write validates its replica set before mutating,
		// and a multi-chunk write is rolled back whole by the abort — so
		// the reported count is zero, not the completed-task prefix.
		return 0, err
	}

	if multi {
		// Commit phase, step 1: materialize the prepared writes in memory,
		// one task per chunk covering exactly the replicas the data phase
		// reached (the excl mask writeChunk reported: excluded replicas
		// hold no prepare, and a partial apply would corrupt their version
		// history — repair re-installs them whole instead). Pure memory
		// work (no charges fold), deferred to here so an aborted data
		// phase leaves live replicas untouched. Readers cannot observe the
		// window: the descriptor latch is held until the write returns.
		applyFan := s.newFan()
		forEachSpan(off, int64(len(p)), cs, func(idx, within, start, take int64) {
			t := applyFan.task(taskApplyChunk)
			t.pl = places[idx-firstChunk] // copies excl from the data phase
			t.within = within
			t.data = p[start : start+take]
			applyFan.spawn(t)
		})
		applyFan.join(ctx)

		// Commit phase, step 2: one commit round trip per participant
		// replica plus the commit record's log append, charged in parallel
		// across the participant servers; records bound for the same
		// server's log are batched into one append. Every replica that
		// holds a prepare must also log the commit, or its own crash
		// replay would discard the data; a replica the data phase excluded
		// holds none, so it gets no commit marker either.
		batch := newWalBatch(s)
		for i := range places {
			pl := &places[i]
			for _, o := range pl.owners {
				if pl.excl&(1<<uint(o)) != 0 {
					continue
				}
				batch.addChunk(s.servers[o], wal.RecChunkCommit, pl.h, pl.id, 0, 0, nil)
			}
		}
		batch.flushParallel(ctx, true)
	}

	// Descriptor update: bump version, extend size if needed, replicate.
	d.version++
	if off+int64(len(p)) > d.size {
		d.size = off + int64(len(p))
		s.cluster.MetaOp(ctx.Clock, primary.node, 1)
		cg := s.directCharge(ctx)
		s.walAppendMeta(&cg, primary, wal.RecMeta, key, d.size)
		s.replicateDescSize(ctx, key, d, d.size)
	}

	// Degraded-write epilogue: drain the debt owed to any excluded owner
	// that rejoined while this write was in flight. The rejoin-triggered
	// drain (SetDown) runs when a node comes up, but an owner excluded at
	// the partition snapshot can come back BEFORE the write records its
	// debt — that drain finds nothing, and nothing else ever services debt
	// that names an already-live node. The window is real and dangerous: a
	// sole-surviving holder can then lose both the data and its debt record
	// to one torn lane tail. The handoff is race-free because the debt is
	// durably recorded before this check: a rejoin before it is seen here,
	// a rejoin after it sees the debt.
	var excl uint64
	for i := range places {
		excl |= places[i].excl
	}
	for node := 0; node < len(s.servers) && excl != 0; node++ {
		if excl&(1<<uint(node)) != 0 && !s.servers[node].isDown() {
			s.repairNode(ctx, cluster.NodeID(node))
		}
	}
	return len(p), nil
}

// nextChunkVer assigns the version a write will install: one more than the
// highest version any owner currently holds for the chunk. Called under
// the blob's descriptor latch, which serializes the chunk's mutation
// history, so the assignment is deterministic and every replica that
// applies the write installs the same, strictly increasing version.
//
// While a migration is in flight the scan widens to every non-wiped
// server: the freshest copy may still sit entirely outside the current
// owner set (a drained node, or a stray the reconcile sweep has not
// reached). An owner-only scan there would re-issue a low version —
// colliding with history the strays still hold, defeating writeChunk's
// behind-owner exclusion (whose pl.ver-1 must be the global maximum),
// and letting the sweep later overwrite an acknowledged write with the
// older stray copy it out-versions.
func (s *Store) nextChunkVer(h uint64, id chunkID, owners []int) uint64 {
	var max uint64
	for _, o := range owners {
		if v := s.servers[o].chunkVer(h, id); v > max {
			max = v
		}
	}
	if s.migrating.Load() != 0 {
		for _, sv := range s.servers {
			if sv.isWiped() {
				continue
			}
			if v := sv.chunkVer(h, id); v > max {
				max = v
			}
		}
	}
	return max + 1
}

// abortPrepared logs RecAbort markers on every replica the data phase
// reached (the excl mask says which it did not), batched per server. An
// excluded replica holds no prepare, so it needs no abort; uncommitted
// prepares die at replay anyway, the marker just keeps logs tidy. A chunk
// whose data task never ran reports excl 0 and aborts everywhere — the
// markers are no-ops at replay.
func (s *Store) abortPrepared(ctx *storage.Context, places []chunkPlace) {
	batch := newWalBatch(s)
	for i := range places {
		pl := &places[i]
		for _, o := range pl.owners {
			if pl.excl&(1<<uint(o)) != 0 {
				continue
			}
			batch.addChunk(s.servers[o], wal.RecAbort, pl.h, pl.id, 0, 0, nil)
		}
	}
	batch.flushParallel(ctx, true)
}

// writeChunk applies data to the chunk at the given intra-chunk offset on
// the live subset of its replica set, first live owner first (primary
// promotion) then the other live owners in parallel. It runs as a fan
// task: the replica copies are a nested fan recorded into this task's
// ledger, so simulated time keeps the primary-then-parallel-replicas shape
// while the actual copies run on the worker pool.
//
// Down owners do not fail the write (degraded mode): as long as
// Config.MinLiveOwners replicas are up, every live owner applies the write
// and records the down owners as repair debt — a RecRepairNeeded record
// carrying the full debt mask, logged under the stripe lock so the mask
// history in the log matches memory. An injected permanent fault at the
// promoted primary fails the write before anything durable lands
// (fail-atomic); the same fault at a non-primary live replica degrades
// instead, with the failed replica added to the debt the survivors record.
func (s *Store) writeChunk(t *fanTask, pl chunkPlace, within int64, data []byte, rec wal.RecordType) error {
	cg := &t.cg
	// Partition the replica set: the first live fresh owner is the
	// (possibly promoted) primary; down owners AND owners already named
	// stale by an unserviced debt mask become the write's debt mask. A
	// stale-but-live owner must not receive this partial write: applying
	// it would raise the owner's chunk version past bytes it never got,
	// and repair — which trusts versions — would then clear its debt
	// without re-installing anything. Excluding it keeps the version
	// invariant (ver V ⇒ every non-excluded write ≤ V applied) and repair
	// installs the full chunk later.
	//
	// The partition is a snapshot — an owner flapping down after this
	// point still gets the write (its memory is retained while down, and
	// its WAL gets the record, so it stays consistent), which is
	// equivalent to the write having been delivered just before the flap.
	var stale uint64
	for _, o := range pl.owners {
		stale |= s.servers[o].debtMask(pl.h, pl.id)
	}
	var downMask uint64
	live, promoted := 0, -1
	migrating := s.migrating.Load() != 0
	for _, o := range pl.owners {
		if s.servers[o].isDown() {
			if o >= 64 {
				// Debt masks address nodes by bit; no simulated cluster
				// here is near that wide, but refuse rather than corrupt.
				return fmt.Errorf("chunk %d of %q: down replica %d exceeds debt mask width: %w",
					pl.id.idx, pl.id.key, o, storage.ErrUnavailable)
			}
			downMask |= 1 << uint(o)
			continue
		}
		if o < 64 && stale&(1<<uint(o)) != 0 {
			downMask |= 1 << uint(o)
			continue
		}
		// During a migration an owner still awaiting its copy (gained, or an
		// overlap owner behind the freshest version — pl.ver-1 is exactly
		// that maximum, see nextChunkVer) must not apply a partial write
		// over a base it never received; it goes into the debt mask like a
		// down owner and the migration copy plus repair converge it. Fresh
		// chunks (pl.ver == 1) have no base to miss and are unaffected.
		if migrating && o < 64 && s.servers[o].chunkVer(pl.h, pl.id) < pl.ver-1 {
			downMask |= 1 << uint(o)
			continue
		}
		live++
		if promoted < 0 {
			promoted = o
		}
	}
	if t.plp != nil {
		t.plp.excl = downMask
	}
	if downMask != 0 {
		tracef("writeChunk id=%s/%d ver=%d excl=%x stale=%x promoted=%d rec=%d", pl.id.key, pl.id.idx, pl.ver, downMask, stale, promoted, rec)
	}
	if promoted < 0 || live < s.cfg.MinLiveOwners {
		return fmt.Errorf("chunk %d of %q: %d of %d replicas down (need %d live): %w",
			pl.id.idx, pl.id.key, len(pl.owners)-live, len(pl.owners), s.cfg.MinLiveOwners, storage.ErrUnavailable)
	}
	primary := s.servers[promoted]
	// A permanent fault on the primary's write path fails the chunk write
	// before anything lands — nothing durable, nothing applied, so the
	// single-chunk direct-commit path stays failure-atomic and the
	// multi-chunk path rolls back via RecAbort.
	if err := s.faultCheck(cg, primary.node, cluster.FaultDiskWrite); err != nil {
		return fmt.Errorf("chunk %d of %q: %w", pl.id.idx, pl.id.key, err)
	}
	// Client -> promoted primary carries the payload. A prepared
	// (multi-chunk) write logs now but materializes in memory only at the
	// commit phase, so a transaction that dies mid-data-phase leaves live
	// replicas exactly as consistent as crash-recovered ones. The log
	// append is vectored: data streams from the caller's buffer to the log
	// medium in one copy, with only the chunk-addressing header staged.
	apply := rec == wal.RecWrite
	cg.rpc(primary.node, len(data), 64, 0)
	if apply {
		applyChunk(primary, pl.h, pl.id, within, data, pl.ver)
	}
	s.walAppendChunk(cg, primary, rec, pl.h, pl.id, within, pl.ver, data)
	cg.diskWrite(primary.node, len(data))
	// Exclusion debt rides with the APPLY, never ahead of it: the direct
	// path records it here, the prepared path at commit materialization
	// (taskApplyChunk), where the holder's version has already advanced —
	// the ordering clearDebt's version guard is built on.
	if downMask != 0 && apply {
		s.recordDebt(cg, primary, pl.h, pl.id, downMask)
	}

	// Primary -> the other live owners in parallel. With synchronous
	// replication the client waits for every copy; with AsyncReplication
	// the copies are applied (and their resource time reserved) but the
	// client clock does not wait on them.
	rest := live - 1
	if rest > 0 {
		sf := t.subFan()
		for _, o := range pl.owners {
			// The partition snapshot decides, NOT a fresh isDown probe: an
			// owner that flapped down after the partition was counted live
			// and owes nobody a debt record, so it must still receive the
			// write (retained memory + log keep it consistent). Re-probing
			// here would skip it silently — a stale replica no debt mask
			// names, invisible to the checked read path.
			if o == promoted || downMask&(1<<uint(o)) != 0 {
				continue
			}
			rt := sf.task(taskReplicaWrite)
			rt.sv = s.servers[o]
			rt.pl = pl
			rt.within = within
			rt.data = data
			rt.rec = rec
			rt.mask = downMask
			sf.spawn(rt)
		}
		if s.cfg.AsyncReplication {
			t.dropSubs(&sf)
		} else {
			t.joinSubs(&sf)
		}
	}
	if downMask != 0 {
		s.metrics.Counter("blob.write.degraded").Inc()
	}
	return nil
}

// replicaWrite is the per-replica body of writeChunk's nested fan. owed is
// the debt mask of the write's down owners, recorded by every live owner
// alongside its copy. A permanent injected fault here does NOT fail the
// write: the primary already holds the bytes durably, so the failed
// replica is simply added to the debt mask on the owners that did apply —
// RADOS-style "primary acks, marks the peer missing, recovery backfills" —
// keeping the single-chunk path free of one-sided durable divergence.
func (s *Store) replicaWrite(cg *charge, sv *server, pl chunkPlace, within int64, data []byte, rec wal.RecordType, owed uint64) error {
	if err := s.faultCheck(cg, sv.node, cluster.FaultDiskWrite); err != nil {
		if int(sv.node) >= 64 {
			return fmt.Errorf("chunk %d of %q: faulted replica %d exceeds debt mask width: %w",
				pl.id.idx, pl.id.key, sv.node, storage.ErrUnavailable)
		}
		bit := uint64(1) << uint(sv.node)
		for _, o := range pl.owners {
			// Every other owner records the fault — including ones that
			// flapped down meanwhile (retained memory and log stay
			// mutable) — so the debt union names the faulted replica no
			// matter which holders survive to be consulted.
			if o == int(sv.node) {
				continue
			}
			s.recordDebt(cg, s.servers[o], pl.h, pl.id, bit)
		}
		s.metrics.Counter("blob.write.replica-faulted").Inc()
		return nil
	}
	cg.rpc(sv.node, len(data), 64, 0)
	if rec == wal.RecWrite {
		applyChunk(sv, pl.h, pl.id, within, data, pl.ver)
	}
	s.walAppendChunk(cg, sv, rec, pl.h, pl.id, within, pl.ver, data)
	cg.diskWrite(sv.node, len(data))
	// Same apply-before-record rule as the primary: prepared writes defer
	// the exclusion debt to the commit apply.
	if owed != 0 && rec == wal.RecWrite {
		s.recordDebt(cg, sv, pl.h, pl.id, owed)
	}
	return nil
}

// recordDebt merges owed into the chunk's debt mask on sv and logs the
// updated mask durably (RecRepairNeeded, full-mask overwrite semantics).
// Mask update and log append happen under the stripe lock so the mask
// history in the log matches the in-memory ordering; the lane append may
// park as a group-commit follower, but a lane leader never takes stripe
// locks, so the lock order is acyclic (see the dispatch.go contract).
func (s *Store) recordDebt(cg *charge, sv *server, h uint64, id chunkID, owed uint64) {
	st := sv.stripe(h)
	st.mu.Lock()
	mask := st.debt[id] | owed
	sv.setDebtLocked(st, id, mask)
	s.walAppendChunk(cg, sv, wal.RecRepairNeeded, h, id, 0, mask, nil)
	tracef("recordDebt node=%d id=%s/%d owed=%x mask=%x ver=%d", sv.node, id.key, id.idx, owed, mask, st.ver[id])
	st.mu.Unlock()
}

// tracef feeds the chaos battery's event trace when a test installs one;
// production runs leave chaosTrace nil and pay only a nil check.
var chaosTrace func(format string, args ...any)

func tracef(format string, args ...any) {
	if chaosTrace != nil {
		chaosTrace(format, args...)
	}
}

// applyChunk writes data into sv's copy of the chunk, growing it as
// needed, and installs the write's version. Growth doubles capacity so
// sequential small appends stay amortized O(1) instead of quadratic.
func applyChunk(sv *server, h uint64, id chunkID, within int64, data []byte, ver uint64) {
	st := sv.stripe(h)
	st.mu.Lock()
	defer st.mu.Unlock()
	chunk := st.m[id]
	need := within + int64(len(data))
	switch {
	case int64(len(chunk)) >= need:
		// In-place overwrite, no growth.
	case int64(cap(chunk)) >= need:
		// Reused capacity may hold stale bytes from an earlier truncate;
		// the gap before the write must read as zeros (sparse semantics).
		old := int64(len(chunk))
		chunk = chunk[:need]
		if old < within {
			clear(chunk[old:within])
		}
	default:
		newCap := int64(cap(chunk))
		if newCap < 1024 {
			newCap = 1024
		}
		for newCap < need {
			newCap *= 2
		}
		grown := make([]byte, need, newCap)
		copy(grown, chunk)
		chunk = grown
	}
	copy(chunk[within:], data)
	st.m[id] = chunk
	if ver > st.ver[id] {
		st.ver[id] = ver
	}
}

// TruncateBlob sets the blob's size. Shrinking drops whole chunks past the
// new end and trims the boundary chunk; growing is sparse (reads return
// zeros). Truncating to the current size is a pure metadata probe: after
// the lookup charge it changes nothing — no version bump, no WAL record,
// no descriptor replication.
func (s *Store) TruncateBlob(ctx *storage.Context, key string, size int64) error {
	if size < 0 {
		return fmt.Errorf("truncate %q to %d: %w", key, size, storage.ErrInvalidArg)
	}
	s.member.RLock()
	defer s.member.RUnlock()
	primary, d, err := s.primaryDesc(key)
	if err != nil {
		return err
	}
	if primary.isDown() {
		return fmt.Errorf("blob %q: primary down: %w", key, storage.ErrUnavailable)
	}
	s.cluster.MetaOp(ctx.Clock, primary.node, 1)

	d.latch.Lock()
	defer d.latch.Unlock()

	if size == d.size {
		return nil
	}
	cs := int64(s.cfg.ChunkSize)
	if size < d.size {
		oldChunks := (d.size + cs - 1) / cs
		keepChunks := (size + cs - 1) / cs
		batch := newWalBatch(s)
		fan := s.newFan()
		for idx := keepChunks; idx < oldChunks; idx++ {
			id := chunkID{key, idx}
			h := id.ringHash()
			for _, o := range s.ownersForHash(h) {
				sv := s.servers[o]
				t := fan.task(taskChunkDelete)
				t.sv = sv
				t.pl = chunkPlace{id: id, h: h}
				fan.spawn(t)
				batch.addChunk(sv, wal.RecChunkDelete, h, id, 0, 0, nil)
			}
		}
		// Trim the boundary chunk.
		if keepChunks > 0 {
			idx := keepChunks - 1
			keep := size - idx*cs
			id := chunkID{key, idx}
			h := id.ringHash()
			for _, o := range s.ownersForHash(h) {
				sv := s.servers[o]
				t := fan.task(taskChunkTrim)
				t.sv = sv
				t.pl = chunkPlace{id: id, h: h}
				t.size = keep
				fan.spawn(t)
				batch.addChunk(sv, wal.RecChunkTruncate, h, id, keep, 0, nil)
			}
		}
		fan.join(ctx)
		batch.flush(ctx)
	}
	d.version++
	d.size = size
	cg := s.directCharge(ctx)
	s.walAppendMeta(&cg, primary, wal.RecTruncate, key, size)
	s.replicateDescSize(ctx, key, d, size)
	return nil
}

// replicateDescSize pushes the new size to descriptor replicas in parallel.
// Caller holds the primary descriptor latch. d is the primary's descriptor
// object: after a migration's handover a replica may map the key to that
// very object (pointer-shared canonical descriptor), and the task must then
// skip its store — the size is already in place, and two replica tasks
// writing the shared field would race.
func (s *Store) replicateDescSize(ctx *storage.Context, key string, d *descriptor, size int64) {
	owners := s.descOwners(key)
	fan := s.newFan()
	for _, o := range owners[1:] {
		t := fan.task(taskDescReplicate)
		t.sv = s.servers[o]
		t.key = key
		t.size = size
		t.rec = wal.RecMeta
		t.desc = d
		fan.spawn(t)
	}
	fan.join(ctx)
}
