package blob

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/wal"
)

// ReadBlob reads up to len(p) bytes at off. Short reads happen at EOF;
// reading at or beyond EOF returns 0, nil. If a chunk's primary is down the
// read falls back to the next replica.
func (s *Store) ReadBlob(ctx *storage.Context, key string, off int64, p []byte) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("read %q at %d: %w", key, off, storage.ErrInvalidArg)
	}
	primary, d, err := s.primaryDesc(key)
	if err != nil {
		return 0, err
	}
	// Size lookup: one flat-namespace metadata op on the descriptor primary.
	s.cluster.MetaOp(ctx.Clock, primary.node, 1)

	d.latch.RLock()
	defer d.latch.RUnlock()
	size := d.size
	if off >= size {
		return 0, nil
	}
	want := int64(len(p))
	if off+want > size {
		want = size - off
	}

	// Fan out per-chunk reads with forked clocks; join on the slowest —
	// parallel striped reads are the throughput story of object storage.
	cs := int64(s.cfg.ChunkSize)
	var children []*storage.Context
	var n int64
	for n < want {
		idx := (off + n) / cs
		within := (off + n) % cs
		take := cs - within
		if take > want-n {
			take = want - n
		}
		dst := p[n : n+take]
		child := ctx.Fork()
		if err := s.readChunk(child, key, idx, within, dst); err != nil {
			return int(n), err
		}
		children = append(children, child)
		n += take
	}
	for _, c := range children {
		ctx.Clock.Join(c.Clock)
	}
	return int(n), nil
}

// readChunk reads from the first live replica of chunk idx. Missing chunk
// data within the blob's size reads as zeros (sparse blob semantics).
func (s *Store) readChunk(ctx *storage.Context, key string, idx, within int64, dst []byte) error {
	owners := s.chunkOwners(key, idx)
	ck := chunkKey(key, idx)
	for _, o := range owners {
		sv := s.servers[o]
		if sv.isDown() {
			continue
		}
		sv.mu.RLock()
		data, ok := sv.chunks[ck]
		var copied int
		if ok && within < int64(len(data)) {
			copied = copy(dst, data[within:])
		}
		sv.mu.RUnlock()
		for i := copied; i < len(dst); i++ {
			dst[i] = 0
		}
		// Cost: RPC carrying the chunk payload back, plus the disk read.
		s.cluster.DiskRead(ctx.Clock, sv.node, len(dst))
		s.cluster.RPC(ctx.Clock, sv.node, 64, len(dst), 0)
		return nil
	}
	return fmt.Errorf("chunk %d of %q: all replicas down: %w", idx, key, storage.ErrStaleHandle)
}

// WriteBlob writes p at off, extending the blob as needed. A write that
// spans a single chunk commits directly on that chunk's replica set; a
// multi-chunk write runs the Týr-style lightweight transaction: prepare on
// every participant chunk, then commit, with the descriptor version bumped
// once — the paper's "blob manipulation" primitive with built-in atomicity.
func (s *Store) WriteBlob(ctx *storage.Context, key string, off int64, p []byte) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("write %q at %d: %w", key, off, storage.ErrInvalidArg)
	}
	primary, d, err := s.primaryDesc(key)
	if err != nil {
		return 0, err
	}
	if primary.isDown() {
		return 0, fmt.Errorf("blob %q: primary down: %w", key, storage.ErrStaleHandle)
	}
	if len(p) == 0 {
		return 0, nil
	}
	// No descriptor round trip here: placement is client-side (the hash
	// ring), so a write contacts only the chunk servers it touches. The
	// descriptor primary is involved only for multi-chunk transactions and
	// size extensions below — the flat-namespace advantage the paper's
	// future-work experiment measures.
	d.latch.Lock()
	defer d.latch.Unlock()
	return s.writeLocked(ctx, key, primary, d, off, p)
}

// writeLocked performs the write with the descriptor latch already held.
// Multi-blob transactions (txn.go) call it while holding several latches.
func (s *Store) writeLocked(ctx *storage.Context, key string, primary *server, d *descriptor, off int64, p []byte) (int, error) {
	cs := int64(s.cfg.ChunkSize)
	firstChunk := off / cs
	lastChunk := (off + int64(len(p)) - 1) / cs
	multi := lastChunk > firstChunk

	if multi {
		// Prepare phase: one metadata round trip per participant chunk
		// primary, charged in parallel.
		var children []*storage.Context
		for idx := firstChunk; idx <= lastChunk; idx++ {
			owners := s.chunkOwners(key, idx)
			if s.servers[owners[0]].isDown() {
				return 0, fmt.Errorf("chunk %d of %q: primary down: %w", idx, key, storage.ErrStaleHandle)
			}
			child := ctx.Fork()
			s.cluster.MetaOp(child.Clock, s.servers[owners[0]].node, 1)
			children = append(children, child)
		}
		for _, c := range children {
			ctx.Clock.Join(c.Clock)
		}
	}

	// Data phase: write each chunk to its full replica set, in parallel
	// across chunks.
	var children []*storage.Context
	var n int64
	for n < int64(len(p)) {
		idx := (off + n) / cs
		within := (off + n) % cs
		take := cs - within
		if take > int64(len(p))-n {
			take = int64(len(p)) - n
		}
		child := ctx.Fork()
		if err := s.writeChunk(child, key, idx, within, p[n:n+take]); err != nil {
			return int(n), err
		}
		children = append(children, child)
		n += take
	}
	for _, c := range children {
		ctx.Clock.Join(c.Clock)
	}

	if multi {
		// Commit phase: one round trip per participant, in parallel.
		var commits []*storage.Context
		for idx := firstChunk; idx <= lastChunk; idx++ {
			owners := s.chunkOwners(key, idx)
			child := ctx.Fork()
			s.cluster.MetaOp(child.Clock, s.servers[owners[0]].node, 1)
			s.walAppend(child, s.servers[owners[0]], wal.RecCommit, []byte(chunkKey(key, idx)))
			commits = append(commits, child)
		}
		for _, c := range commits {
			ctx.Clock.Join(c.Clock)
		}
	}

	// Descriptor update: bump version, extend size if needed, replicate.
	d.version++
	if off+int64(len(p)) > d.size {
		d.size = off + int64(len(p))
		s.cluster.MetaOp(ctx.Clock, primary.node, 1)
		s.walAppend(ctx, primary, wal.RecMeta, encMeta(key, d.size))
		s.replicateDescSize(ctx, key, d.size)
	}
	return len(p), nil
}

// writeChunk applies data to chunk idx at the given intra-chunk offset on
// every replica, primary first then replicas in parallel (primary-copy
// replication).
func (s *Store) writeChunk(ctx *storage.Context, key string, idx, within int64, data []byte) error {
	owners := s.chunkOwners(key, idx)
	ck := chunkKey(key, idx)
	// Client -> primary carries the payload.
	primary := s.servers[owners[0]]
	if primary.isDown() {
		return fmt.Errorf("chunk %d of %q: primary down: %w", idx, key, storage.ErrStaleHandle)
	}
	s.cluster.RPC(ctx.Clock, primary.node, len(data), 64, 0)
	applyChunk(primary, ck, within, data)
	s.walAppend(ctx, primary, wal.RecWrite, encChunk(ck, within, data))
	s.cluster.DiskWrite(ctx.Clock, primary.node, len(data))

	// Primary -> replicas in parallel. With synchronous replication the
	// client waits for every copy; with AsyncReplication the copies are
	// applied (and their resource time reserved) but the client clock does
	// not wait on them.
	var children []*storage.Context
	for _, o := range owners[1:] {
		sv := s.servers[o]
		if sv.isDown() {
			return fmt.Errorf("chunk %d of %q: replica down: %w", idx, key, storage.ErrStaleHandle)
		}
		child := ctx.Fork()
		s.cluster.RPC(child.Clock, sv.node, len(data), 64, 0)
		applyChunk(sv, ck, within, data)
		s.walAppend(child, sv, wal.RecWrite, encChunk(ck, within, data))
		s.cluster.DiskWrite(child.Clock, sv.node, len(data))
		children = append(children, child)
	}
	if !s.cfg.AsyncReplication {
		for _, c := range children {
			ctx.Clock.Join(c.Clock)
		}
	}
	return nil
}

// applyChunk writes data into sv's copy of the chunk, growing it as
// needed. Growth doubles capacity so sequential small appends stay
// amortized O(1) instead of quadratic.
func applyChunk(sv *server, ck string, within int64, data []byte) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	chunk := sv.chunks[ck]
	need := within + int64(len(data))
	switch {
	case int64(len(chunk)) >= need:
		// In-place overwrite, no growth.
	case int64(cap(chunk)) >= need:
		// Reused capacity may hold stale bytes from an earlier truncate;
		// the gap before the write must read as zeros (sparse semantics).
		old := int64(len(chunk))
		chunk = chunk[:need]
		for i := old; i < within; i++ {
			chunk[i] = 0
		}
	default:
		newCap := int64(cap(chunk))
		if newCap < 1024 {
			newCap = 1024
		}
		for newCap < need {
			newCap *= 2
		}
		grown := make([]byte, need, newCap)
		copy(grown, chunk)
		chunk = grown
	}
	copy(chunk[within:], data)
	sv.chunks[ck] = chunk
}

// TruncateBlob sets the blob's size. Shrinking drops whole chunks past the
// new end and trims the boundary chunk; growing is sparse (reads return
// zeros).
func (s *Store) TruncateBlob(ctx *storage.Context, key string, size int64) error {
	if size < 0 {
		return fmt.Errorf("truncate %q to %d: %w", key, size, storage.ErrInvalidArg)
	}
	primary, d, err := s.primaryDesc(key)
	if err != nil {
		return err
	}
	if primary.isDown() {
		return fmt.Errorf("blob %q: primary down: %w", key, storage.ErrStaleHandle)
	}
	s.cluster.MetaOp(ctx.Clock, primary.node, 1)

	d.latch.Lock()
	defer d.latch.Unlock()

	cs := int64(s.cfg.ChunkSize)
	if size < d.size {
		oldChunks := (d.size + cs - 1) / cs
		keepChunks := (size + cs - 1) / cs
		for idx := keepChunks; idx < oldChunks; idx++ {
			ck := chunkKey(key, idx)
			for _, o := range s.chunkOwners(key, idx) {
				sv := s.servers[o]
				sv.mu.Lock()
				delete(sv.chunks, ck)
				sv.mu.Unlock()
				s.walAppend(ctx, sv, wal.RecDelete, encChunk(ck, 0, nil))
			}
		}
		// Trim the boundary chunk.
		if keepChunks > 0 {
			idx := keepChunks - 1
			keep := size - idx*cs
			ck := chunkKey(key, idx)
			for _, o := range s.chunkOwners(key, idx) {
				sv := s.servers[o]
				sv.mu.Lock()
				if c, ok := sv.chunks[ck]; ok && int64(len(c)) > keep {
					sv.chunks[ck] = c[:keep]
				}
				sv.mu.Unlock()
				s.walAppend(ctx, sv, wal.RecTruncate, encChunk(ck, keep, nil))
			}
		}
	}
	d.version++
	d.size = size
	s.walAppend(ctx, primary, wal.RecTruncate, encMeta(key, size))
	s.replicateDescSize(ctx, key, size)
	return nil
}

// replicateDescSize pushes the new size to descriptor replicas in parallel.
// Caller holds the primary descriptor latch.
func (s *Store) replicateDescSize(ctx *storage.Context, key string, size int64) {
	owners := s.descOwners(key)
	var children []*storage.Context
	for _, o := range owners[1:] {
		sv := s.servers[o]
		child := ctx.Fork()
		s.cluster.MetaOp(child.Clock, sv.node, 1)
		sv.mu.Lock()
		if rd, ok := sv.blobs[key]; ok {
			rd.size = size
		}
		sv.mu.Unlock()
		s.walAppend(child, sv, wal.RecMeta, encMeta(key, size))
		children = append(children, child)
	}
	for _, c := range children {
		ctx.Clock.Join(c.Clock)
	}
}
