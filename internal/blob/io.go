package blob

import (
	"fmt"
	"sync"

	"repro/internal/storage"
	"repro/internal/wal"
)

// ReadBlob reads up to len(p) bytes at off. Short reads happen at EOF;
// reading at or beyond EOF returns 0, nil. If a chunk's primary is down the
// read falls back to the next replica.
func (s *Store) ReadBlob(ctx *storage.Context, key string, off int64, p []byte) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("read %q at %d: %w", key, off, storage.ErrInvalidArg)
	}
	primary, d, err := s.primaryDesc(key)
	if err != nil {
		return 0, err
	}
	// Size lookup: one flat-namespace metadata op on the descriptor primary.
	s.cluster.MetaOp(ctx.Clock, primary.node, 1)

	d.latch.RLock()
	defer d.latch.RUnlock()
	size := d.size
	if off >= size {
		return 0, nil
	}
	want := int64(len(p))
	if off+want > size {
		want = size - off
	}

	// Fan out per-chunk reads across the worker pool; join on the slowest —
	// parallel striped reads are the throughput story of object storage.
	// Every exit joins the fan, so no pooled context leaks and the time
	// charged by completed chunks is never lost. A read confined to one
	// chunk runs inline: a one-task fan pays dispatch overhead for no
	// parallelism, and the folded virtual time is identical either way.
	cs := int64(s.cfg.ChunkSize)
	fan := s.newFan()
	if off/cs == (off+want-1)/cs {
		fan.inline = true
	}
	forEachSpan(off, want, cs, func(idx, within, start, take int64) {
		t := fan.task(taskReadChunk)
		t.pl.id = chunkID{key, idx}
		t.within = within
		t.data = p[start : start+take]
		fan.spawn(t)
	})
	errIdx, err := fan.join(ctx)
	if err != nil {
		// Chunks before the first failed one are fully read; later chunks
		// may or may not have landed in p, which pread semantics allow.
		return int(fanPrefixBytes(off, want, cs, errIdx)), err
	}
	return int(want), nil
}

// readChunk reads from the first live replica of the chunk. Missing chunk
// data within the blob's size reads as zeros (sparse blob semantics). The
// placement hash is computed once and reused for both the owner lookup and
// the lock-stripe selection — the whole dispatch is allocation-free.
func (s *Store) readChunk(cg *charge, id chunkID, within int64, dst []byte) error {
	h := id.ringHash()
	owners := s.ownersForHash(h)
	for _, o := range owners {
		sv := s.servers[o]
		if sv.isDown() {
			continue
		}
		var copied int
		st := sv.stripe(h)
		st.mu.RLock()
		if data, ok := st.m[id]; ok && within < int64(len(data)) {
			copied = copy(dst, data[within:])
		}
		st.mu.RUnlock()
		// Sparse tail: anything the replica did not cover reads as zeros.
		clear(dst[copied:])
		// Cost: RPC carrying the chunk payload back, plus the disk read.
		cg.diskRead(sv.node, len(dst))
		cg.rpc(sv.node, 64, len(dst), 0)
		return nil
	}
	return fmt.Errorf("chunk %d of %q: all replicas down: %w", id.idx, id.key, storage.ErrStaleHandle)
}

// WriteBlob writes p at off, extending the blob as needed. A write that
// spans a single chunk commits directly on that chunk's replica set; a
// multi-chunk write runs the Týr-style lightweight transaction: prepare on
// every participant chunk, then commit, with the descriptor version bumped
// once — the paper's "blob manipulation" primitive with built-in atomicity.
func (s *Store) WriteBlob(ctx *storage.Context, key string, off int64, p []byte) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("write %q at %d: %w", key, off, storage.ErrInvalidArg)
	}
	primary, d, err := s.primaryDesc(key)
	if err != nil {
		return 0, err
	}
	if primary.isDown() {
		return 0, fmt.Errorf("blob %q: primary down: %w", key, storage.ErrStaleHandle)
	}
	if len(p) == 0 {
		return 0, nil
	}
	// No descriptor round trip here: placement is client-side (the hash
	// ring), so a write contacts only the chunk servers it touches. The
	// descriptor primary is involved only for multi-chunk transactions and
	// size extensions below — the flat-namespace advantage the paper's
	// future-work experiment measures.
	d.latch.Lock()
	defer d.latch.Unlock()
	return s.writeLocked(ctx, key, primary, d, off, p)
}

// chunkPlace is one participant chunk's resolved placement, computed once
// per write and shared by the prepare, data, and commit phases.
type chunkPlace struct {
	id     chunkID
	h      uint64
	owners []int
}

// placePool recycles the per-write placement scratch.
var placePool = sync.Pool{
	New: func() any {
		s := make([]chunkPlace, 0, 8)
		return &s
	},
}

// writeLocked performs the write with the descriptor latch already held.
// Multi-blob transactions (txn.go) call it while holding several latches.
//
// Multi-chunk writes log 2PC-style: the data phase appends RecPrepWrite to
// every replica of every participant, the commit phase appends
// RecChunkCommit to the same set, and a data-phase failure appends RecAbort
// markers — so crash replay applies a multi-chunk write all-or-nothing
// (recovery.go buffers prepares and materializes them only on commit).
func (s *Store) writeLocked(ctx *storage.Context, key string, primary *server, d *descriptor, off int64, p []byte) (int, error) {
	cs := int64(s.cfg.ChunkSize)
	firstChunk := off / cs
	lastChunk := (off + int64(len(p)) - 1) / cs
	multi := lastChunk > firstChunk

	// Resolve every participant chunk's placement once; the prepare, data,
	// and commit phases all dispatch from this scratch instead of
	// re-hashing and re-probing per phase.
	pp := placePool.Get().(*[]chunkPlace)
	places := (*pp)[:0]
	defer func() {
		*pp = places[:0]
		placePool.Put(pp)
	}()
	for idx := firstChunk; idx <= lastChunk; idx++ {
		id := chunkID{key, idx}
		h := id.ringHash()
		places = append(places, chunkPlace{id: id, h: h, owners: s.ownersForHash(h)})
	}

	recType := wal.RecWrite
	if multi {
		recType = wal.RecPrepWrite

		// Prepare phase: one metadata round trip per participant chunk
		// primary, charged in parallel.
		fan := s.newFan()
		for i := range places {
			t := fan.task(taskPrepare)
			t.sv = s.servers[places[i].owners[0]]
			t.pl = places[i]
			fan.spawn(t)
		}
		if _, err := fan.join(ctx); err != nil {
			// Nothing durable was prepared (the prepare is a round trip,
			// not a log record), so there is nothing to abort.
			return 0, err
		}
	}

	// Data phase: write each chunk to its full replica set, in parallel
	// across chunks. A single-chunk write keeps the chunk task inline
	// (PR 1's sequential shape); only its replica sub-fan, if any, can
	// profit from the pool, and that profit is below dispatch cost at
	// typical chunk sizes.
	fan := s.newFan()
	if !multi {
		fan.inline = true
	}
	forEachSpan(off, int64(len(p)), cs, func(idx, within, start, take int64) {
		t := fan.task(taskWriteChunk)
		t.pl = places[idx-firstChunk]
		t.within = within
		t.data = p[start : start+take]
		t.rec = recType
		fan.spawn(t)
	})
	if _, err := fan.join(ctx); err != nil {
		if multi {
			// The transaction dies mid-flight: append abort markers so
			// replay discards the prepared chunk writes instead of
			// resurrecting a half-committed transaction.
			s.abortPrepared(ctx, places)
		}
		// Nothing is readable or durable from the failed write — a
		// single-chunk write validates its replica set before mutating,
		// and a multi-chunk write is rolled back whole by the abort — so
		// the reported count is zero, not the completed-task prefix.
		return 0, err
	}

	if multi {
		// Commit phase, step 1: materialize the prepared writes in memory,
		// one task per chunk covering its whole replica set. Pure memory
		// work (no charges fold), deferred to here so an aborted data
		// phase leaves live replicas untouched. Readers cannot observe the
		// window: the descriptor latch is held until the write returns.
		applyFan := s.newFan()
		forEachSpan(off, int64(len(p)), cs, func(idx, within, start, take int64) {
			t := applyFan.task(taskApplyChunk)
			t.pl = places[idx-firstChunk]
			t.within = within
			t.data = p[start : start+take]
			applyFan.spawn(t)
		})
		applyFan.join(ctx)

		// Commit phase, step 2: one commit round trip per participant
		// replica plus the commit record's log append, charged in parallel
		// across the participant servers; records bound for the same
		// server's log are batched into one append. Every replica that
		// holds a prepare must also log the commit, or its own crash
		// replay would discard the data.
		batch := newWalBatch(s)
		for i := range places {
			pl := &places[i]
			for _, o := range pl.owners {
				batch.addChunk(s.servers[o], wal.RecChunkCommit, pl.h, pl.id, 0, nil)
			}
		}
		batch.flushParallel(ctx, true)
	}

	// Descriptor update: bump version, extend size if needed, replicate.
	d.version++
	if off+int64(len(p)) > d.size {
		d.size = off + int64(len(p))
		s.cluster.MetaOp(ctx.Clock, primary.node, 1)
		cg := s.directCharge(ctx)
		s.walAppendMeta(&cg, primary, wal.RecMeta, key, d.size)
		s.replicateDescSize(ctx, key, d.size)
	}
	return len(p), nil
}

// abortPrepared logs RecAbort markers on every live replica of every
// participant chunk, batched per server. Down servers are skipped: their
// logs are unreachable, and their uncommitted prepares die at replay anyway.
func (s *Store) abortPrepared(ctx *storage.Context, places []chunkPlace) {
	batch := newWalBatch(s)
	for i := range places {
		pl := &places[i]
		for _, o := range pl.owners {
			sv := s.servers[o]
			if sv.isDown() {
				continue
			}
			batch.addChunk(sv, wal.RecAbort, pl.h, pl.id, 0, nil)
		}
	}
	batch.flushParallel(ctx, true)
}

// writeChunk applies data to the chunk at the given intra-chunk offset on
// every replica, primary first then replicas in parallel (primary-copy
// replication). It runs as a fan task: the replica copies are a nested fan
// recorded into this task's ledger, so simulated time keeps the
// primary-then-parallel-replicas shape while the actual copies run on the
// worker pool.
func (s *Store) writeChunk(t *fanTask, pl chunkPlace, within int64, data []byte, rec wal.RecordType) error {
	cg := &t.cg
	// Validate the whole replica set before mutating anything: down-ness
	// is the failure model here, so checking up front makes the
	// single-chunk direct-commit path failure-atomic — no durable RecWrite
	// on the primary for a write that then dies on a replica, which crash
	// replay would resurrect one-sidedly. (A server going down between
	// this check and the copies is still caught by the per-replica check
	// below; the multi-chunk path additionally has the RecAbort protocol.)
	primary := s.servers[pl.owners[0]]
	if primary.isDown() {
		return fmt.Errorf("chunk %d of %q: primary down: %w", pl.id.idx, pl.id.key, storage.ErrStaleHandle)
	}
	for _, o := range pl.owners[1:] {
		if s.servers[o].isDown() {
			return fmt.Errorf("chunk %d of %q: replica down: %w", pl.id.idx, pl.id.key, storage.ErrStaleHandle)
		}
	}
	// Client -> primary carries the payload. A prepared (multi-chunk)
	// write logs now but materializes in memory only at the commit phase,
	// so a transaction that dies mid-data-phase leaves live replicas
	// exactly as consistent as crash-recovered ones. The log append is
	// vectored: data streams from the caller's buffer to the log medium in
	// one copy, with only the chunk-addressing header staged.
	apply := rec == wal.RecWrite
	cg.rpc(primary.node, len(data), 64, 0)
	if apply {
		applyChunk(primary, pl.h, pl.id, within, data)
	}
	s.walAppendChunk(cg, primary, rec, pl.h, pl.id, within, data)
	cg.diskWrite(primary.node, len(data))

	// Primary -> replicas in parallel. With synchronous replication the
	// client waits for every copy; with AsyncReplication the copies are
	// applied (and their resource time reserved) but the client clock does
	// not wait on them.
	if len(pl.owners) > 1 {
		sf := t.subFan()
		for _, o := range pl.owners[1:] {
			rt := sf.task(taskReplicaWrite)
			rt.sv = s.servers[o]
			rt.pl = pl
			rt.within = within
			rt.data = data
			rt.rec = rec
			sf.spawn(rt)
		}
		if s.cfg.AsyncReplication {
			t.dropSubs(&sf)
		} else {
			t.joinSubs(&sf)
		}
	}
	return nil
}

// replicaWrite is the per-replica body of writeChunk's nested fan.
func (s *Store) replicaWrite(cg *charge, sv *server, pl chunkPlace, within int64, data []byte, rec wal.RecordType) error {
	if sv.isDown() {
		return fmt.Errorf("chunk %d of %q: replica down: %w", pl.id.idx, pl.id.key, storage.ErrStaleHandle)
	}
	cg.rpc(sv.node, len(data), 64, 0)
	if rec == wal.RecWrite {
		applyChunk(sv, pl.h, pl.id, within, data)
	}
	s.walAppendChunk(cg, sv, rec, pl.h, pl.id, within, data)
	cg.diskWrite(sv.node, len(data))
	return nil
}

// applyChunk writes data into sv's copy of the chunk, growing it as
// needed. Growth doubles capacity so sequential small appends stay
// amortized O(1) instead of quadratic.
func applyChunk(sv *server, h uint64, id chunkID, within int64, data []byte) {
	st := sv.stripe(h)
	st.mu.Lock()
	defer st.mu.Unlock()
	chunk := st.m[id]
	need := within + int64(len(data))
	switch {
	case int64(len(chunk)) >= need:
		// In-place overwrite, no growth.
	case int64(cap(chunk)) >= need:
		// Reused capacity may hold stale bytes from an earlier truncate;
		// the gap before the write must read as zeros (sparse semantics).
		old := int64(len(chunk))
		chunk = chunk[:need]
		if old < within {
			clear(chunk[old:within])
		}
	default:
		newCap := int64(cap(chunk))
		if newCap < 1024 {
			newCap = 1024
		}
		for newCap < need {
			newCap *= 2
		}
		grown := make([]byte, need, newCap)
		copy(grown, chunk)
		chunk = grown
	}
	copy(chunk[within:], data)
	st.m[id] = chunk
}

// TruncateBlob sets the blob's size. Shrinking drops whole chunks past the
// new end and trims the boundary chunk; growing is sparse (reads return
// zeros). Truncating to the current size is a pure metadata probe: after
// the lookup charge it changes nothing — no version bump, no WAL record,
// no descriptor replication.
func (s *Store) TruncateBlob(ctx *storage.Context, key string, size int64) error {
	if size < 0 {
		return fmt.Errorf("truncate %q to %d: %w", key, size, storage.ErrInvalidArg)
	}
	primary, d, err := s.primaryDesc(key)
	if err != nil {
		return err
	}
	if primary.isDown() {
		return fmt.Errorf("blob %q: primary down: %w", key, storage.ErrStaleHandle)
	}
	s.cluster.MetaOp(ctx.Clock, primary.node, 1)

	d.latch.Lock()
	defer d.latch.Unlock()

	if size == d.size {
		return nil
	}
	cs := int64(s.cfg.ChunkSize)
	if size < d.size {
		oldChunks := (d.size + cs - 1) / cs
		keepChunks := (size + cs - 1) / cs
		batch := newWalBatch(s)
		fan := s.newFan()
		for idx := keepChunks; idx < oldChunks; idx++ {
			id := chunkID{key, idx}
			h := id.ringHash()
			for _, o := range s.ownersForHash(h) {
				sv := s.servers[o]
				t := fan.task(taskChunkDelete)
				t.sv = sv
				t.pl = chunkPlace{id: id, h: h}
				fan.spawn(t)
				batch.addChunk(sv, wal.RecChunkDelete, h, id, 0, nil)
			}
		}
		// Trim the boundary chunk.
		if keepChunks > 0 {
			idx := keepChunks - 1
			keep := size - idx*cs
			id := chunkID{key, idx}
			h := id.ringHash()
			for _, o := range s.ownersForHash(h) {
				sv := s.servers[o]
				t := fan.task(taskChunkTrim)
				t.sv = sv
				t.pl = chunkPlace{id: id, h: h}
				t.size = keep
				fan.spawn(t)
				batch.addChunk(sv, wal.RecChunkTruncate, h, id, keep, nil)
			}
		}
		fan.join(ctx)
		batch.flush(ctx)
	}
	d.version++
	d.size = size
	cg := s.directCharge(ctx)
	s.walAppendMeta(&cg, primary, wal.RecTruncate, key, size)
	s.replicateDescSize(ctx, key, size)
	return nil
}

// replicateDescSize pushes the new size to descriptor replicas in parallel.
// Caller holds the primary descriptor latch.
func (s *Store) replicateDescSize(ctx *storage.Context, key string, size int64) {
	owners := s.descOwners(key)
	fan := s.newFan()
	for _, o := range owners[1:] {
		t := fan.task(taskDescReplicate)
		t.sv = s.servers[o]
		t.key = key
		t.size = size
		t.rec = wal.RecMeta
		fan.spawn(t)
	}
	fan.join(ctx)
}
