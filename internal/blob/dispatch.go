// dispatch.go implements the data plane's scatter-gather dispatcher: a
// bounded worker pool that executes per-chunk fan-out work (striped reads,
// replica writes, 2PC prepare/commit traffic, descriptor replication,
// rebalance copies) on real goroutines while keeping the simulated-clock
// semantics of the sequential implementation bit-for-bit.
//
// # Concurrency contract
//
// The difficulty is that virtual-time accounting must stay deterministic
// while real execution becomes parallel. sim.Resource reservations are
// order-sensitive (FIFO by arrival of the Use call), so letting worker
// goroutines charge the shared cluster resources directly would make joined
// clock times depend on the host scheduler. The dispatcher therefore splits
// every task into two halves:
//
//   - Real work — byte copies, chunk-table mutations, WAL appends — runs on
//     the worker goroutine immediately. All touched structures are
//     independently locked (chunk stripes, server descriptor maps, the
//     per-server WAL lanes, the placement cache), so this half is free to
//     interleave. A WAL append may briefly park as a group-commit follower
//     (wal.MultiLog), waiting on a leader that holds only lane-local locks
//     and never waits on the pool — the same bounded-wait class as a
//     mutex, so the no-deadlock argument is unchanged.
//     (enforced: blobvet/stripelock for the stripe half; blobvet/walappend
//     keeps appends on the accounted path)
//   - Cost charging — RPC, DiskRead, DiskWrite, DiskAppend, MetaOp,
//     LocalCompute — is recorded into the task's private ledger (a
//     per-worker shard of the cluster accounting) and folded into the
//     shared resources only at ctxFan.join, in task submission order.
//     (enforced: manual: fold-order equivalence is pinned by
//     TestFanoutDeterministicVirtualTime, not statically checkable)
//
// Folding at join replays exactly the charge sequence the sequential
// implementation would have issued: every top-level task's clock forks at
// the caller's time at join, charges replay in submission order against the
// live resources, and the caller advances to the slowest child. Nested fans
// (a chunk write's replica replication) are recorded as join/drop ops inside
// the parent task's ledger and replayed recursively, so AsyncReplication
// keeps its "reserve the resource time but do not wait" semantics.
//
// Ownership rules:
//
//   - A forked child clock (ledger) is owned by exactly one task between
//     spawn and join; nothing else may observe it.
//     (enforced: manual: ownership aliasing is not statically checkable;
//     the race detector covers it under -race)
//   - Between creating a fan and joining it the caller must not charge its
//     own clock; all fork times are taken at join.
//     (enforced: manual: pinned by the fan-out virtual-time equivalence
//     tests)
//   - ctxFan.join is the only place ledgers touch shared resources, so
//     costs fold deterministically no matter where tasks physically ran
//     (worker goroutine, saturated-pool inline fallback, or
//     Config.InlineFanout sequential mode — all three are virtual-time
//     identical, which TestFanoutDeterministicVirtualTime pins).
//     (enforced: manual: pinned by TestFanoutDeterministicVirtualTime)
//   - A task must never block on a lock that can be held across a pool
//     wait (ctxFan.join, parallelDo). Concretely: the per-blob descriptor
//     latch is held across writers' joins, so tasks may not acquire it —
//     they collect descriptor pointers and let the caller read under the
//     latch after join (see Scan). The short-hold locks — chunk stripes,
//     server maps, the WAL, the placement cache — are fine; their holders
//     never wait on the pool.
//     (enforced: blobvet/workerlatch — latch takes and pool waits are
//     flagged in the whole call graph reachable from task bodies)
//
// # Recovery and checkpoint stages
//
// The crash-recovery pipeline (recoverfeed.go) and the per-lane
// checkpoint (recovery.go) ride this same pool, under the same rules,
// with three stage-specific latch obligations:
//
//   - Lane-decode jobs are one-shot and non-blocking: each decodes a
//     bounded batch from a private medium snapshot and signals a
//     capacity-1 channel that is empty by protocol (one job in flight per
//     lane). Only the merge — the recovery caller, never a worker — waits
//     on those channels, and it must therefore hold no latch-class lock
//     while merging: Recover builds into local maps and takes sv.mu only
//     to install them (and, as before, never holds sv.mu across the
//     chunk-scatter parallelDo).
//     (enforced: blobvet/workerlatch — laneFeed.run is a task root and
//     laneFeed.Next is a pool wait)
//   - Per-lane checkpoint jobs append only to their own lane's private
//     Log/Buffer through the pooled header staging; they take no
//     latch-class lock and never wait on the pool. The state snapshot
//     (descriptor sizes under sv.mu, chunk slices under the stripe locks)
//     is taken by the caller BEFORE the jobs are spawned.
//     (enforced: blobvet/workerlatch for the latch and wait half;
//     blobvet/walappend keeps checkpointLane the only direct lane writer)
//   - parallelDo must not be called from a worker, so multi-stage sweeps
//     fan out FLAT: CheckpointAll expands to (server, lane) jobs at the
//     caller instead of nesting a per-server parallelDo inside a pool
//     task, which on a saturated pool would deadlock (every worker
//     blocked in a nested wait, every nested job stuck in the queue).
//     (enforced: blobvet/workerlatch — parallelDo is a flagged pool wait
//     inside the task-reachable graph)
//
// # Repair and resync stages
//
// Debt-driven repair (repair.go) fans per-chunk repairChunk tasks through
// this pool round by round, and rejoin resync (resyncNode) runs inline on
// the Recover/SetDown caller; both obey additional lock rules:
//
//   - Repair tasks touch only short-hold locks: a source chunk is copied
//     out under its stripe RLock, the install takes the TARGET's stripe
//     lock, and the two are never held together (the copy is a snapshot;
//     the version guard at install, not lock coverage, is what keeps a
//     racing writer's newer data from being clobbered). Debt clears are
//     version-guarded under the holder's stripe lock the same way.
//     (enforced: blobvet/stripelock — holding two chunk-stripe locks at
//     once is flagged, including through callbacks run under a stripe)
//   - Repair never acquires the per-blob descriptor latch. That is what
//     makes the degraded-write epilogue sound: writeLocked invokes
//     repairNode WHILE holding the written blob's latch (the writer is a
//     caller, allowed to hold it across its own join), and a repair task
//     that took latches would deadlock right there.
//     (enforced: blobvet/workerlatch — repairChunk runs in the
//     task-reachable graph, where latch takes are flagged)
//   - repairDrain performs a fan join per round, so it is caller-only —
//     never callable from inside a pool task (the nested-wait rule above).
//     Its rounds require progress (a chunk actually installed or a bit
//     actually cleared) to continue, so an unserviceable target (sole
//     fresh source down) terminates the loop instead of spinning it.
//     (enforced: blobvet/workerlatch — repairDrain is itself a flagged
//     pool wait)
//   - Repair and rebalance coordinate through the ring epoch: each round
//     snapshots it and every task re-checks before mutating, bailing out
//     when membership changed underneath.
//     (enforced: manual: epoch re-check is a liveness protocol, pinned by
//     the rebalance/repair chaos tests)
//
// # Migration stages
//
// Membership changes (rebalance.go) run the reconcile sweep's per-chunk
// migrateChunk tasks through this pool, one 2PC batch in flight at a time,
// under four additional rules:
//
//   - The descriptor handover sweep is caller-only and runs BEFORE any
//     chunk batch: it installs the canonical descriptor pointer on gained
//     owners under that blob's latch (held in read mode, re-resolving under
//     the latch to exclude a racing DeleteBlob). Chunk-batch tasks
//     therefore never need — and must never take — a descriptor latch;
//     like repair tasks they touch only stripe locks, server maps, and WAL
//     lanes. revalidateBatch, which does read the latch to re-check blob
//     extents, runs on the batch CALLER after join, never in a task.
//     (enforced: blobvet/workerlatch — migrateChunk is in the
//     task-reachable graph, where latch takes are flagged)
//   - Durable-before-visible, per batch: tasks append buffered copy/delete
//     records (RecMigrateBatch) and defer every in-memory mutation to the
//     batch caller, which materializes installs and deletes only AFTER the
//     commit markers land on all logged participants. Installs are
//     version-guarded (setChunkIfNewer), mirroring the replay-side guard,
//     so a concurrent foreground write that outran the copy wins on both
//     sides of a crash.
//     (enforced: manual: commit-before-materialize ordering is pinned by
//     the migration crash sweep's batch-boundary and torn-tail captures)
//   - Migration appends ride the accounted append path: intents and batch
//     markers go to the migration lane, buffered chunk records to the
//     chunk's natural lane, all through walAppendLane so the server-scoped
//     order keys keep merged replay in true append order.
//     (enforced: blobvet/walappend — walAppendLane and checkpointLane are
//     the only direct lane writers)
//   - Sweep iteration is determinism-critical: the descriptor sweep and the
//     migration plan sort their key/chunk sets before walking them, so the
//     record order every log receives — and therefore the roll-forward
//     replay — is independent of Go map iteration order.
//     (enforced: blobvet/virtualtime — map-order-dependent effects in the
//     accounted call graph are flagged)
//   - The ring mutates only under the exclusive member gate, and every
//     placement-resolving foreground op holds the gate shared end-to-end
//     (resolve through last replica ack), so an epoch flip never splits one
//     op across two placements. The gate is held for the flip instant only
//     — never across the sweep — so foreground traffic runs throughout.
//     (enforced: manual: gate coverage is a protocol property, pinned by
//     the live-traffic migration tests and the chaos battery's membership
//     actor)
//
// The pool is package-global, lazily started, and bounded by GOMAXPROCS
// (capped at maxDispatchWorkers). Workers never block: a task that fans out
// further (replica writes) records the sub-fan and returns, and a spawn
// that finds the queue full runs the task inline on the submitter. Both
// properties together make nested fan-outs deadlock-free by construction.
package blob

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/wal"
)

// maxDispatchWorkers caps the worker pool so a large host does not spawn
// more goroutines than the simulated cluster could meaningfully exercise.
const maxDispatchWorkers = 16

// dispatchQueueLen is the pool's submission queue depth. Overflow is not an
// error: spawn falls back to inline execution on the submitter.
const dispatchQueueLen = 256

// runnable is what the worker pool executes: fan tasks and the clock-free
// bulk jobs of parallelDo.
type runnable interface{ run() }

var (
	dispatchOnce sync.Once
	dispatchCh   chan runnable
)

// dispatchPool lazily starts the shared worker pool and returns its queue.
func dispatchPool() chan runnable {
	dispatchOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n < 2 {
			n = 2
		}
		if n > maxDispatchWorkers {
			n = maxDispatchWorkers
		}
		dispatchCh = make(chan runnable, dispatchQueueLen)
		for i := 0; i < n; i++ {
			go func() {
				for t := range dispatchCh {
					t.run()
				}
			}()
		}
	})
	return dispatchCh
}

// parallelDo runs fn(0..n-1) across the worker pool and waits for all of
// them. It is for clock-free bulk state manipulation (recovery chunk
// reinsertion, checkpoint sweeps); fan tasks with cost accounting go
// through ctxFan. Must not be called from a worker (it blocks).
func parallelDo(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	ch := dispatchPool()
	for i := 0; i < n; i++ {
		j := &funcJob{wg: &wg, i: i, fn: fn}
		select {
		case ch <- j:
		default:
			j.run()
		}
	}
	wg.Wait()
}

type funcJob struct {
	wg *sync.WaitGroup
	i  int
	fn func(int)
}

func (j *funcJob) run() {
	defer j.wg.Done()
	j.fn(j.i)
}

// ---- cost ledgers ----

// opKind tags one recorded resource charge.
type opKind uint8

const (
	opRPC opKind = iota
	opDiskRead
	opDiskWrite
	opDiskAppend
	opMetaOp
	opLocalCompute
	// opJoinSubs / opDropSubs replay a nested fan: the linked sub-tasks
	// fork at the replay clock's current time; join advances to the
	// slowest sub, drop reserves the resource time without advancing.
	opJoinSubs
	opDropSubs
)

// ledgerOp is one deferred charge. a and b carry the integer operands of
// the corresponding cluster call (byte counts, metadata-op counts).
type ledgerOp struct {
	kind opKind
	node cluster.NodeID
	a, b int
	d    time.Duration
	sub  *fanTask // head of the sibling-linked nested fan (opJoinSubs/opDropSubs)
}

// ledger accumulates a task's charges. The ops slice is recycled with its
// task, so steady-state recording allocates nothing.
type ledger struct {
	ops []ledgerOp
}

// charge routes cluster cost accounting: direct mode (clk set) applies the
// charge to the shared resources immediately — the caller's own sequential
// work — while deferred mode (led set) records it into a task ledger for
// fold-at-join. Exactly one of clk/led is non-nil.
type charge struct {
	s   *Store
	clk *sim.Clock
	led *ledger
}

// directCharge returns a charger applying costs immediately to ctx's clock.
func (s *Store) directCharge(ctx *storage.Context) charge {
	return charge{s: s, clk: ctx.Clock}
}

func (cg *charge) rpc(dst cluster.NodeID, reqBytes, respBytes int, service time.Duration) {
	if cg.led != nil {
		cg.led.ops = append(cg.led.ops, ledgerOp{kind: opRPC, node: dst, a: reqBytes, b: respBytes, d: service})
		return
	}
	cg.s.cluster.RPC(cg.clk, dst, reqBytes, respBytes, service)
}

func (cg *charge) diskRead(dst cluster.NodeID, n int) {
	if cg.led != nil {
		cg.led.ops = append(cg.led.ops, ledgerOp{kind: opDiskRead, node: dst, a: n})
		return
	}
	cg.s.cluster.DiskRead(cg.clk, dst, n)
}

func (cg *charge) diskWrite(dst cluster.NodeID, n int) {
	if cg.led != nil {
		cg.led.ops = append(cg.led.ops, ledgerOp{kind: opDiskWrite, node: dst, a: n})
		return
	}
	cg.s.cluster.DiskWrite(cg.clk, dst, n)
}

func (cg *charge) diskAppend(dst cluster.NodeID, n int) {
	if cg.led != nil {
		cg.led.ops = append(cg.led.ops, ledgerOp{kind: opDiskAppend, node: dst, a: n})
		return
	}
	cg.s.cluster.DiskAppend(cg.clk, dst, n)
}

func (cg *charge) metaOp(dst cluster.NodeID, k int) {
	if cg.led != nil {
		cg.led.ops = append(cg.led.ops, ledgerOp{kind: opMetaOp, node: dst, a: k})
		return
	}
	cg.s.cluster.MetaOp(cg.clk, dst, k)
}

func (cg *charge) localCompute(d time.Duration) {
	if cg.led != nil {
		cg.led.ops = append(cg.led.ops, ledgerOp{kind: opLocalCompute, d: d})
		return
	}
	cg.s.cluster.LocalCompute(cg.clk, d)
}

// ---- fan tasks ----

// taskKind selects a fan task's body. Hot-path work uses typed kinds so the
// read and write paths stay closure-free (zero steady-state allocations);
// cold paths (scan, migration) use taskFunc closures.
type taskKind uint8

const (
	taskFunc taskKind = iota
	taskReadChunk
	taskWriteChunk
	taskReplicaWrite
	taskApplyChunk
	taskPrepare
	taskWalFlush
	taskDescReplicate
	taskChunkDelete
	taskChunkTrim
)

// fanTask is one unit of scatter-gather work: operands, a private cost
// ledger, and the sibling link that keeps submission order for the
// deterministic fold at join. Tasks are pooled; ledger capacity survives
// recycling.
type fanTask struct {
	next *fanTask
	fan  *ctxFan // root fan: owns the WaitGroup and the inline flag
	s    *Store
	cg   charge
	led  ledger
	kind taskKind
	err  error

	// operands (union across kinds)
	pl     chunkPlace
	plp    *chunkPlace // taskWriteChunk: write-back slot for the computed excl mask
	within int64
	size   int64
	mask   uint64 // taskReplicaWrite: debt mask owed by the write's down owners
	data   []byte
	sv     *server
	rec    wal.RecordType
	key    string
	desc   *descriptor // taskDescReplicate: the primary's object, to skip pointer-shared stores
	lane   int  // taskWalFlush: the target log lane of the spec batch
	meta   bool // taskWalFlush: charge one round trip per record; taskDescReplicate: upsert
	specs  []wal.AppendVSpec
	fn     func(cg *charge) error
}

var taskPool = sync.Pool{New: func() any { return new(fanTask) }}

func (t *fanTask) run() {
	defer t.fan.wg.Done()
	s := t.s
	cg := &t.cg
	switch t.kind {
	case taskFunc:
		t.err = t.fn(cg)
	case taskReadChunk:
		t.err = s.readChunk(cg, t.pl.id, t.within, t.data)
	case taskWriteChunk:
		t.err = s.writeChunk(t, t.pl, t.within, t.data, t.rec)
	case taskReplicaWrite:
		t.err = s.replicaWrite(cg, t.sv, t.pl, t.within, t.data, t.rec, t.mask)
	case taskApplyChunk:
		// Commit-phase memory materialization of a prepared multi-chunk
		// write: every replica the data phase reached, in parallel across
		// chunks. Pure memory work — no resource charge; the 2PC round
		// trips are accounted by the prepare and commit log phases. An
		// owner that flapped down after the data phase is NOT skipped:
		// its retained memory stays consistent with the prepare and
		// commit markers its log received. An owner the data phase
		// excluded (t.pl.excl) IS skipped: it holds no prepare, the debt
		// recorded below covers the gap, and a partial apply here would
		// raise its chunk version past bytes it never received.
		//
		// The exclusion debt is recorded HERE, after each included owner's
		// apply, not in the prepare phase: clearDebt's version guard reads
		// "the holder has seen nothing newer than what the repair
		// installed", which is only sound when every holder applies a
		// write BEFORE recording its debt. A prepare-time record sits in
		// the window where the holder's applied version still predates the
		// transaction, so a racing repair of the excluded owner would pass
		// the guard and erase the debt the commit is about to depend on.
		// (Aborted transactions also stop leaving spurious debt behind.)
		for _, o := range t.pl.owners {
			if t.pl.excl&(1<<uint(o)) != 0 {
				continue
			}
			applyChunk(s.servers[o], t.pl.h, t.pl.id, t.within, t.data, t.pl.ver)
			if t.pl.excl != 0 {
				s.recordDebt(cg, s.servers[o], t.pl.h, t.pl.id, t.pl.excl)
			}
		}
	case taskPrepare:
		// One prepare round trip on the participant chunk's primary — or,
		// with the primary down, on the first live owner (the same
		// promotion the degraded data phase applies).
		sv := t.sv
		if sv.isDown() {
			sv = nil
			for _, o := range t.pl.owners {
				if cand := s.servers[o]; !cand.isDown() {
					sv = cand
					break
				}
			}
		}
		if sv == nil {
			t.err = fmt.Errorf("chunk %d of %q: all replicas down: %w", t.pl.id.idx, t.pl.id.key, storage.ErrUnavailable)
			return
		}
		if err := s.faultCheck(cg, sv.node, cluster.FaultMetaOp); err != nil {
			t.err = fmt.Errorf("chunk %d of %q: prepare: %w", t.pl.id.idx, t.pl.id.key, err)
			return
		}
		cg.metaOp(sv.node, 1)
	case taskWalFlush:
		if t.meta {
			cg.metaOp(t.sv.node, len(t.specs))
		}
		s.walAppendBatch(cg, t.sv, t.lane, t.specs)
	case taskDescReplicate:
		cg.metaOp(t.sv.node, 1)
		t.sv.mu.Lock()
		d, ok := t.sv.blobs[t.key]
		if !ok && t.meta {
			d = &descriptor{}
			t.sv.blobs[t.key] = d
			ok = true
		}
		// Skip the store when the replica maps the key to the primary's own
		// descriptor object (pointer-shared by the migration handover): the
		// caller already set the size under the latch, and two replica
		// tasks storing the shared field would race.
		if ok && d != t.desc {
			d.size = t.size
		}
		t.sv.mu.Unlock()
		s.walAppendMeta(cg, t.sv, t.rec, t.key, t.size)
	case taskChunkDelete:
		t.sv.deleteChunk(t.pl.h, t.pl.id)
	case taskChunkTrim:
		t.sv.trimChunk(t.pl.h, t.pl.id, t.size)
	}
}

// replay folds the task's recorded charges into the shared cluster
// resources using clk as the task's virtual clock. Called only from
// ctxFan.join, in submission order.
func (t *fanTask) replay(clk *sim.Clock) {
	s := t.s
	for i := range t.led.ops {
		op := &t.led.ops[i]
		switch op.kind {
		case opRPC:
			s.cluster.RPC(clk, op.node, op.a, op.b, op.d)
		case opDiskRead:
			s.cluster.DiskRead(clk, op.node, op.a)
		case opDiskWrite:
			s.cluster.DiskWrite(clk, op.node, op.a)
		case opDiskAppend:
			s.cluster.DiskAppend(clk, op.node, op.a)
		case opMetaOp:
			s.cluster.MetaOp(clk, op.node, op.a)
		case opLocalCompute:
			s.cluster.LocalCompute(clk, op.d)
		case opJoinSubs, opDropSubs:
			forkAt := clk.Now()
			for sub := op.sub; sub != nil; sub = sub.next {
				sc := clockPool.Get().(*sim.Clock)
				sc.Reset(forkAt)
				sub.replay(sc)
				if op.kind == opJoinSubs {
					clk.Join(sc)
				}
				clockPool.Put(sc)
			}
		}
	}
}

// firstError returns the task's own error or the first error among its
// nested sub-tasks, in recorded order. Dropped (async) subs report too: a
// down replica fails the write even when the client does not wait for it.
func (t *fanTask) firstError() error {
	if t.err != nil {
		return t.err
	}
	for i := range t.led.ops {
		op := &t.led.ops[i]
		if op.kind == opJoinSubs || op.kind == opDropSubs {
			for sub := op.sub; sub != nil; sub = sub.next {
				if err := sub.firstError(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// release recycles the task and, recursively, any nested fan it recorded.
func (t *fanTask) release() {
	for i := range t.led.ops {
		op := &t.led.ops[i]
		if op.kind == opJoinSubs || op.kind == opDropSubs {
			for sub := op.sub; sub != nil; {
				next := sub.next
				sub.release()
				sub = next
			}
			op.sub = nil
		}
	}
	t.led.ops = t.led.ops[:0]
	t.next = nil
	t.fan = nil
	t.s = nil
	t.cg = charge{}
	t.err = nil
	t.pl = chunkPlace{}
	t.within = 0
	t.size = 0
	t.mask = 0
	t.plp = nil
	t.data = nil
	t.sv = nil
	t.rec = 0
	t.key = ""
	t.desc = nil
	t.lane = 0
	t.meta = false
	t.specs = nil
	t.fn = nil
	taskPool.Put(t)
}

// clockPool recycles the scratch clocks used to replay task ledgers.
var clockPool = sync.Pool{New: func() any { return sim.NewClock() }}

// ---- fans ----

// ctxFan is a scatter-gather in flight: the submission-ordered task list,
// the WaitGroup covering every task in the tree (nested fans included), and
// the execution mode. It amortizes through a pool, so a steady-state
// fan-out allocates nothing.
type ctxFan struct {
	s      *Store
	inline bool
	wg     sync.WaitGroup
	head   *fanTask
	tail   *fanTask
}

var fanPool = sync.Pool{New: func() any { return new(ctxFan) }}

// newFan starts a scatter-gather rooted at this store.
func (s *Store) newFan() *ctxFan {
	f := fanPool.Get().(*ctxFan)
	f.s = s
	f.inline = s.cfg.InlineFanout
	return f
}

// task takes a pooled task bound to this fan.
func (f *ctxFan) task(kind taskKind) *fanTask {
	t := taskPool.Get().(*fanTask)
	t.kind = kind
	t.s = f.s
	t.fan = f
	t.cg = charge{s: f.s, led: &t.led}
	return t
}

// dispatch hands t to the pool, or runs it inline when the fan is in
// sequential mode or the queue is full. Workers never block, so inline
// fallback (not backpressure) is what bounds the queue.
func (f *ctxFan) dispatch(t *fanTask) {
	f.wg.Add(1)
	if f.inline {
		t.run()
		return
	}
	select {
	case dispatchPool() <- t:
	default:
		t.run()
	}
}

// spawn submits a top-level task.
func (f *ctxFan) spawn(t *fanTask) {
	if f.head == nil {
		f.head = t
	} else {
		f.tail.next = t
	}
	f.tail = t
	f.dispatch(t)
}

// join waits for every task in the fan (nested ones included), folds the
// recorded charges into the shared cluster resources in submission order,
// and advances ctx's clock to the slowest child — the synchronization point
// of the simulated parallel fan-out. It returns the index of the first
// failed top-level task and the first error in submission order (-1, nil
// when everything succeeded), and recycles the fan.
func (f *ctxFan) join(ctx *storage.Context) (int, error) {
	f.wg.Wait()
	forkAt := ctx.Clock.Now()
	errIdx, firstErr := -1, error(nil)
	i := 0
	for t := f.head; t != nil; i++ {
		sc := clockPool.Get().(*sim.Clock)
		sc.Reset(forkAt)
		t.replay(sc)
		ctx.Clock.Join(sc)
		clockPool.Put(sc)
		if firstErr == nil {
			if err := t.firstError(); err != nil {
				errIdx, firstErr = i, err
			}
		}
		next := t.next
		t.release()
		t = next
	}
	f.head, f.tail = nil, nil
	f.s = nil
	fanPool.Put(f)
	return errIdx, firstErr
}

// subFan collects the nested fan-out of a task already running (a chunk
// write's replica replication). Its tasks share the root fan's WaitGroup
// and mode, but their charges are recorded into the parent task's ledger —
// joinSubs/dropSubs — instead of touching shared resources, so a worker
// never blocks and never charges out of order.
type subFan struct {
	root *ctxFan
	head *fanTask
	tail *fanTask
}

func (t *fanTask) subFan() subFan { return subFan{root: t.fan} }

func (sf *subFan) task(kind taskKind) *fanTask { return sf.root.task(kind) }

func (sf *subFan) spawn(t *fanTask) {
	if sf.head == nil {
		sf.head = t
	} else {
		sf.tail.next = t
	}
	sf.tail = t
	sf.root.dispatch(t)
}

// joinSubs records a fork/join of the nested fan at the parent task's
// current virtual time: at replay the subs fork together and the parent
// advances to the slowest, like ctxFan.join.
func (t *fanTask) joinSubs(sf *subFan) {
	if sf.head == nil {
		return
	}
	t.led.ops = append(t.led.ops, ledgerOp{kind: opJoinSubs, sub: sf.head})
}

// dropSubs records a fork without a join — the async-replication
// acknowledgement path. The subs' resource time is still reserved at
// replay, but the parent clock does not wait on them.
func (t *fanTask) dropSubs(sf *subFan) {
	if sf.head == nil {
		return
	}
	t.led.ops = append(t.led.ops, ledgerOp{kind: opDropSubs, sub: sf.head})
}

// forEachSpan invokes fn for every chunk-aligned span of the byte range
// [off, off+n): the chunk index, the intra-chunk offset, and the span's
// start/length relative to the range. It is the single source of the
// stride arithmetic shared by reads, write phases, and the
// partial-completion accounting, which must all agree span-for-span.
func forEachSpan(off, n, chunkSize int64, fn func(idx, within, start, take int64)) {
	for done := int64(0); done < n; {
		idx := (off + done) / chunkSize
		within := (off + done) % chunkSize
		take := chunkSize - within
		if take > n-done {
			take = n - done
		}
		fn(idx, within, done, take)
		done += take
	}
}

// fanPrefixBytes reports how many bytes the first k chunk-striped tasks of
// an operation starting at off for want bytes covered — the deterministic
// partial-completion count reported when a read fan fails mid-stripe.
func fanPrefixBytes(off, want, chunkSize int64, k int) int64 {
	var n int64
	i := 0
	forEachSpan(off, want, chunkSize, func(_, _, start, take int64) {
		if i < k {
			n = start + take
		}
		i++
	})
	return n
}
