package blob

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
)

// FuzzRecoverParallel is the end-to-end crash battery for the parallel
// recovery pipeline: a store workload derived deterministically from the
// fuzz input (creates, single- and multi-chunk 2PC writes, truncates,
// deletes, checkpoints), arbitrary lane tears on fuzzer-chosen servers,
// and an optional byte flip — then every node is crashed and recovered
// twice from identical media, once through the pool-prefetched lane-decode
// pipeline and once through the serial oracle (Config.SerialRecovery).
// The contract is total equivalence: same error class (nil or ErrCorrupt,
// never a panic), same descriptors, same chunk bytes, same repaired lane
// media. The merge engine is shared between the paths, so any divergence
// the fuzzer finds is a real bug in the decode staging (batch boundaries,
// feed termination, frame accounting).
func FuzzRecoverParallel(f *testing.F) {
	// Script grammar (see below): each op consumes 3 bytes — op selector,
	// key selector, size/offset argument.
	f.Add([]byte{}, uint32(0), uint32(0), false, uint32(0))
	// Create + multi-chunk write + checkpoint + more writes, tear mid-log.
	f.Add([]byte{0, 0, 0, 1, 0, 100, 5, 0, 0, 1, 0, 40, 2, 0, 9}, uint32(37), uint32(11), false, uint32(0))
	// 2PC-heavy: interleaved multi-chunk writes on two blobs, two tears.
	f.Add([]byte{0, 0, 0, 0, 1, 0, 1, 0, 200, 1, 1, 150, 1, 0, 90, 1, 1, 60}, uint32(101), uint32(53), false, uint32(0))
	// Truncate + delete + corruption flip.
	f.Add([]byte{0, 2, 0, 1, 2, 120, 3, 2, 33, 4, 2, 0, 0, 2, 0, 1, 2, 80}, uint32(0), uint32(0), true, uint32(77))
	// Checkpoint-then-append with a tear landing in the appended suffix.
	f.Add([]byte{0, 3, 0, 1, 3, 64, 5, 0, 0, 1, 3, 32, 1, 3, 96}, uint32(29), uint32(0), false, uint32(0))

	keys := []string{"f0", "f1", "f2", "f3"}
	f.Fuzz(func(t *testing.T, script []byte, tearA, tearB uint32, flip bool, flipAt uint32) {
		const lanes = 4
		s := New(cluster.New(cluster.Config{Nodes: 3, Seed: 5}),
			Config{ChunkSize: 32, Replication: 2, WALLanes: lanes, InlineFanout: true})
		ctx := storage.NewContext()
		live := make(map[string]bool)
		for i := 0; i+3 <= len(script); i += 3 {
			key := keys[int(script[i+1])%len(keys)]
			arg := int(script[i+2])
			switch script[i] % 6 {
			case 0:
				if !live[key] {
					if err := s.CreateBlob(ctx, key); err != nil {
						t.Fatal(err)
					}
					live[key] = true
				}
			case 1: // write: sizes up to 256 bytes span up to 9 chunks (2PC)
				if live[key] {
					data := make([]byte, arg+1)
					for j := range data {
						data[j] = byte(i + 7*j)
					}
					if _, err := s.WriteBlob(ctx, key, int64(arg%64), data); err != nil {
						t.Fatal(err)
					}
				}
			case 2: // small single-chunk overwrite
				if live[key] {
					if _, err := s.WriteBlob(ctx, key, 0, []byte{byte(i), byte(arg)}); err != nil {
						t.Fatal(err)
					}
				}
			case 3:
				if live[key] {
					if err := s.TruncateBlob(ctx, key, int64(arg)); err != nil {
						t.Fatal(err)
					}
				}
			case 4:
				if live[key] {
					if err := s.DeleteBlob(ctx, key); err != nil {
						t.Fatal(err)
					}
					live[key] = false
				}
			case 5:
				s.CheckpointAll()
			}
		}

		// Crash damage: two fuzzer-positioned lane tears and an optional
		// byte flip, each on a fuzzer-chosen server.
		for _, tear := range []uint32{tearA, tearB} {
			sv := s.servers[int(tear)%len(s.servers)]
			lb := sv.wal.LaneBuffer(int(tear/3) % lanes)
			if lb.Len() > 0 {
				lb.Truncate(int(tear/12) % (lb.Len() + 1))
			}
		}
		if flip {
			sv := s.servers[int(flipAt)%len(s.servers)]
			lb := sv.wal.LaneBuffer(int(flipAt/3) % lanes)
			if lb.Len() > 0 {
				if err := lb.Corrupt(int(flipAt/12) % lb.Len()); err != nil {
					t.Fatal(err)
				}
			}
		}

		for node := range s.servers {
			compareRecoveryModes(t, s, node)
		}
	})
}
