package blob

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Placement-cache behaviour: membership changes bump the ring epoch and the
// cache must lazily drop its entries, so no read is ever routed with a
// stale replica set.

func writeWorkload(t *testing.T, s *Store, ctx *storage.Context, rng *sim.RNG, prefix string, n int) map[string][]byte {
	t.Helper()
	expect := make(map[string][]byte)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%s-%03d", prefix, i)
		if err := s.CreateBlob(ctx, key); err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 64+i*13)
		rng.Fill(data)
		if _, err := s.WriteBlob(ctx, key, 0, data); err != nil {
			t.Fatal(err)
		}
		expect[key] = data
	}
	return expect
}

func readAndVerify(t *testing.T, s *Store, ctx *storage.Context, expect map[string][]byte) {
	t.Helper()
	for key, want := range expect {
		got := make([]byte, len(want))
		n, err := s.ReadBlob(ctx, key, 0, got)
		if err != nil || n != len(want) {
			t.Fatalf("read %q = (%d, %v), want %d bytes", key, n, err, len(want))
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %q returned wrong bytes", key)
		}
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
}

// TestPlacementCacheInvalidationOnMembershipChange adds and removes a
// member mid-workload and asserts every chunk is still found — a stale
// cache entry would misroute reads to servers that no longer (or never)
// hold the chunk.
func TestPlacementCacheInvalidationOnMembershipChange(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 8, Seed: 7})
	serving := []cluster.NodeID{0, 1, 2, 3, 4, 5}
	s := NewOnNodes(c, Config{ChunkSize: 96, Replication: 2}, serving)
	ctx := storage.NewContext()
	expect := writeWorkload(t, s, ctx, sim.NewRNG(21), "pc", 40)

	// Warm the placement cache for every chunk and descriptor.
	readAndVerify(t, s, ctx, expect)

	// Join a new server: placements move, the cache must follow.
	if err := s.AddServer(ctx, 6); err != nil {
		t.Fatal(err)
	}
	readAndVerify(t, s, ctx, expect)

	// Interleave new writes (repopulating the cache at the new epoch),
	// then drain a server that holds data.
	more := writeWorkload(t, s, ctx, sim.NewRNG(22), "pc2", 10)
	for k, v := range more {
		expect[k] = v
	}
	readAndVerify(t, s, ctx, expect)

	if err := s.RemoveServer(ctx, 2); err != nil {
		t.Fatal(err)
	}
	readAndVerify(t, s, ctx, expect)

	// One more join after the removal, for good measure.
	if err := s.AddServer(ctx, 7); err != nil {
		t.Fatal(err)
	}
	readAndVerify(t, s, ctx, expect)
}

// TestPlacementCacheSteadyStateAllocationFree pins the acceptance criterion
// that steady-state placement lookups allocate nothing and bypass the ring.
func TestPlacementCacheSteadyStateAllocationFree(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 9, Seed: 1}), Config{ChunkSize: 1 << 16, Replication: 3})
	id := chunkID{"steady", 3}
	h := id.ringHash()
	s.ownersForHash(h) // prime
	allocs := testing.AllocsPerRun(200, func() {
		if len(s.ownersForHash(h)) != 3 {
			t.Fatal("wrong replica count")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state placement lookup allocates %v per call, want 0", allocs)
	}
	// chunkID hashing itself must also be allocation-free.
	allocs = testing.AllocsPerRun(200, func() {
		if (chunkID{"steady", 3}).ringHash() != h {
			t.Fatal("hash instability")
		}
	})
	if allocs != 0 {
		t.Fatalf("chunkID.ringHash allocates %v per call, want 0", allocs)
	}
}

// TestPlacementCacheMatchesRing cross-checks cached placements against
// direct ring lookups before and after an epoch bump.
func TestPlacementCacheMatchesRing(t *testing.T) {
	s := New(cluster.New(cluster.Config{Nodes: 7, Seed: 3}), Config{ChunkSize: 128, Replication: 3})
	check := func() {
		for i := 0; i < 50; i++ {
			id := chunkID{fmt.Sprintf("x-%d", i), int64(i % 5)}
			got := s.ownersForHash(id.ringHash())
			want := make([]int, 3)
			cnt := s.ring.LocateHashNInto(id.ringHash(), want)
			if !equalOwners(got, want[:cnt]) {
				t.Fatalf("cached owners %v != ring owners %v for %v", got, want[:cnt], id)
			}
		}
	}
	check()
	check() // second pass is served from the cache
	s.ring.Remove(4)
	check() // epoch advanced: cache must re-derive
}

func equalOwners(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
