package blob

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/wal"
)

// mkStore builds a store over a fresh cluster with the given fan-out mode.
func mkStore(nodes int, cfg Config, inline bool) *Store {
	cfg.InlineFanout = inline
	return New(cluster.New(cluster.Config{Nodes: nodes, Seed: 42}), cfg)
}

// TestFanoutDeterministicVirtualTime pins the dispatcher's core invariant:
// executing fan-out tasks on the worker pool must produce, operation by
// operation, exactly the virtual clock times of the sequential baseline
// (InlineFanout). Charges are recorded per task and folded at join in
// submission order, so the two modes must agree bit-for-bit.
func TestFanoutDeterministicVirtualTime(t *testing.T) {
	run := func(inline bool) []int64 {
		cfg := Config{ChunkSize: 32, Replication: 3}
		s := mkStore(6, cfg, inline)
		ctx := storage.NewContext()
		var stamps []int64
		stamp := func() { stamps = append(stamps, int64(ctx.Clock.Now())) }

		for i := 0; i < 4; i++ {
			if err := s.CreateBlob(ctx, fmt.Sprintf("det-%d", i)); err != nil {
				t.Fatal(err)
			}
			stamp()
		}
		buf := make([]byte, 200)
		for i := range buf {
			buf[i] = byte(i * 7)
		}
		for i := 0; i < 4; i++ {
			key := fmt.Sprintf("det-%d", i)
			if _, err := s.WriteBlob(ctx, key, int64(i*13), buf); err != nil { // multi-chunk 2PC
				t.Fatal(err)
			}
			stamp()
			if _, err := s.WriteBlob(ctx, key, 5, buf[:8]); err != nil { // single chunk
				t.Fatal(err)
			}
			stamp()
			rd := make([]byte, 150)
			if _, err := s.ReadBlob(ctx, key, 3, rd); err != nil {
				t.Fatal(err)
			}
			stamp()
			if err := s.TruncateBlob(ctx, key, 70); err != nil { // shrink
				t.Fatal(err)
			}
			stamp()
			if err := s.TruncateBlob(ctx, key, 70); err != nil { // no-op
				t.Fatal(err)
			}
			stamp()
		}
		if _, err := s.Scan(ctx, "det-"); err != nil {
			t.Fatal(err)
		}
		stamp()
		txn := s.Begin(ctx)
		txn.Write("det-0", 0, buf)
		txn.Write("det-1", 16, buf[:40])
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		stamp()
		// Error paths must charge deterministically too.
		owners := s.chunkOwners(chunkID{"det-2", 1})
		s.SetDown(cluster.NodeID(owners[0]), true)
		if _, err := s.WriteBlob(ctx, "det-2", 0, buf[:96]); err == nil {
			t.Fatal("write with a chunk primary down succeeded")
		}
		stamp()
		s.SetDown(cluster.NodeID(owners[0]), false)
		if err := s.DeleteBlob(ctx, "det-3"); err != nil {
			t.Fatal(err)
		}
		stamp()
		return stamps
	}

	seq := run(true)
	par := run(false)
	if len(seq) != len(par) {
		t.Fatalf("stamp counts diverge: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("virtual time diverges at op %d: sequential %d, dispatcher %d", i, seq[i], par[i])
		}
	}
}

// TestFanoutRaceStress hammers shared keys from many goroutines with mixed
// reads, writes (single- and multi-chunk), truncates, sizes, and scans.
// Run under -race (scripts/benchcheck.sh does) it is the dispatcher's
// concurrency-safety gate; the invariant check at the end is the
// correctness gate.
func TestFanoutRaceStress(t *testing.T) {
	s := mkStore(8, Config{ChunkSize: 64, Replication: 2}, false)
	setup := storage.NewContext()
	const keys = 4
	for i := 0; i < keys; i++ {
		if err := s.CreateBlob(setup, fmt.Sprintf("shared-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 8
	const iters = 60
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := storage.NewContext()
			buf := make([]byte, 200)
			for i := range buf {
				buf[i] = byte(w*31 + i)
			}
			rd := make([]byte, 256)
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("shared-%d", (w+i)%keys)
				switch i % 5 {
				case 0: // multi-chunk write
					if _, err := s.WriteBlob(ctx, key, int64((w*17+i)%128), buf); err != nil {
						errs <- err
						return
					}
				case 1: // single-chunk write
					if _, err := s.WriteBlob(ctx, key, int64(i%48), buf[:16]); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := s.ReadBlob(ctx, key, int64(i%200), rd); err != nil {
						errs <- err
						return
					}
				case 3:
					if err := s.TruncateBlob(ctx, key, int64(64+(w*i)%192)); err != nil {
						errs <- err
						return
					}
				case 4:
					if _, err := s.BlobSize(ctx, key); err != nil {
						errs <- err
						return
					}
					if i%20 == 4 {
						if _, err := s.Scan(ctx, "shared-"); err != nil {
							errs <- err
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariants after concurrent churn: %s", msg)
	}
}

// TestMultiChunkAbortNotReplayed is the write-atomicity regression test: a
// multi-chunk write that dies in the data phase must append RecAbort
// markers so crash replay discards the prepared chunk writes instead of
// resurrecting a half-committed transaction. A down replica no longer
// fails the data phase (degraded writes absorb it), so the failure is an
// injected permanent disk-write fault at a participant chunk's primary —
// writeChunk fail-atomically refuses before anything durable lands there.
func TestMultiChunkAbortNotReplayed(t *testing.T) {
	s := mkStore(8, Config{ChunkSize: 8, Replication: 2}, false)
	ctx := storage.NewContext()
	key := "atomic"
	victim := s.chunkOwners(chunkID{key, 1})[0]

	if err := s.CreateBlob(ctx, key); err != nil {
		t.Fatal(err)
	}
	before := []byte("committed-multi-chunk-ok")[:24] // 3 chunks
	if _, err := s.WriteBlob(ctx, key, 0, before); err != nil {
		t.Fatal(err)
	}

	// The prepare phase (meta ops) passes; chunk 1's data phase hits the
	// permanent write fault on its primary and the transaction aborts.
	errDisk := errors.New("injected: disk write refused")
	s.cluster.SetFaultInjector(cluster.NewFaultPlan(1, []cluster.FaultRule{
		{Node: cluster.NodeID(victim), Kind: cluster.FaultDiskWrite, Prob: 1, Fault: cluster.Fault{Err: errDisk}},
	}))
	after := bytes.Repeat([]byte("X"), 24)
	if _, err := s.WriteBlob(ctx, key, 0, after); !errors.Is(err, errDisk) {
		t.Fatalf("overwrite with a faulted chunk primary: err = %v, want the injected fault", err)
	}
	s.cluster.SetFaultInjector(nil)
	// Replica writes that hit the faulted node degraded instead of failing;
	// drain any debt they recorded so the invariant check below is strict.
	s.Repair(ctx)

	// The abort must be durable on the live participants.
	aborts := 0
	for i := 0; i < 8; i++ {
		recs, err := s.LogRecords(cluster.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if r.Type == wal.RecAbort {
				aborts++
			}
		}
	}
	if aborts == 0 {
		t.Fatal("failed multi-chunk write logged no RecAbort records")
	}

	// Live replicas must be untouched by the aborted transaction (the
	// data phase defers memory materialization to the commit), so a
	// single recovered node agrees with its live peers.
	live := make([]byte, len(before))
	if n, err := s.ReadBlob(ctx, key, 0, live); err != nil || n != len(before) || !bytes.Equal(live, before) {
		t.Fatalf("aborted write visible on live replicas: (%d, %v) %q", n, err, live)
	}
	someOwner := s.chunkOwners(chunkID{key, 0})[0]
	s.Crash(cluster.NodeID(someOwner))
	if err := s.Recover(cluster.NodeID(someOwner)); err != nil {
		t.Fatal(err)
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("recovered node diverges from live peers after abort: %s", msg)
	}

	// Total power loss: every node rebuilds from its WAL alone. The
	// half-committed transaction must not survive.
	for i := 0; i < 8; i++ {
		s.Crash(cluster.NodeID(i))
	}
	for i := 0; i < 8; i++ {
		if err := s.Recover(cluster.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, len(before))
	if n, err := s.ReadBlob(ctx, key, 0, got); err != nil || n != len(before) {
		t.Fatalf("read after recovery: (%d, %v)", n, err)
	}
	if !bytes.Equal(got, before) {
		t.Fatalf("aborted write resurrected by replay:\n got %q\nwant %q", got, before)
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariants after abort recovery: %s", msg)
	}
}

// TestSingleChunkWriteDegradedOnReplicaDown: the single-chunk direct path
// with a down replica succeeds degraded — the live primary applies and logs
// the write plus a RecRepairNeeded debt record, the acknowledged bytes
// survive a primary crash, reads never observe the stale rejoined replica,
// and repair converges the set byte-identical.
func TestSingleChunkWriteDegradedOnReplicaDown(t *testing.T) {
	s := mkStore(6, Config{ChunkSize: 64, Replication: 2}, false)
	ctx := storage.NewContext()
	if err := s.CreateBlob(ctx, "single"); err != nil {
		t.Fatal(err)
	}
	before := []byte("stable-committed-content")
	if _, err := s.WriteBlob(ctx, "single", 0, before); err != nil {
		t.Fatal(err)
	}
	owners := s.chunkOwners(chunkID{"single", 0})
	s.SetDown(cluster.NodeID(owners[1]), true)
	after := bytes.Repeat([]byte("Y"), len(before))
	if _, err := s.WriteBlob(ctx, "single", 0, after); err != nil {
		t.Fatalf("single-chunk degraded write: err = %v", err)
	}
	// The debt record is durable on the primary: both the write and the
	// RecRepairNeeded mask survive its crash.
	s.Crash(cluster.NodeID(owners[0]))
	if err := s.Recover(cluster.NodeID(owners[0])); err != nil {
		t.Fatal(err)
	}
	if s.RepairPending() == 0 {
		t.Fatal("repair debt did not survive the primary's crash")
	}
	got := make([]byte, len(before))
	if n, err := s.ReadBlob(ctx, "single", 0, got); err != nil || n != len(before) {
		t.Fatalf("read after recovery: (%d, %v)", n, err)
	}
	if !bytes.Equal(got, after) {
		t.Fatalf("acknowledged degraded write lost: %q", got)
	}
	// Rejoin: the stale replica must not serve before repair, and repair
	// must leave the set byte-identical.
	s.SetDown(cluster.NodeID(owners[1]), false)
	if n := s.RepairPending(); n != 0 {
		t.Fatalf("repair debt outstanding after rejoin: %d", n)
	}
	id := chunkID{"single", 0}
	h := id.ringHash()
	a, av, _ := s.servers[owners[0]].copyChunk(h, id)
	b, bv, _ := s.servers[owners[1]].copyChunk(h, id)
	if !bytes.Equal(a, b) || av != bv {
		t.Fatalf("replicas diverge after repair: v%d vs v%d", av, bv)
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("replica divergence after degraded single-chunk write: %s", msg)
	}
}

// TestCrashMidTransactionDropsPrepares covers the torn-transaction variant
// of atomicity: prepares logged, commit never written (crash between the
// phases, simulated by truncating the log back to before the commit
// records). Replay must drop the pending prepares.
func TestCrashMidTransactionDropsPrepares(t *testing.T) {
	s := mkStore(3, Config{ChunkSize: 8, Replication: 1}, false)
	ctx := storage.NewContext()
	if err := s.CreateBlob(ctx, "torn"); err != nil {
		t.Fatal(err)
	}
	first := []byte("0123456789abcdef01234567") // 3 chunks
	if _, err := s.WriteBlob(ctx, "torn", 0, first); err != nil {
		t.Fatal(err)
	}
	// Record the chunk-0 lane length on its primary, run a second
	// multi-chunk write, then rewind that lane to just after chunk 0's
	// prepare: everything logically after it — the commit records on this
	// lane AND every later record on the other lanes, via the merged
	// order-key prefix — is torn away, exactly a crash between the phases.
	owners := s.chunkOwners(chunkID{"torn", 0})
	sv := s.servers[owners[0]]
	h0 := chunkID{"torn", 0}.ringHash()
	lbuf := sv.wal.LaneBuffer(sv.chunkLane(h0))
	preLen := lbuf.Len()
	second := bytes.Repeat([]byte("Z"), 24)
	if _, err := s.WriteBlob(ctx, "torn", 0, second); err != nil {
		t.Fatal(err)
	}
	recs, err := s.LogRecords(cluster.NodeID(owners[0]))
	if err != nil {
		t.Fatal(err)
	}
	var hasPrep bool
	for _, r := range recs {
		if r.Type == wal.RecPrepWrite {
			hasPrep = true
		}
	}
	if !hasPrep {
		t.Fatal("multi-chunk write logged no prepares")
	}
	// Find the cut point on the lane: walk its records counting framed
	// bytes (8-byte preamble + 9-byte header + payload) and cut right
	// after chunk 0's post-baseline RecPrepWrite.
	cut, off := -1, 0
	if err := wal.Replay(lbuf.Reader(), func(r wal.Record) error {
		off += 8 + 9 + len(r.Payload)
		if cut < 0 && off > preLen && r.Type == wal.RecPrepWrite {
			if id, _, _, _, derr := decChunkPayload(r.Payload); derr == nil && id == (chunkID{"torn", 0}) {
				cut = off
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if cut < 0 {
		t.Fatal("no post-baseline prepare found on the chunk-0 lane")
	}
	lbuf.Truncate(cut)
	s.Crash(cluster.NodeID(owners[0]))
	if err := s.Recover(cluster.NodeID(owners[0])); err != nil {
		t.Fatal(err)
	}
	// The recovered node must serve chunk 0's committed (first-write)
	// bytes, not the torn transaction's.
	got := make([]byte, 8)
	if _, err := s.ReadBlob(ctx, "torn", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, first[:8]) {
		t.Fatalf("torn transaction replayed: got %q, want %q", got, first[:8])
	}
}

// TestStalePrepareNotResurrectedByLaterCommit: a dangling RecPrepWrite
// left by a torn transaction must not be applied by a later, unrelated
// transaction's commit to the same chunk — replay keeps only the latest
// pending prepare per chunk.
func TestStalePrepareNotResurrectedByLaterCommit(t *testing.T) {
	s := mkStore(3, Config{ChunkSize: 8, Replication: 1}, false)
	ctx := storage.NewContext()
	if err := s.CreateBlob(ctx, "stale"); err != nil {
		t.Fatal(err)
	}
	base := []byte("0123456789abcdef01234567") // 3 chunks
	if _, err := s.WriteBlob(ctx, "stale", 0, base); err != nil {
		t.Fatal(err)
	}
	owner := s.chunkOwners(chunkID{"stale", 0})[0]
	sv := s.servers[owner]
	h0 := chunkID{"stale", 0}.ringHash()
	lbuf := sv.wal.LaneBuffer(sv.chunkLane(h0))
	preLen := lbuf.Len()
	// Second multi-chunk write; then tear chunk 0's lane on its owner
	// right after the prepare, leaving a dangling RecPrepWrite("ZZZZ...").
	if _, err := s.WriteBlob(ctx, "stale", 0, bytes.Repeat([]byte("Z"), 24)); err != nil {
		t.Fatal(err)
	}
	cut, off := -1, 0
	if err := wal.Replay(lbuf.Reader(), func(r wal.Record) error {
		off += 8 + 9 + len(r.Payload)
		if cut < 0 && off > preLen && r.Type == wal.RecPrepWrite {
			if id, _, _, _, derr := decChunkPayload(r.Payload); derr == nil && id == (chunkID{"stale", 0}) {
				cut = off
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if cut < 0 {
		t.Fatal("no prepare found after the baseline on the chunk-0 lane")
	}
	lbuf.Truncate(cut)
	s.Crash(cluster.NodeID(owner))
	if err := s.Recover(cluster.NodeID(owner)); err != nil {
		t.Fatal(err)
	}

	// A later multi-chunk transaction commits 4 bytes into chunk 0. Its
	// commit must apply its own prepare only, not the stale one still
	// sitting in the durable log.
	if _, err := s.WriteBlob(ctx, "stale", 4, []byte("yyyyzzzz")); err != nil { // chunks 0 and 1
		t.Fatal(err)
	}
	s.Crash(cluster.NodeID(owner))
	if err := s.Recover(cluster.NodeID(owner)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if _, err := s.ReadBlob(ctx, "stale", 0, got); err != nil {
		t.Fatal(err)
	}
	if want := []byte("0123yyyy"); !bytes.Equal(got, want) {
		t.Fatalf("stale prepare resurrected: chunk 0 = %q, want %q", got, want)
	}
}

// TestTruncateNoopLeavesStateUntouched is the regression test for the
// no-op truncate fix: truncating to the current size must charge the
// metadata lookup but change nothing — no version bump, no WAL append, no
// descriptor replication.
func TestTruncateNoopLeavesStateUntouched(t *testing.T) {
	s := mkStore(4, Config{ChunkSize: 16, Replication: 2}, false)
	ctx := storage.NewContext()
	if err := s.CreateBlob(ctx, "noop"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteBlob(ctx, "noop", 0, make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	_, d, err := s.primaryDesc("noop")
	if err != nil {
		t.Fatal(err)
	}
	verBefore := d.version
	logBefore := make([]int64, 4)
	for i := range logBefore {
		logBefore[i] = s.servers[i].wal.Size()
	}
	clockBefore := ctx.Clock.Now()

	if err := s.TruncateBlob(ctx, "noop", 40); err != nil {
		t.Fatal(err)
	}
	if ctx.Clock.Now() <= clockBefore {
		t.Fatal("no-op truncate did not charge the metadata lookup")
	}
	if d.version != verBefore {
		t.Fatalf("no-op truncate bumped version %d -> %d", verBefore, d.version)
	}
	for i := range logBefore {
		if got := s.servers[i].wal.Size(); got != logBefore[i] {
			t.Fatalf("no-op truncate appended to node %d's WAL (%d -> %d)", i, logBefore[i], got)
		}
	}

	// A size-changing truncate still versions and logs.
	if err := s.TruncateBlob(ctx, "noop", 48); err != nil {
		t.Fatal(err)
	}
	if d.version != verBefore+1 {
		t.Fatalf("grow truncate version = %d, want %d", d.version, verBefore+1)
	}
	if size, _ := s.BlobSize(ctx, "noop"); size != 48 {
		t.Fatalf("grow truncate size = %d", size)
	}
}

// TestErrorPathsJoinFanAndCharge is the fan-leak regression test: an
// operation that fails mid-fan must still join its fan — advancing the
// caller's clock by the work that did complete — and leave the pooled
// dispatcher state consistent for the next operation.
func TestErrorPathsJoinFanAndCharge(t *testing.T) {
	s := mkStore(4, Config{ChunkSize: 8, Replication: 1}, false)
	ctx := storage.NewContext()
	if err := s.CreateBlob(ctx, "leak"); err != nil {
		t.Fatal(err)
	}
	content := []byte("abcdefgh-second-:third--") // chunks 0,1,2
	if _, err := s.WriteBlob(ctx, "leak", 0, content); err != nil {
		t.Fatal(err)
	}

	// Down chunk 1's only replica: reads of chunk 0 succeed, chunk 1 fails.
	victim := s.chunkOwners(chunkID{"leak", 1})[0]
	s.SetDown(cluster.NodeID(victim), true)
	before := ctx.Clock.Now()
	got := make([]byte, 24)
	n, err := s.ReadBlob(ctx, "leak", 0, got)
	if !errors.Is(err, storage.ErrUnavailable) {
		t.Fatalf("read with chunk 1 down: err = %v", err)
	}
	if n != 8 {
		t.Fatalf("partial read returned n = %d, want 8 (the chunks before the failure)", n)
	}
	if !bytes.Equal(got[:8], content[:8]) {
		t.Fatalf("prefix bytes corrupt: %q", got[:8])
	}
	if ctx.Clock.Now() <= before {
		t.Fatal("failed read charged no virtual time: completed chunk work was lost")
	}

	// A failing multi-chunk write (prepare phase: chunk 1's ONLY replica is
	// down, so not even degraded mode can place it) must also charge and
	// leave the pools reusable.
	before = ctx.Clock.Now()
	if _, err := s.WriteBlob(ctx, "leak", 0, content); !errors.Is(err, storage.ErrUnavailable) {
		t.Fatalf("write with chunk primary down: err = %v", err)
	}
	if ctx.Clock.Now() <= before {
		t.Fatal("failed write charged no virtual time")
	}

	// Recover and verify the store still works and the dispatcher pools
	// were not corrupted by the error exits.
	s.SetDown(cluster.NodeID(victim), false)
	for i := 0; i < 50; i++ {
		if _, err := s.WriteBlob(ctx, "leak", 0, content); err != nil {
			t.Fatal(err)
		}
		rd := make([]byte, 24)
		if n, err := s.ReadBlob(ctx, "leak", 0, rd); err != nil || n != 24 || !bytes.Equal(rd, content) {
			t.Fatalf("post-error op %d: (%d, %v)", i, n, err)
		}
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
}

// TestRebalanceDeterministicWithDispatcher extends the determinism pin to
// the membership-change scatter-gather.
func TestRebalanceDeterministicWithDispatcher(t *testing.T) {
	run := func(inline bool) int64 {
		c := cluster.New(cluster.Config{Nodes: 6, Seed: 11})
		s := NewOnNodes(c, Config{ChunkSize: 32, Replication: 2, InlineFanout: inline},
			[]cluster.NodeID{0, 1, 2, 3})
		ctx := storage.NewContext()
		buf := make([]byte, 300)
		for i := range buf {
			buf[i] = byte(i)
		}
		for i := 0; i < 12; i++ {
			key := fmt.Sprintf("mig-%02d", i)
			if err := s.CreateBlob(ctx, key); err != nil {
				t.Fatal(err)
			}
			if _, err := s.WriteBlob(ctx, key, 0, buf); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.AddServer(ctx, 4); err != nil {
			t.Fatal(err)
		}
		if err := s.RemoveServer(ctx, 0); err != nil {
			t.Fatal(err)
		}
		if msg := s.CheckInvariants(); msg != "" {
			t.Fatalf("invariants after churn: %s", msg)
		}
		return int64(ctx.Clock.Now())
	}
	if seq, par := run(true), run(false); seq != par {
		t.Fatalf("rebalance virtual time diverges: sequential %d, dispatcher %d", seq, par)
	}
}
