package blob

import (
	"fmt"
	"sort"

	"repro/internal/storage"
	"repro/internal/wal"
)

// Txn is a Týr-style lightweight transaction spanning one or more blobs
// ("Týr: blob storage meets built-in transactions", the paper's reference
// [14]). Reads record the version they observed; writes are buffered.
// Commit acquires every touched blob's latch in deterministic order,
// validates the recorded read versions (optimistic concurrency — a
// concurrent committed writer causes ErrTxnConflict), applies all writes,
// and releases. Readers outside the transaction see all of its writes or
// none of them.
type Txn struct {
	s     *Store
	ctx   *storage.Context
	reads map[string]uint64 // key -> version observed
	// writes are buffered in arrival order; later writes win, as with
	// direct WriteBlob calls.
	writes []txnWrite
	done   bool
}

type txnWrite struct {
	key  string
	off  int64
	data []byte
}

// Begin starts a transaction on behalf of ctx.
func (s *Store) Begin(ctx *storage.Context) *Txn {
	return &Txn{s: s, ctx: ctx, reads: make(map[string]uint64)}
}

// Read reads from a blob inside the transaction, recording the blob's
// version for commit-time validation. Buffered writes of this transaction
// are NOT visible to its own reads (Týr transactions are write-buffered;
// the traced applications never read their own uncommitted data).
func (t *Txn) Read(key string, off int64, p []byte) (int, error) {
	if t.done {
		return 0, fmt.Errorf("txn: %w", storage.ErrClosed)
	}
	_, d, err := t.s.primaryDesc(key)
	if err != nil {
		return 0, err
	}
	d.latch.RLock()
	version := d.version
	d.latch.RUnlock()
	if prev, ok := t.reads[key]; ok && prev != version {
		// The blob moved under us between our own reads: doomed to
		// conflict; fail fast.
		return 0, fmt.Errorf("txn read %q: %w", key, storage.ErrTxnConflict)
	}
	t.reads[key] = version
	return t.s.ReadBlob(t.ctx, key, off, p)
}

// Write buffers a write to be applied atomically at commit.
func (t *Txn) Write(key string, off int64, p []byte) error {
	if t.done {
		return fmt.Errorf("txn: %w", storage.ErrClosed)
	}
	if off < 0 {
		return fmt.Errorf("txn write %q at %d: %w", key, off, storage.ErrInvalidArg)
	}
	t.writes = append(t.writes, txnWrite{key: key, off: off, data: append([]byte(nil), p...)})
	return nil
}

// Abort discards the transaction.
func (t *Txn) Abort() {
	t.done = true
	t.writes = nil
	t.reads = nil
}

// Commit runs the two-phase protocol: latch every participant blob in
// sorted-key order (deadlock freedom), validate read versions, apply every
// buffered write, bump versions, log commit records, release. On conflict
// the transaction is aborted and ErrTxnConflict returned.
func (t *Txn) Commit() error {
	if t.done {
		return fmt.Errorf("txn: %w", storage.ErrClosed)
	}
	t.done = true
	if len(t.writes) == 0 && len(t.reads) == 0 {
		return nil
	}
	// Member gate: placement resolved at latch time must hold until the
	// commit records land. Writes go through writeLocked (not WriteBlob),
	// so this is the only gate acquisition on the commit path.
	t.s.member.RLock()
	defer t.s.member.RUnlock()

	// Participant set: every blob read or written.
	keySet := make(map[string]bool, len(t.writes)+len(t.reads))
	for _, w := range t.writes {
		keySet[w.key] = true
	}
	for key := range t.reads {
		keySet[key] = true
	}
	keys := make([]string, 0, len(keySet))
	for key := range keySet {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	// Resolve and latch in order.
	type participant struct {
		key     string
		primary *server
		desc    *descriptor
	}
	parts := make([]participant, 0, len(keys))
	unlock := func() {
		for i := len(parts) - 1; i >= 0; i-- {
			parts[i].desc.latch.Unlock()
		}
	}
	for _, key := range keys {
		primary, d, err := t.s.primaryDesc(key)
		if err != nil {
			unlock()
			return fmt.Errorf("txn commit: %w", err)
		}
		if primary.isDown() {
			unlock()
			return fmt.Errorf("txn commit %q: primary down: %w", key, storage.ErrUnavailable)
		}
		d.latch.Lock()
		parts = append(parts, participant{key, primary, d})
		// Prepare round trip to each participant's descriptor primary.
		t.s.cluster.MetaOp(t.ctx.Clock, primary.node, 1)
	}

	// Validation phase: every recorded read version must be current.
	for _, p := range parts {
		if want, ok := t.reads[p.key]; ok && p.desc.version != want {
			unlock()
			return fmt.Errorf("txn commit %q: version %d != read %d: %w",
				p.key, p.desc.version, want, storage.ErrTxnConflict)
		}
	}

	// Apply phase.
	byKey := make(map[string]participant, len(parts))
	for _, p := range parts {
		byKey[p.key] = p
	}
	for _, w := range t.writes {
		p := byKey[w.key]
		if _, err := t.s.writeLocked(t.ctx, w.key, p.primary, p.desc, w.off, w.data); err != nil {
			// A mid-apply failure leaves earlier writes in place; real Týr
			// uses chunk-version shadowing to roll back. We surface the
			// error; the invariant checker still holds (replicas agree).
			unlock()
			return fmt.Errorf("txn apply %q: %w", w.key, err)
		}
	}

	// Commit records on every participant, batched per server so a
	// k-participant commit staged on one primary logs with one append.
	batch := newWalBatch(t.s)
	for _, p := range parts {
		batch.addMeta(p.primary, wal.RecCommit, p.key, 0)
		t.s.cluster.MetaOp(t.ctx.Clock, p.primary.node, 1)
	}
	batch.flush(t.ctx)
	unlock()
	return nil
}
