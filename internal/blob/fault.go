package blob

import (
	"fmt"
	"time"

	"repro/internal/cluster"
)

// faultCheck consults the cluster's fault injector (cluster.SetFaultInjector)
// before an operation of the given kind runs against node. With no injector
// installed it is a single atomic load.
//
// Policy: injected latency is charged to the caller's ledger as local
// compute (virtual time — no wall-clock sleeping). Transient errors are
// retried up to faultRetries times with exponential virtual-clock backoff;
// a retry that keeps failing, or any non-transient error, is returned
// wrapped and the caller decides whether that degrades the operation
// (replica write), promotes (primary write), or falls through to another
// replica (read).
const (
	faultRetries = 3
	faultBackoff = 100 * time.Microsecond
)

func (s *Store) faultCheck(cg *charge, node cluster.NodeID, kind cluster.FaultKind) error {
	for attempt := 0; ; attempt++ {
		f, ok := s.cluster.FaultFor(node, kind)
		if !ok {
			return nil
		}
		if f.Slow > 0 {
			cg.localCompute(f.Slow)
		}
		if f.Err == nil {
			return nil
		}
		if !f.Transient || attempt+1 >= faultRetries {
			return fmt.Errorf("node %d %s: %w", node, kind, f.Err)
		}
		s.metrics.Counter("blob.fault.retry").Inc()
		cg.localCompute(faultBackoff << uint(attempt))
	}
}
