package blob

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/wal"
)

// RenameBlob moves a blob to a new key server-side, implementing the
// storage.BlobRenamer extension. The client never sees the bytes: each
// source chunk is snapshotted from its freshest live replica and re-written
// under the target key through writeLocked — the same direct-commit path
// ordinary writes take, so WAL durability, replication, degraded-write debt
// and virtual-time charging all apply unchanged — then the source is
// deleted. Holes are preserved: absent source chunks are skipped rather
// than materialized, and the target size is set explicitly at the end.
//
// The target key must not exist (storage.ErrExists otherwise), matching
// the blobfs adapter's rename contract. Both descriptor latches are held
// for the duration, acquired in sorted key order — the txn.go multi-latch
// discipline — so the rename is atomic against concurrent writers and a
// reader never observes a half-copied target.
func (s *Store) RenameBlob(ctx *storage.Context, oldKey, newKey string) error {
	if newKey == "" || strings.ContainsRune(newKey, '\x00') {
		return fmt.Errorf("blob key %q: %w", newKey, storage.ErrInvalidArg)
	}
	s.member.RLock()
	defer s.member.RUnlock()
	if oldKey == newKey {
		_, _, err := s.primaryDesc(oldKey)
		return err
	}
	oldPrimary, oldD, err := s.primaryDesc(oldKey)
	if err != nil {
		return err
	}
	if oldPrimary.isDown() {
		return fmt.Errorf("blob %q: primary down: %w", oldKey, storage.ErrUnavailable)
	}
	// Register the target first (no latch is needed to create), then latch
	// both descriptors in key order so a concurrent txn.Commit or reverse
	// rename cannot deadlock against this one. The ungated createBlob: this
	// op already holds the member gate, and RLock does not nest.
	if err := s.createBlob(ctx, newKey); err != nil {
		return err
	}
	newPrimary, newD, err := s.primaryDesc(newKey)
	if err != nil {
		return err
	}
	first, second := oldD, newD
	if newKey < oldKey {
		first, second = newD, oldD
	}
	first.latch.Lock()
	defer first.latch.Unlock()
	second.latch.Lock()
	defer second.latch.Unlock()

	// A concurrent delete may have won the race before the latches landed;
	// re-validate the source under its latch.
	oldPrimary.mu.RLock()
	_, live := oldPrimary.blobs[oldKey]
	oldPrimary.mu.RUnlock()
	if !live {
		_ = s.deleteLocked(ctx, newKey, newPrimary, newD)
		return fmt.Errorf("blob %q: %w", oldKey, storage.ErrNotFound)
	}

	fail := func(err error) error {
		// Best-effort rollback: a failed rename leaves only the source.
		_ = s.deleteLocked(ctx, newKey, newPrimary, newD)
		return err
	}

	size := oldD.size
	cs := int64(s.cfg.ChunkSize)
	nChunks := (size + cs - 1) / cs
	// Snapshot every source chunk in parallel across the worker pool — the
	// same scatter-gather ReadBlob rides — so the rename's read side costs
	// the slowest chunk in virtual time, not the sum. Each task writes only
	// its own slot, so the collection needs no lock.
	snaps := make([][]byte, nChunks)
	oks := make([]bool, nChunks)
	fan := s.newFan()
	if nChunks == 1 {
		fan.inline = true
	}
	for idx := int64(0); idx < nChunks; idx++ {
		idx := idx
		t := fan.task(taskFunc)
		t.fn = func(cg *charge) error {
			data, ok, err := s.snapshotChunk(cg, chunkID{oldKey, idx})
			snaps[idx], oks[idx] = data, ok
			return err
		}
		fan.spawn(t)
	}
	if _, err := fan.join(ctx); err != nil {
		return fail(err)
	}
	// Contiguous full chunks coalesce into one parallel-fan write per run
	// rather than per-chunk commits, which would pay the fixed RPC/WAL
	// overhead nChunks times over and lose to the client-side copy loop
	// they replace (the CheckFrontends gate caught exactly that). The run
	// commits direct (RecWrite, no 2PC prepare/commit rounds): the target
	// is freshly created and doubly latched, so no observer exists to
	// need transactional isolation — see writeLockedRec. A hole, a short
	// chunk, or the run cap flushes.
	const maxRunChunks = 64
	var run []byte
	var runStart int64
	flush := func() error {
		if len(run) == 0 {
			return nil
		}
		_, err := s.writeLockedRec(ctx, newKey, newPrimary, newD, runStart*cs, run, true)
		run = nil
		return err
	}
	for idx := int64(0); idx < nChunks; idx++ {
		data := snaps[idx]
		if !oks[idx] || len(data) == 0 {
			if err := flush(); err != nil {
				return fail(err)
			}
			continue // hole: nothing stored, nothing written
		}
		if len(run) == 0 {
			runStart = idx
		}
		run = append(run, data...)
		if int64(len(data)) < cs || int64(len(run)) >= maxRunChunks*cs {
			if err := flush(); err != nil {
				return fail(err)
			}
		}
	}
	if err := flush(); err != nil {
		return fail(err)
	}
	// Sparse tails (and wholly-empty blobs) leave the copied size short of
	// the logical size; install it explicitly with the same descriptor
	// protocol writeLocked uses for size extension.
	if newD.size != size {
		newD.version++
		newD.size = size
		s.cluster.MetaOp(ctx.Clock, newPrimary.node, 1)
		mcg := s.directCharge(ctx)
		s.walAppendMeta(&mcg, newPrimary, wal.RecMeta, newKey, size)
		s.replicateDescSize(ctx, newKey, newD, size)
	}
	return s.deleteLocked(ctx, oldKey, oldPrimary, oldD)
}

// snapshotChunk reads one chunk's stored bytes for the rename copy,
// following readChunk's replica-selection rules exactly (first live owner
// on the healthy fast path; freshest non-stale live owner while repair debt
// is outstanding anywhere). Unlike readChunk it returns the bytes the
// replica actually holds — no zero-fill to the logical chunk span — with
// ok=false for a chunk no replica stores, so sparse holes survive the copy.
func (s *Store) snapshotChunk(cg *charge, id chunkID) ([]byte, bool, error) {
	h := id.ringHash()
	owners := s.ownersForHash(h)
	// Migration forces the checked path for the same reason it does in
	// readChunk: a gained owner awaiting its copy must not serve the
	// snapshot empty or stale.
	if s.repairPending.Load() != 0 || s.migrating.Load() != 0 {
		var stale uint64
		for _, o := range owners {
			st := s.servers[o].stripe(h)
			st.mu.RLock()
			stale |= st.debt[id]
			st.mu.RUnlock()
		}
		var maxVer uint64
		found := false
		for _, o := range owners {
			sv := s.servers[o]
			if sv.isDown() || (o < 64 && stale&(1<<uint(o)) != 0) {
				continue
			}
			if v := sv.chunkVer(h, id); !found || v > maxVer {
				maxVer = v
				found = true
			}
		}
		if found {
			for _, o := range owners {
				sv := s.servers[o]
				if sv.isDown() || (o < 64 && stale&(1<<uint(o)) != 0) || sv.chunkVer(h, id) != maxVer {
					continue
				}
				if s.faultCheck(cg, sv.node, cluster.FaultDiskRead) != nil {
					continue
				}
				return s.snapshotReplica(cg, sv, h, id)
			}
		}
		return nil, false, fmt.Errorf("chunk %d of %q: no fresh live replica: %w", id.idx, id.key, storage.ErrUnavailable)
	}
	for _, o := range owners {
		sv := s.servers[o]
		if sv.isDown() {
			continue
		}
		if s.faultCheck(cg, sv.node, cluster.FaultDiskRead) != nil {
			continue
		}
		return s.snapshotReplica(cg, sv, h, id)
	}
	return nil, false, fmt.Errorf("chunk %d of %q: all replicas down: %w", id.idx, id.key, storage.ErrUnavailable)
}

// snapshotReplica copies the chunk off one replica, charging only the
// source-side disk read — the repair/rebalance accounting for server-to-
// server movement. The data-bearing network hop is the write path's
// payload RPC to the target primary (writeLocked), so charging a response
// transfer here would bill the bytes for a trip through a client they
// never take. This is where the rename fast path beats the client-side
// copy loop it replaces: R+1 data transfers per chunk become R.
func (s *Store) snapshotReplica(cg *charge, sv *server, h uint64, id chunkID) ([]byte, bool, error) {
	data, _, ok := sv.copyChunk(h, id)
	cg.diskRead(sv.node, len(data))
	return data, ok, nil
}
