// recovery_equiv_test.go pins the parallel recovery pipeline against the
// single-threaded oracle (Config.SerialRecovery) and sweeps crash points
// exhaustively:
//
//   - TestCrashPointSweep runs a scripted multi-blob workload (2PC writes,
//     truncates, deletes, a checkpoint) and then crashes the cluster at
//     EVERY order-key boundary of the resulting logs — plus a torn-
//     mid-record variant of each — recovering every replica and checking
//     the parallel and serial paths land on byte-identical state. At every
//     boundary that corresponds to a completed operation it additionally
//     verifies the recovered blobs bit-for-bit against the workload's
//     recorded expected state and the cross-replica invariants.
//   - TestRecoveryEquivalenceRandomized drives randomized workloads
//     (random lane counts, op mixes, concurrent fan-out 2PC) and
//     randomized tears/corruption, then requires the two recovery paths
//     to agree on every node: same error class, same descriptors, same
//     chunk bytes, same repaired lane media.
//
// Both tests exploit that the two paths share the merge engine and differ
// only in decode staging — so any divergence is a real pipeline bug, not
// tolerated nondeterminism.
package blob

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/wal"
)

// captureLanes snapshots the raw bytes of every WAL lane of one server.
func captureLanes(sv *server) [][]byte {
	out := make([][]byte, sv.wal.Lanes())
	for lane := range out {
		var b bytes.Buffer
		b.ReadFrom(sv.wal.LaneBuffer(lane).Reader())
		out[lane] = b.Bytes()
	}
	return out
}

// restoreLanes rewrites a server's lane media to previously captured
// bytes. Log byte accounting is left stale on purpose: recovery re-derives
// it (SetSize) from the merged prefix, exactly as it would after a real
// crash left the medium and the in-memory counters out of sync.
func restoreLanes(sv *server, raw [][]byte) {
	for lane, b := range raw {
		lb := sv.wal.LaneBuffer(lane)
		lb.Reset()
		if len(b) > 0 {
			lb.Write(b)
		}
	}
}

// nodeState is one server's complete recovered footprint: descriptor
// sizes, chunk bytes, and the repaired lane media.
type nodeState struct {
	descs  map[string]int64
	chunks map[chunkID]string
	lanes  []string
}

func captureNode(sv *server) nodeState {
	st := nodeState{
		descs:  make(map[string]int64),
		chunks: make(map[chunkID]string),
	}
	sv.mu.RLock()
	for k, d := range sv.blobs {
		st.descs[k] = d.size
	}
	sv.mu.RUnlock()
	sv.forEachChunk(func(id chunkID, data []byte, _ uint64) {
		st.chunks[id] = string(data)
	})
	for _, raw := range captureLanes(sv) {
		st.lanes = append(st.lanes, string(raw))
	}
	return st
}

// compareRecoveryModes crashes and recovers one node twice from identical
// media — parallel pipeline first, then the serial oracle — and requires
// both outcomes to match exactly: error class, descriptors, chunk bytes,
// and repaired lane media. The node is left recovered (or down, if both
// paths report corruption).
func compareRecoveryModes(t *testing.T, s *Store, node int) {
	t.Helper()
	sv := s.servers[node]
	full := captureLanes(sv)

	s.cfg.SerialRecovery = false
	s.Crash(cluster.NodeID(node))
	errP := s.Recover(cluster.NodeID(node))
	var stP nodeState
	if errP == nil {
		stP = captureNode(sv)
	}

	restoreLanes(sv, full)
	s.cfg.SerialRecovery = true
	s.Crash(cluster.NodeID(node))
	errS := s.Recover(cluster.NodeID(node))
	s.cfg.SerialRecovery = false

	if (errP == nil) != (errS == nil) {
		t.Fatalf("node %d: recovery outcomes diverge: parallel %v, serial %v", node, errP, errS)
	}
	if errP != nil {
		if !errors.Is(errP, wal.ErrCorrupt) || !errors.Is(errS, wal.ErrCorrupt) {
			t.Fatalf("node %d: non-corruption recovery errors: parallel %v, serial %v", node, errP, errS)
		}
		return
	}
	stS := captureNode(sv)
	if !reflect.DeepEqual(stP.descs, stS.descs) {
		t.Fatalf("node %d: descriptors diverge between parallel and serial recovery:\nparallel %v\nserial   %v",
			node, stP.descs, stS.descs)
	}
	if !reflect.DeepEqual(stP.chunks, stS.chunks) {
		t.Fatalf("node %d: chunk tables diverge between parallel and serial recovery", node)
	}
	if !reflect.DeepEqual(stP.lanes, stS.lanes) {
		dump := func(raw string) []string {
			var out []string
			dec := wal.NewDecoder(bytes.NewReader([]byte(raw)))
			for {
				rec, _, done, err := dec.Next()
				if err != nil || done {
					if err != nil {
						out = append(out, fmt.Sprintf("ERR:%v", err))
					}
					return out
				}
				out = append(out, fmt.Sprintf("%v/lsn%d/%dB", rec.Type, rec.LSN, len(rec.Payload)))
			}
		}
		for i := range stP.lanes {
			if stP.lanes[i] != stS.lanes[i] {
				t.Logf("lane %d parallel: %v", i, dump(stP.lanes[i]))
				t.Logf("lane %d serial:   %v", i, dump(stS.lanes[i]))
			}
		}
		t.Fatalf("node %d: repaired lane media diverge between parallel and serial recovery", node)
	}
}

// ---- crash-point sweep ----

// sweeper drives a deterministic workload (InlineFanout, full replication)
// while recording, after every operation, the order-key boundary every
// server reached and a deep copy of the expected logical blob contents —
// the oracle the sweep checks recovered state against at op boundaries.
type sweeper struct {
	t    *testing.T
	s    *Store
	ctx  *storage.Context
	want map[string][]byte
	// boundaries maps an order key N (the same on every server, asserted)
	// to the expected blob contents after the op that ended at N.
	boundaries map[uint64]map[string][]byte
}

func newSweeper(t *testing.T, s *Store) *sweeper {
	return &sweeper{
		t:          t,
		s:          s,
		ctx:        storage.NewContext(),
		want:       make(map[string][]byte),
		boundaries: make(map[uint64]map[string][]byte),
	}
}

// lastKey returns the highest order key assigned on a server, asserting
// every server agrees (full replication + inline execution make the
// per-server logical histories identical).
func (w *sweeper) lastKey() uint64 {
	w.t.Helper()
	k := w.s.servers[0].wal.NextKey() - 1
	for n, sv := range w.s.servers {
		if got := sv.wal.NextKey() - 1; got != k {
			w.t.Fatalf("server %d at order key %d, server 0 at %d: workload is not fully replicated", n, got, k)
		}
	}
	return k
}

func (w *sweeper) mark() {
	w.t.Helper()
	snap := make(map[string][]byte, len(w.want))
	for k, v := range w.want {
		snap[k] = append([]byte(nil), v...)
	}
	w.boundaries[w.lastKey()] = snap
}

// pattern returns deterministic bytes distinguishable per (tag, length).
func pattern(tag, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(tag + i*13)
	}
	return p
}

func (w *sweeper) create(key string) {
	w.t.Helper()
	if err := w.s.CreateBlob(w.ctx, key); err != nil {
		w.t.Fatal(err)
	}
	w.want[key] = []byte{}
	w.mark()
}

func (w *sweeper) write(key string, off, n, tag int) {
	w.t.Helper()
	data := pattern(tag, n)
	if _, err := w.s.WriteBlob(w.ctx, key, int64(off), data); err != nil {
		w.t.Fatal(err)
	}
	cur := w.want[key]
	if need := off + n; len(cur) < need {
		grown := make([]byte, need)
		copy(grown, cur)
		cur = grown
	}
	copy(cur[off:], data)
	w.want[key] = cur
	w.mark()
}

func (w *sweeper) truncate(key string, size int) {
	w.t.Helper()
	if err := w.s.TruncateBlob(w.ctx, key, int64(size)); err != nil {
		w.t.Fatal(err)
	}
	cur := w.want[key]
	if size <= len(cur) {
		w.want[key] = cur[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, cur)
		w.want[key] = grown
	}
	w.mark()
}

func (w *sweeper) delete(key string) {
	w.t.Helper()
	if err := w.s.DeleteBlob(w.ctx, key); err != nil {
		w.t.Fatal(err)
	}
	delete(w.want, key)
	w.mark()
}

// checkpoint compacts every log and restarts the sweep oracle: order keys
// restart at 1, so boundaries recorded before the checkpoint no longer
// name positions in the new logs.
func (w *sweeper) checkpoint() {
	w.t.Helper()
	w.s.CheckpointAll()
	w.boundaries = make(map[uint64]map[string][]byte)
	w.mark()
}

// laneIndex maps one lane's records to their order keys and cumulative
// end offsets, so a crash point "everything with key <= N persisted" turns
// into per-lane truncation offsets.
type laneIndex struct {
	keys []uint64
	ends []int64
}

func indexLanes(t *testing.T, sv *server) []laneIndex {
	t.Helper()
	out := make([]laneIndex, sv.wal.Lanes())
	for lane := range out {
		dec := wal.NewDecoder(sv.wal.LaneBuffer(lane).Reader())
		var off int64
		for {
			rec, frame, done, err := dec.Next()
			if err != nil {
				t.Fatalf("lane %d: indexing decode: %v", lane, err)
			}
			if done {
				break
			}
			off += frame
			out[lane].keys = append(out[lane].keys, rec.LSN)
			out[lane].ends = append(out[lane].ends, off)
		}
	}
	return out
}

// applyCut truncates a server's lanes to the crash point "all records with
// key <= n persisted". With torn=true the record with key n+1 is
// additionally left as a torn fragment on its lane (cut 3 bytes short of
// its end), the mid-write crash shape; recovery must discard the fragment
// and still land on prefix n.
func applyCut(sv *server, idx []laneIndex, n uint64, torn bool) {
	for lane := range idx {
		cut := int64(0)
		for j, k := range idx[lane].keys {
			switch {
			case k <= n:
				cut = idx[lane].ends[j]
			case torn && k == n+1:
				cut = idx[lane].ends[j] - 3
			}
		}
		sv.wal.LaneBuffer(lane).Truncate(int(cut))
	}
}

// runCrashPointSweep crashes the whole cluster at every order-key boundary
// in [base, lastKey] — and at the torn-mid-record variant of each — then
// recovers every replica with the parallel pipeline, re-runs the identical
// crash with the serial oracle, and requires byte-identical outcomes. At
// op boundaries the recovered blobs are checked against the sweeper's
// recorded expected contents and the cross-replica invariants. The store
// is left fully recovered (all media restored) when the sweep returns.
//
// Sweeping key boundaries is exactly "a medium that crashes at every Nth
// write boundary": the workload runs inline (serial), so the medium state
// at the instant write N+1 begins is precisely "every record with key <= N
// persisted" — per-lane prefixes cut at those records — and the torn
// variant is the crash landing inside write N+1 itself. Group-commit
// batches are covered too: a cut between two records of one vectored
// batch append is the torn tail of that single medium write.
func runCrashPointSweep(t *testing.T, w *sweeper, base uint64, allKeys []string) {
	t.Helper()
	s := w.s
	last := w.lastKey()
	full := make([][][]byte, len(s.servers))
	idx := make([][]laneIndex, len(s.servers))
	for si, sv := range s.servers {
		full[si] = captureLanes(sv)
		idx[si] = indexLanes(t, sv)
	}
	restoreAll := func(n uint64, torn bool) {
		for si, sv := range s.servers {
			restoreLanes(sv, full[si])
			if n <= last {
				applyCut(sv, idx[si], n, torn)
			}
			s.Crash(cluster.NodeID(si))
		}
	}
	recoverAll := func(serial bool) {
		s.cfg.SerialRecovery = serial
		for si := range s.servers {
			if err := s.Recover(cluster.NodeID(si)); err != nil {
				t.Fatalf("recover node %d (serial=%v): %v", si, serial, err)
			}
		}
		s.cfg.SerialRecovery = false
	}
	for n := base; n <= last; n++ {
		for _, torn := range []bool{false, true} {
			if torn && n == last {
				continue // no record n+1 to tear
			}
			restoreAll(n, torn)
			recoverAll(false)
			parallel := make([]nodeState, len(s.servers))
			for si, sv := range s.servers {
				parallel[si] = captureNode(sv)
				recs, err := s.LogRecords(cluster.NodeID(si))
				if err != nil {
					t.Fatalf("crash point %d torn=%v: log records node %d: %v", n, torn, si, err)
				}
				if uint64(len(recs)) != n {
					t.Fatalf("crash point %d torn=%v: node %d recovered %d records, want exactly the prefix %d",
						n, torn, si, len(recs), n)
				}
			}

			// The identical crash through the serial oracle must produce the
			// identical bytes everywhere: state AND repaired media.
			restoreAll(n, torn)
			recoverAll(true)
			for si, sv := range s.servers {
				serial := captureNode(sv)
				if !reflect.DeepEqual(parallel[si], serial) {
					t.Fatalf("crash point %d torn=%v: node %d diverges between parallel and serial recovery\nparallel descs %v chunks %d lanes %d\nserial   descs %v chunks %d lanes %d",
						n, torn, si,
						parallel[si].descs, len(parallel[si].chunks), laneBytesTotal(parallel[si]),
						serial.descs, len(serial.chunks), laneBytesTotal(serial))
				}
			}

			// At op boundaries the recovered cluster must expose exactly the
			// recorded logical state, with cross-replica invariants intact.
			if want, ok := w.boundaries[n]; ok {
				if msg := s.CheckInvariants(); msg != "" {
					t.Fatalf("crash point %d torn=%v: invariants: %s", n, torn, msg)
				}
				for _, key := range allKeys {
					data, live := want[key]
					size, err := s.BlobSize(w.ctx, key)
					if !live {
						if err == nil {
							t.Fatalf("crash point %d: deleted/uncreated blob %q resurrected with size %d", n, key, size)
						}
						continue
					}
					if err != nil {
						t.Fatalf("crash point %d: blob %q lost: %v", n, key, err)
					}
					if size != int64(len(data)) {
						t.Fatalf("crash point %d: blob %q size %d, want %d", n, key, size, len(data))
					}
					if len(data) == 0 {
						continue
					}
					got := make([]byte, len(data))
					if _, err := s.ReadBlob(w.ctx, key, 0, got); err != nil {
						t.Fatalf("crash point %d: read %q: %v", n, key, err)
					}
					if !bytes.Equal(got, data) {
						t.Fatalf("crash point %d: blob %q content diverges from the op-boundary oracle", n, key)
					}
				}
			}
		}
	}
	// Leave the store at its full (uncrashed) state for the caller.
	restoreAll(last+1, false)
	recoverAll(false)
}

func laneBytesTotal(st nodeState) int {
	n := 0
	for _, l := range st.lanes {
		n += len(l)
	}
	return n
}

func TestCrashPointSweep(t *testing.T) {
	// Replication == nodes and inline fan-out: every server logs the same
	// logical history with the same order keys, so one cut specification
	// crashes every replica consistently and recovered replicas must
	// converge. 4 lanes (not 16) force heavy lane sharing, so the sweep
	// crosses many lane-interleaving shapes.
	s := New(cluster.New(cluster.Config{Nodes: 3, Seed: 71}),
		Config{ChunkSize: 64, Replication: 3, WALLanes: 4, InlineFanout: true})
	w := newSweeper(t, s)
	allKeys := []string{"b0", "b1", "b2", "b3", "b4"}

	// Phase A: mixed history, no checkpoint — every boundary from the
	// empty log up.
	w.create("b0")
	w.create("b1")
	w.create("b2")
	w.create("b3")
	w.write("b0", 0, 200, 1) // 4 chunks: full 2PC prepare/commit
	w.write("b1", 0, 40, 2)  // single chunk: direct commit
	w.write("b2", 0, 300, 3) // 5 chunks
	w.write("b0", 30, 50, 4) // straddles chunks 0-1: 2PC overwrite
	w.truncate("b2", 100)    // chunk drops + boundary trim
	w.write("b3", 0, 100, 5)
	w.delete("b3")
	w.write("b1", 40, 90, 6) // extends across chunks 0-2
	runCrashPointSweep(t, w, 0, allKeys)

	// Phase B: checkpoint, then more history — boundaries sweep the
	// compacted log from the snapshot edge onward (a crash before the
	// snapshot completes is out of scope: Checkpoint requires quiescence
	// and is not itself crash-atomic).
	w.checkpoint()
	base := w.lastKey()
	w.write("b0", 10, 120, 7)
	w.truncate("b0", 64)
	w.write("b2", 90, 30, 8)
	w.create("b4")
	w.write("b4", 0, 70, 9)
	w.delete("b1")
	runCrashPointSweep(t, w, base, allKeys)
}

// TestRecoveryEquivalenceRandomized: randomized lane counts, op mixes
// (concurrent fan-out 2PC included), tears at arbitrary byte offsets, and
// occasional corruption — parallel and serial recovery must agree on every
// node, byte for byte, error for error.
func TestRecoveryEquivalenceRandomized(t *testing.T) {
	rng := sim.NewRNG(2025)
	laneChoices := []int{1, 2, 3, 4, 16}
	keys := []string{"r0", "r1", "r2", "r3", "r4"}
	for iter := 0; iter < 25; iter++ {
		lanes := laneChoices[rng.Intn(len(laneChoices))]
		s := New(cluster.New(cluster.Config{Nodes: 4, Seed: uint64(iter + 1)}),
			Config{ChunkSize: 48, Replication: 2, WALLanes: lanes})
		ctx := storage.NewContext()
		live := make(map[string]bool)
		ops := 12 + rng.Intn(18)
		for i := 0; i < ops; i++ {
			key := keys[rng.Intn(len(keys))]
			switch rng.Intn(10) {
			case 0, 1:
				if !live[key] {
					if err := s.CreateBlob(ctx, key); err != nil {
						t.Fatal(err)
					}
					live[key] = true
				}
			case 2, 3, 4, 5, 6:
				if live[key] {
					data := make([]byte, 1+rng.Intn(200))
					rng.Fill(data)
					if _, err := s.WriteBlob(ctx, key, int64(rng.Intn(120)), data); err != nil {
						t.Fatal(err)
					}
				}
			case 7:
				if live[key] {
					if err := s.TruncateBlob(ctx, key, int64(rng.Intn(150))); err != nil {
						t.Fatal(err)
					}
				}
			case 8:
				if live[key] {
					if err := s.DeleteBlob(ctx, key); err != nil {
						t.Fatal(err)
					}
					live[key] = false
				}
			case 9:
				s.CheckpointAll()
			}
		}
		// Randomized crash damage, different on every server: torn lanes
		// at arbitrary byte offsets, sometimes a flipped byte.
		for _, sv := range s.servers {
			for j := rng.Intn(3); j > 0; j-- {
				lb := sv.wal.LaneBuffer(rng.Intn(lanes))
				if lb.Len() > 0 {
					lb.Truncate(rng.Intn(lb.Len() + 1))
				}
			}
			if rng.Intn(4) == 0 {
				lb := sv.wal.LaneBuffer(rng.Intn(lanes))
				if lb.Len() > 0 {
					if err := lb.Corrupt(rng.Intn(lb.Len())); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		for node := range s.servers {
			compareRecoveryModes(t, s, node)
		}
	}
}
