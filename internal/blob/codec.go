package blob

import (
	"encoding/binary"
	"fmt"
)

// WAL payload codecs. Every record carries enough to rebuild the server's
// state on replay:
//
//	meta   record: u16 keyLen | key | i64 size        (descriptor state)
//	chunk  record: u16 ckLen  | ck  | i64 within | data (chunk mutation)
//
// Chunk keys contain a NUL separator (chunkKey), descriptor keys cannot
// (CreateBlob rejects NUL), so replay can distinguish the two shapes of
// delete/truncate records by inspecting the key.

func encMeta(key string, size int64) []byte {
	out := make([]byte, 2+len(key)+8)
	binary.LittleEndian.PutUint16(out[0:2], uint16(len(key)))
	copy(out[2:], key)
	binary.LittleEndian.PutUint64(out[2+len(key):], uint64(size))
	return out
}

func decMeta(p []byte) (key string, size int64, err error) {
	if len(p) < 2 {
		return "", 0, fmt.Errorf("blob: meta record too short (%d bytes)", len(p))
	}
	kl := int(binary.LittleEndian.Uint16(p[0:2]))
	if len(p) < 2+kl+8 {
		return "", 0, fmt.Errorf("blob: meta record truncated (%d bytes, key %d)", len(p), kl)
	}
	key = string(p[2 : 2+kl])
	size = int64(binary.LittleEndian.Uint64(p[2+kl:]))
	return key, size, nil
}

func encChunk(ck string, within int64, data []byte) []byte {
	out := make([]byte, 2+len(ck)+8+len(data))
	binary.LittleEndian.PutUint16(out[0:2], uint16(len(ck)))
	copy(out[2:], ck)
	binary.LittleEndian.PutUint64(out[2+len(ck):], uint64(within))
	copy(out[2+len(ck)+8:], data)
	return out
}

func decChunk(p []byte) (ck string, within int64, data []byte, err error) {
	if len(p) < 2 {
		return "", 0, nil, fmt.Errorf("blob: chunk record too short (%d bytes)", len(p))
	}
	kl := int(binary.LittleEndian.Uint16(p[0:2]))
	if len(p) < 2+kl+8 {
		return "", 0, nil, fmt.Errorf("blob: chunk record truncated (%d bytes, key %d)", len(p), kl)
	}
	ck = string(p[2 : 2+kl])
	within = int64(binary.LittleEndian.Uint64(p[2+kl : 2+kl+8]))
	data = p[2+kl+8:]
	return ck, within, data, nil
}
