package blob

import (
	"encoding/binary"
	"fmt"
)

// WAL payload codecs. Every record carries enough to rebuild the server's
// state on replay:
//
//	meta  record: u16 keyLen | key | i64 size               (descriptor state)
//	chunk record: u16 keyLen | key | i64 idx | i64 within | u64 ver | data
//
// Meta and chunk payloads are distinguished by record type (RecCreate /
// RecDelete / RecTruncate / RecMeta carry meta payloads; RecWrite /
// RecPrepWrite / RecChunkDelete / RecChunkTruncate and the 2PC markers
// RecChunkCommit / RecAbort carry chunk payloads), so chunk addressing
// never round-trips through a combined string key. RecCommit remains the
// transaction-level marker with a meta payload; replay skips it, while
// RecChunkCommit / RecAbort drive the prepared-write buffer (recovery.go).
// All encoders are append-style into caller-provided buffers.
//
// A chunk record's payload is the addressing header (appendChunkHeader)
// followed by the raw chunk bytes. The hot path stages only the small
// header from a sync.Pool and hands header and data to the WAL as separate
// segments (wal.AppendV), so the data bytes are never staged — the log
// medium receives them straight from the caller's buffer.

func appendMetaPayload(dst []byte, key string, size int64) []byte {
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(key)))
	dst = append(dst, u16[:]...)
	dst = append(dst, key...)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(size))
	return append(dst, u64[:]...)
}

func decMeta(p []byte) (key string, size int64, err error) {
	if len(p) < 2 {
		return "", 0, fmt.Errorf("blob: meta record too short (%d bytes)", len(p))
	}
	kl := int(binary.LittleEndian.Uint16(p[0:2]))
	if len(p) < 2+kl+8 {
		return "", 0, fmt.Errorf("blob: meta record truncated (%d bytes, key %d)", len(p), kl)
	}
	key = string(p[2 : 2+kl])
	size = int64(binary.LittleEndian.Uint64(p[2+kl:]))
	return key, size, nil
}

// appendChunkHeader encodes the addressing header of a chunk record: the
// whole payload minus the chunk data, which the vectored WAL append carries
// as its own segment. ver is the replica-comparable chunk version installed
// by the mutation (RecRepairNeeded reuses the slot for its debt mask).
func appendChunkHeader(dst []byte, id chunkID, within int64, ver uint64) []byte {
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(id.key)))
	dst = append(dst, u16[:]...)
	dst = append(dst, id.key...)
	var u64 [24]byte
	binary.LittleEndian.PutUint64(u64[0:8], uint64(id.idx))
	binary.LittleEndian.PutUint64(u64[8:16], uint64(within))
	binary.LittleEndian.PutUint64(u64[16:24], ver)
	return append(dst, u64[:]...)
}

func decChunkPayload(p []byte) (id chunkID, within int64, ver uint64, data []byte, err error) {
	if len(p) < 2 {
		return chunkID{}, 0, 0, nil, fmt.Errorf("blob: chunk record too short (%d bytes)", len(p))
	}
	kl := int(binary.LittleEndian.Uint16(p[0:2]))
	if len(p) < 2+kl+24 {
		return chunkID{}, 0, 0, nil, fmt.Errorf("blob: chunk record truncated (%d bytes, key %d)", len(p), kl)
	}
	id.key = string(p[2 : 2+kl])
	id.idx = int64(binary.LittleEndian.Uint64(p[2+kl : 2+kl+8]))
	within = int64(binary.LittleEndian.Uint64(p[2+kl+8 : 2+kl+16]))
	ver = binary.LittleEndian.Uint64(p[2+kl+16 : 2+kl+24])
	data = p[2+kl+24:]
	return id, within, ver, data, nil
}

// Migration payload codecs (rebalance.go, recovery.go).
//
//	RecMigrateBegin: u64 seq | u8 op | i64 node            (the intent)
//	RecMigrateEnd:   u64 seq | u8 op | i64 node            (intent closed)
//	RecMigrateBatch: u8 phase | ...
//	  phase marker (prepare/commit): u8 phase | u64 seq | u64 batch
//	  phase chunk:                   u8 phase | chunk header | data
//	  phase delete:                  u8 phase | chunk header (no data)
//
// The phase byte leads the batch payload so replay can branch before
// touching the variable-length chunk addressing.

const (
	migOpAdd    = 0
	migOpRemove = 1

	migPhasePrepare = 0 // batch opened on a participant: drop buffered state
	migPhaseChunk   = 1 // one chunk copy, buffered until the commit marker
	migPhaseDelete  = 2 // one chunk drop, buffered until the commit marker
	migPhaseCommit  = 3 // materialize the buffered copies and deletes
)

func appendMigrateIntent(dst []byte, seq uint64, op uint8, node int64) []byte {
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], seq)
	dst = append(dst, u64[:]...)
	dst = append(dst, op)
	binary.LittleEndian.PutUint64(u64[:], uint64(node))
	return append(dst, u64[:]...)
}

func decMigrateIntent(p []byte) (seq uint64, op uint8, node int64, err error) {
	if len(p) < 17 {
		return 0, 0, 0, fmt.Errorf("blob: migrate intent record too short (%d bytes)", len(p))
	}
	seq = binary.LittleEndian.Uint64(p[0:8])
	op = p[8]
	node = int64(binary.LittleEndian.Uint64(p[9:17]))
	return seq, op, node, nil
}

// appendMigrateMark encodes a prepare or commit batch marker.
func appendMigrateMark(dst []byte, phase uint8, seq, batch uint64) []byte {
	dst = append(dst, phase)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], seq)
	dst = append(dst, u64[:]...)
	binary.LittleEndian.PutUint64(u64[:], batch)
	return append(dst, u64[:]...)
}

func decMigrateMark(p []byte) (seq, batch uint64, err error) {
	if len(p) < 17 {
		return 0, 0, fmt.Errorf("blob: migrate batch marker too short (%d bytes)", len(p))
	}
	return binary.LittleEndian.Uint64(p[1:9]), binary.LittleEndian.Uint64(p[9:17]), nil
}

// appendMigrateChunkHeader encodes the header of a buffered chunk copy or
// delete: the phase byte followed by the standard chunk addressing header,
// so the data segment still streams through the vectored WAL append.
func appendMigrateChunkHeader(dst []byte, phase uint8, id chunkID, ver uint64) []byte {
	dst = append(dst, phase)
	return appendChunkHeader(dst, id, 0, ver)
}
