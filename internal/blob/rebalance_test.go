package blob

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/storage"
)

// seedBlobs writes a spread of blobs and returns the expected contents.
func seedBlobs(t *testing.T, s *Store, ctx *storage.Context, n int) map[string][]byte {
	t.Helper()
	rng := sim.NewRNG(77)
	expect := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("data/blob-%03d", i)
		if err := s.CreateBlob(ctx, key); err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 100+i*13)
		rng.Fill(data)
		if _, err := s.WriteBlob(ctx, key, 0, data); err != nil {
			t.Fatal(err)
		}
		expect[key] = data
	}
	return expect
}

func verifyBlobs(t *testing.T, s *Store, ctx *storage.Context, expect map[string][]byte) {
	t.Helper()
	for key, want := range expect {
		got := make([]byte, len(want))
		n, err := s.ReadBlob(ctx, key, 0, got)
		if err != nil || n != len(want) || !bytes.Equal(got, want) {
			t.Fatalf("%s after rebalance: (%d, %v), match=%v", key, n, err, bytes.Equal(got, want))
		}
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
	// Scan still complete.
	infos, err := s.Scan(ctx, "data/")
	if err != nil || len(infos) != len(expect) {
		t.Fatalf("scan after rebalance: (%d, %v), want %d", len(infos), err, len(expect))
	}
}

func TestAddServerRebalances(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 6, Seed: 1})
	// Start on 4 of the 6 nodes.
	s := NewOnNodes(c, Config{ChunkSize: 64, Replication: 2},
		[]cluster.NodeID{0, 1, 2, 3})
	ctx := storage.NewContext()
	expect := seedBlobs(t, s, ctx, 40)

	if got := len(s.ServingNodes()); got != 4 {
		t.Fatalf("serving nodes = %d", got)
	}
	if err := s.AddServer(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if got := len(s.ServingNodes()); got != 5 {
		t.Fatalf("serving nodes after join = %d", got)
	}
	verifyBlobs(t, s, ctx, expect)

	// The new server must actually hold data (rebalancing happened).
	if s.DescriptorCount(4)+s.ChunkCount(4) == 0 {
		t.Fatal("joined server received no data")
	}
}

func TestAddServerValidation(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 3, Seed: 1})
	s := New(c, Config{Replication: 2})
	ctx := storage.NewContext()
	if err := s.AddServer(ctx, 1); !errors.Is(err, storage.ErrExists) {
		t.Fatalf("re-adding serving node: %v", err)
	}
	if err := s.AddServer(ctx, 99); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("adding unknown node: %v", err)
	}
}

func TestRemoveServerDrains(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 5, Seed: 2})
	s := New(c, Config{ChunkSize: 64, Replication: 2})
	ctx := storage.NewContext()
	expect := seedBlobs(t, s, ctx, 40)

	if err := s.RemoveServer(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if got := len(s.ServingNodes()); got != 4 {
		t.Fatalf("serving nodes after drain = %d", got)
	}
	if s.DescriptorCount(2)+s.ChunkCount(2) != 0 {
		t.Fatal("drained server still holds data")
	}
	verifyBlobs(t, s, ctx, expect)
}

func TestRemoveServerValidation(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2, Seed: 1})
	s := NewOnNodes(c, Config{Replication: 1}, []cluster.NodeID{0})
	ctx := storage.NewContext()
	if err := s.RemoveServer(ctx, 1); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("removing non-serving node: %v", err)
	}
	if err := s.RemoveServer(ctx, 0); !errors.Is(err, ErrLastServer) {
		t.Fatalf("removing last server: %v", err)
	}
	if err := s.RemoveServer(ctx, 7); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("removing unknown node: %v", err)
	}
}

// diff returns the elements of a absent from b.
func diff(a, b []int) []int {
	inB := make(map[int]bool, len(b))
	for _, x := range b {
		inB[x] = true
	}
	var out []int
	for _, x := range a {
		if !inB[x] {
			out = append(out, x)
		}
	}
	return out
}

// Consistent hashing promise: a join moves only data whose replica set
// changed — the bulk of placements stay put.
func TestJoinMovesMinority(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 9, Seed: 3})
	s := NewOnNodes(c, Config{ChunkSize: 1 << 20, Replication: 2},
		[]cluster.NodeID{0, 1, 2, 3, 4, 5, 6, 7})
	ctx := storage.NewContext()
	seedBlobs(t, s, ctx, 120)

	before := make(map[string][]int)
	for i := 0; i < 120; i++ {
		key := fmt.Sprintf("data/blob-%03d", i)
		before[key] = s.descOwners(key)
	}
	if err := s.AddServer(ctx, 8); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for key, old := range before {
		now := s.descOwners(key)
		if len(diff(now, old)) > 0 {
			moved++
		}
	}
	// Expect roughly 2/9 of descriptor placements to involve the new node;
	// far less than half must move.
	if moved > 60 {
		t.Fatalf("%d of 120 descriptor placements changed — not minimal movement", moved)
	}
	if moved == 0 {
		t.Fatal("join moved nothing — new server unused")
	}
}

func TestJoinThenDrainRoundTrip(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 6, Seed: 4})
	s := NewOnNodes(c, Config{ChunkSize: 64, Replication: 2},
		[]cluster.NodeID{0, 1, 2})
	ctx := storage.NewContext()
	expect := seedBlobs(t, s, ctx, 30)
	if err := s.AddServer(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.AddServer(ctx, 4); err != nil {
		t.Fatal(err)
	}
	verifyBlobs(t, s, ctx, expect)
	if err := s.RemoveServer(ctx, 0); err != nil {
		t.Fatal(err)
	}
	verifyBlobs(t, s, ctx, expect)
	// Mutations still work after churn.
	if _, err := s.WriteBlob(ctx, "data/blob-000", 0, []byte("post-churn")); err != nil {
		t.Fatal(err)
	}
	expect["data/blob-000"] = append([]byte("post-churn"), expect["data/blob-000"][10:]...)
	verifyBlobs(t, s, ctx, expect)
}

func TestAsyncReplicationCheaperButConsistent(t *testing.T) {
	run := func(async bool) (int64, *Store, *storage.Context) {
		c := cluster.New(cluster.Config{Nodes: 6, Seed: 5})
		s := New(c, Config{ChunkSize: 1 << 20, Replication: 3, AsyncReplication: async})
		ctx := storage.NewContext()
		if err := s.CreateBlob(ctx, "k"); err != nil {
			t.Fatal(err)
		}
		start := ctx.Clock.Now()
		if _, err := s.WriteBlob(ctx, "k", 0, make([]byte, 1<<20)); err != nil {
			t.Fatal(err)
		}
		return int64(ctx.Clock.Now() - start), s, ctx
	}
	syncCost, _, _ := run(false)
	asyncCost, s, ctx := run(true)
	if asyncCost >= syncCost {
		t.Fatalf("async write (%d) not cheaper than sync (%d)", asyncCost, syncCost)
	}
	// Replicas are still applied: all copies identical.
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("async replication broke invariants: %s", msg)
	}
	got := make([]byte, 1<<20)
	if n, err := s.ReadBlob(ctx, "k", 0, got); err != nil || n != 1<<20 {
		t.Fatalf("read after async write: (%d, %v)", n, err)
	}
}
