package blob

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Chaos battery: randomized, seeded fault schedules — down/up flaps,
// transient and slow injected faults, crashes with torn WAL lane tails —
// under a concurrent mixed workload of single-chunk writes, multi-chunk
// (2PC) writes, transactions, and verifying reads. The schedule is seeded
// but its interleaving is scheduler-dependent (see cluster.FaultPlan), so
// every assertion is schedule-independent:
//
//   - a read that succeeds returns exactly the worker's last acknowledged
//     content for that key — NEVER stale bytes from a rejoined replica;
//   - an acknowledged write survives everything the schedule throws at it
//     (the per-worker oracle is the never-failed reference);
//   - a failed write changes nothing (write atomicity, all paths);
//   - after heal + repair, debt is zero, replicas are byte-identical
//     (CheckInvariants strict mode), every key reads back oracle-equal;
//   - a full crash/recover cycle of every node reproduces that state from
//     the WALs alone, on both the parallel and serial recovery paths
//     (alternated by seed).
//
// Each worker owns a disjoint key, so its oracle needs no cross-worker
// ordering assumptions.
func TestChaosBattery(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 32
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%03d", seed), func(t *testing.T) {
			runChaosSchedule(t, uint64(seed))
		})
	}
}

var errChaosTransient = errors.New("chaos: injected transient fault")

// chaosFlaps coordinates concurrent down/up flapping so at most maxDown
// nodes are down at once (keeping MinLiveOwners satisfiable most of the
// time without making every op fail).
type chaosFlaps struct {
	mu   sync.Mutex
	s    *Store
	down map[int]bool
}

func (f *chaosFlaps) flap(node int, maxDown int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[node] {
		delete(f.down, node)
		f.s.SetDown(cluster.NodeID(node), false) // triggers the repair pass
		return
	}
	if len(f.down) >= maxDown {
		return
	}
	f.down[node] = true
	f.s.SetDown(cluster.NodeID(node), true)
}

func (f *chaosFlaps) healAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for node := range f.down {
		delete(f.down, node)
		f.s.SetDown(cluster.NodeID(node), false)
	}
}

func runChaosSchedule(t *testing.T, seed uint64) {
	const (
		nodes   = 5
		workers = 4
		bursts  = 3
		opsPer  = 16
		maxDown = 2
	)
	var traceMu sync.Mutex
	var trace []string
	chaosTrace = func(format string, args ...any) {
		traceMu.Lock()
		trace = append(trace, fmt.Sprintf(format, args...))
		traceMu.Unlock()
	}
	defer func() {
		chaosTrace = nil
		if t.Failed() {
			traceMu.Lock()
			for _, line := range trace {
				t.Log("trace:", line)
			}
			traceMu.Unlock()
		}
	}()

	cfg := Config{ChunkSize: 16, Replication: 3, SerialRecovery: seed%2 == 1}
	s := New(cluster.New(cluster.Config{Nodes: nodes, Seed: seed + 7}), cfg)
	ctx := storage.NewContext()
	rng := sim.NewRNG(seed*0x9e3779b9 + 1)

	keys := make([]string, workers)
	oracle := make([][]byte, workers)
	for w := 0; w < workers; w++ {
		keys[w] = fmt.Sprintf("chaos-%d", w)
		if err := s.CreateBlob(ctx, keys[w]); err != nil {
			t.Fatal(err)
		}
	}
	flaps := &chaosFlaps{s: s, down: make(map[int]bool)}

	// On every fifth seed a membership actor joins the schedule: node 4 is
	// drained out of and re-added to the ring WHILE the workers, flaps, and
	// fault injection run — live elasticity under chaos. The flaps (and the
	// burst-end crash victim) then stay off node 4 so the drain/join target
	// itself is up; everything around it may still fail, so migrations hit
	// down owners and record repair debt that the heal must drain.
	membership := seed%5 == 0
	flapRange := nodes
	if membership {
		flapRange = nodes - 1
	}

	for b := 0; b < bursts; b++ {
		// Transient + slow noise on every op class for the burst's duration.
		s.cluster.SetFaultInjector(cluster.NewFaultPlan(seed*1000+uint64(b), []cluster.FaultRule{
			{Node: -1, Kind: cluster.FaultDiskWrite, Prob: 0.03, Fault: cluster.Fault{Err: errChaosTransient, Transient: true}},
			{Node: -1, Kind: cluster.FaultDiskRead, Prob: 0.03, Fault: cluster.Fault{Err: errChaosTransient, Transient: true}},
			{Node: -1, Kind: cluster.FaultMetaOp, Prob: 0.02, Fault: cluster.Fault{Err: errChaosTransient, Transient: true}},
			{Node: -1, Kind: cluster.FaultAny, Prob: 0.05, Fault: cluster.Fault{Slow: time.Millisecond}},
		}))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wrng := rng.Fork()
			wg.Add(1)
			go func() {
				defer wg.Done()
				wctx := storage.NewContext()
				for op := 0; op < opsPer; op++ {
					if wrng.Float64() < 0.15 {
						flaps.flap(wrng.Intn(flapRange), maxDown)
					}
					switch {
					case wrng.Float64() < 0.55: // write (single- or multi-chunk)
						off := int64(0)
						if len(oracle[w]) > 0 {
							off = int64(wrng.Intn(len(oracle[w]) + 24))
						}
						data := make([]byte, 1+wrng.Intn(40))
						wrng.Fill(data)
						var err error
						if wrng.Float64() < 0.25 { // transactional variant
							txn := s.Begin(wctx)
							if err = txn.Write(keys[w], off, data); err == nil {
								err = txn.Commit()
							} else {
								txn.Abort()
							}
						} else {
							_, err = s.WriteBlob(wctx, keys[w], off, data)
						}
						if err == nil {
							oracle[w] = applyOracle(oracle[w], off, data)
						}
					default: // verifying read
						if len(oracle[w]) == 0 {
							continue
						}
						got := make([]byte, len(oracle[w]))
						n, err := s.ReadBlob(wctx, keys[w], 0, got)
						if err != nil {
							continue // unavailability is allowed; staleness is not
						}
						if n != len(got) || !bytes.Equal(got, oracle[w]) {
							t.Errorf("seed %d worker %d: stale read: got %d bytes %q, want %q",
								seed, w, n, got, oracle[w])
							dumpChunkState(t, s, keys[w], got, oracle[w])
							return
						}
					}
				}
			}()
		}
		if membership {
			wg.Add(1)
			go func() {
				defer wg.Done()
				mctx := storage.NewContext()
				if s.serving(4) {
					tracef("membership: removing node 4")
					if err := s.RemoveServer(mctx, 4); err != nil {
						t.Errorf("seed %d: remove node 4: %v", seed, err)
					}
				} else {
					tracef("membership: adding node 4")
					if err := s.AddServer(mctx, 4); err != nil {
						t.Errorf("seed %d: add node 4: %v", seed, err)
					}
				}
			}()
		}
		wg.Wait()
		s.cluster.SetFaultInjector(nil)
		if t.Failed() {
			return
		}

		// Quiescent barrier: heal every flapped node (repair pass runs per
		// rejoin), then crash one node — sometimes with a torn lane tail —
		// and recover it against its live peers.
		flaps.healAll()
		if rng.Float64() < 0.7 {
			victim := rng.Intn(flapRange)
			sv := s.servers[victim]
			if rng.Float64() < 0.5 {
				lane := rng.Intn(sv.wal.Lanes())
				if buf := sv.wal.LaneBuffer(lane); buf.Len() > 4 {
					buf.Truncate(buf.Len() - 1 - rng.Intn(3))
					tracef("tear node=%d lane=%d", victim, lane)
				}
			}
			s.Crash(cluster.NodeID(victim))
			if err := s.Recover(cluster.NodeID(victim)); err != nil {
				t.Fatalf("seed %d: recover node %d: %v", seed, victim, err)
			}
		}
	}

	// Re-seat node 4 if the last burst left it drained: the convergence
	// checks below must cover a cluster that went through a full
	// remove/add round trip.
	if membership && !s.serving(4) {
		if err := s.AddServer(ctx, 4); err != nil {
			t.Fatalf("seed %d: re-add node 4: %v", seed, err)
		}
	}

	// Heal everything, drain every remaining debt entry, and require full
	// convergence: no debt, byte-identical replicas, oracle-equal content.
	flaps.healAll()
	s.Repair(ctx)
	if n := s.RepairPending(); n != 0 {
		t.Fatalf("seed %d: repair debt outstanding after heal: %d", seed, n)
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("seed %d: invariants after heal: %s", seed, msg)
	}
	verifyOracle(t, s, ctx, seed, keys, oracle, "after heal")

	// Total power loss: every node rebuilds from its WAL alone and the
	// converged state must come back exactly (serial recovery on odd seeds).
	for n := 0; n < nodes; n++ {
		s.Crash(cluster.NodeID(n))
	}
	for n := 0; n < nodes; n++ {
		if err := s.Recover(cluster.NodeID(n)); err != nil {
			t.Fatalf("seed %d: full recover node %d: %v", seed, n, err)
		}
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("seed %d: invariants after full crash cycle: %s", seed, msg)
	}
	verifyOracle(t, s, ctx, seed, keys, oracle, "after full crash cycle")
}

// dumpChunkState prints, for every chunk of key where got and want differ,
// each owner's version, debt mask, down state, and bytes — the diagnostic
// for a stale-read failure.
func dumpChunkState(t *testing.T, s *Store, key string, got, want []byte) {
	t.Helper()
	cs := int64(s.cfg.ChunkSize)
	t.Logf("repairPending=%d", s.RepairPending())
	for idx := int64(0); idx*cs < int64(len(want)); idx++ {
		lo := idx * cs
		hi := lo + cs
		if hi > int64(len(want)) {
			hi = int64(len(want))
		}
		g := got[lo:min(hi, int64(len(got)))]
		if int64(len(got)) >= hi && bytes.Equal(g, want[lo:hi]) {
			continue
		}
		id := chunkID{key, idx}
		h := id.ringHash()
		t.Logf("chunk %d (owners %v): got %x want %x", idx, s.ownersForHash(h), g, want[lo:hi])
		for _, o := range s.ownersForHash(h) {
			sv := s.servers[o]
			data, ver, ok := sv.copyChunk(h, id)
			t.Logf("  node %d: down=%v ver=%d debt=%b present=%v data=%x",
				o, sv.isDown(), ver, sv.debtMask(h, id), ok, data)
			var hist []string
			sv.wal.ReplayMerged(func(rec wal.Record) error {
				rid, within, rver, rdata, err := decChunkPayload(rec.Payload)
				if err != nil || rid != id {
					return nil
				}
				hist = append(hist, fmt.Sprintf("%v(w=%d v=%d len=%d)", rec.Type, within, rver, len(rdata)))
				return nil
			})
			t.Logf("    log: %v", hist)
		}
	}
}

// applyOracle mirrors a successful write into the never-failed reference
// (sparse growth reads as zeros, exactly like the store).
func applyOracle(cur []byte, off int64, data []byte) []byte {
	need := off + int64(len(data))
	if int64(len(cur)) < need {
		grown := make([]byte, need)
		copy(grown, cur)
		cur = grown
	}
	copy(cur[off:], data)
	return cur
}

func verifyOracle(t *testing.T, s *Store, ctx *storage.Context, seed uint64, keys []string, oracle [][]byte, stage string) {
	t.Helper()
	for w, key := range keys {
		if len(oracle[w]) == 0 {
			continue
		}
		got := make([]byte, len(oracle[w]))
		n, err := s.ReadBlob(ctx, key, 0, got)
		if err != nil || n != len(got) {
			t.Fatalf("seed %d %s: read %q: (%d, %v)", seed, stage, key, n, err)
		}
		if !bytes.Equal(got, oracle[w]) {
			t.Fatalf("seed %d %s: %q diverged from the never-failed oracle", seed, stage, key)
		}
	}
}

// TestSetDownFlapRace pins, under the race detector, that SetDown flapping
// is safe concurrently with reads, writes, and the repair passes rejoins
// trigger. Content correctness is covered by the chaos battery; this test
// exists to give -race a dense interleaving of exactly the flap paths.
func TestSetDownFlapRace(t *testing.T) {
	s := newStore(t, 4, Config{ChunkSize: 16, Replication: 3})
	ctx := storage.NewContext()
	if err := s.CreateBlob(ctx, "flap"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteBlob(ctx, "flap", 0, bytes.Repeat([]byte("a"), 64)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // flapper: one node at a time bounces
		defer wg.Done()
		rng := sim.NewRNG(9)
		for i := 0; i < 200; i++ {
			node := cluster.NodeID(rng.Intn(4))
			s.SetDown(node, true)
			s.SetDown(node, false)
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for g := 0; g < 3; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := sim.NewRNG(uint64(100 + g))
			gctx := storage.NewContext()
			buf := make([]byte, 64)
			for i := 0; i < 150; i++ {
				if rng.Float64() < 0.5 {
					data := make([]byte, 1+rng.Intn(48))
					rng.Fill(data)
					s.WriteBlob(gctx, "flap", int64(rng.Intn(40)), data)
				} else {
					s.ReadBlob(gctx, "flap", 0, buf)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	// Converge and check.
	for n := 0; n < 4; n++ {
		s.SetDown(cluster.NodeID(n), false)
	}
	s.Repair(ctx)
	if n := s.RepairPending(); n != 0 {
		t.Fatalf("repair debt outstanding after flapping: %d", n)
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}
