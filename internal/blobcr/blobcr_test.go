package blobcr

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/storage"
)

const (
	testRanks = 4
	testSlab  = 8 * PageSize
)

func newStore() *blob.Store {
	return blob.New(cluster.New(cluster.Config{Nodes: 6, Seed: 1}),
		blob.Config{ChunkSize: 64 << 10, Replication: 2})
}

func newManager(t *testing.T, store *blob.Store, incremental bool) *Manager {
	t.Helper()
	m, err := NewManager(store, Options{
		Ranks: testRanks, SlabSize: testSlab, Incremental: incremental,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// evolve mutates a state deterministically; touchPages controls how many
// pages change per epoch.
func evolve(state []byte, epoch, rank, touchPages int) {
	for p := 0; p < touchPages; p++ {
		page := (epoch*7 + p) % (len(state) / PageSize)
		for i := 0; i < PageSize; i += 64 {
			state[page*PageSize+i] = byte(epoch*31 + rank*7 + p)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	store := newStore()
	if _, err := NewManager(store, Options{Ranks: 0, SlabSize: PageSize}); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("zero ranks: %v", err)
	}
	if _, err := NewManager(store, Options{Ranks: 2, SlabSize: 100}); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("unaligned slab: %v", err)
	}
	if _, err := NewManager(store, Options{Ranks: 2, SlabSize: 0}); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("zero slab: %v", err)
	}
}

func TestFullCheckpointRestore(t *testing.T) {
	store := newStore()
	m := newManager(t, store, false)

	final := make([][]byte, testRanks)
	errs := mpi.Run(testRanks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		rs, err := m.NewRankState(r)
		if err != nil {
			return err
		}
		state := make([]byte, testSlab)
		for epoch := 0; epoch < 3; epoch++ {
			evolve(state, epoch, r.ID, 3)
			written, err := rs.Checkpoint(epoch, state)
			if err != nil {
				return err
			}
			if written != testSlab {
				return fmt.Errorf("full checkpoint wrote %d, want %d", written, testSlab)
			}
		}
		final[r.ID] = append([]byte(nil), state...)
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}

	ctx := storage.NewContext()
	epoch, key, err := m.LatestComplete(ctx)
	if err != nil || epoch != 2 {
		t.Fatalf("LatestComplete = (%d, %s, %v)", epoch, key, err)
	}

	errs = mpi.Run(testRanks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		rs, err := m.NewRankState(r)
		if err != nil {
			return err
		}
		got, err := rs.Restore(epoch)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, final[r.ID]) {
			return fmt.Errorf("rank %d restore diverges", r.ID)
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalWritesLess(t *testing.T) {
	store := newStore()
	m := newManager(t, store, true)

	var epoch1Written int64
	finalState := make([][]byte, testRanks)
	errs := mpi.Run(testRanks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		rs, err := m.NewRankState(r)
		if err != nil {
			return err
		}
		state := make([]byte, testSlab)
		evolve(state, 0, r.ID, 8) // epoch 0: everything dirty
		w0, err := rs.Checkpoint(0, state)
		if err != nil {
			return err
		}
		if w0 != testSlab {
			return fmt.Errorf("first checkpoint wrote %d, want full %d", w0, testSlab)
		}
		evolve(state, 1, r.ID, 1) // epoch 1: one page dirty
		w1, err := rs.Checkpoint(1, state)
		if err != nil {
			return err
		}
		if r.ID == 0 {
			epoch1Written = w1
		}
		finalState[r.ID] = append([]byte(nil), state...)
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	if epoch1Written != PageSize {
		t.Fatalf("incremental epoch wrote %d dirty bytes, want exactly one page (%d)",
			epoch1Written, PageSize)
	}

	// The incremental epoch must still restore the FULL correct image.
	errs = mpi.Run(testRanks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		rs, err := m.NewRankState(r)
		if err != nil {
			return err
		}
		got, err := rs.Restore(1)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, finalState[r.ID]) {
			return fmt.Errorf("rank %d incremental restore diverges", r.ID)
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestLatestCompleteIgnoresTornEpoch(t *testing.T) {
	store := newStore()
	m := newManager(t, store, false)
	// Epoch 0 complete, epoch 1 torn (only rank 0 wrote).
	errs := mpi.Run(testRanks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		rs, err := m.NewRankState(r)
		if err != nil {
			return err
		}
		state := make([]byte, testSlab)
		if _, err := rs.Checkpoint(0, state); err != nil {
			return err
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	ctx := storage.NewContext()
	if err := store.CreateBlob(ctx, "ckpt/epoch-00000001"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.WriteBlob(ctx, "ckpt/epoch-00000001", 0, make([]byte, testSlab)); err != nil {
		t.Fatal(err) // only one rank's worth: torn
	}
	epoch, _, err := m.LatestComplete(ctx)
	if err != nil || epoch != 0 {
		t.Fatalf("LatestComplete = (%d, %v), want epoch 0", epoch, err)
	}
}

func TestLatestCompleteEmpty(t *testing.T) {
	m := newManager(t, newStore(), false)
	if _, _, err := m.LatestComplete(storage.NewContext()); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("empty namespace: %v", err)
	}
}

func TestRetention(t *testing.T) {
	store := newStore()
	m := newManager(t, store, false)
	errs := mpi.Run(testRanks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		rs, err := m.NewRankState(r)
		if err != nil {
			return err
		}
		state := make([]byte, testSlab)
		for epoch := 0; epoch < 5; epoch++ {
			evolve(state, epoch, r.ID, 2)
			if _, err := rs.Checkpoint(epoch, state); err != nil {
				return err
			}
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	ctx := storage.NewContext()
	dropped, err := m.Retain(ctx, 2)
	if err != nil || dropped != 3 {
		t.Fatalf("Retain = (%d, %v), want 3 dropped", dropped, err)
	}
	epoch, _, err := m.LatestComplete(ctx)
	if err != nil || epoch != 4 {
		t.Fatalf("after retention: (%d, %v)", epoch, err)
	}
	infos, _ := store.Scan(ctx, "ckpt/")
	if len(infos) != 2 {
		t.Fatalf("%d checkpoints survive, want 2", len(infos))
	}
	if _, err := m.Retain(ctx, 0); !errors.Is(err, storage.ErrInvalidArg) {
		t.Fatalf("keep 0: %v", err)
	}
}

func TestWrongCommunicatorSize(t *testing.T) {
	m := newManager(t, newStore(), false)
	errs := mpi.Run(2, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		_, err := m.NewRankState(r)
		if !errors.Is(err, storage.ErrInvalidArg) {
			return fmt.Errorf("size mismatch accepted: %v", err)
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestWrongSlabSizeRejected(t *testing.T) {
	m := newManager(t, newStore(), false)
	errs := mpi.Run(testRanks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		rs, err := m.NewRankState(r)
		if err != nil {
			return err
		}
		if _, err := rs.Checkpoint(0, make([]byte, 100)); !errors.Is(err, storage.ErrInvalidArg) {
			return fmt.Errorf("short state accepted: %v", err)
		}
		// All ranks failed before any barrier: no deadlock.
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}
