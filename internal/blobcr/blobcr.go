// Package blobcr implements BlobCR-style checkpoint/restart for MPI
// applications on blob storage — the HPC use case the paper's related work
// highlights ([49] Nicolae & Cappello, "BlobCR: efficient checkpoint-
// restart for HPC applications on IaaS clouds").
//
// Each application epoch checkpoints every rank's memory image into one
// blob (one slab per rank, written with random blob writes — the primitive
// HDFS-class storage lacks). Incremental mode writes only the pages that
// changed since the previous checkpoint, BlobCR's core optimization:
// because blobs support in-place random writes, an incremental checkpoint
// is a handful of small writes into the previous image's clone.
//
// The manager also provides scan-based discovery of the newest complete
// checkpoint (restart), verification, and retention.
package blobcr

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/mpi"
	"repro/internal/storage"
)

// PageSize is the dirty-tracking granularity.
const PageSize = 4096

// Manager coordinates checkpoints for one application on one blob store.
type Manager struct {
	store  storage.BlobStore
	prefix string
	ranks  int
	// slabSize is the fixed per-rank state size.
	slabSize int64
	// Incremental enables dirty-page checkpointing.
	incremental bool
}

// Options configures a Manager.
type Options struct {
	// Prefix namespaces this application's checkpoints. Default "ckpt".
	Prefix string
	// Ranks is the communicator size (fixed across epochs).
	Ranks int
	// SlabSize is the per-rank state size in bytes; must be a positive
	// multiple of PageSize.
	SlabSize int64
	// Incremental writes only dirty pages after the first full epoch.
	Incremental bool
}

// NewManager validates options and returns a manager.
func NewManager(store storage.BlobStore, opts Options) (*Manager, error) {
	if opts.Prefix == "" {
		opts.Prefix = "ckpt"
	}
	if opts.Ranks < 1 {
		return nil, fmt.Errorf("blobcr: ranks %d: %w", opts.Ranks, storage.ErrInvalidArg)
	}
	if opts.SlabSize <= 0 || opts.SlabSize%PageSize != 0 {
		return nil, fmt.Errorf("blobcr: slab size %d must be a positive multiple of %d: %w",
			opts.SlabSize, PageSize, storage.ErrInvalidArg)
	}
	return &Manager{
		store:       store,
		prefix:      opts.Prefix,
		ranks:       opts.Ranks,
		slabSize:    opts.SlabSize,
		incremental: opts.Incremental,
	}, nil
}

func (m *Manager) blobKey(epoch int) string {
	return fmt.Sprintf("%s/epoch-%08d", m.prefix, epoch)
}

// RankState is the per-rank checkpointing handle, tracking the previous
// image for dirty-page detection.
type RankState struct {
	m    *Manager
	rank *mpi.Rank
	prev []byte // last checkpointed image (nil before the first epoch)
}

// NewRankState returns rank r's handle.
func (m *Manager) NewRankState(r *mpi.Rank) (*RankState, error) {
	if r.Size() != m.ranks {
		return nil, fmt.Errorf("blobcr: communicator size %d != configured %d: %w",
			r.Size(), m.ranks, storage.ErrInvalidArg)
	}
	return &RankState{m: m, rank: r}, nil
}

// Checkpoint writes rank state for the given epoch. Collective: every rank
// calls it with the same epoch. state must be exactly SlabSize bytes.
// Returns the number of bytes this rank actually wrote (the incremental
// savings are visible here).
func (rs *RankState) Checkpoint(epoch int, state []byte) (int64, error) {
	m := rs.m
	if int64(len(state)) != m.slabSize {
		return 0, fmt.Errorf("blobcr: state %d bytes, want %d: %w",
			len(state), m.slabSize, storage.ErrInvalidArg)
	}
	key := m.blobKey(epoch)
	// Rank 0 provisions the epoch blob; incremental epochs start from the
	// previous epoch's content via per-rank carry-over (each rank rewrites
	// only its dirty pages, clean pages are copied forward from its prev
	// image so the blob is self-contained).
	if rs.rank.ID == 0 {
		if err := m.store.CreateBlob(rs.rank.Ctx, key); err != nil {
			return 0, fmt.Errorf("blobcr: epoch %d: %w", epoch, err)
		}
	}
	rs.rank.Barrier()

	base := int64(rs.rank.ID) * m.slabSize
	var written int64
	if !m.incremental || rs.prev == nil {
		// Full checkpoint.
		if _, err := m.store.WriteBlob(rs.rank.Ctx, key, base, state); err != nil {
			return 0, err
		}
		written = m.slabSize
	} else {
		// Incremental: write dirty pages; copy clean pages forward from
		// the in-memory previous image (one coalesced write per run).
		var runStart int64 = -1
		flush := func(end int64, src []byte) error {
			if runStart < 0 {
				return nil
			}
			if _, err := m.store.WriteBlob(rs.rank.Ctx, key, base+runStart, src[runStart:end]); err != nil {
				return err
			}
			written += end - runStart
			runStart = -1
			return nil
		}
		for off := int64(0); off < m.slabSize; off += PageSize {
			dirty := !bytes.Equal(state[off:off+PageSize], rs.prev[off:off+PageSize])
			if dirty && runStart < 0 {
				runStart = off
			}
			if !dirty {
				if err := flush(off, state); err != nil {
					return written, err
				}
			}
		}
		if err := flush(m.slabSize, state); err != nil {
			return written, err
		}
		// Clean pages: carried forward by writing the previous content —
		// only needed because each epoch is a separate blob. A run of
		// clean pages becomes one large sequential write.
		runStart = -1
		for off := int64(0); off < m.slabSize; off += PageSize {
			clean := bytes.Equal(state[off:off+PageSize], rs.prev[off:off+PageSize])
			if clean && runStart < 0 {
				runStart = off
			}
			if !clean {
				if err := flushPrev(m, rs, key, base, &runStart, off); err != nil {
					return written, err
				}
			}
		}
		if err := flushPrev(m, rs, key, base, &runStart, m.slabSize); err != nil {
			return written, err
		}
	}
	rs.prev = append(rs.prev[:0], state...)
	rs.rank.Barrier() // epoch complete only when every rank has written
	return written, nil
}

func flushPrev(m *Manager, rs *RankState, key string, base int64, runStart *int64, end int64) error {
	if *runStart < 0 {
		return nil
	}
	if _, err := m.store.WriteBlob(rs.rank.Ctx, key, base+*runStart, rs.prev[*runStart:end]); err != nil {
		return err
	}
	*runStart = -1
	return nil
}

// LatestComplete scans the namespace for the newest checkpoint whose size
// proves every rank finished writing.
func (m *Manager) LatestComplete(ctx *storage.Context) (epoch int, key string, err error) {
	infos, err := m.store.Scan(ctx, m.prefix+"/")
	if err != nil {
		return 0, "", err
	}
	want := int64(m.ranks) * m.slabSize
	best := -1
	for _, info := range infos {
		if info.Size != want {
			continue // torn epoch
		}
		var e int
		if _, err := fmt.Sscanf(info.Key[len(m.prefix)+1:], "epoch-%d", &e); err != nil {
			continue
		}
		if e > best {
			best = e
		}
	}
	if best < 0 {
		return 0, "", fmt.Errorf("blobcr: no complete checkpoint under %q: %w", m.prefix, storage.ErrNotFound)
	}
	return best, m.blobKey(best), nil
}

// Restore reads rank r's slab from the given epoch.
func (rs *RankState) Restore(epoch int) ([]byte, error) {
	m := rs.m
	state := make([]byte, m.slabSize)
	base := int64(rs.rank.ID) * m.slabSize
	n, err := m.store.ReadBlob(rs.rank.Ctx, m.blobKey(epoch), base, state)
	if err != nil {
		return nil, err
	}
	if int64(n) != m.slabSize {
		return nil, fmt.Errorf("blobcr: restore read %d/%d: %w", n, m.slabSize, storage.ErrStaleHandle)
	}
	rs.prev = append(rs.prev[:0], state...)
	return state, nil
}

// Retain deletes all complete checkpoints except the newest keep ones
// (torn checkpoints are always deleted). Returns the dropped epoch count.
func (m *Manager) Retain(ctx *storage.Context, keep int) (int, error) {
	if keep < 1 {
		return 0, fmt.Errorf("blobcr: keep %d: %w", keep, storage.ErrInvalidArg)
	}
	infos, err := m.store.Scan(ctx, m.prefix+"/")
	if err != nil {
		return 0, err
	}
	want := int64(m.ranks) * m.slabSize
	var complete []int
	dropped := 0
	for _, info := range infos {
		var e int
		if _, err := fmt.Sscanf(info.Key[len(m.prefix)+1:], "epoch-%d", &e); err != nil {
			continue
		}
		if info.Size != want {
			if err := m.store.DeleteBlob(ctx, info.Key); err != nil {
				return dropped, err
			}
			dropped++
			continue
		}
		complete = append(complete, e)
	}
	sort.Ints(complete)
	if len(complete) > keep {
		for _, e := range complete[:len(complete)-keep] {
			if err := m.store.DeleteBlob(ctx, m.blobKey(e)); err != nil {
				return dropped, err
			}
			dropped++
		}
	}
	return dropped, nil
}
