package workloads

import (
	"fmt"

	"repro/internal/sparksim"
	"repro/internal/storage"
)

// SparkApp is one SparkBench application model: the input volume it needs
// and the sparksim job that replays its I/O shape.
type SparkApp struct {
	Name  string
	Usage string
	// InputBytes is the volume of input data to materialize (per pass).
	InputBytes int64
	// Splits is the number of input files (= map tasks per pass).
	Splits int
	// App is the sparksim job description. InputDir/OutputDir are filled
	// by convention: /input/<name> and /output/<name>.
	App sparksim.App
}

// SparkApps returns the paper's five SparkBench applications, scaled by
// cfg. Output-task counts (4, 4, 5, 4, 6) are chosen so the five runs'
// directory traffic sums to Table II's census: Σ(4+T) = 43 mkdir = 43
// rmdir, and one input listing each = 5 opendir.
func SparkApps(cfg Config) []SparkApp {
	cfg = cfg.WithDefaults()
	mk := func(name, usage string, readPaper, writePaper float64, tasks, passes int) SparkApp {
		inBytes := cfg.Scale(readPaper) / int64(passes)
		outBytes := cfg.Scale(writePaper)
		return SparkApp{
			Name:       name,
			Usage:      usage,
			InputBytes: inBytes,
			Splits:     4,
			App: sparksim.App{
				Name:        name,
				InputDir:    "/input/" + name,
				OutputDir:   "/output/" + name,
				OutputTasks: tasks,
				Passes:      passes,
				OutputBytes: func(task int, inputBytes int64) int64 {
					per := outBytes / int64(tasks)
					if task == tasks-1 {
						per = outBytes - per*int64(tasks-1)
					}
					return per
				},
				// Submission artifacts (Spark assembly jar, app jar, conf)
				// scale along with the data volumes.
				ArtifactBytes: map[string]int64{
					"spark-libs.jar": cfg.Scale(96 * MB),
					"app.jar":        cfg.Scale(24 * MB),
					"spark-conf.zip": cfg.Scale(4 * MB),
				},
			},
		}
	}
	return []SparkApp{
		mk("Sort", "Text Processing", 5.8*GB, 5.8*GB, 4, 1),
		mk("CC", "Graph Processing", 13.1*GB, 71.2*MB, 4, 1),
		mk("Grep", "Text Processing", 55.8*GB, 863.8*MB, 4, 1),
		mk("DT", "Machine Learning", 59.1*GB, 4.7*GB, 5, 3),
		mk("Tokenizer", "Text Processing", 55.8*GB, 235.7*GB, 6, 1),
	}
}

// SparkAppByName returns the named application model.
func SparkAppByName(cfg Config, name string) (SparkApp, error) {
	for _, a := range SparkApps(cfg) {
		if a.Name == name {
			return a, nil
		}
	}
	return SparkApp{}, fmt.Errorf("workloads: unknown Spark app %q", name)
}

// SetupSparkEnv creates the cluster-wide directories every Spark run
// expects (user home, staging root, event-log root). Idempotent.
func SetupSparkEnv(fs storage.FileSystem) error {
	ctx := storage.NewContext()
	for _, d := range []string{"/user", "/user/spark", "/user/spark/.sparkStaging",
		"/spark-logs", "/input", "/output"} {
		if err := mkdirIfMissing(fs, ctx, d); err != nil {
			return fmt.Errorf("spark env %s: %w", d, err)
		}
	}
	return nil
}

// SetupSparkApp materializes one application's input directory and output
// root on the raw file system (offline preparation, per Section IV-C).
func SetupSparkApp(fs storage.FileSystem, app SparkApp) error {
	ctx := storage.NewContext()
	if err := mkdirIfMissing(fs, ctx, app.App.InputDir); err != nil {
		return err
	}
	if err := mkdirIfMissing(fs, ctx, app.App.OutputDir); err != nil {
		return err
	}
	per := app.InputBytes / int64(app.Splits)
	for i := 0; i < app.Splits; i++ {
		size := per
		if i == app.Splits-1 {
			size = app.InputBytes - per*int64(app.Splits-1)
		}
		path := fmt.Sprintf("%s/part-%04d", app.App.InputDir, i)
		if err := makeFile(fs, ctx, path, size); err != nil {
			return err
		}
	}
	return nil
}

// RunSpark executes the application on an engine (normally over a traced
// relaxedfs) and returns the job result.
func RunSpark(e *sparksim.Engine, ctx *storage.Context, app SparkApp) (*sparksim.Result, error) {
	return e.Run(ctx, app.App)
}
