// Package workloads models the nine applications of the paper's Table I —
// four HPC/MPI applications (mpiBLAST, MOM, ECOHAM, Ray Tracing) and five
// SparkBench applications (Sort, Connected Component, Grep, Decision Tree,
// Tokenizer) — as I/O drivers that replay each application's storage-call
// shape through the real MPI-IO (internal/mpiio) and Spark
// (internal/sparksim) layers.
//
// The science is synthetic; the I/O is real: volumes, read/write ratios,
// access patterns (shared-DB scans, timestep checkpoints, frame pipelines,
// map/reduce stages) and the prep-script side calls that explain ECOHAM's
// Figure 1 bar all drive actual storage traffic, which the tracer then
// measures to regenerate Table I and Figures 1–2.
//
// Byte volumes are the paper's, divided by Config.Factor (default 1024,
// i.e. GB → MB). The per-call I/O unit is scaled along with them (default
// 4 KiB, standing in for the ~4 MiB units a real run would use), keeping
// call-count ratios faithful.
package workloads

import "fmt"

// Config scales a workload run.
type Config struct {
	// Factor divides the paper's byte volumes. Default 1024 (GB -> MB).
	Factor int64
	// Chunk is the per-call I/O unit. Default 4096.
	Chunk int
	// Ranks is the MPI world size for HPC applications. Default 8.
	Ranks int
	// Executors is the Spark executor count. Default 4.
	Executors int
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Factor <= 0 {
		c.Factor = 1024
	}
	if c.Chunk <= 0 {
		c.Chunk = 4096
	}
	if c.Ranks <= 0 {
		c.Ranks = 8
	}
	if c.Executors <= 0 {
		c.Executors = 4
	}
	return c
}

// Scale converts a paper-reported byte volume into this run's volume.
func (c Config) Scale(paperBytes float64) int64 {
	v := int64(paperBytes) / c.Factor
	if v < 1 {
		v = 1
	}
	return v
}

// TableIRow is one row of the paper's Table I.
type TableIRow struct {
	Platform string
	App      string
	Usage    string
	// ReadBytes and WriteBytes are the paper's totals in bytes.
	ReadBytes  float64
	WriteBytes float64
	// RWRatio is the ratio as printed in the paper (the CC row prints
	// 0.18, a units slip — 13.1 GB / 71.2 MB is ≈184; EXPERIMENTS.md
	// discusses the discrepancy).
	RWRatio float64
	Profile string
}

// GB and MB are decimal byte units, matching the paper's notation.
const (
	GB = 1e9
	MB = 1e6
)

// TableI reproduces the paper's Table I reference data.
var TableI = []TableIRow{
	{"HPC / MPI", "BLAST", "Protein docking", 27.7 * GB, 12.8 * MB, 2.1e3, "Read-intensive"},
	{"HPC / MPI", "MOM", "Oceanic model", 19.5 * GB, 3.2 * GB, 6.01, "Read-intensive"},
	{"HPC / MPI", "EH", "Sediment propagation", 0.4 * GB, 9.7 * GB, 4.2e-2, "Write-intensive"},
	{"HPC / MPI", "RT", "Video processing", 67.4 * GB, 71.2 * GB, 0.94, "Balanced"},
	{"Cloud / Spark", "Sort", "Text Processing", 5.8 * GB, 5.8 * GB, 1.00, "Balanced"},
	{"Cloud / Spark", "CC", "Graph Processing", 13.1 * GB, 71.2 * MB, 0.18, "Read-intensive"},
	{"Cloud / Spark", "Grep", "Text Processing", 55.8 * GB, 863.8 * MB, 64.52, "Read-intensive"},
	{"Cloud / Spark", "DT", "Machine Learning", 59.1 * GB, 4.7 * GB, 12.58, "Read-intensive"},
	{"Cloud / Spark", "Tokenizer", "Text Processing", 55.8 * GB, 235.7 * GB, 0.24, "Write-intensive"},
}

// TableIByApp returns the reference row for an application name.
func TableIByApp(name string) (TableIRow, error) {
	for _, r := range TableI {
		if r.App == name {
			return r, nil
		}
	}
	return TableIRow{}, fmt.Errorf("workloads: no Table I row for %q", name)
}
