package workloads

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/sim"
	"repro/internal/storage"
)

// HPCApp is one MPI application model. Setup creates its input files
// (offline, on the raw file system — the paper runs preparation scripts
// outside the traced MPI phase); Run executes the traced MPI phase.
type HPCApp struct {
	Name  string
	Usage string
	// Setup prepares input files and directories.
	Setup func(fs storage.FileSystem, cfg Config) error
	// Run executes the application against fs (normally a trace.FS).
	Run func(fs storage.FileSystem, cfg Config) error
}

// HPCApps returns the paper's four MPI applications plus the EH/MPI
// variant (ECOHAM with the preparation script moved offline), i.e. the five
// bars of Figure 1.
func HPCApps() []HPCApp {
	return []HPCApp{
		{Name: "BLAST", Usage: "Protein docking", Setup: setupBLAST, Run: runBLAST},
		{Name: "MOM", Usage: "Oceanic model", Setup: setupMOM, Run: runMOM},
		{Name: "EH", Usage: "Sediment propagation", Setup: setupEH,
			Run: func(fs storage.FileSystem, cfg Config) error { return runEH(fs, cfg, true) }},
		{Name: "EH / MPI", Usage: "Sediment propagation (prep offline)", Setup: setupEH,
			Run: func(fs storage.FileSystem, cfg Config) error { return runEH(fs, cfg, false) }},
		{Name: "RT", Usage: "Video processing", Setup: setupRT, Run: runRT},
	}
}

// HPCAppByName returns the named application model.
func HPCAppByName(name string) (HPCApp, error) {
	for _, a := range HPCApps() {
		if a.Name == name {
			return a, nil
		}
	}
	return HPCApp{}, fmt.Errorf("workloads: unknown HPC app %q", name)
}

// mkdirIfMissing tolerates already-present directories during setup.
func mkdirIfMissing(fs storage.FileSystem, ctx *storage.Context, path string) error {
	err := fs.Mkdir(ctx, path)
	if err == nil {
		return nil
	}
	if _, statErr := fs.Stat(ctx, path); statErr == nil {
		return nil
	}
	return err
}

// makeFile writes a file of the given size in large offline chunks.
func makeFile(fs storage.FileSystem, ctx *storage.Context, path string, size int64) error {
	h, err := fs.Create(ctx, path)
	if err != nil {
		return fmt.Errorf("setup %s: %w", path, err)
	}
	buf := make([]byte, 1<<20)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	var off int64
	for off < size {
		take := int64(len(buf))
		if take > size-off {
			take = size - off
		}
		n, err := h.WriteAt(ctx, off, buf[:take])
		if err != nil {
			h.Close(ctx)
			return fmt.Errorf("setup %s: %w", path, err)
		}
		off += int64(n)
	}
	return h.Close(ctx)
}

// readShare reads [off, off+n) from f in cfg.Chunk units.
func readShare(f *mpiio.File, cfg Config, off, n int64) (int64, error) {
	buf := make([]byte, cfg.Chunk)
	var done int64
	for done < n {
		take := int64(len(buf))
		if take > n-done {
			take = n - done
		}
		got, err := f.ReadAt(off+done, buf[:take])
		if err != nil {
			return done, err
		}
		if got == 0 {
			break
		}
		done += int64(got)
	}
	return done, nil
}

// writeShare writes n bytes at off in cfg.Chunk units.
func writeShare(f *mpiio.File, cfg Config, off, n int64) error {
	buf := make([]byte, cfg.Chunk)
	for i := range buf {
		buf[i] = byte(i * 17)
	}
	var done int64
	for done < n {
		take := int64(len(buf))
		if take > n-done {
			take = n - done
		}
		if _, err := f.WriteAt(off+done, buf[:take]); err != nil {
			return err
		}
		done += int64(take)
	}
	return nil
}

// --- mpiBLAST: every rank scans its share of a shared protein database;
// match results are gathered to rank 0, which writes the small report.
// Read-intensive (paper ratio 2.1e3). ---

func setupBLAST(fs storage.FileSystem, cfg Config) error {
	cfg = cfg.WithDefaults()
	ctx := storage.NewContext()
	if err := mkdirIfMissing(fs, ctx, "/data"); err != nil {
		return err
	}
	if err := mkdirIfMissing(fs, ctx, "/results"); err != nil {
		return err
	}
	return makeFile(fs, ctx, "/data/protein.db", cfg.Scale(27.7*GB))
}

func runBLAST(fs storage.FileSystem, cfg Config) error {
	cfg = cfg.WithDefaults()
	dbSize := cfg.Scale(27.7 * GB)
	outSize := cfg.Scale(12.8 * MB)
	errs := mpi.Run(cfg.Ranks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		db, err := mpiio.Open(r, fs, "/data/protein.db", false, mpiio.Options{})
		if err != nil {
			return err
		}
		share := dbSize / int64(r.Size())
		off := int64(r.ID) * share
		if r.ID == r.Size()-1 {
			share = dbSize - off
		}
		if _, err := readShare(db, cfg, off, share); err != nil {
			db.Close()
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		// Gather per-rank hit summaries to rank 0, which writes the report.
		r.Gather(0, []byte(fmt.Sprintf("rank %d: hits", r.ID)))
		out, err := mpiio.Open(r, fs, "/results/blast.out", true, mpiio.Options{})
		if err != nil {
			return err
		}
		if r.ID == 0 {
			if err := writeShare(out, cfg, 0, outSize); err != nil {
				out.Close()
				return err
			}
			if err := out.Sync(); err != nil {
				out.Close()
				return err
			}
		}
		return out.Close()
	})
	return mpi.FirstError(errs)
}

// --- MOM: ranks load an initial ocean state, iterate timesteps with halo
// exchanges, and periodically write snapshot slabs. Read-intensive
// (ratio 6.01). ---

const momSnapshots = 8

func setupMOM(fs storage.FileSystem, cfg Config) error {
	cfg = cfg.WithDefaults()
	ctx := storage.NewContext()
	if err := mkdirIfMissing(fs, ctx, "/data"); err != nil {
		return err
	}
	if err := mkdirIfMissing(fs, ctx, "/results"); err != nil {
		return err
	}
	return makeFile(fs, ctx, "/data/ocean-init.nc", cfg.Scale(19.5*GB))
}

func runMOM(fs storage.FileSystem, cfg Config) error {
	cfg = cfg.WithDefaults()
	initSize := cfg.Scale(19.5 * GB)
	writeTotal := cfg.Scale(3.2 * GB)
	errs := mpi.Run(cfg.Ranks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		init, err := mpiio.Open(r, fs, "/data/ocean-init.nc", false, mpiio.Options{})
		if err != nil {
			return err
		}
		share := initSize / int64(r.Size())
		off := int64(r.ID) * share
		if r.ID == r.Size()-1 {
			share = initSize - off
		}
		if _, err := readShare(init, cfg, off, share); err != nil {
			init.Close()
			return err
		}
		if err := init.Close(); err != nil {
			return err
		}

		out, err := mpiio.Open(r, fs, "/results/ocean-snapshots.nc", true, mpiio.Options{})
		if err != nil {
			return err
		}
		snapBytes := writeTotal / momSnapshots
		perRank := snapBytes / int64(r.Size())
		for step := 0; step < momSnapshots; step++ {
			// Halo exchange with neighbours, then a snapshot slab write.
			right := (r.ID + 1) % r.Size()
			left := (r.ID + r.Size() - 1) % r.Size()
			if r.Size() > 1 {
				r.Send(right, step, []byte("halo"))
				r.Recv(left, step)
			}
			slabOff := int64(step)*snapBytes + int64(r.ID)*perRank
			if err := writeShare(out, cfg, slabOff, perRank); err != nil {
				out.Close()
				return err
			}
			if err := out.Sync(); err != nil {
				out.Close()
				return err
			}
			r.Barrier()
		}
		return out.Close()
	})
	return mpi.FirstError(errs)
}

// --- ECOHAM: small config/boundary input, heavy timestep output.
// Write-intensive (ratio 4.2e-2). The EH variant runs the preparation
// script inside the traced window (directory listings and xattr reads,
// Figure 1's small non-file slivers); EH/MPI moves it offline. ---

const ehSteps = 16

func setupEH(fs storage.FileSystem, cfg Config) error {
	cfg = cfg.WithDefaults()
	ctx := storage.NewContext()
	for _, d := range []string{"/data", "/results", "/run"} {
		if err := mkdirIfMissing(fs, ctx, d); err != nil {
			return err
		}
	}
	if err := makeFile(fs, ctx, "/data/sediment-boundary.nc", cfg.Scale(0.4*GB)); err != nil {
		return err
	}
	if err := makeFile(fs, ctx, "/run/ecoham.cfg", 4096); err != nil {
		return err
	}
	return fs.SetXattr(ctx, "/run/ecoham.cfg", "user.version", "eh-5.2")
}

func runEH(fs storage.FileSystem, cfg Config, withPrep bool) error {
	cfg = cfg.WithDefaults()
	if withPrep {
		// The run-preparation script: list the run directory, check the
		// configuration's attributes, stat the boundary data. These are
		// exactly the non-read/write calls Figure 1 shows for EH.
		ctx := storage.NewContext()
		if _, err := fs.ReadDir(ctx, "/run"); err != nil {
			return fmt.Errorf("eh prep: %w", err)
		}
		if _, err := fs.GetXattr(ctx, "/run/ecoham.cfg", "user.version"); err != nil {
			return fmt.Errorf("eh prep: %w", err)
		}
		if _, err := fs.Stat(ctx, "/data/sediment-boundary.nc"); err != nil {
			return fmt.Errorf("eh prep: %w", err)
		}
	}

	inSize := cfg.Scale(0.4 * GB)
	outTotal := cfg.Scale(9.7 * GB)
	errs := mpi.Run(cfg.Ranks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		in, err := mpiio.Open(r, fs, "/data/sediment-boundary.nc", false, mpiio.Options{})
		if err != nil {
			return err
		}
		share := inSize / int64(r.Size())
		off := int64(r.ID) * share
		if r.ID == r.Size()-1 {
			share = inSize - off
		}
		if _, err := readShare(in, cfg, off, share); err != nil {
			in.Close()
			return err
		}
		if err := in.Close(); err != nil {
			return err
		}

		out, err := mpiio.Open(r, fs, "/results/sediment-out.nc", true, mpiio.Options{})
		if err != nil {
			return err
		}
		stepBytes := outTotal / ehSteps
		perRank := stepBytes / int64(r.Size())
		for step := 0; step < ehSteps; step++ {
			slabOff := int64(step)*stepBytes + int64(r.ID)*perRank
			if err := writeShare(out, cfg, slabOff, perRank); err != nil {
				out.Close()
				return err
			}
			if err := out.Sync(); err != nil {
				out.Close()
				return err
			}
		}
		return out.Close()
	})
	if err := mpi.FirstError(errs); err != nil {
		return err
	}
	if withPrep {
		// Post-run collection step of the script.
		ctx := storage.NewContext()
		if _, err := fs.ReadDir(ctx, "/results"); err != nil {
			return fmt.Errorf("eh collect: %w", err)
		}
	}
	return nil
}

// --- Ray Tracing: a frame pipeline — read a frame, render, write the
// output frame. Balanced (ratio 0.94). ---

const rtFrames = 16

func setupRT(fs storage.FileSystem, cfg Config) error {
	cfg = cfg.WithDefaults()
	ctx := storage.NewContext()
	if err := mkdirIfMissing(fs, ctx, "/data"); err != nil {
		return err
	}
	if err := mkdirIfMissing(fs, ctx, "/results"); err != nil {
		return err
	}
	inTotal := cfg.Scale(67.4 * GB)
	per := inTotal / rtFrames
	for fno := 0; fno < rtFrames; fno++ {
		size := per
		if fno == rtFrames-1 {
			size = inTotal - per*(rtFrames-1)
		}
		if err := makeFile(fs, ctx, fmt.Sprintf("/data/frame-%03d.raw", fno), size); err != nil {
			return err
		}
	}
	return nil
}

func runRT(fs storage.FileSystem, cfg Config) error {
	cfg = cfg.WithDefaults()
	inTotal := cfg.Scale(67.4 * GB)
	outTotal := cfg.Scale(71.2 * GB)
	inPer := inTotal / rtFrames
	outPer := outTotal / rtFrames
	errs := mpi.Run(cfg.Ranks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		for fno := 0; fno < rtFrames; fno++ {
			in, err := mpiio.Open(r, fs, fmt.Sprintf("/data/frame-%03d.raw", fno), false, mpiio.Options{})
			if err != nil {
				return err
			}
			frameSize := inPer
			if fno == rtFrames-1 {
				frameSize = inTotal - inPer*(rtFrames-1)
			}
			share := frameSize / int64(r.Size())
			off := int64(r.ID) * share
			if r.ID == r.Size()-1 {
				share = frameSize - off
			}
			if _, err := readShare(in, cfg, off, share); err != nil {
				in.Close()
				return err
			}
			if err := in.Close(); err != nil {
				return err
			}

			out, err := mpiio.Open(r, fs, fmt.Sprintf("/results/frame-%03d.png", fno), true, mpiio.Options{})
			if err != nil {
				return err
			}
			outShare := outPer / int64(r.Size())
			if err := writeShare(out, cfg, int64(r.ID)*outShare, outShare); err != nil {
				out.Close()
				return err
			}
			if err := out.Close(); err != nil {
				return err
			}
		}
		return nil
	})
	return mpi.FirstError(errs)
}
