package workloads

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fs/posixfs"
	"repro/internal/fs/relaxedfs"
	"repro/internal/sparksim"
	"repro/internal/storage"
	"repro/internal/trace"
)

// testCfg scales aggressively (factor 2^16: GB -> tens of KB) so unit tests
// stay fast; the benchmark harness uses the default 1024.
func testCfg() Config {
	return Config{Factor: 1 << 16, Chunk: 512, Ranks: 4, Executors: 2}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Factor != 1024 || c.Chunk != 4096 || c.Ranks != 8 || c.Executors != 4 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestScale(t *testing.T) {
	c := Config{Factor: 1000}.WithDefaults()
	if got := c.Scale(5e9); got != 5e6 {
		t.Fatalf("Scale(5GB) = %d", got)
	}
	if got := c.Scale(10); got != 1 {
		t.Fatalf("Scale floor = %d, want 1", got)
	}
}

func TestTableIReferenceData(t *testing.T) {
	if len(TableI) != 9 {
		t.Fatalf("Table I has %d rows, want 9", len(TableI))
	}
	hpc, spark := 0, 0
	for _, r := range TableI {
		switch r.Platform {
		case "HPC / MPI":
			hpc++
		case "Cloud / Spark":
			spark++
		default:
			t.Fatalf("unknown platform %q", r.Platform)
		}
	}
	if hpc != 4 || spark != 5 {
		t.Fatalf("platform split = %d/%d, want 4/5", hpc, spark)
	}
	if _, err := TableIByApp("BLAST"); err != nil {
		t.Fatal(err)
	}
	if _, err := TableIByApp("nope"); err == nil {
		t.Fatal("unknown app lookup succeeded")
	}
}

func TestHPCAppRegistry(t *testing.T) {
	apps := HPCApps()
	if len(apps) != 5 {
		t.Fatalf("HPCApps returned %d, want 5 (Figure 1 bars)", len(apps))
	}
	names := map[string]bool{}
	for _, a := range apps {
		names[a.Name] = true
	}
	for _, want := range []string{"BLAST", "MOM", "EH", "EH / MPI", "RT"} {
		if !names[want] {
			t.Fatalf("missing app %q", want)
		}
	}
	if _, err := HPCAppByName("MOM"); err != nil {
		t.Fatal(err)
	}
	if _, err := HPCAppByName("nope"); err == nil {
		t.Fatal("unknown HPC app lookup succeeded")
	}
}

// runHPC sets up and runs one HPC app under the tracer, returning its
// census.
func runHPC(t *testing.T, name string) *trace.Census {
	t.Helper()
	app, err := HPCAppByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	fs := posixfs.NewStrict(cluster.New(cluster.Config{Nodes: 5, Seed: 1}))
	if err := app.Setup(fs, cfg); err != nil {
		t.Fatalf("setup: %v", err)
	}
	census := trace.NewCensus()
	if err := app.Run(trace.Wrap(fs, census), cfg); err != nil {
		t.Fatalf("run: %v", err)
	}
	return census
}

func TestBLASTReadIntensive(t *testing.T) {
	c := runHPC(t, "BLAST")
	if got := c.Profile(); got != "Read-intensive" {
		t.Fatalf("BLAST profile = %q (%s)", got, c)
	}
	if c.RWRatio() < 100 {
		t.Fatalf("BLAST R/W ratio = %.1f, want >> 100", c.RWRatio())
	}
	if got := c.KindCount(storage.CallDirOp); got != 0 {
		t.Fatalf("BLAST issued %d dir ops", got)
	}
}

func TestMOMReadIntensive(t *testing.T) {
	c := runHPC(t, "MOM")
	if got := c.Profile(); got != "Read-intensive" {
		t.Fatalf("MOM profile = %q (%s)", got, c)
	}
	r := c.RWRatio()
	if r < 3 || r > 12 {
		t.Fatalf("MOM R/W ratio = %.2f, want near the paper's 6.01", r)
	}
}

func TestEHWriteIntensiveWithPrepCalls(t *testing.T) {
	c := runHPC(t, "EH")
	if got := c.Profile(); got != "Write-intensive" {
		t.Fatalf("EH profile = %q (%s)", got, c)
	}
	// The prep script's listings and xattr reads appear — the small
	// Figure 1 slivers.
	if got := c.KindCount(storage.CallDirOp); got == 0 {
		t.Fatal("EH prep produced no directory operations")
	}
	if got := c.KindCount(storage.CallOther); got == 0 {
		t.Fatal("EH prep produced no 'other' calls")
	}
}

func TestEHMPIPureFileIO(t *testing.T) {
	c := runHPC(t, "EH / MPI")
	if got := c.KindCount(storage.CallDirOp); got != 0 {
		t.Fatalf("EH/MPI issued %d dir ops, want 0", got)
	}
	if got := c.KindCount(storage.CallOther); got != 0 {
		t.Fatalf("EH/MPI issued %d other calls, want 0", got)
	}
	if got := c.Profile(); got != "Write-intensive" {
		t.Fatalf("EH/MPI profile = %q", got)
	}
}

func TestRTBalanced(t *testing.T) {
	c := runHPC(t, "RT")
	if got := c.Profile(); got != "Balanced" {
		t.Fatalf("RT profile = %q (%s)", got, c)
	}
	r := c.RWRatio()
	if r < 0.7 || r > 1.4 {
		t.Fatalf("RT ratio = %.2f, want near the paper's 0.94", r)
	}
}

func TestHPCVolumesTrackTableI(t *testing.T) {
	cfg := testCfg()
	for _, name := range []string{"BLAST", "MOM", "EH / MPI", "RT"} {
		c := runHPC(t, name)
		refName := name
		if name == "EH / MPI" {
			refName = "EH"
		}
		ref, err := TableIByApp(refName)
		if err != nil {
			t.Fatal(err)
		}
		wantRead := float64(cfg.Scale(ref.ReadBytes))
		gotRead := float64(c.BytesRead())
		if relErr(gotRead, wantRead) > 0.15 {
			t.Fatalf("%s: bytes read = %.0f, want ≈ %.0f", name, gotRead, wantRead)
		}
		wantWrite := float64(cfg.Scale(ref.WriteBytes))
		gotWrite := float64(c.BytesWritten())
		if relErr(gotWrite, wantWrite) > 0.15 {
			t.Fatalf("%s: bytes written = %.0f, want ≈ %.0f", name, gotWrite, wantWrite)
		}
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}

func TestSparkAppRegistry(t *testing.T) {
	apps := SparkApps(testCfg())
	if len(apps) != 5 {
		t.Fatalf("SparkApps returned %d, want 5", len(apps))
	}
	totalTasks := 0
	for _, a := range apps {
		totalTasks += a.App.OutputTasks
	}
	// Σ(4+T) over 5 apps = 43 requires ΣT = 23 (Table II).
	if totalTasks != 23 {
		t.Fatalf("Σ output tasks = %d, want 23 for the Table II census", totalTasks)
	}
	if _, err := SparkAppByName(testCfg(), "Grep"); err != nil {
		t.Fatal(err)
	}
	if _, err := SparkAppByName(testCfg(), "nope"); err == nil {
		t.Fatal("unknown Spark app lookup succeeded")
	}
}

func sparkEnv(t *testing.T) (storage.FileSystem, *trace.Census, *sparksim.Engine) {
	t.Helper()
	cfg := testCfg()
	fs := relaxedfs.New(cluster.New(cluster.Config{Nodes: 5, Seed: 1}), relaxedfs.Config{BlockSize: 1 << 20})
	if err := SetupSparkEnv(fs); err != nil {
		t.Fatal(err)
	}
	census := trace.NewCensus()
	traced := trace.Wrap(fs, census)
	e := sparksim.NewEngine(traced, cfg.Executors)
	e.SetChunkSize(cfg.Chunk)
	return fs, census, e
}

func TestSparkAppProfiles(t *testing.T) {
	cfg := testCfg()
	want := map[string]string{
		"Sort":      "Balanced",
		"CC":        "Read-intensive",
		"Grep":      "Read-intensive",
		"DT":        "Read-intensive",
		"Tokenizer": "Write-intensive",
	}
	for _, app := range SparkApps(cfg) {
		fs, census, e := sparkEnv(t)
		if err := SetupSparkApp(fs, app); err != nil {
			t.Fatalf("%s setup: %v", app.Name, err)
		}
		census.MarkInputDir(app.App.InputDir)
		if _, err := RunSpark(e, storage.NewContext(), app); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if got := census.Profile(); got != want[app.Name] {
			t.Fatalf("%s profile = %q, want %q (%s)", app.Name, got, want[app.Name], census)
		}
	}
}

func TestSparkDTReadsInputThreeTimes(t *testing.T) {
	cfg := testCfg()
	app, _ := SparkAppByName(cfg, "DT")
	if app.App.Passes != 3 {
		t.Fatalf("DT passes = %d, want 3 (iterative training)", app.App.Passes)
	}
	fs, census, e := sparkEnv(t)
	if err := SetupSparkApp(fs, app); err != nil {
		t.Fatal(err)
	}
	if _, err := RunSpark(e, storage.NewContext(), app); err != nil {
		t.Fatal(err)
	}
	wantRead := float64(cfg.Scale(59.1 * GB))
	if relErr(float64(census.BytesRead()), wantRead) > 0.15 {
		t.Fatalf("DT bytes read = %d, want ≈ %.0f", census.BytesRead(), wantRead)
	}
}

// The Table II census across all five applications: 43 mkdir, 43 rmdir,
// 5 input-directory listings, 0 other listings.
func TestTableIICensusAcrossAllApps(t *testing.T) {
	cfg := testCfg()
	fs, census, e := sparkEnv(t)
	for _, app := range SparkApps(cfg) {
		if err := SetupSparkApp(fs, app); err != nil {
			t.Fatalf("%s setup: %v", app.Name, err)
		}
		census.MarkInputDir(app.App.InputDir)
	}
	for _, app := range SparkApps(cfg) {
		if _, err := RunSpark(e, storage.NewContext(), app); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
	}
	if got := census.OpCount(storage.OpMkdir); got != 43 {
		t.Fatalf("mkdir = %d, want 43", got)
	}
	if got := census.OpCount(storage.OpRmdir); got != 43 {
		t.Fatalf("rmdir = %d, want 43", got)
	}
	if got := census.OpendirInput(); got != 5 {
		t.Fatalf("opendir(input) = %d, want 5", got)
	}
	if got := census.OpendirOther(); got != 0 {
		t.Fatalf("opendir(other) = %d, want 0", got)
	}
}
