package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 10000 {
		t.Fatalf("concurrent increments lost: %d", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != 3*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Sum() != 6*time.Millisecond {
		t.Fatalf("Sum = %v", h.Sum())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatalf("negative observation mishandled: min=%v count=%d", h.Min(), h.Count())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if q := h.Quantile(0); q != h.Min() {
		t.Fatalf("Quantile(0) = %v, want min %v", q, h.Min())
	}
	if q := h.Quantile(1); q != h.Max() {
		t.Fatalf("Quantile(1) = %v, want max %v", q, h.Max())
	}
	p50 := h.Quantile(0.5)
	if p50 < 400*time.Microsecond || p50 > 1100*time.Microsecond {
		t.Fatalf("p50 = %v, implausible for uniform 1..1000µs", p50)
	}
}

// Property: quantiles are monotone in q and bounded by [min, max].
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Observe(time.Duration(v) * time.Microsecond)
		}
		a, b := float64(qa%101)/100, float64(qb%101)/100
		if a > b {
			a, b = b, a
		}
		pa, pb := h.Quantile(a), h.Quantile(b)
		return pa <= pb && pa >= h.Min() && pb <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotString(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("snapshot count = %d", s.Count)
	}
	if !strings.Contains(s.String(), "n=1") {
		t.Fatalf("String() = %q, missing count", s.String())
	}
}

func TestRegistryReuse(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("reads")
	c1.Inc()
	if got := r.Counter("reads").Value(); got != 1 {
		t.Fatalf("registry did not reuse counter: %d", got)
	}
	h1 := r.Histogram("lat")
	h1.Observe(time.Millisecond)
	if got := r.Histogram("lat").Count(); got != 1 {
		t.Fatalf("registry did not reuse histogram: %d", got)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta")
	r.Counter("alpha")
	r.Histogram("mid")
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("CounterNames = %v", names)
	}
	if h := r.HistogramNames(); len(h) != 1 || h[0] != "mid" {
		t.Fatalf("HistogramNames = %v", h)
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(7)
	r.Histogram("lat").Observe(time.Second)
	d := r.Dump()
	if !strings.Contains(d, "ops") || !strings.Contains(d, "7") || !strings.Contains(d, "lat") {
		t.Fatalf("Dump missing content:\n%s", d)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1e6, time.Second); got != 1 {
		t.Fatalf("Throughput(1MB, 1s) = %v, want 1", got)
	}
	if got := Throughput(100, 0); got != 0 {
		t.Fatalf("Throughput with zero duration = %v, want 0", got)
	}
	if got := Throughput(2e8, 2*time.Second); got != 100 {
		t.Fatalf("Throughput(200MB, 2s) = %v, want 100", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 4000 {
		t.Fatalf("concurrent Observe lost samples: %d", got)
	}
}
