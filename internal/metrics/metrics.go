// Package metrics provides the measurement primitives used by the tracer
// and the benchmark harness: counters, byte accumulators, and log-scaled
// latency histograms with percentile queries.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Counter is a concurrency-safe monotonically increasing counter.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Add increments the counter by d (d may be any non-negative value).
func (c *Counter) Add(d int64) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Histogram records durations into logarithmic buckets (factor ~2 per
// bucket, from 1µs to ~1h) plus exact min/max/sum, supporting approximate
// percentile queries. The zero value is ready to use.
type Histogram struct {
	mu      sync.Mutex
	buckets [44]int64 // bucket i covers [2^i µs, 2^(i+1) µs)
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := int(math.Log2(float64(us)))
	if b < 0 {
		b = 0
	}
	if b >= 44 {
		b = 43
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketFor(d)]++
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average observation, or zero when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation, or zero when empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) based on
// bucket boundaries; exact min/max are used at the extremes.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(math.Ceil(q * float64(h.count)))
	var cum int64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			// Upper edge of bucket i: 2^(i+1) µs, clamped to observed max.
			edge := time.Duration(1<<uint(i+1)) * time.Microsecond
			if edge > h.max {
				edge = h.max
			}
			return edge
		}
	}
	return h.max
}

// Snapshot is an immutable summary of a histogram.
type Snapshot struct {
	Count          int64
	Min, Mean, Max time.Duration
	P50, P95, P99  time.Duration
	Sum            time.Duration
}

// Snapshot captures the current summary statistics.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Min:   h.Min(),
		Mean:  h.Mean(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Sum:   h.Sum(),
	}
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d min=%v mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Min, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Registry is a named collection of counters and histograms, used by the
// tracer to aggregate per-operation statistics.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		hists: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Histogram returns the histogram with the given name, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterNames returns all counter names in sorted order.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.ctrs))
	for n := range r.ctrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns all histogram names in sorted order.
func (r *Registry) HistogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Dump renders every metric, one per line, for diagnostics.
func (r *Registry) Dump() string {
	var b strings.Builder
	for _, n := range r.CounterNames() {
		fmt.Fprintf(&b, "counter %-32s %d\n", n, r.Counter(n).Value())
	}
	for _, n := range r.HistogramNames() {
		fmt.Fprintf(&b, "hist    %-32s %s\n", n, r.Histogram(n).Snapshot())
	}
	return b.String()
}

// Throughput converts a byte count over a duration into MB/s (decimal
// megabytes, matching the paper's units). Returns 0 for non-positive
// durations.
func Throughput(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / d.Seconds()
}
