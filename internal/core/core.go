// Package core is the public face of the repository: the converged storage
// platform the paper argues for. One Platform bundles a simulated cluster
// with a flat-namespace blob store and exposes every access layer the paper
// discusses:
//
//   - the native blob API (storage.BlobStore) for new HPC and Big Data
//     software stacks — Section III's proposal;
//   - a POSIX-IO file-system view over the same blobs (blobfs) for legacy
//     applications — the CephFS-over-RADOS argument;
//   - higher-level abstractions built on blobs: a key-value store and a
//     time-series database — Section I's motivation;
//   - tracing: any file-system view can be wrapped with the storage-call
//     interceptor to measure an application's call mix, the paper's
//     Section IV methodology.
//
// Examples under examples/ exercise exactly this API.
package core

import (
	"net/http"
	"time"

	"repro/internal/blob"
	"repro/internal/blobfs"
	"repro/internal/cluster"
	"repro/internal/kvstore"
	"repro/internal/s3gw"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/tsdb"
)

// Options configures a Platform.
type Options struct {
	// Nodes is the simulated cluster size. Default 8 (the paper's storage
	// node count).
	Nodes int
	// Seed drives all simulated randomness; runs with equal seeds are
	// reproducible. Default 1.
	Seed uint64
	// Blob tunes the blob store (chunk size, replication, virtual nodes).
	Blob blob.Config
}

// Platform is a converged storage deployment: one blob store, many views.
type Platform struct {
	cluster *cluster.Cluster
	store   *blob.Store
}

// New builds a platform.
func New(opts Options) *Platform {
	if opts.Nodes <= 0 {
		opts.Nodes = 8
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	c := cluster.New(cluster.Config{Nodes: opts.Nodes, Seed: opts.Seed})
	return &Platform{cluster: c, store: blob.New(c, opts.Blob)}
}

// Cluster returns the simulated hardware substrate.
func (p *Platform) Cluster() *cluster.Cluster { return p.cluster }

// Blob returns the native blob API — Section III's primitive set.
func (p *Platform) Blob() storage.BlobStore { return p.store }

// BlobStore returns the concrete store, for failure injection and
// invariant checking in tests and experiments.
func (p *Platform) BlobStore() *blob.Store { return p.store }

// POSIX returns a POSIX-IO file-system view over the platform's blobs, for
// unmodified legacy applications.
func (p *Platform) POSIX() storage.FileSystem { return blobfs.New(p.store) }

// TracedPOSIX returns a POSIX view wrapped in the storage-call interceptor
// together with its census.
func (p *Platform) TracedPOSIX() (storage.FileSystem, *trace.Census) {
	census := trace.NewCensus()
	return trace.Wrap(blobfs.New(p.store), census), census
}

// KV opens a key-value store named prefix over the platform's blobs.
func (p *Platform) KV(ctx *storage.Context, prefix string, shards int) (*kvstore.Store, error) {
	return kvstore.Open(ctx, p.store, prefix, shards)
}

// TSDB opens a time-series database named prefix over the platform's
// blobs.
func (p *Platform) TSDB(prefix string, window time.Duration) (*tsdb.DB, error) {
	return tsdb.Open(p.store, prefix, window)
}

// NewContext returns a fresh client context (virtual clock + identity).
func (p *Platform) NewContext() *storage.Context { return storage.NewContext() }

// S3 returns an S3-flavoured HTTP object interface over the platform's
// blobs — the cloud-side access path (pwalrus-style) alongside the POSIX
// and native views.
func (p *Platform) S3() http.Handler { return s3gw.New(p.store) }

// MappingReport summarizes how a traced application's calls map onto the
// blob primitive set — the quantitative form of the paper's Section III/IV
// argument.
type MappingReport struct {
	// TotalCalls is every storage call observed.
	TotalCalls int64
	// DirectCalls map one-to-one onto blob primitives (file operations).
	DirectCalls int64
	// EmulatedCalls need scan-based emulation (directory operations) or
	// client-side state (xattr, chmod).
	EmulatedCalls int64
	// DirectPercent is DirectCalls / TotalCalls * 100.
	DirectPercent float64
}

// Mapping computes the report from a census.
func Mapping(c *trace.Census) MappingReport {
	total := c.TotalCalls()
	emulated := c.UnmappableCalls()
	r := MappingReport{
		TotalCalls:    total,
		DirectCalls:   total - emulated,
		EmulatedCalls: emulated,
	}
	if total > 0 {
		r.DirectPercent = 100 * float64(r.DirectCalls) / float64(total)
	}
	return r
}
