package core

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/storage"
	"repro/internal/tsdb"
)

func TestNewDefaults(t *testing.T) {
	p := New(Options{})
	if p.Cluster().Size() != 8 {
		t.Fatalf("default cluster size = %d, want 8", p.Cluster().Size())
	}
	if p.Blob() == nil || p.BlobStore() == nil {
		t.Fatal("blob accessors nil")
	}
}

func TestBlobAndPOSIXShareData(t *testing.T) {
	// The convergence property: a blob written through the native API is a
	// file through the POSIX view, and vice versa.
	p := New(Options{Nodes: 4})
	ctx := p.NewContext()

	if err := p.Blob().CreateBlob(ctx, "shared.dat"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Blob().WriteBlob(ctx, "shared.dat", 0, []byte("via blob api")); err != nil {
		t.Fatal(err)
	}

	fs := p.POSIX()
	h, err := fs.Open(ctx, "/shared.dat")
	if err != nil {
		t.Fatalf("POSIX view cannot open blob: %v", err)
	}
	buf := make([]byte, 12)
	n, err := h.ReadAt(ctx, 0, buf)
	if err != nil || n != 12 || string(buf) != "via blob api" {
		t.Fatalf("POSIX read = (%d, %v, %q)", n, err, buf)
	}
	h.Close(ctx)

	// And the other way round.
	h2, err := fs.Create(ctx, "/from-posix.txt")
	if err != nil {
		t.Fatal(err)
	}
	h2.WriteAt(ctx, 0, []byte("via posix"))
	h2.Close(ctx)
	size, err := p.Blob().BlobSize(ctx, "from-posix.txt")
	if err != nil || size != 9 {
		t.Fatalf("blob view of POSIX file = (%d, %v)", size, err)
	}
}

func TestTracedPOSIX(t *testing.T) {
	p := New(Options{Nodes: 4})
	fs, census := p.TracedPOSIX()
	ctx := p.NewContext()
	h, err := fs.Create(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	h.WriteAt(ctx, 0, []byte("abc"))
	h.Close(ctx)
	if census.TotalCalls() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	if census.BytesWritten() != 3 {
		t.Fatalf("bytes written = %d", census.BytesWritten())
	}
}

func TestKVAndTSDBOnSamePlatform(t *testing.T) {
	p := New(Options{Nodes: 4})
	ctx := p.NewContext()

	kv, err := p.KV(ctx, "app-kv", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(ctx, "config", []byte("value")); err != nil {
		t.Fatal(err)
	}
	got, err := kv.Get(ctx, "config")
	if err != nil || string(got) != "value" {
		t.Fatalf("KV = (%q, %v)", got, err)
	}

	db, err := p.TSDB("app-metrics", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2017, 9, 5, 0, 0, 0, 0, time.UTC)
	if err := db.Append(ctx, "lat", tsdb.Point{T: t0, V: 1.0}); err != nil {
		t.Fatal(err)
	}
	pts, err := db.Query(ctx, "lat", t0, t0.Add(time.Minute))
	if err != nil || len(pts) != 1 {
		t.Fatalf("TSDB = (%d, %v)", len(pts), err)
	}

	// Both abstractions live in one flat namespace, visible via Scan.
	infos, err := p.Blob().Scan(ctx, "app-")
	if err != nil || len(infos) < 5 {
		t.Fatalf("Scan over abstractions = (%d, %v)", len(infos), err)
	}
}

func TestMappingReport(t *testing.T) {
	p := New(Options{Nodes: 4})
	fs, census := p.TracedPOSIX()
	ctx := p.NewContext()
	fs.Mkdir(ctx, "/d") // emulated
	h, _ := fs.Create(ctx, "/d/f")
	h.WriteAt(ctx, 0, []byte("x")) // direct
	h.Close(ctx)
	fs.ReadDir(ctx, "/d") // emulated

	r := Mapping(census)
	if r.TotalCalls != 5 {
		t.Fatalf("TotalCalls = %d (mkdir, create, write, close, opendir)", r.TotalCalls)
	}
	if r.EmulatedCalls != 2 {
		t.Fatalf("EmulatedCalls = %d, want 2", r.EmulatedCalls)
	}
	if r.DirectCalls != 3 {
		t.Fatalf("DirectCalls = %d, want 3", r.DirectCalls)
	}
	if r.DirectPercent < 59 || r.DirectPercent > 61 {
		t.Fatalf("DirectPercent = %.2f", r.DirectPercent)
	}
}

func TestMappingEmptyCensus(t *testing.T) {
	p := New(Options{Nodes: 2})
	_, census := p.TracedPOSIX()
	r := Mapping(census)
	if r.TotalCalls != 0 || r.DirectPercent != 0 {
		t.Fatalf("empty mapping = %+v", r)
	}
}

func TestReproducibleSeeds(t *testing.T) {
	run := func() int64 {
		p := New(Options{Nodes: 4, Seed: 99})
		ctx := p.NewContext()
		p.Blob().CreateBlob(ctx, "k")
		p.Blob().WriteBlob(ctx, "k", 0, make([]byte, 1<<16))
		return int64(ctx.Clock.Now())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different virtual times: %d vs %d", a, b)
	}
}

func TestFailureInjectionThroughFacade(t *testing.T) {
	p := New(Options{Nodes: 4, Blob: blob.Config{Replication: 3}})
	ctx := p.NewContext()
	p.Blob().CreateBlob(ctx, "resilient")
	p.Blob().WriteBlob(ctx, "resilient", 0, []byte("data"))
	p.BlobStore().SetDown(0, true)
	defer p.BlobStore().SetDown(0, false)
	// Reads still work unless node 0 held every replica.
	buf := make([]byte, 4)
	if _, err := p.Blob().ReadBlob(ctx, "resilient", 0, buf); err != nil &&
		!errors.Is(err, storage.ErrStaleHandle) && !errors.Is(err, storage.ErrUnavailable) &&
		!errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("unexpected error class: %v", err)
	}
	if msg := p.BlobStore().CheckInvariants(); msg != "" {
		t.Fatalf("invariants violated: %s", msg)
	}
}

func TestS3HandlerOverPlatform(t *testing.T) {
	p := New(Options{Nodes: 4})
	srv := httptest.NewServer(p.S3())
	defer srv.Close()

	req, err := http.NewRequest(http.MethodPut, srv.URL+"/via-s3", strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	ctx := p.NewContext()
	size, err := p.Blob().BlobSize(ctx, "via-s3")
	if err != nil || size != 7 {
		t.Fatalf("blob view of S3 object = (%d, %v)", size, err)
	}
}
