package h5

import (
	"testing"
	"testing/quick"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// TestHyperslabMatchesArrayModel writes random 2D hyperslabs through h5
// and mirrors them into a plain in-memory array; full-dataset reads must
// agree exactly, and random sub-slab reads must return the model's values.
func TestHyperslabMatchesArrayModel(t *testing.T) {
	const rows, cols = 12, 17

	type slab struct {
		R0, C0, NR, NC uint8
		Seed           uint16
	}
	f := func(slabs []slab) bool {
		if len(slabs) > 24 {
			slabs = slabs[:24]
		}
		fs := posixBackend()
		model := make([]float64, rows*cols)
		ok := true
		errs := mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
			file, err := Create(r, fs, "/prop.h5")
			if err != nil {
				return err
			}
			ds, err := file.CreateDataset("m", Float64, []int64{rows, cols})
			if err != nil {
				return err
			}
			for _, s := range slabs {
				r0 := int64(s.R0) % rows
				c0 := int64(s.C0) % cols
				nr := 1 + int64(s.NR)%(rows-r0)
				nc := 1 + int64(s.NC)%(cols-c0)
				data := make([]float64, nr*nc)
				for i := range data {
					data[i] = float64(s.Seed)*1000 + float64(i)
				}
				if err := ds.WriteFloat64([]int64{r0, c0}, []int64{nr, nc}, data); err != nil {
					return err
				}
				for rr := int64(0); rr < nr; rr++ {
					for cc := int64(0); cc < nc; cc++ {
						model[(r0+rr)*cols+(c0+cc)] = data[rr*nc+cc]
					}
				}
			}
			if err := file.Close(); err != nil {
				return err
			}

			read, err := Open(r, fs, "/prop.h5")
			if err != nil {
				return err
			}
			defer read.Close()
			ds2, err := read.Dataset("m")
			if err != nil {
				return err
			}
			full := make([]float64, rows*cols)
			if err := ds2.ReadFloat64([]int64{0, 0}, []int64{rows, cols}, full); err != nil {
				return err
			}
			for i := range full {
				if full[i] != model[i] {
					ok = false
					return nil
				}
			}
			// A few deterministic sub-slab probes.
			probe := make([]float64, 2*3)
			if err := ds2.ReadFloat64([]int64{3, 5}, []int64{2, 3}, probe); err != nil {
				return err
			}
			for rr := int64(0); rr < 2; rr++ {
				for cc := int64(0); cc < 3; cc++ {
					if probe[rr*3+cc] != model[(3+rr)*cols+(5+cc)] {
						ok = false
						return nil
					}
				}
			}
			return nil
		})
		if err := mpi.FirstError(errs); err != nil {
			t.Logf("run error: %v", err)
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
