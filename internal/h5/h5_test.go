package h5

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/blob"
	"repro/internal/blobfs"
	"repro/internal/cluster"
	"repro/internal/fs/posixfs"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
)

func posixBackend() storage.FileSystem {
	return posixfs.NewStrict(cluster.New(cluster.Config{Nodes: 5, Seed: 1}))
}

func blobBackend() storage.FileSystem {
	return blobfs.New(blob.New(cluster.New(cluster.Config{Nodes: 5, Seed: 1}),
		blob.Config{ChunkSize: 1 << 16, Replication: 2}))
}

func TestDTypeHelpers(t *testing.T) {
	if Float64.Size() != 8 || Bytes.Size() != 1 || DType(99).Size() != 0 {
		t.Fatal("DType.Size wrong")
	}
	if Float64.String() != "float64" || Bytes.String() != "bytes" {
		t.Fatal("DType.String wrong")
	}
}

func TestCreateWriteReadRoundTrip1D(t *testing.T) {
	fs := posixBackend()
	errs := mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Create(r, fs, "/out.h5")
		if err != nil {
			return err
		}
		ds, err := f.CreateDataset("temperature", Float64, []int64{100})
		if err != nil {
			return err
		}
		in := make([]float64, 100)
		for i := range in {
			in[i] = float64(i) * 0.5
		}
		if err := ds.WriteFloat64([]int64{0}, []int64{100}, in); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}

		g, err := Open(r, fs, "/out.h5")
		if err != nil {
			return err
		}
		defer g.Close()
		ds2, err := g.Dataset("temperature")
		if err != nil {
			return err
		}
		out := make([]float64, 100)
		if err := ds2.ReadFloat64([]int64{0}, []int64{100}, out); err != nil {
			return err
		}
		for i := range out {
			if out[i] != in[i] {
				return fmt.Errorf("element %d = %v, want %v", i, out[i], in[i])
			}
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestParallel2DSlabWrites(t *testing.T) {
	// Classic climate-output pattern: a 2D field decomposed by rows across
	// ranks, each rank writing its slab; reader verifies the full grid.
	const ranks = 4
	const rows, cols = 16, 32
	fs := posixBackend()
	errs := mpi.Run(ranks, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Create(r, fs, "/grid.h5")
		if err != nil {
			return err
		}
		ds, err := f.CreateDataset("sst", Float64, []int64{rows, cols})
		if err != nil {
			return err
		}
		myRows := int64(rows / ranks)
		start := int64(r.ID) * myRows
		slab := make([]float64, myRows*cols)
		for i := range slab {
			row := start + int64(i)/cols
			col := int64(i) % cols
			slab[i] = float64(row*1000 + col)
		}
		if err := ds.WriteFloat64([]int64{start, 0}, []int64{myRows, cols}, slab); err != nil {
			return err
		}
		return f.Close()
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}

	errs = mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Open(r, fs, "/grid.h5")
		if err != nil {
			return err
		}
		defer f.Close()
		ds, err := f.Dataset("sst")
		if err != nil {
			return err
		}
		if sh := ds.Shape(); sh[0] != rows || sh[1] != cols {
			return fmt.Errorf("shape = %v", sh)
		}
		full := make([]float64, rows*cols)
		if err := ds.ReadFloat64([]int64{0, 0}, []int64{rows, cols}, full); err != nil {
			return err
		}
		for row := int64(0); row < rows; row++ {
			for col := int64(0); col < cols; col++ {
				if got, want := full[row*cols+col], float64(row*1000+col); got != want {
					return fmt.Errorf("(%d,%d) = %v, want %v", row, col, got, want)
				}
			}
		}
		// Interior sub-slab.
		sub := make([]float64, 2*3)
		if err := ds.ReadFloat64([]int64{5, 10}, []int64{2, 3}, sub); err != nil {
			return err
		}
		if sub[0] != 5010 || sub[5] != 6012 {
			return fmt.Errorf("sub-slab = %v", sub)
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestAttributes(t *testing.T) {
	fs := posixBackend()
	errs := mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Create(r, fs, "/a.h5")
		if err != nil {
			return err
		}
		if err := f.SetAttr("model", "ECOHAM-5"); err != nil {
			return err
		}
		ds, err := f.CreateDataset("d", Bytes, []int64{8})
		if err != nil {
			return err
		}
		if err := ds.SetAttr("units", "kg/m3"); err != nil {
			return err
		}
		if err := ds.WriteBytes([]int64{0}, []int64{8}, []byte("12345678")); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}

		g, err := Open(r, fs, "/a.h5")
		if err != nil {
			return err
		}
		defer g.Close()
		if v, ok := g.Attr("model"); !ok || v != "ECOHAM-5" {
			return fmt.Errorf("file attr = (%q, %v)", v, ok)
		}
		ds2, err := g.Dataset("d")
		if err != nil {
			return err
		}
		if v, ok := ds2.Attr("units"); !ok || v != "kg/m3" {
			return fmt.Errorf("dataset attr = (%q, %v)", v, ok)
		}
		if err := g.SetAttr("x", "y"); !errors.Is(err, storage.ErrReadOnly) {
			return fmt.Errorf("SetAttr on read-only file: %v", err)
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestValidationErrors(t *testing.T) {
	fs := posixBackend()
	errs := mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Create(r, fs, "/v.h5")
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.CreateDataset("", Float64, []int64{4}); !errors.Is(err, storage.ErrInvalidArg) {
			return fmt.Errorf("empty name: %v", err)
		}
		if _, err := f.CreateDataset("d", Float64, []int64{0}); !errors.Is(err, storage.ErrInvalidArg) {
			return fmt.Errorf("zero dim: %v", err)
		}
		ds, err := f.CreateDataset("d", Float64, []int64{4, 4})
		if err != nil {
			return err
		}
		if _, err := f.CreateDataset("d", Float64, []int64{4}); !errors.Is(err, storage.ErrExists) {
			return fmt.Errorf("duplicate dataset: %v", err)
		}
		if _, err := f.Dataset("ghost"); !errors.Is(err, storage.ErrNotFound) {
			return fmt.Errorf("missing dataset: %v", err)
		}
		buf := make([]float64, 4)
		if err := ds.WriteFloat64([]int64{0}, []int64{4}, buf); !errors.Is(err, storage.ErrInvalidArg) {
			return fmt.Errorf("rank mismatch: %v", err)
		}
		if err := ds.WriteFloat64([]int64{2, 0}, []int64{3, 4}, make([]float64, 12)); !errors.Is(err, storage.ErrInvalidArg) {
			return fmt.Errorf("out-of-bounds slab: %v", err)
		}
		if err := ds.WriteFloat64([]int64{0, 0}, []int64{2, 2}, buf[:3]); !errors.Is(err, storage.ErrInvalidArg) {
			return fmt.Errorf("short buffer: %v", err)
		}
		if err := ds.WriteBytes([]int64{0, 0}, []int64{1, 1}, []byte{1}); !errors.Is(err, storage.ErrInvalidArg) {
			return fmt.Errorf("type mismatch: %v", err)
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsNonContainer(t *testing.T) {
	fs := posixBackend()
	ctx := storage.NewContext()
	h, _ := fs.Create(ctx, "/junk")
	h.WriteAt(ctx, 0, []byte("definitely not an h5 file, padded well past the superblock"))
	h.Close(ctx)
	errs := mpi.Run(1, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		if _, err := Open(r, fs, "/junk"); !errors.Is(err, storage.ErrInvalidArg) {
			return fmt.Errorf("junk open: %v", err)
		}
		if _, err := Open(r, fs, "/missing"); err == nil {
			return fmt.Errorf("missing open succeeded")
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetsListingAndMultiDataset(t *testing.T) {
	fs := posixBackend()
	errs := mpi.Run(2, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Create(r, fs, "/multi.h5")
		if err != nil {
			return err
		}
		// Both ranks create the same datasets in the same order —
		// deterministic identical allocation.
		for _, name := range []string{"zeta", "alpha", "mid"} {
			if _, err := f.CreateDataset(name, Float64, []int64{8}); err != nil {
				return err
			}
		}
		ds, err := f.Dataset("alpha")
		if err != nil {
			return err
		}
		if r.ID == 0 {
			if err := ds.WriteFloat64([]int64{0}, []int64{8}, []float64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
				return err
			}
		}
		names := f.Datasets()
		if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
			return fmt.Errorf("Datasets = %v", names)
		}
		return f.Close()
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

// The Figure 1 property must survive through the h5 layer: an application
// writing scientific datasets issues no directory operations.
func TestNoDirectoryOpsThroughH5(t *testing.T) {
	census := trace.NewCensus()
	fs := trace.Wrap(posixBackend(), census)
	errs := mpi.Run(4, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Create(r, fs, "/sim-output.h5")
		if err != nil {
			return err
		}
		ds, err := f.CreateDataset("field", Float64, []int64{4, 64})
		if err != nil {
			return err
		}
		row := make([]float64, 64)
		if err := ds.WriteFloat64([]int64{int64(r.ID), 0}, []int64{1, 64}, row); err != nil {
			return err
		}
		return f.Close()
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	if got := census.KindCount(storage.CallDirOp); got != 0 {
		t.Fatalf("h5 layer issued %d directory operations", got)
	}
	if got := census.KindCount(storage.CallOther); got != 0 {
		t.Fatalf("h5 layer issued %d 'other' calls", got)
	}
}

// Convergence: the identical h5 program runs on the blob-backed stack.
func TestH5OnBlobStorage(t *testing.T) {
	fs := blobBackend()
	errs := mpi.Run(2, sim.DefaultCostModel(), func(r *mpi.Rank) error {
		f, err := Create(r, fs, "/blob-output.h5")
		if err != nil {
			return err
		}
		ds, err := f.CreateDataset("v", Float64, []int64{2, 16})
		if err != nil {
			return err
		}
		row := make([]float64, 16)
		for i := range row {
			row[i] = float64(r.ID*100 + i)
		}
		if err := ds.WriteFloat64([]int64{int64(r.ID), 0}, []int64{1, 16}, row); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}

		g, err := Open(r, fs, "/blob-output.h5")
		if err != nil {
			return err
		}
		defer g.Close()
		ds2, err := g.Dataset("v")
		if err != nil {
			return err
		}
		got := make([]float64, 16)
		other := (r.ID + 1) % 2
		if err := ds2.ReadFloat64([]int64{int64(other), 0}, []int64{1, 16}, got); err != nil {
			return err
		}
		for i := range got {
			if got[i] != float64(other*100+i) {
				return fmt.Errorf("cross-rank element %d = %v", i, got[i])
			}
		}
		return nil
	})
	if err := mpi.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}
