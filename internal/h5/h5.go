// Package h5 implements a miniature HDF5-like scientific data format on
// top of the MPI-IO layer — the intermediate-library tier of the paper's
// HPC I/O stack ("applications use intermediate libraries like MPI-IO,
// either directly or via intermediate libraries such as HDF5 or ADIOS",
// Section II-A).
//
// One h5 file is a single container file holding:
//
//   - a superblock (magic, version, catalog location), rewritten on close;
//   - densely allocated n-dimensional datasets (row-major, float64 or
//     byte elements);
//   - string attributes per dataset and per file;
//   - a gob-encoded catalog written at the end of the file on close.
//
// The API is collective in the MPI sense: Create, CreateDataset and Close
// are called by every rank of the communicator; hyperslab reads and writes
// are independent. Because the library sits on mpiio, everything below it
// is ordinary file reads and writes — the package issues no directory
// operations, preserving the Figure 1 property through this higher layer
// too.
package h5

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sort"

	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/storage"
)

// Magic identifies an h5 container.
const Magic = "RH5F"

const superblockSize = 4 + 4 + 8 + 8 // magic | version | catalogOff | catalogLen

// Version of the container format.
const Version = 1

// DType is a dataset element type.
type DType uint32

// Supported element types.
const (
	Float64 DType = iota + 1
	Bytes
)

// Size returns the element size in bytes.
func (t DType) Size() int64 {
	switch t {
	case Float64:
		return 8
	case Bytes:
		return 1
	default:
		return 0
	}
}

// String names the type.
func (t DType) String() string {
	switch t {
	case Float64:
		return "float64"
	case Bytes:
		return "bytes"
	default:
		return fmt.Sprintf("DType(%d)", uint32(t))
	}
}

// datasetMeta is the catalog entry for one dataset.
type datasetMeta struct {
	Name   string
	Type   DType
	Shape  []int64
	Offset int64 // file offset of the dense data region
	Attrs  map[string]string
}

// catalog is the file's table of contents, gob-encoded at close.
type catalog struct {
	Datasets  map[string]*datasetMeta
	FileAttrs map[string]string
	// End is the first free byte (data allocation bump pointer).
	End int64
}

// File is an open h5 container bound to one MPI rank.
type File struct {
	f        *mpiio.File
	rank     *mpi.Rank
	cat      *catalog
	writable bool
	closed   bool
}

// Create makes a new container collectively: every rank of r's
// communicator calls Create with the same path.
func Create(r *mpi.Rank, fs storage.FileSystem, path string) (*File, error) {
	mf, err := mpiio.Open(r, fs, path, true, mpiio.Options{})
	if err != nil {
		return nil, fmt.Errorf("h5: create %q: %w", path, err)
	}
	f := &File{
		f:    mf,
		rank: r,
		cat: &catalog{
			Datasets:  make(map[string]*datasetMeta),
			FileAttrs: make(map[string]string),
			End:       superblockSize,
		},
		writable: true,
	}
	// Rank 0 stamps a provisional superblock so the file is recognizable
	// even before close.
	if r.ID == 0 {
		if err := f.writeSuperblock(0, 0); err != nil {
			mf.Close()
			return nil, err
		}
	}
	return f, nil
}

// Open opens an existing container read-only, collectively.
func Open(r *mpi.Rank, fs storage.FileSystem, path string) (*File, error) {
	mf, err := mpiio.Open(r, fs, path, false, mpiio.Options{})
	if err != nil {
		return nil, fmt.Errorf("h5: open %q: %w", path, err)
	}
	var sb [superblockSize]byte
	if _, err := mf.ReadAt(0, sb[:]); err != nil {
		mf.Close()
		return nil, fmt.Errorf("h5: open %q: superblock: %w", path, err)
	}
	if string(sb[0:4]) != Magic {
		mf.Close()
		return nil, fmt.Errorf("h5: %q is not an h5 container: %w", path, storage.ErrInvalidArg)
	}
	if v := binary.LittleEndian.Uint32(sb[4:8]); v != Version {
		mf.Close()
		return nil, fmt.Errorf("h5: %q: unsupported version %d: %w", path, v, storage.ErrUnsupported)
	}
	catOff := int64(binary.LittleEndian.Uint64(sb[8:16]))
	catLen := int64(binary.LittleEndian.Uint64(sb[16:24]))
	if catOff == 0 || catLen == 0 {
		mf.Close()
		return nil, fmt.Errorf("h5: %q was never closed (no catalog): %w", path, storage.ErrInvalidArg)
	}
	raw := make([]byte, catLen)
	if _, err := mf.ReadAt(catOff, raw); err != nil {
		mf.Close()
		return nil, fmt.Errorf("h5: open %q: catalog: %w", path, err)
	}
	var cat catalog
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&cat); err != nil {
		mf.Close()
		return nil, fmt.Errorf("h5: open %q: decode catalog: %w", path, err)
	}
	return &File{f: mf, rank: r, cat: &cat}, nil
}

func (f *File) writeSuperblock(catOff, catLen int64) error {
	var sb [superblockSize]byte
	copy(sb[0:4], Magic)
	binary.LittleEndian.PutUint32(sb[4:8], Version)
	binary.LittleEndian.PutUint64(sb[8:16], uint64(catOff))
	binary.LittleEndian.PutUint64(sb[16:24], uint64(catLen))
	if _, err := f.f.WriteAt(0, sb[:]); err != nil {
		return fmt.Errorf("h5: superblock: %w", err)
	}
	return nil
}

// CreateDataset allocates a dense n-dimensional dataset. Collective: every
// rank calls it with identical arguments and in the same order, so each
// rank computes the same allocation without communication.
func (f *File) CreateDataset(name string, t DType, shape []int64) (*Dataset, error) {
	if f.closed {
		return nil, storage.ErrClosed
	}
	if !f.writable {
		return nil, fmt.Errorf("h5: dataset %q: %w", name, storage.ErrReadOnly)
	}
	if name == "" || t.Size() == 0 || len(shape) == 0 {
		return nil, fmt.Errorf("h5: dataset %q: %w", name, storage.ErrInvalidArg)
	}
	if _, exists := f.cat.Datasets[name]; exists {
		return nil, fmt.Errorf("h5: dataset %q: %w", name, storage.ErrExists)
	}
	elems := int64(1)
	for _, dim := range shape {
		if dim <= 0 {
			return nil, fmt.Errorf("h5: dataset %q: dimension %d: %w", name, dim, storage.ErrInvalidArg)
		}
		elems *= dim
	}
	meta := &datasetMeta{
		Name:   name,
		Type:   t,
		Shape:  append([]int64(nil), shape...),
		Offset: f.cat.End,
		Attrs:  make(map[string]string),
	}
	f.cat.End += elems * t.Size()
	f.cat.Datasets[name] = meta
	return &Dataset{file: f, meta: meta}, nil
}

// Dataset returns an existing dataset by name.
func (f *File) Dataset(name string) (*Dataset, error) {
	if f.closed {
		return nil, storage.ErrClosed
	}
	meta, ok := f.cat.Datasets[name]
	if !ok {
		return nil, fmt.Errorf("h5: dataset %q: %w", name, storage.ErrNotFound)
	}
	return &Dataset{file: f, meta: meta}, nil
}

// Datasets lists dataset names in sorted order.
func (f *File) Datasets() []string {
	out := make([]string, 0, len(f.cat.Datasets))
	for name := range f.cat.Datasets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SetAttr sets a file-level string attribute (writable files only).
func (f *File) SetAttr(name, value string) error {
	if f.closed {
		return storage.ErrClosed
	}
	if !f.writable {
		return storage.ErrReadOnly
	}
	f.cat.FileAttrs[name] = value
	return nil
}

// Attr reads a file-level attribute.
func (f *File) Attr(name string) (string, bool) {
	v, ok := f.cat.FileAttrs[name]
	return v, ok
}

// Close finishes the container. For writable files every rank syncs its
// data; rank 0 then serializes the catalog, appends it, and rewrites the
// superblock to point at it. Collective.
func (f *File) Close() error {
	if f.closed {
		return storage.ErrClosed
	}
	f.closed = true
	if f.writable {
		if err := f.f.Sync(); err != nil {
			return err
		}
		f.rank.Barrier() // all data flushed before the catalog is placed
		if f.rank.ID == 0 {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(f.cat); err != nil {
				return fmt.Errorf("h5: encode catalog: %w", err)
			}
			catOff := f.cat.End
			if _, err := f.f.WriteAt(catOff, buf.Bytes()); err != nil {
				return fmt.Errorf("h5: write catalog: %w", err)
			}
			if err := f.writeSuperblock(catOff, int64(buf.Len())); err != nil {
				return err
			}
			if err := f.f.Sync(); err != nil {
				return err
			}
		}
	}
	return f.f.Close()
}

// Dataset is a handle to one dataset of an open file.
type Dataset struct {
	file *File
	meta *datasetMeta
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.meta.Name }

// Shape returns a copy of the dataset's dimensions.
func (d *Dataset) Shape() []int64 { return append([]int64(nil), d.meta.Shape...) }

// Type returns the element type.
func (d *Dataset) Type() DType { return d.meta.Type }

// SetAttr sets a dataset-level string attribute.
func (d *Dataset) SetAttr(name, value string) error {
	if d.file.closed {
		return storage.ErrClosed
	}
	if !d.file.writable {
		return storage.ErrReadOnly
	}
	d.meta.Attrs[name] = value
	return nil
}

// Attr reads a dataset-level attribute.
func (d *Dataset) Attr(name string) (string, bool) {
	v, ok := d.meta.Attrs[name]
	return v, ok
}

// slabRuns validates a hyperslab selection and invokes fn once per
// contiguous run with (fileOffsetBytes, elemCount, slabElemIndex).
func (d *Dataset) slabRuns(offset, count []int64, fn func(fileOff, elems, slabIdx int64) error) error {
	shape := d.meta.Shape
	if len(offset) != len(shape) || len(count) != len(shape) {
		return fmt.Errorf("h5: slab rank %d/%d vs dataset rank %d: %w",
			len(offset), len(count), len(shape), storage.ErrInvalidArg)
	}
	total := int64(1)
	for i := range shape {
		if offset[i] < 0 || count[i] <= 0 || offset[i]+count[i] > shape[i] {
			return fmt.Errorf("h5: slab dim %d [%d, %d) outside [0, %d): %w",
				i, offset[i], offset[i]+count[i], shape[i], storage.ErrInvalidArg)
		}
		total *= count[i]
	}
	// Row-major strides.
	strides := make([]int64, len(shape))
	strides[len(shape)-1] = 1
	for i := len(shape) - 2; i >= 0; i-- {
		strides[i] = strides[i+1] * shape[i+1]
	}
	es := d.meta.Type.Size()
	last := len(shape) - 1
	rowElems := count[last]
	// Iterate the outer dims of the slab; each step is one contiguous run
	// of rowElems elements.
	idx := make([]int64, len(shape))
	var slabIdx int64
	for {
		var elemOff int64
		for i := range shape {
			elemOff += (offset[i] + idx[i]) * strides[i]
		}
		if err := fn(d.meta.Offset+elemOff*es, rowElems, slabIdx); err != nil {
			return err
		}
		slabIdx += rowElems
		// Advance the odometer over dims [0, last).
		i := last - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < count[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	if slabIdx != total {
		return fmt.Errorf("h5: internal: visited %d of %d slab elements", slabIdx, total)
	}
	return nil
}

// WriteFloat64 writes a float64 hyperslab. data is in row-major slab
// order and must hold exactly the slab's element count.
func (d *Dataset) WriteFloat64(offset, count []int64, data []float64) error {
	if d.meta.Type != Float64 {
		return fmt.Errorf("h5: %s is %s: %w", d.meta.Name, d.meta.Type, storage.ErrInvalidArg)
	}
	if err := d.checkLen(count, int64(len(data))); err != nil {
		return err
	}
	row := make([]byte, 0, 8*256)
	return d.slabRuns(offset, count, func(fileOff, elems, slabIdx int64) error {
		row = row[:0]
		for i := int64(0); i < elems; i++ {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(data[slabIdx+i]))
			row = append(row, b[:]...)
		}
		_, err := d.file.f.WriteAt(fileOff, row)
		return err
	})
}

// ReadFloat64 reads a float64 hyperslab into data (slab order).
func (d *Dataset) ReadFloat64(offset, count []int64, data []float64) error {
	if d.meta.Type != Float64 {
		return fmt.Errorf("h5: %s is %s: %w", d.meta.Name, d.meta.Type, storage.ErrInvalidArg)
	}
	if err := d.checkLen(count, int64(len(data))); err != nil {
		return err
	}
	return d.slabRuns(offset, count, func(fileOff, elems, slabIdx int64) error {
		raw := make([]byte, 8*elems)
		if _, err := d.file.f.ReadAt(fileOff, raw); err != nil {
			return err
		}
		for i := int64(0); i < elems; i++ {
			data[slabIdx+i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		return nil
	})
}

// WriteBytes writes a byte hyperslab.
func (d *Dataset) WriteBytes(offset, count []int64, data []byte) error {
	if d.meta.Type != Bytes {
		return fmt.Errorf("h5: %s is %s: %w", d.meta.Name, d.meta.Type, storage.ErrInvalidArg)
	}
	if err := d.checkLen(count, int64(len(data))); err != nil {
		return err
	}
	return d.slabRuns(offset, count, func(fileOff, elems, slabIdx int64) error {
		_, err := d.file.f.WriteAt(fileOff, data[slabIdx:slabIdx+elems])
		return err
	})
}

// ReadBytes reads a byte hyperslab.
func (d *Dataset) ReadBytes(offset, count []int64, data []byte) error {
	if d.meta.Type != Bytes {
		return fmt.Errorf("h5: %s is %s: %w", d.meta.Name, d.meta.Type, storage.ErrInvalidArg)
	}
	if err := d.checkLen(count, int64(len(data))); err != nil {
		return err
	}
	return d.slabRuns(offset, count, func(fileOff, elems, slabIdx int64) error {
		_, err := d.file.f.ReadAt(fileOff, data[slabIdx:slabIdx+elems])
		return err
	})
}

func (d *Dataset) checkLen(count []int64, have int64) error {
	want := int64(1)
	for _, c := range count {
		want *= c
	}
	if want != have {
		return fmt.Errorf("h5: slab holds %d elements, buffer has %d: %w",
			want, have, storage.ErrInvalidArg)
	}
	return nil
}
