package trace

import (
	"encoding/json"
	"math"

	"repro/internal/storage"
)

// Export is the machine-readable form of a census, for tooling (cmd/tracer
// -json) and archival of experiment runs.
type Export struct {
	TotalCalls   int64 `json:"total_calls"`
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	// RWRatio is omitted when nothing was written (it would be infinite).
	RWRatio      *float64           `json:"rw_ratio,omitempty"`
	Profile      string             `json:"profile"`
	Kinds        map[string]int64   `json:"kinds"`
	Percent      map[string]float64 `json:"percent"`
	Ops          map[string]int64   `json:"ops"`
	OpendirInput int64              `json:"opendir_input"`
	OpendirOther int64              `json:"opendir_other"`
	Unmappable   int64              `json:"unmappable_calls"`
}

// Export snapshots the census into its serializable form.
func (c *Census) Export() Export {
	e := Export{
		TotalCalls:   c.TotalCalls(),
		BytesRead:    c.BytesRead(),
		BytesWritten: c.BytesWritten(),
		Profile:      c.Profile(),
		Kinds:        make(map[string]int64, storage.NumCallKinds),
		Percent:      make(map[string]float64, storage.NumCallKinds),
		Ops:          make(map[string]int64),
		OpendirInput: c.OpendirInput(),
		OpendirOther: c.OpendirOther(),
		Unmappable:   c.UnmappableCalls(),
	}
	if r := c.RWRatio(); !math.IsInf(r, 0) {
		e.RWRatio = &r
	}
	for k := 0; k < storage.NumCallKinds; k++ {
		kind := storage.CallKind(k)
		e.Kinds[kind.String()] = c.KindCount(kind)
		e.Percent[kind.String()] = c.Percent(kind)
	}
	for _, op := range c.Ops() {
		e.Ops[string(op)] = c.OpCount(op)
	}
	return e
}

// JSON renders the census as indented JSON.
func (c *Census) JSON() ([]byte, error) {
	return json.MarshalIndent(c.Export(), "", "  ")
}
