package trace

import (
	"repro/internal/storage"
)

// FS wraps a storage.FileSystem, recording every call into a Census before
// delegating. It is the Go-interface equivalent of the paper's FUSE
// interceptor (HPC side) and modified HDFS (Spark side).
type FS struct {
	inner  storage.FileSystem
	census *Census
}

// Wrap returns a tracing file system around inner, recording into census.
func Wrap(inner storage.FileSystem, census *Census) *FS {
	return &FS{inner: inner, census: census}
}

// Census returns the census the tracer records into.
func (t *FS) Census() *Census { return t.census }

// Inner returns the wrapped file system.
func (t *FS) Inner() storage.FileSystem { return t.inner }

// Create implements storage.FileSystem.
func (t *FS) Create(ctx *storage.Context, path string) (storage.Handle, error) {
	t.census.Record(storage.OpCreate, path, 0)
	h, err := t.inner.Create(ctx, path)
	if err != nil {
		return nil, err
	}
	return &tracedHandle{inner: h, census: t.census, path: path}, nil
}

// Open implements storage.FileSystem.
func (t *FS) Open(ctx *storage.Context, path string) (storage.Handle, error) {
	t.census.Record(storage.OpOpen, path, 0)
	h, err := t.inner.Open(ctx, path)
	if err != nil {
		return nil, err
	}
	return &tracedHandle{inner: h, census: t.census, path: path}, nil
}

// Unlink implements storage.FileSystem.
func (t *FS) Unlink(ctx *storage.Context, path string) error {
	t.census.Record(storage.OpUnlink, path, 0)
	return t.inner.Unlink(ctx, path)
}

// Stat implements storage.FileSystem.
func (t *FS) Stat(ctx *storage.Context, path string) (storage.FileInfo, error) {
	t.census.Record(storage.OpStat, path, 0)
	return t.inner.Stat(ctx, path)
}

// Truncate implements storage.FileSystem.
func (t *FS) Truncate(ctx *storage.Context, path string, size int64) error {
	t.census.Record(storage.OpTruncate, path, 0)
	return t.inner.Truncate(ctx, path, size)
}

// Rename implements storage.FileSystem.
func (t *FS) Rename(ctx *storage.Context, oldPath, newPath string) error {
	t.census.Record(storage.OpRename, oldPath, 0)
	return t.inner.Rename(ctx, oldPath, newPath)
}

// Mkdir implements storage.FileSystem.
func (t *FS) Mkdir(ctx *storage.Context, path string) error {
	t.census.Record(storage.OpMkdir, path, 0)
	return t.inner.Mkdir(ctx, path)
}

// Rmdir implements storage.FileSystem.
func (t *FS) Rmdir(ctx *storage.Context, path string) error {
	t.census.Record(storage.OpRmdir, path, 0)
	return t.inner.Rmdir(ctx, path)
}

// ReadDir implements storage.FileSystem; the paper's traces call this
// opendir (open + list).
func (t *FS) ReadDir(ctx *storage.Context, path string) ([]storage.DirEntry, error) {
	t.census.Record(storage.OpOpendir, path, 0)
	return t.inner.ReadDir(ctx, path)
}

// Chmod implements storage.FileSystem.
func (t *FS) Chmod(ctx *storage.Context, path string, mode uint32) error {
	t.census.Record(storage.OpChmod, path, 0)
	return t.inner.Chmod(ctx, path, mode)
}

// GetXattr implements storage.FileSystem.
func (t *FS) GetXattr(ctx *storage.Context, path, name string) (string, error) {
	t.census.Record(storage.OpGetXattr, path, 0)
	return t.inner.GetXattr(ctx, path, name)
}

// SetXattr implements storage.FileSystem.
func (t *FS) SetXattr(ctx *storage.Context, path, name, value string) error {
	t.census.Record(storage.OpSetXattr, path, 0)
	return t.inner.SetXattr(ctx, path, name, value)
}

// tracedHandle wraps an open handle, recording data-path calls with their
// actual transferred byte counts.
type tracedHandle struct {
	inner  storage.Handle
	census *Census
	path   string
}

func (h *tracedHandle) ReadAt(ctx *storage.Context, off int64, p []byte) (int, error) {
	n, err := h.inner.ReadAt(ctx, off, p)
	h.census.Record(storage.OpRead, h.path, n)
	return n, err
}

func (h *tracedHandle) WriteAt(ctx *storage.Context, off int64, p []byte) (int, error) {
	n, err := h.inner.WriteAt(ctx, off, p)
	h.census.Record(storage.OpWrite, h.path, n)
	return n, err
}

func (h *tracedHandle) Sync(ctx *storage.Context) error {
	h.census.Record(storage.OpSync, h.path, 0)
	return h.inner.Sync(ctx)
}

func (h *tracedHandle) Close(ctx *storage.Context) error {
	h.census.Record(storage.OpClose, h.path, 0)
	return h.inner.Close(ctx)
}
