// Package trace implements the storage-call interceptor the paper's
// methodology rests on (Section IV): the FUSE interceptor used for the HPC
// applications and the modified-HDFS logging used for Spark, unified into
// one Go-interface wrapper.
//
// A trace.FS wraps any storage.FileSystem; every call is classified into
// the four categories of Figures 1–2 (file read, file write, directory
// operations, other), counted per operation for Table II's breakdown, and
// its payload bytes accumulated for Table I's volumes. Directories named as
// input-data directories are tracked separately, reproducing Table II's
// "opendir (Input data directory)" vs "opendir (Other directories)" split.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/storage"
)

// Census aggregates every storage call observed through a tracer.
type Census struct {
	mu           sync.Mutex
	opCount      map[storage.Op]int64
	kindCount    [storage.NumCallKinds]int64
	bytesRead    int64
	bytesWritten int64
	// opendir split for Table II.
	opendirInput int64
	opendirOther int64
	inputDirs    map[string]bool
}

// NewCensus returns an empty census.
func NewCensus() *Census {
	return &Census{
		opCount:   make(map[storage.Op]int64),
		inputDirs: make(map[string]bool),
	}
}

// MarkInputDir registers a path as an input-data directory so its listings
// are counted in Table II's "Input data directory" row.
func (c *Census) MarkInputDir(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inputDirs[clean(path)] = true
}

func clean(path string) string {
	return "/" + strings.Trim(path, "/")
}

// Record counts one call. bytes is the payload size for read/write calls
// and ignored otherwise; path matters only for opendir classification.
func (c *Census) Record(op storage.Op, path string, bytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opCount[op]++
	c.kindCount[op.Kind()]++
	switch op {
	case storage.OpRead:
		c.bytesRead += int64(bytes)
	case storage.OpWrite:
		c.bytesWritten += int64(bytes)
	case storage.OpOpendir:
		if c.inputDirs[clean(path)] {
			c.opendirInput++
		} else {
			c.opendirOther++
		}
	}
}

// Merge folds other's counts into c (used to aggregate per-application
// censuses into the cross-application Table II).
func (c *Census) Merge(other *Census) {
	snap := other.snapshot()
	c.mu.Lock()
	defer c.mu.Unlock()
	for op, n := range snap.ops {
		c.opCount[op] += n
	}
	for k, n := range snap.kinds {
		c.kindCount[k] += n
	}
	c.bytesRead += snap.bytesRead
	c.bytesWritten += snap.bytesWritten
	c.opendirInput += snap.opendirInput
	c.opendirOther += snap.opendirOther
}

type censusSnapshot struct {
	ops          map[storage.Op]int64
	kinds        [storage.NumCallKinds]int64
	bytesRead    int64
	bytesWritten int64
	opendirInput int64
	opendirOther int64
}

func (c *Census) snapshot() censusSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := censusSnapshot{
		ops:          make(map[storage.Op]int64, len(c.opCount)),
		kinds:        c.kindCount,
		bytesRead:    c.bytesRead,
		bytesWritten: c.bytesWritten,
		opendirInput: c.opendirInput,
		opendirOther: c.opendirOther,
	}
	for op, n := range c.opCount {
		s.ops[op] = n
	}
	return s
}

// OpCount returns the number of calls recorded for op.
func (c *Census) OpCount(op storage.Op) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opCount[op]
}

// KindCount returns the number of calls in a figure category.
func (c *Census) KindCount(k storage.CallKind) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(k) < 0 || int(k) >= storage.NumCallKinds {
		return 0
	}
	return c.kindCount[k]
}

// TotalCalls returns the total number of recorded calls.
func (c *Census) TotalCalls() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, n := range c.kindCount {
		t += n
	}
	return t
}

// Percent returns a category's share of all calls, in percent.
func (c *Census) Percent(k storage.CallKind) float64 {
	total := c.TotalCalls()
	if total == 0 {
		return 0
	}
	return 100 * float64(c.KindCount(k)) / float64(total)
}

// BytesRead returns the total payload bytes read.
func (c *Census) BytesRead() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesRead
}

// BytesWritten returns the total payload bytes written.
func (c *Census) BytesWritten() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesWritten
}

// RWRatio returns bytesRead / bytesWritten, Table I's "R / W ratio". It
// returns +Inf when nothing was written.
func (c *Census) RWRatio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bytesWritten == 0 {
		if c.bytesRead == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(c.bytesRead) / float64(c.bytesWritten)
}

// Profile labels the application as in Table I's last column.
func (c *Census) Profile() string {
	r := c.RWRatio()
	switch {
	case r >= 2:
		return "Read-intensive"
	case r <= 0.5:
		return "Write-intensive"
	default:
		return "Balanced"
	}
}

// OpendirInput and OpendirOther expose Table II's opendir split.
func (c *Census) OpendirInput() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opendirInput
}

// OpendirOther returns listings of non-input directories.
func (c *Census) OpendirOther() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opendirOther
}

// UnmappableCalls counts recorded calls that do not map directly onto a
// Section III blob primitive (directory ops, xattrs, chmod) — the quantity
// the mapping-coverage experiment reports.
func (c *Census) UnmappableCalls() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for op, n := range c.opCount {
		if !op.MapsToBlobPrimitive() {
			t += n
		}
	}
	return t
}

// Ops returns the recorded operations in sorted order, for reports.
func (c *Census) Ops() []storage.Op {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]storage.Op, 0, len(c.opCount))
	for op := range c.opCount {
		out = append(out, op)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// String renders a one-line summary.
func (c *Census) String() string {
	return fmt.Sprintf("calls=%d read=%.1f%% write=%.1f%% dir=%.1f%% other=%.1f%% bytesR=%d bytesW=%d",
		c.TotalCalls(),
		c.Percent(storage.CallFileRead), c.Percent(storage.CallFileWrite),
		c.Percent(storage.CallDirOp), c.Percent(storage.CallOther),
		c.BytesRead(), c.BytesWritten())
}
