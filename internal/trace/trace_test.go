package trace

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fs/posixfs"
	"repro/internal/storage"
)

func tracedFS(t *testing.T) (*FS, *Census) {
	t.Helper()
	census := NewCensus()
	fs := Wrap(posixfs.NewStrict(cluster.New(cluster.Config{Nodes: 4, Seed: 1})), census)
	return fs, census
}

func TestRecordsDataCallsWithBytes(t *testing.T) {
	fs, census := tracedFS(t)
	ctx := storage.NewContext()
	h, err := fs.Create(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	h.WriteAt(ctx, 0, make([]byte, 100))
	h.WriteAt(ctx, 100, make([]byte, 50))
	buf := make([]byte, 60)
	h.ReadAt(ctx, 0, buf)
	h.Sync(ctx)
	h.Close(ctx)

	if got := census.OpCount(storage.OpWrite); got != 2 {
		t.Fatalf("write count = %d", got)
	}
	if got := census.OpCount(storage.OpRead); got != 1 {
		t.Fatalf("read count = %d", got)
	}
	if got := census.BytesWritten(); got != 150 {
		t.Fatalf("bytes written = %d", got)
	}
	if got := census.BytesRead(); got != 60 {
		t.Fatalf("bytes read = %d", got)
	}
	if got := census.OpCount(storage.OpSync); got != 1 {
		t.Fatalf("sync count = %d", got)
	}
	if got := census.OpCount(storage.OpClose); got != 1 {
		t.Fatalf("close count = %d", got)
	}
}

func TestDirectoryOpsClassified(t *testing.T) {
	fs, census := tracedFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/d")
	fs.ReadDir(ctx, "/d")
	fs.Rmdir(ctx, "/d")
	if got := census.KindCount(storage.CallDirOp); got != 3 {
		t.Fatalf("dir op count = %d, want 3", got)
	}
	if got := census.OpCount(storage.OpOpendir); got != 1 {
		t.Fatalf("opendir count = %d", got)
	}
}

func TestOpendirInputSplit(t *testing.T) {
	fs, census := tracedFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/input")
	fs.Mkdir(ctx, "/staging")
	census.MarkInputDir("/input")
	fs.ReadDir(ctx, "/input")
	fs.ReadDir(ctx, "/input/")
	fs.ReadDir(ctx, "/staging")
	if got := census.OpendirInput(); got != 2 {
		t.Fatalf("opendir(input) = %d, want 2 (path normalization)", got)
	}
	if got := census.OpendirOther(); got != 1 {
		t.Fatalf("opendir(other) = %d, want 1", got)
	}
}

func TestOtherCategory(t *testing.T) {
	fs, census := tracedFS(t)
	ctx := storage.NewContext()
	h, _ := fs.Create(ctx, "/f")
	h.Close(ctx)
	fs.SetXattr(ctx, "/f", "user.a", "1")
	fs.GetXattr(ctx, "/f", "user.a")
	fs.Chmod(ctx, "/f", 0o600)
	if got := census.KindCount(storage.CallOther); got != 3 {
		t.Fatalf("other count = %d, want 3", got)
	}
}

func TestPercentagesSumTo100(t *testing.T) {
	fs, census := tracedFS(t)
	ctx := storage.NewContext()
	fs.Mkdir(ctx, "/d")
	h, _ := fs.Create(ctx, "/d/f")
	for i := 0; i < 10; i++ {
		h.WriteAt(ctx, int64(i), []byte{1})
	}
	h.Close(ctx)
	total := census.Percent(storage.CallFileRead) + census.Percent(storage.CallFileWrite) +
		census.Percent(storage.CallDirOp) + census.Percent(storage.CallOther)
	if total < 99.999 || total > 100.001 {
		t.Fatalf("percentages sum to %f", total)
	}
}

func TestRWRatioAndProfile(t *testing.T) {
	c := NewCensus()
	c.Record(storage.OpRead, "/f", 600)
	c.Record(storage.OpWrite, "/f", 100)
	if got := c.RWRatio(); got != 6 {
		t.Fatalf("RWRatio = %v", got)
	}
	if got := c.Profile(); got != "Read-intensive" {
		t.Fatalf("Profile = %q", got)
	}

	w := NewCensus()
	w.Record(storage.OpRead, "/f", 100)
	w.Record(storage.OpWrite, "/f", 1000)
	if got := w.Profile(); got != "Write-intensive" {
		t.Fatalf("Profile = %q", got)
	}

	b := NewCensus()
	b.Record(storage.OpRead, "/f", 100)
	b.Record(storage.OpWrite, "/f", 100)
	if got := b.Profile(); got != "Balanced" {
		t.Fatalf("Profile = %q", got)
	}

	empty := NewCensus()
	if got := empty.RWRatio(); got != 0 {
		t.Fatalf("empty ratio = %v", got)
	}
	ro := NewCensus()
	ro.Record(storage.OpRead, "/f", 1)
	if got := ro.RWRatio(); got < 1e300 {
		t.Fatalf("read-only ratio = %v, want +Inf-like", got)
	}
}

func TestUnmappableCalls(t *testing.T) {
	c := NewCensus()
	c.Record(storage.OpRead, "/f", 1)
	c.Record(storage.OpOpen, "/f", 0)
	c.Record(storage.OpMkdir, "/d", 0)
	c.Record(storage.OpOpendir, "/d", 0)
	c.Record(storage.OpGetXattr, "/f", 0)
	if got := c.UnmappableCalls(); got != 3 {
		t.Fatalf("UnmappableCalls = %d, want 3 (mkdir, opendir, getxattr)", got)
	}
}

func TestMerge(t *testing.T) {
	a := NewCensus()
	a.Record(storage.OpRead, "/f", 10)
	a.MarkInputDir("/in")
	a.Record(storage.OpOpendir, "/in", 0)
	b := NewCensus()
	b.Record(storage.OpWrite, "/g", 20)
	b.Record(storage.OpOpendir, "/other", 0)
	a.Merge(b)
	if a.TotalCalls() != 4 {
		t.Fatalf("merged total = %d", a.TotalCalls())
	}
	if a.BytesWritten() != 20 || a.BytesRead() != 10 {
		t.Fatalf("merged bytes = %d/%d", a.BytesRead(), a.BytesWritten())
	}
	if a.OpendirInput() != 1 || a.OpendirOther() != 1 {
		t.Fatalf("merged opendir split = %d/%d", a.OpendirInput(), a.OpendirOther())
	}
}

func TestErrorsPassThrough(t *testing.T) {
	fs, census := tracedFS(t)
	ctx := storage.NewContext()
	if _, err := fs.Open(ctx, "/missing"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("open error not passed through: %v", err)
	}
	// The attempt is still recorded (FUSE sees the call regardless).
	if got := census.OpCount(storage.OpOpen); got != 1 {
		t.Fatalf("failed open not recorded: %d", got)
	}
}

func TestOpsSortedAndString(t *testing.T) {
	c := NewCensus()
	c.Record(storage.OpWrite, "/f", 1)
	c.Record(storage.OpMkdir, "/d", 0)
	c.Record(storage.OpRead, "/f", 1)
	ops := c.Ops()
	if len(ops) != 3 {
		t.Fatalf("Ops = %v", ops)
	}
	for i := 1; i < len(ops); i++ {
		if ops[i-1] >= ops[i] {
			t.Fatalf("Ops not sorted: %v", ops)
		}
	}
	if s := c.String(); !strings.Contains(s, "calls=3") {
		t.Fatalf("String = %q", s)
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := NewCensus()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Record(storage.OpRead, "/f", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.OpCount(storage.OpRead); got != 4000 {
		t.Fatalf("concurrent records lost: %d", got)
	}
}

func TestInnerAndCensusAccessors(t *testing.T) {
	fs, census := tracedFS(t)
	if fs.Census() != census {
		t.Fatal("Census accessor mismatch")
	}
	if fs.Inner() == nil {
		t.Fatal("Inner accessor nil")
	}
}

func TestExportAndJSON(t *testing.T) {
	c := NewCensus()
	c.MarkInputDir("/in")
	c.Record(storage.OpRead, "/f", 100)
	c.Record(storage.OpWrite, "/f", 25)
	c.Record(storage.OpOpendir, "/in", 0)
	c.Record(storage.OpMkdir, "/d", 0)

	e := c.Export()
	if e.TotalCalls != 4 || e.BytesRead != 100 || e.BytesWritten != 25 {
		t.Fatalf("export = %+v", e)
	}
	if e.RWRatio == nil || *e.RWRatio != 4 {
		t.Fatalf("ratio = %v", e.RWRatio)
	}
	if e.Ops["read"] != 1 || e.Ops["mkdir"] != 1 {
		t.Fatalf("ops = %v", e.Ops)
	}
	if e.OpendirInput != 1 || e.Unmappable != 2 {
		t.Fatalf("export = %+v", e)
	}

	raw, err := c.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Export
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("round trip: %v\n%s", err, raw)
	}
	if back.TotalCalls != 4 || back.Profile != e.Profile {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestExportInfiniteRatioOmitted(t *testing.T) {
	c := NewCensus()
	c.Record(storage.OpRead, "/f", 10)
	e := c.Export()
	if e.RWRatio != nil {
		t.Fatalf("read-only ratio should be omitted, got %v", *e.RWRatio)
	}
	if _, err := c.JSON(); err != nil {
		t.Fatal(err)
	}
}
