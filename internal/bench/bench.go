// Package bench is the experiment harness: one function per table/figure of
// the paper, each returning a structured result with a Render method that
// prints the same rows/series the paper reports. cmd/benchsuite and the
// bench_test.go targets are thin wrappers over this package.
package bench

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// humanBytes renders byte counts in the paper's GB/MB style.
func humanBytes(b int64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.1f GB", float64(b)/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.1f MB", float64(b)/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.1f KB", float64(b)/1e3)
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// humanRatio renders R/W ratios the way Table I prints them.
func humanRatio(r float64) string {
	switch {
	case math.IsInf(r, 1):
		return "inf"
	case r >= 1000 || (r > 0 && r < 0.01):
		return fmt.Sprintf("%.1e", r)
	default:
		return fmt.Sprintf("%.2f", r)
	}
}

// TableIRow is one measured row of the reproduced Table I.
type TableIRow struct {
	Platform     string
	App          string
	Usage        string
	ReadBytes    int64
	WriteBytes   int64
	Ratio        float64
	Profile      string
	PaperProfile string
}

// TableIResult is the full reproduced Table I.
type TableIResult struct {
	Factor int64
	Rows   []TableIRow
}

// Render prints the table in the paper's column order, with the paper's
// profile label for comparison.
func (t *TableIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I. APPLICATION SUMMARY (volumes scaled 1:%d)\n", t.Factor)
	fmt.Fprintf(&b, "%-14s %-10s %-22s %12s %12s %10s  %-16s %-16s\n",
		"Platform", "App", "Usage", "Total reads", "Total writes", "R/W", "Profile", "Paper profile")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %-10s %-22s %12s %12s %10s  %-16s %-16s\n",
			r.Platform, r.App, r.Usage,
			humanBytes(r.ReadBytes), humanBytes(r.WriteBytes),
			humanRatio(r.Ratio), r.Profile, r.PaperProfile)
	}
	return b.String()
}

// Matches reports whether every measured profile equals the paper's label.
func (t *TableIResult) Matches() bool {
	for _, r := range t.Rows {
		if r.Profile != r.PaperProfile {
			return false
		}
	}
	return true
}

// FigureBar is one application's call-type distribution.
type FigureBar struct {
	App        string
	TotalCalls int64
	// Percent is indexed by storage.CallKind.
	Percent [storage.NumCallKinds]float64
}

// FigureResult is a reproduced Figure 1 or Figure 2.
type FigureResult struct {
	Title string
	Bars  []FigureBar
}

// Render prints per-application percentage rows plus an ASCII stacked bar.
func (f *FigureResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %10s  %s\n",
		"App", "calls", "read%", "write%", "dir%", "other%", "distribution")
	glyphs := [storage.NumCallKinds]byte{'R', 'W', 'D', 'o'}
	for _, bar := range f.Bars {
		fmt.Fprintf(&b, "%-12s %10d %10.2f %10.2f %10.2f %10.2f  ",
			bar.App, bar.TotalCalls,
			bar.Percent[storage.CallFileRead], bar.Percent[storage.CallFileWrite],
			bar.Percent[storage.CallDirOp], bar.Percent[storage.CallOther])
		const width = 40
		drawn := 0
		for k := 0; k < storage.NumCallKinds; k++ {
			n := int(bar.Percent[k] / 100 * width)
			// Guarantee visibility of non-zero slivers, as the paper's
			// figures do.
			if n == 0 && bar.Percent[k] > 0 {
				n = 1
			}
			for i := 0; i < n && drawn < width+4; i++ {
				b.WriteByte(glyphs[k])
				drawn++
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// barFromCensus converts a census into a figure bar.
func barFromCensus(app string, c *trace.Census) FigureBar {
	bar := FigureBar{App: app, TotalCalls: c.TotalCalls()}
	for k := 0; k < storage.NumCallKinds; k++ {
		bar.Percent[k] = c.Percent(storage.CallKind(k))
	}
	return bar
}

// TableIIResult is the reproduced Table II.
type TableIIResult struct {
	Mkdir        int64
	Rmdir        int64
	OpendirInput int64
	OpendirOther int64
}

// Render prints the paper's four-row breakdown.
func (t *TableIIResult) Render() string {
	var b strings.Builder
	b.WriteString("TABLE II. SPARK DIRECTORY OPERATION BREAKDOWN (all applications)\n")
	fmt.Fprintf(&b, "%-36s %-24s %10s\n", "Operation", "Action", "Count")
	fmt.Fprintf(&b, "%-36s %-24s %10d\n", "mkdir", "Create directory", t.Mkdir)
	fmt.Fprintf(&b, "%-36s %-24s %10d\n", "rmdir", "Remove directory", t.Rmdir)
	fmt.Fprintf(&b, "%-36s %-24s %10d\n", "opendir (Input data directory)", "Open / List directory", t.OpendirInput)
	fmt.Fprintf(&b, "%-36s %-24s %10d\n", "opendir (Other directories)", "Open / List directory", t.OpendirOther)
	return b.String()
}

// MatchesPaper reports whether the census equals the paper's 43/43/5/0.
func (t *TableIIResult) MatchesPaper() bool {
	return t.Mkdir == 43 && t.Rmdir == 43 && t.OpendirInput == 5 && t.OpendirOther == 0
}

// MappingRow is the per-application blob-mapping coverage (Section III/IV).
type MappingRow struct {
	App           string
	TotalCalls    int64
	DirectCalls   int64
	EmulatedCalls int64
	DirectPercent float64
	RunsOnBlobs   bool // the application completed against blobfs
}

// MappingResult is the coverage analysis over all nine applications.
type MappingResult struct {
	Rows []MappingRow
}

// Render prints the per-application mapping coverage.
func (m *MappingResult) Render() string {
	var b strings.Builder
	b.WriteString("BLOB PRIMITIVE MAPPING COVERAGE (all applications on blobfs)\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %8s\n",
		"App", "calls", "direct", "emulated", "direct%", "runs")
	for _, r := range m.Rows {
		runs := "yes"
		if !r.RunsOnBlobs {
			runs = "NO"
		}
		fmt.Fprintf(&b, "%-12s %10d %10d %10d %10.2f %8s\n",
			r.App, r.TotalCalls, r.DirectCalls, r.EmulatedCalls, r.DirectPercent, runs)
	}
	return b.String()
}

// AllRunAndMostlyDirect reports the paper's claim: every application runs
// unmodified on blob storage and >98% of its calls map directly.
func (m *MappingResult) AllRunAndMostlyDirect() bool {
	for _, r := range m.Rows {
		if !r.RunsOnBlobs || r.DirectPercent < 98 {
			return false
		}
	}
	return true
}

// defaultConfig normalizes the workload configuration used by every
// experiment.
func defaultConfig(cfg workloads.Config) workloads.Config {
	return cfg.WithDefaults()
}
