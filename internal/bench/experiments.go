package bench

import (
	"fmt"

	"repro/internal/blob"
	"repro/internal/blobfs"
	"repro/internal/cluster"
	"repro/internal/fs/posixfs"
	"repro/internal/fs/relaxedfs"
	"repro/internal/sparksim"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// newHPCBaseline builds the HPC-side baseline stack: a strict posixfs on a
// fresh 8+1-node cluster (24 compute / 8 storage in the paper; the compute
// side is the MPI ranks).
func newHPCBaseline(seed uint64) *posixfs.FS {
	return posixfs.NewStrict(cluster.New(cluster.Config{Nodes: 9, Seed: seed}))
}

// newSparkBaseline builds the Big-Data-side baseline stack: relaxedfs with
// a namenode plus datanodes.
func newSparkBaseline(seed uint64) *relaxedfs.FS {
	return relaxedfs.New(cluster.New(cluster.Config{Nodes: 9, Seed: seed}),
		relaxedfs.Config{BlockSize: 4 << 20})
}

// runHPCApp sets up and runs one HPC application on fs under a fresh
// tracer.
func runHPCApp(app workloads.HPCApp, fs storage.FileSystem, cfg workloads.Config) (*trace.Census, error) {
	if err := app.Setup(fs, cfg); err != nil {
		return nil, fmt.Errorf("%s setup: %w", app.Name, err)
	}
	census := trace.NewCensus()
	if err := app.Run(trace.Wrap(fs, census), cfg); err != nil {
		return nil, fmt.Errorf("%s run: %w", app.Name, err)
	}
	return census, nil
}

// runSparkApp sets up and runs one Spark application on fs under a fresh
// tracer (unless census is supplied for cross-application aggregation).
func runSparkApp(app workloads.SparkApp, fs storage.FileSystem, cfg workloads.Config, census *trace.Census) (*trace.Census, error) {
	if err := workloads.SetupSparkEnv(fs); err != nil {
		return nil, fmt.Errorf("%s env: %w", app.Name, err)
	}
	if err := workloads.SetupSparkApp(fs, app); err != nil {
		return nil, fmt.Errorf("%s setup: %w", app.Name, err)
	}
	if census == nil {
		census = trace.NewCensus()
	}
	census.MarkInputDir(app.App.InputDir)
	engine := sparksim.NewEngine(trace.Wrap(fs, census), cfg.Executors)
	engine.SetChunkSize(cfg.Chunk)
	if _, err := workloads.RunSpark(engine, storage.NewContext(), app); err != nil {
		return nil, fmt.Errorf("%s run: %w", app.Name, err)
	}
	return census, nil
}

// RunTableI reproduces Table I: all nine applications, measured volumes,
// ratios and profile labels.
func RunTableI(cfg workloads.Config) (*TableIResult, error) {
	cfg = defaultConfig(cfg)
	res := &TableIResult{Factor: cfg.Factor}

	for _, app := range workloads.HPCApps() {
		if app.Name == "EH / MPI" {
			continue // Table I lists ECOHAM once
		}
		census, err := runHPCApp(app, newHPCBaseline(1), cfg)
		if err != nil {
			return nil, err
		}
		ref, err := workloads.TableIByApp(app.Name)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, TableIRow{
			Platform:     ref.Platform,
			App:          app.Name,
			Usage:        app.Usage,
			ReadBytes:    census.BytesRead(),
			WriteBytes:   census.BytesWritten(),
			Ratio:        census.RWRatio(),
			Profile:      census.Profile(),
			PaperProfile: ref.Profile,
		})
	}

	for _, app := range workloads.SparkApps(cfg) {
		census, err := runSparkApp(app, newSparkBaseline(1), cfg, nil)
		if err != nil {
			return nil, err
		}
		ref, err := workloads.TableIByApp(app.Name)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, TableIRow{
			Platform:     ref.Platform,
			App:          app.Name,
			Usage:        app.Usage,
			ReadBytes:    census.BytesRead(),
			WriteBytes:   census.BytesWritten(),
			Ratio:        census.RWRatio(),
			Profile:      census.Profile(),
			PaperProfile: ref.Profile,
		})
	}
	return res, nil
}

// RunFigure1 reproduces Figure 1: the storage-call mix of the five HPC
// bars (BLAST, MOM, EH, EH/MPI, RT) against the POSIX parallel file
// system.
func RunFigure1(cfg workloads.Config) (*FigureResult, error) {
	cfg = defaultConfig(cfg)
	res := &FigureResult{Title: "FIGURE 1. Storage call mix, HPC applications (posixfs baseline)"}
	for _, app := range workloads.HPCApps() {
		census, err := runHPCApp(app, newHPCBaseline(1), cfg)
		if err != nil {
			return nil, err
		}
		res.Bars = append(res.Bars, barFromCensus(app.Name, census))
	}
	return res, nil
}

// RunFigure2 reproduces Figure 2: the storage-call mix of the five Spark
// applications against the HDFS-like file system.
func RunFigure2(cfg workloads.Config) (*FigureResult, error) {
	cfg = defaultConfig(cfg)
	res := &FigureResult{Title: "FIGURE 2. Storage call mix, Big Data applications (relaxedfs baseline)"}
	for _, app := range workloads.SparkApps(cfg) {
		census, err := runSparkApp(app, newSparkBaseline(1), cfg, nil)
		if err != nil {
			return nil, err
		}
		res.Bars = append(res.Bars, barFromCensus(app.Name, census))
	}
	return res, nil
}

// RunTableII reproduces Table II: the directory-operation breakdown summed
// over all five Spark applications on one shared file system.
func RunTableII(cfg workloads.Config) (*TableIIResult, error) {
	cfg = defaultConfig(cfg)
	fs := newSparkBaseline(1)
	census := trace.NewCensus()
	for _, app := range workloads.SparkApps(cfg) {
		if _, err := runSparkApp(app, fs, cfg, census); err != nil {
			return nil, err
		}
	}
	return &TableIIResult{
		Mkdir:        census.OpCount(storage.OpMkdir),
		Rmdir:        census.OpCount(storage.OpRmdir),
		OpendirInput: census.OpendirInput(),
		OpendirOther: census.OpendirOther(),
	}, nil
}

// newBlobStack builds a blobfs over a blob store, the converged target.
func newBlobStack(seed uint64) *blobfs.FS {
	c := cluster.New(cluster.Config{Nodes: 9, Seed: seed})
	return blobfs.New(blob.New(c, blob.Config{ChunkSize: 4 << 20, Replication: 3}))
}

// RunMapping reproduces the Section III/IV mapping argument: every
// application runs unmodified against the blob-backed POSIX adapter, and
// the share of calls that map directly onto blob primitives is measured.
func RunMapping(cfg workloads.Config) (*MappingResult, error) {
	cfg = defaultConfig(cfg)
	res := &MappingResult{}

	for _, app := range workloads.HPCApps() {
		census, err := runHPCApp(app, newBlobStack(1), cfg)
		row := MappingRow{App: app.Name, RunsOnBlobs: err == nil}
		if err == nil {
			row.TotalCalls = census.TotalCalls()
			row.EmulatedCalls = census.UnmappableCalls()
			row.DirectCalls = row.TotalCalls - row.EmulatedCalls
			if row.TotalCalls > 0 {
				row.DirectPercent = 100 * float64(row.DirectCalls) / float64(row.TotalCalls)
			}
		}
		res.Rows = append(res.Rows, row)
	}

	for _, app := range workloads.SparkApps(cfg) {
		census, err := runSparkApp(app, newBlobStack(1), cfg, nil)
		row := MappingRow{App: app.Name, RunsOnBlobs: err == nil}
		if err == nil {
			row.TotalCalls = census.TotalCalls()
			row.EmulatedCalls = census.UnmappableCalls()
			row.DirectCalls = row.TotalCalls - row.EmulatedCalls
			if row.TotalCalls > 0 {
				row.DirectPercent = 100 * float64(row.DirectCalls) / float64(row.TotalCalls)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
