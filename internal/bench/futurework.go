package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/blob"
	"repro/internal/blobfs"
	"repro/internal/cluster"
	"repro/internal/fs/posixfs"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// The Section V experiment the paper promises as future work: "demonstrate
// factually that the gains obtained by transitioning [from] a hierarchical
// namespace to a flat one leads to significant I/O performance
// improvements."
//
// Three comparisons, posixfs (hierarchical, strict) vs blobfs-over-blob
// (flat):
//
//  1. metadata sweep — create+stat+delete cycles at increasing directory
//     depth; the hierarchy pays per-component resolution, the flat
//     namespace a constant number of lookups;
//  2. shared-file parallel writes — N clients write disjoint strided
//     blocks; strict POSIX pays a lock-manager round trip per operation on
//     one metadata server, the blob store writes straight to chunk servers
//     (replication 1 on both sides for a like-for-like data path);
//  3. directory listing — the one place the paper concedes the flat
//     namespace loses: scan-based emulation examines the whole keyspace.

// FutureWorkOptions sizes the experiment.
type FutureWorkOptions struct {
	// Files per metadata sweep (default 200).
	Files int
	// Depths to sweep (default 1, 2, 4, 8).
	Depths []int
	// Writers for the shared-file experiment (default 1, 2, 4, 8).
	Writers []int
	// BlocksPerWriter and BlockSize shape the shared-file writes
	// (defaults 64 x 64 KiB).
	BlocksPerWriter int
	BlockSize       int
	// ListFiles is the directory size for the listing comparison (default
	// 256); DecoyFactor adds unrelated blobs that the flat scan must
	// examine (default 4x).
	ListFiles   int
	DecoyFactor int
}

func (o FutureWorkOptions) withDefaults() FutureWorkOptions {
	if o.Files <= 0 {
		o.Files = 200
	}
	if len(o.Depths) == 0 {
		o.Depths = []int{1, 2, 4, 8}
	}
	if len(o.Writers) == 0 {
		o.Writers = []int{1, 2, 4, 8}
	}
	// Small blocks keep the experiment metadata-bound — the regime where
	// the namespace design matters; large transfers are disk-bound on both
	// sides and show nothing.
	if o.BlocksPerWriter <= 0 {
		o.BlocksPerWriter = 256
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 4 << 10
	}
	if o.ListFiles <= 0 {
		o.ListFiles = 256
	}
	// A listed directory is a small fraction of a real deployment's
	// namespace; the decoys model the rest of it, which only the flat scan
	// has to wade through.
	if o.DecoyFactor <= 0 {
		o.DecoyFactor = 16
	}
	return o
}

// MetaRow compares metadata throughput at one directory depth.
type MetaRow struct {
	Depth       int
	PosixOpsSec float64
	BlobOpsSec  float64
	Speedup     float64
}

// WriteRow compares shared-file write throughput at one writer count.
type WriteRow struct {
	Writers   int
	PosixMBps float64
	BlobMBps  float64
	Speedup   float64
}

// ListRow compares directory-listing cost.
type ListRow struct {
	Files    int
	PosixMs  float64
	BlobMs   float64
	Slowdown float64 // blob / posix: > 1 means the flat namespace loses
}

// FutureWorkResult is the full Section V experiment.
type FutureWorkResult struct {
	Metadata    []MetaRow
	SharedWrite []WriteRow
	Listing     []ListRow
}

// Render prints the three comparisons.
func (r *FutureWorkResult) Render() string {
	var b strings.Builder
	b.WriteString("SECTION V FUTURE-WORK EXPERIMENT: flat (blob) vs hierarchical (POSIX PFS)\n\n")
	b.WriteString("(a) Metadata sweep: create+stat+delete cycles, ops/s by directory depth\n")
	fmt.Fprintf(&b, "%8s %14s %14s %10s\n", "depth", "posixfs ops/s", "blob ops/s", "speedup")
	for _, m := range r.Metadata {
		fmt.Fprintf(&b, "%8d %14.0f %14.0f %9.2fx\n", m.Depth, m.PosixOpsSec, m.BlobOpsSec, m.Speedup)
	}
	b.WriteString("\n(b) Shared-file strided writes, MB/s by writer count\n")
	fmt.Fprintf(&b, "%8s %14s %14s %10s\n", "writers", "posixfs MB/s", "blob MB/s", "speedup")
	for _, w := range r.SharedWrite {
		fmt.Fprintf(&b, "%8d %14.1f %14.1f %9.2fx\n", w.Writers, w.PosixMBps, w.BlobMBps, w.Speedup)
	}
	b.WriteString("\n(c) Directory listing (the emulation cost the paper concedes), ms per listing\n")
	fmt.Fprintf(&b, "%8s %14s %14s %10s\n", "files", "posixfs ms", "blobfs ms", "slowdown")
	for _, l := range r.Listing {
		fmt.Fprintf(&b, "%8d %14.3f %14.3f %9.2fx\n", l.Files, l.PosixMs, l.BlobMs, l.Slowdown)
	}
	return b.String()
}

// GainsHold reports the paper's expected shape: the blob store wins every
// metadata and shared-write configuration, with the metadata gap growing
// with depth, while listing is allowed to lose.
func (r *FutureWorkResult) GainsHold() bool {
	prev := 0.0
	for _, m := range r.Metadata {
		if m.Speedup <= 1 || m.Speedup < prev {
			return false
		}
		prev = m.Speedup
	}
	for _, w := range r.SharedWrite {
		if w.Speedup <= 1 {
			return false
		}
	}
	return true
}

func newFlatStack(seed uint64) (*blob.Store, storage.FileSystem) {
	c := cluster.New(cluster.Config{Nodes: 9, Seed: seed})
	store := blob.New(c, blob.Config{ChunkSize: 4 << 20, Replication: 1})
	return store, blobfs.New(store)
}

// RunFutureWork executes the Section V experiment.
func RunFutureWork(opts FutureWorkOptions) (*FutureWorkResult, error) {
	opts = opts.withDefaults()
	res := &FutureWorkResult{}

	// (a) Metadata sweep.
	for _, depth := range opts.Depths {
		posixTime, err := metaSweep(posixfs.NewStrict(cluster.New(cluster.Config{Nodes: 9, Seed: 1})), depth, opts.Files)
		if err != nil {
			return nil, fmt.Errorf("futurework: posix meta depth %d: %w", depth, err)
		}
		_, flatFS := newFlatStack(1)
		blobTime, err := metaSweep(flatFS, depth, opts.Files)
		if err != nil {
			return nil, fmt.Errorf("futurework: blob meta depth %d: %w", depth, err)
		}
		ops := float64(3 * opts.Files)
		row := MetaRow{
			Depth:       depth,
			PosixOpsSec: ops / posixTime.Seconds(),
			BlobOpsSec:  ops / blobTime.Seconds(),
		}
		row.Speedup = row.BlobOpsSec / row.PosixOpsSec
		res.Metadata = append(res.Metadata, row)
	}

	// (b) Shared-file strided writes.
	for _, writers := range opts.Writers {
		posixTime, err := sharedWritePosix(writers, opts)
		if err != nil {
			return nil, fmt.Errorf("futurework: posix write x%d: %w", writers, err)
		}
		blobTime, err := sharedWriteBlob(writers, opts)
		if err != nil {
			return nil, fmt.Errorf("futurework: blob write x%d: %w", writers, err)
		}
		bytes := int64(writers * opts.BlocksPerWriter * opts.BlockSize)
		row := WriteRow{
			Writers:   writers,
			PosixMBps: metrics.Throughput(bytes, posixTime),
			BlobMBps:  metrics.Throughput(bytes, blobTime),
		}
		row.Speedup = row.BlobMBps / row.PosixMBps
		res.SharedWrite = append(res.SharedWrite, row)
	}

	// (c) Directory listing.
	posixList, err := listSweep(posixfs.NewStrict(cluster.New(cluster.Config{Nodes: 9, Seed: 1})), opts, false)
	if err != nil {
		return nil, fmt.Errorf("futurework: posix list: %w", err)
	}
	_, flatFS := newFlatStack(1)
	blobList, err := listSweep(flatFS, opts, true)
	if err != nil {
		return nil, fmt.Errorf("futurework: blob list: %w", err)
	}
	res.Listing = append(res.Listing, ListRow{
		Files:    opts.ListFiles,
		PosixMs:  float64(posixList.Microseconds()) / 1000,
		BlobMs:   float64(blobList.Microseconds()) / 1000,
		Slowdown: float64(blobList) / float64(posixList),
	})
	return res, nil
}

// metaSweep runs create+stat+delete cycles for files at the given
// directory depth and returns the virtual time consumed.
func metaSweep(fs storage.FileSystem, depth, files int) (time.Duration, error) {
	ctx := storage.NewContext()
	dir := ""
	for i := 0; i < depth; i++ {
		dir += fmt.Sprintf("/level%d", i)
		if err := fs.Mkdir(ctx, dir); err != nil {
			return 0, err
		}
	}
	start := ctx.Clock.Now()
	for i := 0; i < files; i++ {
		path := fmt.Sprintf("%s/file-%05d", dir, i)
		h, err := fs.Create(ctx, path)
		if err != nil {
			return 0, err
		}
		if err := h.Close(ctx); err != nil {
			return 0, err
		}
		if _, err := fs.Stat(ctx, path); err != nil {
			return 0, err
		}
		if err := fs.Unlink(ctx, path); err != nil {
			return 0, err
		}
	}
	return ctx.Clock.Now() - start, nil
}

// sharedWritePosix measures strided parallel writes to one posixfs file.
func sharedWritePosix(writers int, opts FutureWorkOptions) (time.Duration, error) {
	fs := posixfs.NewStrict(cluster.New(cluster.Config{Nodes: 9, Seed: 1}))
	setup := storage.NewContext()
	h, err := fs.Create(setup, "/shared.dat")
	if err != nil {
		return 0, err
	}
	if err := h.Close(setup); err != nil {
		return 0, err
	}
	return parallelWriters(writers, opts, func(w int, ctx *storage.Context) error {
		hh, err := fs.Open(ctx, "/shared.dat")
		if err != nil {
			return err
		}
		defer hh.Close(ctx)
		block := make([]byte, opts.BlockSize)
		for i := 0; i < opts.BlocksPerWriter; i++ {
			off := int64(i*writers+w) * int64(opts.BlockSize)
			if _, err := hh.WriteAt(ctx, off, block); err != nil {
				return err
			}
		}
		return nil
	})
}

// sharedWriteBlob measures the same pattern against a pre-sized blob.
func sharedWriteBlob(writers int, opts FutureWorkOptions) (time.Duration, error) {
	store, _ := newFlatStack(1)
	setup := storage.NewContext()
	if err := store.CreateBlob(setup, "shared.dat"); err != nil {
		return 0, err
	}
	total := int64(writers * opts.BlocksPerWriter * opts.BlockSize)
	if err := store.TruncateBlob(setup, "shared.dat", total); err != nil {
		return 0, err
	}
	return parallelWriters(writers, opts, func(w int, ctx *storage.Context) error {
		block := make([]byte, opts.BlockSize)
		for i := 0; i < opts.BlocksPerWriter; i++ {
			off := int64(i*writers+w) * int64(opts.BlockSize)
			if _, err := store.WriteBlob(ctx, "shared.dat", off, block); err != nil {
				return err
			}
		}
		return nil
	})
}

// parallelWriters runs fn on `writers` goroutines with forked clocks and
// returns the slowest writer's virtual time (the job's makespan).
func parallelWriters(writers int, _ FutureWorkOptions, fn func(w int, ctx *storage.Context) error) (time.Duration, error) {
	var wg sync.WaitGroup
	contexts := make([]*storage.Context, writers)
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		contexts[w] = storage.NewContext()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = fn(w, contexts[w])
		}(w)
	}
	wg.Wait()
	var max time.Duration
	for w := 0; w < writers; w++ {
		if errs[w] != nil {
			return 0, errs[w]
		}
		if t := contexts[w].Clock.Now(); t > max {
			max = t
		}
	}
	return max, nil
}

// listSweep creates a populated directory (plus namespace decoys on the
// flat side) and measures one listing.
func listSweep(fs storage.FileSystem, opts FutureWorkOptions, decoys bool) (time.Duration, error) {
	ctx := storage.NewContext()
	if err := fs.Mkdir(ctx, "/dir"); err != nil {
		return 0, err
	}
	for i := 0; i < opts.ListFiles; i++ {
		h, err := fs.Create(ctx, fmt.Sprintf("/dir/f-%05d", i))
		if err != nil {
			return 0, err
		}
		if err := h.Close(ctx); err != nil {
			return 0, err
		}
	}
	if decoys {
		// Unrelated namespace population: the flat scan has no directory
		// index, so these inflate its examination cost. The hierarchical
		// baseline is untouched by files elsewhere.
		if err := fs.Mkdir(ctx, "/elsewhere"); err != nil {
			return 0, err
		}
		for i := 0; i < opts.ListFiles*opts.DecoyFactor; i++ {
			h, err := fs.Create(ctx, fmt.Sprintf("/elsewhere/d-%06d", i))
			if err != nil {
				return 0, err
			}
			if err := h.Close(ctx); err != nil {
				return 0, err
			}
		}
	}
	start := ctx.Clock.Now()
	entries, err := fs.ReadDir(ctx, "/dir")
	if err != nil {
		return 0, err
	}
	if len(entries) != opts.ListFiles {
		return 0, fmt.Errorf("listing returned %d entries, want %d", len(entries), opts.ListFiles)
	}
	return ctx.Clock.Now() - start, nil
}
