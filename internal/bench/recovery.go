package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/storage"
)

// RecoveryFixture is the fixture behind BenchmarkRecover and the benchsuite
// `recovery` experiment: a 9-node store with 64 KiB chunks and 3-way
// replication whose write-ahead logs hold a cold, never-checkpointed
// history of `blobs` 256 KiB blobs (each a 4-chunk 2PC write). One
// iteration crashes the fullest server and replays its merged lanes back
// into volatile state — the recovery path whose lane-decode stage the
// parallel pipeline (blob recoverfeed.go) parallelizes, measured against
// the Config.SerialRecovery oracle.
type RecoveryFixture struct {
	store *blob.Store
	node  cluster.NodeID
	bytes int64 // WAL bytes on the measured node
}

// NewRecoveryFixture builds the cold store. lanes selects Config.WALLanes
// (0 = store default); serial selects the single-threaded decode oracle.
func NewRecoveryFixture(lanes, blobs int, serial bool) (*RecoveryFixture, error) {
	st := blob.New(cluster.New(cluster.Config{Nodes: 9, Seed: 1}),
		blob.Config{ChunkSize: 64 << 10, Replication: 3, WALLanes: lanes, SerialRecovery: serial})
	ctx := storage.NewContext()
	buf := make([]byte, 256<<10)
	for i := range buf {
		buf[i] = byte(i)
	}
	for i := 0; i < blobs; i++ {
		key := fmt.Sprintf("cold-%d", i)
		if err := st.CreateBlob(ctx, key); err != nil {
			return nil, err
		}
		if _, err := st.WriteBlob(ctx, key, 0, buf); err != nil {
			return nil, err
		}
	}
	// Measure the server carrying the most log: the worst-case recovery.
	f := &RecoveryFixture{store: st}
	for n := 0; n < 9; n++ {
		if sz := st.WALSize(cluster.NodeID(n)); sz > f.bytes {
			f.node, f.bytes = cluster.NodeID(n), sz
		}
	}
	if f.bytes == 0 {
		return nil, fmt.Errorf("bench: recovery fixture built an empty WAL")
	}
	return f, nil
}

// WALBytes is the log volume one Run decodes (the b.SetBytes datum, so
// MB/s reads as recovery throughput over the measured node's log).
func (f *RecoveryFixture) WALBytes() int64 { return f.bytes }

// Run performs one crash + recovery cycle of the measured node. The cycle
// is repeatable: recovery repairs nothing on clean media and rebuilds the
// same state from the same bytes every iteration.
func (f *RecoveryFixture) Run() error {
	f.store.Crash(f.node)
	return f.store.Recover(f.node)
}

// Drive is the standard benchmark body over a recovery fixture.
func (f *RecoveryFixture) Drive(b *testing.B) {
	b.SetBytes(f.WALBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// recoverySweepSizes are the cold-store sizes (blob count; each blob adds
// ~768 KiB of replicated chunk log per cluster) the benchsuite records.
var recoverySweepSizes = []int{8, 32}

// recoverySweepLanes is the lane sweep mirrored from BENCH_hotpath.json.
var recoverySweepLanes = []int{1, 4, 16}

// RunRecovery runs the serial-vs-parallel recovery sweep via
// testing.Benchmark (numbers match `go test -bench Recover -benchmem`) and
// returns the results for BENCH_recovery.json. Result names encode the
// parameters: BenchmarkRecover/<mode>/lanes=<n>/blobs=<m>.
func RunRecovery() ([]HotPathResult, error) {
	var out []HotPathResult
	var firstErr error
	for _, blobs := range recoverySweepSizes {
		for _, lanes := range recoverySweepLanes {
			for _, mode := range []struct {
				name   string
				serial bool
			}{{"serial", true}, {"parallel", false}} {
				f, err := NewRecoveryFixture(lanes, blobs, mode.serial)
				if err != nil {
					return nil, err
				}
				name := fmt.Sprintf("BenchmarkRecover/%s/lanes=%d/blobs=%d", mode.name, lanes, blobs)
				r := testing.Benchmark(f.Drive)
				if r.N == 0 && firstErr == nil {
					firstErr = fmt.Errorf("benchmark %s failed", name)
				}
				mbps := 0.0
				if r.T > 0 {
					mbps = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
				}
				out = append(out, HotPathResult{
					Name:        name,
					NsPerOp:     r.NsPerOp(),
					AllocsPerOp: r.AllocsPerOp(),
					BytesPerOp:  r.AllocedBytesPerOp(),
					MBPerSec:    mbps,
				})
			}
		}
	}
	return out, firstErr
}

// CheckRecoveryScaling gates the parallel/serial recovery ratio, the
// recovery twin of CheckWriteScaling: at the largest recorded lane count
// and cold-store size, the parallel lane-decode pipeline
// must recover in at most maxRatio of the serial oracle's ns/op.
// maxRatio <= 0 selects a hardware-aware default — recovery is dominated
// by per-record CRC + copy work that parallelizes across lanes, but only
// real cores can run lanes concurrently:
//
//	>= 4 procs: 0.75 (the acceptance bar: >= 25% faster than serial)
//	2-3 procs:  0.90
//	1 proc:     1.15 (no parallel hardware: the pipeline's staging can
//	            only add overhead here; the gate bounds that overhead so
//	            the parallel path never quietly becomes a regression on
//	            single-core hosts)
//
// Pairs absent from results are not gated, so older or partial result
// sets pass vacuously.
func CheckRecoveryScaling(results []HotPathResult, maxRatio float64) error {
	if maxRatio <= 0 {
		switch procs := runtime.GOMAXPROCS(0); {
		case procs >= 4:
			maxRatio = 0.75
		case procs >= 2:
			maxRatio = 0.90
		default:
			maxRatio = 1.15
		}
	}
	blobs := recoverySweepSizes[len(recoverySweepSizes)-1]
	lanes := recoverySweepLanes[len(recoverySweepLanes)-1]
	serialName := fmt.Sprintf("BenchmarkRecover/serial/lanes=%d/blobs=%d", lanes, blobs)
	parallelName := fmt.Sprintf("BenchmarkRecover/parallel/lanes=%d/blobs=%d", lanes, blobs)
	var serial, parallel *HotPathResult
	for i := range results {
		switch results[i].Name {
		case serialName:
			serial = &results[i]
		case parallelName:
			parallel = &results[i]
		}
	}
	if serial == nil || parallel == nil || serial.NsPerOp <= 0 {
		return nil
	}
	if ratio := float64(parallel.NsPerOp) / float64(serial.NsPerOp); ratio > maxRatio {
		return fmt.Errorf("bench: parallel recovery does not scale: %s %d ns/op is %.2fx serial %d ns/op (gate %.2fx at GOMAXPROCS=%d)",
			parallel.Name, parallel.NsPerOp, ratio, serial.NsPerOp, maxRatio, runtime.GOMAXPROCS(0))
	}
	return nil
}

// RenderRecovery formats results as the JSON written to BENCH_recovery.json.
func RenderRecovery(results []HotPathResult) ([]byte, error) {
	return json.MarshalIndent(results, "", "  ")
}
