package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/blobfs"
	"repro/internal/cluster"
	"repro/internal/ior"
	"repro/internal/s3gw"
	"repro/internal/sparksim"
	"repro/internal/storage"
	"repro/internal/workloads"
)

// The frontends experiment drives the three converged access layers of the
// paper's Section II over ONE blob data plane — the HPC path (an IOR-style
// segmented shared-file pattern), the analytics path (a SparkBench-shaped
// shuffle through sparksim), and the object path (an S3 put/get cycle
// through the HTTP gateway) — and records wall-clock plus deterministic
// virtual-time twins for each. The gated pair is the rename fast path:
// blobfs routes Rename through blob.RenameBlob (server-side chunk rewrite
// under both descriptor latches) when the store implements
// storage.BlobRenamer, falling back to the client-side copy loop
// otherwise; CheckFrontends requires the fast path to actually beat the
// copy on simulated cost.

func newFrontendStore() *blob.Store {
	return blob.New(cluster.New(cluster.Config{Nodes: 5, Seed: 1}),
		blob.Config{ChunkSize: 64 << 10, Replication: 3})
}

func iorParams() ior.Params {
	return ior.Params{
		Clients:      8,
		TransferSize: 16 << 10,
		BlockSize:    64 << 10,
		Segments:     2,
		SharedFile:   true,
		ReadBack:     true,
		Dir:          "/ior",
	}
}

// RunIORCycle executes one full IOR write+read pass over a blobfs mount of
// fs, creating the working directory on first use.
func RunIORCycle(fs storage.FileSystem) (*ior.Result, error) {
	ctx := storage.NewContext()
	if _, err := fs.Stat(ctx, "/ior"); err != nil {
		if err := fs.Mkdir(ctx, "/ior"); err != nil {
			return nil, err
		}
	}
	return ior.Run(fs, iorParams())
}

func shuffleConfig() workloads.Config {
	// 1:2^16 scaling turns Sort's 5.8 GB in/out into ~90 KB each — big
	// enough to shuffle through every executor, small enough to iterate.
	return workloads.Config{Factor: 1 << 16, Chunk: 4096, Executors: 4}.WithDefaults()
}

// RunShuffleCycle provisions and runs the Sort application (the paper's
// shuffle-heavy SparkBench representative) over a blobfs mount of a fresh
// blob store, returning the driver context so callers can read its virtual
// clock.
func RunShuffleCycle() (*storage.Context, error) {
	fs := blobfs.New(newFrontendStore())
	cfg := shuffleConfig()
	app, err := workloads.SparkAppByName(cfg, "Sort")
	if err != nil {
		return nil, err
	}
	if err := workloads.SetupSparkEnv(fs); err != nil {
		return nil, err
	}
	if err := workloads.SetupSparkApp(fs, app); err != nil {
		return nil, err
	}
	engine := sparksim.NewEngine(fs, cfg.Executors)
	engine.SetChunkSize(cfg.Chunk)
	ctx := storage.NewContext()
	if _, err := workloads.RunSpark(engine, ctx, app); err != nil {
		return nil, err
	}
	return ctx, nil
}

const (
	s3Objects = 8
	s3ObjSize = 16 << 10
)

// runS3Cycle PUTs and GETs s3Objects objects through the gateway.
func runS3Cycle(url string, payload []byte) error {
	for i := 0; i < s3Objects; i++ {
		key := fmt.Sprintf("%s/bench/obj-%d", url, i)
		req, err := http.NewRequest(http.MethodPut, key, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("bench: PUT %s: status %d", key, resp.StatusCode)
		}
		resp, err = http.Get(key)
		if err != nil {
			return err
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || n != int64(len(payload)) {
			return fmt.Errorf("bench: GET %s: status %d, %d bytes", key, resp.StatusCode, n)
		}
	}
	return nil
}

// noRenamer hides blob.Store's BlobRenamer (and ChunkSizer) behind the
// plain BlobStore interface, forcing blobfs onto its copy-loop fallback.
type noRenamer struct {
	storage.BlobStore
}

// VirtualRenameCost measures the simulated marginal cost of one blobfs
// Rename of a 1 MiB (16-chunk) file, through the server-side fast path
// (fast=true) or the client-side copy fallback. Fresh fixture plus one
// warm-up rename, then the mean over ops — the same deterministic-twin
// recipe VirtualWriteCost uses, and equally host-independent.
func VirtualRenameCost(fast bool, ops int) (time.Duration, error) {
	st := newFrontendStore()
	var fs *blobfs.FS
	if fast {
		fs = blobfs.New(st)
	} else {
		fs = blobfs.New(noRenamer{st})
	}
	ctx := storage.NewContext()
	h, err := fs.Create(ctx, "/payload")
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 1<<20)
	for i := range buf {
		buf[i] = byte(i * 11)
	}
	if _, err := h.WriteAt(ctx, 0, buf); err != nil {
		return 0, err
	}
	if err := h.Close(ctx); err != nil {
		return 0, err
	}
	names := [2]string{"/payload", "/payload-moved"}
	if err := fs.Rename(ctx, names[0], names[1]); err != nil {
		return 0, err
	}
	start := ctx.Clock.Now()
	for i := 0; i < ops; i++ {
		if err := fs.Rename(ctx, names[(i+1)%2], names[i%2]); err != nil {
			return 0, err
		}
	}
	return (ctx.Clock.Now() - start) / time.Duration(ops), nil
}

// RunFrontends runs the converged-front-end sweep for BENCH_frontends.json:
// wall-clock results for the IOR pattern, the Sort shuffle, and the S3
// put/get cycle, each with a deterministic /virtual twin, plus the gated
// rename fast-path/copy pair.
func RunFrontends() ([]HotPathResult, error) {
	var out []HotPathResult
	var firstErr error
	// Best-of-3 for the wall-clock numbers, same rationale as RunFaults:
	// the minimum over repetitions is the noise-robust statistic.
	record := func(name string, body func(*testing.B)) {
		var best testing.BenchmarkResult
		for rep := 0; rep < 3; rep++ {
			r := testing.Benchmark(body)
			if rep == 0 || (r.N > 0 && r.NsPerOp() < best.NsPerOp()) {
				best = r
			}
		}
		if best.N == 0 && firstErr == nil {
			firstErr = fmt.Errorf("benchmark %s failed", name)
		}
		mbps := 0.0
		if best.T > 0 {
			mbps = float64(best.Bytes) * float64(best.N) / 1e6 / best.T.Seconds()
		}
		out = append(out, HotPathResult{
			Name:        name,
			NsPerOp:     best.NsPerOp(),
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
			MBPerSec:    mbps,
		})
	}

	// HPC front end: the segmented shared-file pattern, one mount reused
	// across iterations (steady-state overwrite, like the paper's runs).
	iorFS := blobfs.New(newFrontendStore())
	p := iorParams()
	iorBytes := int64(p.Clients) * int64(p.BlockSize) * int64(p.Segments) * 2 // write + read
	record("BenchmarkFrontendIOR", func(b *testing.B) {
		b.SetBytes(iorBytes)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RunIORCycle(iorFS); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Analytics front end: full provision+run cycle on a fresh mount per
	// iteration (Spark jobs are one-shot; staging dirs are torn down by
	// the committer, inputs are not).
	record("BenchmarkFrontendShuffle", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RunShuffleCycle(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Object front end: put/get cycle over HTTP against one gateway.
	s3Store := newFrontendStore()
	srv := httptest.NewServer(s3gw.New(s3Store))
	defer srv.Close()
	payload := make([]byte, s3ObjSize)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	record("BenchmarkFrontendS3", func(b *testing.B) {
		b.SetBytes(int64(s3Objects) * s3ObjSize * 2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := runS3Cycle(srv.URL, payload); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Deterministic virtual twins, each on a fresh fixture.
	iorTwin, err := RunIORCycle(blobfs.New(newFrontendStore()))
	if err != nil {
		return nil, fmt.Errorf("bench: ior twin: %w", err)
	}
	out = append(out, HotPathResult{
		Name:     "BenchmarkFrontendIOR/virtual",
		NsPerOp:  int64(iorTwin.WriteTime + iorTwin.ReadTime),
		MBPerSec: iorTwin.WriteMBps,
	})
	shuffleCtx, err := RunShuffleCycle()
	if err != nil {
		return nil, fmt.Errorf("bench: shuffle twin: %w", err)
	}
	out = append(out, HotPathResult{
		Name:    "BenchmarkFrontendShuffle/virtual",
		NsPerOp: int64(shuffleCtx.Clock.Now()),
	})
	s3Gateway := s3gw.New(newFrontendStore())
	s3TwinSrv := httptest.NewServer(s3Gateway)
	if err := runS3Cycle(s3TwinSrv.URL, payload); err != nil {
		s3TwinSrv.Close()
		return nil, fmt.Errorf("bench: s3 twin: %w", err)
	}
	s3TwinSrv.Close()
	out = append(out, HotPathResult{
		Name:    "BenchmarkFrontendS3/virtual",
		NsPerOp: int64(s3Gateway.TotalVirtualTime()) / (s3Objects * 2),
	})

	// The gated pair: server-side rename vs client-side copy loop.
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fastpath", true}, {"copy", false}} {
		v, err := VirtualRenameCost(mode.fast, 8)
		if err != nil {
			return nil, fmt.Errorf("bench: rename %s: %w", mode.name, err)
		}
		out = append(out, HotPathResult{
			Name:    "BenchmarkFrontendRename/" + mode.name + "/virtual",
			NsPerOp: int64(v),
		})
	}
	return out, firstErr
}

// CheckFrontends gates the rename fast path on its virtual twins: routing
// blobfs.Rename through blob.RenameBlob must cost at most maxRatio of the
// client-side copy loop it replaced. Both paths pay the same irreducible
// disk work — R replica writes plus WAL appends per chunk, and the source
// chunk reads — so on the HDD-class default cost model the fast path's
// whole honest saving is the client wire legs, the per-chunk read-response
// RPCs, and the 2PC prepare/commit rounds its latched direct commit skips:
// about 6% of a 1 MiB rename. The default gate of 0.95 sits between that
// deterministic floor (~0.94) and parity; the failure mode it exists to
// catch — the BlobRenamer routing silently disengaging — reads ≈1.0 and
// fails it outright. Like the other baseline gates, the check reads only
// deterministic simulated costs and passes vacuously when either result
// is absent.
func CheckFrontends(results []HotPathResult, maxRatio float64) error {
	if maxRatio <= 0 {
		maxRatio = 0.95
	}
	var fast, copyLoop *HotPathResult
	for i := range results {
		switch results[i].Name {
		case "BenchmarkFrontendRename/fastpath/virtual":
			fast = &results[i]
		case "BenchmarkFrontendRename/copy/virtual":
			copyLoop = &results[i]
		}
	}
	if fast == nil || copyLoop == nil || copyLoop.NsPerOp <= 0 {
		return nil
	}
	if ratio := float64(fast.NsPerOp) / float64(copyLoop.NsPerOp); ratio > maxRatio {
		return fmt.Errorf("bench: rename fast path regressed: virtual %d ns/op is %.3fx the copy loop's %d ns/op (gate %.3fx)",
			fast.NsPerOp, ratio, copyLoop.NsPerOp, maxRatio)
	}
	return nil
}

// RenderFrontends formats results as the JSON written to
// BENCH_frontends.json.
func RenderFrontends(results []HotPathResult) ([]byte, error) {
	return json.MarshalIndent(results, "", "  ")
}
