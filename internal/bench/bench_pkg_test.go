package bench

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

// fastCfg keeps harness unit tests quick; the benchmark targets and
// cmd/benchsuite use the default factor 1024.
func fastCfg() workloads.Config {
	// The chunk scales with the factor (see workloads doc comment): at
	// 1:2^16 the 4 MiB real-world I/O unit becomes 64 bytes; 128 keeps the
	// call-count ratios faithful while staying fast.
	return workloads.Config{Factor: 1 << 16, Chunk: 128, Ranks: 4, Executors: 2}
}

func TestTableIReproducesProfiles(t *testing.T) {
	res, err := RunTableI(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("Table I rows = %d, want 9", len(res.Rows))
	}
	if !res.Matches() {
		t.Fatalf("profile labels diverge from the paper:\n%s", res.Render())
	}
	out := res.Render()
	for _, app := range []string{"BLAST", "MOM", "EH", "RT", "Sort", "CC", "Grep", "DT", "Tokenizer"} {
		if !strings.Contains(out, app) {
			t.Fatalf("render missing %s:\n%s", app, out)
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	res, err := RunFigure1(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bars) != 5 {
		t.Fatalf("Figure 1 bars = %d, want 5", len(res.Bars))
	}
	for _, bar := range res.Bars {
		fileShare := bar.Percent[0] + bar.Percent[1]
		switch bar.App {
		case "EH":
			// Prep-script slivers present but small.
			if bar.Percent[2] == 0 && bar.Percent[3] == 0 {
				t.Fatalf("EH shows no prep-script calls:\n%s", res.Render())
			}
			if fileShare < 95 {
				t.Fatalf("EH file share = %.2f%%:\n%s", fileShare, res.Render())
			}
		default:
			// All other HPC apps: reads and writes only.
			if bar.Percent[2] != 0 || bar.Percent[3] != 0 {
				t.Fatalf("%s shows non-file calls:\n%s", bar.App, res.Render())
			}
		}
	}
	if !strings.Contains(res.Render(), "FIGURE 1") {
		t.Fatal("render missing title")
	}
}

func TestFigure2Shape(t *testing.T) {
	res, err := RunFigure2(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bars) != 5 {
		t.Fatalf("Figure 2 bars = %d, want 5", len(res.Bars))
	}
	for _, bar := range res.Bars {
		fileShare := bar.Percent[0] + bar.Percent[1]
		if fileShare < 98 {
			t.Fatalf("%s file share = %.2f%%, paper reports > 98%%:\n%s",
				bar.App, fileShare, res.Render())
		}
		if bar.Percent[2] == 0 {
			t.Fatalf("%s shows no directory operations (Spark always has a few):\n%s",
				bar.App, res.Render())
		}
	}
}

func TestTableIIExactCensus(t *testing.T) {
	res, err := RunTableII(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !res.MatchesPaper() {
		t.Fatalf("Table II census diverges from 43/43/5/0:\n%s", res.Render())
	}
	out := res.Render()
	if !strings.Contains(out, "43") || !strings.Contains(out, "opendir (Input data directory)") {
		t.Fatalf("render malformed:\n%s", out)
	}
}

func TestMappingCoverage(t *testing.T) {
	res, err := RunMapping(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 { // 5 HPC bars + 5 Spark apps
		t.Fatalf("mapping rows = %d, want 10", len(res.Rows))
	}
	if !res.AllRunAndMostlyDirect() {
		t.Fatalf("mapping claim fails:\n%s", res.Render())
	}
}

func TestFutureWorkGainsHold(t *testing.T) {
	res, err := RunFutureWork(FutureWorkOptions{
		Files:           50,
		Depths:          []int{1, 4},
		Writers:         []int{1, 4},
		BlocksPerWriter: 16,
		BlockSize:       16 << 10,
		ListFiles:       64,
		DecoyFactor:     32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.GainsHold() {
		t.Fatalf("future-work gains do not hold:\n%s", res.Render())
	}
	// The paper concedes the listing emulation is slow: the flat side must
	// actually pay a cost there (no free lunch).
	if len(res.Listing) == 0 || res.Listing[0].Slowdown <= 1 {
		t.Fatalf("listing emulation unexpectedly free:\n%s", res.Render())
	}
	out := res.Render()
	for _, want := range []string{"Metadata sweep", "Shared-file", "Directory listing"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHumanHelpers(t *testing.T) {
	cases := map[int64]string{
		5:             "5 B",
		1500:          "1.5 KB",
		2_500_000:     "2.5 MB",
		3_000_000_000: "3.0 GB",
	}
	for in, want := range cases {
		if got := humanBytes(in); got != want {
			t.Fatalf("humanBytes(%d) = %q, want %q", in, got, want)
		}
	}
	if got := humanRatio(2100); got != "2.1e+03" {
		t.Fatalf("humanRatio(2100) = %q", got)
	}
	if got := humanRatio(0.042); got != "0.04" {
		t.Fatalf("humanRatio(0.042) = %q", got)
	}
	if got := humanRatio(0.004); got != "4.0e-03" {
		t.Fatalf("humanRatio(0.004) = %q", got)
	}
}
