package bench

import (
	"encoding/json"
	"fmt"

	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/storage"
)

// FaultsFixture backs the benchsuite `faults` experiment: the failure-domain
// cost profile of the degraded write path and rejoin resync. The cluster is
// 3 nodes with 3-way replication so every chunk is owned by every node —
// downing one node makes EVERY chunk write degraded (exclusion + per-chunk
// RecRepairNeeded debt record on the survivors), which keeps the
// healthy/degraded comparison crisp instead of diluting it across a larger
// ring where only a third of the chunks lose a replica.
type FaultsFixture struct {
	store *blob.Store
	ctx   *storage.Context
	buf   []byte
	down  cluster.NodeID
}

// NewFaultsFixture builds the 3-node store with one 4-chunk blob target.
func NewFaultsFixture() (*FaultsFixture, error) {
	st := blob.New(cluster.New(cluster.Config{Nodes: 3, Seed: 1}),
		blob.Config{ChunkSize: 64 << 10, Replication: 3})
	ctx := storage.NewContext()
	if err := st.CreateBlob(ctx, "fault-target"); err != nil {
		return nil, err
	}
	buf := make([]byte, 256<<10)
	for i := range buf {
		buf[i] = byte(i)
	}
	f := &FaultsFixture{store: st, ctx: ctx, buf: buf, down: 2}
	// Prime the blob so every benchmark iteration is an overwrite of
	// existing chunks, never a first-touch allocation.
	if _, err := st.WriteBlob(ctx, "fault-target", 0, buf); err != nil {
		return nil, err
	}
	return f, nil
}

// RunWrite performs one full-blob overwrite. With the cluster healthy this
// is the baseline replicated 2PC write; with a node down it is the degraded
// path: the down owner is excluded from every chunk and the survivors log
// repair debt naming it.
func (f *FaultsFixture) RunWrite() error {
	_, err := f.store.WriteBlob(f.ctx, "fault-target", 0, f.buf)
	return err
}

// RunResync performs one down/write/rejoin/repair cycle: a node misses a
// full-blob overwrite, then rejoins — SetDown(..., false) synchronously
// drains the debt, re-installing the node's replica of every chunk. The
// repaired volume per cycle is len(buf): one node's worth.
func (f *FaultsFixture) RunResync() error {
	f.store.SetDown(f.down, true)
	if _, err := f.store.WriteBlob(f.ctx, "fault-target", 0, f.buf); err != nil {
		return err
	}
	f.store.SetDown(f.down, false)
	if n := f.store.RepairPending(); n != 0 {
		return fmt.Errorf("bench: resync cycle left %d chunks owing repair", n)
	}
	return nil
}

func (f *FaultsFixture) DriveWrite(degraded bool) func(*testing.B) {
	return func(b *testing.B) {
		if degraded {
			f.store.SetDown(f.down, true)
		}
		b.SetBytes(int64(len(f.buf)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := f.RunWrite(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if degraded {
			// Rejoin outside the timer: SetDown(..., false) synchronously
			// drains the accumulated debt, leaving the fixture healthy for
			// the next benchmark.
			f.store.SetDown(f.down, false)
		}
	}
}

func (f *FaultsFixture) DriveResync(b *testing.B) {
	b.SetBytes(int64(len(f.buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.RunResync(); err != nil {
			b.Fatal(err)
		}
	}
}

// VirtualWriteCost measures the simulated per-op cost of a full-blob
// overwrite, healthy or degraded: every disk, RPC, and compute charge the
// write folds into its context. It builds its own fresh fixture — the
// simulator's shared resources (per-node disk queues) carry virtual time
// forward, so measuring on a store that already ran wall-clock benchmarks
// would fold an arbitrary amount of queue catch-up into the first op. One
// throwaway write syncs the fresh clock with the fixture's (seeded,
// identical every run) construction history; the marginal cost of the next
// `ops` writes is then a pure function of the code path — byte-for-byte
// reproducible on any host — which is what makes it gateable.
func VirtualWriteCost(degraded bool, ops int) (time.Duration, error) {
	f, err := NewFaultsFixture()
	if err != nil {
		return 0, err
	}
	if degraded {
		f.store.SetDown(f.down, true)
	}
	ctx := storage.NewContext()
	if _, err := f.store.WriteBlob(ctx, "fault-target", 0, f.buf); err != nil {
		return 0, err
	}
	start := ctx.Clock.Now()
	for i := 0; i < ops; i++ {
		if _, err := f.store.WriteBlob(ctx, "fault-target", 0, f.buf); err != nil {
			return 0, err
		}
	}
	return (ctx.Clock.Now() - start) / time.Duration(ops), nil
}

// RunFaults runs the failure-domain sweep via testing.Benchmark and returns
// results for BENCH_faults.json: BenchmarkFaultWrite/{healthy,degraded}
// (ns/op of a replicated vs degraded full-blob overwrite, with a
// /virtual twin carrying the simulated per-op cost) and BenchmarkFaultResync
// (MB/s of the rejoin repair path, measured over a full
// down/write/rejoin/drain cycle).
func RunFaults() ([]HotPathResult, error) {
	f, err := NewFaultsFixture()
	if err != nil {
		return nil, err
	}
	var out []HotPathResult
	var firstErr error
	// Best-of-3: the healthy/degraded comparison gates a RATIO of two
	// wall-clock measurements, so a scheduler hiccup during either one
	// produces a spurious 2x. The minimum over repetitions is the standard
	// noise-robust statistic for that — the fastest observed run is the one
	// closest to the code's true cost.
	record := func(name string, body func(*testing.B)) {
		var best testing.BenchmarkResult
		for rep := 0; rep < 3; rep++ {
			r := testing.Benchmark(body)
			if rep == 0 || (r.N > 0 && r.NsPerOp() < best.NsPerOp()) {
				best = r
			}
		}
		if best.N == 0 && firstErr == nil {
			firstErr = fmt.Errorf("benchmark %s failed", name)
		}
		mbps := 0.0
		if best.T > 0 {
			mbps = float64(best.Bytes) * float64(best.N) / 1e6 / best.T.Seconds()
		}
		out = append(out, HotPathResult{
			Name:        name,
			NsPerOp:     best.NsPerOp(),
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
			MBPerSec:    mbps,
		})
	}
	record("BenchmarkFaultWrite/healthy", f.DriveWrite(false))
	record("BenchmarkFaultWrite/degraded", f.DriveWrite(true))
	record("BenchmarkFaultResync", f.DriveResync)
	// The deterministic twins: simulated per-op cost, each on its own fresh
	// fixture. These are what CheckFaults gates — wall-clock above is the
	// host-dependent FYI.
	for _, mode := range []struct {
		name     string
		degraded bool
	}{{"healthy", false}, {"degraded", true}} {
		v, err := VirtualWriteCost(mode.degraded, 8)
		if err != nil {
			return nil, err
		}
		out = append(out, HotPathResult{
			Name:    "BenchmarkFaultWrite/" + mode.name + "/virtual",
			NsPerOp: int64(v),
		})
	}
	return out, firstErr
}

// CheckFaults gates the degraded/healthy ratio of the VIRTUAL write cost
// (the /virtual result pair). Degraded writes move FEWER bytes (a 28-byte
// debt record per chunk replaces a full replica write) yet cost somewhat
// MORE virtual time: the aggregate I/O that used to spread over R disks
// lands on R-1, chunks whose primary is the down node pay a promotion, and
// every included owner logs a debt record. At R=3 that works out to ~1.14x
// today; the gate's default of 1.25 gives that physics deterministic
// headroom while still catching the pathological regressions it exists
// for — synchronous repair or a full catch-up sneaking into the degraded
// write path, which shows up as 2x and worse.
//
// The gate deliberately reads the virtual twins, not the wall-clock
// numbers: simulated cost is a pure function of the code path, identical on
// every host, where wall-clock ns/op on a contended box swings an order of
// magnitude between runs (both directions were observed) and would make any
// wall-clock ratio bound either flaky or vacuous. Absent result pairs pass
// vacuously, like the other baseline gates.
func CheckFaults(results []HotPathResult, maxRatio float64) error {
	if maxRatio <= 0 {
		maxRatio = 1.25
	}
	var healthy, degraded *HotPathResult
	for i := range results {
		switch results[i].Name {
		case "BenchmarkFaultWrite/healthy/virtual":
			healthy = &results[i]
		case "BenchmarkFaultWrite/degraded/virtual":
			degraded = &results[i]
		}
	}
	if healthy == nil || degraded == nil || healthy.NsPerOp <= 0 {
		return nil
	}
	if ratio := float64(degraded.NsPerOp) / float64(healthy.NsPerOp); ratio > maxRatio {
		return fmt.Errorf("bench: degraded writes regressed: virtual %d ns/op is %.3fx healthy %d ns/op (gate %.3fx)",
			degraded.NsPerOp, ratio, healthy.NsPerOp, maxRatio)
	}
	return nil
}

// RenderFaults formats results as the JSON written to BENCH_faults.json.
func RenderFaults(results []HotPathResult) ([]byte, error) {
	return json.MarshalIndent(results, "", "  ")
}
