package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/storage"
)

// HotPath is the fixture behind BenchmarkHotPathRead/BenchmarkHotPathWrite
// and the benchsuite `hotpath` experiment: a 9-node store with 64 KiB chunks
// and 3-way replication, serving 256 KiB operations that stripe across four
// chunks — the steady-state data-plane shape whose per-chunk dispatch cost
// (placement lookup, chunk addressing, server locking, WAL append) the
// benchmarks isolate.
type HotPath struct {
	Store *blob.Store
	Ctx   *storage.Context
	buf   []byte
	// clients is the per-client fixture of the parallel write benchmark:
	// every client owns a key (so its descriptor latch is private and the
	// contention lands on the shared WAL mutexes and dispatcher), a
	// context, and a payload buffer.
	clients []hotClient
}

type hotClient struct {
	key string
	ctx *storage.Context
	buf []byte
}

// NewHotPath builds the fixture with the blob pre-written so reads hit
// materialized chunks. The store runs the default configuration: per-chunk
// work dispatched across the goroutine worker pool.
func NewHotPath() (*HotPath, error) { return newHotPath(false, 0) }

// NewHotPathInline builds the same fixture with blob.Config.InlineFanout:
// the sequential-execution baseline the dispatcher is measured against.
// Virtual times are identical by construction; host ns/op is the contrast.
func NewHotPathInline() (*HotPath, error) { return newHotPath(true, 0) }

func newHotPath(inline bool, lanes int) (*HotPath, error) {
	st := blob.New(cluster.New(cluster.Config{Nodes: 9, Seed: 1}),
		blob.Config{ChunkSize: 64 << 10, Replication: 3, InlineFanout: inline, WALLanes: lanes})
	ctx := storage.NewContext()
	if err := st.CreateBlob(ctx, "hot"); err != nil {
		return nil, err
	}
	h := &HotPath{Store: st, Ctx: ctx, buf: make([]byte, 256<<10)}
	for i := range h.buf {
		h.buf[i] = byte(i)
	}
	if _, err := st.WriteBlob(ctx, "hot", 0, h.buf); err != nil {
		return nil, err
	}
	return h, nil
}

// OpBytes is the payload size of one Read/Write operation.
func (h *HotPath) OpBytes() int64 { return int64(len(h.buf)) }

// NewHotPathParallel builds the fixture plus clients per-client blobs
// ("hot-0".."hot-N", pre-written like the shared blob) for multi-client
// write benchmarks — the shape that answers ROADMAP's descriptor-latch vs.
// per-server-WAL-mutex scaling question, since per-client keys make every
// latch private while all clients share the nine servers' logs. clients <= 0
// selects GOMAXPROCS capped at 16 (the dispatcher's worker ceiling).
func NewHotPathParallel(clients int) (*HotPath, error) {
	return NewHotPathParallelLanes(clients, 0)
}

// NewHotPathParallelLanes is NewHotPathParallel with an explicit WAL lane
// count (0 selects the store default), the fixture of the lane-count sweep
// recorded in BENCH_hotpath.json.
func NewHotPathParallelLanes(clients, lanes int) (*HotPath, error) {
	if clients <= 0 {
		clients = runtime.GOMAXPROCS(0)
		if clients > 16 {
			clients = 16
		}
	}
	h, err := newHotPath(false, lanes)
	if err != nil {
		return nil, err
	}
	for i := 0; i < clients; i++ {
		c := hotClient{
			key: fmt.Sprintf("hot-%d", i),
			ctx: storage.NewContext(),
			buf: append([]byte(nil), h.buf...),
		}
		if err := h.Store.CreateBlob(c.ctx, c.key); err != nil {
			return nil, err
		}
		if _, err := h.Store.WriteBlob(c.ctx, c.key, 0, c.buf); err != nil {
			return nil, err
		}
		h.clients = append(h.clients, c)
	}
	return h, nil
}

// Clients reports the parallel fixture's client count.
func (h *HotPath) Clients() int { return len(h.clients) }

// WriteParallel performs ops write operations split round-robin across the
// per-client blobs, each client driving its share from its own goroutine
// against its own key, context, and buffer. It returns the first error.
// Callers interleave WriteParallel batches with Compact the way the serial
// write benchmarks do, so the in-memory logs stay bounded.
func (h *HotPath) WriteParallel(ops int) error {
	if len(h.clients) == 0 {
		return fmt.Errorf("hotpath: fixture built without clients")
	}
	var wg sync.WaitGroup
	errs := make([]error, len(h.clients))
	per := ops / len(h.clients)
	extra := ops % len(h.clients)
	for i := range h.clients {
		n := per
		if i < extra {
			n++
		}
		if n == 0 {
			break
		}
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			c := &h.clients[i]
			for j := 0; j < n; j++ {
				if _, err := h.Store.WriteBlob(c.ctx, c.key, 0, c.buf); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CompactEvery is how many write ops a benchmark runs between WAL
// checkpoints (HotPath.Compact).
const CompactEvery = 256

// DriveParallelWrites is the standard contended-write benchmark body over
// a parallel fixture: batches of CompactEvery writes split across the
// clients, alternating with out-of-timer compaction like the serial write
// benchmarks. It is the single definition of that protocol — the root
// BenchmarkHotPathWriteParallel* benchmarks and the benchsuite lane sweep
// all run it, so the serial-vs-parallel and lane-vs-lane comparisons can
// never diverge in cadence.
func (h *HotPath) DriveParallelWrites(b *testing.B) {
	b.SetBytes(h.OpBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := CompactEvery
		if n > b.N-done {
			n = b.N - done
		}
		if err := h.WriteParallel(n); err != nil {
			b.Fatal(err)
		}
		done += n
		b.StopTimer()
		h.Compact()
		b.StartTimer()
	}
}

// Warm drives a double compaction window of serial writes and compacts, so
// every server's slab-backed log reaches its steady-state high-water (the
// slabs parked on the free list by the final Compact) before measurement
// begins. Without it, whether the one-time first-window medium fill lands
// inside the measured trial depends on testing.Benchmark's ramp timing —
// B/op would flip between ~0 and the fill cost run to run. The window is
// doubled because a fixture shared across trials (benchsuite) sees
// un-compacted stretches of up to 2*CompactEvery-2 ops: a trial's leftover
// tail plus the next trial's ops before its first compaction. Write
// benchmarks call it before the timer starts.
func (h *HotPath) Warm() error {
	for i := 0; i < 2*CompactEvery; i++ {
		if err := h.Write(); err != nil {
			return err
		}
	}
	h.Compact()
	return nil
}

// WarmParallel is Warm for the multi-client fixture: a double benchmark
// batch of parallel writes, then a compaction.
func (h *HotPath) WarmParallel() error {
	if err := h.WriteParallel(2 * CompactEvery); err != nil {
		return err
	}
	h.Compact()
	return nil
}

// Compact checkpoints every server's WAL, dropping the accumulated log
// bytes. Write benchmarks call it with the timer stopped every
// CompactEvery iterations so the measured loop reflects per-op dispatch
// cost instead of unbounded in-memory log growth (which would otherwise
// dominate B/op and drift with -benchtime).
func (h *HotPath) Compact() { h.Store.CheckpointAll() }

// Read performs one 4-chunk striped read.
func (h *HotPath) Read() error {
	n, err := h.Store.ReadBlob(h.Ctx, "hot", 0, h.buf)
	if err != nil {
		return err
	}
	if n != len(h.buf) {
		return fmt.Errorf("hotpath: short read %d", n)
	}
	return nil
}

// Write performs one 4-chunk striped overwrite (a multi-chunk transaction:
// prepare + data + commit phases).
func (h *HotPath) Write() error {
	n, err := h.Store.WriteBlob(h.Ctx, "hot", 0, h.buf)
	if err != nil {
		return err
	}
	if n != len(h.buf) {
		return fmt.Errorf("hotpath: short write %d", n)
	}
	return nil
}

// HotPathResult is one benchmark's measurement, serialized by the
// benchsuite `benchcheck` target into BENCH_hotpath.json so successive PRs
// have a perf trajectory to compare against.
type HotPathResult struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"alloc_bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
}

// RunHotPath runs both hot-path benchmarks via testing.Benchmark (so the
// numbers match `go test -bench HotPath -benchmem`) and returns the results.
func RunHotPath() ([]HotPathResult, error) {
	h, err := NewHotPath()
	if err != nil {
		return nil, err
	}
	var firstErr error
	run := func(name string, body func(b *testing.B)) HotPathResult {
		r := testing.Benchmark(body)
		if r.N == 0 && firstErr == nil {
			firstErr = fmt.Errorf("benchmark %s failed", name)
		}
		mbps := 0.0
		if r.T > 0 {
			mbps = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		return HotPathResult{
			Name:        name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			MBPerSec:    mbps,
		}
	}
	if err := h.Warm(); err != nil {
		return nil, err
	}
	serial := func(op func() error) func(b *testing.B) {
		return func(b *testing.B) {
			b.SetBytes(h.OpBytes())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%CompactEvery == CompactEvery-1 {
					b.StopTimer()
					h.Compact()
					b.StartTimer()
				}
				if err := op(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	out := []HotPathResult{
		run("BenchmarkHotPathRead", serial(h.Read)),
		run("BenchmarkHotPathWrite", serial(h.Write)),
	}

	// Multi-client write scaling: per-client keys, shared servers. ns/op
	// counts individual writes, so the serial/parallel ns_per_op ratio is
	// the aggregate write speedup under contention.
	runParallel := func(name string, lanes int) error {
		hp, err := NewHotPathParallelLanes(0, lanes)
		if err != nil {
			return err
		}
		if err := hp.WarmParallel(); err != nil {
			return err
		}
		out = append(out, run(name, hp.DriveParallelWrites))
		return nil
	}
	if err := runParallel("BenchmarkHotPathWriteParallel", 0); err != nil {
		return nil, err
	}
	// Lane-count sweep: the same contended-writer shape against a single
	// log lane (the pre-sharding layout) and an intermediate count, so the
	// recorded trajectory shows what the lanes buy on this host.
	for _, lanes := range []int{1, 4} {
		if err := runParallel(fmt.Sprintf("BenchmarkHotPathWriteParallel/lanes=%d", lanes), lanes); err != nil {
			return nil, err
		}
	}
	return out, firstErr
}

// CheckWriteScaling gates the parallel/serial write ratio: with the WAL
// lanes in place, concurrent writers must actually outrun one client —
// BenchmarkHotPathWriteParallel ns/op at most maxRatio of
// BenchmarkHotPathWrite ns/op. maxRatio <= 0 selects a hardware-aware
// default: the hot-path write op is dominated by irreducible byte work
// (chunk memmove + CRC), so the achievable speedup is bounded by real
// cores, not by lock contention alone —
//
//	>= 4 procs: 0.75 (the acceptance bar: >= 25% faster than serial)
//	2-3 procs:  0.90
//	1 proc:     1.00 (no parallel hardware: contended writes must at
//	            least match serial — the pre-sharding behavior this gate
//	            exists to catch was 1.09-1.26x serial, so flat-or-better
//	            still separates lanes-working from lanes-broken here)
//
// Benchmarks absent from results are not gated, so older callers without
// the parallel benchmark pass vacuously.
func CheckWriteScaling(results []HotPathResult, maxRatio float64) error {
	if maxRatio <= 0 {
		switch procs := runtime.GOMAXPROCS(0); {
		case procs >= 4:
			maxRatio = 0.75
		case procs >= 2:
			maxRatio = 0.90
		default:
			maxRatio = 1.00
		}
	}
	var serial, parallel *HotPathResult
	for i := range results {
		switch results[i].Name {
		case "BenchmarkHotPathWrite":
			serial = &results[i]
		case "BenchmarkHotPathWriteParallel":
			parallel = &results[i]
		}
	}
	if serial == nil || parallel == nil || serial.NsPerOp <= 0 {
		return nil
	}
	if ratio := float64(parallel.NsPerOp) / float64(serial.NsPerOp); ratio > maxRatio {
		return fmt.Errorf("bench: parallel writes do not scale: %s %d ns/op is %.2fx serial %d ns/op (gate %.2fx at GOMAXPROCS=%d)",
			parallel.Name, parallel.NsPerOp, ratio, serial.NsPerOp, maxRatio, runtime.GOMAXPROCS(0))
	}
	return nil
}

// CheckHotPathBaseline compares fresh results against the raw JSON of a
// committed BENCH_hotpath.json (read by the caller before the results
// overwrite it) and returns an error if the write path's allocation volume
// regressed: alloc_bytes_per_op (or allocs_per_op) of BenchmarkHotPathWrite
// above the committed value — beyond a small noise floor, since GC-driven
// sync.Pool evictions during a run can surface a handful of refill
// allocations against a zero baseline — fails the gate. A real regression
// (un-pooled staging, per-record escapes) costs hundreds of bytes per op
// and clears the floor by orders of magnitude. Benchmarks present on only
// one side are ignored, so adding a benchmark does not break the gate
// against an older baseline.
func CheckHotPathBaseline(results []HotPathResult, raw []byte) error {
	var baseline []HotPathResult
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("bench: parse baseline: %w", err)
	}
	byName := make(map[string]HotPathResult, len(baseline))
	for _, r := range baseline {
		byName[r.Name] = r
	}
	for _, r := range results {
		if r.Name != "BenchmarkHotPathWrite" {
			continue
		}
		old, ok := byName[r.Name]
		if !ok {
			continue
		}
		if limit := old.BytesPerOp + max(old.BytesPerOp/8, 64); r.BytesPerOp > limit {
			return fmt.Errorf("bench: %s alloc_bytes_per_op regressed: %d > baseline %d (+noise floor %d)",
				r.Name, r.BytesPerOp, old.BytesPerOp, limit)
		}
		if limit := old.AllocsPerOp + max(old.AllocsPerOp/8, 2); r.AllocsPerOp > limit {
			return fmt.Errorf("bench: %s allocs_per_op regressed: %d > baseline %d (+noise floor %d)",
				r.Name, r.AllocsPerOp, old.AllocsPerOp, limit)
		}
	}
	return nil
}

// RenderHotPath formats results as the JSON written to BENCH_hotpath.json.
func RenderHotPath(results []HotPathResult) ([]byte, error) {
	return json.MarshalIndent(results, "", "  ")
}
