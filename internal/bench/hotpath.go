package bench

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/storage"
)

// HotPath is the fixture behind BenchmarkHotPathRead/BenchmarkHotPathWrite
// and the benchsuite `hotpath` experiment: a 9-node store with 64 KiB chunks
// and 3-way replication, serving 256 KiB operations that stripe across four
// chunks — the steady-state data-plane shape whose per-chunk dispatch cost
// (placement lookup, chunk addressing, server locking, WAL append) the
// benchmarks isolate.
type HotPath struct {
	Store *blob.Store
	Ctx   *storage.Context
	buf   []byte
}

// NewHotPath builds the fixture with the blob pre-written so reads hit
// materialized chunks. The store runs the default configuration: per-chunk
// work dispatched across the goroutine worker pool.
func NewHotPath() (*HotPath, error) { return newHotPath(false) }

// NewHotPathInline builds the same fixture with blob.Config.InlineFanout:
// the sequential-execution baseline the dispatcher is measured against.
// Virtual times are identical by construction; host ns/op is the contrast.
func NewHotPathInline() (*HotPath, error) { return newHotPath(true) }

func newHotPath(inline bool) (*HotPath, error) {
	st := blob.New(cluster.New(cluster.Config{Nodes: 9, Seed: 1}),
		blob.Config{ChunkSize: 64 << 10, Replication: 3, InlineFanout: inline})
	ctx := storage.NewContext()
	if err := st.CreateBlob(ctx, "hot"); err != nil {
		return nil, err
	}
	h := &HotPath{Store: st, Ctx: ctx, buf: make([]byte, 256<<10)}
	for i := range h.buf {
		h.buf[i] = byte(i)
	}
	if _, err := st.WriteBlob(ctx, "hot", 0, h.buf); err != nil {
		return nil, err
	}
	return h, nil
}

// OpBytes is the payload size of one Read/Write operation.
func (h *HotPath) OpBytes() int64 { return int64(len(h.buf)) }

// CompactEvery is how many write ops a benchmark runs between WAL
// checkpoints (HotPath.Compact).
const CompactEvery = 256

// Compact checkpoints every server's WAL, dropping the accumulated log
// bytes. Write benchmarks call it with the timer stopped every
// CompactEvery iterations so the measured loop reflects per-op dispatch
// cost instead of unbounded in-memory log growth (which would otherwise
// dominate B/op and drift with -benchtime).
func (h *HotPath) Compact() { h.Store.CheckpointAll() }

// Read performs one 4-chunk striped read.
func (h *HotPath) Read() error {
	n, err := h.Store.ReadBlob(h.Ctx, "hot", 0, h.buf)
	if err != nil {
		return err
	}
	if n != len(h.buf) {
		return fmt.Errorf("hotpath: short read %d", n)
	}
	return nil
}

// Write performs one 4-chunk striped overwrite (a multi-chunk transaction:
// prepare + data + commit phases).
func (h *HotPath) Write() error {
	n, err := h.Store.WriteBlob(h.Ctx, "hot", 0, h.buf)
	if err != nil {
		return err
	}
	if n != len(h.buf) {
		return fmt.Errorf("hotpath: short write %d", n)
	}
	return nil
}

// HotPathResult is one benchmark's measurement, serialized by the
// benchsuite `benchcheck` target into BENCH_hotpath.json so successive PRs
// have a perf trajectory to compare against.
type HotPathResult struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"alloc_bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
}

// RunHotPath runs both hot-path benchmarks via testing.Benchmark (so the
// numbers match `go test -bench HotPath -benchmem`) and returns the results.
func RunHotPath() ([]HotPathResult, error) {
	h, err := NewHotPath()
	if err != nil {
		return nil, err
	}
	var firstErr error
	run := func(name string, op func() error) HotPathResult {
		r := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(h.OpBytes())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%CompactEvery == CompactEvery-1 {
					b.StopTimer()
					h.Compact()
					b.StartTimer()
				}
				if err := op(); err != nil {
					b.Fatal(err)
				}
			}
		})
		if r.N == 0 && firstErr == nil {
			firstErr = fmt.Errorf("benchmark %s failed", name)
		}
		mbps := 0.0
		if r.T > 0 {
			mbps = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		return HotPathResult{
			Name:        name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			MBPerSec:    mbps,
		}
	}
	out := []HotPathResult{
		run("BenchmarkHotPathRead", h.Read),
		run("BenchmarkHotPathWrite", h.Write),
	}
	return out, firstErr
}

// RenderHotPath formats results as the JSON written to BENCH_hotpath.json.
func RenderHotPath(results []HotPathResult) ([]byte, error) {
	return json.MarshalIndent(results, "", "  ")
}
